package siem

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestFleetAggregatorMergesAndFindsLaggards(t *testing.T) {
	f := NewFleetAggregator()
	tick := time.Unix(1700000000, 0).UTC()
	f.SetClock(func() time.Time { return tick })

	f.ReportDigest("N1", map[string]uint64{"A": 5, "B": 3})
	f.ReportDigest("N2", map[string]uint64{"A": 5, "B": 3})
	f.ReportDigest("N3", map[string]uint64{"A": 2}) // behind on A, missing B

	fleet := f.FleetDigest()
	if fleet["A"] != 5 || fleet["B"] != 3 {
		t.Fatalf("fleet digest = %v", fleet)
	}

	s := f.Summary()
	if s.Nodes != 3 || s.Creators != 2 || s.Converged != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.Laggards) != 1 || s.Laggards[0].Node != "N3" {
		t.Fatalf("laggards = %+v", s.Laggards)
	}
	if s.Laggards[0].Behind != 2 || s.Laggards[0].Lag != 6 { // A: 5-2, B: 3-0
		t.Fatalf("laggard lag = %+v", s.Laggards[0])
	}

	// A fresh report replaces the stale one; the fleet converges.
	f.ReportDigest("N3", map[string]uint64{"A": 5, "B": 3})
	if s := f.Summary(); s.Converged != 3 || len(s.Laggards) != 0 {
		t.Fatalf("after catch-up: %+v", s)
	}
}

func TestFleetAggregatorExportNDJSON(t *testing.T) {
	f := NewFleetAggregator()
	f.ReportDigest("N1", map[string]uint64{"A": 9})
	f.ReportDigest("N2", map[string]uint64{"A": 1})

	var buf bytes.Buffer
	if err := f.Export(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var records []map[string]interface{}
	for sc.Scan() {
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		records = append(records, m)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want summary + 1 laggard", len(records))
	}
	if records[0]["record"] != "fleet-summary" || records[0]["nodes"].(float64) != 2 {
		t.Fatalf("summary record = %v", records[0])
	}
	if records[1]["record"] != "fleet-laggard" || records[1]["node"] != "N2" {
		t.Fatalf("laggard record = %v", records[1])
	}
}

func TestFleetAggregatorEmpty(t *testing.T) {
	f := NewFleetAggregator()
	if d := f.FleetDigest(); len(d) != 0 {
		t.Fatalf("empty digest = %v", d)
	}
	s := f.Summary()
	if s.Nodes != 0 || s.Converged != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	var buf bytes.Buffer
	if err := f.Export(&buf); err != nil {
		t.Fatal(err)
	}
}
