package siem

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// FleetAggregator rolls per-node collective digests up into one
// fleet-level view — the hierarchical aggregation point of the gossip
// design: individual Kalis nodes exchange digests peer-to-peer, and a
// SIEM-side aggregator merges the digests it is handed (by a scraper,
// a log shipper, or the nodes themselves) into the fleet-wide maximum
// version vector. A node whose digest lags the fleet maximum has not
// yet converged; persistent laggards localize partitions or dead links
// without inspecting any knowgget payloads.
type FleetAggregator struct {
	mu sync.Mutex
	// digests maps reporting node → creator → highest version that node
	// holds contiguously.
	digests map[string]map[string]uint64
	// reported maps reporting node → when its digest last arrived.
	reported map[string]time.Time
	now      func() time.Time
}

// NewFleetAggregator creates an empty aggregator.
func NewFleetAggregator() *FleetAggregator {
	return &FleetAggregator{
		digests:  make(map[string]map[string]uint64),
		reported: make(map[string]time.Time),
		now:      time.Now,
	}
}

// SetClock overrides the wall clock (tests, virtual-time simulations).
func (f *FleetAggregator) SetClock(now func() time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = now
}

// ReportDigest records one node's current digest (creator → version),
// replacing any earlier report from the same node.
func (f *FleetAggregator) ReportDigest(nodeID string, digest map[string]uint64) {
	cp := make(map[string]uint64, len(digest))
	for c, v := range digest {
		cp[c] = v
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.digests[nodeID] = cp
	f.reported[nodeID] = f.now()
}

// FleetDigest max-merges every reported digest: the fleet-wide highest
// version seen per creator.
func (f *FleetAggregator) FleetDigest() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fleetDigestLocked()
}

func (f *FleetAggregator) fleetDigestLocked() map[string]uint64 {
	out := make(map[string]uint64)
	for _, d := range f.digests {
		for c, v := range d {
			if v > out[c] {
				out[c] = v
			}
		}
	}
	return out
}

// NodeLag describes how far one node trails the fleet maximum.
type NodeLag struct {
	Node string `json:"node"`
	// Behind counts creators for which the node's version trails the
	// fleet maximum (including creators it has never heard of).
	Behind int `json:"behind"`
	// Lag sums the version gap across all trailing creators.
	Lag uint64 `json:"lag"`
	// Reported is when the node's digest last arrived.
	Reported time.Time `json:"reported"`
}

// FleetSummary is the aggregate convergence picture.
type FleetSummary struct {
	Nodes     int `json:"nodes"`
	Creators  int `json:"creators"`
	Converged int `json:"converged"`
	// Laggards lists non-converged nodes, worst first.
	Laggards []NodeLag `json:"laggards,omitempty"`
}

// Summary computes the convergence picture across all reports.
func (f *FleetAggregator) Summary() FleetSummary {
	f.mu.Lock()
	defer f.mu.Unlock()
	fleet := f.fleetDigestLocked()
	s := FleetSummary{Nodes: len(f.digests), Creators: len(fleet)}
	for node, d := range f.digests {
		lag := NodeLag{Node: node, Reported: f.reported[node]}
		for c, top := range fleet {
			if v := d[c]; v < top {
				lag.Behind++
				lag.Lag += top - v
			}
		}
		if lag.Behind == 0 {
			s.Converged++
			continue
		}
		s.Laggards = append(s.Laggards, lag)
	}
	sort.Slice(s.Laggards, func(i, j int) bool {
		a, b := s.Laggards[i], s.Laggards[j]
		if a.Lag != b.Lag {
			return a.Lag > b.Lag
		}
		return a.Node < b.Node
	})
	return s
}

// Export writes the summary followed by one NDJSON record per laggard
// — the same one-object-per-line form the alert Exporter emits, so the
// fleet view rides the existing SIEM ingestion path.
func (f *FleetAggregator) Export(w io.Writer) error {
	s := f.Summary()
	head, err := json.Marshal(struct {
		Record string `json:"record"`
		FleetSummary
	}{Record: "fleet-summary", FleetSummary: FleetSummary{
		Nodes: s.Nodes, Creators: s.Creators, Converged: s.Converged,
	}})
	if err != nil {
		return err
	}
	if _, err := w.Write(append(head, '\n')); err != nil {
		return fmt.Errorf("siem: fleet export: %w", err)
	}
	for _, lag := range s.Laggards {
		line, err := json.Marshal(struct {
			Record string `json:"record"`
			NodeLag
		}{Record: "fleet-laggard", NodeLag: lag})
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("siem: fleet export: %w", err)
		}
	}
	return nil
}
