package siem

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"kalis/internal/core/module"
	"kalis/internal/packet"
)

var t0 = time.Unix(1500000000, 0).UTC()

func sampleAlert() module.Alert {
	return module.Alert{
		Time:       t0,
		Attack:     "icmp-flood",
		Module:     "ICMPFloodModule",
		Victim:     "192.168.1.10",
		Suspects:   []packet.NodeID{"192.168.1.66"},
		Confidence: 0.95,
		Details:    "25 echo replies",
	}
}

func TestExportAndRead(t *testing.T) {
	var buf bytes.Buffer
	exp := NewExporter("K1", &buf)
	exp.HandleAlert(sampleAlert())
	exp.HandleAlert(module.Alert{Time: t0.Add(time.Second), Attack: "sybil", Module: "SybilModule", Confidence: 0.8})

	if exp.Count() != 2 || exp.Err() != nil {
		t.Fatalf("count=%d err=%v", exp.Count(), exp.Err())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("lines = %d", lines)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	ev := events[0]
	if ev.Sensor != "K1" || ev.Attack != "icmp-flood" || ev.Victim != "192.168.1.10" ||
		len(ev.Suspects) != 1 || !ev.Timestamp.Equal(t0) {
		t.Errorf("event = %+v", ev)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("pipe broke") }

func TestWriteErrorRetained(t *testing.T) {
	exp := NewExporter("K1", failingWriter{})
	exp.HandleAlert(sampleAlert())
	if exp.Err() == nil {
		t.Error("write error lost")
	}
	if exp.Count() != 0 {
		t.Error("failed write counted")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("garbage parsed")
	}
}

func TestReadEmpty(t *testing.T) {
	events, err := Read(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("events=%d err=%v", len(events), err)
	}
}
