// Package siem exports Kalis detection events for security information
// and event management systems: "Kalis ... can act as data source for
// multisource security information management (SIEM) systems" (§I).
// Alerts are serialized as NDJSON (one JSON object per line), the
// lingua franca of SIEM ingestion pipelines.
package siem

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// Event is the SIEM-facing form of an alert.
type Event struct {
	Timestamp  time.Time       `json:"timestamp"`
	Sensor     string          `json:"sensor"`
	Attack     string          `json:"attack"`
	Module     string          `json:"module"`
	Victim     packet.NodeID   `json:"victim,omitempty"`
	Suspects   []packet.NodeID `json:"suspects,omitempty"`
	Confidence float64         `json:"confidence"`
	Details    string          `json:"details,omitempty"`
}

// FromAlert converts an alert raised by the given sensor (Kalis node).
func FromAlert(sensor string, a module.Alert) Event {
	return Event{
		Timestamp:  a.Time,
		Sensor:     sensor,
		Attack:     a.Attack,
		Module:     a.Module,
		Victim:     a.Victim,
		Suspects:   a.Suspects,
		Confidence: a.Confidence,
		Details:    a.Details,
	}
}

// Exporter streams events to a writer as NDJSON. It is safe for
// concurrent use (alerts may arrive from an async event bus).
type Exporter struct {
	sensor string

	mu      sync.Mutex
	w       io.Writer
	count   int
	lastErr error
}

// NewExporter creates an exporter writing events from the given sensor
// to w.
func NewExporter(sensor string, w io.Writer) *Exporter {
	return &Exporter{sensor: sensor, w: w}
}

// HandleAlert serializes one alert; wire it to a node with OnAlert.
// Write errors are retained and reported by Err (an IDS must not crash
// because its SIEM endpoint hiccuped).
func (e *Exporter) HandleAlert(a module.Alert) {
	data, err := json.Marshal(FromAlert(e.sensor, a))
	if err != nil {
		e.setErr(err)
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.w.Write(append(data, '\n')); err != nil {
		e.lastErr = fmt.Errorf("siem: write: %w", err)
		return
	}
	e.count++
}

func (e *Exporter) setErr(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastErr = err
}

// Count returns the number of events successfully exported.
func (e *Exporter) Count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Err returns the most recent export error, if any.
func (e *Exporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastErr
}

// Read parses an NDJSON event stream (e.g. for a SIEM-side consumer or
// tests).
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return out, fmt.Errorf("siem: parse: %w", err)
		}
		out = append(out, ev)
	}
	return out, nil
}
