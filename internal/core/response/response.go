// Package response implements Kalis' automatic response actions: §III
// names alerts to a user plus "automatic response actions (such as
// re-transmission of packets, and device isolation)" as the follow-up
// to detection. A Responder maps attack classes to actions through a
// policy, applies per-entity cooldowns and a global isolation budget
// (bounding the blast radius of a misbehaving detector), and keeps an
// audit log of everything it did.
package response

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// Action is a response action class.
type Action int

// Actions, in increasing order of severity.
const (
	// ActionNone suppresses any response.
	ActionNone Action = iota + 1
	// ActionNotify only notifies (the alert is already delivered to
	// subscribers; the responder just records it).
	ActionNotify
	// ActionBlock asks the packet filter (smart firewall) to drop the
	// suspects' traffic.
	ActionBlock
	// ActionIsolate revokes the suspects from the network (the §VI-A
	// countermeasure).
	ActionIsolate
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionNotify:
		return "notify"
	case ActionBlock:
		return "block"
	case ActionIsolate:
		return "isolate"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Rule decides the response for one attack class.
type Rule struct {
	// Action to take.
	Action Action
	// MinConfidence gates the rule; lower-confidence alerts are only
	// recorded.
	MinConfidence float64
	// Cooldown suppresses repeat actions against the same entity.
	Cooldown time.Duration
}

// Policy maps canonical attack names to rules.
type Policy struct {
	// Rules by attack name.
	Rules map[string]Rule
	// Default applies to attacks without a specific rule.
	Default Rule
	// IsolationBudget caps the number of distinct entities ever
	// isolated; 0 means no isolation at all. An IDS must not be able
	// to disassemble the network it guards.
	IsolationBudget int
}

// DefaultPolicy isolates on high-confidence alerts, blocks on medium,
// and bounds isolation to maxIsolations entities.
func DefaultPolicy(maxIsolations int) Policy {
	return Policy{
		Rules:           map[string]Rule{},
		Default:         Rule{Action: ActionIsolate, MinConfidence: 0.85, Cooldown: time.Minute},
		IsolationBudget: maxIsolations,
	}
}

// Taken is one audit-log entry.
type Taken struct {
	Time   time.Time
	Attack string
	Action Action
	Target packet.NodeID
	// Note explains skipped or downgraded actions.
	Note string
}

// Responder executes a policy. Wire Isolate/Block to the deployment
// (simulator revocation, firewall, router ACLs) and HandleAlert to a
// Kalis node's OnAlert.
type Responder struct {
	policy Policy
	// Isolate removes an entity from the network; nil disables
	// isolation.
	Isolate func(packet.NodeID) error
	// Block installs a packet-filter rule; nil disables blocking.
	Block func(packet.NodeID) error

	mu        sync.Mutex
	lastActed map[packet.NodeID]time.Time
	isolated  map[packet.NodeID]bool
	audit     []Taken
}

// NewResponder creates a responder with the given policy.
func NewResponder(policy Policy) *Responder {
	return &Responder{
		policy:    policy,
		lastActed: make(map[packet.NodeID]time.Time),
		isolated:  make(map[packet.NodeID]bool),
	}
}

// HandleAlert applies the policy to one alert.
func (r *Responder) HandleAlert(a module.Alert) {
	rule, ok := r.policy.Rules[a.Attack]
	if !ok {
		rule = r.policy.Default
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	if rule.Action == ActionNone || a.Confidence < rule.MinConfidence {
		r.audit = append(r.audit, Taken{Time: a.Time, Attack: a.Attack, Action: ActionNotify,
			Note: "below policy threshold"})
		return
	}
	for _, target := range a.Suspects {
		if until, acted := r.lastActed[target]; acted && a.Time.Before(until) {
			continue
		}
		entry := Taken{Time: a.Time, Attack: a.Attack, Action: rule.Action, Target: target}
		switch rule.Action {
		case ActionIsolate:
			if r.isolated[target] {
				continue
			}
			if len(r.isolated) >= r.policy.IsolationBudget {
				entry.Action = ActionBlock
				entry.Note = "isolation budget exhausted; downgraded to block"
				if r.Block != nil {
					_ = r.Block(target)
				}
				break
			}
			if r.Isolate == nil {
				entry.Note = "no isolation hook"
				break
			}
			if err := r.Isolate(target); err != nil {
				entry.Note = "isolate failed: " + err.Error()
				break
			}
			r.isolated[target] = true
		case ActionBlock:
			if r.Block == nil {
				entry.Note = "no block hook"
				break
			}
			if err := r.Block(target); err != nil {
				entry.Note = "block failed: " + err.Error()
			}
		case ActionNotify:
			// Recording is the action.
		}
		r.lastActed[target] = a.Time.Add(rule.Cooldown)
		r.audit = append(r.audit, entry)
	}
}

// Audit returns a copy of the audit log.
func (r *Responder) Audit() []Taken {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Taken, len(r.audit))
	copy(out, r.audit)
	return out
}

// Isolated returns the entities isolated so far, sorted.
func (r *Responder) Isolated() []packet.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]packet.NodeID, 0, len(r.isolated))
	for id := range r.isolated {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Restore lifts an isolation (e.g. after the paper's "temporary
// revocation" expires or an operator overrides).
func (r *Responder) Restore(id packet.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.isolated, id)
	delete(r.lastActed, id)
}
