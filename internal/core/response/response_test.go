package response

import (
	"errors"
	"testing"
	"time"

	"kalis/internal/core/module"
	"kalis/internal/packet"
)

var t0 = time.Unix(1500000000, 0).UTC()

func alert(at time.Time, name string, conf float64, suspects ...packet.NodeID) module.Alert {
	return module.Alert{Time: at, Attack: name, Confidence: conf, Suspects: suspects}
}

func newTestResponder(budget int) (*Responder, *[]packet.NodeID, *[]packet.NodeID) {
	isolated := &[]packet.NodeID{}
	blocked := &[]packet.NodeID{}
	r := NewResponder(DefaultPolicy(budget))
	r.Isolate = func(id packet.NodeID) error { *isolated = append(*isolated, id); return nil }
	r.Block = func(id packet.NodeID) error { *blocked = append(*blocked, id); return nil }
	return r, isolated, blocked
}

func TestIsolateOnHighConfidence(t *testing.T) {
	r, isolated, _ := newTestResponder(3)
	r.HandleAlert(alert(t0, "blackhole", 0.9, "0x0002"))
	if len(*isolated) != 1 || (*isolated)[0] != "0x0002" {
		t.Errorf("isolated = %v", *isolated)
	}
	got := r.Isolated()
	if len(got) != 1 || got[0] != "0x0002" {
		t.Errorf("Isolated() = %v", got)
	}
}

func TestConfidenceGateRecordsOnly(t *testing.T) {
	r, isolated, _ := newTestResponder(3)
	r.HandleAlert(alert(t0, "traffic-anomaly", 0.4, "0x0002"))
	if len(*isolated) != 0 {
		t.Error("low-confidence alert acted on")
	}
	audit := r.Audit()
	if len(audit) != 1 || audit[0].Action != ActionNotify {
		t.Errorf("audit = %+v", audit)
	}
}

func TestCooldownSuppressesRepeats(t *testing.T) {
	r, isolated, _ := newTestResponder(5)
	r.HandleAlert(alert(t0, "blackhole", 0.9, "0x0002"))
	r.HandleAlert(alert(t0.Add(10*time.Second), "blackhole", 0.9, "0x0002"))
	if len(*isolated) != 1 {
		t.Errorf("isolations = %d, want 1 (cooldown)", len(*isolated))
	}
	r.HandleAlert(alert(t0.Add(2*time.Minute), "blackhole", 0.9, "0x0002"))
	// Already isolated: still no second call.
	if len(*isolated) != 1 {
		t.Errorf("isolations = %d after cooldown (already isolated)", len(*isolated))
	}
}

func TestIsolationBudgetDowngradesToBlock(t *testing.T) {
	r, isolated, blocked := newTestResponder(2)
	r.HandleAlert(alert(t0, "sybil", 0.9, "a", "b", "c", "d"))
	if len(*isolated) != 2 {
		t.Errorf("isolated = %v, want 2 (budget)", *isolated)
	}
	if len(*blocked) != 2 {
		t.Errorf("blocked = %v, want the overflow", *blocked)
	}
	for _, e := range r.Audit() {
		if e.Target == "c" || e.Target == "d" {
			if e.Action != ActionBlock || e.Note == "" {
				t.Errorf("overflow entry = %+v", e)
			}
		}
	}
}

func TestZeroBudgetNeverIsolates(t *testing.T) {
	r, isolated, blocked := newTestResponder(0)
	r.HandleAlert(alert(t0, "blackhole", 0.95, "0x0002"))
	if len(*isolated) != 0 {
		t.Error("isolated despite zero budget")
	}
	if len(*blocked) != 1 {
		t.Error("overflow not blocked")
	}
}

func TestPerAttackRules(t *testing.T) {
	policy := DefaultPolicy(5)
	policy.Rules["icmp-flood"] = Rule{Action: ActionBlock, MinConfidence: 0.5, Cooldown: time.Minute}
	policy.Rules["traffic-anomaly"] = Rule{Action: ActionNone}
	r := NewResponder(policy)
	var blocked []packet.NodeID
	r.Block = func(id packet.NodeID) error { blocked = append(blocked, id); return nil }

	r.HandleAlert(alert(t0, "icmp-flood", 0.7, "x"))
	r.HandleAlert(alert(t0, "traffic-anomaly", 0.99, "y"))
	if len(blocked) != 1 || blocked[0] != "x" {
		t.Errorf("blocked = %v", blocked)
	}
}

func TestHookFailureAudited(t *testing.T) {
	r := NewResponder(DefaultPolicy(5))
	r.Isolate = func(packet.NodeID) error { return errors.New("radio gone") }
	r.HandleAlert(alert(t0, "blackhole", 0.9, "0x0002"))
	audit := r.Audit()
	if len(audit) != 1 || audit[0].Note == "" {
		t.Errorf("audit = %+v", audit)
	}
	if len(r.Isolated()) != 0 {
		t.Error("failed isolation recorded as isolated")
	}
}

func TestRestore(t *testing.T) {
	r, _, _ := newTestResponder(5)
	r.HandleAlert(alert(t0, "blackhole", 0.9, "0x0002"))
	r.Restore("0x0002")
	if len(r.Isolated()) != 0 {
		t.Error("Restore did not lift isolation")
	}
}

func TestActionString(t *testing.T) {
	if ActionIsolate.String() != "isolate" || Action(9).String() != "action(9)" {
		t.Error("action strings")
	}
}
