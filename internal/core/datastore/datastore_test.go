package datastore

import (
	"bytes"
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

func capAt(sec int) *packet.Captured {
	raw := stack.BuildCTPBeacon(uint16(sec%250+1), 0, 10, uint8(sec))
	c, err := stack.Decode(packet.MediumIEEE802154, raw)
	if err != nil {
		panic(err)
	}
	c.Time = time.Unix(int64(1500000000+sec), 0).UTC()
	c.RSSI = -60
	return c
}

func TestSlidingWindow(t *testing.T) {
	s := New(4)
	for i := 0; i < 10; i++ {
		if err := s.Append(capAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 || s.Total() != 10 || s.Capacity() != 4 {
		t.Errorf("len=%d total=%d cap=%d", s.Len(), s.Total(), s.Capacity())
	}
	recent := s.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent = %d", len(recent))
	}
	// Oldest-first: packets 6,7,8,9.
	for i, c := range recent {
		want := time.Unix(int64(1500000000+6+i), 0).UTC()
		if !c.Time.Equal(want) {
			t.Errorf("recent[%d].Time = %v, want %v", i, c.Time, want)
		}
	}
	if got := s.Recent(2); len(got) != 2 || !got[1].Time.Equal(recent[3].Time) {
		t.Errorf("Recent(2) wrong: %v", got)
	}
}

func TestWindowSmallerThanCapacity(t *testing.T) {
	s := New(100)
	for i := 0; i < 3; i++ {
		_ = s.Append(capAt(i))
	}
	if got := len(s.Recent(0)); got != 3 {
		t.Errorf("recent = %d, want 3", got)
	}
}

func TestDefaultCapacity(t *testing.T) {
	if New(0).Capacity() != DefaultWindow {
		t.Error("default capacity")
	}
	if New(-5).Capacity() != DefaultWindow {
		t.Error("negative capacity")
	}
}

func TestDiskLogAndReplay(t *testing.T) {
	var buf bytes.Buffer
	s := New(8)
	s.SetLog(&buf)
	for i := 0; i < 5; i++ {
		if err := s.Append(capAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushLog(); err != nil {
		t.Fatal(err)
	}

	var replayed []*packet.Captured
	n, skipped, err := Replay(&buf, func(c *packet.Captured) { replayed = append(replayed, c) })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 5 || skipped != 0 {
		t.Errorf("replayed=%d skipped=%d", n, skipped)
	}
	// Replay must be transparent: same kinds, times and RSSI as live.
	for i, c := range replayed {
		if c.Kind != packet.KindCTPBeacon || c.RSSI != -60 {
			t.Errorf("replayed[%d] = %+v", i, c)
		}
		if !c.Time.Equal(time.Unix(int64(1500000000+i), 0).UTC()) {
			t.Errorf("replayed[%d].Time = %v", i, c.Time)
		}
	}
}

func TestReplayCorruptStream(t *testing.T) {
	if _, _, err := Replay(bytes.NewReader([]byte("garbage....")), func(*packet.Captured) {}); err == nil {
		t.Error("expected error for corrupt stream")
	}
}

func TestFlushWithoutLog(t *testing.T) {
	if err := New(4).FlushLog(); err != nil {
		t.Errorf("FlushLog without log: %v", err)
	}
}
