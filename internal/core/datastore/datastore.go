// Package datastore implements Kalis' Data Store (§IV-B2): it listens
// for newly captured packets, keeps a sliding window of the most recent
// traffic in memory for modules to access, optionally logs all traffic
// to disk via the trace format, and can replay logged traffic
// transparently to the detection modules.
package datastore

import (
	"fmt"
	"io"
	"sync"

	"kalis/internal/packet"
	"kalis/internal/telemetry"
	"kalis/internal/trace"
)

// DefaultWindow is the default sliding-window capacity in packets.
const DefaultWindow = 4096

// Store is the Data Store of one Kalis node.
type Store struct {
	mu      sync.RWMutex
	window  []*packet.Captured // ring buffer
	head    int                // next write position
	size    int                // number of valid entries
	total   uint64             // packets ever appended
	logger  *trace.Writer
	logSink io.Writer // raw writer behind logger, for sync/close
	met     StoreMetrics
}

// StoreMetrics are the store's optional telemetry hooks; zero-value
// fields are skipped (all telemetry types are nil-safe).
type StoreMetrics struct {
	// Occupancy tracks the number of packets in the sliding window.
	Occupancy *telemetry.Gauge
	// Appended counts packets ever appended.
	Appended *telemetry.Counter
}

// SetMetrics installs telemetry hooks. Call it before traffic flows.
func (s *Store) SetMetrics(met StoreMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = met
}

// New creates a Store with the given sliding-window capacity (packets).
// capacity <= 0 selects DefaultWindow.
func New(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultWindow
	}
	return &Store{window: make([]*packet.Captured, capacity)}
}

// SetLog enables logging of all appended traffic to w in the Kalis
// trace format. Pass a file to log on disk; logging failures are
// reported by Append.
func (s *Store) SetLog(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = trace.NewWriter(w)
	s.logSink = w
}

// Append records a captured packet into the sliding window (and the
// disk log if enabled).
func (s *Store) Append(c *packet.Captured) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.window[s.head] = c
	s.head = (s.head + 1) % len(s.window)
	if s.size < len(s.window) {
		s.size++
	}
	s.total++
	s.met.Occupancy.Set(int64(s.size))
	s.met.Appended.Inc()
	if s.logger != nil {
		raw := rawOf(c)
		if raw == nil {
			return nil // nothing loggable (synthetic capture)
		}
		//lint:ignore hotalloc the stored Record is the datastore's product — one per logged capture, ring-bounded by the logger
		rec := &trace.Record{Time: c.Time, Medium: c.Medium, RSSI: c.RSSI, Raw: raw, Truth: c.Truth}
		if err := s.logger.Write(rec); err != nil {
			//lint:ignore hotpath disk-log failure branch; logging is off in passive deployments and the wrap is the error report itself
			return fmt.Errorf("datastore: log: %w", err)
		}
	}
	return nil
}

// rawOf re-encodes the outermost layer when it supports encoding; the
// capture path does not retain original raw bytes, so logging uses the
// layer encoders.
func rawOf(c *packet.Captured) []byte {
	if len(c.Layers) == 0 {
		return nil
	}
	type encoder interface{ Encode() []byte }
	if e, ok := c.Layers[0].(encoder); ok {
		return e.Encode()
	}
	return nil
}

// FlushLog flushes the disk log, if enabled.
func (s *Store) FlushLog() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logger == nil {
		return nil
	}
	return s.logger.Flush()
}

// CloseLog flushes the disk log and, when the underlying writer is a
// file or other closer, syncs and closes it — so a clean node shutdown
// never strands the last buffered records in memory. The log is
// detached either way; further appends are not logged.
func (s *Store) CloseLog() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logger == nil {
		return nil
	}
	err := s.logger.Flush()
	if f, ok := s.logSink.(interface{ Sync() error }); ok {
		if serr := f.Sync(); err == nil {
			err = serr
		}
	}
	if c, ok := s.logSink.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	s.logger, s.logSink = nil, nil
	return err
}

// Recent returns up to n of the most recent packets, oldest first.
// n <= 0 returns the whole window.
func (s *Store) Recent(n int) []*packet.Captured {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n <= 0 || n > s.size {
		n = s.size
	}
	out := make([]*packet.Captured, 0, n)
	start := s.head - n
	if start < 0 {
		start += len(s.window)
	}
	for i := 0; i < n; i++ {
		out = append(out, s.window[(start+i)%len(s.window)])
	}
	return out
}

// Len returns the number of packets currently in the window.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Total returns the number of packets ever appended.
func (s *Store) Total() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// Capacity returns the sliding-window capacity.
func (s *Store) Capacity() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.window)
}

// SnapshotTo encodes the current sliding-window contents to w as a
// Kalis trace stream, oldest first — the Data Store section of a
// durable node snapshot reuses the trace-log encoding wholesale.
// Synthetic captures whose outermost layer cannot re-encode are
// skipped, exactly as the disk log skips them. It returns the number
// of records written.
func (s *Store) SnapshotTo(w io.Writer) (int, error) {
	window := s.Recent(0) // copies under RLock; encode without the lock
	tw := trace.NewWriter(w)
	for _, c := range window {
		raw := rawOf(c)
		if raw == nil {
			continue
		}
		rec := &trace.Record{Time: c.Time, Medium: c.Medium, RSSI: c.RSSI, Raw: raw, Truth: c.Truth}
		if err := tw.Write(rec); err != nil {
			return tw.Count(), fmt.Errorf("datastore: snapshot: %w", err)
		}
	}
	if err := tw.Flush(); err != nil {
		return tw.Count(), fmt.Errorf("datastore: snapshot: %w", err)
	}
	return tw.Count(), nil
}

// Restore loads recovered trace records into the sliding window in
// order, bypassing the disk log and telemetry (recovery runs before
// either is wired). Records that fail protocol decoding are skipped
// and counted. Restore is meant for an empty, pre-traffic store; the
// window retains the most recent records if they exceed capacity.
func (s *Store) Restore(recs []*trace.Record) (restored, skipped int) {
	skipped = trace.Replay(recs, func(c *packet.Captured) {
		restored++
		s.mu.Lock()
		s.window[s.head] = c
		s.head = (s.head + 1) % len(s.window)
		if s.size < len(s.window) {
			s.size++
		}
		s.total++
		s.mu.Unlock()
	})
	return restored, skipped
}

// Replay reads a trace stream and feeds every decodable record to fn in
// order — "logs from disk can also be replayed for traffic analysis by
// the network administrator in case security incidents are detected"
// (§IV-B2). It returns the number of records replayed and skipped.
func Replay(r io.Reader, fn func(*packet.Captured)) (replayed, skipped int, err error) {
	recs, err := trace.ReadAll(r)
	if err != nil {
		return 0, 0, fmt.Errorf("datastore: replay: %w", err)
	}
	skipped = trace.Replay(recs, func(c *packet.Captured) {
		replayed++
		fn(c)
	})
	return replayed, skipped, nil
}
