package detection

import (
	"testing"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
)

// gossipHealth injects a peer node's ModuleHealth report as the gossip
// layer would deliver it.
func gossipHealth(t *testing.T, kb *knowledge.Base, creator, mod, state string, ver uint64) {
	t.Helper()
	ok := kb.AcceptGossip(creator, knowledge.Knowgget{
		Creator: creator,
		Label:   knowledge.LabelModuleHealth + "." + mod,
		Value:   state,
		Version: ver,
	})
	if !ok {
		t.Fatalf("gossip %s/%s=%s rejected", creator, mod, state)
	}
}

func TestHealthCorrAlertsOnCoordinatedQuarantine(t *testing.T) {
	h := newHarness(true)
	mod, err := NewHealthCorr(map[string]string{"minPeers": "3"})
	if err != nil {
		t.Fatal(err)
	}
	h.kb.PutInt("Peers", 2)
	if !mod.Required(h.kb) {
		t.Fatal("not required with peers present")
	}
	mod.Activate(h.ctx)

	// Two peers and the local supervisor quarantine the same module.
	gossipHealth(t, h.kb, "K2", "SybilModule", "quarantined", 1)
	gossipHealth(t, h.kb, "K3", "SybilModule", "quarantined", 1)
	if len(h.alerts) != 0 {
		t.Fatalf("alerted below threshold: %v", h.alerts)
	}
	h.kb.PutCollective(knowledge.LabelModuleHealth+".SybilModule", "", "quarantined")

	if n := h.attackNames()[attack.CoordinatedQuarantine]; n != 1 {
		t.Fatalf("coordinated-quarantine alerts = %d, want 1", n)
	}
	a := h.alerts[0]
	if len(a.Suspects) != 3 {
		t.Fatalf("suspects = %v, want 3 reporters", a.Suspects)
	}

	// Cooldown: a fourth report inside the suppress window stays quiet.
	gossipHealth(t, h.kb, "K4", "SybilModule", "quarantined", 1)
	if len(h.alerts) != 1 {
		t.Fatalf("cooldown violated: %d alerts", len(h.alerts))
	}
}

func TestHealthCorrRecoveryRetiresReports(t *testing.T) {
	h := newHarness(true)
	mod, err := NewHealthCorr(map[string]string{"minPeers": "2"})
	if err != nil {
		t.Fatal(err)
	}
	h.kb.PutInt("Peers", 2)
	mod.Activate(h.ctx)

	gossipHealth(t, h.kb, "K2", "FloodModule", "quarantined", 1)
	// K2 recovers before anyone else reports: its probing transition
	// must retire the earlier quarantine report.
	gossipHealth(t, h.kb, "K3", "FloodModule", "quarantined", 1)
	if len(h.alerts) != 1 {
		t.Fatalf("two fresh reports at minPeers=2: alerts = %d", len(h.alerts))
	}
	gossipHealth(t, h.kb, "K2", "FloodModule", "probing", 2)
	gossipHealth(t, h.kb, "K3", "FloodModule", "probing", 2)
	gossipHealth(t, h.kb, "K3", "FloodModule", "quarantined", 3)
	if len(h.alerts) != 1 {
		t.Fatalf("retired report still counted: alerts = %d", len(h.alerts))
	}

	// Different modules quarantining on different nodes never correlate.
	gossipHealth(t, h.kb, "K4", "SinkholeModule", "quarantined", 1)
	if len(h.alerts) != 1 {
		t.Fatalf("cross-module correlation: alerts = %d", len(h.alerts))
	}
}

func TestHealthCorrWindowExpiry(t *testing.T) {
	h := newHarness(true)
	mod, err := NewHealthCorr(map[string]string{"minPeers": "2", "window": "1ms"})
	if err != nil {
		t.Fatal(err)
	}
	h.kb.PutInt("Peers", 1)
	mod.Activate(h.ctx)

	gossipHealth(t, h.kb, "K2", "SybilModule", "quarantined", 1)
	time.Sleep(5 * time.Millisecond)
	// The first report has aged out of the 1ms window; the second alone
	// is below threshold.
	gossipHealth(t, h.kb, "K3", "SybilModule", "quarantined", 1)
	if len(h.alerts) != 0 {
		t.Fatalf("stale report correlated: %v", h.alerts)
	}
}

func TestHealthCorrGating(t *testing.T) {
	h := newHarness(false) // naive baseline: no knowledge use
	mod, err := NewHealthCorr(map[string]string{"minPeers": "1"})
	if err != nil {
		t.Fatal(err)
	}
	h.kb.PutInt("Peers", 1)
	mod.Activate(h.ctx)
	gossipHealth(t, h.kb, "K2", "SybilModule", "quarantined", 1)
	if len(h.alerts) != 0 {
		t.Fatalf("knowledge-driven correlation in baseline mode: %v", h.alerts)
	}

	// Not required without peers.
	kb := knowledge.NewBase("K9")
	if mod.Required(kb) {
		t.Fatal("required without Peers knowgget")
	}
	kb.PutInt("Peers", 0)
	if mod.Required(kb) {
		t.Fatal("required with zero peers")
	}

	// Bad parameters are rejected.
	if _, err := NewHealthCorr(map[string]string{"minPeers": "x"}); err == nil {
		t.Fatal("bad minPeers accepted")
	}
	if _, err := NewHealthCorr(map[string]string{"window": "x"}); err == nil {
		t.Fatal("bad window accepted")
	}
	if _, err := NewHealthCorr(map[string]string{"cooldown": "x"}); err == nil {
		t.Fatal("bad cooldown accepted")
	}
}
