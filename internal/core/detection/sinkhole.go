package detection

import (
	"fmt"
	"strconv"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/sixlowpan"
)

// SinkholeName is the registry name of the sinkhole-detection module.
const SinkholeName = "SinkholeModule"

// Sinkhole detects sinkhole attacks on collection/RPL routing: a
// malicious node advertises an implausibly attractive route cost (CTP
// beacon ETX, RPL DIO rank) to pull traffic towards itself. The module
// learns each advertiser's cost baseline and the legitimate root's
// cost, and alerts when a non-root advertiser suddenly claims a cost in
// the root's band or far below its own baseline.
type Sinkhole struct {
	base
	// dropFactor is the fraction of its own baseline below which an
	// advertisement is suspicious (default 0.4).
	dropFactor float64
	// rootBand is the cost at or below which only roots may advertise.
	rootBand uint16
	// minObservations per advertiser before its baseline is trusted.
	minObservations int
	// learn is the initial period during which root-band advertisers
	// are accepted as legitimate collection roots.
	learn    time.Duration
	cooldown time.Duration

	firstAt  time.Time
	baseline map[packet.NodeID]float64
	count    map[packet.NodeID]int
	roots    map[packet.NodeID]bool
	suppress map[packet.NodeID]time.Time
}

var _ module.Module = (*Sinkhole)(nil)

// NewSinkhole creates the module. Parameters: "dropFactor" (float,
// default 0.4), "rootBand" (int, default 2), "cooldown" (duration).
func NewSinkhole(params map[string]string) (module.Module, error) {
	d := &Sinkhole{
		dropFactor:      0.4,
		rootBand:        2,
		minObservations: 2,
		learn:           45 * time.Second,
		cooldown:        20 * time.Second,
	}
	var err error
	if v, ok := params["learn"]; ok {
		if d.learn, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("learn: %w", err)
		}
	}
	if v, ok := params["dropFactor"]; ok {
		if d.dropFactor, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("dropFactor: %w", err)
		}
	}
	if v, ok := params["rootBand"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("rootBand: %w", err)
		}
		d.rootBand = uint16(n)
	}
	if v, ok := params["cooldown"]; ok {
		if d.cooldown, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
	}
	return d, nil
}

// Name implements module.Module.
func (d *Sinkhole) Name() string { return SinkholeName }

// WatchLabels implements module.Module.
func (d *Sinkhole) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMultihop}
}

// Required implements module.Module: sinkholes are a routing attack —
// they need a multi-hop collection topology.
func (d *Sinkhole) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) && boolIs(kb, knowledge.LabelMultihop, true)
}

// Activate implements module.Module.
func (d *Sinkhole) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.firstAt = time.Time{}
	d.baseline = make(map[packet.NodeID]float64)
	d.count = make(map[packet.NodeID]int)
	d.roots = make(map[packet.NodeID]bool)
	d.suppress = make(map[packet.NodeID]time.Time)
}

// HandlePacket implements module.Module.
func (d *Sinkhole) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	if d.firstAt.IsZero() {
		d.firstAt = c.Time
	}
	cost, ok := advertisedCost(c)
	if !ok {
		return
	}
	id := c.Transmitter
	n := d.count[id]

	// During the learning period, root-band advertisers are accepted
	// as the legitimate collection roots.
	learning := c.Time.Sub(d.firstAt) <= d.learn
	if cost <= float64(d.rootBand) && learning {
		d.roots[id] = true
	}
	if d.roots[id] {
		return
	}

	inRootBand := cost <= float64(d.rootBand)
	fellBelow := !inRootBand &&
		n >= d.minObservations && d.baseline[id] > 0 && cost < d.baseline[id]*d.dropFactor
	prev := d.baseline[id]

	d.count[id] = n + 1
	if !inRootBand && !fellBelow {
		// Update the baseline only with sane advertisements.
		if d.baseline[id] == 0 {
			d.baseline[id] = cost
		} else {
			d.baseline[id] += 0.3 * (cost - d.baseline[id])
		}
		return
	}
	if until, ok := d.suppress[id]; ok && c.Time.Before(until) {
		return
	}
	d.suppress[id] = c.Time.Add(d.cooldown)
	// Reason formatting happens only past the cooldown gate: at most
	// once per suspect per cooldown window, never per packet.
	var reason string
	if inRootBand {
		//lint:ignore hotpath cooldown-gated alert emission, at most one format per suspect per window
		reason = fmt.Sprintf("non-root advertises root-band cost %.0f", cost)
	} else {
		//lint:ignore hotpath cooldown-gated alert emission, at most one format per suspect per window
		reason = fmt.Sprintf("advertised cost fell from %.0f to %.0f", prev, cost)
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Sinkhole,
		Module:     d.Name(),
		Suspects:   []packet.NodeID{id},
		Confidence: 0.85,
		Details:    reason,
	})
}

// advertisedCost extracts a route-cost advertisement from the capture.
func advertisedCost(c *packet.Captured) (float64, bool) {
	if b, ok := c.Layer("ctp-beacon").(*ctp.Beacon); ok {
		return float64(b.ETX), true
	}
	if m, ok := c.Layer("rpl").(*sixlowpan.RPLMessage); ok && m.Type == sixlowpan.RPLDIO {
		return float64(m.Rank), true
	}
	return 0, false
}
