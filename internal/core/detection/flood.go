package detection

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/tcp"
)

// Registry names of the rate-based detection modules.
const (
	ICMPFloodName = "ICMPFloodModule"
	SmurfName     = "SmurfModule"
	SYNFloodName  = "SYNFloodModule"
)

// rateEvent is one observation relevant to a rate-based detector.
type rateEvent struct {
	at   time.Time
	rssi float64
	src  packet.NodeID
}

// rateTracker keeps a sliding window of events per victim and reports
// threshold crossings with per-victim alert suppression, so one attack
// burst yields one alert.
type rateTracker struct {
	window   time.Duration
	min      int
	cooldown time.Duration

	events   map[packet.NodeID][]rateEvent
	suppress map[packet.NodeID]time.Time
}

func newRateTracker(window time.Duration, minEvents int, cooldown time.Duration) *rateTracker {
	return &rateTracker{
		window:   window,
		min:      minEvents,
		cooldown: cooldown,
		events:   make(map[packet.NodeID][]rateEvent),
		suppress: make(map[packet.NodeID]time.Time),
	}
}

func (r *rateTracker) reset() {
	r.events = make(map[packet.NodeID][]rateEvent)
	r.suppress = make(map[packet.NodeID]time.Time)
}

// add records an event and returns the current window for the victim if
// the rate threshold is crossed (and the victim is not in cooldown).
func (r *rateTracker) add(victim packet.NodeID, ev rateEvent) []rateEvent {
	evs := append(r.events[victim], ev)
	// Prune events older than the window.
	cut := 0
	for cut < len(evs) && ev.at.Sub(evs[cut].at) > r.window {
		cut++
	}
	evs = evs[cut:]
	r.events[victim] = evs
	if len(evs) < r.min {
		return nil
	}
	if until, ok := r.suppress[victim]; ok && ev.at.Before(until) {
		return nil
	}
	r.suppress[victim] = ev.at.Add(r.cooldown)
	return evs
}

func (r *rateTracker) rssis(evs []rateEvent) []float64 {
	out := make([]float64, len(evs))
	for i, e := range evs {
		out[i] = e.rssi
	}
	return out
}

func (r *rateTracker) meanRSSI(evs []rateEvent) float64 {
	var sum float64
	for _, e := range evs {
		sum += e.rssi
	}
	return sum / float64(len(evs))
}

func (r *rateTracker) srcs(evs []rateEvent) []packet.NodeID {
	seen := make(map[packet.NodeID]bool)
	var out []packet.NodeID
	for _, e := range evs {
		if !seen[e.src] {
			seen[e.src] = true
			out = append(out, e.src)
		}
	}
	return out
}

// parseRateParams reads the common rate-detector parameters.
func parseRateParams(params map[string]string, defMin int) (window time.Duration, minEvents int, cooldown time.Duration, err error) {
	window, minEvents, cooldown = 5*time.Second, defMin, 10*time.Second
	if v, ok := params["window"]; ok {
		if window, err = time.ParseDuration(v); err != nil {
			return 0, 0, 0, fmt.Errorf("window: %w", err)
		}
	}
	if v, ok := params["detectionThresh"]; ok {
		if minEvents, err = strconv.Atoi(v); err != nil {
			return 0, 0, 0, fmt.Errorf("detectionThresh: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if cooldown, err = time.ParseDuration(v); err != nil {
			return 0, 0, 0, fmt.Errorf("cooldown: %w", err)
		}
	}
	return window, minEvents, cooldown, nil
}

// ICMPFlood detects ICMP Flood attacks: a high rate of ICMP Echo Reply
// messages to one victim (§III-A1). In knowledge-driven mode on a
// multi-hop network it additionally verifies that the replies come from
// a single physical transmitter (one RSSI cluster) — the signature that
// distinguishes a flood (one attacker, many spoofed identities) from a
// Smurf (many real amplifiers); on single-hop networks the distinction
// is unnecessary because Smurf is impossible there. Without knowledge
// (traditional-IDS baseline) it is a naive symptom-only detector.
type ICMPFlood struct {
	base
	tracker *rateTracker
}

var _ module.Module = (*ICMPFlood)(nil)

// NewICMPFlood creates the module. Parameters: "window", "cooldown"
// (durations), "detectionThresh" (events per window, default 25).
func NewICMPFlood(params map[string]string) (module.Module, error) {
	w, n, cd, err := parseRateParams(params, 25)
	if err != nil {
		return nil, err
	}
	return &ICMPFlood{tracker: newRateTracker(w, n, cd)}, nil
}

// Name implements module.Module.
func (d *ICMPFlood) Name() string { return ICMPFloodName }

// WatchLabels implements module.Module.
func (d *ICMPFlood) WatchLabels() []string { return []string{knowledge.LabelMediums} }

// Required implements module.Module: ICMP floods need IP traffic,
// observed on the WiFi (or wired) medium.
func (d *ICMPFlood) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumWiFi) || hasMedium(kb, packet.MediumWired)
}

// Activate implements module.Module.
func (d *ICMPFlood) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.tracker.reset()
}

// HandlePacket implements module.Module.
func (d *ICMPFlood) HandlePacket(c *packet.Captured) {
	if !d.active() || c.Kind != packet.KindICMPEchoReply {
		return
	}
	evs := d.tracker.add(c.Dst, rateEvent{at: c.Time, rssi: c.RSSI, src: c.Src})
	if evs == nil {
		return
	}
	confidence := 0.7
	if d.knowledgeDriven() {
		if boolIs(d.ctx.KB, knowledge.LabelMultihop, true) {
			// Multi-hop variant: a flood has one physical source, so
			// the replies' RSSI spread stays near the shadowing level.
			if rssiStdDev(d.tracker.rssis(evs)) > 2.0 {
				return
			}
		}
		confidence = 0.95
	}
	suspects := d.suspects(evs)
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.ICMPFlood,
		Module:     d.Name(),
		Victim:     c.Dst,
		Suspects:   suspects,
		Confidence: confidence,
		Details:    fmt.Sprintf("%d echo replies to %s within %s", len(evs), c.Dst, d.tracker.window),
	})
}

// suspects identifies the physical attacker by matching the flood
// frames' signal strength against the historical fingerprints of
// monitored entities. The identities the flood claims as senders are
// excluded: their fingerprints are contaminated by the attack itself
// (the spoofed frames update them at the attacker's RSSI). The spoofed
// sender identities are the naive fallback.
func (d *ICMPFlood) suspects(evs []rateEvent) []packet.NodeID {
	srcs := d.tracker.srcs(evs)
	if d.knowledgeDriven() {
		exclude := make(map[packet.NodeID]bool, len(srcs))
		for _, s := range srcs {
			exclude[s] = true
		}
		mean := d.tracker.meanRSSI(evs)
		if m := fingerprintMatch(d.ctx.KB, mean, 3, exclude); len(m) > 0 {
			return m[:1]
		}
	}
	return srcs
}

// Smurf detects Smurf attacks: a high rate of ICMP Echo Reply messages
// to one victim produced by many real amplifier nodes (§III-A1). In
// knowledge-driven mode it requires several distinct physical
// transmitters (≥3 RSSI clusters); without knowledge it is symptom-only
// and therefore indistinguishable from ICMPFlood — exactly the
// ambiguity the paper attributes to the traditional IDS.
type Smurf struct {
	base
	tracker *rateTracker
	// edges is the module-local communication graph used for the
	// 2-hop suspect heuristic (maintained from observed traffic, so it
	// works even without a Knowledge Base).
	edges map[packet.NodeID]map[packet.NodeID]bool
}

var _ module.Module = (*Smurf)(nil)

// NewSmurf creates the module. Parameters as NewICMPFlood.
func NewSmurf(params map[string]string) (module.Module, error) {
	w, n, cd, err := parseRateParams(params, 25)
	if err != nil {
		return nil, err
	}
	return &Smurf{tracker: newRateTracker(w, n, cd)}, nil
}

// Name implements module.Module.
func (d *Smurf) Name() string { return SmurfName }

// WatchLabels implements module.Module.
func (d *Smurf) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMultihop}
}

// Required implements module.Module: "the Smurf attack is not possible
// in single-hop networks" (§III-A1) — the module is needed only on
// multi-hop IP networks.
func (d *Smurf) Required(kb *knowledge.Base) bool {
	ip := hasMedium(kb, packet.MediumWiFi) || hasMedium(kb, packet.MediumWired)
	return ip && boolIs(kb, knowledge.LabelMultihop, true)
}

// Activate implements module.Module.
func (d *Smurf) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.tracker.reset()
	d.edges = make(map[packet.NodeID]map[packet.NodeID]bool)
}

// HandlePacket implements module.Module.
func (d *Smurf) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	d.observeEdge(c.Src, c.Dst)
	if c.Kind != packet.KindICMPEchoReply {
		return
	}
	evs := d.tracker.add(c.Dst, rateEvent{at: c.Time, rssi: c.RSSI, src: c.Src})
	if evs == nil {
		return
	}
	confidence := 0.7
	if d.knowledgeDriven() {
		// Smurf replies come from several distinct amplifiers. The
		// small gap tolerance is deliberate: accidental splits only
		// raise the count (harmless for a ≥3 test) while merges, the
		// failure mode, need a chain of extreme shadowing outliers.
		if clusterRSSI(d.tracker.rssis(evs), 2.0) < 3 {
			return
		}
		confidence = 0.9
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Smurf,
		Module:     d.Name(),
		Victim:     c.Dst,
		Suspects:   d.suspects(c.Dst),
		Confidence: confidence,
		Details:    fmt.Sprintf("%d amplified echo replies to %s within %s", len(evs), c.Dst, d.tracker.window),
	})
}

func (d *Smurf) observeEdge(src, dst packet.NodeID) {
	if src == "" || dst == "" || dst == packet.Broadcast {
		return
	}
	if d.edges[src] == nil {
		d.edges[src] = make(map[packet.NodeID]bool)
	}
	d.edges[src][dst] = true
	if d.edges[dst] == nil {
		d.edges[dst] = make(map[packet.NodeID]bool)
	}
	d.edges[dst][src] = true
}

// suspects implements the paper's heuristic: "the Smurf attack
// detection module considers as suspect all nodes at a 2-hop distance
// from the victim" over the module's observed communication graph.
func (d *Smurf) suspects(victim packet.NodeID) []packet.NodeID {
	dist := map[packet.NodeID]int{victim: 0}
	queue := []packet.NodeID{victim}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[cur] >= 2 {
			continue
		}
		for nb := range d.edges[cur] {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	var out []packet.NodeID
	for id, dd := range dist {
		if dd == 2 {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		// Simplistic graph exploration collapses to the victim itself
		// (the paper's §VI-B1 anecdote: revoking it disconnects the
		// network).
		out = []packet.NodeID{victim}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SYNFlood detects TCP SYN flood attacks: a high rate of connection-
// opening SYNs to one destination whose initiators never complete the
// handshake (spoofed sources cannot send the third ACK).
type SYNFlood struct {
	base
	tracker *rateTracker
	// pending tracks open handshakes by "src|dst".
	pending map[string]bool
	// completions records handshake-completing ACK times per victim.
	completions map[packet.NodeID][]time.Time
}

var _ module.Module = (*SYNFlood)(nil)

// NewSYNFlood creates the module. Parameters as NewICMPFlood
// (detectionThresh default 25).
func NewSYNFlood(params map[string]string) (module.Module, error) {
	w, n, cd, err := parseRateParams(params, 25)
	if err != nil {
		return nil, err
	}
	return &SYNFlood{tracker: newRateTracker(w, n, cd)}, nil
}

// Name implements module.Module.
func (d *SYNFlood) Name() string { return SYNFloodName }

// WatchLabels implements module.Module.
func (d *SYNFlood) WatchLabels() []string { return []string{knowledge.LabelMediums} }

// Required implements module.Module.
func (d *SYNFlood) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumWiFi) || hasMedium(kb, packet.MediumWired)
}

// Activate implements module.Module.
func (d *SYNFlood) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.tracker.reset()
	d.pending = make(map[string]bool)
	d.completions = make(map[packet.NodeID][]time.Time)
}

// HandlePacket implements module.Module.
func (d *SYNFlood) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	switch c.Kind {
	case packet.KindTCPACK:
		// A pure ACK from an initiator with an open handshake is the
		// handshake-completing third packet — legitimate bursts
		// produce these, spoofed floods cannot.
		if seg, ok := c.Layer("tcp").(*tcp.Segment); ok && seg.IsACK() && len(seg.Payload) == 0 {
			key := string(c.Src) + "|" + string(c.Dst)
			if d.pending[key] {
				delete(d.pending, key)
				d.completions[c.Dst] = append(d.completions[c.Dst], c.Time)
			}
		}
		return
	case packet.KindTCPSYN:
		d.pending[string(c.Src)+"|"+string(c.Dst)] = true
	default:
		return
	}
	evs := d.tracker.add(c.Dst, rateEvent{at: c.Time, rssi: c.RSSI, src: c.Src})
	if evs == nil {
		return
	}
	// A legitimate burst completes handshakes; a flood leaves them
	// half-open.
	comps := d.completions[c.Dst]
	cut := 0
	for cut < len(comps) && c.Time.Sub(comps[cut]) > d.tracker.window {
		cut++
	}
	comps = comps[cut:]
	d.completions[c.Dst] = comps
	if len(comps) >= len(evs)/2 {
		return
	}
	suspects := d.tracker.srcs(evs)
	confidence := 0.7
	if d.knowledgeDriven() {
		exclude := make(map[packet.NodeID]bool, len(suspects))
		for _, s := range suspects {
			exclude[s] = true
		}
		mean := d.tracker.meanRSSI(evs)
		if m := fingerprintMatch(d.ctx.KB, mean, 3, exclude); len(m) > 0 {
			suspects = m[:1]
		}
		confidence = 0.9
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.SYNFlood,
		Module:     d.Name(),
		Victim:     c.Dst,
		Suspects:   suspects,
		Confidence: confidence,
		Details:    fmt.Sprintf("%d half-open SYNs to %s within %s", len(evs), c.Dst, d.tracker.window),
	})
}
