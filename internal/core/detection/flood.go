package detection

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/flow"
	"kalis/internal/packet"
)

// Registry names of the rate-based detection modules.
const (
	ICMPFloodName = "ICMPFloodModule"
	SmurfName     = "SmurfModule"
	SYNFloodName  = "SYNFloodModule"
)

// Kind masks for the victim windows shared through the flow table.
var (
	echoReplyMask = flow.MaskOf(packet.KindICMPEchoReply)
	tcpSYNMask    = flow.MaskOf(packet.KindTCPSYN)
)

// The per-victim alert policy — event threshold plus cooldown — is
// enforced by flow.VictimWindow.Gate, keyed by module name so the
// several modules reading one shared window gate independently, and
// armed in the same critical section as the threshold check so a
// sharded node (whose per-shard module instances share the window, see
// flow.Trackers) raises one alert per burst per module, not one per
// shard.

// eventRSSIs extracts the RSSI samples of a victim window.
func eventRSSIs(evs []flow.Event) []float64 {
	out := make([]float64, len(evs))
	for i, e := range evs {
		out[i] = e.RSSI
	}
	return out
}

// meanEventRSSI returns the mean RSSI of a victim window.
func meanEventRSSI(evs []flow.Event) float64 {
	var sum float64
	for _, e := range evs {
		sum += e.RSSI
	}
	return sum / float64(len(evs))
}

// eventSrcs returns the distinct claimed sender identities of a victim
// window, in first-seen order.
//
//lint:coldpath runs only during gate-passed alert formation, cooldown-bounded
func eventSrcs(evs []flow.Event) []packet.NodeID {
	seen := make(map[packet.NodeID]bool)
	var out []packet.NodeID
	for _, e := range evs {
		if !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
	}
	return out
}

// parseRateParams reads the common rate-detector parameters.
func parseRateParams(params map[string]string, defMin int) (window time.Duration, minEvents int, cooldown time.Duration, err error) {
	window, minEvents, cooldown = 5*time.Second, defMin, 10*time.Second
	if v, ok := params["window"]; ok {
		if window, err = time.ParseDuration(v); err != nil {
			return 0, 0, 0, fmt.Errorf("window: %w", err)
		}
	}
	if v, ok := params["detectionThresh"]; ok {
		if minEvents, err = strconv.Atoi(v); err != nil {
			return 0, 0, 0, fmt.Errorf("detectionThresh: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if cooldown, err = time.ParseDuration(v); err != nil {
			return 0, 0, 0, fmt.Errorf("cooldown: %w", err)
		}
	}
	return window, minEvents, cooldown, nil
}

// ICMPFlood detects ICMP Flood attacks: a high rate of ICMP Echo Reply
// messages to one victim (§III-A1). The rate evidence comes from the
// flow layer's shared victim window (updated once per packet before
// module fan-out). In knowledge-driven mode on a multi-hop network the
// module additionally verifies that the replies come from a single
// physical transmitter (one RSSI cluster) — the signature that
// distinguishes a flood (one attacker, many spoofed identities) from a
// Smurf (many real amplifiers); on single-hop networks the distinction
// is unnecessary because Smurf is impossible there. Without knowledge
// (traditional-IDS baseline) it is a naive symptom-only detector.
type ICMPFlood struct {
	base
	window    time.Duration
	minEvents int
	cooldown  time.Duration
	win       *flow.VictimWindow
	// self marks a standalone (table-less) window the module must
	// observe packets into itself.
	self bool
}

var _ module.Module = (*ICMPFlood)(nil)

// NewICMPFlood creates the module. Parameters: "window", "cooldown"
// (durations), "detectionThresh" (events per window, default 25).
func NewICMPFlood(params map[string]string) (module.Module, error) {
	w, n, cd, err := parseRateParams(params, 25)
	if err != nil {
		return nil, err
	}
	return &ICMPFlood{window: w, minEvents: n, cooldown: cd}, nil
}

// Name implements module.Module.
func (d *ICMPFlood) Name() string { return ICMPFloodName }

// WatchLabels implements module.Module.
func (d *ICMPFlood) WatchLabels() []string { return []string{knowledge.LabelMediums} }

// Required implements module.Module: ICMP floods need IP traffic,
// observed on the WiFi (or wired) medium.
func (d *ICMPFlood) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumWiFi) || hasMedium(kb, packet.MediumWired)
}

// Activate implements module.Module.
func (d *ICMPFlood) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	if ctx.Flows != nil {
		d.win, d.self = ctx.Flows.VictimWindow(echoReplyMask, d.window), false
	} else {
		d.win, d.self = flow.NewVictimWindow(echoReplyMask, d.window), true
	}
	d.win.ResetGate(d.Name())
}

// Deactivate implements module.Module.
func (d *ICMPFlood) Deactivate() {
	d.win.Release()
	d.win = nil
	d.base.Deactivate()
}

// HandlePacket implements module.Module.
func (d *ICMPFlood) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	if d.self {
		d.win.Observe(c)
	}
	if c.Kind != packet.KindICMPEchoReply {
		return
	}
	if !d.win.Gate(d.Name(), c.Dst, d.minEvents, d.cooldown, c.Time) {
		return
	}
	evs := d.win.Events(c.Dst, c.Time)
	confidence := 0.7
	if d.knowledgeDriven() {
		if boolIs(d.ctx.KB, knowledge.LabelMultihop, true) {
			// Multi-hop variant: a flood has one physical source, so
			// the replies' RSSI spread stays near the shadowing level.
			if rssiStdDev(eventRSSIs(evs)) > 2.0 {
				return
			}
		}
		confidence = 0.95
	}
	suspects := d.suspects(evs)
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.ICMPFlood,
		Module:     d.Name(),
		Victim:     c.Dst,
		Suspects:   suspects,
		Confidence: confidence,
		Details:    fmt.Sprintf("%d echo replies to %s within %s", len(evs), packet.CleanID(c.Dst), d.window),
	})
}

// suspects identifies the physical attacker by matching the flood
// frames' signal strength against the historical fingerprints of
// monitored entities. The identities the flood claims as senders are
// excluded: their fingerprints are contaminated by the attack itself
// (the spoofed frames update them at the attacker's RSSI). The spoofed
// sender identities are the naive fallback.
func (d *ICMPFlood) suspects(evs []flow.Event) []packet.NodeID {
	srcs := eventSrcs(evs)
	if d.knowledgeDriven() {
		exclude := make(map[packet.NodeID]bool, len(srcs))
		for _, s := range srcs {
			exclude[s] = true
		}
		mean := meanEventRSSI(evs)
		if m := fingerprintMatch(d.ctx.KB, mean, 3, exclude); len(m) > 0 {
			return m[:1]
		}
	}
	return srcs
}

// Smurf detects Smurf attacks: a high rate of ICMP Echo Reply messages
// to one victim produced by many real amplifier nodes (§III-A1). The
// rate evidence comes from the flow layer's shared victim window — the
// same window the ICMP-flood module reads, updated once per packet for
// both. In knowledge-driven mode it requires several distinct physical
// transmitters (≥3 RSSI clusters); without knowledge it is symptom-only
// and therefore indistinguishable from ICMPFlood — exactly the
// ambiguity the paper attributes to the traditional IDS.
type Smurf struct {
	base
	window    time.Duration
	minEvents int
	cooldown  time.Duration
	win       *flow.VictimWindow
	self      bool
	// edges is the module-local communication graph used for the
	// 2-hop suspect heuristic (maintained from observed traffic, so it
	// works even without a Knowledge Base).
	edges map[packet.NodeID]map[packet.NodeID]bool
}

var _ module.Module = (*Smurf)(nil)

// NewSmurf creates the module. Parameters as NewICMPFlood.
func NewSmurf(params map[string]string) (module.Module, error) {
	w, n, cd, err := parseRateParams(params, 25)
	if err != nil {
		return nil, err
	}
	return &Smurf{window: w, minEvents: n, cooldown: cd}, nil
}

// Name implements module.Module.
func (d *Smurf) Name() string { return SmurfName }

// WatchLabels implements module.Module.
func (d *Smurf) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMultihop}
}

// Required implements module.Module: "the Smurf attack is not possible
// in single-hop networks" (§III-A1) — the module is needed only on
// multi-hop IP networks.
func (d *Smurf) Required(kb *knowledge.Base) bool {
	ip := hasMedium(kb, packet.MediumWiFi) || hasMedium(kb, packet.MediumWired)
	return ip && boolIs(kb, knowledge.LabelMultihop, true)
}

// Activate implements module.Module.
func (d *Smurf) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.edges = make(map[packet.NodeID]map[packet.NodeID]bool)
	if ctx.Flows != nil {
		d.win, d.self = ctx.Flows.VictimWindow(echoReplyMask, d.window), false
	} else {
		d.win, d.self = flow.NewVictimWindow(echoReplyMask, d.window), true
	}
	d.win.ResetGate(d.Name())
}

// Deactivate implements module.Module.
func (d *Smurf) Deactivate() {
	d.win.Release()
	d.win = nil
	d.base.Deactivate()
}

// HandlePacket implements module.Module.
func (d *Smurf) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	if d.self {
		d.win.Observe(c)
	}
	d.observeEdge(c.Src, c.Dst)
	if c.Kind != packet.KindICMPEchoReply {
		return
	}
	if !d.win.Gate(d.Name(), c.Dst, d.minEvents, d.cooldown, c.Time) {
		return
	}
	evs := d.win.Events(c.Dst, c.Time)
	confidence := 0.7
	if d.knowledgeDriven() {
		// Smurf replies come from several distinct amplifiers. The
		// small gap tolerance is deliberate: accidental splits only
		// raise the count (harmless for a ≥3 test) while merges, the
		// failure mode, need a chain of extreme shadowing outliers.
		if clusterRSSI(eventRSSIs(evs), 2.0) < 3 {
			return
		}
		confidence = 0.9
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Smurf,
		Module:     d.Name(),
		Victim:     c.Dst,
		Suspects:   d.suspects(c.Dst),
		Confidence: confidence,
		Details:    fmt.Sprintf("%d amplified echo replies to %s within %s", len(evs), packet.CleanID(c.Dst), d.window),
	})
}

func (d *Smurf) observeEdge(src, dst packet.NodeID) {
	if src == "" || dst == "" || dst == packet.Broadcast {
		return
	}
	if d.edges[src] == nil {
		d.edges[src] = make(map[packet.NodeID]bool)
	}
	d.edges[src][dst] = true
	if d.edges[dst] == nil {
		d.edges[dst] = make(map[packet.NodeID]bool)
	}
	d.edges[dst][src] = true
}

// suspects implements the paper's heuristic: "the Smurf attack
// detection module considers as suspect all nodes at a 2-hop distance
// from the victim" over the module's observed communication graph.
//
//lint:coldpath 2-hop suspect enumeration runs once per gate-passed Smurf alert, cooldown-bounded
func (d *Smurf) suspects(victim packet.NodeID) []packet.NodeID {
	dist := map[packet.NodeID]int{victim: 0}
	queue := []packet.NodeID{victim}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[cur] >= 2 {
			continue
		}
		for nb := range d.edges[cur] {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	var out []packet.NodeID
	for id, dd := range dist {
		if dd == 2 {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		// Simplistic graph exploration collapses to the victim itself
		// (the paper's §VI-B1 anecdote: revoking it disconnects the
		// network).
		out = []packet.NodeID{victim}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SYNFlood detects TCP SYN flood attacks: a high rate of connection-
// opening SYNs to one destination whose initiators never complete the
// handshake (spoofed sources cannot send the third ACK). Both evidence
// streams — the SYN rate window and the handshake-completion ledger —
// come from the flow layer's shared trackers.
type SYNFlood struct {
	base
	window    time.Duration
	minEvents int
	cooldown  time.Duration
	win       *flow.VictimWindow
	hs        *flow.TCPHandshakes
	self      bool
}

var _ module.Module = (*SYNFlood)(nil)

// NewSYNFlood creates the module. Parameters as NewICMPFlood
// (detectionThresh default 25).
func NewSYNFlood(params map[string]string) (module.Module, error) {
	w, n, cd, err := parseRateParams(params, 25)
	if err != nil {
		return nil, err
	}
	return &SYNFlood{window: w, minEvents: n, cooldown: cd}, nil
}

// Name implements module.Module.
func (d *SYNFlood) Name() string { return SYNFloodName }

// WatchLabels implements module.Module.
func (d *SYNFlood) WatchLabels() []string { return []string{knowledge.LabelMediums} }

// Required implements module.Module.
func (d *SYNFlood) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumWiFi) || hasMedium(kb, packet.MediumWired)
}

// Activate implements module.Module.
func (d *SYNFlood) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	if ctx.Flows != nil {
		d.win = ctx.Flows.VictimWindow(tcpSYNMask, d.window)
		d.hs = ctx.Flows.Handshakes(d.window)
		d.self = false
	} else {
		d.win = flow.NewVictimWindow(tcpSYNMask, d.window)
		d.hs = flow.NewTCPHandshakes(d.window)
		d.self = true
	}
	d.win.ResetGate(d.Name())
}

// Deactivate implements module.Module.
func (d *SYNFlood) Deactivate() {
	d.win.Release()
	d.hs.Release()
	d.win, d.hs = nil, nil
	d.base.Deactivate()
}

// HandlePacket implements module.Module.
func (d *SYNFlood) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	if d.self {
		d.win.Observe(c)
		d.hs.Observe(c)
	}
	if c.Kind != packet.KindTCPSYN {
		return
	}
	if !d.win.Gate(d.Name(), c.Dst, d.minEvents, d.cooldown, c.Time) {
		return
	}
	evs := d.win.Events(c.Dst, c.Time)
	// A legitimate burst completes handshakes; a flood leaves them
	// half-open.
	if d.hs.Completions(c.Dst, c.Time) >= len(evs)/2 {
		return
	}
	suspects := eventSrcs(evs)
	confidence := 0.7
	if d.knowledgeDriven() {
		exclude := make(map[packet.NodeID]bool, len(suspects))
		for _, s := range suspects {
			exclude[s] = true
		}
		mean := meanEventRSSI(evs)
		if m := fingerprintMatch(d.ctx.KB, mean, 3, exclude); len(m) > 0 {
			suspects = m[:1]
		}
		confidence = 0.9
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.SYNFlood,
		Module:     d.Name(),
		Victim:     c.Dst,
		Suspects:   suspects,
		Confidence: confidence,
		Details:    fmt.Sprintf("%d half-open SYNs to %s within %s", len(evs), packet.CleanID(c.Dst), d.window),
	})
}
