package detection

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
)

// WormholeName is the registry name of the wormhole-detection module.
const WormholeName = "WormholeModule"

// Wormhole detects colluding wormhole endpoints through collective
// knowledge (§VI-D): one Kalis node observes endpoint B1 swallowing
// traffic (a blackhole symptom, shared as SuspectBlackhole knowggets by
// the Blackhole module), another observes endpoint B2 emitting traffic
// whose origins it was never seen receiving (an "emergent source",
// published by this module). When both knowggets are present — locally
// or via peers — and their origin sets overlap, the pair is classified
// as a wormhole rather than two unrelated anomalies.
type Wormhole struct {
	base
	// minEmergent is how many unexplained origin frames a transmitter
	// must emit before being published as an emergent source.
	minEmergent int
	cooldown    time.Duration

	// received maps relay → origins overheard being handed *to* it.
	received map[packet.NodeID]map[uint16]bool
	// emitted maps transmitter → origins it forwarded, with counts.
	emitted map[packet.NodeID]map[uint16]int
	// lastEmergent is when each emergent source last showed fresh
	// activity; pairs re-alert only on fresh evidence (or on the first
	// correlation, which may be entirely knowledge-driven on the
	// blackhole-side Kalis node).
	lastEmergent map[packet.NodeID]time.Time
	suppress     map[string]time.Time
	alerted      map[string]bool

	// sinks and sources mirror the SuspectBlackhole / EmergentSource
	// knowggets (local and collective), maintained incrementally via
	// Knowledge Base subscriptions — scanning the whole base per
	// packet would be far too expensive.
	sinks   map[packet.NodeID]map[string]bool
	sources map[packet.NodeID]map[string]bool
	dirty   bool
	subbed  bool
}

var _ module.Module = (*Wormhole)(nil)

// NewWormhole creates the module. Parameters: "minEmergent" (int,
// default 5), "cooldown" (duration).
func NewWormhole(params map[string]string) (module.Module, error) {
	d := &Wormhole{minEmergent: 5, cooldown: 30 * time.Second}
	var err error
	if v, ok := params["minEmergent"]; ok {
		if d.minEmergent, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("minEmergent: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if d.cooldown, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
	}
	return d, nil
}

// Name implements module.Module.
func (d *Wormhole) Name() string { return WormholeName }

// WatchLabels implements module.Module: the module reacts to blackhole
// suspicions and emergent sources arriving from peer Kalis nodes.
func (d *Wormhole) WatchLabels() []string {
	return []string{
		knowledge.LabelMediums,
		knowledge.LabelMultihop,
		knowledge.LabelSuspectBlackhole,
		knowledge.LabelEmergentSource,
	}
}

// Required implements module.Module.
func (d *Wormhole) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) && boolIs(kb, knowledge.LabelMultihop, true)
}

// Activate implements module.Module.
func (d *Wormhole) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.received = make(map[packet.NodeID]map[uint16]bool)
	d.emitted = make(map[packet.NodeID]map[uint16]int)
	d.lastEmergent = make(map[packet.NodeID]time.Time)
	d.suppress = make(map[string]time.Time)
	d.alerted = make(map[string]bool)
	d.sinks = make(map[packet.NodeID]map[string]bool)
	d.sources = make(map[packet.NodeID]map[string]bool)
	d.dirty = false
	// Seed the mirrors from knowledge that predates activation, then
	// track changes via subscription (installed once per instance; the
	// handler no-ops while inactive).
	for _, kg := range ctx.KB.Snapshot() {
		d.mirror(kg)
	}
	if !d.subbed {
		d.subbed = true
		ctx.KB.Subscribe(knowledge.LabelSuspectBlackhole, d.onKnowledge)
		ctx.KB.Subscribe(knowledge.LabelEmergentSource, d.onKnowledge)
	}
}

func (d *Wormhole) onKnowledge(kg knowledge.Knowgget) {
	if !d.active() {
		return
	}
	d.mirror(kg)
}

func (d *Wormhole) mirror(kg knowledge.Knowgget) {
	switch kg.Label {
	case knowledge.LabelSuspectBlackhole:
		d.sinks[packet.NodeID(kg.Entity)] = originSet(kg.Value)
		d.dirty = true
	case knowledge.LabelEmergentSource:
		d.sources[packet.NodeID(kg.Entity)] = originSet(kg.Value)
		d.dirty = true
	}
}

// HandlePacket implements module.Module.
func (d *Wormhole) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	data, ok := c.Layer("ctp-data").(*ctp.Data)
	if !ok {
		d.maybeCorrelate(c.Time)
		return
	}
	// Record hand-offs: the link destination has now "received" the
	// origin's traffic.
	if c.Dst != packet.Broadcast && c.Dst != "" {
		if d.received[c.Dst] == nil {
			d.received[c.Dst] = make(map[uint16]bool)
		}
		d.received[c.Dst][data.Origin] = true
	}
	// A transmitter forwarding traffic (THL > 0) whose origin it was
	// never handed locally is an emergent source. A node retransmitting
	// its *own* origin is a different anomaly (replication/looping),
	// not tunnelled third-party traffic — it is exempt here.
	tx := c.Transmitter
	if data.THL > 0 && tx != "" && tx != c.Src && !d.received[tx][data.Origin] {
		if d.emitted[tx] == nil {
			d.emitted[tx] = make(map[uint16]int)
		}
		d.emitted[tx][data.Origin]++
		if d.total(tx) >= d.minEmergent {
			d.lastEmergent[tx] = c.Time
			d.dirty = true
			if d.knowledgeDriven() && d.total(tx) == d.minEmergent {
				d.ctx.KB.PutCollective(knowledge.LabelEmergentSource, packet.CleanID(tx), d.originsOf(tx))
			}
		}
	}
	d.maybeCorrelate(c.Time)
}

// maybeCorrelate runs the pairing pass only when the mirrors changed
// or fresh emergent evidence arrived.
func (d *Wormhole) maybeCorrelate(now time.Time) {
	if !d.dirty {
		return
	}
	d.dirty = false
	d.correlate(now)
}

func (d *Wormhole) total(tx packet.NodeID) int {
	sum := 0
	for _, n := range d.emitted[tx] {
		sum += n
	}
	return sum
}

//lint:coldpath runs once per emergent-source promotion (and on dirty-gated re-publication), not per packet
func (d *Wormhole) originsOf(tx packet.NodeID) string {
	var ids []int
	for o := range d.emitted[tx] {
		ids = append(ids, int(o))
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, o := range ids {
		parts[i] = strconv.Itoa(o)
	}
	return strings.Join(parts, ",")
}

// correlate pairs blackhole suspicions with emergent sources across the
// mirrored knowledge (local and collective).
//
//lint:coldpath the pairing pass is dirty-flag-gated: it runs when mirrored knowledge or emergent evidence changes, not per packet
func (d *Wormhole) correlate(now time.Time) {
	if !d.knowledgeDriven() {
		return // correlation is knowledge; the naive baseline has none
	}
	sinkIDs := sortedKeys(d.sinks)
	sourceIDs := sortedKeys(d.sources)
	for _, sID := range sinkIDs {
		for _, eID := range sourceIDs {
			if sID == eID || !overlap(d.sinks[sID], d.sources[eID]) {
				continue
			}
			pair := string(sID) + "+" + string(eID)
			if d.alerted[pair] {
				// Re-alert only on fresh local emergent activity (the
				// far-side Kalis node has none and reports once).
				last, ok := d.lastEmergent[eID]
				if !ok || now.Sub(last) > d.cooldown/2 {
					continue
				}
			}
			if until, ok := d.suppress[pair]; ok && now.Before(until) {
				continue
			}
			d.suppress[pair] = now.Add(d.cooldown)
			d.alerted[pair] = true
			d.ctx.Emit(module.Alert{
				Time:       now,
				Attack:     attack.Wormhole,
				Module:     d.Name(),
				Suspects:   []packet.NodeID{sID, eID},
				Confidence: 0.9,
				Details: fmt.Sprintf("blackhole at %s correlates with emergent source %s (shared origins)",
					sID, eID),
			})
		}
	}
}

func sortedKeys(m map[packet.NodeID]map[string]bool) []packet.NodeID {
	out := make([]packet.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func originSet(v string) map[string]bool {
	out := make(map[string]bool)
	for _, part := range strings.Split(v, ",") {
		if part != "" {
			out[part] = true
		}
	}
	return out
}

func overlap(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}
