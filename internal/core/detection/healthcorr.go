package detection

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// HealthCorrName is the registry name of the cross-node module-health
// correlation module.
const HealthCorrName = "HealthCorrModule"

// HealthCorr correlates ModuleHealth knowggets across the collective:
// every Kalis node publishes its supervisor transitions as collective
// ModuleHealth.<module> knowggets, which the anti-entropy gossip layer
// spreads through the fleet. One node quarantining a module is a local
// software fault; the *same* module quarantining on many nodes within a
// short window is a coordinated symptom — crafted traffic crashing a
// specific detector fleet-wide to open a detection hole. This module
// raises a coordinated-quarantine alert naming the reporting nodes.
type HealthCorr struct {
	base
	// minPeers is how many distinct nodes (local node included) must
	// report the same module quarantined before alerting.
	minPeers int
	// window bounds the correlation: reports older than this no longer
	// count toward the threshold.
	window   time.Duration
	cooldown time.Duration

	// quarantines maps module name → reporting creator → when the
	// quarantine report arrived here. Maintained incrementally from
	// Knowledge Base subscriptions; reports are removed when a creator
	// later reports the module healthy/probing again.
	quarantines map[string]map[string]time.Time
	suppress    map[string]time.Time
	subbed      bool
}

var _ module.Module = (*HealthCorr)(nil)

// NewHealthCorr creates the module. Parameters: "minPeers" (int,
// default 3), "window" (duration, default 60s), "cooldown" (duration,
// default 5m).
func NewHealthCorr(params map[string]string) (module.Module, error) {
	d := &HealthCorr{minPeers: 3, window: time.Minute, cooldown: 5 * time.Minute}
	var err error
	if v, ok := params["minPeers"]; ok {
		if d.minPeers, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("minPeers: %w", err)
		}
	}
	if v, ok := params["window"]; ok {
		if d.window, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("window: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if d.cooldown, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
	}
	return d, nil
}

// Name implements module.Module.
func (d *HealthCorr) Name() string { return HealthCorrName }

// WatchLabels implements module.Module: peer count changes gate the
// module on and off; health reports drive it.
func (d *HealthCorr) WatchLabels() []string {
	return []string{"Peers", knowledge.LabelModuleHealth}
}

// Required implements module.Module: correlating health across nodes
// only makes sense while the collective layer has peers.
func (d *HealthCorr) Required(kb *knowledge.Base) bool {
	v, ok := kb.Int("Peers")
	return ok && v > 0
}

// Activate implements module.Module.
func (d *HealthCorr) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.quarantines = make(map[string]map[string]time.Time)
	d.suppress = make(map[string]time.Time)
	// Seed from health reports that predate activation (their arrival
	// time is unknown; dating them "now" keeps them inside the window,
	// which errs toward detection), then track changes incrementally.
	for _, kg := range ctx.KB.Snapshot() {
		//lint:ignore simclock gossiped health reports arrive on wall time (UDP receive), not capture time; the window is over wall arrival
		d.record(kg, time.Now())
	}
	if !d.subbed {
		d.subbed = true
		ctx.KB.Subscribe(knowledge.LabelModuleHealth, d.onKnowledge)
	}
}

// onKnowledge fires on every ModuleHealth.<module> change, local or
// gossiped. It runs off the packet path (Knowledge Base notification),
// so correlation happens here — the module needs no packet evidence.
func (d *HealthCorr) onKnowledge(kg knowledge.Knowgget) {
	if !d.active() {
		return
	}
	//lint:ignore simclock gossiped health reports arrive on wall time (UDP receive), not capture time; the window is over wall arrival
	now := time.Now()
	if mod := d.record(kg, now); mod != "" {
		d.correlate(mod, now)
	}
}

// record mirrors one health knowgget into the quarantine table and
// returns the module name if the report was a quarantine.
func (d *HealthCorr) record(kg knowledge.Knowgget, now time.Time) string {
	if !strings.HasPrefix(kg.Label, knowledge.LabelModuleHealth+".") || kg.Creator == "" {
		return ""
	}
	mod := kg.Label[len(knowledge.LabelModuleHealth)+1:]
	if kg.Value == "quarantined" {
		if d.quarantines[mod] == nil {
			d.quarantines[mod] = make(map[string]time.Time)
		}
		d.quarantines[mod][kg.Creator] = now
		return mod
	}
	// Recovery (probing/healthy/shed) retires this creator's report.
	delete(d.quarantines[mod], kg.Creator)
	return ""
}

// correlate checks one module's quarantine reports against the
// threshold, expiring reports that fell out of the window.
func (d *HealthCorr) correlate(mod string, now time.Time) {
	if !d.knowledgeDriven() {
		return // cross-node correlation is knowledge; the baseline has none
	}
	reporters := d.quarantines[mod]
	fresh := make([]string, 0, len(reporters))
	for creator, at := range reporters {
		if now.Sub(at) > d.window {
			delete(reporters, creator)
			continue
		}
		fresh = append(fresh, creator)
	}
	if len(fresh) < d.minPeers {
		return
	}
	if until, ok := d.suppress[mod]; ok && now.Before(until) {
		return
	}
	d.suppress[mod] = now.Add(d.cooldown)
	sort.Strings(fresh)
	suspects := make([]packet.NodeID, len(fresh))
	for i, c := range fresh {
		suspects[i] = packet.NodeID(c)
	}
	d.ctx.Emit(module.Alert{
		Time:       now,
		Attack:     attack.CoordinatedQuarantine,
		Module:     d.Name(),
		Suspects:   suspects,
		Confidence: 0.8,
		Details: fmt.Sprintf("module %s quarantined on %d nodes within %s",
			mod, len(fresh), d.window),
	})
}

// HandlePacket implements module.Module: this module is driven
// entirely by Knowledge Base notifications, not packets.
func (d *HealthCorr) HandlePacket(c *packet.Captured) {}
