package detection

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"kalis/internal/flow"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// TestWatchdogNeverAccusesHealthyRelay is the watchdog's core safety
// property: for any traffic schedule in which the relay always
// forwards within the timeout, no alert is ever raised.
func TestWatchdogNeverAccusesHealthyRelay(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(nRaw%40)
		h := newHarness(true)
		sel, _ := NewSelectiveForwarding(nil)
		bh, _ := NewBlackhole(nil)
		sel.Activate(h.ctx)
		bh.Activate(h.ctx)

		handle := func(c *packet.Captured) {
			sel.HandlePacket(c)
			bh.HandlePacket(c)
		}
		handle(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), t0, -50))
		at := t0
		for i := 0; i < n; i++ {
			// Random origination gaps, forwarding always within the
			// 500 ms timeout.
			at = at.Add(time.Duration(500+rng.Intn(4000)) * time.Millisecond)
			handle(mkCap(t, packet.MediumIEEE802154,
				stack.BuildCTPData(3, 2, 3, uint8(i), 0, 20, []byte{0x01, uint8(i)}), at, -65))
			fwdDelay := time.Duration(5+rng.Intn(400)) * time.Millisecond
			handle(mkCap(t, packet.MediumIEEE802154,
				stack.BuildCTPData(2, 1, 3, uint8(i), 1, 10, []byte{0x01, uint8(i)}), at.Add(fwdDelay), -55))
		}
		return len(h.alerts) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWatchdogAlwaysCatchesTotalDrop: the complementary liveness
// property — a relay that drops everything is always flagged once
// enough evidence accumulates.
func TestWatchdogAlwaysCatchesTotalDrop(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness(true)
		bh, _ := NewBlackhole(nil)
		bh.Activate(h.ctx)
		bh.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), t0, -50))
		at := t0
		for i := 0; i < 20; i++ {
			at = at.Add(time.Duration(1000+rng.Intn(2000)) * time.Millisecond)
			bh.HandlePacket(mkCap(t, packet.MediumIEEE802154,
				stack.BuildCTPData(3, 2, 3, uint8(i), 0, 20, []byte{0x01, uint8(i)}), at, -65))
		}
		return len(h.alerts) > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRateWindowInvariant: the victim window (shared through the flow
// layer) never reports an event older than its configured bound, and
// the window's per-owner alert gate never passes during cooldown.
func TestRateWindowInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		win := flow.NewVictimWindow(flow.MaskOf(packet.KindICMPEchoReply), 5*time.Second)
		at := t0
		var lastAlert time.Time
		for i := 0; i < 300; i++ {
			at = at.Add(time.Duration(rng.Intn(1200)) * time.Millisecond)
			win.Observe(&packet.Captured{
				Kind: packet.KindICMPEchoReply, Time: at, RSSI: -60, Src: "s", Dst: "victim",
			})
			if !win.Gate("mod", "victim", 10, 10*time.Second, at) {
				continue
			}
			for _, e := range win.Events("victim", at) {
				if at.Sub(e.At) > 5*time.Second {
					return false // stale event survived pruning
				}
			}
			if !lastAlert.IsZero() && at.Sub(lastAlert) < 10*time.Second {
				return false // alerted during cooldown
			}
			lastAlert = at
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
