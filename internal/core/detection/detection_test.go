package detection

import (
	"net/netip"
	"testing"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/datastore"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/tcp"
)

var t0 = time.Unix(1500000000, 0).UTC()

type harness struct {
	kb     *knowledge.Base
	alerts []module.Alert
	ctx    *module.Context
}

func newHarness(knowledgeDriven bool) *harness {
	h := &harness{kb: knowledge.NewBase("K1")}
	h.ctx = &module.Context{
		KB:              h.kb,
		Store:           datastore.New(64),
		Emit:            func(a module.Alert) { h.alerts = append(h.alerts, a) },
		KnowledgeDriven: knowledgeDriven,
	}
	return h
}

func (h *harness) attackNames() map[string]int {
	out := map[string]int{}
	for _, a := range h.alerts {
		out[a.Attack]++
	}
	return out
}

func mkCap(t *testing.T, medium packet.Medium, raw []byte, at time.Time, rssi float64) *packet.Captured {
	t.Helper()
	c, err := stack.Decode(medium, raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c.Time = at
	c.RSSI = rssi
	return c
}

var (
	victimIP = netip.MustParseAddr("192.168.1.10")
	spoofA   = netip.MustParseAddr("192.168.1.21")
	spoofB   = netip.MustParseAddr("192.168.1.22")
)

// feedFlood sends n echo replies to the victim, alternating spoofed
// sources, all at the given RSSI (single physical transmitter).
func feedFlood(t *testing.T, mod module.Module, n int, rssi float64) {
	for i := 0; i < n; i++ {
		src := spoofA
		if i%2 == 1 {
			src = spoofB
		}
		raw := stack.BuildICMPEcho(src, victimIP, icmp.TypeEchoReply, 1, uint16(i), 64)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(time.Duration(i)*100*time.Millisecond), rssi))
	}
}

func TestICMPFloodDetects(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewICMPFlood(map[string]string{"detectionThresh": "20"})
	mod.Activate(h.ctx)
	feedFlood(t, mod, 30, -58)
	if n := h.attackNames()[attack.ICMPFlood]; n != 1 {
		t.Fatalf("flood alerts = %d, want 1 (suppression)", n)
	}
	a := h.alerts[0]
	if a.Victim != "192.168.1.10" {
		t.Errorf("victim = %s", a.Victim)
	}
}

func TestICMPFloodFingerprintsSuspect(t *testing.T) {
	h := newHarness(true)
	// Historical fingerprint: the real attacker node 192.168.1.66 has
	// EWMA RSSI -58; spoofed identities live elsewhere.
	h.kb.PutEntity(knowledge.LabelSignalStrength, "192.168.1.66", "-58.2")
	h.kb.PutEntity(knowledge.LabelSignalStrength, "192.168.1.21", "-70.0")
	h.kb.PutEntity(knowledge.LabelSignalStrength, "192.168.1.22", "-75.0")
	mod, _ := NewICMPFlood(map[string]string{"detectionThresh": "20"})
	mod.Activate(h.ctx)
	feedFlood(t, mod, 30, -58)
	if len(h.alerts) != 1 {
		t.Fatalf("alerts = %d", len(h.alerts))
	}
	s := h.alerts[0].Suspects
	if len(s) != 1 || s[0] != "192.168.1.66" {
		t.Errorf("suspects = %v, want the fingerprint match", s)
	}
}

func TestICMPFloodMultihopRejectsMultiSource(t *testing.T) {
	h := newHarness(true)
	h.kb.PutBool(knowledge.LabelMultihop, true)
	mod, _ := NewICMPFlood(map[string]string{"detectionThresh": "20"})
	mod.Activate(h.ctx)
	// Replies from three distinct RSSI clusters: a smurf, not a flood.
	for i := 0; i < 30; i++ {
		rssi := []float64{-50, -60, -70}[i%3]
		raw := stack.BuildICMPEcho(spoofA, victimIP, icmp.TypeEchoReply, 1, uint16(i), 64)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(time.Duration(i)*100*time.Millisecond), rssi))
	}
	if len(h.alerts) != 0 {
		t.Errorf("knowledge-driven flood module alerted on multi-source replies: %v", h.alerts)
	}
}

func TestSmurfRequiresMultipleSources(t *testing.T) {
	h := newHarness(true)
	h.kb.PutBool(knowledge.LabelMultihop, true)
	mod, _ := NewSmurf(map[string]string{"detectionThresh": "20"})
	mod.Activate(h.ctx)
	// Single-source flood: smurf module must stay silent.
	feedFlood(t, mod, 30, -58)
	if len(h.alerts) != 0 {
		t.Fatalf("smurf alerted on single-source flood: %v", h.alerts)
	}
	// Multi-source amplification: smurf.
	for i := 0; i < 30; i++ {
		rssi := []float64{-50, -60, -70}[i%3]
		raw := stack.BuildICMPEcho(spoofA, victimIP, icmp.TypeEchoReply, 1, uint16(100+i), 64)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(time.Duration(100+i)*100*time.Millisecond), rssi))
	}
	if n := h.attackNames()[attack.Smurf]; n != 1 {
		t.Errorf("smurf alerts = %d, want 1", n)
	}
}

func TestNaiveModeAmbiguity(t *testing.T) {
	// Without a Knowledge Base (traditional IDS), both modules alert
	// on the same symptom — the paper's disambiguation failure.
	h := newHarness(false)
	flood, _ := NewICMPFlood(map[string]string{"detectionThresh": "20"})
	smurf, _ := NewSmurf(map[string]string{"detectionThresh": "20"})
	flood.Activate(h.ctx)
	smurf.Activate(h.ctx)
	for i := 0; i < 30; i++ {
		raw := stack.BuildICMPEcho(spoofA, victimIP, icmp.TypeEchoReply, 1, uint16(i), 64)
		c := mkCap(t, packet.MediumWiFi, raw, t0.Add(time.Duration(i)*100*time.Millisecond), -58)
		flood.HandlePacket(c)
		smurf.HandlePacket(c)
	}
	names := h.attackNames()
	if names[attack.ICMPFlood] != 1 || names[attack.Smurf] != 1 {
		t.Errorf("naive mode should produce both alerts: %v", names)
	}
}

func TestSYNFloodDetectsHalfOpen(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewSYNFlood(map[string]string{"detectionThresh": "20"})
	mod.Activate(h.ctx)
	for i := 0; i < 30; i++ {
		raw := stack.BuildTCP(spoofA, victimIP, uint16(10000+i), 443, tcp.FlagSYN, uint32(i), 0, uint16(i), nil)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(time.Duration(i)*100*time.Millisecond), -58))
	}
	if n := h.attackNames()[attack.SYNFlood]; n != 1 {
		t.Errorf("syn-flood alerts = %d, want 1", n)
	}
}

func TestSYNFloodIgnoresCompletedHandshakes(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewSYNFlood(map[string]string{"detectionThresh": "20"})
	mod.Activate(h.ctx)
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i) * 100 * time.Millisecond)
		syn := stack.BuildTCP(spoofA, victimIP, uint16(10000+i), 443, tcp.FlagSYN, uint32(i), 0, uint16(3*i), nil)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, syn, at, -58))
		synack := stack.BuildTCP(victimIP, spoofA, 443, uint16(10000+i), tcp.FlagSYN|tcp.FlagACK, 99, uint32(i)+1, uint16(3*i+1), nil)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, synack, at.Add(10*time.Millisecond), -55))
		// The initiator completes the handshake — a real client, not a
		// spoofed flood source.
		ack := stack.BuildTCP(spoofA, victimIP, uint16(10000+i), 443, tcp.FlagACK, uint32(i)+1, 100, uint16(3*i+2), nil)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, ack, at.Add(20*time.Millisecond), -58))
	}
	if len(h.alerts) != 0 {
		t.Errorf("legitimate burst flagged: %v", h.alerts)
	}
}

func TestRequiredPredicates(t *testing.T) {
	kb := knowledge.NewBase("K1")
	flood, _ := NewICMPFlood(nil)
	smurf, _ := NewSmurf(nil)
	sel, _ := NewSelectiveForwarding(nil)
	repS, _ := NewReplicationStatic(nil)
	repM, _ := NewReplicationMobile(nil)
	syb, _ := NewSybil(nil)
	alt, _ := NewDataAlteration(nil)

	for name, mod := range map[string]module.Module{
		"flood": flood, "smurf": smurf, "selfwd": sel,
		"repStatic": repS, "repMobile": repM, "sybil": syb,
	} {
		if mod.Required(kb) {
			t.Errorf("%s required on empty KB", name)
		}
	}

	kb.Put(knowledge.LabelMediums+".wifi", "true")
	if !flood.Required(kb) {
		t.Error("flood not required with wifi")
	}
	if smurf.Required(kb) {
		t.Error("smurf required on (presumed) single-hop")
	}
	kb.PutBool(knowledge.LabelMultihop, true)
	if !smurf.Required(kb) {
		t.Error("smurf not required on multi-hop wifi")
	}

	kb.Put(knowledge.LabelMediums+".ieee802.15.4", "true")
	if !sel.Required(kb) {
		t.Error("selective forwarding not required on multi-hop 802.15.4")
	}
	if repS.Required(kb) || repM.Required(kb) {
		t.Error("replication modules required with unknown mobility")
	}
	kb.PutBool(knowledge.LabelMobility, false)
	if !repS.Required(kb) || repM.Required(kb) {
		t.Error("static replication selection wrong")
	}
	kb.PutBool(knowledge.LabelMobility, true)
	if repS.Required(kb) || !repM.Required(kb) {
		t.Error("mobile replication selection wrong")
	}
	if !syb.Required(kb) {
		t.Error("sybil not required on 802.15.4")
	}
	if !alt.Required(kb) {
		t.Error("alteration not required with unknown encryption")
	}
	kb.PutBool(knowledge.LabelEncrypted, true)
	if alt.Required(kb) {
		t.Error("alteration required despite encryption")
	}
}

func TestClusterRSSI(t *testing.T) {
	if n := clusterRSSI(nil, 2.5); n != 0 {
		t.Errorf("empty = %d", n)
	}
	if n := clusterRSSI([]float64{-60, -60.5, -59.8}, 2.5); n != 1 {
		t.Errorf("tight = %d, want 1", n)
	}
	if n := clusterRSSI([]float64{-50, -60, -70, -60.4}, 2.5); n != 3 {
		t.Errorf("spread = %d, want 3", n)
	}
}

func TestHopDistance(t *testing.T) {
	kb := knowledge.NewBase("K1")
	kb.PutEntity("Edge", "a>b", "true")
	kb.PutEntity("Edge", "b>c", "true")
	kb.PutEntity("Edge", "c>d", "true")
	two := atDistance(kb, "a", 2)
	if len(two) != 1 || two[0] != "c" {
		t.Errorf("atDistance = %v", two)
	}
	dist := hopDistance(kb, "a")
	if dist["d"] != 3 {
		t.Errorf("dist[d] = %d", dist["d"])
	}
}
