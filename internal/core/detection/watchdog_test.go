package detection

import (
	"testing"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// feedForwarding simulates a 3..1 CTP chain where relay 2 forwards a
// fraction of origin 3's packets: n rounds, dropping when drop(i).
func feedForwarding(t *testing.T, mods []interface{ HandlePacket(*packet.Captured) }, n int, drop func(int) bool) {
	t.Helper()
	handle := func(c *packet.Captured) {
		for _, m := range mods {
			m.HandlePacket(c)
		}
	}
	// Root beacon so the watchdog learns node 1 is the sink.
	handle(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), t0, -50))
	for i := 0; i < n; i++ {
		base := t0.Add(time.Duration(i) * 3 * time.Second)
		// Origin 3 transmits seq i to relay 2.
		handle(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 0, 20, []byte{0x01, uint8(i)}), base, -65))
		if !drop(i) {
			// Relay 2 forwards to root 1 within the timeout.
			handle(mkCap(t, packet.MediumIEEE802154,
				stack.BuildCTPData(2, 1, 3, uint8(i), 1, 10, []byte{0x01, uint8(i)}), base.Add(30*time.Millisecond), -55))
		}
	}
}

func TestSelectiveForwardingDetected(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewSelectiveForwarding(nil)
	mod.Activate(h.ctx)
	feedForwarding(t, []interface{ HandlePacket(*packet.Captured) }{mod}, 40,
		func(i int) bool { return i%2 == 0 }) // 50% drops
	names := h.attackNames()
	if names[attack.SelectiveForwarding] == 0 {
		t.Fatal("selective forwarding not detected")
	}
	for _, a := range h.alerts {
		if len(a.Suspects) != 1 || a.Suspects[0] != "0x0002" {
			t.Errorf("suspect = %v, want relay 0x0002", a.Suspects)
		}
	}
}

func TestHealthyRelayNotFlagged(t *testing.T) {
	h := newHarness(true)
	sel, _ := NewSelectiveForwarding(nil)
	bh, _ := NewBlackhole(nil)
	sel.Activate(h.ctx)
	bh.Activate(h.ctx)
	feedForwarding(t, []interface{ HandlePacket(*packet.Captured) }{sel, bh}, 40,
		func(int) bool { return false })
	if len(h.alerts) != 0 {
		t.Errorf("healthy relay flagged: %v", h.alerts)
	}
}

func TestBlackholeDetectedAndShared(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewBlackhole(nil)
	mod.Activate(h.ctx)
	feedForwarding(t, []interface{ HandlePacket(*packet.Captured) }{mod}, 30,
		func(int) bool { return true }) // total drop
	if h.attackNames()[attack.Blackhole] == 0 {
		t.Fatal("blackhole not detected")
	}
	// The collective SuspectBlackhole knowgget names the dropped
	// origins.
	kg, ok := h.kb.Get("K1$" + knowledge.LabelSuspectBlackhole + "@0x0002")
	if !ok {
		t.Fatal("SuspectBlackhole knowgget missing")
	}
	if !kg.Collective || kg.Value != "3" {
		t.Errorf("knowgget = %+v", kg)
	}
}

func TestSelectiveForwardingIgnoresBlackholeGrade(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewSelectiveForwarding(nil)
	mod.Activate(h.ctx)
	feedForwarding(t, []interface{ HandlePacket(*packet.Captured) }{mod}, 30,
		func(int) bool { return true })
	if h.attackNames()[attack.SelectiveForwarding] != 0 {
		t.Error("selective-forwarding module alerted on blackhole-grade drops")
	}
}

func TestReplicationStaticDetectsRSSIJumps(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewReplicationStatic(nil)
	mod.Activate(h.ctx)
	// Background identities keep the jumpy-fraction guard low.
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(4, 1, 4, uint8(i), 0, 20, []byte{0x01, uint8(i)}), at, -62))
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(5, 1, 5, uint8(i), 0, 20, []byte{0x01, uint8(i)}), at.Add(100*time.Millisecond), -58))
		// Identity 3 alternates between two positions (orig at -60,
		// replica at -75).
		rssi := -60.0
		if i%2 == 1 {
			rssi = -75
		}
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(3, 1, 3, uint8(i), 0, 20, []byte{0x01, uint8(i)}), at.Add(200*time.Millisecond), rssi))
	}
	names := h.attackNames()
	if names[attack.Replication] == 0 {
		t.Fatal("replication not detected")
	}
	for _, a := range h.alerts {
		if a.Suspects[0] != "0x0003" {
			t.Errorf("suspect = %v", a.Suspects)
		}
	}
}

func TestReplicationStaticSilentUnderMobility(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewReplicationStatic(nil)
	mod.Activate(h.ctx)
	// Every identity jumps (network-wide motion): the baseline is
	// unreliable, so the static technique must stay silent.
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		for id := uint16(3); id <= 6; id++ {
			rssi := -55.0 - float64((i+int(id))%2)*20
			mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(id, 1, id, uint8(i), 0, 20, []byte{0x01, uint8(i)}), at, rssi))
		}
	}
	if len(h.alerts) != 0 {
		t.Errorf("static technique alerted under mobility: %d alerts", len(h.alerts))
	}
}

func TestReplicationMobileDetectsSeqConflict(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewReplicationMobile(nil)
	mod.Activate(h.ctx)
	// Identity 3: original counts 10,11,12...; replica counts
	// 100,101,... — interleaved.
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 1, 3, uint8(10+i), 0, 20, []byte{0x01, uint8(10 + i)}), at, -60))
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 1, 3, uint8(100+i), 0, 20, []byte{0x01, uint8(100 + i)}), at.Add(500*time.Millisecond), -70))
	}
	if h.attackNames()[attack.Replication] == 0 {
		t.Fatal("replication (mobile) not detected")
	}
}

func TestReplicationMobileIgnoresForwardedCounters(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewReplicationMobile(nil)
	mod.Activate(h.ctx)
	// Relay 2 forwards frames from origins 3 and 4 with their own
	// counters — interleaved under transmitter 2, but forwarded
	// counters must not count as flips.
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(2, 1, 3, uint8(10+i), 1, 10, []byte{0x01, uint8(10 + i)}), at, -60))
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(2, 1, 4, uint8(200+i), 1, 10, []byte{0x01, uint8(200 + i)}), at.Add(300*time.Millisecond), -60))
	}
	if len(h.alerts) != 0 {
		t.Errorf("relay flagged as replica: %v", h.alerts)
	}
}

func TestSybilDetectsColocatedNewIdentities(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewSybil(nil)
	mod.Activate(h.ctx)
	// Warmup: legitimate identities at distinct RSSI.
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(2, 1, 2, uint8(i), 0, 20, nil), at, -55))
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(3, 1, 3, uint8(i), 0, 20, nil), at.Add(100*time.Millisecond), -65))
	}
	// Attack: five fresh identities, one radio (same RSSI).
	for f := 0; f < 3; f++ {
		at := t0.Add(time.Duration(40+f) * time.Second)
		for id := uint16(0x500); id < 0x505; id++ {
			mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(id, 1, id, uint8(f), 0, 20, nil), at.Add(time.Duration(id%16)*50*time.Millisecond), -60.2))
		}
	}
	if h.attackNames()[attack.Sybil] == 0 {
		t.Fatal("sybil not detected")
	}
	if len(h.alerts[0].Suspects) < 4 {
		t.Errorf("suspects = %v", h.alerts[0].Suspects)
	}
}

func TestSybilIgnoresEstablishedIdentities(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewSybil(nil)
	mod.Activate(h.ctx)
	// Six equidistant legitimate nodes present from the start: no
	// alert even though their RSSI clusters.
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		for id := uint16(2); id < 8; id++ {
			mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(id, 1, id, uint8(i), 0, 20, nil), at.Add(time.Duration(id)*20*time.Millisecond), -60))
		}
	}
	if len(h.alerts) != 0 {
		t.Errorf("established identities flagged: %v", h.alerts)
	}
}

func TestSinkholeDetectsRootBandClaim(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewSinkhole(nil)
	mod.Activate(h.ctx)
	// Learning: root (ETX 0) and normal advertisers.
	for i := 0; i < 5; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Second)
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, uint8(i)), at, -50))
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(2, 1, 10, uint8(i)), at.Add(time.Second), -55))
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(3, 2, 20, uint8(i)), at.Add(2*time.Second), -60))
	}
	// After learning, node 3 suddenly claims cost 1.
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(3, 1, 1, 99), t0.Add(2*time.Minute), -60))
	names := h.attackNames()
	if names[attack.Sinkhole] != 1 {
		t.Fatalf("sinkhole alerts = %v", names)
	}
	if h.alerts[0].Suspects[0] != "0x0003" {
		t.Errorf("suspect = %v", h.alerts[0].Suspects)
	}
	// The legitimate root keeps advertising 0 without alerts.
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 100), t0.Add(3*time.Minute), -50))
	if len(h.alerts) != 1 {
		t.Error("root flagged")
	}
}

func TestSinkholeDetectsBaselineDrop(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewSinkhole(nil)
	mod.Activate(h.ctx)
	for i := 0; i < 6; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Second)
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(3, 2, 30, uint8(i)), at, -60))
	}
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(3, 2, 8, 99), t0.Add(2*time.Minute), -60))
	if h.attackNames()[attack.Sinkhole] != 1 {
		t.Fatalf("baseline-drop sinkhole not detected: %v", h.alerts)
	}
}

func TestWormholeCorrelation(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewWormhole(map[string]string{"minEmergent": "3"})
	mod.Activate(h.ctx)
	// A peer Kalis node reported a blackhole at 0x0005 dropping
	// origins 7 and 8.
	h.kb.AcceptRemote("K2", knowledge.Knowgget{
		Label: knowledge.LabelSuspectBlackhole, Value: "7,8", Creator: "K2", Entity: "0x0005",
	})
	// Locally, node 0x0009 emits forwarded traffic for origin 7 that
	// it never received.
	for i := 0; i < 4; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(9, 1, 7, uint8(i), 2, 10, []byte{0x01, uint8(i)}), at, -60))
	}
	names := h.attackNames()
	if names[attack.Wormhole] != 1 {
		t.Fatalf("wormhole alerts = %v", names)
	}
	s := h.alerts[0].Suspects
	if len(s) != 2 || s[0] != "0x0005" || s[1] != "0x0009" {
		t.Errorf("suspects = %v", s)
	}
	// The emergent source was shared for the peer to correlate too.
	if _, ok := h.kb.Get("K1$" + knowledge.LabelEmergentSource + "@0x0009"); !ok {
		t.Error("EmergentSource knowgget not published")
	}
}

func TestWormholeNoCorrelationWithoutOverlap(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewWormhole(map[string]string{"minEmergent": "3"})
	mod.Activate(h.ctx)
	h.kb.AcceptRemote("K2", knowledge.Knowgget{
		Label: knowledge.LabelSuspectBlackhole, Value: "7", Creator: "K2", Entity: "0x0005",
	})
	for i := 0; i < 4; i++ {
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(9, 1, 12, uint8(i), 2, 10, nil), t0.Add(time.Duration(i)*time.Second), -60))
	}
	if len(h.alerts) != 0 {
		t.Errorf("wormhole alerted without origin overlap: %v", h.alerts)
	}
}

func TestWormholeIgnoresNormalForwarding(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewWormhole(map[string]string{"minEmergent": "3"})
	mod.Activate(h.ctx)
	for i := 0; i < 10; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		// Hand-off to 2, then 2 forwards: not emergent.
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 0, 20, nil), at, -65))
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(2, 1, 3, uint8(i), 1, 10, nil), at.Add(30*time.Millisecond), -55))
	}
	if _, ok := h.kb.Get("K1$" + knowledge.LabelEmergentSource + "@0x0002"); ok {
		t.Error("normal relay published as emergent source")
	}
}

func TestDataAlterationDetected(t *testing.T) {
	h := newHarness(true)
	mod, _ := NewDataAlteration(nil)
	mod.Activate(h.ctx)
	// Consistent frame: fine.
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
		stack.BuildCTPData(2, 1, 3, 5, 1, 10, []byte{0x01, 5}), t0, -60))
	if len(h.alerts) != 0 {
		t.Fatal("consistent payload flagged")
	}
	// Tampered frame: payload counter disagrees with header.
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154,
		stack.BuildCTPData(2, 1, 3, 6, 1, 10, []byte{0x01, 99}), t0.Add(time.Second), -60))
	if h.attackNames()[attack.DataAlteration] != 1 {
		t.Fatalf("alteration not detected: %v", h.alerts)
	}
	if h.alerts[0].Suspects[0] != "0x0002" {
		t.Errorf("suspect = %v", h.alerts[0].Suspects)
	}
}
