package detection

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// TrafficAnomalyName is the registry name of the anomaly-based module.
const TrafficAnomalyName = "TrafficAnomalyModule"

// AnomalyAttack is the attack name anomaly alerts carry: the module
// flags deviations from the learned baseline without claiming a
// specific known attack ("able to react to unknown attacks", §IV-B4).
const AnomalyAttack = "traffic-anomaly"

// TrafficAnomaly is the anomaly-based detection module the paper's
// hybrid signature/anomaly design calls for: it learns a per-kind
// traffic-rate baseline (mean and variance over fixed windows, via
// Welford's algorithm) from the Traffic Statistics data stream and
// alerts when a window's rate deviates from its baseline by more than
// a z-score threshold — catching attacks no signature module knows.
//
// Anomaly detection is intentionally opt-in (enable with the
// AnomalyDetection knowgget): the paper notes anomaly approaches are
// "more inaccurate, potentially yielding high false positive rates"
// (§II-B), so the knowledge-driven default leaves it off unless the
// operator asks for it.
type TrafficAnomaly struct {
	base
	// interval is the counting window.
	interval time.Duration
	// zThreshold is the deviation (in standard deviations) that
	// triggers an alert.
	zThreshold float64
	// minWindows is the number of learned windows before alerts fire.
	minWindows int
	cooldown   time.Duration

	windowStart time.Time
	counts      map[packet.Kind]int
	baselines   map[packet.Kind]*welford
	suppress    map[packet.Kind]time.Time
	// lastDst remembers the dominant destination per kind in the
	// current window, to give alerts a victim.
	dsts map[packet.Kind]map[packet.NodeID]int
}

// welford is an online mean/variance accumulator.
type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

var _ module.Module = (*TrafficAnomaly)(nil)

// NewTrafficAnomaly creates the module. Parameters: "interval"
// (duration, default 5s), "zThreshold" (float, default 4),
// "minWindows" (int, default 6), "cooldown" (duration, default 15s).
func NewTrafficAnomaly(params map[string]string) (module.Module, error) {
	d := &TrafficAnomaly{
		interval:   5 * time.Second,
		zThreshold: 4,
		minWindows: 6,
		cooldown:   15 * time.Second,
	}
	var err error
	if v, ok := params["interval"]; ok {
		if d.interval, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("interval: %w", err)
		}
	}
	if v, ok := params["zThreshold"]; ok {
		if d.zThreshold, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("zThreshold: %w", err)
		}
	}
	if v, ok := params["minWindows"]; ok {
		if d.minWindows, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("minWindows: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if d.cooldown, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
	}
	return d, nil
}

// Name implements module.Module.
func (d *TrafficAnomaly) Name() string { return TrafficAnomalyName }

// WatchLabels implements module.Module.
func (d *TrafficAnomaly) WatchLabels() []string { return []string{"AnomalyDetection"} }

// Required implements module.Module: opt-in via the AnomalyDetection
// knowgget.
func (d *TrafficAnomaly) Required(kb *knowledge.Base) bool {
	return boolIs(kb, "AnomalyDetection", true)
}

// Activate implements module.Module.
func (d *TrafficAnomaly) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.windowStart = time.Time{}
	d.counts = make(map[packet.Kind]int)
	d.baselines = make(map[packet.Kind]*welford)
	d.suppress = make(map[packet.Kind]time.Time)
	d.dsts = make(map[packet.Kind]map[packet.NodeID]int)
}

// HandlePacket implements module.Module.
func (d *TrafficAnomaly) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	if d.windowStart.IsZero() {
		d.windowStart = c.Time
	}
	for c.Time.Sub(d.windowStart) >= d.interval {
		d.closeWindow(d.windowStart.Add(d.interval))
		d.windowStart = d.windowStart.Add(d.interval)
		if c.Time.Sub(d.windowStart) >= 10*d.interval {
			d.windowStart = c.Time.Truncate(d.interval)
		}
	}
	d.counts[c.Kind]++
	if c.Dst != "" && c.Dst != packet.Broadcast {
		if d.dsts[c.Kind] == nil {
			d.dsts[c.Kind] = make(map[packet.NodeID]int)
		}
		d.dsts[c.Kind][c.Dst]++
	}
}

// closeWindow scores the finished window against the baselines and
// folds it in.
//
//lint:coldpath runs once per window roll, not per packet; baseline state allocates per (kind, window), bounded by the kind alphabet
func (d *TrafficAnomaly) closeWindow(at time.Time) {
	for kind, count := range d.counts {
		w := d.baselines[kind]
		if w == nil {
			w = &welford{}
			d.baselines[kind] = w
		}
		x := float64(count)
		if w.n >= d.minWindows {
			sd := w.stddev()
			if sd < 1 {
				sd = 1 // quantized counts: a floor keeps z sane
			}
			z := (x - w.mean) / sd
			if z > d.zThreshold && at.After(d.suppress[kind]) {
				d.suppress[kind] = at.Add(d.cooldown)
				d.ctx.Emit(module.Alert{
					Time:       at,
					Attack:     AnomalyAttack,
					Module:     d.Name(),
					Victim:     d.topDst(kind),
					Confidence: 0.4,
					Details: fmt.Sprintf("%s rate %.0f/window deviates %.1fσ from baseline %.1f",
						kind, x, z, w.mean),
				})
				// Do not fold attack windows into the baseline.
				continue
			}
		}
		w.add(x)
	}
	// Kinds absent this window regress towards zero.
	for kind, w := range d.baselines {
		if _, seen := d.counts[kind]; !seen && w.n >= 1 {
			w.add(0)
		}
	}
	d.counts = make(map[packet.Kind]int)
	d.dsts = make(map[packet.Kind]map[packet.NodeID]int)
}

func (d *TrafficAnomaly) topDst(kind packet.Kind) packet.NodeID {
	var best packet.NodeID
	bestN := 0
	for dst, n := range d.dsts[kind] {
		if n > bestN || (n == bestN && dst < best) {
			best, bestN = dst, n
		}
	}
	return best
}
