// Package detection implements Kalis' detection modules, one per attack
// of the Fig. 3 taxonomy: ICMP flood, Smurf, SYN flood, selective
// forwarding, blackhole, replication (static and mobile variants),
// sybil, sinkhole, wormhole (collective-knowledge driven), and data
// alteration.
//
// Each module declares, through Required, the knowledge predicate under
// which its services are needed — the heart of the knowledge-driven
// approach: "a selective forwarding attack cannot be carried out in a
// single-hop network" (§III). Several modules also adapt their
// *technique* to the available knowledge: with knowledge-driven
// operation disabled (the traditional-IDS baseline) they fall back to
// naive symptom-only techniques, reproducing the ambiguities the paper
// observes (e.g. flood vs Smurf).
package detection

import (
	"math"
	"sort"
	"strings"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// base carries the state shared by every detection module.
type base struct {
	ctx *module.Context
}

func (b *base) Kind() module.Kind { return module.KindDetection }

func (b *base) Activate(ctx *module.Context) { b.ctx = ctx }

func (b *base) Deactivate() { b.ctx = nil }

func (b *base) active() bool { return b.ctx != nil }

// knowledgeDriven reports whether the module may rely on the Knowledge
// Base for technique selection. The traditional-IDS baseline runs
// "without Knowledge Base" (§VI-B), so modules fall back to their
// naive techniques.
func (b *base) knowledgeDriven() bool {
	return b.ctx != nil && b.ctx.KnowledgeDriven
}

// hasMedium reports whether the given medium has been observed.
func hasMedium(kb *knowledge.Base, m packet.Medium) bool {
	v, ok := kb.Value(knowledge.LabelMediums + "." + m.String())
	return ok && v == "true"
}

// boolIs reports whether a boolean knowgget is present with the given
// value.
func boolIs(kb *knowledge.Base, label string, want bool) bool {
	v, ok := kb.Bool(label)
	return ok && v == want
}

// boolIsOrUnknown reports whether a boolean knowgget is absent or has
// the given value.
func boolIsOrUnknown(kb *knowledge.Base, label string, want bool) bool {
	v, ok := kb.Bool(label)
	return !ok || v == want
}

// fingerprintMatch returns the monitored entities whose smoothed
// signal strength (SignalStrength knowggets from the Mobility Awareness
// module) lies within tol dB of rssi — the paper's "approximate
// disambiguation through a comparison of the signal strength with
// previous overheard communications" (§VI-B1). Excluded entities are
// skipped. Results are sorted by fingerprint distance.
//
//lint:coldpath fingerprint disambiguation runs only during gate-passed alert formation, cooldown-bounded
func fingerprintMatch(kb *knowledge.Base, rssi, tol float64, exclude map[packet.NodeID]bool) []packet.NodeID {
	type cand struct {
		id   packet.NodeID
		dist float64
	}
	var cands []cand
	for _, k := range kb.QueryLocal() {
		if k.Label != knowledge.LabelSignalStrength || k.Entity == "" {
			continue
		}
		id := packet.NodeID(k.Entity)
		if exclude[id] {
			continue
		}
		v, ok := kb.EntityFloat(knowledge.LabelSignalStrength, k.Entity)
		if !ok {
			continue
		}
		if d := math.Abs(v - rssi); d <= tol {
			cands = append(cands, cand{id: id, dist: d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	out := make([]packet.NodeID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// rssiStdDev returns the sample standard deviation of RSSI samples. A
// single physical transmitter produces a spread on the order of the
// shadowing deviation (1–2 dB); several transmitters at distinct
// distances produce a much larger one — a merge-resistant test for the
// "one physical source" property of a spoofed flood.
func rssiStdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	var mean float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)-1))
}

// clusterRSSI clusters sorted 1-D RSSI samples with the given gap
// tolerance and returns the number of clusters — the number of distinct
// physical transmitters behind a set of observations.
func clusterRSSI(samples []float64, gap float64) int {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	clusters := 1
	for i := 1; i < len(s); i++ {
		if s[i]-s[i-1] > gap {
			clusters++
		}
	}
	return clusters
}

// commGraph reconstructs the undirected communication graph from the
// Edge knowggets published by the Topology Discovery module.
func commGraph(kb *knowledge.Base) map[packet.NodeID][]packet.NodeID {
	adj := make(map[packet.NodeID][]packet.NodeID)
	add := func(a, b packet.NodeID) {
		adj[a] = append(adj[a], b)
	}
	for _, k := range kb.QueryLocal() {
		if k.Label != "Edge" || k.Entity == "" {
			continue
		}
		parts := strings.SplitN(k.Entity, ">", 2)
		if len(parts) != 2 {
			continue
		}
		from, to := packet.NodeID(parts[0]), packet.NodeID(parts[1])
		add(from, to)
		add(to, from)
	}
	return adj
}

// hopDistance returns BFS hop distances from the given node over the
// reconstructed communication graph.
func hopDistance(kb *knowledge.Base, from packet.NodeID) map[packet.NodeID]int {
	adj := commGraph(kb)
	dist := map[packet.NodeID]int{from: 0}
	queue := []packet.NodeID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// atDistance returns the sorted nodes at exactly d hops from from.
func atDistance(kb *knowledge.Base, from packet.NodeID, d int) []packet.NodeID {
	var out []packet.NodeID
	for id, dd := range hopDistance(kb, from) {
		if dd == d {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
