package detection

import (
	"fmt"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
)

// DataAlterationName is the registry name of the data-alteration
// module.
const DataAlterationName = "DataAlterationModule"

// DataAlteration detects in-flight payload tampering on unencrypted
// collection traffic by checking the application payload's internal
// consistency (the WSN application embeds its sequence number in the
// payload). Per the Fig. 3 taxonomy, cryptographic protection makes
// devices immune to alteration — the module deactivates itself when the
// Encrypted feature is known true.
type DataAlteration struct {
	base
	cooldown time.Duration
	suppress map[packet.NodeID]time.Time
}

var _ module.Module = (*DataAlteration)(nil)

// NewDataAlteration creates the module. Parameters: "cooldown"
// (duration, default 10s).
func NewDataAlteration(params map[string]string) (module.Module, error) {
	d := &DataAlteration{cooldown: 10 * time.Second}
	if v, ok := params["cooldown"]; ok {
		cd, err := time.ParseDuration(v)
		if err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
		d.cooldown = cd
	}
	return d, nil
}

// Name implements module.Module.
func (d *DataAlteration) Name() string { return DataAlterationName }

// WatchLabels implements module.Module.
func (d *DataAlteration) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelEncrypted}
}

// Required implements module.Module: pointless when the monitored
// devices encrypt (a prevention-technique feature, §III-B2).
func (d *DataAlteration) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) &&
		boolIsOrUnknown(kb, knowledge.LabelEncrypted, false)
}

// Activate implements module.Module.
func (d *DataAlteration) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.suppress = make(map[packet.NodeID]time.Time)
}

// HandlePacket implements module.Module.
func (d *DataAlteration) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	data, ok := c.Layer("ctp-data").(*ctp.Data)
	if !ok {
		return
	}
	// The mote application payload is [0x01, seqNo]; a forwarded frame
	// whose payload disagrees with its own header was altered in
	// flight.
	if len(data.Payload) < 2 || data.Payload[0] != 0x01 {
		return
	}
	if data.Payload[1] == data.SeqNo {
		return
	}
	suspect := c.Transmitter
	if until, ok := d.suppress[suspect]; ok && c.Time.Before(until) {
		return
	}
	d.suppress[suspect] = c.Time.Add(d.cooldown)
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.DataAlteration,
		Module:     d.Name(),
		Victim:     c.Src,
		Suspects:   []packet.NodeID{suspect},
		Confidence: 0.95,
		Details: fmt.Sprintf("payload of origin %s seq %d altered in flight by %s",
			packet.CleanID(c.Src), data.SeqNo, packet.CleanID(suspect)),
	})
}
