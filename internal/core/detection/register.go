package detection

import "kalis/internal/core/module"

// Register adds every detection-module factory to the registry, making
// them available for configuration-driven instantiation by name.
func Register(r *module.Registry) {
	r.Register(ICMPFloodName, NewICMPFlood)
	r.Register(SmurfName, NewSmurf)
	r.Register(SYNFloodName, NewSYNFlood)
	r.Register(SelectiveForwardingName, NewSelectiveForwarding)
	r.Register(BlackholeName, NewBlackhole)
	r.Register(ReplicationStaticName, NewReplicationStatic)
	r.Register(ReplicationMobileName, NewReplicationMobile)
	r.Register(SybilName, NewSybil)
	r.Register(SinkholeName, NewSinkhole)
	r.Register(WormholeName, NewWormhole)
	r.Register(DataAlterationName, NewDataAlteration)
	r.Register(TrafficAnomalyName, NewTrafficAnomaly)
	r.Register(HealthCorrName, NewHealthCorr)
}

// Names lists the registry names of all detection modules.
func Names() []string {
	return []string{
		ICMPFloodName, SmurfName, SYNFloodName,
		SelectiveForwardingName, BlackholeName,
		ReplicationStaticName, ReplicationMobileName,
		SybilName, SinkholeName, WormholeName, DataAlterationName,
		TrafficAnomalyName, HealthCorrName,
	}
}
