package detection

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
)

// Registry names of the forwarding-watchdog modules.
const (
	SelectiveForwardingName = "SelectiveForwardingModule"
	BlackholeName           = "BlackholeModule"
)

// watchdog implements promiscuous forwarding surveillance over CTP
// data traffic [13], [29]: every data frame handed to a relay is
// expected to be overheard again, retransmitted by that relay with an
// incremented THL, within a timeout. Per-relay drop ratios over a
// sliding window separate healthy relays from selective forwarders
// (partial drops) and blackholes (near-total drops) — the paper's
// example of techniques "generalized to detect attacks with similar
// symptoms but different severity or root causes" (§IV-B4).
type watchdog struct {
	timeout    time.Duration
	window     time.Duration
	minSamples int

	// pending maps relay → (origin|seq) → deadline.
	pending map[packet.NodeID]map[pendKey]time.Time
	// outcomes per relay within the sliding window.
	outcomes map[packet.NodeID][]outcome
	// roots are collection roots (advertise ETX 0); they legitimately
	// never forward.
	roots map[packet.NodeID]bool
	// droppedOrigins records which origins a relay dropped (for
	// wormhole correlation).
	droppedOrigins map[packet.NodeID]map[uint16]bool
}

type outcome struct {
	at      time.Time
	dropped bool
}

func newWatchdog(timeout, window time.Duration, minSamples int) *watchdog {
	w := &watchdog{timeout: timeout, window: window, minSamples: minSamples}
	w.reset()
	return w
}

func (w *watchdog) reset() {
	w.pending = make(map[packet.NodeID]map[pendKey]time.Time)
	w.outcomes = make(map[packet.NodeID][]outcome)
	w.roots = make(map[packet.NodeID]bool)
	w.droppedOrigins = make(map[packet.NodeID]map[uint16]bool)
}

// pendKey identifies a forwarded frame by its CTP origin and sequence
// number. A comparable struct keeps the per-frame expectation update
// allocation-free (hotalloc); the previous strconv+concat key cost two
// allocations per data frame.
type pendKey struct {
	origin uint16
	seq    uint8
}

// observe processes one capture and returns the drop ratio and sample
// count for the frame's relay whenever new evidence about that relay
// materialized (sample count 0 otherwise).
func (w *watchdog) observe(c *packet.Captured) (relay packet.NodeID, ratio float64, samples int) {
	if b, ok := c.Layer("ctp-beacon").(*ctp.Beacon); ok {
		if b.ETX == 0 {
			w.roots[c.Transmitter] = true
		}
		return "", 0, 0
	}
	d, ok := c.Layer("ctp-data").(*ctp.Data)
	if !ok {
		return "", 0, 0
	}
	w.expire(c.Time)

	key := pendKey{origin: d.Origin, seq: d.SeqNo}
	// The transmitter just forwarded (or originated) this frame; any
	// pending expectation on it is satisfied.
	satisfied := false
	if m := w.pending[c.Transmitter]; m != nil {
		if _, waiting := m[key]; waiting {
			delete(m, key)
			w.outcomes[c.Transmitter] = append(w.outcomes[c.Transmitter], outcome{at: c.Time, dropped: false})
			satisfied = true
		}
	}
	// The frame is now in the hands of its link-layer destination; if
	// that node is a relay (not a collection root, not broadcast), it
	// must forward in turn — register the expectation even for frames
	// that themselves satisfied one, so every hop of a chain is
	// monitored.
	if c.Dst != packet.Broadcast && c.Dst != "" && !w.roots[c.Dst] {
		if w.pending[c.Dst] == nil {
			w.pending[c.Dst] = make(map[pendKey]time.Time)
		}
		w.pending[c.Dst][key] = c.Time.Add(w.timeout)
	}
	if satisfied {
		return w.ratio(c.Transmitter, c.Time)
	}
	return "", 0, 0
}

// expire converts overdue expectations into drop outcomes.
func (w *watchdog) expire(now time.Time) {
	for relay, m := range w.pending {
		for key, deadline := range m {
			if now.After(deadline) {
				delete(m, key)
				w.outcomes[relay] = append(w.outcomes[relay], outcome{at: now, dropped: true})
				if w.droppedOrigins[relay] == nil {
					w.droppedOrigins[relay] = make(map[uint16]bool)
				}
				w.droppedOrigins[relay][key.origin] = true
			}
		}
	}
}

// ratio returns the windowed drop ratio and sample count for a relay.
func (w *watchdog) ratio(relay packet.NodeID, now time.Time) (packet.NodeID, float64, int) {
	evs := w.outcomes[relay]
	cut := 0
	for cut < len(evs) && now.Sub(evs[cut].at) > w.window {
		cut++
	}
	evs = evs[cut:]
	w.outcomes[relay] = evs
	if len(evs) == 0 {
		return relay, 0, 0
	}
	drops := 0
	for _, e := range evs {
		if e.dropped {
			drops++
		}
	}
	return relay, float64(drops) / float64(len(evs)), len(evs)
}

// latestRatios returns the windowed ratios of every relay with enough
// samples; used on expiry-driven paths where the dropper itself never
// transmits again.
func (w *watchdog) latestRatios(now time.Time) map[packet.NodeID]float64 {
	out := make(map[packet.NodeID]float64)
	for relay := range w.outcomes {
		_, ratio, n := w.ratio(relay, now)
		if n >= w.minSamples {
			out[relay] = ratio
		}
	}
	return out
}

// origins returns the sorted origins dropped by a relay, rendered as a
// comma-separated list (the payload of SuspectBlackhole knowggets).
func (w *watchdog) origins(relay packet.NodeID) string {
	set := w.droppedOrigins[relay]
	ids := make([]int, 0, len(set))
	for o := range set {
		ids = append(ids, int(o))
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, o := range ids {
		parts[i] = strconv.Itoa(o)
	}
	return strings.Join(parts, ",")
}

// parseWatchdogParams reads common watchdog parameters.
func parseWatchdogParams(params map[string]string) (timeout, window time.Duration, minSamples int, cooldown time.Duration, err error) {
	timeout, window, minSamples, cooldown = 500*time.Millisecond, 30*time.Second, 8, 20*time.Second
	if v, ok := params["timeout"]; ok {
		if timeout, err = time.ParseDuration(v); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("timeout: %w", err)
		}
	}
	if v, ok := params["window"]; ok {
		if window, err = time.ParseDuration(v); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("window: %w", err)
		}
	}
	if v, ok := params["minSamples"]; ok {
		if minSamples, err = strconv.Atoi(v); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("minSamples: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if cooldown, err = time.ParseDuration(v); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("cooldown: %w", err)
		}
	}
	return timeout, window, minSamples, cooldown, nil
}

// SelectiveForwarding detects relays that drop a fraction of the
// traffic they should forward (drop ratio in the selective band).
type SelectiveForwarding struct {
	base
	wd       *watchdog
	cooldown time.Duration
	suppress map[packet.NodeID]time.Time
}

var _ module.Module = (*SelectiveForwarding)(nil)

// NewSelectiveForwarding creates the module. Parameters: "timeout",
// "window", "cooldown" (durations), "minSamples" (int).
func NewSelectiveForwarding(params map[string]string) (module.Module, error) {
	timeout, window, minSamples, cooldown, err := parseWatchdogParams(params)
	if err != nil {
		return nil, err
	}
	return &SelectiveForwarding{
		wd:       newWatchdog(timeout, window, minSamples),
		cooldown: cooldown,
	}, nil
}

// Name implements module.Module.
func (d *SelectiveForwarding) Name() string { return SelectiveForwardingName }

// WatchLabels implements module.Module.
func (d *SelectiveForwarding) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMultihop}
}

// Required implements module.Module: "a selective forwarding attack
// cannot be carried out in a single-hop network" (§III).
func (d *SelectiveForwarding) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) && boolIs(kb, knowledge.LabelMultihop, true)
}

// Activate implements module.Module.
func (d *SelectiveForwarding) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.wd.reset()
	d.suppress = make(map[packet.NodeID]time.Time)
}

// HandlePacket implements module.Module.
func (d *SelectiveForwarding) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	d.wd.observe(c)
	for relay, ratio := range d.wd.latestRatios(c.Time) {
		if ratio >= 0.9 {
			// Blackhole-grade: handled by the Blackhole module. The
			// windowed ratio will pass back through the selective band
			// while it decays after the attack stops — suppress the
			// relay for a full window so the decay is not misreported.
			d.suppress[relay] = c.Time.Add(d.wd.window)
			continue
		}
		if ratio < 0.25 {
			continue // healthy
		}
		if until, ok := d.suppress[relay]; ok && c.Time.Before(until) {
			continue
		}
		d.suppress[relay] = c.Time.Add(d.cooldown)
		d.ctx.Emit(module.Alert{
			Time:       c.Time,
			Attack:     attack.SelectiveForwarding,
			Module:     d.Name(),
			Suspects:   []packet.NodeID{relay},
			Confidence: 0.8,
			Details:    fmt.Sprintf("relay %s drops %.0f%% of forwarded traffic", relay, ratio*100),
		})
	}
}

// Blackhole detects relays that drop (nearly) all traffic they should
// forward. It additionally publishes a collective SuspectBlackhole
// knowgget naming the dropped origins, which peer Kalis nodes correlate
// into wormhole detections (§VI-D).
type Blackhole struct {
	base
	wd       *watchdog
	cooldown time.Duration
	suppress map[packet.NodeID]time.Time
}

var _ module.Module = (*Blackhole)(nil)

// NewBlackhole creates the module. Parameters as
// NewSelectiveForwarding.
func NewBlackhole(params map[string]string) (module.Module, error) {
	timeout, window, minSamples, cooldown, err := parseWatchdogParams(params)
	if err != nil {
		return nil, err
	}
	return &Blackhole{
		wd:       newWatchdog(timeout, window, minSamples),
		cooldown: cooldown,
	}, nil
}

// Name implements module.Module.
func (d *Blackhole) Name() string { return BlackholeName }

// WatchLabels implements module.Module.
func (d *Blackhole) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMultihop}
}

// Required implements module.Module.
func (d *Blackhole) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) && boolIs(kb, knowledge.LabelMultihop, true)
}

// Activate implements module.Module.
func (d *Blackhole) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.wd.reset()
	d.suppress = make(map[packet.NodeID]time.Time)
}

// HandlePacket implements module.Module.
func (d *Blackhole) HandlePacket(c *packet.Captured) {
	if !d.active() {
		return
	}
	d.wd.observe(c)
	for relay, ratio := range d.wd.latestRatios(c.Time) {
		if ratio < 0.9 {
			continue
		}
		if d.knowledgeDriven() {
			d.ctx.KB.PutCollective(knowledge.LabelSuspectBlackhole, string(relay), d.wd.origins(relay))
		}
		if until, ok := d.suppress[relay]; ok && c.Time.Before(until) {
			continue
		}
		d.suppress[relay] = c.Time.Add(d.cooldown)
		d.ctx.Emit(module.Alert{
			Time:       c.Time,
			Attack:     attack.Blackhole,
			Module:     d.Name(),
			Suspects:   []packet.NodeID{relay},
			Confidence: 0.85,
			Details:    fmt.Sprintf("relay %s drops %.0f%% of forwarded traffic", relay, ratio*100),
		})
	}
}
