package detection

import (
	"fmt"
	"strconv"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/flow"
	"kalis/internal/packet"
)

// Registry names of the replication-detection modules.
const (
	ReplicationStaticName = "ReplicationStaticModule"
	ReplicationMobileName = "ReplicationMobileModule"
)

// The replication attack adds malicious replicas of legitimate node
// identities to the network (§VI-B2). "Many detection techniques exist
// for this attack; however each one is specific to a network with
// certain characteristics, e.g. mobility [25]" — Kalis therefore ships
// two modules and activates the one matching the network's current
// mobility profile. Both read the same per-identity motion evidence
// (RSSI jumps, sequence-counter conflicts) from the flow layer's shared
// identity-motion tracker; when configured alike, the state updates
// once per packet for both.

// replicationCore holds the configuration and alert policy shared by
// both variants, plus the handle on the flow layer's motion tracker.
type replicationCore struct {
	threshold  float64 // RSSI jump threshold (dB)
	window     time.Duration
	minEvents  int
	cooldown   time.Duration
	alpha      float64
	minSamples int

	motion *flow.IdentityMotion
	// self marks a standalone (table-less) tracker the module must
	// observe packets into itself.
	self     bool
	suppress map[packet.NodeID]time.Time
}

func newReplicationCore(params map[string]string) (*replicationCore, error) {
	c := &replicationCore{
		threshold:  6,
		window:     30 * time.Second,
		minEvents:  3,
		cooldown:   20 * time.Second,
		alpha:      0.3,
		minSamples: 3,
	}
	var err error
	if v, ok := params["threshold"]; ok {
		if c.threshold, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("threshold: %w", err)
		}
	}
	if v, ok := params["window"]; ok {
		if c.window, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("window: %w", err)
		}
	}
	if v, ok := params["minEvents"]; ok {
		if c.minEvents, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("minEvents: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if c.cooldown, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
	}
	return c, nil
}

// acquire attaches the core to the flow layer's shared motion tracker
// (or a standalone one when the module runs without a flow pipeline)
// and resets the alert policy.
func (c *replicationCore) acquire(ctx *module.Context) {
	cfg := flow.MotionConfig{
		Medium:     packet.MediumIEEE802154,
		Threshold:  c.threshold,
		Window:     c.window,
		Alpha:      c.alpha,
		MinSamples: c.minSamples,
	}
	if ctx.Flows != nil {
		c.motion, c.self = ctx.Flows.Motion(cfg), false
	} else {
		c.motion, c.self = flow.NewIdentityMotion(cfg), true
	}
	c.suppress = make(map[packet.NodeID]time.Time)
}

// release returns the tracker handle.
func (c *replicationCore) release() {
	c.motion.Release()
	c.motion = nil
}

// observe feeds the packet to a standalone tracker (table-attached
// trackers are updated by the flow table before module fan-out).
func (c *replicationCore) observe(cap *packet.Captured) {
	if c.self {
		c.motion.Observe(cap)
	}
}

func (c *replicationCore) suppressed(id packet.NodeID, now time.Time) bool {
	if until, ok := c.suppress[id]; ok && now.Before(until) {
		return true
	}
	c.suppress[id] = now.Add(c.cooldown)
	return false
}

// ReplicationStatic detects node replication in static networks: a
// stationary node's signal strength is stable, so an identity whose
// RSSI repeatedly jumps between distinct levels is being used by a
// replica at a different location. The technique is only sound while
// the RSSI baseline is trustworthy: when most identities are jumping
// (i.e. the network is actually mobile), the module conservatively
// stays silent — which is exactly why it is the wrong module for a
// mobile network.
type ReplicationStatic struct {
	base
	core *replicationCore
}

var _ module.Module = (*ReplicationStatic)(nil)

// NewReplicationStatic creates the module. Parameters: "threshold"
// (dB), "window", "cooldown" (durations), "minEvents" (int).
func NewReplicationStatic(params map[string]string) (module.Module, error) {
	core, err := newReplicationCore(params)
	if err != nil {
		return nil, err
	}
	return &ReplicationStatic{core: core}, nil
}

// Name implements module.Module.
func (d *ReplicationStatic) Name() string { return ReplicationStaticName }

// WatchLabels implements module.Module.
func (d *ReplicationStatic) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMobility}
}

// Required implements module.Module: suitable for static wireless
// networks of constrained devices.
func (d *ReplicationStatic) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) && boolIs(kb, knowledge.LabelMobility, false)
}

// Activate implements module.Module.
func (d *ReplicationStatic) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.core.acquire(ctx)
}

// Deactivate implements module.Module.
func (d *ReplicationStatic) Deactivate() {
	d.core.release()
	d.base.Deactivate()
}

// HandlePacket implements module.Module.
func (d *ReplicationStatic) HandlePacket(c *packet.Captured) {
	if !d.active() || c.Medium != packet.MediumIEEE802154 || c.Transmitter == "" {
		return
	}
	d.core.observe(c)
	s := d.core.motion.Snapshot(c.Transmitter)
	// Alert only on fresh evidence: the current packet must itself be
	// a jump, so stale window contents cannot re-trigger after the
	// attack stops.
	if s.Jumps < d.core.minEvents || !s.LastJump.Equal(c.Time) {
		return
	}
	// Baseline health: under network-wide motion the RSSI baseline is
	// meaningless; stay silent rather than flood false positives.
	if d.core.motion.JumpyFraction() > 0.5 {
		return
	}
	if d.core.suppressed(c.Transmitter, c.Time) {
		return
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Replication,
		Module:     d.Name(),
		Suspects:   []packet.NodeID{c.Transmitter},
		Confidence: 0.85,
		Details: fmt.Sprintf("identity %s transmits from alternating locations (%d RSSI jumps)",
			packet.CleanID(c.Transmitter), s.Jumps),
	})
}

// ReplicationMobile detects node replication in mobile networks using a
// velocity-style test in the spirit of [25]: an identity observed with
// interleaved, conflicting end-to-end sequence counters is being
// originated by two devices at once — a signature that remains valid
// while nodes (and their RSSI) legitimately move.
type ReplicationMobile struct {
	base
	core *replicationCore
}

var _ module.Module = (*ReplicationMobile)(nil)

// NewReplicationMobile creates the module. Parameters as
// NewReplicationStatic.
func NewReplicationMobile(params map[string]string) (module.Module, error) {
	core, err := newReplicationCore(params)
	if err != nil {
		return nil, err
	}
	return &ReplicationMobile{core: core}, nil
}

// Name implements module.Module.
func (d *ReplicationMobile) Name() string { return ReplicationMobileName }

// WatchLabels implements module.Module.
func (d *ReplicationMobile) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMobility}
}

// Required implements module.Module: suitable for mobile wireless
// networks.
func (d *ReplicationMobile) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) && boolIs(kb, knowledge.LabelMobility, true)
}

// Activate implements module.Module.
func (d *ReplicationMobile) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.core.acquire(ctx)
}

// Deactivate implements module.Module.
func (d *ReplicationMobile) Deactivate() {
	d.core.release()
	d.base.Deactivate()
}

// HandlePacket implements module.Module.
func (d *ReplicationMobile) HandlePacket(c *packet.Captured) {
	if !d.active() || c.Medium != packet.MediumIEEE802154 || c.Transmitter == "" {
		return
	}
	d.core.observe(c)
	s := d.core.motion.Snapshot(c.Transmitter)
	// Fresh evidence only: the triggering packet must itself be a
	// sequence conflict.
	if s.Flips < d.core.minEvents || !s.LastFlip.Equal(c.Time) {
		return
	}
	if d.core.suppressed(c.Transmitter, c.Time) {
		return
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Replication,
		Module:     d.Name(),
		Suspects:   []packet.NodeID{c.Transmitter},
		Confidence: 0.85,
		Details: fmt.Sprintf("identity %s shows %d interleaved sequence counters",
			packet.CleanID(c.Transmitter), s.Flips),
	})
}
