package detection

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/zigbee"
)

// Registry names of the replication-detection modules.
const (
	ReplicationStaticName = "ReplicationStaticModule"
	ReplicationMobileName = "ReplicationMobileModule"
)

// The replication attack adds malicious replicas of legitimate node
// identities to the network (§VI-B2). "Many detection techniques exist
// for this attack; however each one is specific to a network with
// certain characteristics, e.g. mobility [25]" — Kalis therefore ships
// two modules and activates the one matching the network's current
// mobility profile.

// identityTrack is per-identity observation state shared by both
// variants.
type identityTrack struct {
	ewma    float64
	samples int
	lastSeq uint8
	seqInit bool
	jumps   []time.Time // RSSI jump timestamps (window-pruned)
	flips   []time.Time // seq regression timestamps (window-pruned)
	wobbles []time.Time // sub-jump RSSI deviations (baseline health)
}

type replicationCore struct {
	threshold  float64 // RSSI jump threshold (dB)
	window     time.Duration
	minEvents  int
	cooldown   time.Duration
	alpha      float64
	minSamples int

	tracks   map[packet.NodeID]*identityTrack
	suppress map[packet.NodeID]time.Time
}

func newReplicationCore(params map[string]string) (*replicationCore, error) {
	c := &replicationCore{
		threshold:  6,
		window:     30 * time.Second,
		minEvents:  3,
		cooldown:   20 * time.Second,
		alpha:      0.3,
		minSamples: 3,
	}
	var err error
	if v, ok := params["threshold"]; ok {
		if c.threshold, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("threshold: %w", err)
		}
	}
	if v, ok := params["window"]; ok {
		if c.window, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("window: %w", err)
		}
	}
	if v, ok := params["minEvents"]; ok {
		if c.minEvents, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("minEvents: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if c.cooldown, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
	}
	c.reset()
	return c, nil
}

func (c *replicationCore) reset() {
	c.tracks = make(map[packet.NodeID]*identityTrack)
	c.suppress = make(map[packet.NodeID]time.Time)
}

// seqOf extracts the most end-to-end sequence counter the capture
// carries: CTP data sequence numbers, then ZigBee NWK sequence numbers,
// then the per-hop 802.15.4 MAC sequence (all keyed by transmitter
// identity, so per-hop counters are still per-identity monotonic).
func seqOf(cap *packet.Captured) (uint8, bool) {
	if d, ok := cap.Layer("ctp-data").(*ctp.Data); ok {
		return d.SeqNo, true
	}
	if n, ok := cap.Layer("zigbee").(*zigbee.Frame); ok {
		return n.Seq, true
	}
	if m, ok := cap.Layer("ieee802154").(*ieee802154.Frame); ok {
		return m.Seq, true
	}
	return 0, false
}

// seqTrustworthy reports whether the capture's sequence counter belongs
// to the transmitter identity itself. Forwarded frames carry the
// *origin's* counter, which legitimately interleaves several counters
// under one relaying transmitter — those must not count as flips.
func seqTrustworthy(cap *packet.Captured) bool {
	if _, ok := cap.Layer("ctp-data").(*ctp.Data); ok {
		return cap.Src == cap.Transmitter
	}
	if n, ok := cap.Layer("zigbee").(*zigbee.Frame); ok {
		return stack.ShortID(n.Src) == cap.Transmitter
	}
	return true
}

// track updates per-identity state and returns the track.
func (c *replicationCore) track(cap *packet.Captured) *identityTrack {
	id := cap.Transmitter
	t := c.tracks[id]
	if t == nil {
		t = &identityTrack{ewma: cap.RSSI, samples: 1}
		c.tracks[id] = t
		if seq, ok := seqOf(cap); ok {
			t.lastSeq = seq
			t.seqInit = true
		}
		return t
	}
	t.samples++
	dev := math.Abs(cap.RSSI - t.ewma)
	if t.samples > c.minSamples && dev > c.threshold {
		t.jumps = append(t.jumps, cap.Time)
		// Re-anchor on the new position so alternation keeps counting.
		t.ewma = cap.RSSI
	} else {
		if t.samples > c.minSamples && dev > c.threshold/2 {
			// Sub-jump deviation: not replica-grade, but evidence the
			// RSSI baseline is in motion.
			t.wobbles = append(t.wobbles, cap.Time)
		}
		t.ewma += c.alpha * (cap.RSSI - t.ewma)
	}
	if seq, ok := seqOf(cap); ok && seqTrustworthy(cap) {
		if t.seqInit {
			// A regression (non-monotonic, not a wraparound) means two
			// counters are interleaved under one identity.
			diff := int8(seq - t.lastSeq)
			if diff <= 0 && seq != t.lastSeq {
				t.flips = append(t.flips, cap.Time)
			}
		}
		t.lastSeq = seq
		t.seqInit = true
	}
	t.jumps = pruneTimes(t.jumps, cap.Time, c.window)
	t.flips = pruneTimes(t.flips, cap.Time, c.window)
	t.wobbles = pruneTimes(t.wobbles, cap.Time, c.window)
	return t
}

func pruneTimes(ts []time.Time, now time.Time, window time.Duration) []time.Time {
	cut := 0
	for cut < len(ts) && now.Sub(ts[cut]) > window {
		cut++
	}
	return ts[cut:]
}

// jumpyFraction reports the fraction of identities whose RSSI baseline
// is currently unstable (jumps or sub-jump wobbles) — the baseline-
// health check of the static technique: when the whole network is in
// motion, RSSI stability means nothing.
func (c *replicationCore) jumpyFraction() float64 {
	if len(c.tracks) == 0 {
		return 0
	}
	jumpy := 0
	for _, t := range c.tracks {
		if len(t.jumps) > 0 || len(t.wobbles) > 0 {
			jumpy++
		}
	}
	return float64(jumpy) / float64(len(c.tracks))
}

func (c *replicationCore) suppressed(id packet.NodeID, now time.Time) bool {
	if until, ok := c.suppress[id]; ok && now.Before(until) {
		return true
	}
	c.suppress[id] = now.Add(c.cooldown)
	return false
}

// ReplicationStatic detects node replication in static networks: a
// stationary node's signal strength is stable, so an identity whose
// RSSI repeatedly jumps between distinct levels is being used by a
// replica at a different location. The technique is only sound while
// the RSSI baseline is trustworthy: when most identities are jumping
// (i.e. the network is actually mobile), the module conservatively
// stays silent — which is exactly why it is the wrong module for a
// mobile network.
type ReplicationStatic struct {
	base
	core *replicationCore
}

var _ module.Module = (*ReplicationStatic)(nil)

// NewReplicationStatic creates the module. Parameters: "threshold"
// (dB), "window", "cooldown" (durations), "minEvents" (int).
func NewReplicationStatic(params map[string]string) (module.Module, error) {
	core, err := newReplicationCore(params)
	if err != nil {
		return nil, err
	}
	return &ReplicationStatic{core: core}, nil
}

// Name implements module.Module.
func (d *ReplicationStatic) Name() string { return ReplicationStaticName }

// WatchLabels implements module.Module.
func (d *ReplicationStatic) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMobility}
}

// Required implements module.Module: suitable for static wireless
// networks of constrained devices.
func (d *ReplicationStatic) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) && boolIs(kb, knowledge.LabelMobility, false)
}

// Activate implements module.Module.
func (d *ReplicationStatic) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.core.reset()
}

// HandlePacket implements module.Module.
func (d *ReplicationStatic) HandlePacket(c *packet.Captured) {
	if !d.active() || c.Medium != packet.MediumIEEE802154 || c.Transmitter == "" {
		return
	}
	t := d.core.track(c)
	// Alert only on fresh evidence: the current packet must itself be
	// a jump, so stale window contents cannot re-trigger after the
	// attack stops.
	if len(t.jumps) < d.core.minEvents || !t.jumps[len(t.jumps)-1].Equal(c.Time) {
		return
	}
	// Baseline health: under network-wide motion the RSSI baseline is
	// meaningless; stay silent rather than flood false positives.
	if d.core.jumpyFraction() > 0.5 {
		return
	}
	if d.core.suppressed(c.Transmitter, c.Time) {
		return
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Replication,
		Module:     d.Name(),
		Suspects:   []packet.NodeID{c.Transmitter},
		Confidence: 0.85,
		Details: fmt.Sprintf("identity %s transmits from alternating locations (%d RSSI jumps)",
			c.Transmitter, len(t.jumps)),
	})
}

// ReplicationMobile detects node replication in mobile networks using a
// velocity-style test in the spirit of [25]: an identity observed with
// interleaved, conflicting end-to-end sequence counters is being
// originated by two devices at once — a signature that remains valid
// while nodes (and their RSSI) legitimately move.
type ReplicationMobile struct {
	base
	core *replicationCore
}

var _ module.Module = (*ReplicationMobile)(nil)

// NewReplicationMobile creates the module. Parameters as
// NewReplicationStatic.
func NewReplicationMobile(params map[string]string) (module.Module, error) {
	core, err := newReplicationCore(params)
	if err != nil {
		return nil, err
	}
	return &ReplicationMobile{core: core}, nil
}

// Name implements module.Module.
func (d *ReplicationMobile) Name() string { return ReplicationMobileName }

// WatchLabels implements module.Module.
func (d *ReplicationMobile) WatchLabels() []string {
	return []string{knowledge.LabelMediums, knowledge.LabelMobility}
}

// Required implements module.Module: suitable for mobile wireless
// networks.
func (d *ReplicationMobile) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154) && boolIs(kb, knowledge.LabelMobility, true)
}

// Activate implements module.Module.
func (d *ReplicationMobile) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.core.reset()
}

// HandlePacket implements module.Module.
func (d *ReplicationMobile) HandlePacket(c *packet.Captured) {
	if !d.active() || c.Medium != packet.MediumIEEE802154 || c.Transmitter == "" {
		return
	}
	t := d.core.track(c)
	// Fresh evidence only: the triggering packet must itself be a
	// sequence conflict.
	if len(t.flips) < d.core.minEvents || !t.flips[len(t.flips)-1].Equal(c.Time) {
		return
	}
	if d.core.suppressed(c.Transmitter, c.Time) {
		return
	}
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Replication,
		Module:     d.Name(),
		Suspects:   []packet.NodeID{c.Transmitter},
		Confidence: 0.85,
		Details: fmt.Sprintf("identity %s shows %d interleaved sequence counters",
			c.Transmitter, len(t.flips)),
	})
}
