package detection

import (
	"net/netip"
	"testing"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

func TestAnomalyOptIn(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, err := NewTrafficAnomaly(nil)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Required(kb) {
		t.Error("anomaly module required without opt-in")
	}
	kb.PutBool("AnomalyDetection", true)
	if !mod.Required(kb) {
		t.Error("anomaly module not required after opt-in")
	}
}

func TestAnomalyDetectsRateSpike(t *testing.T) {
	h := newHarness(true)
	mod, err := NewTrafficAnomaly(map[string]string{"interval": "5s", "minWindows": "4", "zThreshold": "4"})
	if err != nil {
		t.Fatal(err)
	}
	mod.Activate(h.ctx)
	src := netip.MustParseAddr("192.168.1.20")
	dst := netip.MustParseAddr("192.168.1.10")
	at := t0
	// Baseline: ~2 UDP datagrams per 5 s window for 8 windows.
	for w := 0; w < 8; w++ {
		for i := 0; i < 2; i++ {
			raw := stack.BuildUDP(src, dst, 1, 2, uint16(w*10+i), []byte("x"))
			mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, at, -60))
			at = at.Add(2 * time.Second)
		}
		at = t0.Add(time.Duration(w+1) * 5 * time.Second)
	}
	if len(h.alerts) != 0 {
		t.Fatalf("alerts during baseline: %v", h.alerts)
	}
	// Spike: 60 datagrams in one window — an unknown attack shape.
	spikeStart := at
	for i := 0; i < 60; i++ {
		raw := stack.BuildUDP(src, dst, 1, 2, uint16(1000+i), []byte("x"))
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, spikeStart.Add(time.Duration(i)*80*time.Millisecond), -60))
	}
	// Next window closes the spiked one.
	raw := stack.BuildUDP(src, dst, 1, 2, 2000, []byte("x"))
	mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, spikeStart.Add(6*time.Second), -60))

	if n := h.attackNames()[AnomalyAttack]; n != 1 {
		t.Fatalf("anomaly alerts = %d, want 1 (%v)", n, h.alerts)
	}
	if h.alerts[0].Victim != "192.168.1.10" {
		t.Errorf("victim = %s", h.alerts[0].Victim)
	}
	if h.alerts[0].Confidence >= 0.7 {
		t.Error("anomaly confidence should be low (it cannot name the attack)")
	}
}

func TestAnomalyQuietAfterSpikeExcluded(t *testing.T) {
	// Attack windows must not poison the baseline: a second identical
	// spike still alerts.
	h := newHarness(true)
	mod, _ := NewTrafficAnomaly(map[string]string{"interval": "5s", "minWindows": "4", "cooldown": "1s"})
	mod.Activate(h.ctx)
	src := netip.MustParseAddr("192.168.1.20")
	dst := netip.MustParseAddr("192.168.1.10")
	seq := uint16(0)
	emit := func(at time.Time, n int) {
		for i := 0; i < n; i++ {
			seq++
			raw := stack.BuildUDP(src, dst, 1, 2, seq, []byte("x"))
			mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, at.Add(time.Duration(i)*50*time.Millisecond), -60))
		}
	}
	for w := 0; w < 6; w++ {
		emit(t0.Add(time.Duration(w)*5*time.Second), 2)
	}
	emit(t0.Add(30*time.Second), 60) // spike 1
	for w := 7; w < 9; w++ {
		emit(t0.Add(time.Duration(w)*5*time.Second), 2)
	}
	emit(t0.Add(45*time.Second), 60) // spike 2
	emit(t0.Add(51*time.Second), 1)  // close the window
	if n := h.attackNames()[AnomalyAttack]; n != 2 {
		t.Errorf("anomaly alerts = %d, want 2 (%v)", n, h.alerts)
	}
}

func TestAnomalyParamErrors(t *testing.T) {
	for _, params := range []map[string]string{
		{"interval": "x"}, {"zThreshold": "x"}, {"minWindows": "x"}, {"cooldown": "x"},
	} {
		if _, err := NewTrafficAnomaly(params); err == nil {
			t.Errorf("bad params accepted: %v", params)
		}
	}
}
