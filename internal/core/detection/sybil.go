package detection

import (
	"fmt"
	"strconv"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/flow"
	"kalis/internal/packet"
)

// SybilName is the registry name of the sybil-detection module.
const SybilName = "SybilModule"

// sybilAlpha is the RSSI fingerprint EWMA smoothing factor.
const sybilAlpha = 0.3

// Sybil detects sybil attacks with the RSSI technique of [42]: one
// physical device fabricating several identities cannot fabricate
// several positions, so a group of (recently appeared) identities whose
// signal strengths are indistinguishable betrays a single transmitter.
// The per-identity fingerprints come from the flow layer's shared
// identity tracker (updated once per packet before module fan-out).
type Sybil struct {
	base
	// tolerance is the RSSI spread (dB) within which identities are
	// considered co-located.
	tolerance float64
	// minIdentities is the cluster size that triggers an alert.
	minIdentities int
	// minFrames is the per-identity frame count before its fingerprint
	// is trusted.
	minFrames int
	// warmup is how long after activation identities still count as
	// pre-existing (not "new").
	warmup time.Duration
	// cooldown suppresses repeated alerts for the same cluster.
	cooldown time.Duration

	ids *flow.IdentityStats
	// self marks a standalone (table-less) tracker the module must
	// observe packets into itself.
	self     bool
	suppress time.Time
}

var _ module.Module = (*Sybil)(nil)

// NewSybil creates the module. Parameters: "tolerance" (dB, default
// 1.5), "minIdentities" (default 4), "warmup", "cooldown" (durations).
func NewSybil(params map[string]string) (module.Module, error) {
	d := &Sybil{
		tolerance:     1.5,
		minIdentities: 4,
		minFrames:     2,
		warmup:        20 * time.Second,
		cooldown:      20 * time.Second,
	}
	var err error
	if v, ok := params["tolerance"]; ok {
		if d.tolerance, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("tolerance: %w", err)
		}
	}
	if v, ok := params["minIdentities"]; ok {
		if d.minIdentities, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("minIdentities: %w", err)
		}
	}
	if v, ok := params["warmup"]; ok {
		if d.warmup, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if d.cooldown, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
	}
	return d, nil
}

// Name implements module.Module.
func (d *Sybil) Name() string { return SybilName }

// WatchLabels implements module.Module.
func (d *Sybil) WatchLabels() []string { return []string{knowledge.LabelMediums} }

// Required implements module.Module: the RSSI technique applies to
// wireless constrained-device networks.
func (d *Sybil) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154)
}

// Activate implements module.Module.
func (d *Sybil) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.suppress = time.Time{}
	if ctx.Flows != nil {
		d.ids, d.self = ctx.Flows.IdentityStats(sybilAlpha, packet.MediumIEEE802154), false
	} else {
		d.ids, d.self = flow.NewIdentityStats(sybilAlpha, packet.MediumIEEE802154), true
	}
}

// Deactivate implements module.Module.
func (d *Sybil) Deactivate() {
	d.ids.Release()
	d.ids = nil
	d.base.Deactivate()
}

// HandlePacket implements module.Module.
func (d *Sybil) HandlePacket(c *packet.Captured) {
	if !d.active() || c.Medium != packet.MediumIEEE802154 || c.Transmitter == "" {
		return
	}
	if d.self {
		d.ids.Observe(c)
	}
	if !d.suppress.IsZero() && c.Time.Before(d.suppress) {
		return
	}
	cluster := d.ids.Cluster(c.Transmitter, d.tolerance, d.minFrames, d.warmup)
	if len(cluster) < d.minIdentities {
		return
	}
	d.suppress = c.Time.Add(d.cooldown)
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Sybil,
		Module:     d.Name(),
		Suspects:   cluster,
		Confidence: 0.85,
		Details: fmt.Sprintf("%d recently-appeared identities share one RSSI fingerprint (±%.1f dB)",
			len(cluster), d.tolerance),
	})
}
