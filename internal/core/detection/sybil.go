package detection

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"kalis/internal/attack"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// SybilName is the registry name of the sybil-detection module.
const SybilName = "SybilModule"

// Sybil detects sybil attacks with the RSSI technique of [42]: one
// physical device fabricating several identities cannot fabricate
// several positions, so a group of (recently appeared) identities whose
// signal strengths are indistinguishable betrays a single transmitter.
type Sybil struct {
	base
	// tolerance is the RSSI spread (dB) within which identities are
	// considered co-located.
	tolerance float64
	// minIdentities is the cluster size that triggers an alert.
	minIdentities int
	// minFrames is the per-identity frame count before its fingerprint
	// is trusted.
	minFrames int
	// warmup is how long after activation identities still count as
	// pre-existing (not "new").
	warmup time.Duration
	// cooldown suppresses repeated alerts for the same cluster.
	cooldown time.Duration

	start     time.Time
	ewma      map[packet.NodeID]float64
	frames    map[packet.NodeID]int
	firstSeen map[packet.NodeID]time.Time
	suppress  time.Time
}

var _ module.Module = (*Sybil)(nil)

// NewSybil creates the module. Parameters: "tolerance" (dB, default
// 1.5), "minIdentities" (default 4), "warmup", "cooldown" (durations).
func NewSybil(params map[string]string) (module.Module, error) {
	d := &Sybil{
		tolerance:     1.5,
		minIdentities: 4,
		minFrames:     2,
		warmup:        20 * time.Second,
		cooldown:      20 * time.Second,
	}
	var err error
	if v, ok := params["tolerance"]; ok {
		if d.tolerance, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("tolerance: %w", err)
		}
	}
	if v, ok := params["minIdentities"]; ok {
		if d.minIdentities, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("minIdentities: %w", err)
		}
	}
	if v, ok := params["warmup"]; ok {
		if d.warmup, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	if v, ok := params["cooldown"]; ok {
		if d.cooldown, err = time.ParseDuration(v); err != nil {
			return nil, fmt.Errorf("cooldown: %w", err)
		}
	}
	return d, nil
}

// Name implements module.Module.
func (d *Sybil) Name() string { return SybilName }

// WatchLabels implements module.Module.
func (d *Sybil) WatchLabels() []string { return []string{knowledge.LabelMediums} }

// Required implements module.Module: the RSSI technique applies to
// wireless constrained-device networks.
func (d *Sybil) Required(kb *knowledge.Base) bool {
	return hasMedium(kb, packet.MediumIEEE802154)
}

// Activate implements module.Module.
func (d *Sybil) Activate(ctx *module.Context) {
	d.base.Activate(ctx)
	d.start = time.Time{}
	d.ewma = make(map[packet.NodeID]float64)
	d.frames = make(map[packet.NodeID]int)
	d.firstSeen = make(map[packet.NodeID]time.Time)
	d.suppress = time.Time{}
}

// HandlePacket implements module.Module.
func (d *Sybil) HandlePacket(c *packet.Captured) {
	if !d.active() || c.Medium != packet.MediumIEEE802154 || c.Transmitter == "" {
		return
	}
	if d.start.IsZero() {
		d.start = c.Time
	}
	id := c.Transmitter
	if _, seen := d.ewma[id]; !seen {
		d.ewma[id] = c.RSSI
		d.firstSeen[id] = c.Time
	} else {
		d.ewma[id] += 0.3 * (c.RSSI - d.ewma[id])
	}
	d.frames[id]++

	if !d.suppress.IsZero() && c.Time.Before(d.suppress) {
		return
	}
	cluster := d.clusterAround(id)
	if len(cluster) < d.minIdentities {
		return
	}
	d.suppress = c.Time.Add(d.cooldown)
	d.ctx.Emit(module.Alert{
		Time:       c.Time,
		Attack:     attack.Sybil,
		Module:     d.Name(),
		Suspects:   cluster,
		Confidence: 0.85,
		Details: fmt.Sprintf("%d recently-appeared identities share one RSSI fingerprint (±%.1f dB)",
			len(cluster), d.tolerance),
	})
}

// clusterAround collects the new identities whose fingerprints lie
// within tolerance of the given identity's fingerprint.
func (d *Sybil) clusterAround(id packet.NodeID) []packet.NodeID {
	center, ok := d.ewma[id]
	if !ok || !d.isNew(id) || d.frames[id] < d.minFrames {
		return nil
	}
	var cluster []packet.NodeID
	for other, v := range d.ewma {
		if !d.isNew(other) || d.frames[other] < d.minFrames {
			continue
		}
		if math.Abs(v-center) <= d.tolerance {
			cluster = append(cluster, other)
		}
	}
	sort.Slice(cluster, func(i, j int) bool { return cluster[i] < cluster[j] })
	return cluster
}

// isNew reports whether the identity appeared after the warmup period
// (pre-existing identities are legitimate even if co-located).
func (d *Sybil) isNew(id packet.NodeID) bool {
	fs, ok := d.firstSeen[id]
	if !ok {
		return false
	}
	return fs.Sub(d.start) > d.warmup
}
