// Package core assembles a complete Kalis node from its components
// (Fig. 4): the Communication System feeds captured packets through the
// event bus to the Data Store and the Module Manager; sensing modules
// distill knowggets into the Knowledge Base; the Knowledge Base drives
// dynamic activation of detection modules; alerts flow to subscribers
// (dashboards, countermeasures, the smart firewall) and collective
// knowledge synchronizes with peer Kalis nodes.
package core

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"kalis/internal/core/collective"
	"kalis/internal/core/datastore"
	"kalis/internal/core/detection"
	"kalis/internal/core/event"
	"kalis/internal/core/kconfig"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/core/sensing"
	"kalis/internal/flow"
	"kalis/internal/ingest"
	"kalis/internal/packet"
	"kalis/internal/persist"
	"kalis/internal/telemetry"
)

// Config configures a Kalis node.
type Config struct {
	// NodeID identifies this Kalis node (the knowgget creator field).
	NodeID string
	// KnowledgeDriven enables adaptive module activation; disabling it
	// yields the paper's traditional-IDS baseline (all installed
	// modules always active, no knowledge use).
	KnowledgeDriven bool
	// WindowSize is the Data Store sliding-window capacity (packets);
	// 0 selects the default.
	WindowSize int
	// Async selects asynchronous event delivery (the paper's
	// "all components run independently" mode); synchronous delivery
	// is deterministic and is the default for experiments.
	Async bool
	// ConfigText is an optional configuration file in the Fig. 6
	// grammar: module activations and a-priori knowggets.
	ConfigText string
	// InstallAll installs every registered module (the usual Kalis
	// deployment: the whole module library is available and the
	// Knowledge Base decides what runs). Modules listed in ConfigText
	// are installed with their parameters either way.
	InstallAll bool
	// Flow tunes the flow table (zero fields select the defaults; see
	// flow.Config). The flow pipeline is always on: the table is
	// updated once per packet before module fan-out and expired flows
	// are exported on the flow.records bus topic.
	Flow flow.Config
	// StateDir, when non-empty, enables durable state: the Knowledge
	// Base and Data Store window are recovered from this directory at
	// startup (warm restart) and persisted across the node's lifetime
	// via a write-ahead journal and periodic snapshots. Empty disables
	// persistence entirely.
	StateDir string
	// PersistInterval is the snapshot-compaction interval on the
	// capture clock; 0 selects persist.DefaultInterval. Ignored without
	// StateDir.
	PersistInterval time.Duration
	// Shards selects the ingestion parallelism. 0 or 1 keep today's
	// synchronous in-line dispatch (deterministic; the simulator and
	// virtual-clock tests depend on it). n > 1 runs n shard pipelines
	// — each with its own ring buffer, worker, Data Store window, flow
	// table and module instances — sharded by hash of the packet
	// source, so per-source state and ordering stay shard-local while
	// aggregate throughput scales with cores.
	Shards int
	// IngestRing is the per-shard ring capacity in packets (rounded up
	// to a power of two); 0 selects ingest.DefaultRingSize. Ignored
	// when Shards <= 1.
	IngestRing int
	// IngestBatch caps the packets per drained batch; 0 selects
	// ingest.DefaultBatchSize. Ignored when Shards <= 1.
	IngestBatch int
	// IngestBlock selects lossless ingestion backpressure (spin until
	// ring space frees) instead of the default drop-newest policy.
	// Ignored when Shards <= 1.
	IngestBlock bool
	// IngestMaxSkew bounds, in capture time, how far the feed may run
	// ahead of the slowest busy shard — see ingest.Config.MaxSkew.
	// Only honoured with IngestBlock; 0 disables.
	IngestMaxSkew time.Duration
}

// Kalis is one IDS node.
//
// Sharding (Config.Shards > 1): the node runs one pipeline per shard —
// Data Store window, flow table, module manager and module *instances*
// are all per-shard, because detection modules keep per-source state
// and are not written for concurrent dispatch. The Knowledge Base,
// module registry, event bus, telemetry registry, alert subscribers
// and durable state are shared. Shard 0 is the primary: its Data
// Store carries the disk log and the persisted window, and its worker
// drives the persistence clock. Accessors that return one component
// (Store, Manager, Flows) return shard 0's.
type Kalis struct {
	id       string
	kb       *knowledge.Base
	stores   []*datastore.Store
	registry *module.Registry
	managers []*module.Manager
	bus      *event.Bus
	tables   []*flow.Table
	pipe     *ingest.Pipeline
	coll     *collective.Node
	tel      *telemetry.Registry
	persist  *persist.Manager
}

// New builds a Kalis node.
func New(cfg Config) (*Kalis, error) {
	if cfg.NodeID == "" {
		cfg.NodeID = "K1"
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	kb := knowledge.NewBase(cfg.NodeID)
	registry := module.NewRegistry()
	sensing.Register(registry)
	detection.Register(registry)
	stores := make([]*datastore.Store, shards)
	tables := make([]*flow.Table, shards)
	managers := make([]*module.Manager, shards)
	// One endpoint-tracker registry for all shards: packets shard by
	// source hash, but victim windows, handshake ledgers and identity
	// fingerprints key their evidence by the *other* endpoint — a
	// spoofed-source flood scatters across every shard while its
	// victim's window must accumulate globally (see flow.Trackers).
	// 5-tuple flow state stays shard-local.
	flowCfg := cfg.Flow
	if flowCfg.Trackers == nil {
		flowCfg.Trackers = flow.NewTrackers()
	}
	for i := range stores {
		stores[i] = datastore.New(cfg.WindowSize)
		tables[i] = flow.NewTable(flowCfg)
		managers[i] = module.NewManager(kb, stores[i], cfg.KnowledgeDriven)
	}
	bus := event.NewBus(cfg.Async)
	// Per-topic overflow policies (async mode): the packet topic keeps
	// the default drop-newest (a passive IDS never blocks capture),
	// knowledge events coalesce per knowgget key (only the latest value
	// of a knowgget matters), and detection events are lossless — a
	// dropped alert is a missed detection.
	bus.SetTopicPolicy(event.TopicKnowledge, event.TopicPolicy{
		Policy: event.CoalesceByKey,
		Key: func(payload interface{}) string {
			if kg, ok := payload.(knowledge.Knowgget); ok {
				return kg.Key()
			}
			return ""
		},
	})
	bus.SetTopicPolicy(event.TopicDetection, event.TopicPolicy{Policy: event.Block})
	// Flow records coalesce per flow key: if a consumer lags, only the
	// latest record for a given flow is kept (a re-expired flow
	// supersedes its earlier record).
	bus.SetTopicPolicy(event.TopicFlowRecords, event.TopicPolicy{
		Policy: event.CoalesceByKey,
		Key: func(payload interface{}) string {
			if r, ok := payload.(flow.Record); ok {
				return r.CoalesceKey()
			}
			return ""
		},
	})
	for _, t := range tables {
		//lint:ignore hotalloc flow records box once per export (expiry/eviction), amortized across the flow's packets
		t.OnExport(func(r flow.Record) { bus.Publish(event.TopicFlowRecords, r) })
	}
	tel := telemetry.NewRegistry()
	wireTelemetry(tel, bus, managers, stores, tables)
	// The supervisor's circuit breaker reads queue pressure from the
	// bus; under saturation it sheds persistently-over-budget modules.
	// (Sharded nodes re-point this at the ingest rings below.)
	for _, m := range managers {
		m.SetPressure(bus.QueueDepth)
	}

	k := &Kalis{
		id:       cfg.NodeID,
		kb:       kb,
		stores:   stores,
		registry: registry,
		managers: managers,
		bus:      bus,
		tables:   tables,
		tel:      tel,
	}
	// Durable state recovers BEFORE modules are installed and before
	// any traffic flows: knowledge-driven activation at install time
	// must see the recovered Knowledge Base, and recovery bulk-loads
	// without firing knowledge events.
	if cfg.StateDir != "" {
		pm, err := persist.Open(persist.Config{
			Dir:      cfg.StateDir,
			Interval: cfg.PersistInterval,
			Metrics: persist.Metrics{
				Snapshots: tel.Counter("kalis_persist_snapshot_total",
					"Durable snapshots written (periodic compaction and shutdown flush)."),
				JournalBytes: tel.Gauge("kalis_persist_journal_bytes",
					"Current size of the KB write-ahead journal in bytes."),
				Recoveries: tel.CounterVec("kalis_persist_recoveries_total", "outcome",
					"State recoveries at startup, by outcome (warm, truncated, cold)."),
			},
		}, kb, stores[0])
		if err != nil {
			return nil, fmt.Errorf("kalis: persist: %w", err)
		}
		k.persist = pm
	}
	if shards == 1 {
		// Synchronous in-line dispatch: exactly the pre-sharding
		// behavior, preserved bit-for-bit for the simulator and the
		// virtual-clock tests.
		manager := managers[0]
		bus.Subscribe(event.TopicPacket, func(payload interface{}) {
			if c, ok := payload.(*packet.Captured); ok {
				manager.HandlePacket(c)
				if k.persist != nil {
					// Compaction runs on the capture clock, like every
					// other time-driven behavior in the pipeline.
					k.persist.Tick(c.Time)
				}
			}
		})
	} else {
		sinks := make([]ingest.Sink, shards)
		for i, m := range managers {
			sinks[i] = m
		}
		// Shard 0's worker also drives the persistence clock, so
		// compaction stays on the capture clock in sharded mode.
		sinks[0] = &persistSink{m: managers[0], k: k}
		k.pipe = ingest.New(ingest.Config{
			Shards:    shards,
			RingSize:  cfg.IngestRing,
			BatchSize: cfg.IngestBatch,
			Block:     cfg.IngestBlock,
			MaxSkew:   cfg.IngestMaxSkew,
		}, sinks, ingestMetrics(tel, shards))
		// In sharded mode the pressure signal is the ingest backlog,
		// not the (bypassed) packet-topic queue.
		for _, m := range managers {
			m.SetPressure(k.pipe.Depth)
		}
	}
	alerts := tel.CounterVec("kalis_alerts_total", "attack",
		"Detection alerts raised, by canonical attack name.")
	for _, m := range managers {
		m.OnAlert(func(a module.Alert) {
			//lint:ignore hotpath alerts are rare and cooldown-gated; one label lookup per alert is off the per-packet budget
			alerts.With(a.Attack).Inc()
			//lint:ignore hotalloc alert boxing happens once per raised alert, cooldown-gated far below packet rate
			bus.Publish(event.TopicDetection, a)
		})
	}
	//lint:ignore hotalloc knowgget boxing happens once per knowledge change, change-gated far below packet rate
	kb.SubscribeAll(func(kg knowledge.Knowgget) { bus.Publish(event.TopicKnowledge, kg) })

	// Each shard's manager gets its own module instances: modules keep
	// per-source detector state, which is exactly the state the source
	// hash keeps shard-local.
	installed := make(map[string]bool)
	if cfg.ConfigText != "" {
		parsed, err := kconfig.Parse(cfg.ConfigText)
		if err != nil {
			return nil, fmt.Errorf("kalis: config: %w", err)
		}
		for _, kg := range parsed.Knowggets {
			kb.PutStatic(kg.Label, kg.Entity, kg.Value)
		}
		for _, def := range parsed.Modules {
			if err := k.Install(def.Name, def.Params); err != nil {
				return nil, fmt.Errorf("kalis: config: %w", err)
			}
			installed[def.Name] = true
		}
	}
	if cfg.InstallAll {
		for _, name := range registry.Names() {
			if installed[name] {
				continue
			}
			if err := k.Install(name, nil); err != nil {
				return nil, fmt.Errorf("kalis: install %s: %w", name, err)
			}
		}
	}
	return k, nil
}

// persistSink is shard 0's ingest sink: normal batch dispatch plus the
// durable-state compaction tick on the batch's latest capture time.
type persistSink struct {
	m *module.Manager
	k *Kalis
}

// HandleBatch implements ingest.Sink.
func (s *persistSink) HandleBatch(batch []*packet.Captured) {
	s.m.HandleBatch(batch)
	if s.k.persist != nil {
		s.k.persist.Tick(batch[len(batch)-1].Time)
	}
}

// ingestMetrics registers the per-shard ingestion metrics and
// pre-resolves every shard's children so the enqueue and drain paths
// never pay a Vec lookup.
func ingestMetrics(tel *telemetry.Registry, shards int) ingest.Metrics {
	depth := tel.GaugeVec("kalis_ingest_queue_depth", "shard",
		"Packets currently queued in each shard's ingest ring.")
	drops := tel.CounterVec("kalis_ingest_drops_total", "shard",
		"Packets dropped by each full shard ring (drop-newest backpressure).")
	met := ingest.Metrics{
		BatchSize: tel.Histogram("kalis_ingest_batch_size",
			"Packets per drained ingest batch, encoded as 1 packet == 1s (sum == total packets).",
			ingest.BatchSizeBuckets),
	}
	for i := 0; i < shards; i++ {
		label := strconv.Itoa(i)
		met.Depth = append(met.Depth, depth.With(label))
		met.Drops = append(met.Drops, drops.With(label))
	}
	return met
}

// wireTelemetry registers the node's runtime metrics and installs the
// hooks into every instrumented component. Metric names are documented
// in the "Runtime telemetry" section of README.md.
//
// Counters and histograms are additive and shared across shards. Set-
// based gauges are not (concurrent shards would overwrite each other),
// so in sharded mode the occupancy/active/quarantined gauges become
// GaugeFuncs that sum the per-shard components at exposition time;
// shards == 1 wires the exact single-pipeline metrics as before.
func wireTelemetry(tel *telemetry.Registry, bus *event.Bus, managers []*module.Manager, stores []*datastore.Store, tables []*flow.Table) {
	bus.SetMetrics(event.Metrics{
		Publishes: tel.CounterVec("kalis_bus_publishes_total", "topic",
			"Events published on the bus, by topic."),
		Drops: tel.CounterVec("kalis_bus_drops_total", "topic",
			"Events lost to full async subscriber queues, by topic."),
		Coalesced: tel.CounterVec("kalis_bus_coalesced_total", "topic",
			"Events absorbed by per-key coalescing (replaced, not lost), by topic."),
		Watermarks: tel.CounterVec("kalis_bus_watermark_total", "topic",
			"High-watermark crossings on lossless (Block-policy) topics."),
	})
	tel.GaugeFunc("kalis_bus_queue_depth",
		"Events queued across async subscribers (0 in sync mode).",
		func() float64 { return float64(bus.QueueDepth()) })
	sharded := len(managers) > 1
	mmet := module.ManagerMetrics{
		Packets: tel.Counter("kalis_packets_total",
			"Packets dispatched to the module pipeline."),
		PacketLatency: tel.HistogramVec("kalis_module_packet_seconds", "module",
			"Per-module packet-handling latency.", nil),
		Panics: tel.CounterVec("kalis_module_panics_total", "module",
			"Module panics recovered by the supervisor, by module."),
		BreakerTrips: tel.Counter("kalis_breaker_trips_total",
			"Latency circuit-breaker trips (modules shed under queue pressure)."),
	}
	if sharded {
		tel.GaugeFunc("kalis_modules_active",
			"Currently active modules (knowledge-driven adaptation).",
			func() float64 { return float64(len(managers[0].Active())) })
		tel.GaugeFunc("kalis_module_quarantined",
			"Modules currently withheld from dispatch (quarantined or shed), summed over shards.",
			func() float64 {
				n := 0
				for _, m := range managers {
					n += len(m.Quarantined())
				}
				return float64(n)
			})
	} else {
		mmet.ActiveModules = tel.Gauge("kalis_modules_active",
			"Currently active modules (knowledge-driven adaptation).")
		mmet.Quarantined = tel.Gauge("kalis_module_quarantined",
			"Modules currently withheld from dispatch (quarantined or shed).")
	}
	smet := datastore.StoreMetrics{
		Appended: tel.Counter("kalis_store_appended_total",
			"Packets ever appended to the Data Store."),
	}
	if sharded {
		tel.GaugeFunc("kalis_store_window_occupancy",
			"Packets currently held in the Data Store sliding windows (all shards).",
			func() float64 {
				n := 0
				for _, s := range stores {
					n += s.Len()
				}
				return float64(n)
			})
	} else {
		smet.Occupancy = tel.Gauge("kalis_store_window_occupancy",
			"Packets currently held in the Data Store sliding window.")
	}
	tel.GaugeFunc("kalis_store_window_capacity",
		"Data Store sliding-window capacity in packets (all shards).",
		func() float64 {
			n := 0
			for _, s := range stores {
				n += s.Capacity()
			}
			return float64(n)
		})
	fmet := flow.Metrics{
		Expirations: tel.Counter("kalis_flow_expirations_total",
			"Flows exported after idle or active timeout (incl. shutdown flush)."),
		Evictions: tel.Counter("kalis_flow_evictions_total",
			"Flows exported early because the table hit its capacity bound."),
	}
	if sharded {
		tel.GaugeFunc("kalis_flow_active",
			"Flows currently tracked across all shard flow tables.",
			func() float64 {
				n := 0
				for _, t := range tables {
					n += t.Len()
				}
				return float64(n)
			})
	} else {
		fmet.Active = tel.Gauge("kalis_flow_active",
			"Flows currently tracked in the flow table.")
	}
	flowLat := tel.Histogram("kalis_flow_update_seconds",
		"Per-packet flow-table and feature update latency.", nil)
	for i := range managers {
		managers[i].SetMetrics(mmet)
		stores[i].SetMetrics(smet)
		tables[i].SetMetrics(fmet)
		managers[i].SetFlows(tables[i], flowLat)
	}
	telemetry.RegisterRuntimeMetrics(tel)
}

// ID returns the node identifier.
func (k *Kalis) ID() string { return k.id }

// Telemetry returns the node's runtime-metrics registry, always
// populated: instrumentation is cheap enough to stay on (see
// BenchmarkTelemetryHotPath in internal/telemetry).
func (k *Kalis) Telemetry() *telemetry.Registry { return k.tel }

// KB returns the node's Knowledge Base.
func (k *Kalis) KB() *knowledge.Base { return k.kb }

// Store returns the node's Data Store (shard 0's when sharded: the
// primary window, which also carries the disk log and durable state).
func (k *Kalis) Store() *datastore.Store { return k.stores[0] }

// Manager returns the node's Module Manager (shard 0's when sharded).
func (k *Kalis) Manager() *module.Manager { return k.managers[0] }

// Registry returns the node's module registry (for installing custom
// modules).
func (k *Kalis) Registry() *module.Registry { return k.registry }

// Install instantiates a registered module by name and installs it —
// one instance per shard, since modules hold per-source state and each
// shard dispatches independently.
func (k *Kalis) Install(name string, params map[string]string) error {
	for _, m := range k.managers {
		mod, err := k.registry.New(name, params)
		if err != nil {
			return err
		}
		m.Install(mod, params)
	}
	return nil
}

// HandleCapture feeds one captured packet into the node — the entry
// point wired to sniffers and trace replay. Sharded nodes enqueue to
// the source's shard ring (the packet bus topic is bypassed);
// unsharded nodes publish synchronously as always.
func (k *Kalis) HandleCapture(c *packet.Captured) {
	if k.pipe != nil {
		k.pipe.Enqueue(c)
		return
	}
	k.bus.Publish(event.TopicPacket, c)
}

// DrainIngest blocks until every packet accepted by the shard rings so
// far has been dispatched. A no-op on unsharded nodes (dispatch is
// synchronous). Call it before reading alerts or counters after a
// replay, or rely on Close, which drains losslessly.
func (k *Kalis) DrainIngest() {
	if k.pipe != nil {
		k.pipe.Drain()
	}
}

// IngestStats returns the sharded pipeline's packet accounting (the
// zero Stats on unsharded nodes).
func (k *Kalis) IngestStats() ingest.Stats {
	if k.pipe != nil {
		return k.pipe.Stats()
	}
	return ingest.Stats{}
}

// Shards returns the node's ingestion shard count.
func (k *Kalis) Shards() int { return len(k.managers) }

// OnAlert registers a detection-event consumer.
func (k *Kalis) OnAlert(fn func(module.Alert)) {
	k.bus.Subscribe(event.TopicDetection, func(payload interface{}) {
		if a, ok := payload.(module.Alert); ok {
			fn(a)
		}
	})
}

// OnKnowledge registers a knowledge-event consumer.
func (k *Kalis) OnKnowledge(fn func(knowledge.Knowgget)) {
	k.bus.Subscribe(event.TopicKnowledge, func(payload interface{}) {
		if kg, ok := payload.(knowledge.Knowgget); ok {
			fn(kg)
		}
	})
}

// Alerts returns every alert collected so far; on sharded nodes the
// per-shard collections are merged in capture-time order.
func (k *Kalis) Alerts() []module.Alert {
	if len(k.managers) == 1 {
		return k.managers[0].Alerts()
	}
	var out []module.Alert
	for _, m := range k.managers {
		out = append(out, m.Alerts()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// ActiveModules returns the names of currently active modules.
// Activation is a Knowledge Base decision and the KB is shared, so
// every shard activates identically; shard 0 answers for all.
func (k *Kalis) ActiveModules() []string { return k.managers[0].Active() }

// QuarantinedModules returns the modules the supervisor currently
// withholds from dispatch (panicked or shed by the circuit breaker) on
// any shard — supervision is per shard instance.
func (k *Kalis) QuarantinedModules() []string {
	if len(k.managers) == 1 {
		return k.managers[0].Quarantined()
	}
	seen := make(map[string]bool)
	var out []string
	for _, m := range k.managers {
		for _, name := range m.Quarantined() {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// ModuleHealth reports every installed module's activation and
// supervision state ("inactive", "healthy", "quarantined", "probing",
// "shed"). On sharded nodes each module reports its most-degraded
// state across shards.
func (k *Kalis) ModuleHealth() map[string]string {
	if len(k.managers) == 1 {
		return k.managers[0].Health()
	}
	rank := map[string]int{"inactive": 0, "healthy": 1, "probing": 2, "shed": 3, "quarantined": 4}
	out := make(map[string]string)
	for _, m := range k.managers {
		for name, state := range m.Health() {
			if prev, ok := out[name]; !ok || rank[state] > rank[prev] {
				out[name] = state
			}
		}
	}
	return out
}

// Bus returns the node's event bus (for policy tuning and tests).
func (k *Kalis) Bus() *event.Bus { return k.bus }

// Flows returns the node's flow table (shard 0's when sharded; each
// shard tracks the flows of the sources that hash to it).
func (k *Kalis) Flows() *flow.Table { return k.tables[0] }

// OnFlowRecord registers a consumer for exported flow records (flows
// that expired, were evicted, or were flushed at shutdown).
func (k *Kalis) OnFlowRecord(fn func(flow.Record)) {
	k.bus.Subscribe(event.TopicFlowRecords, func(payload interface{}) {
		if r, ok := payload.(flow.Record); ok {
			fn(r)
		}
	})
}

// SetLog enables traffic logging to w in the Kalis trace format. On
// sharded nodes only shard 0's traffic is logged (the trace format is
// a serial stream; interleaving concurrent shards would scramble it).
func (k *Kalis) SetLog(w io.Writer) { k.stores[0].SetLog(w) }

// EnableCollective attaches collective knowledge management over the
// given transport with a pre-shared passphrase.
func (k *Kalis) EnableCollective(t collective.Transport, passphrase string) error {
	n, err := collective.NewNode(k.kb, t, passphrase)
	if err != nil {
		return err
	}
	n.SetMetrics(collective.Metrics{
		SyncSent: k.tel.Counter("kalis_collective_sync_sent_total",
			"Knowgget updates pushed to peer Kalis nodes."),
		SyncReceived: k.tel.Counter("kalis_collective_sync_received_total",
			"Creator-verified knowgget updates accepted from peers."),
		SyncRejected: k.tel.Counter("kalis_collective_sync_rejected_total",
			"Knowgget updates refused (creator mismatch)."),
		Peers: k.tel.Gauge("kalis_collective_peers",
			"Discovered peer Kalis nodes."),
		Evictions: k.tel.Counter("kalis_collective_peer_evictions_total",
			"Peers evicted for silence (TTL) or to respect the table bound."),
		SendRetries: k.tel.Counter("kalis_collective_send_retries_total",
			"Retransmissions after transient peer-send failures."),
		Malformed: k.tel.Counter("kalis_collective_malformed_total",
			"Datagrams discarded as malformed (failed decrypt or parse)."),
		DigestsSent: k.tel.Counter("kalis_collective_digests_sent_total",
			"Anti-entropy gossip digests sent to fan-out peers."),
		DigestsReceived: k.tel.Counter("kalis_collective_digests_received_total",
			"Anti-entropy gossip digests received from peers."),
		DeltasSent: k.tel.Counter("kalis_collective_deltas_sent_total",
			"Delta messages sent (piggybacked flushes, pulls, bootstraps)."),
		DeltasReceived: k.tel.Counter("kalis_collective_deltas_received_total",
			"Delta sections applied from peers."),
		BytesSent: k.tel.Counter("kalis_collective_bytes_sent_total",
			"Sealed collective wire bytes sent."),
		BytesReceived: k.tel.Counter("kalis_collective_bytes_received_total",
			"Sealed collective wire bytes received."),
	})
	k.coll = n
	return nil
}

// Collective returns the collective-knowledge manager, or nil.
func (k *Kalis) Collective() *collective.Node { return k.coll }

// SuggestConfig distills the node's current knowledge into a fixed
// configuration file — the paper's envisioned compile-time deployment
// for very small devices (§VIII): "selecting a specific module
// configuration — based on the knowledge collected by Kalis in a
// network — and ... deploy that configuration at compile-time". The
// output lists the detection modules the current knowledge requires
// (with their installed parameters) and pins the discovered network
// features as a-priori knowggets, so a constrained node skips
// discovery entirely. The result parses back with kconfig.Parse.
func (k *Kalis) SuggestConfig() string {
	cfg := &kconfig.Config{}
	for _, name := range k.managers[0].Active() {
		if kind, ok := k.managers[0].ModuleKind(name); !ok || kind != module.KindDetection {
			continue
		}
		def := kconfig.ModuleDef{Name: name}
		if params := k.managers[0].ParamsOf(name); len(params) > 0 {
			def.Params = params
		}
		cfg.Modules = append(cfg.Modules, def)
	}
	for _, label := range []string{
		knowledge.LabelMultihop, knowledge.LabelMobility, knowledge.LabelEncrypted,
	} {
		if v, ok := k.kb.Value(label); ok {
			cfg.Knowggets = append(cfg.Knowggets, kconfig.KnowggetDef{Label: label, Value: v})
		}
	}
	for _, kg := range k.kb.QueryPrefix(knowledge.EscapeComponent(k.id) + "$" + knowledge.LabelMediums + ".") {
		cfg.Knowggets = append(cfg.Knowggets, kconfig.KnowggetDef{Label: kg.Label, Value: kg.Value})
	}
	return kconfig.Generate(cfg)
}

// Persistence returns the durable-state manager, or nil when the node
// runs without a state directory.
func (k *Kalis) Persistence() *persist.Manager { return k.persist }

// Close shuts the node down: the shard rings drain losslessly (every
// accepted packet is dispatched), the flow tables flush their
// remaining flows as records, the event bus drains, the traffic log
// flushes and closes, durable state takes its final snapshot, and the
// collective layer closes.
func (k *Kalis) Close() error {
	if k.pipe != nil {
		k.pipe.Stop()
	}
	for _, t := range k.tables {
		t.Flush()
	}
	k.bus.Close()
	err := k.stores[0].CloseLog()
	if k.persist != nil {
		if perr := k.persist.Stop(); err == nil {
			err = perr
		}
	}
	if k.coll != nil {
		if cerr := k.coll.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
