// Package core assembles a complete Kalis node from its components
// (Fig. 4): the Communication System feeds captured packets through the
// event bus to the Data Store and the Module Manager; sensing modules
// distill knowggets into the Knowledge Base; the Knowledge Base drives
// dynamic activation of detection modules; alerts flow to subscribers
// (dashboards, countermeasures, the smart firewall) and collective
// knowledge synchronizes with peer Kalis nodes.
package core

import (
	"fmt"
	"io"
	"time"

	"kalis/internal/core/collective"
	"kalis/internal/core/datastore"
	"kalis/internal/core/detection"
	"kalis/internal/core/event"
	"kalis/internal/core/kconfig"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/core/sensing"
	"kalis/internal/flow"
	"kalis/internal/packet"
	"kalis/internal/persist"
	"kalis/internal/telemetry"
)

// Config configures a Kalis node.
type Config struct {
	// NodeID identifies this Kalis node (the knowgget creator field).
	NodeID string
	// KnowledgeDriven enables adaptive module activation; disabling it
	// yields the paper's traditional-IDS baseline (all installed
	// modules always active, no knowledge use).
	KnowledgeDriven bool
	// WindowSize is the Data Store sliding-window capacity (packets);
	// 0 selects the default.
	WindowSize int
	// Async selects asynchronous event delivery (the paper's
	// "all components run independently" mode); synchronous delivery
	// is deterministic and is the default for experiments.
	Async bool
	// ConfigText is an optional configuration file in the Fig. 6
	// grammar: module activations and a-priori knowggets.
	ConfigText string
	// InstallAll installs every registered module (the usual Kalis
	// deployment: the whole module library is available and the
	// Knowledge Base decides what runs). Modules listed in ConfigText
	// are installed with their parameters either way.
	InstallAll bool
	// Flow tunes the flow table (zero fields select the defaults; see
	// flow.Config). The flow pipeline is always on: the table is
	// updated once per packet before module fan-out and expired flows
	// are exported on the flow.records bus topic.
	Flow flow.Config
	// StateDir, when non-empty, enables durable state: the Knowledge
	// Base and Data Store window are recovered from this directory at
	// startup (warm restart) and persisted across the node's lifetime
	// via a write-ahead journal and periodic snapshots. Empty disables
	// persistence entirely.
	StateDir string
	// PersistInterval is the snapshot-compaction interval on the
	// capture clock; 0 selects persist.DefaultInterval. Ignored without
	// StateDir.
	PersistInterval time.Duration
}

// Kalis is one IDS node.
type Kalis struct {
	id       string
	kb       *knowledge.Base
	store    *datastore.Store
	registry *module.Registry
	manager  *module.Manager
	bus      *event.Bus
	flows    *flow.Table
	coll     *collective.Node
	tel      *telemetry.Registry
	persist  *persist.Manager
}

// New builds a Kalis node.
func New(cfg Config) (*Kalis, error) {
	if cfg.NodeID == "" {
		cfg.NodeID = "K1"
	}
	kb := knowledge.NewBase(cfg.NodeID)
	store := datastore.New(cfg.WindowSize)
	registry := module.NewRegistry()
	sensing.Register(registry)
	detection.Register(registry)
	manager := module.NewManager(kb, store, cfg.KnowledgeDriven)
	flows := flow.NewTable(cfg.Flow)
	bus := event.NewBus(cfg.Async)
	// Per-topic overflow policies (async mode): the packet topic keeps
	// the default drop-newest (a passive IDS never blocks capture),
	// knowledge events coalesce per knowgget key (only the latest value
	// of a knowgget matters), and detection events are lossless — a
	// dropped alert is a missed detection.
	bus.SetTopicPolicy(event.TopicKnowledge, event.TopicPolicy{
		Policy: event.CoalesceByKey,
		Key: func(payload interface{}) string {
			if kg, ok := payload.(knowledge.Knowgget); ok {
				return kg.Key()
			}
			return ""
		},
	})
	bus.SetTopicPolicy(event.TopicDetection, event.TopicPolicy{Policy: event.Block})
	// Flow records coalesce per flow key: if a consumer lags, only the
	// latest record for a given flow is kept (a re-expired flow
	// supersedes its earlier record).
	bus.SetTopicPolicy(event.TopicFlowRecords, event.TopicPolicy{
		Policy: event.CoalesceByKey,
		Key: func(payload interface{}) string {
			if r, ok := payload.(flow.Record); ok {
				return r.CoalesceKey()
			}
			return ""
		},
	})
	//lint:ignore hotalloc flow records box once per export (expiry/eviction), amortized across the flow's packets
	flows.OnExport(func(r flow.Record) { bus.Publish(event.TopicFlowRecords, r) })
	tel := telemetry.NewRegistry()
	wireTelemetry(tel, bus, manager, store, flows)
	// The supervisor's circuit breaker reads queue pressure from the
	// bus; under saturation it sheds persistently-over-budget modules.
	manager.SetPressure(bus.QueueDepth)

	k := &Kalis{
		id:       cfg.NodeID,
		kb:       kb,
		store:    store,
		registry: registry,
		manager:  manager,
		bus:      bus,
		flows:    flows,
		tel:      tel,
	}
	// Durable state recovers BEFORE modules are installed and before
	// any traffic flows: knowledge-driven activation at install time
	// must see the recovered Knowledge Base, and recovery bulk-loads
	// without firing knowledge events.
	if cfg.StateDir != "" {
		pm, err := persist.Open(persist.Config{
			Dir:      cfg.StateDir,
			Interval: cfg.PersistInterval,
			Metrics: persist.Metrics{
				Snapshots: tel.Counter("kalis_persist_snapshot_total",
					"Durable snapshots written (periodic compaction and shutdown flush)."),
				JournalBytes: tel.Gauge("kalis_persist_journal_bytes",
					"Current size of the KB write-ahead journal in bytes."),
				Recoveries: tel.CounterVec("kalis_persist_recoveries_total", "outcome",
					"State recoveries at startup, by outcome (warm, truncated, cold)."),
			},
		}, kb, store)
		if err != nil {
			return nil, fmt.Errorf("kalis: persist: %w", err)
		}
		k.persist = pm
	}
	bus.Subscribe(event.TopicPacket, func(payload interface{}) {
		if c, ok := payload.(*packet.Captured); ok {
			manager.HandlePacket(c)
			if k.persist != nil {
				// Compaction runs on the capture clock, like every
				// other time-driven behavior in the pipeline.
				k.persist.Tick(c.Time)
			}
		}
	})
	alerts := tel.CounterVec("kalis_alerts_total", "attack",
		"Detection alerts raised, by canonical attack name.")
	manager.OnAlert(func(a module.Alert) {
		//lint:ignore hotpath alerts are rare and cooldown-gated; one label lookup per alert is off the per-packet budget
		alerts.With(a.Attack).Inc()
		//lint:ignore hotalloc alert boxing happens once per raised alert, cooldown-gated far below packet rate
		bus.Publish(event.TopicDetection, a)
	})
	//lint:ignore hotalloc knowgget boxing happens once per knowledge change, change-gated far below packet rate
	kb.SubscribeAll(func(kg knowledge.Knowgget) { bus.Publish(event.TopicKnowledge, kg) })

	installed := make(map[string]bool)
	if cfg.ConfigText != "" {
		parsed, err := kconfig.Parse(cfg.ConfigText)
		if err != nil {
			return nil, fmt.Errorf("kalis: config: %w", err)
		}
		for _, kg := range parsed.Knowggets {
			kb.PutStatic(kg.Label, kg.Entity, kg.Value)
		}
		for _, def := range parsed.Modules {
			mod, err := registry.New(def.Name, def.Params)
			if err != nil {
				return nil, fmt.Errorf("kalis: config: %w", err)
			}
			manager.Install(mod, def.Params)
			installed[def.Name] = true
		}
	}
	if cfg.InstallAll {
		for _, name := range registry.Names() {
			if installed[name] {
				continue
			}
			mod, err := registry.New(name, nil)
			if err != nil {
				return nil, fmt.Errorf("kalis: install %s: %w", name, err)
			}
			manager.Install(mod, nil)
		}
	}
	return k, nil
}

// wireTelemetry registers the node's runtime metrics and installs the
// hooks into every instrumented component. Metric names are documented
// in the "Runtime telemetry" section of README.md.
func wireTelemetry(tel *telemetry.Registry, bus *event.Bus, manager *module.Manager, store *datastore.Store, flows *flow.Table) {
	bus.SetMetrics(event.Metrics{
		Publishes: tel.CounterVec("kalis_bus_publishes_total", "topic",
			"Events published on the bus, by topic."),
		Drops: tel.CounterVec("kalis_bus_drops_total", "topic",
			"Events lost to full async subscriber queues, by topic."),
		Coalesced: tel.CounterVec("kalis_bus_coalesced_total", "topic",
			"Events absorbed by per-key coalescing (replaced, not lost), by topic."),
		Watermarks: tel.CounterVec("kalis_bus_watermark_total", "topic",
			"High-watermark crossings on lossless (Block-policy) topics."),
	})
	tel.GaugeFunc("kalis_bus_queue_depth",
		"Events queued across async subscribers (0 in sync mode).",
		func() float64 { return float64(bus.QueueDepth()) })
	manager.SetMetrics(module.ManagerMetrics{
		Packets: tel.Counter("kalis_packets_total",
			"Packets dispatched to the module pipeline."),
		ActiveModules: tel.Gauge("kalis_modules_active",
			"Currently active modules (knowledge-driven adaptation)."),
		PacketLatency: tel.HistogramVec("kalis_module_packet_seconds", "module",
			"Per-module packet-handling latency.", nil),
		Panics: tel.CounterVec("kalis_module_panics_total", "module",
			"Module panics recovered by the supervisor, by module."),
		Quarantined: tel.Gauge("kalis_module_quarantined",
			"Modules currently withheld from dispatch (quarantined or shed)."),
		BreakerTrips: tel.Counter("kalis_breaker_trips_total",
			"Latency circuit-breaker trips (modules shed under queue pressure)."),
	})
	store.SetMetrics(datastore.StoreMetrics{
		Occupancy: tel.Gauge("kalis_store_window_occupancy",
			"Packets currently held in the Data Store sliding window."),
		Appended: tel.Counter("kalis_store_appended_total",
			"Packets ever appended to the Data Store."),
	})
	tel.GaugeFunc("kalis_store_window_capacity",
		"Data Store sliding-window capacity in packets.",
		func() float64 { return float64(store.Capacity()) })
	flows.SetMetrics(flow.Metrics{
		Active: tel.Gauge("kalis_flow_active",
			"Flows currently tracked in the flow table."),
		Expirations: tel.Counter("kalis_flow_expirations_total",
			"Flows exported after idle or active timeout (incl. shutdown flush)."),
		Evictions: tel.Counter("kalis_flow_evictions_total",
			"Flows exported early because the table hit its capacity bound."),
	})
	manager.SetFlows(flows, tel.Histogram("kalis_flow_update_seconds",
		"Per-packet flow-table and feature update latency.", nil))
	telemetry.RegisterRuntimeMetrics(tel)
}

// ID returns the node identifier.
func (k *Kalis) ID() string { return k.id }

// Telemetry returns the node's runtime-metrics registry, always
// populated: instrumentation is cheap enough to stay on (see
// BenchmarkTelemetryHotPath in internal/telemetry).
func (k *Kalis) Telemetry() *telemetry.Registry { return k.tel }

// KB returns the node's Knowledge Base.
func (k *Kalis) KB() *knowledge.Base { return k.kb }

// Store returns the node's Data Store.
func (k *Kalis) Store() *datastore.Store { return k.store }

// Manager returns the node's Module Manager.
func (k *Kalis) Manager() *module.Manager { return k.manager }

// Registry returns the node's module registry (for installing custom
// modules).
func (k *Kalis) Registry() *module.Registry { return k.registry }

// Install instantiates a registered module by name and installs it.
func (k *Kalis) Install(name string, params map[string]string) error {
	mod, err := k.registry.New(name, params)
	if err != nil {
		return err
	}
	k.manager.Install(mod, params)
	return nil
}

// HandleCapture feeds one captured packet into the node — the entry
// point wired to sniffers and trace replay.
func (k *Kalis) HandleCapture(c *packet.Captured) {
	k.bus.Publish(event.TopicPacket, c)
}

// OnAlert registers a detection-event consumer.
func (k *Kalis) OnAlert(fn func(module.Alert)) {
	k.bus.Subscribe(event.TopicDetection, func(payload interface{}) {
		if a, ok := payload.(module.Alert); ok {
			fn(a)
		}
	})
}

// OnKnowledge registers a knowledge-event consumer.
func (k *Kalis) OnKnowledge(fn func(knowledge.Knowgget)) {
	k.bus.Subscribe(event.TopicKnowledge, func(payload interface{}) {
		if kg, ok := payload.(knowledge.Knowgget); ok {
			fn(kg)
		}
	})
}

// Alerts returns every alert collected so far.
func (k *Kalis) Alerts() []module.Alert { return k.manager.Alerts() }

// ActiveModules returns the names of currently active modules.
func (k *Kalis) ActiveModules() []string { return k.manager.Active() }

// QuarantinedModules returns the modules the supervisor currently
// withholds from dispatch (panicked or shed by the circuit breaker).
func (k *Kalis) QuarantinedModules() []string { return k.manager.Quarantined() }

// ModuleHealth reports every installed module's activation and
// supervision state ("inactive", "healthy", "quarantined", "probing",
// "shed").
func (k *Kalis) ModuleHealth() map[string]string { return k.manager.Health() }

// Bus returns the node's event bus (for policy tuning and tests).
func (k *Kalis) Bus() *event.Bus { return k.bus }

// Flows returns the node's flow table.
func (k *Kalis) Flows() *flow.Table { return k.flows }

// OnFlowRecord registers a consumer for exported flow records (flows
// that expired, were evicted, or were flushed at shutdown).
func (k *Kalis) OnFlowRecord(fn func(flow.Record)) {
	k.bus.Subscribe(event.TopicFlowRecords, func(payload interface{}) {
		if r, ok := payload.(flow.Record); ok {
			fn(r)
		}
	})
}

// SetLog enables traffic logging to w in the Kalis trace format.
func (k *Kalis) SetLog(w io.Writer) { k.store.SetLog(w) }

// EnableCollective attaches collective knowledge management over the
// given transport with a pre-shared passphrase.
func (k *Kalis) EnableCollective(t collective.Transport, passphrase string) error {
	n, err := collective.NewNode(k.kb, t, passphrase)
	if err != nil {
		return err
	}
	n.SetMetrics(collective.Metrics{
		SyncSent: k.tel.Counter("kalis_collective_sync_sent_total",
			"Knowgget updates pushed to peer Kalis nodes."),
		SyncReceived: k.tel.Counter("kalis_collective_sync_received_total",
			"Creator-verified knowgget updates accepted from peers."),
		SyncRejected: k.tel.Counter("kalis_collective_sync_rejected_total",
			"Knowgget updates refused (creator mismatch)."),
		Peers: k.tel.Gauge("kalis_collective_peers",
			"Discovered peer Kalis nodes."),
		Evictions: k.tel.Counter("kalis_collective_peer_evictions_total",
			"Peers evicted for silence (TTL) or to respect the table bound."),
		SendRetries: k.tel.Counter("kalis_collective_send_retries_total",
			"Retransmissions after transient peer-send failures."),
		Malformed: k.tel.Counter("kalis_collective_malformed_total",
			"Datagrams discarded as malformed (failed decrypt or parse)."),
	})
	k.coll = n
	return nil
}

// Collective returns the collective-knowledge manager, or nil.
func (k *Kalis) Collective() *collective.Node { return k.coll }

// SuggestConfig distills the node's current knowledge into a fixed
// configuration file — the paper's envisioned compile-time deployment
// for very small devices (§VIII): "selecting a specific module
// configuration — based on the knowledge collected by Kalis in a
// network — and ... deploy that configuration at compile-time". The
// output lists the detection modules the current knowledge requires
// (with their installed parameters) and pins the discovered network
// features as a-priori knowggets, so a constrained node skips
// discovery entirely. The result parses back with kconfig.Parse.
func (k *Kalis) SuggestConfig() string {
	cfg := &kconfig.Config{}
	for _, name := range k.manager.Active() {
		if kind, ok := k.manager.ModuleKind(name); !ok || kind != module.KindDetection {
			continue
		}
		def := kconfig.ModuleDef{Name: name}
		if params := k.manager.ParamsOf(name); len(params) > 0 {
			def.Params = params
		}
		cfg.Modules = append(cfg.Modules, def)
	}
	for _, label := range []string{
		knowledge.LabelMultihop, knowledge.LabelMobility, knowledge.LabelEncrypted,
	} {
		if v, ok := k.kb.Value(label); ok {
			cfg.Knowggets = append(cfg.Knowggets, kconfig.KnowggetDef{Label: label, Value: v})
		}
	}
	for _, kg := range k.kb.QueryPrefix(knowledge.EscapeComponent(k.id) + "$" + knowledge.LabelMediums + ".") {
		cfg.Knowggets = append(cfg.Knowggets, kconfig.KnowggetDef{Label: kg.Label, Value: kg.Value})
	}
	return kconfig.Generate(cfg)
}

// Persistence returns the durable-state manager, or nil when the node
// runs without a state directory.
func (k *Kalis) Persistence() *persist.Manager { return k.persist }

// Close shuts the node down: the flow table flushes its remaining
// flows as records, the event bus drains, the traffic log flushes and
// closes, durable state takes its final snapshot, and the collective
// layer closes.
func (k *Kalis) Close() error {
	k.flows.Flush()
	k.bus.Close()
	err := k.store.CloseLog()
	if k.persist != nil {
		if perr := k.persist.Stop(); err == nil {
			err = perr
		}
	}
	if k.coll != nil {
		if cerr := k.coll.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
