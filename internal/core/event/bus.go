// Package event implements the event-driven backbone of Kalis (§V
// "Event-driven Architecture"): components publish packet, knowledge
// and detection events; subscribers are notified and process them
// independently.
//
// The bus has two delivery modes. Synchronous delivery invokes
// subscribers inline in subscription order — deterministic, used by
// tests and the evaluation harness. Asynchronous delivery hands each
// subscriber its own goroutine and queue, reproducing the paper's "all
// the components in Kalis run independently" architecture; Close
// drains and joins every worker (no fire-and-forget goroutines).
package event

import (
	"sync"
)

// Topic names used by Kalis.
const (
	TopicPacket    = "packet"
	TopicKnowledge = "knowledge"
	TopicDetection = "detection"
)

// Handler consumes a published event payload.
type Handler func(payload interface{})

// Bus routes events from publishers to subscribers by topic.
type Bus struct {
	mu    sync.RWMutex
	async bool
	subs  map[string][]*subscriber
	// wg tracks worker goroutines; pubWG tracks in-flight Publish
	// calls so Close never closes a queue a publisher is sending on.
	wg     sync.WaitGroup
	pubWG  sync.WaitGroup
	closed bool
}

type subscriber struct {
	fn Handler
	ch chan interface{}
}

// NewBus creates a bus. With async true each subscriber gets a
// dedicated worker goroutine and events are delivered concurrently;
// with async false delivery is inline and deterministic.
func NewBus(async bool) *Bus {
	return &Bus{async: async, subs: make(map[string][]*subscriber)}
}

// Subscribe registers a handler for a topic.
func (b *Bus) Subscribe(topic string, fn Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	sub := &subscriber{fn: fn}
	if b.async {
		sub.ch = make(chan interface{}, 1024)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			for p := range sub.ch {
				sub.fn(p)
			}
		}()
	}
	b.subs[topic] = append(b.subs[topic], sub)
}

// Publish delivers payload to every subscriber of topic. Handlers may
// publish further events re-entrantly (no lock is held during
// delivery).
func (b *Bus) Publish(topic string, payload interface{}) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return
	}
	// Registering in-flight status under the read lock means Close
	// (which takes the write lock first) always waits for this send.
	b.pubWG.Add(1)
	subs := b.subs[topic]
	b.mu.RUnlock()
	defer b.pubWG.Done()

	for _, s := range subs {
		if s.ch != nil {
			s.ch <- payload
		} else {
			s.fn(payload)
		}
	}
}

// Close stops the bus. In async mode it drains every subscriber queue
// and waits for the workers to exit; afterwards Publish is a no-op.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var chans []chan interface{}
	for _, subs := range b.subs {
		for _, s := range subs {
			if s.ch != nil {
				chans = append(chans, s.ch)
			}
		}
	}
	b.mu.Unlock()
	b.pubWG.Wait() // no publisher is mid-send past this point
	for _, ch := range chans {
		close(ch)
	}
	b.wg.Wait()
}
