// Package event implements the event-driven backbone of Kalis (§V
// "Event-driven Architecture"): components publish packet, knowledge
// and detection events; subscribers are notified and process them
// independently.
//
// The bus has two delivery modes. Synchronous delivery invokes
// subscribers inline in subscription order — deterministic, used by
// tests and the evaluation harness. Asynchronous delivery hands each
// subscriber its own goroutine and bounded queue (AsyncQueueCap),
// reproducing the paper's "all the components in Kalis run
// independently" architecture; Close drains and joins every worker (no
// fire-and-forget goroutines). When an async subscriber's queue is
// full the event is dropped and counted — a passive IDS must never
// exert backpressure on the capture path — and the drop is surfaced
// through Drops and the telemetry counters instead of silently
// blocking the publisher.
package event

import (
	"sync"
	"sync/atomic"

	"kalis/internal/telemetry"
)

// Topic names used by Kalis.
const (
	TopicPacket      = "packet"
	TopicKnowledge   = "knowledge"
	TopicDetection   = "detection"
	TopicFlowRecords = "flow.records"
)

// AsyncQueueCap is the per-subscriber queue capacity in asynchronous
// delivery mode. A subscriber lagging more than AsyncQueueCap events
// behind the publishers loses the overflow (counted in Drops and the
// kalis_bus_drops_total telemetry); size it against the expected burst
// length at capture rate.
const AsyncQueueCap = 1024

// Handler consumes a published event payload.
type Handler func(payload interface{})

// OverflowPolicy selects what an async topic does when a subscriber
// queue fills (§V's independence requirement meets bounded memory).
type OverflowPolicy int

const (
	// DropNewest drops the incoming event when the queue is full — the
	// default: a passive IDS must never exert backpressure on the
	// capture path. Right for the high-rate packet topic.
	DropNewest OverflowPolicy = iota
	// CoalesceByKey keeps at most one in-flight event per key: a newer
	// event replaces the queued one with the same key instead of
	// growing the queue. Right for the knowledge topic, where only the
	// latest value of a knowgget matters.
	CoalesceByKey
	// Block applies backpressure: the publisher waits for queue space,
	// so no event is ever lost. Right for the low-rate detection topic,
	// where a dropped alert is a missed detection. Crossing the
	// high-watermark is counted so saturation is visible before it
	// stalls the pipeline.
	Block
)

// TopicPolicy configures one topic's overflow behaviour. Install with
// SetTopicPolicy before Subscribe: the policy binds to subscribers as
// they register.
type TopicPolicy struct {
	Policy OverflowPolicy
	// Key extracts the coalescing key from a payload (CoalesceByKey
	// only). Payloads with an empty key are never coalesced.
	Key func(payload interface{}) string
	// HighWatermark is the queue depth at which a Block-policy topic
	// counts a watermark crossing (0 defaults to half the queue cap).
	HighWatermark int
	// OnWatermark, when set, is invoked (on the publisher goroutine)
	// each time a Block-policy send finds the queue at or above the
	// high watermark.
	OnWatermark func(depth int)
}

// Metrics are the bus' optional telemetry hooks; zero-value fields are
// skipped (all telemetry types are nil-safe).
type Metrics struct {
	// Publishes counts Publish calls per topic.
	Publishes *telemetry.CounterVec
	// Drops counts events lost per topic to full async queues.
	Drops *telemetry.CounterVec
	// Coalesced counts events absorbed per topic by CoalesceByKey
	// (replaced by a newer event with the same key — not lost).
	Coalesced *telemetry.CounterVec
	// Watermarks counts high-watermark crossings per Block-policy
	// topic.
	Watermarks *telemetry.CounterVec
}

// Bus routes events from publishers to subscribers by topic.
type Bus struct {
	mu    sync.RWMutex
	async bool
	subs  map[string][]*subscriber
	pols  map[string]TopicPolicy
	met   Metrics
	// tmet holds the per-topic telemetry child handles, resolved off
	// the hot path (at SetMetrics/Subscribe time): Publish must never
	// pay a Vec.With lookup per packet.
	tmet  map[string]*topicMetrics
	drops atomic.Uint64
	// wg tracks worker goroutines; pubWG tracks in-flight Publish
	// calls so Close never closes a queue a publisher is sending on.
	wg     sync.WaitGroup
	pubWG  sync.WaitGroup
	closed bool
}

// topicMetrics are one topic's pre-resolved counters (nil-safe, like
// all telemetry types).
type topicMetrics struct {
	pub  *telemetry.Counter
	drop *telemetry.Counter
	coal *telemetry.Counter
	wm   *telemetry.Counter
}

type subscriber struct {
	fn Handler
	ch chan interface{}
	// block selects the lossless plain send over select/default drop
	// (Block policy); hwm and onWM are its watermark config.
	block bool
	hwm   int
	onWM  func(int)
	// key extracts the coalescing key; cq is the coalescing queue that
	// replaces ch under the CoalesceByKey policy.
	key func(interface{}) string
	cq  *coalesceQueue
}

// NewBus creates a bus. With async true each subscriber gets a
// dedicated worker goroutine and events are delivered concurrently;
// with async false delivery is inline and deterministic.
func NewBus(async bool) *Bus {
	b := &Bus{
		async: async,
		subs:  make(map[string][]*subscriber),
		pols:  make(map[string]TopicPolicy),
		tmet:  make(map[string]*topicMetrics),
	}
	for _, topic := range []string{TopicPacket, TopicKnowledge, TopicDetection, TopicFlowRecords} {
		b.resolveTopicLocked(topic)
	}
	return b
}

// SetTopicPolicy installs an overflow policy for one topic. Call it
// before Subscribe: the policy binds to subscribers as they register
// (existing subscribers keep the policy they were created with). Only
// async buses queue, so policies are inert in synchronous mode (inline
// delivery is already lossless).
func (b *Bus) SetTopicPolicy(topic string, p TopicPolicy) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pols[topic] = p
}

// SetMetrics installs telemetry hooks. Call it before traffic flows.
func (b *Bus) SetMetrics(m Metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.met = m
	// Re-resolve every known topic against the new hooks.
	for topic := range b.tmet {
		delete(b.tmet, topic)
		b.resolveTopicLocked(topic)
	}
}

// resolveTopicLocked caches the topic's telemetry children; the write
// lock must be held. It runs at wiring time (NewBus, SetMetrics,
// Subscribe) and at most once per unknown topic from Publish.
func (b *Bus) resolveTopicLocked(topic string) *topicMetrics {
	if tm, ok := b.tmet[topic]; ok {
		return tm
	}
	//lint:ignore hotpath,hotalloc one-time per-topic child resolution, amortized across all publishes
	tm := &topicMetrics{pub: b.met.Publishes.With(topic), drop: b.met.Drops.With(topic)}
	//lint:ignore hotpath one-time per-topic child resolution, amortized across all publishes
	tm.coal, tm.wm = b.met.Coalesced.With(topic), b.met.Watermarks.With(topic)
	b.tmet[topic] = tm
	return tm
}

// Drops returns the number of events lost to full async queues.
func (b *Bus) Drops() uint64 { return b.drops.Load() }

// QueueDepth returns the total number of events queued across all
// async subscribers (always 0 in synchronous mode).
func (b *Bus) QueueDepth() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	depth := 0
	for _, subs := range b.subs {
		for _, s := range subs {
			if s.ch != nil {
				depth += len(s.ch)
			}
			if s.cq != nil {
				depth += s.cq.depth()
			}
		}
	}
	return depth
}

// Subscribe registers a handler for a topic.
func (b *Bus) Subscribe(topic string, fn Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.resolveTopicLocked(topic)
	sub := &subscriber{fn: fn}
	if b.async {
		pol := b.pols[topic]
		switch pol.Policy {
		case CoalesceByKey:
			sub.key = pol.Key
			sub.cq = newCoalesceQueue()
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				for {
					p, ok := sub.cq.next()
					if !ok {
						return
					}
					sub.fn(p)
				}
			}()
		case Block:
			sub.block = true
			sub.hwm = pol.HighWatermark
			if sub.hwm <= 0 {
				sub.hwm = AsyncQueueCap / 2
			}
			sub.onWM = pol.OnWatermark
			fallthrough
		default:
			sub.ch = make(chan interface{}, AsyncQueueCap)
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				for p := range sub.ch {
					sub.fn(p)
				}
			}()
		}
	}
	b.subs[topic] = append(b.subs[topic], sub)
}

// Publish delivers payload to every subscriber of topic. Handlers may
// publish further events re-entrantly (no lock is held during
// delivery). In async mode a subscriber whose queue is full loses the
// event (counted, never blocking the publisher).
func (b *Bus) Publish(topic string, payload interface{}) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return
	}
	// Registering in-flight status under the read lock means Close
	// (which takes the write lock first) always waits for this send.
	b.pubWG.Add(1)
	subs := b.subs[topic]
	tm := b.tmet[topic]
	b.mu.RUnlock()
	defer b.pubWG.Done()

	if tm == nil {
		// First publish on a topic nobody subscribed or pre-wired:
		// resolve once under the write lock, then never again.
		b.mu.Lock()
		tm = b.resolveTopicLocked(topic)
		b.mu.Unlock()
	}
	tm.pub.Inc()
	for _, s := range subs {
		switch {
		case s.cq != nil:
			key := ""
			if s.key != nil {
				key = s.key(payload)
			}
			if s.cq.put(key, payload) {
				tm.coal.Inc()
			}
		case s.ch == nil:
			s.fn(payload)
		case s.block:
			if len(s.ch) >= s.hwm {
				tm.wm.Inc()
				if s.onWM != nil {
					s.onWM(len(s.ch))
				}
			}
			// Lossless by construction: the worker drains this queue
			// until Close, so the send always completes.
			//lint:ignore hotpath Block policy: backpressure is the point (lossless detection topic)
			s.ch <- payload
		default:
			select {
			case s.ch <- payload:
			default:
				b.drops.Add(1)
				tm.drop.Inc()
			}
		}
	}
}

// Close stops the bus. In async mode it drains every subscriber queue
// and waits for the workers to exit; afterwards Publish is a no-op.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var chans []chan interface{}
	var queues []*coalesceQueue
	for _, subs := range b.subs {
		for _, s := range subs {
			if s.ch != nil {
				chans = append(chans, s.ch)
			}
			if s.cq != nil {
				queues = append(queues, s.cq)
			}
		}
	}
	b.mu.Unlock()
	b.pubWG.Wait() // no publisher is mid-send past this point
	for _, ch := range chans {
		close(ch)
	}
	for _, q := range queues {
		q.close()
	}
	b.wg.Wait()
}
