package event

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"kalis/internal/telemetry"
)

func TestSyncDeliveryOrder(t *testing.T) {
	b := NewBus(false)
	var got []int
	b.Subscribe(TopicPacket, func(p interface{}) { got = append(got, p.(int)*10) })
	b.Subscribe(TopicPacket, func(p interface{}) { got = append(got, p.(int)*10+1) })
	b.Publish(TopicPacket, 1)
	b.Publish(TopicPacket, 2)
	want := []int{10, 11, 20, 21}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTopicsAreIsolated(t *testing.T) {
	b := NewBus(false)
	count := 0
	b.Subscribe(TopicDetection, func(interface{}) { count++ })
	b.Publish(TopicPacket, 1)
	b.Publish(TopicKnowledge, 2)
	if count != 0 {
		t.Errorf("cross-topic delivery: %d", count)
	}
	b.Publish(TopicDetection, 3)
	if count != 1 {
		t.Errorf("count = %d", count)
	}
}

func TestAsyncDeliversAll(t *testing.T) {
	b := NewBus(true)
	var mu sync.Mutex
	sum := 0
	b.Subscribe(TopicPacket, func(p interface{}) {
		mu.Lock()
		sum += p.(int)
		mu.Unlock()
	})
	total := 0
	for i := 1; i <= 100; i++ {
		b.Publish(TopicPacket, i)
		total += i
	}
	b.Close() // drains and joins
	if sum != total {
		t.Errorf("sum = %d, want %d", sum, total)
	}
}

func TestPublishAfterCloseIsNoop(t *testing.T) {
	b := NewBus(false)
	count := 0
	b.Subscribe(TopicPacket, func(interface{}) { count++ })
	b.Close()
	b.Publish(TopicPacket, 1)
	if count != 0 {
		t.Errorf("delivered after close")
	}
}

func TestSubscribeAfterCloseIsNoop(t *testing.T) {
	b := NewBus(true)
	b.Close()
	b.Subscribe(TopicPacket, func(interface{}) { t.Error("handler invoked") })
	b.Publish(TopicPacket, 1)
}

func TestDoubleCloseSafe(t *testing.T) {
	b := NewBus(true)
	b.Subscribe(TopicPacket, func(interface{}) {})
	b.Close()
	b.Close()
}

func TestConcurrentPublishAndClose(t *testing.T) {
	// Closing while publishers race must neither panic (send on closed
	// channel) nor deadlock. Run with -race.
	for round := 0; round < 20; round++ {
		b := NewBus(true)
		b.Subscribe(TopicPacket, func(interface{}) {})
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					b.Publish(TopicPacket, i)
				}
			}()
		}
		b.Close()
		wg.Wait()
	}
}

func TestReentrantPublish(t *testing.T) {
	// A sync handler may publish further events (the core pipeline
	// does: packet handling raises detection events).
	b := NewBus(false)
	var got []string
	b.Subscribe(TopicPacket, func(interface{}) {
		got = append(got, "packet")
		b.Publish(TopicDetection, "alert")
	})
	b.Subscribe(TopicDetection, func(interface{}) { got = append(got, "detection") })
	b.Publish(TopicPacket, 1)
	if len(got) != 2 || got[0] != "packet" || got[1] != "detection" {
		t.Errorf("got %v", got)
	}
	b.Close()
}

func TestAsyncFullQueueDropsAndCounts(t *testing.T) {
	b := NewBus(true)
	reg := telemetry.NewRegistry()
	drops := reg.CounterVec("kalis_bus_drops_total", "topic", "Drops.")
	b.SetMetrics(Metrics{
		Publishes: reg.CounterVec("kalis_bus_publishes_total", "topic", "Publishes."),
		Drops:     drops,
	})

	block := make(chan struct{})
	var handled atomic.Uint64
	b.Subscribe(TopicPacket, func(interface{}) {
		<-block
		handled.Add(1)
	})

	// The worker dequeues at most one event (then blocks in the
	// handler), so publishing AsyncQueueCap+1+extra events overflows
	// the queue by at least extra.
	const extra = 10
	for i := 0; i < AsyncQueueCap+1+extra; i++ {
		b.Publish(TopicPacket, i) // must never block
	}
	if got := b.Drops(); got < extra {
		t.Errorf("Drops() = %d, want >= %d", got, extra)
	}
	if depth := b.QueueDepth(); depth != AsyncQueueCap {
		t.Errorf("QueueDepth() = %d, want %d", depth, AsyncQueueCap)
	}
	close(block)
	b.Close()
	if got, want := handled.Load()+b.Drops(), uint64(AsyncQueueCap+1+extra); got != want {
		t.Errorf("handled+dropped = %d, want %d", got, want)
	}
	if got := drops.With(TopicPacket).Value(); got != b.Drops() {
		t.Errorf("telemetry drops = %d, bus drops = %d", got, b.Drops())
	}
}

func TestPublishMetrics(t *testing.T) {
	b := NewBus(false)
	reg := telemetry.NewRegistry()
	pubs := reg.CounterVec("kalis_bus_publishes_total", "topic", "Publishes.")
	b.SetMetrics(Metrics{Publishes: pubs})
	b.Subscribe(TopicPacket, func(interface{}) {})
	b.Publish(TopicPacket, 1)
	b.Publish(TopicPacket, 2)
	b.Publish(TopicDetection, 3) // counted even with no subscribers
	if got := pubs.With(TopicPacket).Value(); got != 2 {
		t.Errorf("packet publishes = %d, want 2", got)
	}
	if got := pubs.With(TopicDetection).Value(); got != 1 {
		t.Errorf("detection publishes = %d, want 1", got)
	}
	b.Close()
}

// TestAsyncCloseAccounting races concurrent publishers against Close and
// proves the shutdown contract of the async drop-and-count path: every
// accepted Publish (counted by the publishes telemetry) is either
// delivered to the handler or counted in Drops — never silently lost —
// and no event reaches a handler after Close has returned.
func TestAsyncCloseAccounting(t *testing.T) {
	b := NewBus(true)
	reg := telemetry.NewRegistry()
	pubs := reg.CounterVec("kalis_bus_publishes_total", "topic", "Publishes.")
	b.SetMetrics(Metrics{
		Publishes: pubs,
		Drops:     reg.CounterVec("kalis_bus_drops_total", "topic", "Drops."),
	})

	var delivered atomic.Uint64
	var closed atomic.Bool
	stall := make(chan struct{})
	b.Subscribe(TopicPacket, func(interface{}) {
		<-stall // first delivery parks the worker, so the queue backs up
		if closed.Load() {
			t.Error("event delivered after Close returned")
		}
		delivered.Add(1)
	})

	const publishers = 4
	const perPublisher = 2 * AsyncQueueCap
	var issued atomic.Uint64
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(TopicPacket, i)
				issued.Add(1)
			}
		}()
	}
	// Let the stalled worker's queue overflow before racing Close
	// against the still-running publishers.
	for issued.Load() < 2*AsyncQueueCap {
		runtime.Gosched()
	}
	close(stall)
	b.Close()
	closed.Store(true)
	wg.Wait() // publishers finishing after Close must be silent no-ops

	accepted := pubs.With(TopicPacket).Value()
	if accepted == 0 {
		t.Fatal("no publish was accepted before Close")
	}
	if b.Drops() == 0 {
		t.Fatal("expected drops: the stalled worker saw more than AsyncQueueCap accepted publishes")
	}
	if got := delivered.Load() + b.Drops(); got != accepted {
		t.Fatalf("delivered %d + dropped %d = %d, want accepted %d (a publish was lost)",
			delivered.Load(), b.Drops(), got, accepted)
	}
}
