package event

import (
	"sync"
	"testing"
)

func TestSyncDeliveryOrder(t *testing.T) {
	b := NewBus(false)
	var got []int
	b.Subscribe(TopicPacket, func(p interface{}) { got = append(got, p.(int)*10) })
	b.Subscribe(TopicPacket, func(p interface{}) { got = append(got, p.(int)*10+1) })
	b.Publish(TopicPacket, 1)
	b.Publish(TopicPacket, 2)
	want := []int{10, 11, 20, 21}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTopicsAreIsolated(t *testing.T) {
	b := NewBus(false)
	count := 0
	b.Subscribe(TopicDetection, func(interface{}) { count++ })
	b.Publish(TopicPacket, 1)
	b.Publish(TopicKnowledge, 2)
	if count != 0 {
		t.Errorf("cross-topic delivery: %d", count)
	}
	b.Publish(TopicDetection, 3)
	if count != 1 {
		t.Errorf("count = %d", count)
	}
}

func TestAsyncDeliversAll(t *testing.T) {
	b := NewBus(true)
	var mu sync.Mutex
	sum := 0
	b.Subscribe(TopicPacket, func(p interface{}) {
		mu.Lock()
		sum += p.(int)
		mu.Unlock()
	})
	total := 0
	for i := 1; i <= 100; i++ {
		b.Publish(TopicPacket, i)
		total += i
	}
	b.Close() // drains and joins
	if sum != total {
		t.Errorf("sum = %d, want %d", sum, total)
	}
}

func TestPublishAfterCloseIsNoop(t *testing.T) {
	b := NewBus(false)
	count := 0
	b.Subscribe(TopicPacket, func(interface{}) { count++ })
	b.Close()
	b.Publish(TopicPacket, 1)
	if count != 0 {
		t.Errorf("delivered after close")
	}
}

func TestSubscribeAfterCloseIsNoop(t *testing.T) {
	b := NewBus(true)
	b.Close()
	b.Subscribe(TopicPacket, func(interface{}) { t.Error("handler invoked") })
	b.Publish(TopicPacket, 1)
}

func TestDoubleCloseSafe(t *testing.T) {
	b := NewBus(true)
	b.Subscribe(TopicPacket, func(interface{}) {})
	b.Close()
	b.Close()
}

func TestConcurrentPublishAndClose(t *testing.T) {
	// Closing while publishers race must neither panic (send on closed
	// channel) nor deadlock. Run with -race.
	for round := 0; round < 20; round++ {
		b := NewBus(true)
		b.Subscribe(TopicPacket, func(interface{}) {})
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					b.Publish(TopicPacket, i)
				}
			}()
		}
		b.Close()
		wg.Wait()
	}
}

func TestReentrantPublish(t *testing.T) {
	// A sync handler may publish further events (the core pipeline
	// does: packet handling raises detection events).
	b := NewBus(false)
	var got []string
	b.Subscribe(TopicPacket, func(interface{}) {
		got = append(got, "packet")
		b.Publish(TopicDetection, "alert")
	})
	b.Subscribe(TopicDetection, func(interface{}) { got = append(got, "detection") })
	b.Publish(TopicPacket, 1)
	if len(got) != 2 || got[0] != "packet" || got[1] != "detection" {
		t.Errorf("got %v", got)
	}
	b.Close()
}
