package event

import (
	"strconv"
	"sync"
)

// coalesceQueue is the CoalesceByKey subscriber queue: an unbounded
// FIFO over keys that holds at most one pending event per key. A newer
// event with a queued key replaces the pending payload in place — the
// subscriber always sees the latest value, keys keep their arrival
// order, and memory is bounded by the number of distinct keys (for the
// knowledge topic, the Knowledge Base size) rather than the event rate.
type coalesceQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[string]interface{}
	order   []string
	seq     uint64
	closed  bool
}

func newCoalesceQueue() *coalesceQueue {
	q := &coalesceQueue{pending: make(map[string]interface{})}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// put enqueues payload under key, replacing any pending payload with
// the same key; it reports whether the event coalesced into an
// existing one. Keyless payloads (key "") are never coalesced.
func (q *coalesceQueue) put(key string, payload interface{}) (coalesced bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	if key == "" {
		// Synthesize a unique key; "\x00" cannot collide with a real
		// knowgget key.
		q.seq++
		//lint:ignore hotalloc keyless async events are detection/flow topics (alert- and export-gated); per-packet delivery is synchronous and never enters the queue
		key = "\x00" + strconv.FormatUint(q.seq, 10)
	} else if _, ok := q.pending[key]; ok {
		q.pending[key] = payload
		return true
	}
	q.pending[key] = payload
	q.order = append(q.order, key)
	q.cond.Signal()
	return false
}

// next blocks until an event is available or the queue is closed and
// drained; ok=false tells the worker to exit.
func (q *coalesceQueue) next() (payload interface{}, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.order) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.order) == 0 {
		return nil, false
	}
	key := q.order[0]
	q.order = q.order[1:]
	payload = q.pending[key]
	delete(q.pending, key)
	return payload, true
}

// depth returns the number of pending events.
func (q *coalesceQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}

// close marks the queue closed; the worker drains what is pending and
// exits. Later puts are dropped.
func (q *coalesceQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
