package event

import (
	"fmt"
	"sync"
	"testing"

	"kalis/internal/telemetry"
)

// wirePolicyMetrics attaches a fresh registry and returns it for
// scrape assertions.
func wirePolicyMetrics(b *Bus) *telemetry.Registry {
	tel := telemetry.NewRegistry()
	b.SetMetrics(Metrics{
		Publishes:  tel.CounterVec("kalis_bus_publishes_total", "topic", "t"),
		Drops:      tel.CounterVec("kalis_bus_drops_total", "topic", "t"),
		Coalesced:  tel.CounterVec("kalis_bus_coalesced_total", "topic", "t"),
		Watermarks: tel.CounterVec("kalis_bus_watermark_total", "topic", "t"),
	})
	return tel
}

func vecChild(tel *telemetry.Registry, name, child string) string {
	v := tel.Snapshot()[name].Value
	m, ok := v.(map[string]interface{})
	if !ok {
		return fmt.Sprint(v)
	}
	return fmt.Sprint(m[child])
}

type keyed struct {
	key string
	val int
}

func TestCoalesceByKeyKeepsLatestPerKey(t *testing.T) {
	b := NewBus(true)
	tel := wirePolicyMetrics(b)
	b.SetTopicPolicy(TopicKnowledge, TopicPolicy{
		Policy: CoalesceByKey,
		Key:    func(p interface{}) string { return p.(keyed).key },
	})

	started := make(chan struct{})
	gate := make(chan struct{})
	var mu sync.Mutex
	var got []keyed
	b.Subscribe(TopicKnowledge, func(p interface{}) {
		e := p.(keyed)
		if e.key == "init" {
			close(started)
			<-gate
			return
		}
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})

	// Park the worker inside the init handler so the k-events below
	// provably queue behind it.
	b.Publish(TopicKnowledge, keyed{key: "init"})
	<-started
	for v := 1; v <= 4; v++ {
		b.Publish(TopicKnowledge, keyed{key: "k", val: v})
	}
	b.Publish(TopicKnowledge, keyed{key: "other", val: 9})
	close(gate)
	b.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != (keyed{key: "k", val: 4}) || got[1] != (keyed{key: "other", val: 9}) {
		t.Fatalf("delivered = %+v (want latest k then other, in key arrival order)", got)
	}
	if n := vecChild(tel, "kalis_bus_coalesced_total", TopicKnowledge); n != "3" {
		t.Errorf("coalesced = %s", n)
	}
	if b.Drops() != 0 {
		t.Errorf("drops = %d", b.Drops())
	}
}

func TestCoalesceKeylessEventsAllDelivered(t *testing.T) {
	b := NewBus(true)
	wirePolicyMetrics(b)
	b.SetTopicPolicy(TopicKnowledge, TopicPolicy{Policy: CoalesceByKey}) // no Key fn

	var mu sync.Mutex
	n := 0
	b.Subscribe(TopicKnowledge, func(interface{}) { mu.Lock(); n++; mu.Unlock() })
	for i := 0; i < 100; i++ {
		b.Publish(TopicKnowledge, i)
	}
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if n != 100 {
		t.Fatalf("delivered %d/100 keyless events", n)
	}
}

func TestBlockPolicyLosslessUnderOverflow(t *testing.T) {
	b := NewBus(true)
	tel := wirePolicyMetrics(b)
	b.SetTopicPolicy(TopicDetection, TopicPolicy{Policy: Block, HighWatermark: 8})

	gate := make(chan struct{})
	var mu sync.Mutex
	n := 0
	b.Subscribe(TopicDetection, func(interface{}) {
		<-gate
		mu.Lock()
		n++
		mu.Unlock()
	})

	// Overflow the queue by 16: the publisher must block, not drop.
	const total = AsyncQueueCap + 16
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			b.Publish(TopicDetection, i)
		}
	}()
	close(gate)
	<-done
	b.Close()

	mu.Lock()
	defer mu.Unlock()
	if n != total {
		t.Fatalf("delivered %d/%d detection events (lossless policy lost events)", n, total)
	}
	if b.Drops() != 0 {
		t.Errorf("drops = %d under Block policy", b.Drops())
	}
	if wm := vecChild(tel, "kalis_bus_watermark_total", TopicDetection); wm == "0" || wm == "<nil>" {
		t.Errorf("watermark crossings = %s (queue provably exceeded the watermark)", wm)
	}
}

func TestBlockWatermarkCallback(t *testing.T) {
	b := NewBus(true)
	wirePolicyMetrics(b)
	var mu sync.Mutex
	fired := 0
	b.SetTopicPolicy(TopicDetection, TopicPolicy{
		Policy:        Block,
		HighWatermark: 2,
		OnWatermark:   func(depth int) { mu.Lock(); fired++; mu.Unlock() },
	})
	gate := make(chan struct{})
	b.Subscribe(TopicDetection, func(interface{}) { <-gate })
	for i := 0; i < 5; i++ {
		b.Publish(TopicDetection, i) // queue grows past depth 2 while the worker is parked
	}
	close(gate)
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if fired == 0 {
		t.Fatal("OnWatermark never fired")
	}
}

func TestQueueDepthIncludesCoalesceQueue(t *testing.T) {
	b := NewBus(true)
	wirePolicyMetrics(b)
	b.SetTopicPolicy(TopicKnowledge, TopicPolicy{
		Policy: CoalesceByKey,
		Key:    func(p interface{}) string { return p.(keyed).key },
	})
	started := make(chan struct{})
	gate := make(chan struct{})
	b.Subscribe(TopicKnowledge, func(p interface{}) {
		if p.(keyed).key == "init" {
			close(started)
			<-gate
		}
	})
	b.Publish(TopicKnowledge, keyed{key: "init"})
	<-started
	b.Publish(TopicKnowledge, keyed{key: "a"})
	b.Publish(TopicKnowledge, keyed{key: "b"})
	if d := b.QueueDepth(); d != 2 {
		t.Errorf("QueueDepth = %d (want 2 pending coalesce keys)", d)
	}
	close(gate)
	b.Close()
}
