package kconfig

import (
	"testing"
	"testing/quick"
)

func TestGenerateRoundTrip(t *testing.T) {
	cfg := &Config{
		Modules: []ModuleDef{
			{Name: "SelectiveForwardingModule"},
			{Name: "TrafficStatsModule", Params: map[string]string{"interval": "5s", "detectionThresh": "2"}},
		},
		Knowggets: []KnowggetDef{
			{Label: "Multihop", Value: "true"},
			{Label: "SignalStrength", Entity: "SensorA", Value: "-67"},
			{Label: "Note", Value: "has spaces, punctuation!"},
		},
	}
	text := Generate(cfg)
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("generated config does not parse: %v\n%s", err, text)
	}
	if len(parsed.Modules) != 2 || parsed.Modules[0].Name != "SelectiveForwardingModule" {
		t.Errorf("modules: %+v", parsed.Modules)
	}
	if parsed.Modules[1].Params["interval"] != "5s" {
		t.Errorf("params: %+v", parsed.Modules[1].Params)
	}
	if len(parsed.Knowggets) != 3 {
		t.Fatalf("knowggets: %+v", parsed.Knowggets)
	}
	if parsed.Knowggets[1].Entity != "SensorA" || parsed.Knowggets[1].Value != "-67" {
		t.Errorf("entity knowgget: %+v", parsed.Knowggets[1])
	}
	if parsed.Knowggets[2].Value != "has spaces, punctuation!" {
		t.Errorf("quoted value: %q", parsed.Knowggets[2].Value)
	}
}

func TestGenerateEmpty(t *testing.T) {
	text := Generate(&Config{})
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("empty config: %v\n%s", err, text)
	}
	if len(parsed.Modules) != 0 || len(parsed.Knowggets) != 0 {
		t.Errorf("parsed: %+v", parsed)
	}
}

func TestQuickGenerateParseRoundTrip(t *testing.T) {
	clean := func(s string, max int) string {
		out := make([]byte, 0, len(s))
		for i := 0; i < len(s) && len(out) < max; i++ {
			c := s[i]
			// Identifiers: keep it to safe word bytes for names/labels.
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
				out = append(out, c)
			}
		}
		if len(out) == 0 {
			return "X"
		}
		return string(out)
	}
	prop := func(name, label, value string) bool {
		cfg := &Config{
			Modules:   []ModuleDef{{Name: clean(name, 20)}},
			Knowggets: []KnowggetDef{{Label: clean(label, 20), Value: value}},
		}
		parsed, err := Parse(Generate(cfg))
		if err != nil {
			return false
		}
		return len(parsed.Modules) == 1 && parsed.Modules[0].Name == cfg.Modules[0].Name &&
			len(parsed.Knowggets) == 1 && parsed.Knowggets[0].Value == value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
