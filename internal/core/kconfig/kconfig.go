// Package kconfig parses Kalis configuration files in the JSON-inspired
// grammar of the paper's Fig. 6:
//
//	⟨config⟩    ::= ⟨modules⟩ ⟨knowggets⟩
//	⟨modules⟩   ::= 'modules = {' ⟨module-list⟩ '}'
//	⟨module-def⟩::= ⟨module-name⟩ [ '(' ⟨param-list⟩ ')' ]
//	⟨knowggets⟩ ::= 'knowggets = {' ⟨knowgget-list⟩ '}'
//
// Module definitions activate modules by name at startup (with optional
// key=value parameters); knowgget entries provide the a-priori static
// knowledge of §IV-B3. Knowgget keys may carry an "@entity" suffix but
// never a creator — static knowggets are always attributed to the local
// Kalis node. Both sections are optional and may appear in either
// order; either may be empty.
package kconfig

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// ModuleDef is one module activation directive.
type ModuleDef struct {
	// Name is the module name to instantiate by registry lookup.
	Name string
	// Params are the optional module parameters.
	Params map[string]string
}

// KnowggetDef is one a-priori knowgget.
type KnowggetDef struct {
	Label  string
	Entity string
	Value  string
}

// Config is a parsed configuration file.
type Config struct {
	Modules   []ModuleDef
	Knowggets []KnowggetDef
}

// ParseError reports a syntax error with its position.
type ParseError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("kconfig: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a configuration file.
func Parse(src string) (*Config, error) {
	p := &parser{lex: newLexer(src)}
	return p.parseConfig()
}

// Generate renders a Config back into the Fig. 6 grammar. Generate and
// Parse round-trip, which enables the paper's envisioned compile-time
// deployment flow (§VIII): capture the module configuration a running
// Kalis node selected for a network, and ship it to constrained
// devices as their fixed configuration.
func Generate(cfg *Config) string {
	var sb strings.Builder
	sb.WriteString("modules = {")
	for i, m := range cfg.Modules {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("\n\t")
		sb.WriteString(m.Name)
		if len(m.Params) > 0 {
			keys := make([]string, 0, len(m.Params))
			for k := range m.Params {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sb.WriteString(" (")
			for j, k := range keys {
				if j > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%s=%s", k, quoteIfNeeded(m.Params[k]))
			}
			sb.WriteString(")")
		}
	}
	sb.WriteString("\n}\nknowggets = {")
	for i, kg := range cfg.Knowggets {
		if i > 0 {
			sb.WriteString(",")
		}
		key := kg.Label
		if kg.Entity != "" {
			key += "@" + kg.Entity
		}
		fmt.Fprintf(&sb, "\n\t%s = %s", key, quoteIfNeeded(kg.Value))
	}
	sb.WriteString("\n}\n")
	return sb.String()
}

// quoteIfNeeded quotes values the bare-word lexer could not re-read.
func quoteIfNeeded(v string) string {
	if v == "" {
		return `""`
	}
	for i := 0; i < len(v); i++ {
		if !isWordByte(v[i]) {
			return fmt.Sprintf("%q", v)
		}
	}
	return v
}

// --- lexer ---

type tokenKind int

const (
	tokEOF    tokenKind = iota + 1
	tokIdent            // bare word: names, numbers, booleans
	tokString           // quoted string
	tokEq               // =
	tokComma            // ,
	tokLBrace           // {
	tokRBrace           // }
	tokLParen           // (
	tokRParen           // )
)

type token struct {
	kind      tokenKind
	text      string
	line, col int
}

type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(line, col int, format string, args ...interface{}) *ParseError {
	return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// isWordByte reports bytes allowed in bare identifiers/values: letters,
// digits, and the punctuation used in labels, entities and numbers.
func isWordByte(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) ||
		strings.IndexByte("._@-+:$", c) >= 0
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

scan:
	line, col := l.line, l.col
	c := l.advance()
	switch c {
	case '=':
		return token{tokEq, "=", line, col}, nil
	case ',':
		return token{tokComma, ",", line, col}, nil
	case '{':
		return token{tokLBrace, "{", line, col}, nil
	case '}':
		return token{tokRBrace, "}", line, col}, nil
	case '(':
		return token{tokLParen, "(", line, col}, nil
	case ')':
		return token{tokRParen, ")", line, col}, nil
	case '"':
		// Collect the raw literal (escapes intact), then decode it
		// with the full Go escape syntax so Generate/Parse round-trip
		// arbitrary values.
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(line, col, "unterminated string")
			}
			c := l.advance()
			if c == '"' {
				s, err := strconv.Unquote(`"` + sb.String() + `"`)
				if err != nil {
					return token{}, l.errf(line, col, "bad string literal: %v", err)
				}
				return token{tokString, s, line, col}, nil
			}
			sb.WriteByte(c)
			if c == '\\' && l.pos < len(l.src) {
				sb.WriteByte(l.advance())
			}
		}
	default:
		if !isWordByte(c) {
			return token{}, l.errf(line, col, "unexpected character %q", c)
		}
		start := l.pos - 1
		for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
			l.advance()
		}
		return token{tokIdent, l.src[start:l.pos], line, col}, nil
	}
}

// --- parser ---

type parser struct {
	lex    *lexer
	peeked *token
}

func (p *parser) next() (token, error) {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		return t, nil
	}
	return p.lex.next()
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t, err := p.next()
	if err != nil {
		return token{}, err
	}
	if t.kind != kind {
		return token{}, &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected %s, got %q", what, t.text)}
	}
	return t, nil
}

func (p *parser) parseConfig() (*Config, error) {
	cfg := &Config{}
	seen := map[string]bool{}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokEOF {
			return cfg, nil
		}
		if t.kind != tokIdent || (t.text != "modules" && t.text != "knowggets") {
			return nil, &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected 'modules' or 'knowggets', got %q", t.text)}
		}
		if seen[t.text] {
			return nil, &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf("duplicate %q section", t.text)}
		}
		seen[t.text] = true
		if _, err := p.expect(tokEq, "'='"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBrace, "'{'"); err != nil {
			return nil, err
		}
		if t.text == "modules" {
			if err := p.parseModules(cfg); err != nil {
				return nil, err
			}
		} else {
			if err := p.parseKnowggets(cfg); err != nil {
				return nil, err
			}
		}
	}
}

func (p *parser) parseModules(cfg *Config) error {
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.kind == tokRBrace {
			return nil
		}
		if t.kind != tokIdent {
			return &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected module name, got %q", t.text)}
		}
		def := ModuleDef{Name: t.text}
		nxt, err := p.peek()
		if err != nil {
			return err
		}
		if nxt.kind == tokLParen {
			if _, err := p.next(); err != nil {
				return err
			}
			def.Params, err = p.parseParams()
			if err != nil {
				return err
			}
		}
		cfg.Modules = append(cfg.Modules, def)
		sep, err := p.next()
		if err != nil {
			return err
		}
		if sep.kind == tokRBrace {
			return nil
		}
		if sep.kind != tokComma {
			return &ParseError{Line: sep.line, Col: sep.col, Msg: fmt.Sprintf("expected ',' or '}', got %q", sep.text)}
		}
	}
}

func (p *parser) parseParams() (map[string]string, error) {
	params := make(map[string]string)
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokRParen {
			return params, nil
		}
		if t.kind != tokIdent {
			return nil, &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected parameter name, got %q", t.text)}
		}
		if _, err := p.expect(tokEq, "'='"); err != nil {
			return nil, err
		}
		v, err := p.next()
		if err != nil {
			return nil, err
		}
		if v.kind != tokIdent && v.kind != tokString {
			return nil, &ParseError{Line: v.line, Col: v.col, Msg: fmt.Sprintf("expected parameter value, got %q", v.text)}
		}
		params[t.text] = v.text
		sep, err := p.next()
		if err != nil {
			return nil, err
		}
		if sep.kind == tokRParen {
			return params, nil
		}
		if sep.kind != tokComma {
			return nil, &ParseError{Line: sep.line, Col: sep.col, Msg: fmt.Sprintf("expected ',' or ')', got %q", sep.text)}
		}
	}
}

func (p *parser) parseKnowggets(cfg *Config) error {
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.kind == tokRBrace {
			return nil
		}
		if t.kind != tokIdent && t.kind != tokString {
			return &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected knowgget key, got %q", t.text)}
		}
		if strings.Contains(t.text, "$") {
			return &ParseError{Line: t.line, Col: t.col, Msg: "static knowggets must not specify a creator"}
		}
		def := KnowggetDef{Label: t.text}
		if i := strings.LastIndexByte(t.text, '@'); i >= 0 {
			def.Label, def.Entity = t.text[:i], t.text[i+1:]
		}
		if _, err := p.expect(tokEq, "'='"); err != nil {
			return err
		}
		v, err := p.next()
		if err != nil {
			return err
		}
		if v.kind != tokIdent && v.kind != tokString {
			return &ParseError{Line: v.line, Col: v.col, Msg: fmt.Sprintf("expected knowgget value, got %q", v.text)}
		}
		def.Value = v.text
		cfg.Knowggets = append(cfg.Knowggets, def)
		sep, err := p.next()
		if err != nil {
			return err
		}
		if sep.kind == tokRBrace {
			return nil
		}
		if sep.kind != tokComma {
			return &ParseError{Line: sep.line, Col: sep.col, Msg: fmt.Sprintf("expected ',' or '}', got %q", sep.text)}
		}
	}
}
