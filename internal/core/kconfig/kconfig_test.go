package kconfig

import (
	"errors"
	"strings"
	"testing"
)

// paperExample is the configuration file from the paper's Fig. 7.
const paperExample = `
modules = {
	TopologyDetectionModule,
	TrafficStatsModule (
		activationThresh=1,
		detectionThresh=2
	)
}
knowggets = {
	mobility = false
}
`

func TestPaperExample(t *testing.T) {
	cfg, err := Parse(paperExample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.Modules) != 2 {
		t.Fatalf("modules = %d, want 2", len(cfg.Modules))
	}
	if cfg.Modules[0].Name != "TopologyDetectionModule" || cfg.Modules[0].Params != nil {
		t.Errorf("module 0: %+v", cfg.Modules[0])
	}
	m1 := cfg.Modules[1]
	if m1.Name != "TrafficStatsModule" || m1.Params["activationThresh"] != "1" || m1.Params["detectionThresh"] != "2" {
		t.Errorf("module 1: %+v", m1)
	}
	if len(cfg.Knowggets) != 1 || cfg.Knowggets[0].Label != "mobility" || cfg.Knowggets[0].Value != "false" {
		t.Errorf("knowggets: %+v", cfg.Knowggets)
	}
}

func TestEmptySections(t *testing.T) {
	cfg, err := Parse("modules = { } knowggets = { }")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.Modules) != 0 || len(cfg.Knowggets) != 0 {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestEmptyInput(t *testing.T) {
	cfg, err := Parse("")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.Modules) != 0 || len(cfg.Knowggets) != 0 {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestSectionsInAnyOrder(t *testing.T) {
	cfg, err := Parse(`knowggets = { a = 1 } modules = { M }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.Modules) != 1 || len(cfg.Knowggets) != 1 {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestEntityKnowgget(t *testing.T) {
	cfg, err := Parse(`knowggets = { SignalStrength@SensorA = -67 }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	kg := cfg.Knowggets[0]
	if kg.Label != "SignalStrength" || kg.Entity != "SensorA" || kg.Value != "-67" {
		t.Errorf("knowgget: %+v", kg)
	}
}

func TestQuotedValues(t *testing.T) {
	cfg, err := Parse(`knowggets = { greeting = "hello, world" }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Knowggets[0].Value != "hello, world" {
		t.Errorf("value = %q", cfg.Knowggets[0].Value)
	}
}

func TestComments(t *testing.T) {
	cfg, err := Parse("# top comment\nmodules = { M } # trailing\nknowggets = { a = 1 }")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.Modules) != 1 {
		t.Errorf("modules = %+v", cfg.Modules)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"creator in knowgget", `knowggets = { K1$x = 1 }`, "creator"},
		{"duplicate section", `modules = { } modules = { }`, "duplicate"},
		{"bad top level", `bogus = { }`, "expected 'modules' or 'knowggets'"},
		{"missing brace", `modules = M`, "'{'"},
		{"missing eq", `modules { M }`, "'='"},
		{"unterminated string", `knowggets = { a = "x`, "unterminated"},
		{"module name not ident", `modules = { , }`, "module name"},
		{"param missing value", `modules = { M(a=) }`, "parameter value"},
		{"knowgget missing value", `knowggets = { a = }`, "knowgget value"},
		{"bad separator", `modules = { A B }`, "','"},
		{"stray char", `modules = { A } ;`, "unexpected character"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error type %T", err)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Parse("modules = {\n  M,\n  ;\n}")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error: %v", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
}

func TestDurationAndDottedValues(t *testing.T) {
	cfg, err := Parse(`modules = { TrafficStatsModule(interval=5s), M2(rate=0.5) }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Modules[0].Params["interval"] != "5s" || cfg.Modules[1].Params["rate"] != "0.5" {
		t.Errorf("params: %+v", cfg.Modules)
	}
}
