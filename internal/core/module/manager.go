package module

import (
	"sync"
	"time"

	"kalis/internal/core/datastore"
	"kalis/internal/core/knowledge"
	"kalis/internal/flow"
	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// AlertFunc consumes alerts collected by the manager.
type AlertFunc func(Alert)

// Manager coordinates all modules: it routes new packet events to the
// active modules, collects detection alerts, and — when knowledge-
// driven operation is enabled — activates/deactivates modules as the
// Knowledge Base changes, via the publish-subscribe mechanism of §V
// ("Dynamic Detection Module Configuration").
//
// With knowledge-driven operation disabled the manager keeps every
// installed module active at all times; this is exactly the paper's
// "traditional IDS" baseline (§VI-B: "we emulate a traditional IDS by
// running our system without Knowledge Base, and with all the modules
// active at all times").
//
// The manager is also the module supervisor (see supervisor.go): a
// panicking module is quarantined and re-admitted after clean probes
// instead of killing the node, and a latency circuit breaker sheds
// persistently-over-budget modules while the pipeline is under queue
// pressure.
type Manager struct {
	kb    *knowledge.Base
	store *datastore.Store

	mu              sync.Mutex
	modules         []Module
	states          map[string]*moduleState
	params          map[string]map[string]string
	knowledgeDriven bool
	alertFns        []AlertFunc
	alerts          []Alert

	// snap is the immutable active-module snapshot HandlePacket
	// iterates: rebuilt under mu whenever activation, supervision or
	// metrics change, so the per-packet path neither allocates nor
	// resolves telemetry children.
	snap []activeEntry
	// timed reports whether per-module latency observation is wired
	// (when false HandlePacket skips the clock reads too).
	timed bool

	// degraded counts modules currently quarantined or shed; the
	// supervisor's revival scan runs only while it is non-zero.
	degraded int

	// flows is the node's flow table, updated once per packet before
	// module fan-out (nil disables the flow pipeline); flowLat is the
	// optional feature-update latency histogram, observed here rather
	// than inside internal/flow so the flow package itself stays on
	// the virtual capture clock.
	flows   *flow.Table
	flowLat *telemetry.Histogram

	// pendingHealth queues supervisor state transitions for
	// publication as ModuleHealth knowggets once the lock is released
	// (the Knowledge Base notifies subscribers synchronously, so
	// publishing under mu could deadlock through re-entrant
	// activation).
	pendingHealth []healthEvent

	sup      SupervisorConfig
	pressure func() int

	// Work accounting, the basis of the CPU-usage comparison: every
	// (packet, active module) pair costs one invocation.
	packets     uint64
	invocations uint64
	activations uint64

	met ManagerMetrics
}

// activeEntry pairs a dispatchable module with its pre-resolved
// telemetry children and supervision state (resolved off the packet
// path).
type activeEntry struct {
	mod Module
	lat *telemetry.Histogram
	st  *moduleState
	// probing marks a module on post-quarantine probation: clean
	// packets count towards re-admission.
	probing bool
}

// ManagerMetrics are the manager's optional telemetry hooks; zero-value
// fields are skipped (all telemetry types are nil-safe).
type ManagerMetrics struct {
	// Packets counts packets dispatched to the module pipeline.
	Packets *telemetry.Counter
	// ActiveModules tracks the number of currently active modules —
	// the observable face of knowledge-driven adaptation.
	ActiveModules *telemetry.Gauge
	// PacketLatency observes per-module HandlePacket wall time, by
	// module name. When nil, the manager skips the clock reads too.
	PacketLatency *telemetry.HistogramVec
	// Panics counts recovered module panics, by module name.
	Panics *telemetry.CounterVec
	// Quarantined tracks the number of modules currently withheld from
	// dispatch by the supervisor (quarantined or shed).
	Quarantined *telemetry.Gauge
	// BreakerTrips counts latency-circuit-breaker trips.
	BreakerTrips *telemetry.Counter
}

// NewManager creates a manager bound to a Knowledge Base and Data
// Store. knowledgeDriven selects adaptive module activation (Kalis)
// vs all-modules-always-on (traditional IDS baseline).
func NewManager(kb *knowledge.Base, store *datastore.Store, knowledgeDriven bool) *Manager {
	return &Manager{
		kb:              kb,
		store:           store,
		states:          make(map[string]*moduleState),
		params:          make(map[string]map[string]string),
		knowledgeDriven: knowledgeDriven,
		sup:             DefaultSupervisorConfig(),
	}
}

// KnowledgeDriven reports whether adaptive activation is enabled.
func (m *Manager) KnowledgeDriven() bool { return m.knowledgeDriven }

// SetFlows installs the flow table the manager updates once per packet
// before module fan-out, and the optional feature-update latency
// histogram. Call it before traffic flows (the table also lands in
// every subsequently activated module's Context).
func (m *Manager) SetFlows(t *flow.Table, lat *telemetry.Histogram) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flows = t
	m.flowLat = lat
}

// SetMetrics installs telemetry hooks. Call it before traffic flows.
func (m *Manager) SetMetrics(met ManagerMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met = met
	for _, mod := range m.modules {
		m.resolveStateLocked(m.states[mod.Name()], mod.Name())
	}
	m.rebuildSnapLocked()
}

// resolveStateLocked caches a state's telemetry children so the packet
// path and the (cold but on-path) quarantine branch never pay a Vec
// lookup. Callers must hold m.mu.
func (m *Manager) resolveStateLocked(st *moduleState, name string) {
	//lint:ignore hotpath wiring-time child resolution, never on the packet path
	st.panics = m.met.Panics.With(name)
}

// rebuildSnapLocked recomputes the dispatchable-module snapshot,
// resolving each module's latency histogram child once — off the
// packet path. A module is dispatched when its knowledge predicate
// wants it active and the supervisor holds it neither quarantined nor
// shed. Callers must hold m.mu.
func (m *Manager) rebuildSnapLocked() {
	m.timed = m.met.PacketLatency != nil
	snap := make([]activeEntry, 0, len(m.modules))
	for _, mod := range m.modules {
		st := m.states[mod.Name()]
		if !st.want || (st.health != stateHealthy && st.health != stateProbing) {
			continue
		}
		e := activeEntry{mod: mod, st: st, probing: st.health == stateProbing}
		if m.timed {
			//lint:ignore hotpath snapshot rebuild is a rare supervision/activation event, not per-packet work
			e.lat = m.met.PacketLatency.With(mod.Name())
		}
		snap = append(snap, e)
	}
	m.snap = snap
}

// OnAlert registers a consumer for every alert raised by any module.
func (m *Manager) OnAlert(fn AlertFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alertFns = append(m.alertFns, fn)
}

// Install adds a module (inactive until its knowledge predicate first
// holds) and subscribes its watch labels to the Knowledge Base.
func (m *Manager) Install(mod Module, params map[string]string) {
	m.mu.Lock()
	m.modules = append(m.modules, mod)
	st := &moduleState{name: mod.Name()}
	m.resolveStateLocked(st, mod.Name())
	m.states[mod.Name()] = st
	m.params[mod.Name()] = params
	m.mu.Unlock()

	for _, label := range mod.WatchLabels() {
		mod := mod
		m.kb.Subscribe(label, func(knowledge.Knowgget) { m.reevaluate(mod) })
	}
	m.reevaluate(mod)
}

// reevaluate synchronizes one module's activation with the current
// knowledge. Transitions are serialized per module: the first caller to
// observe a pending transition becomes the owner of the module's
// transition loop, and concurrent knowledge updates only move the
// target state — they never interleave Activate/Deactivate calls, so a
// module always ends up last-called with the transition matching the
// final knowledge state (no stale Context).
//
//lint:coldpath activation transitions run on knowledge flips and install/param changes, not per packet; Activate/Deactivate and flow-tracker acquisition are off the per-packet budget
func (m *Manager) reevaluate(mod Module) {
	m.mu.Lock()
	st := m.states[mod.Name()]
	if st == nil {
		m.mu.Unlock()
		return
	}
	want := !m.knowledgeDriven || mod.Required(m.kb)
	if want != st.want {
		st.want = want
		m.activations++
		if want {
			m.met.ActiveModules.Inc()
		} else {
			m.met.ActiveModules.Dec()
		}
		m.rebuildSnapLocked()
	}
	if st.transitioning || st.applied == st.want {
		// Another goroutine owns this module's transition loop and will
		// observe the new target before it exits — or there is nothing
		// to do. Either way, returning here cannot strand a transition.
		m.mu.Unlock()
		return
	}
	st.transitioning = true
	params := m.params[mod.Name()]
	m.mu.Unlock()
	m.applyTransitions(mod, st, params)
}

// applyTransitions delivers Activate/Deactivate calls until the
// module's applied state matches the target. Only one goroutine runs
// this loop per module (st.transitioning); the loop re-reads the
// target after every call, so a knowledge flip that lands mid-call is
// applied next — never lost, never reordered.
func (m *Manager) applyTransitions(mod Module, st *moduleState, params map[string]string) {
	for {
		m.mu.Lock()
		want := st.want
		flows := m.flows
		if want == st.applied {
			st.transitioning = false
			m.mu.Unlock()
			return
		}
		st.applied = want
		m.mu.Unlock()
		if want {
			m.safeActivate(mod, &Context{
				KB:              m.kb,
				Store:           m.store,
				Flows:           flows,
				Emit:            m.emit,
				Params:          params,
				KnowledgeDriven: m.knowledgeDriven,
			})
		} else {
			m.safeDeactivate(mod)
		}
	}
}

func (m *Manager) emit(a Alert) {
	m.mu.Lock()
	m.alerts = append(m.alerts, a)
	fns := make([]AlertFunc, len(m.alertFns))
	copy(fns, m.alertFns)
	m.mu.Unlock()
	for _, fn := range fns {
		fn(a)
	}
}

// HandlePacket records the capture in the Data Store, folds it into
// the flow table, and routes it to every dispatchable module under the
// supervisor's panic barrier. The snapshot is immutable, so the
// per-packet work is one lock round-trip, the flow update and the
// module invocations themselves — no allocation, no telemetry child
// lookups. Supervision bookkeeping (revival scans, breaker evaluation)
// runs on the virtual capture clock and only when armed.
func (m *Manager) HandlePacket(c *packet.Captured) {
	// Data Store append errors surface only when disk logging is
	// enabled; the window append itself cannot fail. A passive IDS
	// keeps observing either way.
	_ = m.store.Append(c)

	m.mu.Lock()
	m.packets++
	if m.degraded > 0 {
		m.reviveLocked(c.Time)
	}
	if m.pressure != nil && m.sup.BreakerWindow > 0 && m.packets%uint64(m.sup.BreakerWindow) == 0 {
		m.breakerLocked(c.Time)
	}
	snap := m.snap
	timed := m.timed
	flows, flowLat := m.flows, m.flowLat
	// The flow-update latency is sampled (1 in 16 packets): two clock
	// reads per packet would cost more than the update they measure.
	if m.packets&0xf != 0 {
		flowLat = nil
	}
	var health []healthEvent
	if len(m.pendingHealth) > 0 {
		health = m.pendingHealth
		m.pendingHealth = nil
	}
	m.invocations += uint64(len(snap))
	m.met.Packets.Inc()
	m.mu.Unlock()

	if len(health) > 0 {
		m.publishHealth(health)
	}

	// The flow table updates exactly once per packet, before module
	// fan-out, so every module reads post-packet flow state. The
	// latency is measured here (wall clock) rather than inside
	// internal/flow, which stays on the virtual capture clock.
	if flows != nil {
		if flowLat != nil {
			start := time.Now()
			flows.Update(c)
			flowLat.Observe(time.Since(start))
		} else {
			flows.Update(c)
		}
	}

	for _, e := range snap {
		var start time.Time
		if timed {
			start = time.Now()
		}
		ok, cause := m.invoke(e.mod, c)
		if !ok {
			m.quarantine(e.st, c.Time, cause)
			continue
		}
		if timed {
			e.lat.Observe(time.Since(start))
		}
		if e.probing {
			m.probeOK(e.st)
		}
	}
}

// HandleBatch dispatches a batch of packets through the same pipeline
// as HandlePacket, amortizing the lock round-trip, snapshot read and
// supervision bookkeeping across the batch — the per-shard worker path
// of the sharded ingestion pipeline (internal/ingest). The supervisor
// runs once per batch on the last packet's timestamp: revival and
// breaker decisions are windowed anyway, so batch-granular evaluation
// only defers them by at most one batch. A module that panics mid-
// batch keeps being invoked (and contained) for the rest of the batch
// under the stale snapshot, exactly as a quarantined module still
// receives the in-flight packet under HandlePacket; quarantine is
// idempotent.
func (m *Manager) HandleBatch(batch []*packet.Captured) {
	if len(batch) == 0 {
		return
	}
	last := batch[len(batch)-1]

	m.mu.Lock()
	base := m.packets
	m.packets += uint64(len(batch))
	if m.degraded > 0 {
		m.reviveLocked(last.Time)
	}
	if m.pressure != nil && m.sup.BreakerWindow > 0 &&
		m.packets/uint64(m.sup.BreakerWindow) != base/uint64(m.sup.BreakerWindow) {
		m.breakerLocked(last.Time)
	}
	snap := m.snap
	timed := m.timed
	flows, flowLat := m.flows, m.flowLat
	var health []healthEvent
	if len(m.pendingHealth) > 0 {
		health = m.pendingHealth
		m.pendingHealth = nil
	}
	m.invocations += uint64(len(snap)) * uint64(len(batch))
	m.met.Packets.Add(uint64(len(batch)))
	m.mu.Unlock()

	if len(health) > 0 {
		m.publishHealth(health)
	}

	for bi, c := range batch {
		_ = m.store.Append(c)
		if flows != nil {
			// Same 1-in-16 sampling as HandlePacket, continued across
			// batch boundaries by the pre-batch packet count.
			if flowLat != nil && (base+uint64(bi))&0xf == 0 {
				start := time.Now()
				flows.Update(c)
				flowLat.Observe(time.Since(start))
			} else {
				flows.Update(c)
			}
		}
		for _, e := range snap {
			var start time.Time
			if timed {
				start = time.Now()
			}
			ok, cause := m.invoke(e.mod, c)
			if !ok {
				m.quarantine(e.st, c.Time, cause)
				continue
			}
			if timed {
				e.lat.Observe(time.Since(start))
			}
			if e.probing {
				m.probeOK(e.st)
			}
		}
	}
}

// Active returns the names of the modules the knowledge currently
// activates, in install order (quarantined modules included: their
// activation is a knowledge decision, their dispatch a supervision
// one — see Quarantined and Health).
func (m *Manager) Active() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.modules))
	for _, mod := range m.modules {
		if m.states[mod.Name()].want {
			out = append(out, mod.Name())
		}
	}
	return out
}

// Installed returns the names of all installed modules, in install
// order.
func (m *Manager) Installed() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.modules))
	for _, mod := range m.modules {
		out = append(out, mod.Name())
	}
	return out
}

// ParamsOf returns the parameters a module was installed with.
func (m *Manager) ParamsOf(name string) map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	params := m.params[name]
	out := make(map[string]string, len(params))
	for k, v := range params {
		out[k] = v
	}
	return out
}

// ModuleKind returns the kind of an installed module.
func (m *Manager) ModuleKind(name string) (Kind, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mod := range m.modules {
		if mod.Name() == name {
			return mod.Kind(), true
		}
	}
	return 0, false
}

// Alerts returns a copy of all alerts collected so far.
func (m *Manager) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// Stats returns work-accounting counters: packets dispatched, total
// (packet × active module) invocations, and activation transitions.
func (m *Manager) Stats() (packets, invocations, activations uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.packets, m.invocations, m.activations
}
