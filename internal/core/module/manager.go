package module

import (
	"sync"
	"time"

	"kalis/internal/core/datastore"
	"kalis/internal/core/knowledge"
	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// AlertFunc consumes alerts collected by the manager.
type AlertFunc func(Alert)

// Manager coordinates all modules: it routes new packet events to the
// active modules, collects detection alerts, and — when knowledge-
// driven operation is enabled — activates/deactivates modules as the
// Knowledge Base changes, via the publish-subscribe mechanism of §V
// ("Dynamic Detection Module Configuration").
//
// With knowledge-driven operation disabled the manager keeps every
// installed module active at all times; this is exactly the paper's
// "traditional IDS" baseline (§VI-B: "we emulate a traditional IDS by
// running our system without Knowledge Base, and with all the modules
// active at all times").
type Manager struct {
	kb    *knowledge.Base
	store *datastore.Store

	mu              sync.Mutex
	modules         []Module
	active          map[string]bool
	params          map[string]map[string]string
	knowledgeDriven bool
	alertFns        []AlertFunc
	alerts          []Alert

	// snap is the immutable active-module snapshot HandlePacket
	// iterates: rebuilt under mu whenever activation or metrics
	// change, so the per-packet path neither allocates nor resolves
	// telemetry children.
	snap []activeEntry
	// timed reports whether per-module latency observation is wired
	// (when false HandlePacket skips the clock reads too).
	timed bool

	// Work accounting, the basis of the CPU-usage comparison: every
	// (packet, active module) pair costs one invocation.
	packets     uint64
	invocations uint64
	activations uint64

	met ManagerMetrics
}

// activeEntry pairs an active module with its pre-resolved latency
// histogram child (nil when latency observation is not wired).
type activeEntry struct {
	mod Module
	lat *telemetry.Histogram
}

// ManagerMetrics are the manager's optional telemetry hooks; zero-value
// fields are skipped (all telemetry types are nil-safe).
type ManagerMetrics struct {
	// Packets counts packets dispatched to the module pipeline.
	Packets *telemetry.Counter
	// ActiveModules tracks the number of currently active modules —
	// the observable face of knowledge-driven adaptation.
	ActiveModules *telemetry.Gauge
	// PacketLatency observes per-module HandlePacket wall time, by
	// module name. When nil, the manager skips the clock reads too.
	PacketLatency *telemetry.HistogramVec
}

// NewManager creates a manager bound to a Knowledge Base and Data
// Store. knowledgeDriven selects adaptive module activation (Kalis)
// vs all-modules-always-on (traditional IDS baseline).
func NewManager(kb *knowledge.Base, store *datastore.Store, knowledgeDriven bool) *Manager {
	return &Manager{
		kb:              kb,
		store:           store,
		active:          make(map[string]bool),
		params:          make(map[string]map[string]string),
		knowledgeDriven: knowledgeDriven,
	}
}

// KnowledgeDriven reports whether adaptive activation is enabled.
func (m *Manager) KnowledgeDriven() bool { return m.knowledgeDriven }

// SetMetrics installs telemetry hooks. Call it before traffic flows.
func (m *Manager) SetMetrics(met ManagerMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met = met
	m.rebuildSnapLocked()
}

// rebuildSnapLocked recomputes the active-module snapshot, resolving
// each module's latency histogram child once — off the packet path.
// Callers must hold m.mu.
func (m *Manager) rebuildSnapLocked() {
	m.timed = m.met.PacketLatency != nil
	snap := make([]activeEntry, 0, len(m.modules))
	for _, mod := range m.modules {
		if !m.active[mod.Name()] {
			continue
		}
		e := activeEntry{mod: mod}
		if m.timed {
			e.lat = m.met.PacketLatency.With(mod.Name())
		}
		snap = append(snap, e)
	}
	m.snap = snap
}

// OnAlert registers a consumer for every alert raised by any module.
func (m *Manager) OnAlert(fn AlertFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alertFns = append(m.alertFns, fn)
}

// Install adds a module (inactive until its knowledge predicate first
// holds) and subscribes its watch labels to the Knowledge Base.
func (m *Manager) Install(mod Module, params map[string]string) {
	m.mu.Lock()
	m.modules = append(m.modules, mod)
	m.params[mod.Name()] = params
	m.mu.Unlock()

	for _, label := range mod.WatchLabels() {
		mod := mod
		m.kb.Subscribe(label, func(knowledge.Knowgget) { m.reevaluate(mod) })
	}
	m.reevaluate(mod)
}

// reevaluate synchronizes one module's activation with the current
// knowledge.
func (m *Manager) reevaluate(mod Module) {
	m.mu.Lock()
	want := !m.knowledgeDriven || mod.Required(m.kb)
	have := m.active[mod.Name()]
	if want == have {
		m.mu.Unlock()
		return
	}
	m.active[mod.Name()] = want
	params := m.params[mod.Name()]
	m.activations++
	if want {
		m.met.ActiveModules.Inc()
	} else {
		m.met.ActiveModules.Dec()
	}
	m.rebuildSnapLocked()
	m.mu.Unlock()

	if want {
		mod.Activate(&Context{
			KB:              m.kb,
			Store:           m.store,
			Emit:            m.emit,
			Params:          params,
			KnowledgeDriven: m.knowledgeDriven,
		})
	} else {
		mod.Deactivate()
	}
}

func (m *Manager) emit(a Alert) {
	m.mu.Lock()
	m.alerts = append(m.alerts, a)
	fns := make([]AlertFunc, len(m.alertFns))
	copy(fns, m.alertFns)
	m.mu.Unlock()
	for _, fn := range fns {
		fn(a)
	}
}

// HandlePacket records the capture in the Data Store and routes it to
// every active module. The snapshot is immutable, so the per-packet
// work is one lock round-trip and the module invocations themselves —
// no allocation, no telemetry child lookups.
func (m *Manager) HandlePacket(c *packet.Captured) {
	// Data Store append errors surface only when disk logging is
	// enabled; the window append itself cannot fail. A passive IDS
	// keeps observing either way.
	_ = m.store.Append(c)

	m.mu.Lock()
	m.packets++
	snap := m.snap
	timed := m.timed
	m.invocations += uint64(len(snap))
	m.met.Packets.Inc()
	m.mu.Unlock()

	if !timed {
		for _, e := range snap {
			e.mod.HandlePacket(c)
		}
		return
	}
	for _, e := range snap {
		start := time.Now()
		e.mod.HandlePacket(c)
		e.lat.Observe(time.Since(start))
	}
}

// Active returns the names of currently active modules, in install
// order.
func (m *Manager) Active() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.modules))
	for _, mod := range m.modules {
		if m.active[mod.Name()] {
			out = append(out, mod.Name())
		}
	}
	return out
}

// Installed returns the names of all installed modules, in install
// order.
func (m *Manager) Installed() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.modules))
	for _, mod := range m.modules {
		out = append(out, mod.Name())
	}
	return out
}

// ParamsOf returns the parameters a module was installed with.
func (m *Manager) ParamsOf(name string) map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	params := m.params[name]
	out := make(map[string]string, len(params))
	for k, v := range params {
		out[k] = v
	}
	return out
}

// ModuleKind returns the kind of an installed module.
func (m *Manager) ModuleKind(name string) (Kind, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mod := range m.modules {
		if mod.Name() == name {
			return mod.Kind(), true
		}
	}
	return 0, false
}

// Alerts returns a copy of all alerts collected so far.
func (m *Manager) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// Stats returns work-accounting counters: packets dispatched, total
// (packet × active module) invocations, and activation transitions.
func (m *Manager) Stats() (packets, invocations, activations uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.packets, m.invocations, m.activations
}
