package module

import (
	"fmt"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// This file is the module supervisor: the only place in the tree where
// recover is legal (enforced by kalislint's nopanic rule). The paper's
// core claim (§V, §VI-B) is that a Kalis node keeps observing under
// hostile conditions; a detection module that panics on a crafted frame
// must therefore be contained, counted and re-admitted — never allowed
// to kill the node.
//
// Supervision state machine (per module):
//
//	healthy ──panic──▶ quarantined ──backoff elapses──▶ probing
//	probing ──ProbePackets clean packets──▶ healthy (strikes reset)
//	probing ──panic──▶ quarantined (backoff doubles)
//	healthy ──breaker trip──▶ shed ──backoff + pressure subsides──▶ healthy
//
// All timing runs on the virtual capture clock (packet timestamps), so
// simulated scenarios exercise the full state machine deterministically
// and the simclock discipline holds.

// moduleHealth is a module's supervision state.
type moduleHealth int

const (
	// stateHealthy modules are dispatched normally.
	stateHealthy moduleHealth = iota
	// stateQuarantined modules panicked and are withheld from dispatch
	// until their backoff elapses.
	stateQuarantined
	// stateProbing modules are back on the packet stream on probation:
	// ProbePackets clean invocations re-admit them fully.
	stateProbing
	// stateShed modules were tripped by the latency circuit breaker and
	// are withheld until the backoff elapses and queue pressure drops.
	stateShed
)

// String returns the health-state name used by Health and diagnostics.
func (h moduleHealth) String() string {
	switch h {
	case stateHealthy:
		return "healthy"
	case stateQuarantined:
		return "quarantined"
	case stateProbing:
		return "probing"
	case stateShed:
		return "shed"
	default:
		return "unknown"
	}
}

// healthEvent is one supervisor state transition queued for
// publication as a ModuleHealth.<name> collective knowgget.
type healthEvent struct {
	name, state string
}

// noteHealthLocked queues a module's current supervision state for
// publication. Callers must hold m.mu; the event is published by the
// next drain point (HandlePacket's per-packet check, or the cold-path
// callers' own drainHealth), outside the lock.
func (m *Manager) noteHealthLocked(st *moduleState) {
	m.pendingHealth = append(m.pendingHealth, healthEvent{name: st.name, state: st.health.String()})
}

// publishHealth stores queued transitions as collective
// ModuleHealth.<name> knowggets, so peer Kalis nodes can correlate
// module crashes across the network. Must be called without m.mu held.
//
//lint:coldpath health knowggets publish on supervisor state transitions (crash, quarantine, probation exit), which are rare by construction
func (m *Manager) publishHealth(evs []healthEvent) {
	for _, e := range evs {
		m.kb.PutCollective(knowledge.LabelModuleHealth+"."+e.name, "", e.state)
	}
}

// drainHealth publishes any queued transitions. Used by the cold-path
// transition sites (quarantine, probation exit) that own their own
// locking; the per-packet path drains inline in HandlePacket instead.
func (m *Manager) drainHealth() {
	m.mu.Lock()
	evs := m.pendingHealth
	m.pendingHealth = nil
	m.mu.Unlock()
	if len(evs) > 0 {
		m.publishHealth(evs)
	}
}

// moduleState is the manager's per-module bookkeeping: activation
// (knowledge-driven) and supervision (fault containment).
type moduleState struct {
	// name is the module's registry name (for health publication).
	name string
	// Activation. want is the target the knowledge predicate asks for;
	// applied is the last transition actually delivered to the module;
	// transitioning marks the single goroutine currently applying
	// transitions (see reevaluate).
	want          bool
	applied       bool
	transitioning bool

	// Supervision.
	health    moduleHealth
	strikes   int       // consecutive quarantines; backoff exponent
	until     time.Time // virtual re-admission time (quarantine/shed)
	probeLeft int       // clean packets remaining in probation
	lastPanic string    // last recovered panic value, for diagnostics

	// Pre-resolved telemetry child (see resolveStateLocked).
	panics *telemetry.Counter

	// Breaker bookkeeping: the windowed latency mean is computed from
	// deltas over the module's existing telemetry histogram.
	lastCount uint64
	lastSum   time.Duration
	over      int // consecutive over-budget windows
}

// SupervisorConfig tunes the module supervisor. The zero value disables
// nothing: use DefaultSupervisorConfig as the base and override fields.
type SupervisorConfig struct {
	// Backoff is the initial quarantine duration after a panic, in
	// virtual (capture-timestamp) time. It doubles on every repeated
	// quarantine up to MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential quarantine backoff.
	MaxBackoff time.Duration
	// ProbePackets is how many clean packets a probing module must
	// survive before it is fully re-admitted (strikes reset).
	ProbePackets int
	// BreakerBudget is the per-packet latency budget; a module whose
	// mean over an evaluation window exceeds it while the pipeline is
	// under pressure accumulates a strike.
	BreakerBudget time.Duration
	// BreakerWindow is the packet interval between breaker evaluations
	// (0 disables the breaker).
	BreakerWindow int
	// BreakerStrikes is how many consecutive over-budget windows trip
	// the breaker.
	BreakerStrikes int
	// PressureThreshold is the queue depth (from the pressure hook) at
	// or above which the pipeline counts as under pressure.
	PressureThreshold int
	// ShedBackoff is how long (virtual time) a breaker-shed module
	// stays out before re-admission is considered.
	ShedBackoff time.Duration
}

// DefaultSupervisorConfig returns the production supervisor tuning.
func DefaultSupervisorConfig() SupervisorConfig {
	return SupervisorConfig{
		Backoff:           5 * time.Second,
		MaxBackoff:        5 * time.Minute,
		ProbePackets:      32,
		BreakerBudget:     2 * time.Millisecond,
		BreakerWindow:     256,
		BreakerStrikes:    3,
		PressureThreshold: 512,
		ShedBackoff:       30 * time.Second,
	}
}

// SetSupervisor replaces the supervisor tuning. Call it before traffic
// flows.
func (m *Manager) SetSupervisor(cfg SupervisorConfig) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sup = cfg
}

// SetPressure installs the queue-pressure hook feeding the latency
// circuit breaker (typically the event bus' QueueDepth). The breaker
// stays disarmed until a hook is installed.
func (m *Manager) SetPressure(fn func() int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pressure = fn
}

// invoke runs one module's HandlePacket under the supervisor's panic
// barrier. It reports ok=false and the recovered value when the module
// panicked.
func (m *Manager) invoke(mod Module, c *packet.Captured) (ok bool, cause interface{}) {
	defer func() {
		if r := recover(); r != nil {
			ok, cause = false, r
		}
	}()
	mod.HandlePacket(c)
	return true, nil
}

// safeActivate delivers Activate under the panic barrier; a module that
// panics while activating is quarantined on the spot (with a zero
// virtual timestamp: the first packet's revival scan re-times it).
func (m *Manager) safeActivate(mod Module, ctx *Context) {
	defer func() {
		if r := recover(); r != nil {
			m.quarantine(m.stateOf(mod.Name()), time.Time{}, r)
		}
	}()
	mod.Activate(ctx)
}

// safeDeactivate delivers Deactivate under the panic barrier.
func (m *Manager) safeDeactivate(mod Module) {
	defer func() {
		if r := recover(); r != nil {
			m.quarantine(m.stateOf(mod.Name()), time.Time{}, r)
		}
	}()
	mod.Deactivate()
}

// stateOf returns a module's state under the lock.
func (m *Manager) stateOf(name string) *moduleState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.states[name]
}

// quarantine withholds a panicked module from dispatch and schedules
// its probation with exponential backoff on the virtual clock.
func (m *Manager) quarantine(st *moduleState, at time.Time, cause interface{}) {
	if st == nil {
		return
	}
	m.mu.Lock()
	if st.health == stateQuarantined {
		m.mu.Unlock()
		return
	}
	if st.health == stateHealthy || st.health == stateProbing {
		m.degraded++
	}
	st.health = stateQuarantined
	st.strikes++
	st.until = at.Add(m.backoffLocked(st.strikes))
	st.lastPanic = fmt.Sprint(cause)
	st.panics.Inc()
	m.met.Quarantined.Set(int64(m.degraded))
	m.noteHealthLocked(st)
	m.rebuildSnapLocked()
	m.mu.Unlock()
	m.drainHealth()
}

// backoffLocked computes the quarantine backoff for the given strike
// count: Backoff · 2^(strikes-1), capped at MaxBackoff.
func (m *Manager) backoffLocked(strikes int) time.Duration {
	d := m.sup.Backoff
	for i := 1; i < strikes; i++ {
		d *= 2
		if m.sup.MaxBackoff > 0 && d >= m.sup.MaxBackoff {
			return m.sup.MaxBackoff
		}
	}
	if m.sup.MaxBackoff > 0 && d > m.sup.MaxBackoff {
		d = m.sup.MaxBackoff
	}
	return d
}

// reviveLocked re-admits quarantined modules whose backoff elapsed
// (into probation) and shed modules once their backoff elapsed and the
// queue pressure subsided. Runs under m.mu, only while degraded > 0.
func (m *Manager) reviveLocked(now time.Time) {
	changed := false
	for _, st := range m.states {
		switch st.health {
		case stateQuarantined:
			if !now.Before(st.until) {
				st.health = stateProbing
				st.probeLeft = m.sup.ProbePackets
				m.degraded--
				m.noteHealthLocked(st)
				changed = true
			}
		case stateShed:
			if now.Before(st.until) {
				continue
			}
			if m.pressure != nil && m.pressure() >= m.sup.PressureThreshold {
				// Still saturated: stay out for another backoff period
				// rather than rescanning every packet.
				st.until = now.Add(m.sup.ShedBackoff)
				continue
			}
			st.health = stateHealthy
			st.over = 0
			m.degraded--
			m.noteHealthLocked(st)
			changed = true
		}
	}
	if changed {
		m.met.Quarantined.Set(int64(m.degraded))
		m.rebuildSnapLocked()
	}
}

// probeOK credits one clean probation packet; after ProbePackets clean
// invocations the module is fully re-admitted and its strike count
// reset.
func (m *Manager) probeOK(st *moduleState) {
	m.mu.Lock()
	if st.health != stateProbing {
		m.mu.Unlock()
		return
	}
	st.probeLeft--
	readmitted := false
	if st.probeLeft <= 0 {
		st.health = stateHealthy
		st.strikes = 0
		m.noteHealthLocked(st)
		m.rebuildSnapLocked()
		readmitted = true
	}
	m.mu.Unlock()
	if readmitted {
		m.drainHealth()
	}
}

// breakerLocked is the latency circuit breaker: fed by the per-module
// telemetry histograms, it sheds modules whose windowed mean latency
// stays over budget while the pipeline is under queue pressure — the
// ROADMAP's knowledge-driven load shedding. Runs under m.mu every
// BreakerWindow packets.
func (m *Manager) breakerLocked(now time.Time) {
	under := m.pressure() >= m.sup.PressureThreshold
	changed := false
	for _, e := range m.snap {
		if e.lat == nil || e.st.health != stateHealthy {
			continue
		}
		st := e.st
		count, sum := e.lat.Count(), e.lat.Sum()
		dc := count - st.lastCount
		ds := sum - st.lastSum
		st.lastCount, st.lastSum = count, sum
		if !under || dc == 0 {
			st.over = 0
			continue
		}
		if ds/time.Duration(dc) > m.sup.BreakerBudget {
			st.over++
		} else {
			st.over = 0
		}
		if st.over >= m.sup.BreakerStrikes {
			st.over = 0
			st.health = stateShed
			st.until = now.Add(m.sup.ShedBackoff)
			m.degraded++
			m.met.BreakerTrips.Inc()
			m.noteHealthLocked(st)
			changed = true
		}
	}
	if changed {
		m.met.Quarantined.Set(int64(m.degraded))
		m.rebuildSnapLocked()
	}
}

// Quarantined returns the names of modules currently withheld from
// dispatch by the supervisor (quarantined or shed), in install order.
func (m *Manager) Quarantined() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, mod := range m.modules {
		if h := m.states[mod.Name()].health; h == stateQuarantined || h == stateShed {
			out = append(out, mod.Name())
		}
	}
	return out
}

// Health reports every installed module's activation/supervision state:
// "inactive" when the knowledge predicate does not want it, otherwise
// the supervision state ("healthy", "quarantined", "probing", "shed").
func (m *Manager) Health() map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string, len(m.modules))
	for _, mod := range m.modules {
		st := m.states[mod.Name()]
		if !st.want {
			out[mod.Name()] = "inactive"
			continue
		}
		out[mod.Name()] = st.health.String()
	}
	return out
}

// LastPanic returns the most recent recovered panic value for a module
// ("" when it never panicked), for diagnostics and tests.
func (m *Manager) LastPanic(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st := m.states[name]; st != nil {
		return st.lastPanic
	}
	return ""
}
