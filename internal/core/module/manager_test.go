package module

import (
	"testing"
	"time"

	"kalis/internal/core/datastore"
	"kalis/internal/core/knowledge"
	"kalis/internal/packet"
)

// fakeModule is a scriptable module for manager tests.
type fakeModule struct {
	name      string
	kind      Kind
	watch     []string
	required  func(*knowledge.Base) bool
	ctx       *Context
	activated int
	packets   int
}

func (f *fakeModule) Name() string          { return f.name }
func (f *fakeModule) Kind() Kind            { return f.kind }
func (f *fakeModule) WatchLabels() []string { return f.watch }
func (f *fakeModule) Required(kb *knowledge.Base) bool {
	if f.required == nil {
		return true
	}
	return f.required(kb)
}
func (f *fakeModule) Activate(ctx *Context) { f.ctx = ctx; f.activated++ }
func (f *fakeModule) Deactivate()           { f.ctx = nil }
func (f *fakeModule) HandlePacket(c *packet.Captured) {
	f.packets++
	if f.ctx == nil {
		panic("packet to inactive module")
	}
}

func newTestManager(kd bool) (*Manager, *knowledge.Base) {
	kb := knowledge.NewBase("K1")
	return NewManager(kb, datastore.New(16), kd), kb
}

func TestDynamicActivation(t *testing.T) {
	m, kb := newTestManager(true)
	mod := &fakeModule{
		name:  "M",
		kind:  KindDetection,
		watch: []string{"Multihop"},
		required: func(kb *knowledge.Base) bool {
			v, ok := kb.Bool("Multihop")
			return ok && v
		},
	}
	m.Install(mod, nil)
	if len(m.Active()) != 0 {
		t.Fatal("module active before knowledge")
	}
	kb.PutBool("Multihop", true)
	if got := m.Active(); len(got) != 1 || got[0] != "M" {
		t.Fatalf("active = %v", got)
	}
	if mod.ctx == nil || !mod.ctx.KnowledgeDriven {
		t.Error("context not injected")
	}
	kb.PutBool("Multihop", false)
	if len(m.Active()) != 0 {
		t.Fatal("module not deactivated")
	}
	if mod.activated != 1 {
		t.Errorf("activations = %d", mod.activated)
	}
}

func TestTraditionalModeAllActive(t *testing.T) {
	m, kb := newTestManager(false)
	mod := &fakeModule{
		name:     "M",
		kind:     KindDetection,
		watch:    []string{"Multihop"},
		required: func(*knowledge.Base) bool { return false }, // never required
	}
	m.Install(mod, nil)
	if got := m.Active(); len(got) != 1 {
		t.Fatalf("traditional mode should force-activate: %v", got)
	}
	if mod.ctx.KnowledgeDriven {
		t.Error("context claims knowledge-driven in traditional mode")
	}
	kb.PutBool("Multihop", true) // knowledge changes must not matter
	if len(m.Active()) != 1 {
		t.Error("traditional activation changed with knowledge")
	}
}

func TestPacketRoutingOnlyToActive(t *testing.T) {
	m, kb := newTestManager(true)
	on := &fakeModule{name: "on", kind: KindSensing}
	off := &fakeModule{
		name: "off", kind: KindDetection,
		required: func(*knowledge.Base) bool { return false },
	}
	m.Install(on, nil)
	m.Install(off, nil)
	_ = kb

	c := &packet.Captured{Time: time.Unix(0, 0), Kind: packet.KindUDP}
	m.HandlePacket(c)
	m.HandlePacket(c)
	if on.packets != 2 || off.packets != 0 {
		t.Errorf("routing: on=%d off=%d", on.packets, off.packets)
	}
	pkts, invs, _ := m.Stats()
	if pkts != 2 || invs != 2 {
		t.Errorf("stats: packets=%d invocations=%d", pkts, invs)
	}
}

func TestAlertsCollectedAndFannedOut(t *testing.T) {
	m, _ := newTestManager(true)
	mod := &fakeModule{name: "M", kind: KindDetection}
	m.Install(mod, nil)
	var got []Alert
	m.OnAlert(func(a Alert) { got = append(got, a) })
	mod.ctx.Emit(Alert{Attack: "sybil", Module: "M"})
	if len(m.Alerts()) != 1 || len(got) != 1 {
		t.Fatalf("alerts = %d, callbacks = %d", len(m.Alerts()), len(got))
	}
	if got[0].Attack != "sybil" {
		t.Errorf("alert = %+v", got[0])
	}
}

func TestInstalledOrderAndParams(t *testing.T) {
	m, _ := newTestManager(true)
	a := &fakeModule{name: "A", kind: KindSensing}
	b := &fakeModule{name: "B", kind: KindDetection}
	m.Install(a, map[string]string{"k": "v"})
	m.Install(b, nil)
	inst := m.Installed()
	if len(inst) != 2 || inst[0] != "A" || inst[1] != "B" {
		t.Errorf("installed = %v", inst)
	}
	if a.ctx.Params["k"] != "v" {
		t.Error("params not injected")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("M", func(params map[string]string) (Module, error) {
		return &fakeModule{name: "M", kind: KindSensing}, nil
	})
	mod, err := r.New("M", nil)
	if err != nil || mod.Name() != "M" {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.New("nope", nil); err == nil {
		t.Error("unknown module instantiated")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "M" {
		t.Errorf("names = %v", names)
	}
}

func TestKindString(t *testing.T) {
	if KindSensing.String() != "sensing" || KindDetection.String() != "detection" {
		t.Error("kind strings")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind string")
	}
}
