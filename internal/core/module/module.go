// Package module defines Kalis' module framework (§IV-B4): sensing and
// detection modules, the registry used for configuration-driven
// instantiation by name (the Go analogue of the paper's Java
// reflection), and the Module Manager that routes packet events and
// dynamically activates or deactivates modules as the Knowledge Base
// changes.
package module

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"kalis/internal/core/datastore"
	"kalis/internal/core/knowledge"
	"kalis/internal/flow"
	"kalis/internal/packet"
)

// Kind distinguishes sensing from detection modules.
type Kind int

// Module kinds.
const (
	KindSensing Kind = iota + 1
	KindDetection
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindSensing:
		return "sensing"
	case KindDetection:
		return "detection"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Alert is a detection event raised by a detection module.
type Alert struct {
	// Time is the (virtual) time of detection.
	Time time.Time
	// Attack is the canonical attack name (see internal/attack).
	Attack string
	// Module is the name of the module that raised the alert.
	Module string
	// Victim is the attacked entity, when identified.
	Victim packet.NodeID
	// Suspects are the entities the module considers responsible;
	// response actions (revocation) target them.
	Suspects []packet.NodeID
	// Confidence in [0,1].
	Confidence float64
	// Details is a human-readable explanation.
	Details string
}

// Context carries the dependencies injected into an active module.
type Context struct {
	// KB is the node's Knowledge Base.
	KB *knowledge.Base
	// Store is the node's Data Store (recent-traffic window).
	Store *datastore.Store
	// Flows is the node's flow table, updated once per packet before
	// module fan-out; detection modules acquire their endpoint
	// trackers from it. Nil when the manager runs without a flow
	// pipeline (direct-construction tests): modules then fall back to
	// standalone trackers they update themselves.
	Flows *flow.Table
	// Emit raises a detection alert.
	Emit func(Alert)
	// Params are the module parameters from the configuration file.
	Params map[string]string
	// KnowledgeDriven reports whether the node runs in knowledge-driven
	// mode; when false (traditional-IDS baseline, §VI-B) modules must
	// not rely on knowggets and fall back to naive techniques.
	KnowledgeDriven bool
}

// Module is a Kalis module. Implementations must be single-goroutine
// safe with respect to the manager: HandlePacket, Activate and
// Deactivate are never called concurrently.
type Module interface {
	// Name returns the unique module name used in configuration files.
	Name() string
	// Kind reports whether this is a sensing or detection module.
	Kind() Kind
	// WatchLabels lists the knowgget labels whose changes can affect
	// Required; the manager re-evaluates activation when they change.
	WatchLabels() []string
	// Required reports, given the current knowledge, whether the
	// module's services are needed (§IV-B4: "each module is able,
	// given a particular instance of the Knowledge Base, to determine
	// whether its services are required").
	Required(kb *knowledge.Base) bool
	// Activate is called when the manager activates the module.
	Activate(ctx *Context)
	// Deactivate is called when the manager deactivates the module.
	Deactivate()
	// HandlePacket processes one captured packet while active.
	HandlePacket(c *packet.Captured)
}

// Factory builds a module instance with the given parameters.
type Factory func(params map[string]string) (Module, error)

// Registry maps module names to factories, enabling the
// configuration-file-driven instantiation of §V.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory under the given name. Re-registering a name
// replaces the factory (supporting module upgrades without recompiling
// the rest of the system).
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[name] = f
}

// New instantiates a registered module by name.
func (r *Registry) New(name string, params map[string]string) (Module, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("module: unknown module %q", name)
	}
	return f(params)
}

// Names returns all registered module names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
