package module

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// bombModule panics on HandlePacket while armed.
type bombModule struct {
	fakeModule
	armed bool
}

func (b *bombModule) HandlePacket(c *packet.Captured) {
	b.packets++
	if b.armed {
		panic("crafted frame")
	}
}

// wireSupervisorMetrics attaches a fresh registry's supervisor metrics
// and returns the registry for assertions.
func wireSupervisorMetrics(m *Manager) *telemetry.Registry {
	tel := telemetry.NewRegistry()
	m.SetMetrics(ManagerMetrics{
		Packets:       tel.Counter("kalis_packets_total", "t"),
		ActiveModules: tel.Gauge("kalis_modules_active", "t"),
		PacketLatency: tel.HistogramVec("kalis_module_packet_seconds", "module", "t", nil),
		Panics:        tel.CounterVec("kalis_module_panics_total", "module", "t"),
		Quarantined:   tel.Gauge("kalis_module_quarantined", "t"),
		BreakerTrips:  tel.Counter("kalis_breaker_trips_total", "t"),
	})
	return tel
}

func pktAt(sec int64) *packet.Captured {
	return &packet.Captured{Time: time.Unix(sec, 0), Kind: packet.KindUDP}
}

func TestPanicQuarantineProbationReadmission(t *testing.T) {
	m, _ := newTestManager(true)
	bomb := &bombModule{fakeModule: fakeModule{name: "bomb", kind: KindDetection}}
	good := &fakeModule{name: "good", kind: KindSensing}
	m.Install(bomb, nil)
	m.Install(good, nil)
	wireSupervisorMetrics(m)
	m.SetSupervisor(SupervisorConfig{
		Backoff:      10 * time.Second,
		MaxBackoff:   40 * time.Second,
		ProbePackets: 2,
	})

	// The panic is contained: the node keeps running, the offender is
	// quarantined, the healthy module still sees traffic.
	bomb.armed = true
	m.HandlePacket(pktAt(100))
	if got := m.Quarantined(); len(got) != 1 || got[0] != "bomb" {
		t.Fatalf("Quarantined = %v", got)
	}
	if h := m.Health(); h["bomb"] != "quarantined" || h["good"] != "healthy" {
		t.Fatalf("Health = %v", h)
	}
	if m.LastPanic("bomb") != "crafted frame" {
		t.Errorf("LastPanic = %q", m.LastPanic("bomb"))
	}
	bomb.armed = false
	m.HandlePacket(pktAt(101))
	if bomb.packets != 1 {
		t.Fatalf("quarantined module saw traffic: %d packets", bomb.packets)
	}
	if good.packets != 2 {
		t.Fatalf("healthy module starved: %d packets", good.packets)
	}

	// Backoff elapses on the virtual capture clock: the module returns
	// on probation and is fully re-admitted after clean probes.
	m.HandlePacket(pktAt(110)) // revival scan flips to probing, probe 1/2
	if h := m.Health(); h["bomb"] != "probing" {
		t.Fatalf("Health after backoff = %v", h)
	}
	m.HandlePacket(pktAt(111)) // probe 2/2
	if h := m.Health(); h["bomb"] != "healthy" {
		t.Fatalf("Health after probes = %v", h)
	}
	if got := m.Quarantined(); len(got) != 0 {
		t.Fatalf("Quarantined after re-admission = %v", got)
	}
	if bomb.packets != 3 {
		t.Errorf("re-admitted module packets = %d", bomb.packets)
	}
}

// TestHealthPublishedAsCollectiveKnowggets checks that every supervisor
// transition lands in the Knowledge Base as a ModuleHealth.<name>
// collective knowgget, so peer Kalis nodes can correlate module crashes
// across the network.
func TestHealthPublishedAsCollectiveKnowggets(t *testing.T) {
	m, kb := newTestManager(true)
	var mu sync.Mutex
	var synced []knowledge.Knowgget
	kb.SetSync(func(k knowledge.Knowgget) {
		mu.Lock()
		synced = append(synced, k)
		mu.Unlock()
	})
	bomb := &bombModule{fakeModule: fakeModule{name: "bomb", kind: KindDetection}}
	m.Install(bomb, nil)
	wireSupervisorMetrics(m)
	m.SetSupervisor(SupervisorConfig{
		Backoff:      10 * time.Second,
		MaxBackoff:   40 * time.Second,
		ProbePackets: 2,
	})

	health := func() string {
		v, _ := kb.Value("ModuleHealth.bomb")
		return v
	}

	bomb.armed = true
	m.HandlePacket(pktAt(100))
	if got := health(); got != "quarantined" {
		t.Fatalf("ModuleHealth.bomb after panic = %q, want quarantined", got)
	}

	bomb.armed = false
	m.HandlePacket(pktAt(110)) // backoff elapsed: probation
	if got := health(); got != "probing" {
		t.Fatalf("ModuleHealth.bomb after backoff = %q, want probing", got)
	}
	m.HandlePacket(pktAt(111)) // clean probe: re-admitted
	if got := health(); got != "healthy" {
		t.Fatalf("ModuleHealth.bomb after probe = %q, want healthy", got)
	}

	// The knowggets are collective: each transition reached the peer
	// synchronization hook.
	mu.Lock()
	defer mu.Unlock()
	var states []string
	for _, k := range synced {
		if k.Label != "ModuleHealth.bomb" {
			continue
		}
		if !k.Collective {
			t.Errorf("ModuleHealth knowgget not marked collective: %+v", k)
		}
		states = append(states, k.Value)
	}
	want := []string{"quarantined", "probing", "healthy"}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Errorf("synced health states = %v, want %v", states, want)
	}
}

func TestQuarantineBackoffDoublesAndCaps(t *testing.T) {
	m, _ := newTestManager(true)
	bomb := &bombModule{fakeModule: fakeModule{name: "bomb", kind: KindDetection}, armed: true}
	m.Install(bomb, nil)
	wireSupervisorMetrics(m)
	m.SetSupervisor(SupervisorConfig{
		Backoff:      10 * time.Second,
		MaxBackoff:   15 * time.Second,
		ProbePackets: 1,
	})

	m.HandlePacket(pktAt(0)) // strike 1: backoff 10s, until t=10
	m.HandlePacket(pktAt(5)) // still quarantined
	if bomb.packets != 1 {
		t.Fatalf("dispatched during backoff: %d", bomb.packets)
	}
	m.HandlePacket(pktAt(10)) // probing; panics again → strike 2, capped 15s, until t=25
	if h := m.Health(); h["bomb"] != "quarantined" {
		t.Fatalf("Health = %v", h)
	}
	m.HandlePacket(pktAt(20)) // 10s later: doubled backoff not yet elapsed
	if bomb.packets != 2 {
		t.Fatalf("re-dispatched before doubled backoff: %d", bomb.packets)
	}
	bomb.armed = false
	m.HandlePacket(pktAt(25)) // capped backoff elapsed; clean probe re-admits
	if h := m.Health(); h["bomb"] != "healthy" {
		t.Fatalf("Health = %v", h)
	}
}

func TestActivationPanicQuarantines(t *testing.T) {
	m, _ := newTestManager(true)
	bad := &activateBomb{fakeModule{name: "bad", kind: KindDetection}}
	m.Install(bad, nil)
	wireSupervisorMetrics(m)
	if h := m.Health(); h["bad"] != "quarantined" {
		t.Fatalf("Health after Activate panic = %v", h)
	}
	if m.LastPanic("bad") != "bad wiring" {
		t.Errorf("LastPanic = %q", m.LastPanic("bad"))
	}
}

type activateBomb struct{ fakeModule }

func (a *activateBomb) Activate(*Context) { panic("bad wiring") }

func TestBreakerShedsUnderPressureAndReadmits(t *testing.T) {
	m, _ := newTestManager(true)
	slow := &fakeModule{name: "slow", kind: KindDetection}
	m.Install(slow, nil)
	tel := wireSupervisorMetrics(m)
	pressure := 1000
	m.SetPressure(func() int { return pressure })
	m.SetSupervisor(SupervisorConfig{
		BreakerBudget:     0, // any observed latency is over budget
		BreakerWindow:     1,
		BreakerStrikes:    2,
		PressureThreshold: 512,
		ShedBackoff:       30 * time.Second,
	})

	// Window 1 has no observations yet; windows 2 and 3 each see one
	// over-budget mean → trip on the third packet.
	m.HandlePacket(pktAt(0))
	m.HandlePacket(pktAt(1))
	m.HandlePacket(pktAt(2))
	if h := m.Health(); h["slow"] != "shed" {
		t.Fatalf("Health = %v (want shed)", h)
	}
	if got := slow.packets; got != 2 {
		t.Fatalf("packets before shed = %d", got)
	}
	snap := tel.Snapshot()
	if v := snap["kalis_breaker_trips_total"].Value; fmt.Sprint(v) != "1" {
		t.Errorf("kalis_breaker_trips_total = %v", v)
	}
	if v := snap["kalis_module_quarantined"].Value; fmt.Sprint(v) != "1" {
		t.Errorf("kalis_module_quarantined = %v", v)
	}

	// Backoff elapsed but the queue is still saturated: stay shed.
	m.HandlePacket(pktAt(40))
	if h := m.Health(); h["slow"] != "shed" {
		t.Fatalf("re-admitted under pressure: %v", h)
	}

	// Pressure subsides and the extended backoff elapses: the same
	// packet that triggers the revival scan is dispatched to the
	// re-admitted module.
	pressure = 0
	m.HandlePacket(pktAt(80))
	if h := m.Health(); h["slow"] != "healthy" {
		t.Fatalf("Health after heal = %v", h)
	}
	m.HandlePacket(pktAt(81))
	if slow.packets != 4 {
		t.Errorf("packets after re-admission = %d", slow.packets)
	}
}

// churnModule tracks its own activation with a lock so the -race
// detector sees any Activate/Deactivate vs HandlePacket overlap.
type churnModule struct {
	mu      sync.Mutex
	active  bool
	packets int
}

func (c *churnModule) Name() string          { return "churn" }
func (c *churnModule) Kind() Kind            { return KindDetection }
func (c *churnModule) WatchLabels() []string { return []string{"Multihop"} }
func (c *churnModule) Required(kb *knowledge.Base) bool {
	v, ok := kb.Bool("Multihop")
	return ok && v
}
func (c *churnModule) Activate(*Context) {
	c.mu.Lock()
	c.active = true
	c.mu.Unlock()
}
func (c *churnModule) Deactivate() {
	c.mu.Lock()
	c.active = false
	c.mu.Unlock()
}
func (c *churnModule) HandlePacket(*packet.Captured) {
	c.mu.Lock()
	c.packets++
	c.mu.Unlock()
}

// TestActivationChurnUnderTraffic is the regression test for the
// activation-transition race: two goroutines flip a watched label while
// packets flow, and the module's last-applied transition must match the
// final knowledge state (no stale Context, no interleaved
// Activate/Deactivate), with the race detector watching.
func TestActivationChurnUnderTraffic(t *testing.T) {
	m, kb := newTestManager(true)
	mod := &churnModule{}
	m.Install(mod, nil)
	wireSupervisorMetrics(m)

	const flips = 400
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			kb.PutBool("Multihop", i%2 == 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			kb.PutBool("Multihop", i%2 == 1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			m.HandlePacket(pktAt(int64(i)))
		}
	}()
	wg.Wait()

	// Settle on a known final state; after every reevaluate returns the
	// owner loop guarantees applied == want.
	kb.PutBool("Multihop", true)
	if got := m.Active(); len(got) != 1 || got[0] != "churn" {
		t.Fatalf("Active = %v", got)
	}
	mod.mu.Lock()
	active := mod.active
	mod.mu.Unlock()
	if !active {
		t.Fatal("module last-called with Deactivate despite knowledge wanting it active")
	}

	kb.PutBool("Multihop", false)
	if got := m.Active(); len(got) != 0 {
		t.Fatalf("Active = %v", got)
	}
	mod.mu.Lock()
	active = mod.active
	mod.mu.Unlock()
	if active {
		t.Fatal("module last-called with Activate despite knowledge wanting it inactive")
	}
}
