package core

import (
	"strings"
	"testing"
	"time"

	"kalis/internal/core/kconfig"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

func TestSuggestConfig(t *testing.T) {
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true, InstallAll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()

	// Let the node learn a multi-hop, static 802.15.4 network.
	k.HandleCapture(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), t0, -50))
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * 3 * time.Second)
		k.HandleCapture(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 0, 20, []byte{0x01, uint8(i)}), at, -65))
		k.HandleCapture(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(2, 1, 3, uint8(i), 1, 10, []byte{0x01, uint8(i)}), at.Add(30*time.Millisecond), -55))
	}

	text := k.SuggestConfig()
	cfg, err := kconfig.Parse(text)
	if err != nil {
		t.Fatalf("suggested config does not parse: %v\n%s", err, text)
	}
	names := map[string]bool{}
	for _, m := range cfg.Modules {
		names[m.Name] = true
	}
	// The multi-hop 802.15.4 detection set, no WiFi modules, no
	// sensing modules (features are pinned instead).
	for _, want := range []string{"SelectiveForwardingModule", "BlackholeModule", "SinkholeModule", "WormholeModule"} {
		if !names[want] {
			t.Errorf("suggested config missing %s\n%s", want, text)
		}
	}
	for _, not := range []string{"ICMPFloodModule", "SmurfModule", "TopologyDiscoveryModule"} {
		if names[not] {
			t.Errorf("suggested config should not list %s\n%s", not, text)
		}
	}
	labels := map[string]string{}
	for _, kg := range cfg.Knowggets {
		labels[kg.Label] = kg.Value
	}
	if labels["Multihop"] != "true" {
		t.Errorf("Multihop knowgget = %q", labels["Multihop"])
	}
	if labels["Mediums.ieee802.15.4"] != "true" {
		t.Errorf("medium knowgget missing: %v", labels)
	}

	// The constrained deployment: a new node with this config and no
	// default library detects the same attack immediately.
	small, err := New(Config{NodeID: "tiny", KnowledgeDriven: true, ConfigText: text})
	if err != nil {
		t.Fatalf("deploying suggested config: %v", err)
	}
	defer small.Close()
	active := strings.Join(small.ActiveModules(), ",")
	if !strings.Contains(active, "SelectiveForwardingModule") {
		t.Errorf("constrained node modules: %s", active)
	}
	// No discovery modules needed — features are static knowledge.
	if strings.Contains(active, "TopologyDiscoveryModule") {
		t.Errorf("constrained node still discovering: %s", active)
	}
}
