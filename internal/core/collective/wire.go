package collective

// Binary wire format for the anti-entropy gossip protocol, following
// the repo's compact-codec conventions (internal/trace,
// internal/persist): uvarint length-prefixed strings and a CRC32-IEEE
// trailer over the whole payload. The envelope around it is still the
// pre-shared-passphrase AES-GCM seal, so the checksum guards against
// protocol bugs and in-sim corruption, not attackers.
//
//	[0]     format version (wireVersion)
//	[1]     message kind
//	string  sender node ID
//	kind-specific body:
//	  beacon:   (empty)
//	  gossip:   digest, delta sections (piggybacked dirty flush)
//	  deltaReq: digest (creator → since watermark, i.e. "send me
//	            everything newer than this")
//	  delta:    delta sections
//	[..4]   crc32(IEEE) over all preceding bytes, little-endian
//
//	digest:  uvarint n, then n × (string creator, uvarint version)
//	delta sections: uvarint n, then n ×
//	  (string creator, uvarint from, uvarint upTo, uvarint m,
//	   m × knowgget)
//	knowgget: string label, string entity, string value,
//	          uvarint version  (creator implied by the section)
//
// A delta section is a *watermark-contiguous* state delta: it asserts
// "these entries are everything of creator C you are missing between
// version from and version upTo" (same-key superseded versions are
// elided — their effect is overwritten anyway). The receiver advances
// its watermark vv[C] to upTo only when vv[C] >= from; a gap means a
// previous chunk was lost, so values are still applied
// (version-guarded) but the watermark stays put and the next digest
// exchange pulls the gap. This keeps watermarks honest under loss and
// reordering: a node never claims contiguous knowledge it does not
// hold.
//
// Decoding is strict and fully validating: caps bound every count so a
// corrupt length claim cannot force a giant allocation, trailing bytes
// are an error, and nothing is applied until the whole message has
// decoded — malformed datagrams are counted and dropped, never
// partially applied.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"kalis/internal/core/knowledge"
)

const wireVersion = byte(1)

const (
	kindBeacon   = byte(1)
	kindGossip   = byte(2)
	kindDeltaReq = byte(3)
	kindDelta    = byte(4)
)

// Decode caps. A digest entry is ≥3 bytes and a knowgget ≥5, so these
// also bound the decoded size of any datagram that passes the CRC.
const (
	maxWireString     = 64 << 10
	maxDigestEntries  = 4096
	maxDeltaSections  = 256
	maxSectionEntries = 4096
)

// errWire is the single decode error: the receive path counts
// malformed datagrams, it never inspects why they were malformed.
var errWire = errors.New("collective: malformed wire message")

// digestEntry is one creator's slot in a version vector.
type digestEntry struct {
	creator string
	version uint64
}

// deltaSection carries one creator's watermark-contiguous state delta.
type deltaSection struct {
	creator    string
	from, upTo uint64
	entries    []knowledge.Knowgget // Creator implied by the section
}

// wireMsg is one decoded protocol message.
type wireMsg struct {
	kind     byte
	sender   string
	digest   []digestEntry  // kindGossip: sender's full version vector
	want     []digestEntry  // kindDeltaReq: creator → since watermark
	sections []deltaSection // kindGossip piggyback and kindDelta
}

func appendWireString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendDigest(buf []byte, d []digestEntry) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d)))
	for _, e := range d {
		buf = appendWireString(buf, e.creator)
		buf = binary.AppendUvarint(buf, e.version)
	}
	return buf
}

func appendSections(buf []byte, secs []deltaSection) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(secs)))
	for _, s := range secs {
		buf = appendWireString(buf, s.creator)
		buf = binary.AppendUvarint(buf, s.from)
		buf = binary.AppendUvarint(buf, s.upTo)
		buf = binary.AppendUvarint(buf, uint64(len(s.entries)))
		for _, k := range s.entries {
			buf = appendWireString(buf, k.Label)
			buf = appendWireString(buf, k.Entity)
			buf = appendWireString(buf, k.Value)
			buf = binary.AppendUvarint(buf, k.Version)
		}
	}
	return buf
}

// encodeWire serializes a message and appends the CRC trailer. It is
// on the gossip-round hot path, so it avoids fmt and grows one
// pre-sized buffer.
func encodeWire(m *wireMsg) []byte {
	buf := make([]byte, 0, 512)
	buf = append(buf, wireVersion, m.kind)
	buf = appendWireString(buf, m.sender)
	switch m.kind {
	case kindGossip:
		buf = appendDigest(buf, m.digest)
		buf = appendSections(buf, m.sections)
	case kindDeltaReq:
		buf = appendDigest(buf, m.want)
	case kindDelta:
		buf = appendSections(buf, m.sections)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(buf))
	return append(buf, sum[:]...)
}

func readWireUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, errWire
	}
	return v, buf[n:], nil
}

func readWireString(buf []byte) (string, []byte, error) {
	n, buf, err := readWireUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > maxWireString || n > uint64(len(buf)) {
		return "", nil, errWire
	}
	return string(buf[:n]), buf[n:], nil
}

func readDigest(buf []byte) ([]digestEntry, []byte, error) {
	n, buf, err := readWireUvarint(buf)
	if err != nil || n > maxDigestEntries {
		return nil, nil, errWire
	}
	out := make([]digestEntry, 0, min(int(n), 64))
	for i := uint64(0); i < n; i++ {
		var e digestEntry
		if e.creator, buf, err = readWireString(buf); err != nil {
			return nil, nil, err
		}
		if e.version, buf, err = readWireUvarint(buf); err != nil {
			return nil, nil, err
		}
		out = append(out, e)
	}
	return out, buf, nil
}

func readSections(buf []byte) ([]deltaSection, []byte, error) {
	n, buf, err := readWireUvarint(buf)
	if err != nil || n > maxDeltaSections {
		return nil, nil, errWire
	}
	out := make([]deltaSection, 0, min(int(n), 16))
	for i := uint64(0); i < n; i++ {
		var s deltaSection
		if s.creator, buf, err = readWireString(buf); err != nil {
			return nil, nil, err
		}
		if s.from, buf, err = readWireUvarint(buf); err != nil {
			return nil, nil, err
		}
		if s.upTo, buf, err = readWireUvarint(buf); err != nil {
			return nil, nil, err
		}
		var m uint64
		if m, buf, err = readWireUvarint(buf); err != nil || m > maxSectionEntries {
			return nil, nil, errWire
		}
		s.entries = make([]knowledge.Knowgget, 0, min(int(m), 64))
		for j := uint64(0); j < m; j++ {
			var k knowledge.Knowgget
			if k.Label, buf, err = readWireString(buf); err != nil {
				return nil, nil, err
			}
			if k.Entity, buf, err = readWireString(buf); err != nil {
				return nil, nil, err
			}
			if k.Value, buf, err = readWireString(buf); err != nil {
				return nil, nil, err
			}
			if k.Version, buf, err = readWireUvarint(buf); err != nil {
				return nil, nil, err
			}
			s.entries = append(s.entries, k)
		}
		out = append(out, s)
	}
	return out, buf, nil
}

// decodeWire parses and fully validates one sealed payload. It either
// returns a complete message or errWire — never a partial result.
func decodeWire(data []byte) (*wireMsg, error) {
	if len(data) < 7 { // version + kind + empty sender + crc
		return nil, errWire
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.ChecksumIEEE(body) {
		return nil, errWire
	}
	if body[0] != wireVersion {
		return nil, errWire
	}
	m := &wireMsg{kind: body[1]}
	buf := body[2:]
	var err error
	if m.sender, buf, err = readWireString(buf); err != nil {
		return nil, err
	}
	switch m.kind {
	case kindBeacon:
	case kindGossip:
		if m.digest, buf, err = readDigest(buf); err != nil {
			return nil, err
		}
		if m.sections, buf, err = readSections(buf); err != nil {
			return nil, err
		}
	case kindDeltaReq:
		if m.want, buf, err = readDigest(buf); err != nil {
			return nil, err
		}
	case kindDelta:
		if m.sections, buf, err = readSections(buf); err != nil {
			return nil, err
		}
	default:
		return nil, errWire
	}
	if len(buf) != 0 {
		return nil, errWire
	}
	return m, nil
}
