package collective

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/telemetry"
)

// message is the wire format exchanged between Kalis nodes (inside the
// encrypted envelope).
type message struct {
	Type      string         `json:"type"` // "beacon" or "update"
	NodeID    string         `json:"nodeId"`
	Knowggets []wireKnowgget `json:"knowggets,omitempty"`
}

type wireKnowgget struct {
	Label   string `json:"l"`
	Value   string `json:"v"`
	Creator string `json:"c"`
	Entity  string `json:"e,omitempty"`
}

const (
	msgBeacon = "beacon"
	msgUpdate = "update"
)

// Node is the collective-knowledge manager of one Kalis node: it
// beacons its presence, tracks discovered peers, pushes local
// collective knowggets to every peer, and accepts (creator-verified)
// updates from peers into the Knowledge Base.
type Node struct {
	kb        *knowledge.Base
	transport Transport
	aead      cipher.AEAD

	mu    sync.Mutex
	peers map[string]*peerInfo // Kalis node ID → liveness record

	// Resilience knobs (see resilience.go). now and sleep are
	// injectable so simulations and tests run on a virtual clock.
	now          func() time.Time
	sleep        func(time.Duration)
	peerTTL      time.Duration
	maxPeers     int
	retries      int
	retryBackoff time.Duration

	// Stats.
	sent, received, rejected      int
	evictions, retried, malformed int

	met Metrics

	stop chan struct{}
	done chan struct{}
}

// peerInfo is one discovered peer's record: its transport address and
// when it was last heard from (beacon or update), driving TTL
// eviction.
type peerInfo struct {
	addr     string
	lastSeen time.Time
}

// Metrics are the collective layer's optional telemetry hooks;
// zero-value fields are skipped (all telemetry types are nil-safe).
type Metrics struct {
	// SyncSent counts knowgget updates pushed to peers.
	SyncSent *telemetry.Counter
	// SyncReceived counts creator-verified updates accepted from peers.
	SyncReceived *telemetry.Counter
	// SyncRejected counts updates refused (creator mismatch, replays).
	SyncRejected *telemetry.Counter
	// Peers tracks the number of discovered peer Kalis nodes.
	Peers *telemetry.Gauge
	// Evictions counts peers evicted for silence (TTL) or to respect
	// the peer-table bound.
	Evictions *telemetry.Counter
	// SendRetries counts retransmissions after transient Send failures.
	SendRetries *telemetry.Counter
	// Malformed counts datagrams that failed to decrypt or parse —
	// counted, never fatal.
	Malformed *telemetry.Counter
}

// SetMetrics installs telemetry hooks. Call it before traffic flows.
func (n *Node) SetMetrics(met Metrics) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.met = met
}

// NewNode creates a collective-knowledge manager. The pre-shared
// passphrase keys the AES-GCM channel ("all communications among the
// nodes are encrypted", §V).
func NewNode(kb *knowledge.Base, t Transport, passphrase string) (*Node, error) {
	key := sha256.Sum256([]byte(passphrase))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("collective: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("collective: gcm: %w", err)
	}
	n := &Node{
		kb:        kb,
		transport: t,
		aead:      aead,
		peers:     make(map[string]*peerInfo),
		now:       time.Now,
		sleep:     time.Sleep,
		// Resilience defaults (see resilience.go): evict peers silent
		// for 5 minutes, bound the table at 256 peers, retry transient
		// sends twice with 50ms backoff.
		peerTTL:      5 * time.Minute,
		maxPeers:     256,
		retries:      2,
		retryBackoff: 50 * time.Millisecond,
	}
	t.SetHandler(n.receive)
	kb.SetSync(n.push)
	return n, nil
}

// Beacon broadcasts one discovery advertisement and sweeps the peer
// table for silent peers. Call it periodically (a real deployment uses
// RunBeacon; simulations drive it from the virtual clock).
func (n *Node) Beacon() {
	n.sweep()
	data, err := n.seal(&message{Type: msgBeacon, NodeID: n.kb.LocalID()})
	if err != nil {
		return
	}
	_ = n.transport.Broadcast(data)
}

// RunBeacon starts periodic beaconing in a background goroutine; call
// StopBeacon to stop and join it.
func (n *Node) RunBeacon(interval time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stop != nil {
		return
	}
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				n.Beacon()
			case <-stop:
				return
			}
		}
	}(n.stop, n.done)
}

// StopBeacon stops the beaconing goroutine and waits for it to exit.
func (n *Node) StopBeacon() {
	n.mu.Lock()
	stop, done := n.stop, n.done
	n.stop, n.done = nil, nil
	n.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Peers returns the discovered peer node IDs, sorted.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stats returns message counters: updates sent, accepted and rejected.
func (n *Node) Stats() (sent, received, rejected int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.received, n.rejected
}

// push propagates one local collective knowgget to every known peer;
// it is installed as the Knowledge Base's sync hook.
//
//lint:coldpath collective sync runs once per collective-knowgget change (cooldown-gated in the detection modules), not per packet; it marshals, seals and sends datagrams by design
func (n *Node) push(k knowledge.Knowgget) {
	n.mu.Lock()
	addrs := make([]string, 0, len(n.peers))
	for _, p := range n.peers {
		addrs = append(addrs, p.addr)
	}
	n.sent += len(addrs)
	n.met.SyncSent.Add(uint64(len(addrs)))
	n.mu.Unlock()
	if len(addrs) == 0 {
		return
	}
	data, err := n.seal(&message{
		Type:      msgUpdate,
		NodeID:    n.kb.LocalID(),
		Knowggets: []wireKnowgget{{Label: k.Label, Value: k.Value, Creator: k.Creator, Entity: k.Entity}},
	})
	if err != nil {
		return
	}
	for _, addr := range addrs {
		n.sendReliable(addr, data)
	}
}

// receive handles one datagram from the transport. Malformed or
// corrupt envelopes (failed decrypt, bad JSON) are counted and
// discarded — a hostile or lossy network must never crash the
// collective layer.
func (n *Node) receive(fromAddr string, data []byte) {
	msg, err := n.open(data)
	if err != nil {
		n.mu.Lock()
		n.malformed++
		n.met.Malformed.Inc()
		n.mu.Unlock()
		return
	}
	if msg.NodeID == n.kb.LocalID() {
		return
	}
	switch msg.Type {
	case msgBeacon:
		n.mu.Lock()
		_, known := n.peers[msg.NodeID]
		n.admitLocked(msg.NodeID, fromAddr)
		n.met.Peers.Set(int64(len(n.peers)))
		n.mu.Unlock()
		if !known {
			n.kb.PutInt("Peers", len(n.Peers()))
			n.syncTo(fromAddr)
		}
	case msgUpdate:
		n.touch(msg.NodeID, fromAddr)
		for _, wk := range msg.Knowggets {
			k := knowledge.Knowgget{Label: wk.Label, Value: wk.Value, Creator: wk.Creator, Entity: wk.Entity}
			// AcceptRemote runs outside n.mu: it fires Knowledge Base
			// subscriptions, which may re-enter this node (e.g. a
			// module publishing a new collective knowgget in reaction).
			accepted := n.kb.AcceptRemote(msg.NodeID, k)
			n.mu.Lock()
			if accepted {
				n.received++
				n.met.SyncReceived.Inc()
			} else {
				n.rejected++
				n.met.SyncRejected.Inc()
			}
			n.mu.Unlock()
		}
	}
}

// syncTo sends the full set of local collective knowggets to a
// newly-discovered peer.
func (n *Node) syncTo(addr string) {
	var wks []wireKnowgget
	for _, k := range n.kb.QueryLocal() {
		if k.Collective {
			wks = append(wks, wireKnowgget{Label: k.Label, Value: k.Value, Creator: k.Creator, Entity: k.Entity})
		}
	}
	if len(wks) == 0 {
		return
	}
	data, err := n.seal(&message{Type: msgUpdate, NodeID: n.kb.LocalID(), Knowggets: wks})
	if err != nil {
		return
	}
	n.sendReliable(addr, data)
}

// seal encrypts a message with AES-GCM (random nonce prepended).
func (n *Node) seal(msg *message) ([]byte, error) {
	plain, err := json.Marshal(msg)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, n.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return n.aead.Seal(nonce, nonce, plain, nil), nil
}

// open decrypts and parses a datagram.
func (n *Node) open(data []byte) (*message, error) {
	ns := n.aead.NonceSize()
	if len(data) < ns {
		return nil, fmt.Errorf("collective: short datagram")
	}
	plain, err := n.aead.Open(nil, data[:ns], data[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("collective: decrypt: %w", err)
	}
	var msg message
	if err := json.Unmarshal(plain, &msg); err != nil {
		return nil, fmt.Errorf("collective: parse: %w", err)
	}
	return &msg, nil
}

// Close stops beaconing and closes the transport.
func (n *Node) Close() error {
	n.StopBeacon()
	return n.transport.Close()
}
