// Package collective implements Kalis' collective-knowledge layer
// (§IV-B3, §V): cooperating Kalis nodes share collective knowggets
// over an encrypted channel. The original LAN design — push a full
// snapshot to every beacon-discovered peer and re-push every update to
// the whole peer table — is O(peers × knowggets) bytes per round and
// collapses at fleet scale, so dissemination is epidemic anti-entropy
// instead: each gossip round sends the node's per-creator version
// vector (a compact digest) to a small random subset of peers
// (capped fan-out, default 3), piggybacking the coalesced dirty local
// updates; receivers compare digests against their watermarks and
// exchange only missing deltas. A full snapshot push survives only as
// the first-contact bootstrap when a beacon reveals a new peer.
package collective

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"hash/crc32"
	mrand "math/rand"
	"sort"
	"sync"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/telemetry"
)

// Node is the collective-knowledge manager of one Kalis node: it
// beacons its presence, tracks discovered peers, runs anti-entropy
// gossip rounds over them, and version-checks gossiped knowggets into
// the Knowledge Base.
type Node struct {
	kb        *knowledge.Base
	transport Transport
	aead      cipher.AEAD

	mu    sync.Mutex
	peers map[string]*peerInfo // Kalis node ID → liveness record

	// Gossip state: vv is the per-creator watermark vector ("holds all
	// of that creator's collective state up to this version"), dirty
	// buffers local collective changes between gossip ticks, and
	// flushedVer is the local version covered by the last flush —
	// together they form the watermark-contiguous piggyback section.
	vv         map[string]uint64
	dirty      map[string]knowledge.Knowgget
	flushedVer uint64
	fanout     int
	legacyPush bool
	rng        *mrand.Rand

	// Resilience knobs (see resilience.go). now and sleep are
	// injectable so simulations and tests run on a virtual clock.
	now          func() time.Time
	sleep        func(time.Duration)
	peerTTL      time.Duration
	maxPeers     int
	retries      int
	retryBackoff time.Duration

	// Stats.
	sent, received, rejected      int
	evictions, retried, malformed int
	digestsSent, digestsReceived  int
	deltasSent, deltasReceived    int
	bytesSent, bytesReceived      uint64

	met Metrics

	stop chan struct{}
	done chan struct{}
}

// peerInfo is one discovered peer's record: its transport address and
// when it was last heard from (any authenticated message), driving TTL
// eviction.
type peerInfo struct {
	addr     string
	lastSeen time.Time
}

// Metrics are the collective layer's optional telemetry hooks;
// zero-value fields are skipped (all telemetry types are nil-safe).
type Metrics struct {
	// SyncSent counts knowgget entries sent in delta sections.
	SyncSent *telemetry.Counter
	// SyncReceived counts version-accepted entries applied from peers.
	SyncReceived *telemetry.Counter
	// SyncRejected counts entries refused (stale version, ownership).
	SyncRejected *telemetry.Counter
	// Peers tracks the number of discovered peer Kalis nodes.
	Peers *telemetry.Gauge
	// Evictions counts peers evicted for silence (TTL) or to respect
	// the peer-table bound.
	Evictions *telemetry.Counter
	// SendRetries counts retransmissions after transient Send failures.
	SendRetries *telemetry.Counter
	// Malformed counts datagrams that failed to decrypt or parse —
	// counted, never fatal.
	Malformed *telemetry.Counter
	// DigestsSent / DigestsReceived count gossip digest messages.
	DigestsSent     *telemetry.Counter
	DigestsReceived *telemetry.Counter
	// DeltasSent / DeltasReceived count delta messages exchanged.
	DeltasSent     *telemetry.Counter
	DeltasReceived *telemetry.Counter
	// BytesSent / BytesReceived count sealed wire bytes, the
	// bytes-on-wire series the fleet experiments chart.
	BytesSent     *telemetry.Counter
	BytesReceived *telemetry.Counter
}

// SetMetrics installs telemetry hooks. Call it before traffic flows.
func (n *Node) SetMetrics(met Metrics) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.met = met
}

// NewNode creates a collective-knowledge manager. The pre-shared
// passphrase keys the AES-GCM channel ("all communications among the
// nodes are encrypted", §V).
func NewNode(kb *knowledge.Base, t Transport, passphrase string) (*Node, error) {
	key := sha256.Sum256([]byte(passphrase))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("collective: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("collective: gcm: %w", err)
	}
	n := &Node{
		kb:        kb,
		transport: t,
		aead:      aead,
		peers:     make(map[string]*peerInfo),
		vv:        kb.Digest(), // restored state seeds the watermarks
		dirty:     make(map[string]knowledge.Knowgget, 8),
		fanout:    3,
		// Deterministic per-node fan-out selection: the node ID seeds
		// the RNG, so a simulation re-run picks the same peers while
		// distinct nodes still de-correlate.
		rng:   mrand.New(mrand.NewSource(int64(crc32.ChecksumIEEE([]byte(kb.LocalID()))) + 1)),
		now:   time.Now,
		sleep: time.Sleep,
		// Resilience defaults (see resilience.go): evict peers silent
		// for 5 minutes, bound the table at 256 peers, retry transient
		// sends twice with 50ms backoff.
		peerTTL:      5 * time.Minute,
		maxPeers:     256,
		retries:      2,
		retryBackoff: 50 * time.Millisecond,
	}
	t.SetHandler(n.receive)
	kb.SetSync(n.push)
	return n, nil
}

// Beacon broadcasts one discovery advertisement, sweeps the peer table
// for silent peers, and (in gossip mode) runs one anti-entropy round.
// Call it periodically (a real deployment uses RunBeacon; simulations
// drive it from the virtual clock).
func (n *Node) Beacon() {
	n.sweep()
	data, err := n.seal(encodeWire(&wireMsg{kind: kindBeacon, sender: n.kb.LocalID()}))
	if err != nil {
		return
	}
	n.mu.Lock()
	n.bytesSent += uint64(len(data))
	n.met.BytesSent.Add(uint64(len(data)))
	legacy := n.legacyPush
	n.mu.Unlock()
	_ = n.transport.Broadcast(data)
	if !legacy {
		n.gossipRound()
	}
}

// Gossip runs one anti-entropy round immediately: flush the dirty
// local updates and exchange digests with up to fanout random peers.
func (n *Node) Gossip() { n.gossipRound() }

// SetFanout caps how many random peers each gossip round contacts
// (0 = every peer). The default is 3: epidemic dissemination reaches
// the whole fleet in O(log N) rounds regardless of peer-table size.
func (n *Node) SetFanout(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fanout = k
}

// SetLegacyPush switches the node back to the pre-gossip protocol —
// every local change is immediately pushed to every peer — used as the
// bytes-on-wire baseline in the fleet experiments.
func (n *Node) SetLegacyPush(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.legacyPush = on
}

// SetGossipSeed reseeds the fan-out selection RNG (simulations).
func (n *Node) SetGossipSeed(seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rng = mrand.New(mrand.NewSource(seed))
}

// AddPeer inserts a peer without waiting for its beacon — static
// membership for simulations and fixed fleet topologies.
func (n *Node) AddPeer(id, addr string) {
	if id == n.kb.LocalID() {
		return
	}
	n.mu.Lock()
	n.admitLocked(id, addr)
	n.met.Peers.Set(int64(len(n.peers)))
	count := len(n.peers)
	n.mu.Unlock()
	n.kb.PutInt("Peers", count)
}

// RunBeacon starts periodic beaconing in a background goroutine; call
// StopBeacon to stop and join it.
func (n *Node) RunBeacon(interval time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stop != nil {
		return
	}
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				n.Beacon()
			case <-stop:
				return
			}
		}
	}(n.stop, n.done)
}

// StopBeacon stops the beaconing goroutine and waits for it to exit.
func (n *Node) StopBeacon() {
	n.mu.Lock()
	stop, done := n.stop, n.done
	n.stop, n.done = nil, nil
	n.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Peers returns the discovered peer node IDs, sorted.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stats returns entry counters: knowggets sent, accepted and rejected.
func (n *Node) Stats() (sent, received, rejected int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.received, n.rejected
}

// GossipStats returns protocol message counters: gossip digests and
// delta messages sent and received.
func (n *Node) GossipStats() (digestsSent, digestsReceived, deltasSent, deltasReceived int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.digestsSent, n.digestsReceived, n.deltasSent, n.deltasReceived
}

// WireStats returns sealed bytes sent and received on the wire.
func (n *Node) WireStats() (bytesSent, bytesReceived uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytesSent, n.bytesReceived
}

// VersionVector returns a copy of the node's per-creator watermarks.
func (n *Node) VersionVector() map[string]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]uint64, len(n.vv))
	for c, v := range n.vv {
		out[c] = v
	}
	return out
}

// push is installed as the Knowledge Base's sync hook. In gossip mode
// it only buffers the dirty key — the change rides the next gossip
// tick, coalesced with everything else that changed since the last
// flush. In legacy mode it reproduces the original per-update push to
// every peer.
//
//lint:coldpath collective sync runs once per collective-knowgget change (cooldown-gated in the detection modules), not per packet; gossip mode buffers one dirty key, legacy mode seals and sends by design
func (n *Node) push(k knowledge.Knowgget) {
	key := k.Key()
	n.mu.Lock()
	if !n.legacyPush {
		n.dirty[key] = k
		n.mu.Unlock()
		return
	}
	addrs := make([]string, 0, len(n.peers))
	for _, p := range n.peers {
		addrs = append(addrs, p.addr)
	}
	n.sent += len(addrs)
	n.met.SyncSent.Add(uint64(len(addrs)))
	n.deltasSent += len(addrs)
	n.met.DeltasSent.Add(uint64(len(addrs)))
	n.mu.Unlock()
	if len(addrs) == 0 {
		return
	}
	// from=0, upTo=0: a pure value push that never moves watermarks.
	data, err := n.seal(encodeWire(&wireMsg{
		kind:     kindDelta,
		sender:   n.kb.LocalID(),
		sections: []deltaSection{{creator: k.Creator, entries: []knowledge.Knowgget{k}}},
	}))
	if err != nil {
		return
	}
	for _, addr := range addrs {
		n.sendReliable(addr, data)
	}
}

// gossipRound runs one anti-entropy round: pick up to fanout random
// peers, send them the full digest (per-creator version vector) with
// the coalesced dirty updates piggybacked as one watermark-contiguous
// delta section. Receivers reconcile and pull or push what differs.
func (n *Node) gossipRound() {
	local := n.kb.LocalID()
	dig := n.kb.Digest()

	n.mu.Lock()
	targets := make([]string, 0, len(n.peers))
	for _, p := range n.peers {
		targets = append(targets, p.addr)
	}
	if len(targets) == 0 {
		n.mu.Unlock()
		return
	}
	if n.fanout > 0 && len(targets) > n.fanout {
		// Partial Fisher-Yates: the first fanout slots become a
		// uniform random subset.
		for i := 0; i < n.fanout; i++ {
			j := i + n.rng.Intn(len(targets)-i)
			targets[i], targets[j] = targets[j], targets[i]
		}
		targets = targets[:n.fanout]
	}
	dirty := n.dirty
	var from, upTo uint64
	if len(dirty) > 0 {
		n.dirty = make(map[string]knowledge.Knowgget, 8)
		from = n.flushedVer
		for _, k := range dirty {
			if k.Version > upTo {
				upTo = k.Version
			}
		}
		n.flushedVer = upTo
	}
	n.mu.Unlock()

	msg := wireMsg{kind: kindGossip, sender: local}
	msg.digest = make([]digestEntry, 0, len(dig))
	for c, v := range dig {
		msg.digest = append(msg.digest, digestEntry{creator: c, version: v})
	}
	sort.Slice(msg.digest, func(i, j int) bool { return msg.digest[i].creator < msg.digest[j].creator })
	if len(dirty) > 0 {
		sec := deltaSection{creator: local, from: from, upTo: upTo}
		sec.entries = make([]knowledge.Knowgget, 0, len(dirty))
		for _, k := range dirty {
			sec.entries = append(sec.entries, k)
		}
		sort.Slice(sec.entries, func(i, j int) bool { return sec.entries[i].Version < sec.entries[j].Version })
		msg.sections = make([]deltaSection, 0, 1)
		msg.sections = append(msg.sections, sec)
	}
	data, err := n.seal(encodeWire(&msg))
	if err != nil {
		return
	}

	n.mu.Lock()
	n.digestsSent += len(targets)
	n.met.DigestsSent.Add(uint64(len(targets)))
	if len(dirty) > 0 {
		n.sent += len(dirty) * len(targets)
		n.met.SyncSent.Add(uint64(len(dirty) * len(targets)))
		n.deltasSent += len(targets)
		n.met.DeltasSent.Add(uint64(len(targets)))
	}
	n.mu.Unlock()
	for _, addr := range targets {
		n.sendReliable(addr, data)
	}
}

// receive handles one datagram from the transport. Malformed or
// corrupt envelopes (failed decrypt, bad codec, bad checksum) are
// counted and discarded — a hostile or lossy network must never crash
// the collective layer, and a malformed message is never partially
// applied (decodeWire validates everything up front).
func (n *Node) receive(fromAddr string, data []byte) {
	payload, err := n.open(data)
	if err != nil {
		n.countMalformed()
		return
	}
	msg, err := decodeWire(payload)
	if err != nil {
		n.countMalformed()
		return
	}
	local := n.kb.LocalID()
	if msg.sender == local || msg.sender == "" {
		return
	}
	n.mu.Lock()
	n.bytesReceived += uint64(len(data))
	n.met.BytesReceived.Add(uint64(len(data)))
	n.mu.Unlock()

	switch msg.kind {
	case kindBeacon:
		n.mu.Lock()
		_, known := n.peers[msg.sender]
		n.admitLocked(msg.sender, fromAddr)
		n.met.Peers.Set(int64(len(n.peers)))
		n.mu.Unlock()
		if !known {
			n.kb.PutInt("Peers", len(n.Peers()))
			n.syncTo(fromAddr)
		}
	case kindGossip:
		n.admitOrTouch(msg.sender, fromAddr)
		n.mu.Lock()
		n.digestsReceived++
		n.met.DigestsReceived.Inc()
		n.mu.Unlock()
		n.applySections(msg.sender, msg.sections)
		n.reconcile(msg.sender, fromAddr, msg.digest)
	case kindDeltaReq:
		n.touch(msg.sender, fromAddr)
		n.sendDeltas(fromAddr, msg.want)
	case kindDelta:
		n.touch(msg.sender, fromAddr)
		n.applySections(msg.sender, msg.sections)
	}
}

func (n *Node) countMalformed() {
	n.mu.Lock()
	n.malformed++
	n.met.Malformed.Inc()
	n.mu.Unlock()
}

// admitOrTouch records a gossip sender: refresh if known, admit if
// new. Unlike a beacon, gossip discovery needs no bootstrap snapshot —
// the digest exchange itself pulls whatever is missing.
func (n *Node) admitOrTouch(id, addr string) {
	n.mu.Lock()
	_, known := n.peers[id]
	n.admitLocked(id, addr)
	n.met.Peers.Set(int64(len(n.peers)))
	count := len(n.peers)
	n.mu.Unlock()
	if !known {
		n.kb.PutInt("Peers", count)
	}
}

// applySections version-checks every entry of every delta section into
// the Knowledge Base and advances the per-creator watermark when the
// section is contiguous with it (vv[creator] >= from). Non-contiguous
// sections (an earlier chunk was lost) still apply their values —
// AcceptGossip is version-guarded, so this is always safe — but the
// watermark stays put and the next digest exchange pulls the gap.
func (n *Node) applySections(fromID string, secs []deltaSection) {
	if len(secs) == 0 {
		return
	}
	local := n.kb.LocalID()
	for _, sec := range secs {
		if sec.creator == local || sec.creator == "" {
			continue
		}
		accepted := 0
		for _, k := range sec.entries {
			k.Creator = sec.creator
			// AcceptGossip runs outside n.mu: it fires Knowledge Base
			// subscriptions, which may re-enter this node (e.g. a
			// module publishing a new collective knowgget in reaction).
			if n.kb.AcceptGossip(fromID, k) {
				accepted++
			}
		}
		n.mu.Lock()
		n.received += accepted
		n.met.SyncReceived.Add(uint64(accepted))
		n.rejected += len(sec.entries) - accepted
		n.met.SyncRejected.Add(uint64(len(sec.entries) - accepted))
		n.deltasReceived++
		n.met.DeltasReceived.Inc()
		if n.vv[sec.creator] >= sec.from && sec.upTo > n.vv[sec.creator] {
			n.vv[sec.creator] = sec.upTo
		}
		n.mu.Unlock()
	}
}

// reconcile compares a peer's digest against local state and completes
// the push-pull exchange: request deltas for creators the peer is
// ahead on (measured against our contiguous watermarks), and send
// deltas for creators we are ahead on (measured against the digest the
// peer just advertised).
func (n *Node) reconcile(senderID, fromAddr string, theirs []digestEntry) {
	local := n.kb.LocalID()
	ours := n.kb.Digest()

	theirMap := make(map[string]uint64, len(theirs))
	want := make([]digestEntry, 0, 4)
	n.mu.Lock()
	for _, e := range theirs {
		theirMap[e.creator] = e.version
		if e.creator == local {
			continue
		}
		if e.version > n.vv[e.creator] {
			want = append(want, digestEntry{creator: e.creator, version: n.vv[e.creator]})
		}
	}
	n.mu.Unlock()

	give := make([]digestEntry, 0, 4)
	for c, v := range ours {
		if c == senderID { // the sender owns its own state
			continue
		}
		if v > theirMap[c] {
			give = append(give, digestEntry{creator: c, version: theirMap[c]})
		}
	}
	sort.Slice(give, func(i, j int) bool { return give[i].creator < give[j].creator })

	if len(want) > 0 {
		sort.Slice(want, func(i, j int) bool { return want[i].creator < want[j].creator })
		data, err := n.seal(encodeWire(&wireMsg{kind: kindDeltaReq, sender: local, want: want}))
		if err == nil {
			n.sendReliable(fromAddr, data)
		}
	}
	if len(give) > 0 {
		n.sendDeltas(fromAddr, give)
	}
}

// softDatagramLimit keeps delta messages under the UDP transport's
// 64KB read buffer (sections are chunked and chained by watermark).
const softDatagramLimit = 48 << 10

// deltaChunkEntries bounds entries per section, well under the decode
// cap.
const deltaChunkEntries = 512

// sendDeltas builds and sends delta messages answering wants: for each
// (creator, since) pair, every collective knowgget of that creator
// newer than since, chunked into watermark-chained sections and split
// across datagrams under the soft size limit.
func (n *Node) sendDeltas(addr string, wants []digestEntry) {
	local := n.kb.LocalID()
	msg := wireMsg{kind: kindDelta, sender: local}
	msg.sections = make([]deltaSection, 0, len(wants))
	size := 0
	entries := 0
	flush := func() {
		if len(msg.sections) == 0 {
			return
		}
		data, err := n.seal(encodeWire(&msg))
		if err == nil {
			n.mu.Lock()
			n.deltasSent++
			n.met.DeltasSent.Inc()
			n.sent += entries
			n.met.SyncSent.Add(uint64(entries))
			n.mu.Unlock()
			n.sendReliable(addr, data)
		}
		msg.sections = msg.sections[:0]
		size, entries = 0, 0
	}
	for _, w := range wants {
		delta := n.kb.CollectiveSince(w.creator, w.version)
		if len(delta) == 0 {
			continue
		}
		from := w.version
		for start := 0; start < len(delta); start += deltaChunkEntries {
			end := min(start+deltaChunkEntries, len(delta))
			sec := deltaSection{
				creator: w.creator,
				from:    from,
				upTo:    delta[end-1].Version,
				entries: delta[start:end],
			}
			from = sec.upTo
			msg.sections = append(msg.sections, sec)
			entries += len(sec.entries)
			size += len(w.creator) + 24
			for _, k := range sec.entries {
				size += len(k.Label) + len(k.Entity) + len(k.Value) + 16
			}
			if size >= softDatagramLimit || len(msg.sections) >= maxDeltaSections {
				flush()
			}
		}
	}
	flush()
}

// syncTo sends the full collective state (every creator we hold,
// from version 0) to a newly beacon-discovered peer — the
// first-contact bootstrap, and the only remaining full-snapshot push.
func (n *Node) syncTo(addr string) {
	dig := n.kb.Digest()
	if len(dig) == 0 {
		return
	}
	wants := make([]digestEntry, 0, len(dig))
	for c := range dig {
		wants = append(wants, digestEntry{creator: c})
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].creator < wants[j].creator })
	n.sendDeltas(addr, wants)
}

// seal encrypts a wire payload with AES-GCM (random nonce prepended).
func (n *Node) seal(payload []byte) ([]byte, error) {
	nonce := make([]byte, n.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return n.aead.Seal(nonce, nonce, payload, nil), nil
}

// open decrypts a datagram into the wire payload.
func (n *Node) open(data []byte) ([]byte, error) {
	ns := n.aead.NonceSize()
	if len(data) < ns {
		return nil, errWire
	}
	plain, err := n.aead.Open(nil, data[:ns], data[ns:], nil)
	if err != nil {
		return nil, errWire
	}
	return plain, nil
}

// Close stops beaconing and closes the transport.
func (n *Node) Close() error {
	n.StopBeacon()
	return n.transport.Close()
}
