package collective

import (
	"fmt"
	"strconv"
	"testing"

	"kalis/internal/core/knowledge"
)

var benchSink []byte

// BenchmarkDigestEncode measures encoding a fleet-sized gossip
// message: a 256-creator version vector plus a 32-entry piggyback
// section — the per-round, per-target serialization cost.
func BenchmarkDigestEncode(b *testing.B) {
	msg := &wireMsg{kind: kindGossip, sender: "K0"}
	msg.digest = make([]digestEntry, 0, 256)
	for i := 0; i < 256; i++ {
		msg.digest = append(msg.digest, digestEntry{creator: fmt.Sprintf("node-%04d", i), version: uint64(i * 7)})
	}
	sec := deltaSection{creator: "K0", from: 100, upTo: 132}
	for i := 0; i < 32; i++ {
		sec.entries = append(sec.entries, knowledge.Knowgget{
			Label:   "SignalStrength",
			Entity:  fmt.Sprintf("0x%04x", i),
			Value:   "-67.5",
			Version: uint64(101 + i),
		})
	}
	msg.sections = []deltaSection{sec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = encodeWire(msg)
	}
}

// BenchmarkGossipRound measures one full anti-entropy round from the
// sender's side — dirty flush, digest build, encode, seal, fan-out
// send — against a 64-peer table with one dirty key per round.
func BenchmarkGossipRound(b *testing.B) {
	hub := NewHub()
	kb := knowledge.NewBase("K0")
	n, err := NewNode(kb, hub.Endpoint("p0"), "secret")
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 64; i++ {
		addr := fmt.Sprintf("p%d", i)
		hub.Endpoint(addr) // sink endpoint: no handler, datagrams dropped
		n.AddPeer(fmt.Sprintf("K%d", i), addr)
	}
	// Collective state from 32 creators so the digest has fleet shape.
	for c := 1; c <= 32; c++ {
		creator := fmt.Sprintf("K%d", c)
		for k := 0; k < 4; k++ {
			n.kb.AcceptGossip(creator, knowledge.Knowgget{
				Label:   "TrafficFrequency.TCPSYN",
				Entity:  fmt.Sprintf("0x%04x", k),
				Value:   "12.5",
				Creator: creator,
				Version: uint64(k + 1),
			})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kb.PutCollective("MonitoredNodes", "", strconv.Itoa(i))
		n.Gossip()
	}
}
