package collective

import (
	"reflect"
	"testing"

	"kalis/internal/core/knowledge"
)

// fuzzSeal produces a valid sealed envelope from a peer node, so the
// corpus starts from well-formed ciphertext the mutator can truncate,
// bit-flip and splice.
func fuzzSeal(f *testing.F, payload []byte) []byte {
	f.Helper()
	kb := knowledge.NewBase("K9")
	n, err := NewNode(kb, NewHub().Endpoint("seed"), "secret")
	if err != nil {
		f.Fatal(err)
	}
	data, err := n.seal(payload)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzNodeReceive drives the collective decrypt + binary-decode path
// with arbitrary datagrams: truncated, corrupted and replayed inputs
// must never panic, never partially apply (decodeWire validates the
// whole message before anything touches the KB), and never mutate the
// Knowledge Base on malformed input. The seeds cover every message
// kind plus structurally-broken variants (bad CRC, truncated section,
// oversized counts).
func FuzzNodeReceive(f *testing.F) {
	beacon := encodeWire(&wireMsg{kind: kindBeacon, sender: "K9"})
	gossip := encodeWire(&wireMsg{
		kind:   kindGossip,
		sender: "K9",
		digest: []digestEntry{{creator: "K9", version: 3}, {creator: "K7", version: 12}},
		sections: []deltaSection{{
			creator: "K9", from: 2, upTo: 3,
			entries: []knowledge.Knowgget{{Label: "SuspectBlackhole", Entity: "0x0005", Value: "7", Version: 3}},
		}},
	})
	deltaReq := encodeWire(&wireMsg{
		kind:   kindDeltaReq,
		sender: "K9",
		want:   []digestEntry{{creator: "K1", version: 0}, {creator: "K7", version: 4}},
	})
	delta := encodeWire(&wireMsg{
		kind:   kindDelta,
		sender: "K9",
		sections: []deltaSection{{
			creator: "K7", from: 0, upTo: 2,
			entries: []knowledge.Knowgget{
				{Label: "Mediums.wifi", Value: "true", Version: 1},
				{Label: "EmergentSource", Entity: "0x0009", Value: "7", Version: 2},
			},
		}},
	})
	forged := encodeWire(&wireMsg{
		kind:   kindDelta,
		sender: "K9",
		sections: []deltaSection{{
			creator: "K1", from: 0, upTo: 9,
			entries: []knowledge.Knowgget{{Label: "Multihop", Value: "false", Version: 9}},
		}},
	})
	badCRC := append([]byte(nil), gossip...)
	badCRC[len(badCRC)-1] ^= 0xFF

	f.Add([]byte{})
	f.Add([]byte{0x01})
	for _, payload := range [][]byte{beacon, gossip, deltaReq, delta, forged, badCRC} {
		f.Add(fuzzSeal(f, payload))
	}
	sealed := fuzzSeal(f, gossip)
	f.Add(sealed[:len(sealed)/2])
	f.Add(append([]byte("garbage prefix"), sealed...))

	f.Fuzz(func(t *testing.T, data []byte) {
		kb := knowledge.NewBase("K1")
		kb.Put("Multihop", "true")
		n, err := NewNode(kb, NewHub().Endpoint("a1"), "secret")
		if err != nil {
			t.Fatal(err)
		}
		before := kb.Snapshot()

		n.receive("peer", data)
		_, _, malformedFirst := n.Resilience()
		after := kb.Snapshot()
		if malformedFirst > 0 && !reflect.DeepEqual(before, after) {
			t.Fatalf("malformed datagram mutated the KB:\nbefore %+v\nafter  %+v", before, after)
		}

		// Replay: delivering the identical datagram again must be
		// idempotent — version-guarded deltas re-apply nothing, and
		// forgeries and junk stay rejected.
		n.receive("peer", data)
		replayed := kb.Snapshot()
		if !reflect.DeepEqual(after, replayed) {
			t.Fatalf("replayed datagram mutated the KB:\nfirst  %+v\nreplay %+v", after, replayed)
		}

		// The local knowgget is ours alone; no datagram may overwrite it
		// — AcceptGossip rejects any section claiming our creator ID.
		if kg, ok := kb.Get("K1$Multihop"); !ok || kg.Value != "true" {
			t.Fatalf("local knowgget overwritten: %+v ok=%v", kg, ok)
		}
	})
}

// FuzzDecodeWire fuzzes the raw binary codec under the envelope:
// arbitrary bytes either decode to a message that re-encodes
// byte-identically (for canonical inputs) or fail cleanly — no panics,
// no unbounded allocations (the decode caps).
func FuzzDecodeWire(f *testing.F) {
	f.Add(encodeWire(&wireMsg{kind: kindBeacon, sender: "K9"}))
	f.Add(encodeWire(&wireMsg{
		kind:   kindGossip,
		sender: "K9",
		digest: []digestEntry{{creator: "K9", version: 3}},
	}))
	f.Add(encodeWire(&wireMsg{
		kind:   kindDelta,
		sender: "K9",
		sections: []deltaSection{{
			creator: "K7", from: 1, upTo: 2,
			entries: []knowledge.Knowgget{{Label: "L", Entity: "E", Value: "V", Version: 2}},
		}},
	}))
	f.Add([]byte{})
	f.Add([]byte{wireVersion, kindGossip})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeWire(data)
		if err != nil {
			return
		}
		// Round-trip: any message that decodes must re-encode to the
		// exact input (the codec is canonical — one representation per
		// message).
		if got := encodeWire(m); !reflect.DeepEqual(got, data) {
			t.Fatalf("decode/encode not canonical:\nin  %x\nout %x", data, got)
		}
	})
}
