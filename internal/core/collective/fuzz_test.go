package collective

import (
	"reflect"
	"testing"

	"kalis/internal/core/knowledge"
)

// fuzzSeal produces a valid sealed envelope from a peer node, so the
// corpus starts from well-formed ciphertext the mutator can truncate,
// bit-flip and splice.
func fuzzSeal(f *testing.F, msg *message) []byte {
	f.Helper()
	kb := knowledge.NewBase("K9")
	n, err := NewNode(kb, NewHub().Endpoint("seed"), "secret")
	if err != nil {
		f.Fatal(err)
	}
	data, err := n.seal(msg)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzNodeReceive drives the collective decrypt/decode path with
// arbitrary datagrams: truncated, corrupted and replayed inputs must
// never panic and never mutate the Knowledge Base (malformed inputs
// change nothing; authenticated replays are idempotent).
func FuzzNodeReceive(f *testing.F) {
	beacon := fuzzSeal(f, &message{Type: msgBeacon, NodeID: "K9"})
	update := fuzzSeal(f, &message{
		Type:      msgUpdate,
		NodeID:    "K9",
		Knowggets: []wireKnowgget{{Label: "SuspectBlackhole", Value: "7", Creator: "K9", Entity: "0x0005"}},
	})
	forged := fuzzSeal(f, &message{
		Type:      msgUpdate,
		NodeID:    "K9",
		Knowggets: []wireKnowgget{{Label: "Multihop", Value: "false", Creator: "K1"}},
	})
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(beacon)
	f.Add(update)
	f.Add(forged)
	f.Add(beacon[:len(beacon)/2])
	f.Add(append([]byte("garbage prefix"), update...))

	f.Fuzz(func(t *testing.T, data []byte) {
		kb := knowledge.NewBase("K1")
		kb.Put("Multihop", "true")
		n, err := NewNode(kb, NewHub().Endpoint("a1"), "secret")
		if err != nil {
			t.Fatal(err)
		}
		before := kb.Snapshot()

		n.receive("peer", data)
		_, _, malformedFirst := n.Resilience()
		after := kb.Snapshot()
		if malformedFirst > 0 && !reflect.DeepEqual(before, after) {
			t.Fatalf("malformed datagram mutated the KB:\nbefore %+v\nafter  %+v", before, after)
		}

		// Replay: delivering the identical datagram again must be
		// idempotent — authenticated updates re-apply the same values,
		// forgeries and junk stay rejected.
		n.receive("peer", data)
		replayed := kb.Snapshot()
		if !reflect.DeepEqual(after, replayed) {
			t.Fatalf("replayed datagram mutated the KB:\nfirst  %+v\nreplay %+v", after, replayed)
		}

		// The local knowgget is ours alone; no datagram may overwrite it
		// (creator verification, §IV-B3).
		if kg, ok := kb.Get("K1$Multihop"); !ok || kg.Value != "true" {
			t.Fatalf("local knowgget overwritten: %+v ok=%v", kg, ok)
		}
	})
}
