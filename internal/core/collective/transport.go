// Package collective implements Kalis' collective knowledge management
// (§IV-B3, §V): discovery of peer Kalis nodes by periodic beaconing on
// the local network, and encrypted one-way synchronization of knowggets
// marked "collective". A receiving node only accepts knowggets whose
// creator field matches the sending peer, so no node can overwrite or
// alter another node's knowledge.
package collective

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Handler consumes a datagram received from a peer address.
type Handler func(fromAddr string, data []byte)

// Transport abstracts peer communication: an in-memory hub for
// deterministic tests and simulations, and a UDP transport for real
// deployments.
type Transport interface {
	// Addr returns this endpoint's address.
	Addr() string
	// Send transmits a datagram to a specific peer address.
	Send(addr string, data []byte) error
	// Broadcast transmits a datagram to the discovery domain.
	Broadcast(data []byte) error
	// SetHandler installs the receive callback.
	SetHandler(h Handler)
	// Close releases resources and stops delivery.
	Close() error
}

// ErrClosed is returned when sending on a closed transport.
var ErrClosed = errors.New("collective: transport closed")

// PermanentError marks a Send failure that retrying cannot fix (bad
// peer address, unknown endpoint); the retry policy gives up on these
// immediately instead of burning its backoff budget.
type PermanentError struct {
	Err error
}

func (e *PermanentError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *PermanentError) Unwrap() error { return e.Err }

// IsPermanent reports whether err is a Send failure not worth
// retrying: an explicit PermanentError or a closed transport.
func IsPermanent(err error) bool {
	var pe *PermanentError
	return errors.As(err, &pe) || errors.Is(err, ErrClosed)
}

// --- in-memory transport ---

// Hub connects in-memory transports; delivery is synchronous and in
// call order, keeping simulations deterministic.
type Hub struct {
	mu        sync.Mutex
	endpoints map[string]*MemTransport
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{endpoints: make(map[string]*MemTransport)}
}

// Endpoint creates and attaches a transport with the given address.
func (h *Hub) Endpoint(addr string) *MemTransport {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := &MemTransport{hub: h, addr: addr}
	h.endpoints[addr] = t
	return t
}

// MemTransport is an in-memory Transport attached to a Hub.
type MemTransport struct {
	hub  *Hub
	addr string

	mu      sync.Mutex
	handler Handler
	closed  bool
}

var _ Transport = (*MemTransport)(nil)

// Addr implements Transport.
func (t *MemTransport) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *MemTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Send implements Transport.
func (t *MemTransport) Send(addr string, data []byte) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	t.hub.mu.Lock()
	dst := t.hub.endpoints[addr]
	t.hub.mu.Unlock()
	if dst == nil {
		//lint:ignore hotalloc,hotpath unknown-endpoint error path, not the per-round send path
		return &PermanentError{Err: fmt.Errorf("collective: no endpoint %q", addr)}
	}
	dst.deliver(t.addr, data)
	return nil
}

// Broadcast implements Transport.
func (t *MemTransport) Broadcast(data []byte) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	t.hub.mu.Lock()
	dsts := make([]*MemTransport, 0, len(t.hub.endpoints))
	for addr, ep := range t.hub.endpoints {
		if addr != t.addr {
			dsts = append(dsts, ep)
		}
	}
	t.hub.mu.Unlock()
	for _, dst := range dsts {
		dst.deliver(t.addr, data)
	}
	return nil
}

// deliver runs the receiver's handler synchronously on the sender's
// goroutine — a test/simulation artifact; the real UDP receive path
// runs on its own readLoop goroutine, so the receive side is not part
// of the sender's gossip hot path.
//
//lint:coldpath in-memory test transport; real UDP receive runs on its own readLoop goroutine
func (t *MemTransport) deliver(from string, data []byte) {
	t.mu.Lock()
	h := t.handler
	closed := t.closed
	t.mu.Unlock()
	if h != nil && !closed {
		cp := make([]byte, len(data))
		copy(cp, data)
		h(from, cp)
	}
}

// Close implements Transport.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return nil
}

// --- UDP transport ---

// UDPTransport is a Transport over UDP sockets. Discovery broadcasts
// are sent to a configured list of broadcast addresses (e.g. the LAN
// broadcast address, or explicit peer addresses on networks that block
// broadcast).
type UDPTransport struct {
	conn       *net.UDPConn
	broadcasts []string

	mu      sync.Mutex
	handler Handler
	closed  bool
	done    chan struct{}
	// addrCache holds resolved peer addresses: beacons deliver a
	// stable ip:port string per peer, so resolving it once per peer —
	// not once per datagram — takes the resolver off the sync path.
	addrCache map[string]*net.UDPAddr
}

var _ Transport = (*UDPTransport)(nil)

// NewUDPTransport listens on listenAddr (e.g. "127.0.0.1:0") and
// broadcasts to the given addresses.
func NewUDPTransport(listenAddr string, broadcasts []string) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("collective: resolve %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("collective: listen: %w", err)
	}
	t := &UDPTransport{
		conn:       conn,
		broadcasts: append([]string(nil), broadcasts...),
		done:       make(chan struct{}),
		addrCache:  make(map[string]*net.UDPAddr),
	}
	go t.readLoop()
	return t, nil
}

// Addr implements Transport.
func (t *UDPTransport) Addr() string { return t.conn.LocalAddr().String() }

// SetHandler implements Transport.
func (t *UDPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// SetBroadcasts replaces the discovery address list.
func (t *UDPTransport) SetBroadcasts(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.broadcasts = append([]string(nil), addrs...)
}

// Send implements Transport. Resolved peer addresses are cached (one
// resolve per peer, not per datagram); resolve failures are permanent,
// socket write failures transient — the collective retry policy keys
// off that distinction via IsPermanent.
func (t *UDPTransport) Send(addr string, data []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	dst := t.addrCache[addr]
	t.mu.Unlock()
	if dst == nil {
		var err error
		dst, err = net.ResolveUDPAddr("udp", addr)
		if err != nil {
			//lint:ignore hotalloc,hotpath resolve-failure error path, hit once per bad peer address
			return &PermanentError{Err: fmt.Errorf("collective: resolve %q: %w", addr, err)}
		}
		t.mu.Lock()
		t.addrCache[addr] = dst
		t.mu.Unlock()
	}
	if _, err := t.conn.WriteToUDP(data, dst); err != nil {
		//lint:ignore hotpath socket-write error path; the happy path formats nothing
		return fmt.Errorf("collective: send to %q: %w", addr, err)
	}
	return nil
}

// Broadcast implements Transport.
func (t *UDPTransport) Broadcast(data []byte) error {
	t.mu.Lock()
	addrs := append([]string(nil), t.broadcasts...)
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var firstErr error
	for _, addr := range addrs {
		if err := t.Send(addr, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (t *UDPTransport) readLoop() {
	defer close(t.done)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			data := make([]byte, n)
			copy(data, buf[:n])
			h(from.String(), data)
		}
	}
}

// Close implements Transport: it stops the read loop and waits for it
// to exit.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	return err
}
