package collective

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kalis/internal/core/knowledge"
)

// virtualClock is a hand-advanced clock for deterministic TTL tests.
type virtualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *virtualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *virtualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestPeerTTLEvictionAndResync(t *testing.T) {
	kb1, n1, kb2, n2 := pair(t)
	clock := &virtualClock{t: time.Unix(1500000000, 0)}
	n1.SetClock(clock.now)
	n1.SetPeerTTL(30 * time.Second)

	n2.Beacon() // K1 discovers K2
	if got := n1.Peers(); len(got) != 1 {
		t.Fatalf("n1 peers = %v", got)
	}

	// K2 goes silent past the TTL: K1's next beacon sweep evicts it.
	clock.advance(31 * time.Second)
	n1.Beacon()
	if got := n1.Peers(); len(got) != 0 {
		t.Fatalf("silent peer not evicted: %v", got)
	}
	if ev, _, _ := n1.Resilience(); ev != 1 {
		t.Fatalf("evictions = %d", ev)
	}
	if v, ok := kb1.Int("Peers"); !ok || v != 0 {
		t.Errorf("Peers knowgget after eviction = %d ok=%v", v, ok)
	}

	// New collective knowledge accumulates while K2 is gone; its
	// return beacon is treated as fresh discovery → full re-sync.
	kb1.PutCollective("SuspectBlackhole", "0x0005", "7")
	n2.Beacon()
	if got := n1.Peers(); len(got) != 1 {
		t.Fatalf("returning peer not re-admitted: %v", got)
	}
	if kg, ok := kb2.Get("K1$SuspectBlackhole@0x0005"); !ok || kg.Value != "7" {
		t.Fatalf("returning peer not re-synced: %+v ok=%v", kg, ok)
	}
}

func TestUpdatesCountAsLiveness(t *testing.T) {
	_, n1, kb2, n2 := pair(t)
	clock := &virtualClock{t: time.Unix(1500000000, 0)}
	n1.SetClock(clock.now)
	n1.SetPeerTTL(30 * time.Second)

	// Mutual discovery: K1's beacon lets K2 learn where to push
	// updates; K2's beacon starts K1's liveness record for it.
	n1.Beacon()
	n2.Beacon()
	clock.advance(20 * time.Second)
	// A gossip round (not a beacon) from K2 must refresh its liveness.
	kb2.PutCollective("EmergentSource", "0x0009", "7")
	n2.Gossip()
	clock.advance(20 * time.Second)
	n1.Beacon() // 40s since beacon, 20s since update: keep
	if got := n1.Peers(); len(got) != 1 {
		t.Fatalf("peer evicted despite recent update: %v", got)
	}
}

func TestBoundedPeerTableEvictsStalest(t *testing.T) {
	hub := NewHub()
	kb1 := knowledge.NewBase("K1")
	n1, err := NewNode(kb1, hub.Endpoint("addr1"), "secret")
	if err != nil {
		t.Fatal(err)
	}
	clock := &virtualClock{t: time.Unix(1500000000, 0)}
	n1.SetClock(clock.now)
	n1.SetMaxPeers(2)

	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("P%d", i)
		kb := knowledge.NewBase(id)
		pn, err := NewNode(kb, hub.Endpoint("p"+id), "secret")
		if err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Second) // distinct lastSeen per peer
		pn.Beacon()
	}
	got := n1.Peers()
	if len(got) != 2 || got[0] != "P1" || got[1] != "P2" {
		t.Fatalf("peers = %v (want stalest P0 evicted)", got)
	}
	if ev, _, _ := n1.Resilience(); ev != 1 {
		t.Errorf("evictions = %d", ev)
	}
}

// flakyTransport fails the first failures sends with a transient or
// permanent error, then delegates.
type flakyTransport struct {
	Transport
	mu       sync.Mutex
	failures int
	perm     bool
	attempts int
}

func (f *flakyTransport) Send(addr string, data []byte) error {
	f.mu.Lock()
	f.attempts++
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	perm := f.perm
	f.mu.Unlock()
	if fail {
		if perm {
			return &PermanentError{Err: errors.New("bad address")}
		}
		return errors.New("transient socket error")
	}
	return f.Transport.Send(addr, data)
}

func flakyPair(t *testing.T, failures int, perm bool) (*knowledge.Base, *knowledge.Base, *Node, *flakyTransport) {
	t.Helper()
	hub := NewHub()
	kb1 := knowledge.NewBase("K1")
	kb2 := knowledge.NewBase("K2")
	ft := &flakyTransport{Transport: hub.Endpoint("addr1"), failures: failures, perm: perm}
	n1, err := NewNode(kb1, ft, "secret")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(kb2, hub.Endpoint("addr2"), "secret")
	if err != nil {
		t.Fatal(err)
	}
	n1.setSleep(func(time.Duration) {}) // virtual: no real sleeping in tests
	_ = n2
	n2.Beacon() // K1 discovers K2 (beacons bypass Send via Broadcast)
	return kb1, kb2, n1, ft
}

func TestSendRetryRecoversTransientFailure(t *testing.T) {
	kb1, kb2, n1, ft := flakyPair(t, 2, false)
	kb1.PutCollective("SuspectBlackhole", "0x0005", "7")
	n1.Gossip()
	if kg, ok := kb2.Get("K1$SuspectBlackhole@0x0005"); !ok || kg.Value != "7" {
		t.Fatalf("update lost despite retry budget: %+v ok=%v", kg, ok)
	}
	if _, retries, _ := n1.Resilience(); retries != 2 {
		t.Errorf("retries = %d", retries)
	}
	if ft.attempts != 3 {
		t.Errorf("send attempts = %d", ft.attempts)
	}
}

func TestSendPermanentFailureNotRetried(t *testing.T) {
	kb1, kb2, n1, ft := flakyPair(t, 1, true)
	kb1.PutCollective("SuspectBlackhole", "0x0005", "7")
	n1.Gossip()
	if _, ok := kb2.Get("K1$SuspectBlackhole@0x0005"); ok {
		t.Fatal("update delivered despite permanent failure")
	}
	if _, retries, _ := n1.Resilience(); retries != 0 {
		t.Errorf("permanent failure retried %d times", retries)
	}
	if ft.attempts != 1 {
		t.Errorf("send attempts = %d", ft.attempts)
	}
}

func TestMalformedDatagramsCountedNeverFatal(t *testing.T) {
	hub := NewHub()
	kb1 := knowledge.NewBase("K1")
	n1, err := NewNode(kb1, hub.Endpoint("addr1"), "secret")
	if err != nil {
		t.Fatal(err)
	}
	raw := hub.Endpoint("raw") // no collective node: sends arbitrary bytes
	before := kb1.Snapshot()
	for _, payload := range [][]byte{
		nil,
		{0x01},
		[]byte("way too short"),
		make([]byte, 64), // right length, garbage ciphertext
	} {
		if err := raw.Send("addr1", payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, malformed := n1.Resilience(); malformed != 4 {
		t.Fatalf("malformed = %d", malformed)
	}
	if got := len(kb1.Snapshot()); got != len(before) {
		t.Fatalf("malformed datagrams mutated the Knowledge Base: %d → %d entries", len(before), got)
	}
}
