package collective

import (
	"testing"
	"time"

	"kalis/internal/core/knowledge"
)

func pair(t *testing.T) (*knowledge.Base, *Node, *knowledge.Base, *Node) {
	t.Helper()
	hub := NewHub()
	kb1 := knowledge.NewBase("K1")
	kb2 := knowledge.NewBase("K2")
	n1, err := NewNode(kb1, hub.Endpoint("addr1"), "secret")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(kb2, hub.Endpoint("addr2"), "secret")
	if err != nil {
		t.Fatal(err)
	}
	return kb1, n1, kb2, n2
}

func TestDiscoveryAndSync(t *testing.T) {
	kb1, n1, kb2, n2 := pair(t)
	n1.Beacon()
	n2.Beacon()
	if got := n1.Peers(); len(got) != 1 || got[0] != "K2" {
		t.Fatalf("n1 peers = %v", got)
	}
	if got := n2.Peers(); len(got) != 1 || got[0] != "K1" {
		t.Fatalf("n2 peers = %v", got)
	}
	if v, ok := kb1.Int("Peers"); !ok || v != 1 {
		t.Errorf("Peers knowgget = %d ok=%v", v, ok)
	}

	kb1.PutCollective("SuspectBlackhole", "0x0005", "7,8")
	kg, ok := kb2.Get("K1$SuspectBlackhole@0x0005")
	if !ok {
		t.Fatal("collective knowgget not propagated")
	}
	if kg.Value != "7,8" || kg.Creator != "K1" {
		t.Errorf("knowgget = %+v", kg)
	}
	// Local-only knowggets must not propagate.
	kb1.Put("Multihop", "true")
	if _, ok := kb2.Get("K1$Multihop"); ok {
		t.Error("non-collective knowgget propagated")
	}
}

func TestInitialSyncOnDiscovery(t *testing.T) {
	kb1, n1, kb2, n2 := pair(t)
	_ = n1
	// K1 holds collective knowledge before any peer exists.
	kb1.PutCollective("EmergentSource", "0x0009", "7")
	if _, ok := kb2.Get("K1$EmergentSource@0x0009"); ok {
		t.Fatal("knowledge propagated without discovery")
	}
	// K2's beacon makes K1 discover it; K1 pushes its snapshot.
	n2.Beacon()
	kg, ok := kb2.Get("K1$EmergentSource@0x0009")
	if !ok {
		t.Fatal("snapshot not synced to newly discovered peer")
	}
	if kg.Value != "7" {
		t.Errorf("knowgget = %+v", kg)
	}
}

func TestUpdatePropagatesChanges(t *testing.T) {
	kb1, n1, kb2, n2 := pair(t)
	n1.Beacon()
	n2.Beacon()
	kb1.PutCollective("SignalStrength", "SensorA", "-67")
	kb1.PutCollective("SignalStrength", "SensorA", "-80")
	kg, _ := kb2.Get("K1$SignalStrength@SensorA")
	if kg.Value != "-80" {
		t.Errorf("value = %q, want -80", kg.Value)
	}
	sent, _, _ := n1.Stats()
	if sent < 2 {
		t.Errorf("sent = %d", sent)
	}
	_, received, rejected := n2.Stats()
	if received < 2 || rejected != 0 {
		t.Errorf("received=%d rejected=%d", received, rejected)
	}
}

func TestWrongPassphraseIsolated(t *testing.T) {
	hub := NewHub()
	kb1 := knowledge.NewBase("K1")
	kb2 := knowledge.NewBase("K2")
	n1, _ := NewNode(kb1, hub.Endpoint("a1"), "secret")
	n2, _ := NewNode(kb2, hub.Endpoint("a2"), "other")
	n1.Beacon()
	n2.Beacon()
	if len(n1.Peers()) != 0 || len(n2.Peers()) != 0 {
		t.Error("nodes with different keys discovered each other")
	}
	kb1.PutCollective("X", "", "1")
	if _, ok := kb2.Get("K1$X"); ok {
		t.Error("knowledge crossed key domains")
	}
}

func TestNoSelfPeering(t *testing.T) {
	hub := NewHub()
	kb := knowledge.NewBase("K1")
	n, _ := NewNode(kb, hub.Endpoint("a1"), "secret")
	// A second endpoint replays K1's own beacon back.
	echo := hub.Endpoint("a2")
	var captured []byte
	echo.SetHandler(func(_ string, data []byte) { captured = append([]byte(nil), data...) })
	n.Beacon()
	if captured == nil {
		t.Fatal("beacon not observed")
	}
	_ = echo.Send("a1", captured)
	if len(n.Peers()) != 0 {
		t.Error("node peered with itself")
	}
}

func TestUDPTransport(t *testing.T) {
	kb1 := knowledge.NewBase("K1")
	kb2 := knowledge.NewBase("K2")
	t1, err := NewUDPTransport("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewUDPTransport("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Point the "broadcast" domains at each other (loopback has no
	// real broadcast).
	t1.SetBroadcasts([]string{t2.Addr()})
	t2.SetBroadcasts([]string{t1.Addr()})

	n1, err := NewNode(kb1, t1, "secret")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(kb2, t2, "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	defer n2.Close()

	n1.RunBeacon(20 * time.Millisecond)
	n2.RunBeacon(20 * time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(n1.Peers()) == 1 && len(n2.Peers()) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(n1.Peers()) != 1 || len(n2.Peers()) != 1 {
		t.Fatalf("discovery failed: %v / %v", n1.Peers(), n2.Peers())
	}

	kb1.PutCollective("Multihop", "", "true")
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := kb2.Get("K1$Multihop"); ok {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := kb2.Get("K1$Multihop"); !ok {
		t.Fatal("knowgget did not propagate over UDP")
	}
}
