package collective

import (
	"fmt"
	"testing"
	"time"

	"kalis/internal/core/knowledge"
)

func pair(t *testing.T) (*knowledge.Base, *Node, *knowledge.Base, *Node) {
	t.Helper()
	hub := NewHub()
	kb1 := knowledge.NewBase("K1")
	kb2 := knowledge.NewBase("K2")
	n1, err := NewNode(kb1, hub.Endpoint("addr1"), "secret")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(kb2, hub.Endpoint("addr2"), "secret")
	if err != nil {
		t.Fatal(err)
	}
	return kb1, n1, kb2, n2
}

func TestDiscoveryAndSync(t *testing.T) {
	kb1, n1, kb2, n2 := pair(t)
	n1.Beacon()
	n2.Beacon()
	if got := n1.Peers(); len(got) != 1 || got[0] != "K2" {
		t.Fatalf("n1 peers = %v", got)
	}
	if got := n2.Peers(); len(got) != 1 || got[0] != "K1" {
		t.Fatalf("n2 peers = %v", got)
	}
	if v, ok := kb1.Int("Peers"); !ok || v != 1 {
		t.Errorf("Peers knowgget = %d ok=%v", v, ok)
	}

	kb1.PutCollective("SuspectBlackhole", "0x0005", "7,8")
	// Updates are buffered until the next gossip tick.
	if _, ok := kb2.Get("K1$SuspectBlackhole@0x0005"); ok {
		t.Fatal("update propagated before the gossip tick")
	}
	n1.Gossip()
	kg, ok := kb2.Get("K1$SuspectBlackhole@0x0005")
	if !ok {
		t.Fatal("collective knowgget not propagated")
	}
	if kg.Value != "7,8" || kg.Creator != "K1" || kg.Version == 0 {
		t.Errorf("knowgget = %+v", kg)
	}
	// Local-only knowggets must not propagate.
	kb1.Put("Multihop", "true")
	n1.Gossip()
	if _, ok := kb2.Get("K1$Multihop"); ok {
		t.Error("non-collective knowgget propagated")
	}
}

func TestInitialSyncOnDiscovery(t *testing.T) {
	kb1, n1, kb2, n2 := pair(t)
	_ = n1
	// K1 holds collective knowledge before any peer exists.
	kb1.PutCollective("EmergentSource", "0x0009", "7")
	if _, ok := kb2.Get("K1$EmergentSource@0x0009"); ok {
		t.Fatal("knowledge propagated without discovery")
	}
	// K2's beacon makes K1 discover it; K1 pushes its snapshot.
	n2.Beacon()
	kg, ok := kb2.Get("K1$EmergentSource@0x0009")
	if !ok {
		t.Fatal("snapshot not synced to newly discovered peer")
	}
	if kg.Value != "7" {
		t.Errorf("knowgget = %+v", kg)
	}
}

// TestUpdateCoalescing: repeated changes to one key between gossip
// ticks flush as a single latest-version entry, not one send per
// change (the sent-counter blow-up of the old per-update push).
func TestUpdateCoalescing(t *testing.T) {
	kb1, n1, kb2, n2 := pair(t)
	n1.Beacon()
	n2.Beacon()
	sent0, _, _ := n1.Stats()
	kb1.PutCollective("SignalStrength", "SensorA", "-67")
	kb1.PutCollective("SignalStrength", "SensorA", "-73")
	kb1.PutCollective("SignalStrength", "SensorA", "-80")
	n1.Gossip()
	kg, _ := kb2.Get("K1$SignalStrength@SensorA")
	if kg.Value != "-80" {
		t.Errorf("value = %q, want -80", kg.Value)
	}
	sent, _, _ := n1.Stats()
	if got := sent - sent0; got != 1 {
		t.Errorf("sent %d entries for 3 coalesced updates, want 1", got)
	}
	_, received, rejected := n2.Stats()
	if received < 1 || rejected != 0 {
		t.Errorf("received=%d rejected=%d", received, rejected)
	}
}

// TestGossipRelayAndPull: knowledge hops creator→B→C even though A and
// C never talk directly, via B relaying in its digest and C pulling
// the delta.
func TestGossipRelayAndPull(t *testing.T) {
	hub := NewHub()
	kbA := knowledge.NewBase("KA")
	kbB := knowledge.NewBase("KB")
	kbC := knowledge.NewBase("KC")
	nA, _ := NewNode(kbA, hub.Endpoint("a"), "secret")
	nB, _ := NewNode(kbB, hub.Endpoint("b"), "secret")
	nC, _ := NewNode(kbC, hub.Endpoint("c"), "secret")
	nA.AddPeer("KB", "b")
	nB.AddPeer("KA", "a")
	nB.AddPeer("KC", "c")
	nC.AddPeer("KB", "b")

	kbA.PutCollective("EmergentSource", "0x0009", "7")
	nA.Gossip() // A → B (piggybacked dirty flush)
	if _, ok := kbB.Get("KA$EmergentSource@0x0009"); !ok {
		t.Fatal("first hop failed")
	}
	if _, ok := kbC.Get("KA$EmergentSource@0x0009"); ok {
		t.Fatal("C knows before any B round")
	}
	nC.Gossip() // C's digest lacks KA; B pushes the delta back
	kg, ok := kbC.Get("KA$EmergentSource@0x0009")
	if !ok {
		t.Fatal("relay to C failed")
	}
	if kg.Creator != "KA" || kg.Value != "7" {
		t.Errorf("knowgget = %+v", kg)
	}
	if vv := nC.VersionVector(); vv["KA"] != 1 {
		t.Errorf("C watermark for KA = %d, want 1", vv["KA"])
	}
}

// TestFanoutCap: a gossip round contacts at most fanout peers.
func TestFanoutCap(t *testing.T) {
	hub := NewHub()
	kb := knowledge.NewBase("K0")
	n, _ := NewNode(kb, hub.Endpoint("p0"), "secret")
	n.SetFanout(3)
	const peers = 10
	got := 0
	for i := 1; i <= peers; i++ {
		ep := hub.Endpoint(fmt.Sprintf("p%d", i))
		ep.SetHandler(func(_ string, _ []byte) { got++ })
		n.AddPeer(fmt.Sprintf("K%d", i), fmt.Sprintf("p%d", i))
	}
	kb.PutCollective("X", "", "1")
	n.Gossip()
	if got != 3 {
		t.Fatalf("gossip round reached %d peers, want 3", got)
	}
	ds, _, _, _ := n.GossipStats()
	if ds != 3 {
		t.Fatalf("digestsSent = %d, want 3", ds)
	}
}

// TestDigestPullRecovery: a peer that missed piggybacked flushes (it
// was not among the fan-out targets, or the datagram was lost)
// catches up through the digest exchange of its own next round.
func TestDigestPullRecovery(t *testing.T) {
	kb1, n1, kb2, n2 := pair(t)
	n1.Beacon()
	n2.Beacon()
	// Flush while K2's receive path drops everything: the piggyback
	// datagram vanishes in flight.
	dropping := true
	n2.transport.SetHandler(func(from string, data []byte) {
		if dropping {
			return
		}
		n2.receive(from, data)
	})
	kb1.PutCollective("Mediums.wifi", "", "true")
	n1.Gossip()
	dropping = false
	if _, ok := kb2.Get("K1$Mediums.wifi"); ok {
		t.Fatal("flush survived the dropped datagram")
	}
	// K2's own round advertises its stale digest; K1 answers with the
	// missing delta.
	n2.Gossip()
	if _, ok := kb2.Get("K1$Mediums.wifi"); !ok {
		t.Fatal("digest exchange did not recover the missed delta")
	}
	if vv := n2.VersionVector(); vv["K1"] == 0 {
		t.Error("K2 watermark for K1 not advanced")
	}
}

func TestWrongPassphraseIsolated(t *testing.T) {
	hub := NewHub()
	kb1 := knowledge.NewBase("K1")
	kb2 := knowledge.NewBase("K2")
	n1, _ := NewNode(kb1, hub.Endpoint("a1"), "secret")
	n2, _ := NewNode(kb2, hub.Endpoint("a2"), "other")
	n1.Beacon()
	n2.Beacon()
	if len(n1.Peers()) != 0 || len(n2.Peers()) != 0 {
		t.Error("nodes with different keys discovered each other")
	}
	kb1.PutCollective("X", "", "1")
	if _, ok := kb2.Get("K1$X"); ok {
		t.Error("knowledge crossed key domains")
	}
}

func TestNoSelfPeering(t *testing.T) {
	hub := NewHub()
	kb := knowledge.NewBase("K1")
	n, _ := NewNode(kb, hub.Endpoint("a1"), "secret")
	// A second endpoint replays K1's own beacon back.
	echo := hub.Endpoint("a2")
	var captured []byte
	echo.SetHandler(func(_ string, data []byte) { captured = append([]byte(nil), data...) })
	n.Beacon()
	if captured == nil {
		t.Fatal("beacon not observed")
	}
	_ = echo.Send("a1", captured)
	if len(n.Peers()) != 0 {
		t.Error("node peered with itself")
	}
}

func TestUDPTransport(t *testing.T) {
	kb1 := knowledge.NewBase("K1")
	kb2 := knowledge.NewBase("K2")
	t1, err := NewUDPTransport("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewUDPTransport("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Point the "broadcast" domains at each other (loopback has no
	// real broadcast).
	t1.SetBroadcasts([]string{t2.Addr()})
	t2.SetBroadcasts([]string{t1.Addr()})

	n1, err := NewNode(kb1, t1, "secret")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(kb2, t2, "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	defer n2.Close()

	n1.RunBeacon(20 * time.Millisecond)
	n2.RunBeacon(20 * time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(n1.Peers()) == 1 && len(n2.Peers()) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(n1.Peers()) != 1 || len(n2.Peers()) != 1 {
		t.Fatalf("discovery failed: %v / %v", n1.Peers(), n2.Peers())
	}

	kb1.PutCollective("Multihop", "", "true")
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := kb2.Get("K1$Multihop"); ok {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := kb2.Get("K1$Multihop"); !ok {
		t.Fatal("knowgget did not propagate over UDP")
	}
}
