package collective

import (
	"time"
)

// This file holds the collective layer's hardening against silent,
// partitioned, or flaky peers (§IV-B3's cooperative nodes on lossy IoT
// networks): peer liveness TTL with eviction, a bounded peer table,
// and retry-with-backoff on transient Send failures. An evicted peer
// that returns is treated as newly discovered, so it receives a full
// re-sync of local collective knowledge.

// SetClock replaces the liveness clock (default time.Now); simulations
// inject the virtual clock so TTL eviction is deterministic.
func (n *Node) SetClock(now func() time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.now = now
}

// SetPeerTTL sets how long a peer may stay silent before the beacon
// sweep evicts it (0 disables eviction).
func (n *Node) SetPeerTTL(ttl time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peerTTL = ttl
}

// SetMaxPeers bounds the peer table (0 removes the bound). When a new
// peer would exceed the bound, the stalest peer is evicted to make
// room — a full table must not block discovery of live peers.
func (n *Node) SetMaxPeers(max int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.maxPeers = max
}

// SetRetry configures the transient-send retry policy: up to retries
// retransmissions, sleeping backoff·attempt between tries. The sleep
// is injectable for tests via setSleep.
func (n *Node) SetRetry(retries int, backoff time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.retries = retries
	n.retryBackoff = backoff
}

// setSleep replaces the retry sleep (tests).
func (n *Node) setSleep(sleep func(time.Duration)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sleep = sleep
}

// Resilience returns the hardening counters: peers evicted, transient
// sends retried, malformed datagrams discarded.
func (n *Node) Resilience() (evictions, retries, malformed int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.evictions, n.retried, n.malformed
}

// admitLocked records a peer sighting, evicting the stalest peer if
// the table is full. Callers must hold n.mu.
func (n *Node) admitLocked(id, addr string) {
	if p, ok := n.peers[id]; ok {
		p.addr = addr
		p.lastSeen = n.now()
		return
	}
	if n.maxPeers > 0 && len(n.peers) >= n.maxPeers {
		stalest, oldest := "", time.Time{}
		for pid, p := range n.peers {
			if stalest == "" || p.lastSeen.Before(oldest) {
				stalest, oldest = pid, p.lastSeen
			}
		}
		delete(n.peers, stalest)
		n.evictions++
		n.met.Evictions.Inc()
	}
	n.peers[id] = &peerInfo{addr: addr, lastSeen: n.now()}
}

// touch refreshes a known peer's liveness on any authenticated message
// (updates count as proof of life, not just beacons).
func (n *Node) touch(id, addr string) {
	n.mu.Lock()
	if p, ok := n.peers[id]; ok {
		p.addr = addr
		p.lastSeen = n.now()
	}
	n.mu.Unlock()
}

// sweep evicts peers that have been silent longer than the TTL. Runs
// from Beacon, so eviction cadence follows the beacon interval.
func (n *Node) sweep() {
	n.mu.Lock()
	if n.peerTTL <= 0 {
		n.mu.Unlock()
		return
	}
	cutoff := n.now().Add(-n.peerTTL)
	evicted := 0
	for id, p := range n.peers {
		if p.lastSeen.Before(cutoff) {
			delete(n.peers, id)
			n.evictions++
			n.met.Evictions.Inc()
			evicted++
		}
	}
	if evicted > 0 {
		n.met.Peers.Set(int64(len(n.peers)))
	}
	count := len(n.peers)
	n.mu.Unlock()
	if evicted > 0 {
		// Outside n.mu: Put fires Knowledge Base subscriptions.
		n.kb.PutInt("Peers", count)
	}
}

// sendReliable transmits one datagram, retrying transient failures
// with linear backoff; permanent failures (bad address, closed
// transport) are not retried. Returns whether the send succeeded.
func (n *Node) sendReliable(addr string, data []byte) bool {
	n.mu.Lock()
	retries, backoff, sleep := n.retries, n.retryBackoff, n.sleep
	n.bytesSent += uint64(len(data))
	n.met.BytesSent.Add(uint64(len(data)))
	n.mu.Unlock()
	for attempt := 0; ; attempt++ {
		err := n.transport.Send(addr, data)
		if err == nil {
			return true
		}
		if attempt >= retries || IsPermanent(err) {
			return false
		}
		n.mu.Lock()
		n.retried++
		n.met.SendRetries.Inc()
		n.bytesSent += uint64(len(data))
		n.met.BytesSent.Add(uint64(len(data)))
		n.mu.Unlock()
		sleep(backoff * time.Duration(attempt+1))
	}
}
