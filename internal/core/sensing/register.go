package sensing

import "kalis/internal/core/module"

// Register adds every sensing-module factory to the registry.
func Register(r *module.Registry) {
	r.Register(TopologyName, NewTopology)
	r.Register(TrafficStatsName, NewTrafficStats)
	r.Register(MobilityName, NewMobility)
}

// Names lists the registry names of all sensing modules.
func Names() []string {
	return []string{TopologyName, TrafficStatsName, MobilityName}
}
