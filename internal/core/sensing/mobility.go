package sensing

import (
	"math"
	"strconv"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// MobilityName is the registry name of the Mobility Awareness module.
const MobilityName = "MobilityAwarenessModule"

// Mobility is the Mobility Awareness sensing module (§V): it "uses a
// simple approach that detects mobility when any node's signal strength
// changes more than a certain threshold". It maintains a smoothed
// (EWMA) signal-strength knowgget per monitored entity and publishes
// the network-wide Mobility knowgget: true while threshold-exceeding
// RSSI changes are being observed, reverting to false after a quiet
// period with stable signal strengths.
//
// With the "collective" parameter enabled, SignalStrength knowggets are
// shared with peer Kalis nodes, and the module implements the paper's
// §IV-B3 correlation example: "being aware that other Kalis nodes are
// noticing changes in signal strength for specific devices can enable
// the local Kalis node to correlate such changes with those experienced
// locally and detect mobility in the network". A local sub-threshold
// deviation that coincides with a peer-observed change for the same
// entity is promoted to a mobility signal.
type Mobility struct {
	ctx *module.Context

	// threshold is the RSSI deviation (dB) that signals movement.
	threshold float64
	// quiet is how long signal strengths must stay stable before the
	// network is declared static again.
	quiet time.Duration
	// alpha is the EWMA smoothing factor.
	alpha float64
	// minSamples is the per-entity sample count before deviations are
	// trusted (lets the EWMA settle).
	minSamples int
	// collective marks SignalStrength knowggets for peer sharing.
	collective bool

	ewma     map[packet.NodeID]float64
	samples  map[packet.NodeID]int
	lastMove time.Time
	declared bool
	mobile   bool

	// remote mirrors peer-observed signal strengths per entity; a peer
	// change flags the entity for cross-node corroboration.
	remote  map[packet.NodeID]remoteSignal
	subbed  bool
	localID string
}

// remoteSignal is the last peer-reported signal strength for an entity.
type remoteSignal struct {
	value   float64
	changed bool // a threshold/2 change since the previous report
}

var _ module.Module = (*Mobility)(nil)

// NewMobility creates the module. Parameters: "threshold" (dB, default
// 4), "quiet" (duration, default 12s), "collective" (bool, default
// false: share SignalStrength knowggets with peer Kalis nodes).
func NewMobility(params map[string]string) (module.Module, error) {
	m := &Mobility{threshold: 4, quiet: 12 * time.Second, alpha: 0.3, minSamples: 4}
	if v, ok := params["threshold"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, err
		}
		m.threshold = f
	}
	if v, ok := params["quiet"]; ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, err
		}
		m.quiet = d
	}
	if v, ok := params["collective"]; ok {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return nil, err
		}
		m.collective = b
	}
	return m, nil
}

// Name implements module.Module.
func (m *Mobility) Name() string { return MobilityName }

// Kind implements module.Module.
func (m *Mobility) Kind() module.Kind { return module.KindSensing }

// WatchLabels implements module.Module.
func (m *Mobility) WatchLabels() []string { return []string{knowledge.LabelMobility} }

// Required implements module.Module: if mobility is statically known
// ("the network is static and will always remain so", §IV-B3) there is
// nothing to sense.
func (m *Mobility) Required(kb *knowledge.Base) bool {
	return !kb.IsStatic(knowledge.LabelMobility)
}

// Activate implements module.Module.
func (m *Mobility) Activate(ctx *module.Context) {
	m.ctx = ctx
	m.ewma = make(map[packet.NodeID]float64)
	m.samples = make(map[packet.NodeID]int)
	m.lastMove = time.Time{}
	m.declared = false
	m.mobile = false
	m.remote = make(map[packet.NodeID]remoteSignal)
	m.localID = ctx.KB.LocalID()
	if m.collective && !m.subbed {
		m.subbed = true
		ctx.KB.Subscribe(knowledge.LabelSignalStrength, m.onRemoteSignal)
	}
}

// onRemoteSignal mirrors peer-observed signal strengths and marks
// entities whose strength changed at a peer.
func (m *Mobility) onRemoteSignal(kg knowledge.Knowgget) {
	if m.ctx == nil || kg.Creator == m.localID || kg.Entity == "" {
		return
	}
	v, err := strconv.ParseFloat(kg.Value, 64)
	if err != nil {
		return
	}
	id := packet.NodeID(kg.Entity)
	prev, seen := m.remote[id]
	changed := seen && math.Abs(v-prev.value) > m.threshold/2
	m.remote[id] = remoteSignal{value: v, changed: changed || prev.changed}
}

// Deactivate implements module.Module.
func (m *Mobility) Deactivate() { m.ctx = nil }

// HandlePacket implements module.Module.
func (m *Mobility) HandlePacket(c *packet.Captured) {
	if m.ctx == nil || c.Transmitter == "" || c.RSSI == 0 {
		return
	}
	id := c.Transmitter
	kb := m.ctx.KB

	prev, seen := m.ewma[id]
	if !seen {
		m.ewma[id] = c.RSSI
		m.samples[id] = 1
		m.putSignal(id, c.RSSI)
		return
	}
	dev := c.RSSI - prev
	if dev < 0 {
		dev = -dev
	}
	m.samples[id]++
	next := prev + m.alpha*(c.RSSI-prev)
	m.ewma[id] = next
	m.putSignal(id, next)

	moved := dev > m.threshold
	if !moved && m.collective && dev > m.threshold/2 {
		// Cross-node corroboration (§IV-B3): a local sub-threshold
		// deviation plus a peer-observed change for the same entity is
		// strong evidence of genuine movement rather than shadowing.
		if r, ok := m.remote[id]; ok && r.changed {
			moved = true
			m.remote[id] = remoteSignal{value: r.value}
		}
	}
	if m.samples[id] >= m.minSamples && moved {
		m.lastMove = c.Time
		if !m.declared || !m.mobile {
			m.declared = true
			m.mobile = true
			kb.PutBool(knowledge.LabelMobility, true)
		}
		// A node seen moving: its EWMA should track quickly.
		m.ewma[id] = c.RSSI
		return
	}
	// Declare static once signal strengths have been quiet long enough
	// (or immediately if no movement was ever observed and we have
	// sufficient history).
	quietLongEnough := !m.lastMove.IsZero() && c.Time.Sub(m.lastMove) > m.quiet
	neverMoved := m.lastMove.IsZero() && m.samples[id] >= m.minSamples*2
	if quietLongEnough && (!m.declared || m.mobile) {
		m.declared = true
		m.mobile = false
		kb.PutBool(knowledge.LabelMobility, false)
	} else if neverMoved && (!m.declared || m.mobile) {
		m.declared = true
		m.mobile = false
		// Absence-default: no movement in this instance's partition is
		// not proof of a static network — another shard may have seen
		// the node move.
		kb.PutBoolDefault(knowledge.LabelMobility, false)
	}
}

func (m *Mobility) putSignal(id packet.NodeID, v float64) {
	val := strconv.FormatFloat(v, 'f', 1, 64)
	if m.collective {
		m.ctx.KB.PutCollective(knowledge.LabelSignalStrength, string(id), val)
	} else {
		m.ctx.KB.PutEntity(knowledge.LabelSignalStrength, string(id), val)
	}
}
