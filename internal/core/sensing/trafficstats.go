package sensing

import (
	"strconv"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// TrafficStatsName is the registry name of the Traffic Statistics
// Collection module.
const TrafficStatsName = "TrafficStatsModule"

// TrafficStats is the Traffic Statistics Collection sensing module
// (§V): it maintains the frequency of each type of traffic overheard in
// the network — "the number of packets per unit of time (configurable
// but set to 5 seconds by default)" — both for the whole network and
// for each individual monitored device, "to support an accurate
// detection of targeted DoS-like attacks".
//
// Frequencies are published as multilevel TrafficFrequency knowggets:
// "TrafficFrequency.TCPSYN" for the network-wide rate (packets/second)
// and "TrafficFrequency.TCPSYN@<entity>" for the rate of traffic
// destined to each device. Time comes from packet timestamps, so the
// module works identically on live capture and trace replay.
type TrafficStats struct {
	ctx      *module.Context
	interval time.Duration

	windowStart time.Time
	global      map[packet.Kind]int
	perDst      map[packet.Kind]map[packet.NodeID]int
	// prevGlobal/prevDst remember what was published last window so a
	// kind that goes quiet is explicitly published as rate 0 — stale
	// high rates must not linger in the Knowledge Base.
	prevGlobal map[packet.Kind]bool
	prevDst    map[packet.Kind]map[packet.NodeID]bool
}

var _ module.Module = (*TrafficStats)(nil)

// NewTrafficStats creates the module. Parameters: "interval" (Go
// duration, default "5s").
func NewTrafficStats(params map[string]string) (module.Module, error) {
	t := &TrafficStats{interval: 5 * time.Second}
	if v, ok := params["interval"]; ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, err
		}
		t.interval = d
	}
	return t, nil
}

// Name implements module.Module.
func (t *TrafficStats) Name() string { return TrafficStatsName }

// Kind implements module.Module.
func (t *TrafficStats) Kind() module.Kind { return module.KindSensing }

// WatchLabels implements module.Module.
func (t *TrafficStats) WatchLabels() []string { return nil }

// Required implements module.Module: traffic statistics underpin every
// anomaly-based detector and are always required.
func (t *TrafficStats) Required(*knowledge.Base) bool { return true }

// Activate implements module.Module.
func (t *TrafficStats) Activate(ctx *module.Context) {
	t.ctx = ctx
	t.windowStart = time.Time{}
	t.reset()
}

// Deactivate implements module.Module.
func (t *TrafficStats) Deactivate() { t.ctx = nil }

func (t *TrafficStats) reset() {
	t.global = make(map[packet.Kind]int)
	t.perDst = make(map[packet.Kind]map[packet.NodeID]int)
}

// HandlePacket implements module.Module.
func (t *TrafficStats) HandlePacket(c *packet.Captured) {
	if t.ctx == nil {
		return
	}
	if t.windowStart.IsZero() {
		t.windowStart = c.Time
	}
	// Close out full windows (handles idle gaps spanning several
	// intervals by publishing only the window that had traffic; rates
	// decay naturally as new windows publish lower counts).
	for c.Time.Sub(t.windowStart) >= t.interval {
		t.publish()
		t.reset()
		t.windowStart = t.windowStart.Add(t.interval)
		if c.Time.Sub(t.windowStart) >= 10*t.interval {
			// Long silence: jump to the current window.
			t.windowStart = c.Time.Truncate(t.interval)
		}
	}
	t.global[c.Kind]++
	m := t.perDst[c.Kind]
	if m == nil {
		m = make(map[packet.NodeID]int)
		t.perDst[c.Kind] = m
	}
	if c.Dst != "" {
		m[c.Dst]++
	}
}

//lint:coldpath publish runs once per stats interval tick; the per-kind key concatenations are off the per-packet budget
func (t *TrafficStats) publish() {
	kb := t.ctx.KB
	secs := t.interval.Seconds()
	for kind, n := range t.global {
		kb.Put(knowledge.LabelTrafficFrequency+"."+kind.String(), formatRate(float64(n)/secs))
	}
	for kind := range t.prevGlobal {
		if _, ok := t.global[kind]; !ok {
			kb.Put(knowledge.LabelTrafficFrequency+"."+kind.String(), formatRate(0))
		}
	}
	for kind, m := range t.perDst {
		for dst, n := range m {
			kb.PutEntity(knowledge.LabelTrafficFrequency+"."+kind.String(), string(dst), formatRate(float64(n)/secs))
		}
	}
	for kind, prev := range t.prevDst {
		for dst := range prev {
			if t.perDst[kind] == nil || t.perDst[kind][dst] == 0 {
				kb.PutEntity(knowledge.LabelTrafficFrequency+"."+kind.String(), string(dst), formatRate(0))
			}
		}
	}
	t.prevGlobal = make(map[packet.Kind]bool, len(t.global))
	for kind := range t.global {
		t.prevGlobal[kind] = true
	}
	t.prevDst = make(map[packet.Kind]map[packet.NodeID]bool, len(t.perDst))
	for kind, m := range t.perDst {
		set := make(map[packet.NodeID]bool, len(m))
		for dst := range m {
			set[dst] = true
		}
		t.prevDst[kind] = set
	}
}

func formatRate(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
