package sensing

import (
	"net/netip"
	"strconv"
	"testing"
	"time"

	"kalis/internal/core/datastore"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/stack"
)

var t0 = time.Unix(1500000000, 0).UTC()

func mkCap(t *testing.T, medium packet.Medium, raw []byte, at time.Time, rssi float64) *packet.Captured {
	t.Helper()
	c, err := stack.Decode(medium, raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c.Time = at
	c.RSSI = rssi
	return c
}

func newCtx(kb *knowledge.Base) *module.Context {
	return &module.Context{KB: kb, Store: datastore.New(64), Emit: func(module.Alert) {}, KnowledgeDriven: true}
}

func TestTopologyDetectsMultihopFromTHL(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, err := NewTopology(nil)
	if err != nil {
		t.Fatal(err)
	}
	mod.Activate(newCtx(kb))

	// Origin transmission (THL 0, src == transmitter): no evidence.
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(3, 2, 3, 1, 0, 20, nil), t0, -60))
	if _, ok := kb.Bool(knowledge.LabelMultihop); ok {
		t.Fatal("multihop declared too early")
	}
	// Forwarded frame (THL 1, transmitter != origin): multi-hop.
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPData(2, 1, 3, 1, 1, 20, nil), t0.Add(time.Second), -61))
	if v, ok := kb.Bool(knowledge.LabelMultihop); !ok || !v {
		t.Fatal("multihop not declared")
	}
}

func TestTopologyDeclaresSingleHop(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, _ := NewTopology(map[string]string{"singleHopAfter": "10"})
	mod.Activate(newCtx(kb))
	src := netip.MustParseAddr("192.168.1.5")
	dst := netip.MustParseAddr("192.168.1.10")
	for i := 0; i < 10; i++ {
		raw := stack.BuildICMPEcho(src, dst, icmp.TypeEchoRequest, 1, uint16(i), 64)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(time.Duration(i)*time.Second), -55))
	}
	if v, ok := kb.Bool(knowledge.LabelMultihop); !ok || v {
		t.Fatalf("single-hop not declared: v=%v ok=%v", v, ok)
	}
	if v, _ := kb.Value(knowledge.LabelMediums + ".wifi"); v != "true" {
		t.Error("wifi medium knowgget missing")
	}
}

func TestTopologyDetectsRPLAndMesh(t *testing.T) {
	for name, raw := range map[string][]byte{
		"rpl":  stack.BuildRPLDIO(3, 1, 512, 1),
		"mesh": stack.BuildSixLowPANData(4, 2, 9, 1, 3, 5, []byte{1}),
	} {
		kb := knowledge.NewBase("K1")
		mod, _ := NewTopology(nil)
		mod.Activate(newCtx(kb))
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0, -60))
		if v, ok := kb.Bool(knowledge.LabelMultihop); !ok || !v {
			t.Errorf("%s: multihop not declared", name)
		}
	}
}

func TestTopologyCountsNodesAndEdges(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, _ := NewTopology(nil)
	mod.Activate(newCtx(kb))
	for i := 2; i <= 4; i++ {
		raw := stack.BuildCTPData(uint16(i), 1, uint16(i), 1, 0, 20, nil)
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0, -60))
	}
	if n, ok := kb.Int(knowledge.LabelMonitoredNodes); !ok || n != 4 { // 3 senders + dst 1
		t.Errorf("MonitoredNodes = %d", n)
	}
	if len(kb.QueryPrefix("K1$Edge@")) != 3 {
		t.Errorf("edges = %d, want 3", len(kb.QueryPrefix("K1$Edge@")))
	}
}

func TestTopologyNotRequiredWhenStatic(t *testing.T) {
	kb := knowledge.NewBase("K1")
	kb.PutStatic(knowledge.LabelMultihop, "", "true")
	mod, _ := NewTopology(nil)
	if mod.Required(kb) {
		t.Error("topology discovery should not be required with static knowledge")
	}
}

func TestTrafficStatsPublishesRates(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, _ := NewTrafficStats(map[string]string{"interval": "5s"})
	mod.Activate(newCtx(kb))

	src := netip.MustParseAddr("192.168.1.66")
	victim := netip.MustParseAddr("192.168.1.10")
	// 10 echo replies in the first 5 s window, then one packet in the
	// next window to trigger publication.
	for i := 0; i < 10; i++ {
		raw := stack.BuildICMPEcho(src, victim, icmp.TypeEchoReply, 1, uint16(i), 64)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(time.Duration(i)*400*time.Millisecond), -60))
	}
	raw := stack.BuildICMPEcho(src, victim, icmp.TypeEchoRequest, 1, 99, 64)
	mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(6*time.Second), -60))

	v, ok := kb.Value(knowledge.LabelTrafficFrequency + ".ICMPEchoReply")
	if !ok {
		t.Fatal("global rate missing")
	}
	if f, _ := strconv.ParseFloat(v, 64); f != 2.0 {
		t.Errorf("rate = %s, want 2.000", v)
	}
	ev, ok := kb.EntityValue(knowledge.LabelTrafficFrequency+".ICMPEchoReply", "192.168.1.10")
	if !ok {
		t.Fatal("per-victim rate missing")
	}
	if f, _ := strconv.ParseFloat(ev, 64); f != 2.0 {
		t.Errorf("per-victim rate = %s", ev)
	}
}

func TestTrafficStatsZeroesQuietKinds(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, _ := NewTrafficStats(map[string]string{"interval": "5s"})
	mod.Activate(newCtx(kb))
	src := netip.MustParseAddr("192.168.1.66")
	victim := netip.MustParseAddr("192.168.1.10")
	for i := 0; i < 5; i++ {
		raw := stack.BuildICMPEcho(src, victim, icmp.TypeEchoReply, 1, uint16(i), 64)
		mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(time.Duration(i)*time.Second), -60))
	}
	// Two quiet windows later, a different-kind packet arrives.
	raw := stack.BuildUDP(src, victim, 1, 2, 1, nil)
	mod.HandlePacket(mkCap(t, packet.MediumWiFi, raw, t0.Add(16*time.Second), -60))

	v, ok := kb.Value(knowledge.LabelTrafficFrequency + ".ICMPEchoReply")
	if !ok {
		t.Fatal("rate missing")
	}
	if f, _ := strconv.ParseFloat(v, 64); f != 0 {
		t.Errorf("stale rate = %s, want 0", v)
	}
}

func TestTrafficStatsAlwaysRequired(t *testing.T) {
	mod, _ := NewTrafficStats(nil)
	if !mod.Required(knowledge.NewBase("K1")) {
		t.Error("traffic stats should always be required")
	}
}

func TestMobilityDeclaresStaticThenMobile(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, _ := NewMobility(map[string]string{"threshold": "6"})
	mod.Activate(newCtx(kb))

	raw := stack.BuildCTPBeacon(2, 1, 10, 1)
	// Stable RSSI: declared static after enough samples.
	for i := 0; i < 10; i++ {
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0.Add(time.Duration(i)*time.Second), -60+float64(i%2)))
	}
	if v, ok := kb.Bool(knowledge.LabelMobility); !ok || v {
		t.Fatalf("static not declared: v=%v ok=%v", v, ok)
	}
	// Large RSSI swing: mobile.
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0.Add(11*time.Second), -80))
	if v, _ := kb.Bool(knowledge.LabelMobility); !v {
		t.Fatal("mobility not declared after jump")
	}
	// Quiet again for longer than the quiet period: static.
	for i := 0; i < 20; i++ {
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0.Add(time.Duration(12+i)*time.Second), -80.5))
	}
	if v, _ := kb.Bool(knowledge.LabelMobility); v {
		t.Fatal("static not re-declared after quiet period")
	}
}

func TestMobilityPublishesSignalStrength(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, _ := NewMobility(nil)
	mod.Activate(newCtx(kb))
	raw := stack.BuildCTPBeacon(5, 1, 10, 1)
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0, -63))
	if v, ok := kb.EntityFloat(knowledge.LabelSignalStrength, "0x0005"); !ok || v != -63 {
		t.Errorf("SignalStrength = %v ok=%v", v, ok)
	}
}

func TestMobilityNotRequiredWhenStatic(t *testing.T) {
	kb := knowledge.NewBase("K1")
	kb.PutStatic(knowledge.LabelMobility, "", "false")
	mod, _ := NewMobility(nil)
	if mod.Required(kb) {
		t.Error("mobility awareness should not be required with static knowledge")
	}
}

func TestMobilityCollectiveCorrelation(t *testing.T) {
	kb := knowledge.NewBase("K1")
	mod, _ := NewMobility(map[string]string{"threshold": "6", "collective": "true"})
	mod.Activate(newCtx(kb))

	raw := stack.BuildCTPBeacon(5, 1, 10, 1)
	// Stable local baseline for entity 0x0005.
	for i := 0; i < 8; i++ {
		mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0.Add(time.Duration(i)*time.Second), -60))
	}
	if v, _ := kb.Bool(knowledge.LabelMobility); v {
		t.Fatal("mobile before any deviation")
	}
	// A local sub-threshold deviation alone (4 dB < 6 dB): not enough.
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0.Add(9*time.Second), -64))
	if v, _ := kb.Bool(knowledge.LabelMobility); v {
		t.Fatal("sub-threshold deviation alone declared mobility")
	}
	// A peer (K2) reports a significant change for the same entity...
	kb.AcceptRemote("K2", knowledge.Knowgget{
		Label: knowledge.LabelSignalStrength, Value: "-70", Creator: "K2", Entity: "0x0005"})
	kb.AcceptRemote("K2", knowledge.Knowgget{
		Label: knowledge.LabelSignalStrength, Value: "-77", Creator: "K2", Entity: "0x0005"})
	// ...and the next local sub-threshold deviation corroborates it
	// (EWMA sits near -61.2 after the -64 sample; -65 deviates ~3.8 dB,
	// between threshold/2 and threshold).
	mod.HandlePacket(mkCap(t, packet.MediumIEEE802154, raw, t0.Add(10*time.Second), -65))
	if v, _ := kb.Bool(knowledge.LabelMobility); !v {
		t.Fatal("correlated deviation did not declare mobility")
	}
	// The local SignalStrength knowggets were shared as collective.
	kg, ok := kb.Get("K1$" + knowledge.LabelSignalStrength + "@0x0005")
	if !ok || !kg.Collective {
		t.Errorf("local signal knowgget not collective: %+v", kg)
	}
}

func TestSensingParamErrors(t *testing.T) {
	if _, err := NewTopology(map[string]string{"singleHopAfter": "x"}); err == nil {
		t.Error("bad singleHopAfter accepted")
	}
	if _, err := NewTrafficStats(map[string]string{"interval": "x"}); err == nil {
		t.Error("bad interval accepted")
	}
	if _, err := NewMobility(map[string]string{"threshold": "x"}); err == nil {
		t.Error("bad threshold accepted")
	}
	if _, err := NewMobility(map[string]string{"quiet": "x"}); err == nil {
		t.Error("bad quiet accepted")
	}
	if _, err := NewMobility(map[string]string{"collective": "x"}); err == nil {
		t.Error("bad collective accepted")
	}
}
