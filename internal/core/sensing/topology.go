// Package sensing implements Kalis' sensing modules — the autonomous
// knowledge-discovery mechanisms of §IV-B4: Topology Discovery, Traffic
// Statistics Collection, and Mobility Awareness. Sensing modules turn
// raw captures into knowggets; they never raise alerts.
package sensing

import (
	"strconv"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/sixlowpan"
	"kalis/internal/proto/zigbee"
)

// TopologyName is the registry name of the Topology Discovery module.
const TopologyName = "TopologyDiscoveryModule"

// Topology is the Topology Discovery sensing module. It reconstructs
// the local topology from captured traffic and differentiates multi-hop
// from single-hop networks using: the communication medium, the
// detection of known routing protocols (RPL in 6LoWPAN, CTP in TinyOS),
// the inclusion of forwarding/next-hop headers in packets, and direct
// evidence of per-hop forwarding (§V "Sensing Modules").
//
// It also publishes the observed mediums (Mediums.*), the number of
// distinct monitored entities (MonitoredNodes), and the communication
// graph edges it reconstructs, which detection modules use for
// hop-distance reasoning.
type Topology struct {
	ctx *module.Context

	// singleHopAfter is the packet count after which, absent any
	// multi-hop evidence, the network is declared single-hop.
	singleHopAfter int

	packets  int
	multihop bool
	declared bool
	secured  bool
	nodes    map[packet.NodeID]bool
	edges    map[packet.NodeID]map[packet.NodeID]bool
	mediums  map[packet.Medium]bool
}

var _ module.Module = (*Topology)(nil)

// NewTopology creates the module. Parameters: "singleHopAfter" (packet
// count, default 30).
func NewTopology(params map[string]string) (module.Module, error) {
	t := &Topology{singleHopAfter: 30}
	if v, ok := params["singleHopAfter"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, err
		}
		t.singleHopAfter = n
	}
	return t, nil
}

// Name implements module.Module.
func (t *Topology) Name() string { return TopologyName }

// Kind implements module.Module.
func (t *Topology) Kind() module.Kind { return module.KindSensing }

// WatchLabels implements module.Module.
func (t *Topology) WatchLabels() []string { return []string{knowledge.LabelMultihop} }

// Required implements module.Module: discovery is unnecessary when the
// topology is statically known.
func (t *Topology) Required(kb *knowledge.Base) bool {
	return !kb.IsStatic(knowledge.LabelMultihop)
}

// Activate implements module.Module.
func (t *Topology) Activate(ctx *module.Context) {
	t.ctx = ctx
	t.packets = 0
	t.multihop = false
	t.declared = false
	t.secured = false
	t.nodes = make(map[packet.NodeID]bool)
	t.edges = make(map[packet.NodeID]map[packet.NodeID]bool)
	t.mediums = make(map[packet.Medium]bool)
}

// Deactivate implements module.Module.
func (t *Topology) Deactivate() { t.ctx = nil }

// HandlePacket implements module.Module.
func (t *Topology) HandlePacket(c *packet.Captured) {
	if t.ctx == nil {
		return
	}
	t.packets++
	kb := t.ctx.KB

	if !t.mediums[c.Medium] {
		t.mediums[c.Medium] = true
		//lint:ignore hotalloc first-seen gated: runs once per newly observed medium, a handful over a deployment
		kb.Put(knowledge.LabelMediums+"."+c.Medium.String(), "true")
	}
	t.observeNode(c.Transmitter)
	t.observeNode(c.Src)
	t.observeNode(c.Dst)
	t.observeEdge(c.Transmitter, c.Dst)

	if evidence, ok := t.multihopEvidence(c); ok && !t.multihop {
		t.multihop = true
		t.declared = true
		kb.Put("MultihopEvidence", evidence)
		kb.PutBool(knowledge.LabelMultihop, true)
	}
	if !t.declared && t.packets >= t.singleHopAfter {
		t.declared = true
		// Absence-default: this instance saw enough traffic without a
		// forwarding chain. On a sharded node another instance may hold
		// the proof, so the default must not clobber evidence.
		kb.PutBoolDefault(knowledge.LabelMultihop, false)
	}
	// Link-layer security is a prevention-technique feature (§III-B2):
	// devices that encrypt are immune to data alteration, so observing
	// the 802.15.4 security bit lets Kalis deactivate that detection.
	if mac, ok := c.Layer("ieee802154").(*ieee802154.Frame); ok && mac.Security && !t.secured {
		t.secured = true
		kb.PutBool(knowledge.LabelEncrypted, true)
	}
}

func (t *Topology) observeNode(id packet.NodeID) {
	if id == "" || id == packet.Broadcast || t.nodes[id] {
		return
	}
	t.nodes[id] = true
	// High-water mark: per-shard instances each see a traffic
	// partition, so last-writer-wins would undercount on whichever
	// shard wrote last.
	t.ctx.KB.PutIntMax(knowledge.LabelMonitoredNodes, len(t.nodes))
}

func (t *Topology) observeEdge(from, to packet.NodeID) {
	if from == "" || to == "" || to == packet.Broadcast || from == to {
		return
	}
	if t.edges[from] == nil {
		t.edges[from] = make(map[packet.NodeID]bool)
	}
	if !t.edges[from][to] {
		t.edges[from][to] = true
		//lint:ignore hotalloc first-seen gated: runs once per newly observed edge; the edge set is topology-bounded, not packet-bounded
		t.ctx.KB.PutEntity("Edge", string(from)+">"+string(to), "true")
	}
}

// multihopEvidence inspects one capture for multi-hop signals.
func (t *Topology) multihopEvidence(c *packet.Captured) (string, bool) {
	// Direct evidence: the frame's end-to-end source differs from the
	// per-hop transmitter — someone is forwarding.
	if c.Src != "" && c.Transmitter != "" && c.Src != c.Transmitter {
		return "forwarding (src != transmitter)", true
	}
	for _, l := range c.Layers {
		switch v := l.(type) {
		case *ctp.Data:
			if v.THL > 0 {
				return "CTP THL > 0", true
			}
		case *sixlowpan.Packet:
			if v.Mesh != nil {
				return "6LoWPAN mesh header", true
			}
		case *sixlowpan.RPLMessage:
			return "RPL control traffic", true
		case *zigbee.Frame:
			if v.SourceRoute {
				return "ZigBee source route", true
			}
			if v.IsRouting() && (v.Command == zigbee.CmdRouteRequest || v.Command == zigbee.CmdRouteReply || v.Command == zigbee.CmdRouteRecord) {
				return "ZigBee route discovery", true
			}
		}
	}
	return "", false
}
