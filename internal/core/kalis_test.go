package core

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/stack"
	"kalis/internal/trace"
)

var t0 = time.Unix(1500000000, 0).UTC()

func mkCap(t *testing.T, medium packet.Medium, raw []byte, at time.Time, rssi float64) *packet.Captured {
	t.Helper()
	c, err := stack.Decode(medium, raw)
	if err != nil {
		t.Fatal(err)
	}
	c.Time = at
	c.RSSI = rssi
	return c
}

func TestNewInstallsFullLibrary(t *testing.T) {
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true, InstallAll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if got := len(k.Manager().Installed()); got != 16 { // 3 sensing + 13 detection
		t.Errorf("installed = %d, want 16", got)
	}
	// Only sensing modules may be active with an empty Knowledge Base.
	for _, name := range k.ActiveModules() {
		switch name {
		case "TopologyDiscoveryModule", "TrafficStatsModule", "MobilityAwarenessModule":
		default:
			t.Errorf("detection module %s active without knowledge", name)
		}
	}
}

func TestConfigDrivenSetup(t *testing.T) {
	cfg := `
modules = {
	TrafficStatsModule (interval=2s),
	TopologyDiscoveryModule
}
knowggets = {
	Mobility = false
}
`
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true, ConfigText: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if got := k.Manager().Installed(); len(got) != 2 {
		t.Errorf("installed = %v", got)
	}
	if v, ok := k.KB().Bool(knowledge.LabelMobility); !ok || v {
		t.Error("static knowgget not loaded")
	}
	if !k.KB().IsStatic(knowledge.LabelMobility) {
		t.Error("static knowgget not marked static")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{ConfigText: "modules = {"}); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := New(Config{ConfigText: "modules = { NoSuchModule }"}); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestEndToEndKnowledgeActivationAlert(t *testing.T) {
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true, InstallAll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	var alerts []module.Alert
	k.OnAlert(func(a module.Alert) { alerts = append(alerts, a) })
	var knowggets []knowledge.Knowgget
	k.OnKnowledge(func(kg knowledge.Knowgget) { knowggets = append(knowggets, kg) })

	// Multi-hop CTP traffic with a blackhole: relay 2 receives but
	// never forwards.
	k.HandleCapture(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), t0, -50))
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i) * 3 * time.Second)
		k.HandleCapture(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 1, 20, []byte{0x01, uint8(i)}), at, -65))
	}
	if len(alerts) == 0 {
		t.Fatal("no alert from end-to-end pipeline")
	}
	if alerts[0].Attack != "blackhole" || alerts[0].Suspects[0] != "0x0002" {
		t.Errorf("alert = %+v", alerts[0])
	}
	if len(knowggets) == 0 {
		t.Error("no knowledge events published")
	}
	if k.Store().Total() != 31 {
		t.Errorf("data store total = %d", k.Store().Total())
	}
}

func TestAsyncModeDeliversEverything(t *testing.T) {
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true, InstallAll: true, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		k.HandleCapture(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 1, 20, []byte{0x01, uint8(i)}), at, -65))
	}
	if err := k.Close(); err != nil { // drains the async bus
		t.Fatal(err)
	}
	if k.Store().Total() != 50 {
		t.Errorf("total = %d, want 50 after drain", k.Store().Total())
	}
}

func TestTrafficLogging(t *testing.T) {
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true, InstallAll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	var buf bytes.Buffer
	k.SetLog(&buf)
	for i := 0; i < 5; i++ {
		k.HandleCapture(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPBeacon(2, 1, 10, uint8(i)), t0.Add(time.Duration(i)*time.Second), -60))
	}
	if err := k.Store().FlushLog(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(&buf)
	if err != nil || len(recs) != 5 {
		t.Fatalf("logged %d records, err %v", len(recs), err)
	}
}

func TestEncryptedNetworkDisablesAlterationDetection(t *testing.T) {
	// The Fig. 3 prevention-technique feature: observing link-layer
	// security means the devices are immune to data alteration, so the
	// corresponding module deactivates itself.
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true, InstallAll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()

	// Multi-hop unencrypted traffic first: alteration detection is on.
	k.HandleCapture(mkCap(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), t0, -50))
	k.HandleCapture(mkCap(t, packet.MediumIEEE802154,
		stack.BuildCTPData(2, 1, 3, 1, 1, 10, []byte{0x01, 1}), t0.Add(time.Second), -55))
	if !contains(k.ActiveModules(), "DataAlterationModule") {
		t.Fatalf("alteration module inactive on plaintext network: %v", k.ActiveModules())
	}

	// A secured frame appears: the Encrypted knowgget flips and the
	// module deactivates.
	sec := &ieee802154.Frame{
		Type:          ieee802154.FrameData,
		Security:      true,
		PANIDCompress: true,
		Seq:           9,
		DstPAN:        0x1234,
		DstMode:       ieee802154.AddrShort,
		SrcMode:       ieee802154.AddrShort,
		DstShort:      1,
		SrcShort:      2,
		Payload:       []byte{0xde, 0xad}, // opaque ciphertext
	}
	k.HandleCapture(mkCap(t, packet.MediumIEEE802154, sec.Encode(), t0.Add(2*time.Second), -55))
	if v, ok := k.KB().Bool(knowledge.LabelEncrypted); !ok || !v {
		t.Fatal("Encrypted knowgget not set from secured frame")
	}
	if contains(k.ActiveModules(), "DataAlterationModule") {
		t.Errorf("alteration module still active on encrypted network: %v", k.ActiveModules())
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestInstallUnknownModule(t *testing.T) {
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if err := k.Install("NoSuchModule", nil); err == nil {
		t.Error("unknown module installed")
	}
}

func TestDefaultNodeID(t *testing.T) {
	k, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if k.ID() != "K1" {
		t.Errorf("ID = %q", k.ID())
	}
}

func TestTelemetryWiredThroughPipeline(t *testing.T) {
	k, err := New(Config{NodeID: "K1", KnowledgeDriven: true, InstallAll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		k.HandleCapture(mkCap(t, packet.MediumIEEE802154,
			stack.BuildCTPBeacon(2, 1, 10, uint8(i)), at, -60))
	}

	var sb strings.Builder
	if err := k.Telemetry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "kalis_packets_total 20") {
		t.Errorf("packets counter missing/wrong:\n%s", out)
	}
	if !strings.Contains(out, `kalis_bus_publishes_total{topic="packet"} 20`) {
		t.Errorf("bus publish counter missing/wrong:\n%s", out)
	}
	if !strings.Contains(out, "kalis_store_window_occupancy 20") {
		t.Errorf("window occupancy missing/wrong:\n%s", out)
	}
	if active := k.Telemetry().Snapshot()["kalis_modules_active"]; active.Value.(int64) !=
		int64(len(k.ActiveModules())) {
		t.Errorf("kalis_modules_active = %v, ActiveModules = %d",
			active.Value, len(k.ActiveModules()))
	}
	// Sensing modules ran on every packet, so their latency histograms
	// must have observations.
	if !regexp.MustCompile(`kalis_module_packet_seconds_count\{module="TopologyDiscoveryModule"\} 20`).
		MatchString(out) {
		t.Errorf("module latency histogram missing:\n%s", out)
	}
}
