package knowledge

import (
	"reflect"
	"testing"
)

func TestLocalCollectiveVersionsMonotonic(t *testing.T) {
	b := NewBase("K1")
	b.PutCollective(LabelMultihop, "", "true")
	b.PutCollective(LabelSuspectBlackhole, "0x01", "0.4")
	b.PutCollective(LabelSuspectBlackhole, "0x01", "0.4") // no-op: burns no version
	b.PutCollective(LabelSuspectBlackhole, "0x01", "0.9")

	if got := b.LocalVersion(); got != 3 {
		t.Fatalf("LocalVersion = %d, want 3", got)
	}
	k, _ := b.Get(Knowgget{Creator: "K1", Label: LabelSuspectBlackhole, Entity: "0x01"}.Key())
	if k.Version != 3 {
		t.Fatalf("overwritten key carries Version %d, want 3", k.Version)
	}
	// Non-collective puts are unversioned.
	b.PutBool(LabelMobility, true)
	k, _ = b.Get(Knowgget{Creator: "K1", Label: LabelMobility}.Key())
	if k.Version != 0 {
		t.Fatalf("local non-collective knowgget has Version %d, want 0", k.Version)
	}
}

func TestAcceptGossipVersionGuardAndRelay(t *testing.T) {
	b := NewBase("K1")
	// Relayed third-party creator is accepted (from != creator).
	if !b.AcceptGossip("K2", Knowgget{Label: "X", Value: "1", Creator: "K3", Version: 2}) {
		t.Fatal("relayed knowgget rejected")
	}
	// Stale or equal versions are rejected.
	if b.AcceptGossip("K2", Knowgget{Label: "X", Value: "9", Creator: "K3", Version: 2}) {
		t.Fatal("equal version accepted")
	}
	if b.AcceptGossip("K2", Knowgget{Label: "X", Value: "9", Creator: "K3", Version: 1}) {
		t.Fatal("stale version accepted")
	}
	// Newer version wins, even with the same value (refresh).
	if !b.AcceptGossip("K2", Knowgget{Label: "X", Value: "1", Creator: "K3", Version: 5}) {
		t.Fatal("newer same-value version rejected")
	}
	k, _ := b.Get(Knowgget{Creator: "K3", Label: "X"}.Key())
	if k.Version != 5 || k.Value != "1" || !k.Collective {
		t.Fatalf("stored = %+v, want Version 5 Value 1 Collective", k)
	}
	// Local creator and unversioned knowggets are always rejected.
	if b.AcceptGossip("K2", Knowgget{Label: "X", Value: "evil", Creator: "K1", Version: 99}) {
		t.Fatal("gossip overwrote local creator namespace")
	}
	if b.AcceptGossip("K2", Knowgget{Label: "X", Value: "1", Creator: "K4"}) {
		t.Fatal("unversioned gossip accepted")
	}
	if b.AcceptGossip("K1", Knowgget{Label: "X", Value: "1", Creator: "K4", Version: 1}) {
		t.Fatal("self-addressed gossip accepted")
	}
}

func TestAcceptGossipNotifiesOnlyOnValueChange(t *testing.T) {
	b := NewBase("K1")
	var fired []string
	b.Subscribe("X", func(k Knowgget) { fired = append(fired, k.Value) })
	b.AcceptGossip("K2", Knowgget{Label: "X", Value: "a", Creator: "K2", Version: 1})
	b.AcceptGossip("K2", Knowgget{Label: "X", Value: "a", Creator: "K2", Version: 2}) // refresh
	b.AcceptGossip("K2", Knowgget{Label: "X", Value: "b", Creator: "K2", Version: 3})
	if !reflect.DeepEqual(fired, []string{"a", "b"}) {
		t.Fatalf("subscriber fired for %v, want [a b]", fired)
	}
}

func TestDigestAndCollectiveSince(t *testing.T) {
	b := NewBase("K1")
	b.PutCollective("A", "", "1")
	b.PutCollective("B", "", "2")
	b.AcceptGossip("K2", Knowgget{Label: "C", Value: "3", Creator: "K2", Version: 7})
	b.AcceptGossip("K2", Knowgget{Label: "D", Value: "4", Creator: "K3", Version: 2})

	want := map[string]uint64{"K1": 2, "K2": 7, "K3": 2}
	if got := b.Digest(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Digest = %v, want %v", got, want)
	}

	delta := b.CollectiveSince("K1", 1)
	if len(delta) != 1 || delta[0].Label != "B" || delta[0].Version != 2 {
		t.Fatalf("CollectiveSince(K1,1) = %+v", delta)
	}
	if got := b.CollectiveSince("K2", 7); len(got) != 0 {
		t.Fatalf("CollectiveSince(K2,7) = %+v, want empty", got)
	}
	all := b.CollectiveSince("K1", 0)
	if len(all) != 2 || all[0].Version != 1 || all[1].Version != 2 {
		t.Fatalf("CollectiveSince(K1,0) not version-ordered: %+v", all)
	}
}

func TestRestoreResumesLocalVersionCounter(t *testing.T) {
	b := NewBase("K1")
	b.Restore([]Knowgget{
		{Label: "A", Value: "1", Creator: "K1", Collective: true, Version: 4},
		{Label: "B", Value: "2", Creator: "K2", Collective: true, Version: 9},
	}, nil)
	if got := b.LocalVersion(); got != 4 {
		t.Fatalf("LocalVersion after restore = %d, want 4", got)
	}
	b.PutCollective("A", "", "next")
	k, _ := b.Get(Knowgget{Creator: "K1", Label: "A"}.Key())
	if k.Version != 5 {
		t.Fatalf("post-restore version = %d, want 5", k.Version)
	}
}
