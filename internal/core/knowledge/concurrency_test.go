package knowledge

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAccess hammers the Knowledge Base from writers,
// readers and subscribers at once; run with -race. The Base backs an
// async event-bus deployment, so it must be safe under concurrency.
func TestConcurrentAccess(t *testing.T) {
	b := NewBase("K1")
	b.Subscribe("TrafficFrequency", func(Knowgget) {})
	b.SubscribeAll(func(Knowgget) {})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Put(fmt.Sprintf("TrafficFrequency.Kind%d", w), fmt.Sprintf("%d", i))
				b.PutEntity("SignalStrength", fmt.Sprintf("node-%d", w), "-60")
				b.PutCollective("Shared", fmt.Sprintf("e%d", w), "v")
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = b.QueryLocal()
				_, _ = b.Float("TrafficFrequency.Kind0")
				_ = b.QueryEntity("node-1")
				_ = b.Snapshot()
				_ = b.Len()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.AcceptRemote("K2", Knowgget{Label: "X", Value: fmt.Sprint(i), Creator: "K2"})
			b.Delete("K2$X")
		}
	}()
	wg.Wait()

	if b.Len() == 0 {
		t.Error("base empty after concurrent writes")
	}
}
