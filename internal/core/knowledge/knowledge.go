// Package knowledge implements Kalis' Knowledge Base: the centralized
// store of knowggets ("knowledge nuggets") describing the features of
// the monitored entities and networks (§IV-B3).
//
// Following the paper's implementation (§V, Fig. 5b), each knowgget
// k = ⟨label, value, creator, entity⟩ is stored as a key/value pair of
// strings with the key encoded as "creator$label@entity" (the "@entity"
// suffix is present only for entity-specific knowggets). Multilevel
// knowggets are flattened with dot notation ("TrafficFrequency.TCPSYN").
// Lookups exploit the encoding: local vs collective knowggets by
// creator prefix, entity-specific knowggets by suffix, single knowggets
// by exact match.
package knowledge

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Well-known knowgget labels shared by the sensing modules (producers)
// and detection modules (consumers).
const (
	LabelMultihop         = "Multihop"         // bool: topology is multi-hop
	LabelMobility         = "Mobility"         // bool: network is mobile
	LabelMonitoredNodes   = "MonitoredNodes"   // int: distinct entities seen
	LabelSignalStrength   = "SignalStrength"   // float per entity: smoothed RSSI dBm
	LabelTrafficFrequency = "TrafficFrequency" // multilevel: packets/s per kind
	LabelMediums          = "Mediums"          // multilevel: observed mediums
	LabelEmergentSource   = "EmergentSource"   // per entity: traffic source with no inbound
	LabelSuspectBlackhole = "SuspectBlackhole" // per entity: local blackhole suspicion
	LabelEncrypted        = "Encrypted"        // bool: link-layer security observed
	LabelModuleHealth     = "ModuleHealth"     // multilevel: supervisor state per module
)

// Knowgget is one piece of knowledge: a labelled value with provenance.
type Knowgget struct {
	// Label describes the information, dot-flattened for multilevel
	// knowggets (e.g. "TrafficFrequency.TCPSYN").
	Label string
	// Value is the string-encoded value.
	Value string
	// Creator is the Kalis node that created the knowgget.
	Creator string
	// Entity is the monitored entity the knowgget refers to, or "".
	Entity string
	// Collective marks the knowgget for synchronization to peer Kalis
	// nodes.
	Collective bool
	// Version is the creator-local monotonic version of this knowgget,
	// assigned when the creator accepts a collective change. The
	// anti-entropy gossip layer compares per-creator version vectors
	// built from these to pull only missing deltas. Version 0 means
	// "unversioned" (local, non-collective state never gossiped).
	Version uint64
}

// Key returns the encoded storage key "creator$label@entity". The
// separator bytes '$' and '@' (and the escape byte '%') are
// percent-escaped inside each component, so ParseKey(k.Key()) is
// lossless for any creator/label/entity — the durable snapshot and
// journal formats depend on this round trip.
func (k Knowgget) Key() string {
	//lint:ignore hotalloc storage keys are composite strings by design ("creator$label@entity", §V); Key runs per put/lookup, both change- or gate-bounded
	key := EscapeComponent(k.Creator) + "$" + EscapeComponent(k.Label)
	if k.Entity != "" {
		//lint:ignore hotalloc see above: composite storage keys are the KB's string-keyed design
		key += "@" + EscapeComponent(k.Entity)
	}
	return key
}

// ParseKey decodes a storage key back into (creator, label, entity).
// It is the exact inverse of Knowgget.Key.
func ParseKey(key string) (creator, label, entity string) {
	if i := strings.IndexByte(key, '$'); i >= 0 {
		creator, key = key[:i], key[i+1:]
	}
	if i := strings.LastIndexByte(key, '@'); i >= 0 {
		key, entity = key[:i], key[i+1:]
	}
	return unescapeComponent(creator), unescapeComponent(key), unescapeComponent(entity)
}

// keyReserved are the bytes that cannot appear raw inside a key
// component: the two separators and the escape byte itself.
const keyReserved = "$@%"

// EscapeComponent percent-escapes the key-reserved bytes of one key
// component. Components without reserved bytes (the overwhelmingly
// common case) are returned unchanged without allocating.
func EscapeComponent(s string) string {
	if !strings.ContainsAny(s, keyReserved) {
		return s
	}
	//lint:ignore hotalloc escape slow path: only taken for components carrying separator bytes, which no built-in module emits
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '$' || c == '@' || c == '%' {
			b.WriteByte('%')
			b.WriteString(hexDigits[c>>4 : c>>4+1])
			b.WriteString(hexDigits[c&0xf : c&0xf+1])
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

const hexDigits = "0123456789abcdef"

// unescapeComponent reverses EscapeComponent; malformed escapes are
// kept verbatim (ParseKey never fails — garbage in, garbage out).
func unescapeComponent(s string) string {
	if !strings.ContainsRune(s, '%') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			hi := strings.IndexByte(hexDigits, lowerHex(s[i+1]))
			lo := strings.IndexByte(hexDigits, lowerHex(s[i+2]))
			if hi >= 0 && lo >= 0 {
				b.WriteByte(byte(hi<<4 | lo))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func lowerHex(c byte) byte {
	if c >= 'A' && c <= 'F' {
		return c + ('a' - 'A')
	}
	return c
}

// SubscribeFunc is notified of a knowgget change (insert or update).
type SubscribeFunc func(Knowgget)

// SyncFunc receives collective knowggets that must be propagated to
// peer Kalis nodes; it is installed by the collective-knowledge layer.
type SyncFunc func(Knowgget)

// Journal operations, as seen by a JournalFunc.
const (
	// OpPut records an accepted insert or update.
	OpPut = byte(1)
	// OpDelete records a removal; only the key accompanies it.
	OpDelete = byte(2)
)

// JournalFunc receives every accepted mutation of the Knowledge Base —
// OpPut with the stored knowgget, or OpDelete with only the key set on
// a zero knowgget via Key(). The persistence layer installs it as the
// KB's write-ahead hook; rejected or no-op mutations are not reported.
type JournalFunc func(op byte, key string, k Knowgget)

// Base is the Knowledge Base of one Kalis node.
type Base struct {
	local string

	mu        sync.RWMutex
	entries   map[string]Knowgget
	static    map[string]bool // labels provided as a-priori knowledge
	defaults  map[string]bool // keys whose current value is an absence-default
	localVer  uint64          // last version assigned to a local collective change
	subsAll   []SubscribeFunc
	subs      map[string][]SubscribeFunc // by label
	syncFn    SyncFunc
	journalFn JournalFunc
}

// NewBase creates a Knowledge Base for the Kalis node with the given
// identifier.
func NewBase(localID string) *Base {
	return &Base{
		local:    localID,
		entries:  make(map[string]Knowgget),
		static:   make(map[string]bool),
		defaults: make(map[string]bool),
		subs:     make(map[string][]SubscribeFunc),
	}
}

// PutStatic stores an a-priori knowgget from the configuration file
// (§IV-B3 "Static Knowledge") and marks its label static. Sensing
// modules whose only job is to discover a statically-known feature use
// IsStatic to declare themselves not required — e.g. providing
// "Mobility = false" statically means Kalis never tries to detect
// mobility.
func (b *Base) PutStatic(label, entity, value string) bool {
	b.mu.Lock()
	b.static[label] = true
	b.mu.Unlock()
	return b.store(Knowgget{Label: label, Value: value, Creator: b.local, Entity: entity})
}

// IsStatic reports whether the label was provided as a-priori
// knowledge.
func (b *Base) IsStatic(label string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.static[label]
}

// LocalID returns the local Kalis node identifier.
func (b *Base) LocalID() string { return b.local }

// SetSync installs the collective-knowledge propagation hook.
func (b *Base) SetSync(fn SyncFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.syncFn = fn
}

// SetJournal installs the write-ahead hook notified of every accepted
// Put and Delete. Install it after any Restore, so recovered state is
// not re-journaled.
func (b *Base) SetJournal(fn JournalFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.journalFn = fn
}

// Put stores a local knowgget with the given label and value. It
// returns true if the stored value changed.
func (b *Base) Put(label, value string) bool {
	return b.store(Knowgget{Label: label, Value: value, Creator: b.local})
}

// PutEntity stores a local entity-specific knowgget.
func (b *Base) PutEntity(label, entity, value string) bool {
	return b.store(Knowgget{Label: label, Value: value, Creator: b.local, Entity: entity})
}

// PutCollective stores a local knowgget marked for synchronization to
// peer Kalis nodes.
func (b *Base) PutCollective(label, entity, value string) bool {
	return b.store(Knowgget{Label: label, Value: value, Creator: b.local, Entity: entity, Collective: true})
}

// PutBool, PutInt and PutFloat are typed conveniences over Put.
func (b *Base) PutBool(label string, v bool) bool { return b.Put(label, strconv.FormatBool(v)) }

// PutInt stores an integer-valued local knowgget.
func (b *Base) PutInt(label string, v int) bool { return b.Put(label, strconv.Itoa(v)) }

// PutFloat stores a float-valued local knowgget.
func (b *Base) PutFloat(label string, v float64) bool {
	return b.Put(label, strconv.FormatFloat(v, 'g', -1, 64))
}

// PutBoolDefault stores an absence-default boolean: a sensing module's
// declaration that, having watched enough traffic without evidence of
// a feature, the feature is absent. Unlike PutBool it never overwrites
// an evidence-backed value — on a sharded node each shard runs its own
// sensing instances over a partition of the traffic, and one shard's
// "never saw multihop forwarding" must not clobber another shard's
// forwarding-chain proof. Defaults may replace defaults; any regular
// Put pins the key so later defaults are ignored. Provenance is kept
// in memory only, so values restored from a snapshot count as pinned.
func (b *Base) PutBoolDefault(label string, v bool) bool {
	return b.storeWith(Knowgget{Label: label, Value: strconv.FormatBool(v), Creator: b.local}, putDefault)
}

// PutIntMax stores an integer-valued local knowgget only if the label
// is unset or v exceeds the stored value. Per-shard sensing instances
// each count their own traffic partition; a shared high-water mark is
// a sound lower bound on the union where last-writer-wins is not.
func (b *Base) PutIntMax(label string, v int) bool {
	return b.storeWith(Knowgget{Label: label, Value: strconv.Itoa(v), Creator: b.local}, putMax)
}

// AcceptRemote stores a knowgget received from the peer Kalis node
// identified by from. Per §IV-B3, a node can only update knowggets
// that it originally generated: the knowgget is rejected unless its
// creator field equals the sending peer. It returns true if accepted
// and changed.
func (b *Base) AcceptRemote(from string, k Knowgget) bool {
	if k.Creator != from || from == b.local {
		return false
	}
	k.Collective = true
	return b.store(k)
}

// AcceptGossip stores a collective knowgget received through the
// anti-entropy gossip layer. Unlike AcceptRemote it admits relayed
// knowggets whose creator is a third node (epidemic dissemination
// depends on relaying — the shared-passphrase envelope is the trust
// boundary), but it keeps the §IV-B3 ownership invariant where it
// matters: a knowgget claiming the local node as creator is always
// rejected, so no peer can overwrite local knowledge. Staleness is
// resolved by the creator-local version: the knowgget is rejected
// unless its Version is strictly newer than the stored entry's.
// Gossiped state never collides with the local default-vs-evidence
// provenance because remote creators key their own namespace. It
// returns true if the knowgget was accepted (stored or refreshed).
func (b *Base) AcceptGossip(from string, k Knowgget) bool {
	if from == b.local || k.Creator == b.local || k.Creator == "" || k.Version == 0 {
		return false
	}
	k.Collective = true
	key := k.Key()
	b.mu.Lock()
	old, existed := b.entries[key]
	if existed && old.Version >= k.Version {
		b.mu.Unlock()
		return false
	}
	b.entries[key] = k
	changed := !existed || old.Value != k.Value
	var subs []SubscribeFunc
	if changed {
		subs = b.notifyList(k.Label)
	}
	journalFn := b.journalFn
	b.mu.Unlock()

	if journalFn != nil {
		journalFn(OpPut, key, k)
	}
	for _, fn := range subs {
		fn(k)
	}
	return true
}

// Digest returns the per-creator version vector over the collective
// knowggets: for every creator (the local node included) the highest
// Version held. The gossip layer exchanges these digests instead of
// snapshots; a creator missing from the map is simply unknown here.
func (b *Base) Digest() map[string]uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]uint64, 8)
	for _, k := range b.entries {
		if !k.Collective || k.Version == 0 {
			continue
		}
		if k.Version > out[k.Creator] {
			out[k.Creator] = k.Version
		}
	}
	return out
}

// CollectiveSince returns the collective knowggets created by creator
// with Version > since, sorted by ascending Version. Because versions
// are assigned per accepted change and stale versions of a key are
// overwritten in place, this slice is exactly the delta a peer whose
// watermark for creator is since needs to catch up.
func (b *Base) CollectiveSince(creator string, since uint64) []Knowgget {
	b.mu.RLock()
	var out []Knowgget
	for _, k := range b.entries {
		if k.Collective && k.Creator == creator && k.Version > since {
			out = append(out, k)
		}
	}
	b.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// LocalVersion returns the last version assigned to a local collective
// change — the local node's own entry in the digest, tracked even when
// the highest-versioned knowggets have been overwritten in place.
func (b *Base) LocalVersion() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.localVer
}

// Write modes for storeWith: evidence always wins and pins the key,
// defaults yield to anything non-default, max writes are monotonic.
type putMode int

const (
	putEvidence putMode = iota
	putDefault
	putMax
)

func (b *Base) store(k Knowgget) bool { return b.storeWith(k, putEvidence) }

func (b *Base) storeWith(k Knowgget, mode putMode) bool {
	key := k.Key()
	b.mu.Lock()
	old, existed := b.entries[key]
	switch mode {
	case putDefault:
		if existed && !b.defaults[key] {
			b.mu.Unlock()
			return false
		}
		b.defaults[key] = true
	case putMax:
		if existed {
			cur, err := strconv.Atoi(old.Value)
			next, err2 := strconv.Atoi(k.Value)
			if err == nil && err2 == nil && next <= cur {
				b.mu.Unlock()
				return false
			}
		}
	default:
		delete(b.defaults, key)
	}
	if existed && old.Value == k.Value && old.Collective == k.Collective {
		b.mu.Unlock()
		return false
	}
	if k.Collective && k.Creator == b.local {
		// Every accepted local collective change gets the next
		// creator-local version; no-op puts (caught above) never burn
		// one, so the version stream is dense per accepted change.
		b.localVer++
		k.Version = b.localVer
	}
	b.entries[key] = k
	subs := b.notifyList(k.Label)
	syncFn := b.syncFn
	journalFn := b.journalFn
	b.mu.Unlock()

	if journalFn != nil {
		journalFn(OpPut, key, k)
	}
	for _, fn := range subs {
		fn(k)
	}
	if k.Collective && k.Creator == b.local && syncFn != nil {
		syncFn(k)
	}
	return true
}

// notifyList must be called with b.mu held; it returns the handlers to
// invoke (called after unlock so handlers may re-enter the Base).
func (b *Base) notifyList(label string) []SubscribeFunc {
	out := make([]SubscribeFunc, 0, len(b.subsAll)+4)
	out = append(out, b.subsAll...)
	out = append(out, b.subs[label]...)
	// Multilevel: a subscription to "TrafficFrequency" also fires for
	// "TrafficFrequency.TCPSYN".
	if i := strings.IndexByte(label, '.'); i > 0 {
		out = append(out, b.subs[label[:i]]...)
	}
	return out
}

// Delete removes a knowgget by key. It returns true if present.
func (b *Base) Delete(key string) bool {
	b.mu.Lock()
	if _, ok := b.entries[key]; !ok {
		b.mu.Unlock()
		return false
	}
	delete(b.entries, key)
	delete(b.defaults, key)
	journalFn := b.journalFn
	b.mu.Unlock()
	if journalFn != nil {
		journalFn(OpDelete, key, Knowgget{})
	}
	return true
}

// Get returns the knowgget stored under the exact key.
func (b *Base) Get(key string) (Knowgget, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	k, ok := b.entries[key]
	return k, ok
}

// Value returns the raw string value of a local knowgget by label.
func (b *Base) Value(label string) (string, bool) {
	//lint:ignore hotalloc one small key concat per KB read; an interned-key index is not worth the complexity at current gate-check rates
	k, ok := b.Get(EscapeComponent(b.local) + "$" + EscapeComponent(label))
	return k.Value, ok
}

// EntityValue returns the raw string value of a local entity-specific
// knowgget.
func (b *Base) EntityValue(label, entity string) (string, bool) {
	k, ok := b.Get(Knowgget{Creator: b.local, Label: label, Entity: entity}.Key())
	return k.Value, ok
}

// Bool parses a local knowgget as bool; ok is false when the knowgget
// is absent or fails to parse as the requested type.
func (b *Base) Bool(label string) (v, ok bool) {
	s, ok := b.Value(label)
	if !ok {
		return false, false
	}
	parsed, err := strconv.ParseBool(s)
	if err != nil {
		return false, false
	}
	return parsed, true
}

// Int parses a local knowgget as int.
func (b *Base) Int(label string) (int, bool) {
	s, ok := b.Value(label)
	if !ok {
		return 0, false
	}
	parsed, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return parsed, true
}

// Float parses a local knowgget as float64.
func (b *Base) Float(label string) (float64, bool) {
	s, ok := b.Value(label)
	if !ok {
		return 0, false
	}
	parsed, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return parsed, true
}

// EntityFloat parses a local entity-specific knowgget as float64.
func (b *Base) EntityFloat(label, entity string) (float64, bool) {
	s, ok := b.EntityValue(label, entity)
	if !ok {
		return 0, false
	}
	parsed, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return parsed, true
}

// QueryPrefix returns all knowggets whose key begins with prefix,
// sorted by key. "Looking up local (or collective) knowggets only
// requires searching for the prefix matching (or not matching) the
// identifier of the local Kalis node" (§V).
func (b *Base) QueryPrefix(prefix string) []Knowgget {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Knowgget
	for key, k := range b.entries {
		if strings.HasPrefix(key, prefix) {
			out = append(out, k)
		}
	}
	sortKnowggets(out)
	return out
}

// QueryLocal returns all knowggets created by the local node.
func (b *Base) QueryLocal() []Knowgget { return b.QueryPrefix(EscapeComponent(b.local) + "$") }

// QueryCollective returns all knowggets created by peer nodes.
func (b *Base) QueryCollective() []Knowgget {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Knowgget
	for _, k := range b.entries {
		if k.Creator != b.local {
			out = append(out, k)
		}
	}
	sortKnowggets(out)
	return out
}

// QueryEntity returns all knowggets (any creator) about the entity,
// using the "@entity" key suffix.
func (b *Base) QueryEntity(entity string) []Knowgget {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Knowgget
	suffix := "@" + EscapeComponent(entity)
	for key, k := range b.entries {
		if strings.HasSuffix(key, suffix) {
			out = append(out, k)
		}
	}
	sortKnowggets(out)
	return out
}

// Children returns the sub-knowggets of a local multilevel knowgget:
// all local knowggets whose label begins with "label.".
func (b *Base) Children(label string) []Knowgget {
	return b.QueryPrefix(EscapeComponent(b.local) + "$" + EscapeComponent(label) + ".")
}

// Subscribe registers fn to be notified of changes to knowggets with
// the given label (any creator or entity). Subscribing to a multilevel
// parent label also fires for its children. The Module Manager and the
// dynamic detection-module configuration are built on this mechanism
// (§V "Dynamic Detection Module Configuration").
func (b *Base) Subscribe(label string, fn SubscribeFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs[label] = append(b.subs[label], fn)
}

// SubscribeAll registers fn for every knowgget change.
func (b *Base) SubscribeAll(fn SubscribeFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subsAll = append(b.subsAll, fn)
}

// Restore bulk-loads recovered state into the Base: every knowgget is
// stored under its key and the given labels are marked static. It
// fires no subscribers, no sync, and no journal hook — recovery runs
// before any of them are installed, and replayed state must not be
// re-propagated or re-journaled. Restore is the warm-start half of the
// durable-state design; it is not meant for use after traffic flows.
func (b *Base) Restore(entries []Knowgget, staticLabels []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, k := range entries {
		b.entries[k.Key()] = k
		// Resume the local version counter past every recovered local
		// collective change so post-restart versions stay monotonic.
		if k.Creator == b.local && k.Version > b.localVer {
			b.localVer = k.Version
		}
	}
	for _, label := range staticLabels {
		b.static[label] = true
	}
}

// StaticLabels returns the labels provided as a-priori knowledge,
// sorted — the static half of the state a snapshot must carry.
func (b *Base) StaticLabels() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.static))
	for label := range b.static {
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of every knowgget, sorted by key.
func (b *Base) Snapshot() []Knowgget {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]Knowgget, 0, len(b.entries))
	for _, k := range b.entries {
		out = append(out, k)
	}
	sortKnowggets(out)
	return out
}

// Len returns the number of stored knowggets.
func (b *Base) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.entries)
}

func sortKnowggets(ks []Knowgget) {
	sort.Slice(ks, func(i, j int) bool { return ks[i].Key() < ks[j].Key() })
}
