package knowledge

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestKeyEncoding(t *testing.T) {
	cases := []struct {
		k    Knowgget
		want string
	}{
		{Knowgget{Label: "Multihop", Value: "true", Creator: "K1"}, "K1$Multihop"},
		{Knowgget{Label: "SignalStrength", Value: "-67", Creator: "K1", Entity: "SensorA"}, "K1$SignalStrength@SensorA"},
		{Knowgget{Label: "TrafficFrequency.TCPSYN", Value: "0.037", Creator: "T1"}, "T1$TrafficFrequency.TCPSYN"},
	}
	for _, c := range cases {
		if got := c.k.Key(); got != c.want {
			t.Errorf("Key() = %q, want %q", got, c.want)
		}
		creator, label, entity := ParseKey(c.k.Key())
		if creator != c.k.Creator || label != c.k.Label || entity != c.k.Entity {
			t.Errorf("ParseKey(%q) = (%q,%q,%q)", c.k.Key(), creator, label, entity)
		}
	}
}

func TestPutGetTyped(t *testing.T) {
	b := NewBase("K1")
	b.PutBool("Multihop", true)
	b.PutInt("MonitoredNodes", 8)
	b.PutFloat("Rate", 0.037)
	b.PutEntity("SignalStrength", "SensorA", "-67.5")

	if v, ok := b.Bool("Multihop"); !ok || !v {
		t.Error("Bool")
	}
	if v, ok := b.Int("MonitoredNodes"); !ok || v != 8 {
		t.Error("Int")
	}
	if v, ok := b.Float("Rate"); !ok || v != 0.037 {
		t.Error("Float")
	}
	if v, ok := b.EntityFloat("SignalStrength", "SensorA"); !ok || v != -67.5 {
		t.Error("EntityFloat")
	}
	if _, ok := b.Bool("Absent"); ok {
		t.Error("absent knowgget parsed")
	}
	b.Put("NotABool", "banana")
	if _, ok := b.Bool("NotABool"); ok {
		t.Error("type mismatch should fail")
	}
}

func TestStoreChangeDetection(t *testing.T) {
	b := NewBase("K1")
	if !b.Put("X", "1") {
		t.Error("first put should change")
	}
	if b.Put("X", "1") {
		t.Error("same value should not change")
	}
	if !b.Put("X", "2") {
		t.Error("new value should change")
	}
}

func TestQueries(t *testing.T) {
	b := NewBase("K1")
	b.Put("Multihop", "true")
	b.Put("TrafficFrequency.TCPSYN", "0.037")
	b.Put("TrafficFrequency.TCPACK", "0.090")
	b.PutEntity("SignalStrength", "SensorA", "-67")
	b.AcceptRemote("K2", Knowgget{Label: "SignalStrength", Value: "-84", Creator: "K2", Entity: "SensorA"})

	if got := len(b.QueryLocal()); got != 4 {
		t.Errorf("QueryLocal = %d, want 4", got)
	}
	coll := b.QueryCollective()
	if len(coll) != 1 || coll[0].Creator != "K2" {
		t.Errorf("QueryCollective = %+v", coll)
	}
	ent := b.QueryEntity("SensorA")
	if len(ent) != 2 {
		t.Errorf("QueryEntity = %d, want 2 (both creators)", len(ent))
	}
	kids := b.Children("TrafficFrequency")
	if len(kids) != 2 {
		t.Errorf("Children = %d, want 2", len(kids))
	}
	if kids[0].Label != "TrafficFrequency.TCPACK" {
		t.Errorf("children not sorted: %+v", kids)
	}
}

func TestAcceptRemoteCreatorRule(t *testing.T) {
	b := NewBase("K1")
	// Peer may only write knowggets it created.
	if b.AcceptRemote("K2", Knowgget{Label: "X", Value: "1", Creator: "K3"}) {
		t.Error("forged creator accepted")
	}
	if b.AcceptRemote("K2", Knowgget{Label: "X", Value: "1", Creator: "K1"}) {
		t.Error("peer overwrote local knowledge")
	}
	if b.AcceptRemote("K1", Knowgget{Label: "X", Value: "1", Creator: "K1"}) {
		t.Error("self-acceptance")
	}
	if !b.AcceptRemote("K2", Knowgget{Label: "X", Value: "1", Creator: "K2"}) {
		t.Error("legitimate remote update rejected")
	}
	// Update of the same knowgget by its creator is allowed.
	if !b.AcceptRemote("K2", Knowgget{Label: "X", Value: "2", Creator: "K2"}) {
		t.Error("legitimate remote re-update rejected")
	}
}

func TestSubscribeByLabel(t *testing.T) {
	b := NewBase("K1")
	var events []string
	b.Subscribe("Multihop", func(k Knowgget) { events = append(events, k.Value) })
	b.Put("Multihop", "true")
	b.Put("Other", "1")
	b.Put("Multihop", "false")
	if len(events) != 2 || events[0] != "true" || events[1] != "false" {
		t.Errorf("events = %v", events)
	}
}

func TestSubscribeMultilevelParent(t *testing.T) {
	b := NewBase("K1")
	count := 0
	b.Subscribe("TrafficFrequency", func(Knowgget) { count++ })
	b.Put("TrafficFrequency.TCPSYN", "1")
	b.Put("TrafficFrequency.TCPACK", "2")
	b.Put("TrafficFrequencyX", "3") // different label, no dot boundary
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestSubscribeAll(t *testing.T) {
	b := NewBase("K1")
	count := 0
	b.SubscribeAll(func(Knowgget) { count++ })
	b.Put("A", "1")
	b.PutEntity("B", "e", "2")
	b.Put("A", "1") // unchanged: no event
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestSubscriberMayReenter(t *testing.T) {
	b := NewBase("K1")
	b.Subscribe("A", func(k Knowgget) {
		if k.Value == "1" {
			b.Put("B", "derived")
		}
	})
	b.Put("A", "1")
	if v, ok := b.Value("B"); !ok || v != "derived" {
		t.Error("re-entrant put failed")
	}
}

func TestCollectiveSyncHook(t *testing.T) {
	b := NewBase("K1")
	var synced []Knowgget
	b.SetSync(func(k Knowgget) { synced = append(synced, k) })
	b.PutCollective("SignalStrength", "SensorA", "-67")
	b.Put("Local", "x")
	b.AcceptRemote("K2", Knowgget{Label: "Y", Value: "2", Creator: "K2", Collective: true})
	if len(synced) != 1 || synced[0].Label != "SignalStrength" {
		t.Errorf("synced = %+v (remote/local knowggets must not re-sync)", synced)
	}
}

func TestStaticKnowledge(t *testing.T) {
	b := NewBase("K1")
	b.PutStatic("Mobility", "", "false")
	if !b.IsStatic("Mobility") {
		t.Error("IsStatic")
	}
	if b.IsStatic("Multihop") {
		t.Error("unmarked label static")
	}
	if v, ok := b.Bool("Mobility"); !ok || v {
		t.Error("static value not stored")
	}
}

func TestDelete(t *testing.T) {
	b := NewBase("K1")
	b.Put("X", "1")
	if !b.Delete("K1$X") {
		t.Error("delete existing")
	}
	if b.Delete("K1$X") {
		t.Error("delete absent")
	}
	if _, ok := b.Value("X"); ok {
		t.Error("still present")
	}
}

func TestSnapshotAndLen(t *testing.T) {
	b := NewBase("K1")
	for i := 0; i < 5; i++ {
		b.PutInt("N"+strconv.Itoa(i), i)
	}
	if b.Len() != 5 {
		t.Errorf("Len = %d", b.Len())
	}
	snap := b.Snapshot()
	if len(snap) != 5 || snap[0].Key() > snap[4].Key() {
		t.Errorf("snapshot unsorted or wrong size: %v", snap)
	}
}

// TestFigure5Representation reproduces the paper's Fig. 5b: the
// key-value pair representation of the example Knowledge Base.
func TestFigure5Representation(t *testing.T) {
	b := NewBase("K1")
	b.PutBool("Multihop", true)
	b.PutInt("MonitoredNodes", 8)
	b.PutEntity("SignalStrength", "SensorA", "-67")
	b.AcceptRemote("K2", Knowgget{Label: "SignalStrength", Value: "-84", Creator: "K2", Entity: "SensorA"})
	b.Put("TrafficFrequency.TCPSYN", "0.037")
	b.Put("TrafficFrequency.TCPACK", "0.090")

	want := map[string]string{
		"K1$Multihop":                "true",
		"K1$MonitoredNodes":          "8",
		"K1$SignalStrength@SensorA":  "-67",
		"K2$SignalStrength@SensorA":  "-84",
		"K1$TrafficFrequency.TCPSYN": "0.037",
		"K1$TrafficFrequency.TCPACK": "0.090",
	}
	snap := b.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("entries = %d, want %d", len(snap), len(want))
	}
	for _, kg := range snap {
		if want[kg.Key()] != kg.Value {
			t.Errorf("%s = %q, want %q", kg.Key(), kg.Value, want[kg.Key()])
		}
	}
}

// TestQuickKeyRoundTrip is the property the durable snapshot format
// depends on: ParseKey(k.Key()) recovers creator/label/entity exactly,
// for ANY component contents — separator bytes included, thanks to
// percent-escaping in Key.
func TestQuickKeyRoundTrip(t *testing.T) {
	prop := func(label, creator, entity string) bool {
		if label == "" || creator == "" {
			return true // components required non-empty by the put API
		}
		k := Knowgget{Label: label, Creator: creator, Entity: entity}
		c, l, e := ParseKey(k.Key())
		return c == creator && l == label && e == entity
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestKeySeparatorEscaping pins the previously-broken separator cases
// and the injectivity escaping buys: distinct triples must never
// collide on the same key.
func TestKeySeparatorEscaping(t *testing.T) {
	cases := []Knowgget{
		{Creator: "K1", Label: "L", Entity: "a@b"},
		{Creator: "K1", Label: "L", Entity: "a@b@c"},
		{Creator: "K1", Label: "L@x", Entity: ""},
		{Creator: "K$1", Label: "L", Entity: "e"},
		{Creator: "K1", Label: "100%", Entity: "%40"},
		{Creator: "K1", Label: "TrafficFrequency.TCP@SYN", Entity: "fe80::1%eth0"},
		{Creator: "usr@host", Label: "L", Entity: "$"},
	}
	seen := make(map[string]Knowgget)
	for _, k := range cases {
		key := k.Key()
		c, l, e := ParseKey(key)
		if c != k.Creator || l != k.Label || e != k.Entity {
			t.Errorf("ParseKey(%q) = (%q,%q,%q), want (%q,%q,%q)",
				key, c, l, e, k.Creator, k.Label, k.Entity)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("key collision: %+v and %+v both encode to %q", prev, k, key)
		}
		seen[key] = k
	}
	// Escaped keys stay queryable through the component-based APIs.
	b := NewBase("K1")
	b.PutEntity("Sig@nal", "a@b", "-67")
	if v, ok := b.EntityValue("Sig@nal", "a@b"); !ok || v != "-67" {
		t.Errorf("EntityValue through escaped key = (%q,%v)", v, ok)
	}
	if got := b.QueryEntity("a@b"); len(got) != 1 {
		t.Errorf("QueryEntity(a@b) = %d knowggets, want 1", len(got))
	}
	if got := b.QueryEntity("b"); len(got) != 0 {
		t.Errorf("QueryEntity(b) matched an escaped entity suffix: %d", len(got))
	}
}

// TestDefaultVsEvidence: absence-defaults (PutBoolDefault) never
// overwrite evidence (Put*), evidence always overwrites defaults, and
// defaults may replace defaults. On a sharded node per-shard sensing
// instances see only a partition of the traffic, so one shard's "no
// evidence seen" declaration must not clobber another's proof.
func TestDefaultVsEvidence(t *testing.T) {
	b := NewBase("K1")

	// Default lands when the label is unset.
	if !b.PutBoolDefault("Multihop", false) {
		t.Fatal("default rejected on empty label")
	}
	if v, ok := b.Bool("Multihop"); !ok || v {
		t.Fatalf("Multihop = %v, %v after default, want false", v, ok)
	}
	// A later default may replace a default.
	if !b.PutBoolDefault("Multihop", true) {
		t.Fatal("default did not replace an earlier default")
	}
	// Evidence overwrites and pins.
	if !b.PutBool("Multihop", false) {
		t.Fatal("evidence rejected over a default")
	}
	if b.PutBoolDefault("Multihop", true) {
		t.Fatal("default clobbered evidence")
	}
	if v, _ := b.Bool("Multihop"); v {
		t.Fatal("evidence value lost to a default")
	}
	// Evidence with the same value as the standing default still pins.
	b2 := NewBase("K1")
	b2.PutBoolDefault("Mobility", false)
	b2.PutBool("Mobility", false) // no value change, but now evidence
	if b2.PutBoolDefault("Mobility", true) {
		t.Fatal("same-value evidence did not pin the key")
	}
	// Delete clears provenance: a fresh default may land again.
	k := Knowgget{Label: "Mobility", Creator: "K1"}
	b2.Delete(k.Key())
	if !b2.PutBoolDefault("Mobility", true) {
		t.Fatal("default rejected after delete")
	}
}

// TestPutIntMax: high-water-mark writes are monotonic, so per-shard
// instances each publishing their own count cannot regress the label.
func TestPutIntMax(t *testing.T) {
	b := NewBase("K1")
	if !b.PutIntMax("MonitoredNodes", 5) {
		t.Fatal("first max write rejected")
	}
	if b.PutIntMax("MonitoredNodes", 3) {
		t.Fatal("smaller value accepted")
	}
	if !b.PutIntMax("MonitoredNodes", 8) {
		t.Fatal("larger value rejected")
	}
	if n, _ := b.Int("MonitoredNodes"); n != 8 {
		t.Fatalf("MonitoredNodes = %d, want 8", n)
	}
}
