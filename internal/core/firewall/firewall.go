// Package firewall implements Kalis' smart-firewall deployment mode
// (§V "Smart Firewall Deployment"): running on a smart router, Kalis'
// knowledge-based alerts drive a packet filter for suspicious incoming
// traffic from untrusted Internet sources to the IoT devices on the
// local network.
package firewall

import (
	"sort"
	"sync"
	"time"

	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// Verdict is a filtering decision.
type Verdict int

// Verdicts.
const (
	Allow Verdict = iota + 1
	Drop
)

// Firewall maintains a block list fed by Kalis alerts and filters
// frames flowing through the router.
type Firewall struct {
	// BlockFor is how long a suspect stays blocked (0 = forever,
	// matching the paper's "temporary revocation" when set).
	BlockFor time.Duration
	// MinConfidence gates which alerts install blocks.
	MinConfidence float64

	mu      sync.Mutex
	blocked map[packet.NodeID]time.Time // suspect → expiry (zero = forever)
	dropped uint64
	passed  uint64
	met     Metrics
}

// Metrics are the firewall's optional telemetry hooks; zero-value
// fields are skipped (all telemetry types are nil-safe).
type Metrics struct {
	// Passed counts frames allowed through the filter.
	Passed *telemetry.Counter
	// Dropped counts frames blocked by the filter.
	Dropped *telemetry.Counter
	// BlockList tracks the number of currently blocked suspects.
	BlockList *telemetry.Gauge
}

// New creates a firewall blocking suspects for blockFor (0 = forever)
// from alerts at or above minConfidence.
func New(blockFor time.Duration, minConfidence float64) *Firewall {
	return &Firewall{
		BlockFor:      blockFor,
		MinConfidence: minConfidence,
		blocked:       make(map[packet.NodeID]time.Time),
	}
}

// SetMetrics installs telemetry hooks. Call it before traffic flows.
func (f *Firewall) SetMetrics(met Metrics) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.met = met
}

// HandleAlert installs blocks for an alert's suspects; wire it to
// Kalis with OnAlert.
func (f *Firewall) HandleAlert(a module.Alert) {
	if a.Confidence < f.MinConfidence {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range a.Suspects {
		var expiry time.Time
		if f.BlockFor > 0 {
			expiry = a.Time.Add(f.BlockFor)
		}
		f.blocked[s] = expiry
	}
	f.met.BlockList.Set(int64(len(f.blocked)))
}

// Filter decides whether a frame may pass the router: frames sourced
// from or transmitted by a blocked suspect are dropped.
func (f *Firewall) Filter(c *packet.Captured) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, id := range []packet.NodeID{c.Src, c.Transmitter} {
		expiry, ok := f.blocked[id]
		if !ok {
			continue
		}
		if !expiry.IsZero() && c.Time.After(expiry) {
			delete(f.blocked, id)
			f.met.BlockList.Set(int64(len(f.blocked)))
			continue
		}
		f.dropped++
		f.met.Dropped.Inc()
		return Drop
	}
	f.passed++
	f.met.Passed.Inc()
	return Allow
}

// Unblock removes a suspect manually.
func (f *Firewall) Unblock(id packet.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.blocked, id)
	f.met.BlockList.Set(int64(len(f.blocked)))
}

// Blocked returns the currently blocked identities, sorted.
func (f *Firewall) Blocked() []packet.NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]packet.NodeID, 0, len(f.blocked))
	for id := range f.blocked {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns pass/drop counters.
func (f *Firewall) Stats() (passed, dropped uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.passed, f.dropped
}
