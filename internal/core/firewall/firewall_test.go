package firewall

import (
	"testing"
	"time"

	"kalis/internal/core/module"
	"kalis/internal/packet"
)

var t0 = time.Unix(1500000000, 0).UTC()

func alertAt(at time.Time, conf float64, suspects ...packet.NodeID) module.Alert {
	return module.Alert{Time: at, Attack: "icmp-flood", Suspects: suspects, Confidence: conf}
}

func frame(at time.Time, src, tx packet.NodeID) *packet.Captured {
	return &packet.Captured{Time: at, Src: src, Transmitter: tx}
}

func TestBlockAndFilter(t *testing.T) {
	fw := New(0, 0.8)
	fw.HandleAlert(alertAt(t0, 0.9, "attacker"))
	if v := fw.Filter(frame(t0.Add(time.Second), "attacker", "attacker")); v != Drop {
		t.Error("blocked source passed")
	}
	if v := fw.Filter(frame(t0.Add(time.Second), "innocent", "innocent")); v != Allow {
		t.Error("innocent dropped")
	}
	// Spoofed source, blocked transmitter: still dropped.
	if v := fw.Filter(frame(t0.Add(2*time.Second), "spoofed", "attacker")); v != Drop {
		t.Error("blocked transmitter passed")
	}
	passed, dropped := fw.Stats()
	if passed != 1 || dropped != 2 {
		t.Errorf("stats: %d/%d", passed, dropped)
	}
}

func TestConfidenceGate(t *testing.T) {
	fw := New(0, 0.9)
	fw.HandleAlert(alertAt(t0, 0.7, "maybe"))
	if len(fw.Blocked()) != 0 {
		t.Error("low-confidence alert installed a block")
	}
}

func TestTemporaryBlockExpires(t *testing.T) {
	fw := New(30*time.Second, 0.5)
	fw.HandleAlert(alertAt(t0, 0.9, "attacker"))
	if fw.Filter(frame(t0.Add(10*time.Second), "attacker", "attacker")) != Drop {
		t.Error("block not in force")
	}
	if fw.Filter(frame(t0.Add(31*time.Second), "attacker", "attacker")) != Allow {
		t.Error("expired block still dropping")
	}
	if len(fw.Blocked()) != 0 {
		t.Error("expired block not pruned")
	}
}

func TestUnblock(t *testing.T) {
	fw := New(0, 0.5)
	fw.HandleAlert(alertAt(t0, 0.9, "a", "b"))
	if got := fw.Blocked(); len(got) != 2 || got[0] != "a" {
		t.Errorf("blocked = %v", got)
	}
	fw.Unblock("a")
	if got := fw.Blocked(); len(got) != 1 || got[0] != "b" {
		t.Errorf("after unblock = %v", got)
	}
}
