// Package trace implements Kalis' capture trace format: a compact
// binary, pcap-like stream of raw frames with capture metadata
// (virtual timestamp, medium, RSSI) and optional attack ground-truth
// labels used by the evaluation harness.
//
// The paper's methodology (§VI-A) is to "record and replay actual
// traces of network traffic from these devices, enhanced with
// additional packets representing symptoms of such attacks"; this
// package is the recording and replaying half of that methodology, and
// also backs the Data Store's disk log.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// Magic identifies a Kalis trace stream.
var Magic = [4]byte{'K', 'T', 'R', 'C'}

// Version is the current format version.
const Version = 1

// Errors returned by the reader.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrCorrupt    = errors.New("trace: corrupt record")
)

// Record is one captured frame in a trace.
type Record struct {
	Time   time.Time
	Medium packet.Medium
	RSSI   float64
	Raw    []byte
	Truth  *packet.GroundTruth
}

// Decode parses the record's raw bytes through the protocol stack and
// returns the capture envelope, exactly as a live sniffer would have
// produced it. The Data Store "abstracts the traffic sources by
// replaying traffic transparently to the detection modules" (§IV-B2):
// modules cannot tell a decoded trace record from live capture.
func (r *Record) Decode() (*packet.Captured, error) {
	c, err := stack.Decode(r.Medium, r.Raw)
	if err != nil {
		return nil, err
	}
	c.Time = r.Time
	c.RSSI = r.RSSI
	c.Truth = r.Truth
	return c, nil
}

// Writer writes a trace stream.
type Writer struct {
	w       *bufio.Writer
	started bool
	count   int
}

// NewWriter creates a trace writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	if _, err := w.w.Write(Magic[:]); err != nil {
		return err
	}
	if err := w.w.WriteByte(Version); err != nil {
		return err
	}
	w.started = true
	return nil
}

// Write appends one record.
func (w *Writer) Write(r *Record) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	var buf []byte
	buf = binary.AppendVarint(buf, r.Time.UnixNano())
	buf = append(buf, byte(r.Medium))
	buf = binary.AppendUvarint(buf, uint64(math.Float64bits(r.RSSI)))
	buf = binary.AppendUvarint(buf, uint64(len(r.Raw)))
	buf = append(buf, r.Raw...)
	if r.Truth != nil {
		buf = append(buf, 1)
		buf = appendString(buf, r.Truth.Attack)
		buf = binary.AppendUvarint(buf, uint64(r.Truth.Instance))
		buf = appendString(buf, string(r.Truth.Attacker))
		buf = appendString(buf, string(r.Truth.Victim))
	} else {
		buf = append(buf, 0)
	}
	var lenBuf []byte
	lenBuf = binary.AppendUvarint(lenBuf, uint64(len(buf)))
	if _, err := w.w.Write(lenBuf); err != nil {
		return err
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.count }

// Flush flushes buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Reader reads a trace stream.
type Reader struct {
	r       *bufio.Reader
	started bool
}

// NewReader creates a trace reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) readHeader() error {
	var magic [5]byte
	if _, err := io.ReadFull(r.r, magic[:]); err != nil {
		return fmt.Errorf("trace: header: %w", err)
	}
	if [4]byte(magic[:4]) != Magic {
		return ErrBadMagic
	}
	if magic[4] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, magic[4])
	}
	r.started = true
	return nil
}

// Read returns the next record, or io.EOF at end of stream.
func (r *Reader) Read() (*Record, error) {
	if !r.started {
		if err := r.readHeader(); err != nil {
			return nil, err
		}
	}
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("trace: record length: %w", err)
	}
	if n > 1<<24 {
		return nil, ErrCorrupt
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrCorrupt, err)
	}
	return parseRecord(body)
}

func parseRecord(body []byte) (*Record, error) {
	nanos, off := binary.Varint(body)
	if off <= 0 || off >= len(body) {
		return nil, ErrCorrupt
	}
	rec := &Record{Time: time.Unix(0, nanos).UTC()}
	rec.Medium = packet.Medium(body[off])
	body = body[off+1:]
	bits, off := binary.Uvarint(body)
	if off <= 0 {
		return nil, ErrCorrupt
	}
	rec.RSSI = math.Float64frombits(bits)
	body = body[off:]
	rawLen, off := binary.Uvarint(body)
	if off <= 0 || int(rawLen) > len(body)-off {
		return nil, ErrCorrupt
	}
	body = body[off:]
	rec.Raw = make([]byte, rawLen)
	copy(rec.Raw, body[:rawLen])
	body = body[rawLen:]
	if len(body) < 1 {
		return nil, ErrCorrupt
	}
	hasTruth := body[0] == 1
	body = body[1:]
	if hasTruth {
		t := &packet.GroundTruth{}
		var s string
		var err error
		if s, body, err = readString(body); err != nil {
			return nil, err
		}
		t.Attack = s
		inst, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, ErrCorrupt
		}
		t.Instance = int(inst)
		body = body[off:]
		if s, body, err = readString(body); err != nil {
			return nil, err
		}
		t.Attacker = packet.NodeID(s)
		if s, _, err = readString(body); err != nil {
			return nil, err
		}
		t.Victim = packet.NodeID(s)
		rec.Truth = t
	}
	return rec, nil
}

func readString(body []byte) (string, []byte, error) {
	n, off := binary.Uvarint(body)
	if off <= 0 || int(n) > len(body)-off {
		return "", nil, ErrCorrupt
	}
	return string(body[off : off+int(n)]), body[off+int(n):], nil
}

// ReadAll reads every record until EOF.
func ReadAll(r io.Reader) ([]*Record, error) {
	tr := NewReader(r)
	var out []*Record
	for {
		rec, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Merge interleaves multiple record streams by timestamp — the
// paper's trace-enhancement methodology (§VI-A): a clean capture of
// benign device traffic merged with generated attack-symptom records
// yields the evaluation input. Ties preserve the argument order.
func Merge(streams ...[]*Record) []*Record {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]*Record, 0, total)
	idx := make([]int, len(streams))
	for len(out) < total {
		best := -1
		for si, s := range streams {
			if idx[si] >= len(s) {
				continue
			}
			if best < 0 || s[idx[si]].Time.Before(streams[best][idx[best]].Time) {
				best = si
			}
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
	return out
}

// Replay decodes each record and feeds it to fn in order, skipping
// records whose raw bytes fail protocol decoding (and reporting how
// many were skipped).
func Replay(records []*Record, fn func(*packet.Captured)) (skipped int) {
	for _, rec := range records {
		c, err := rec.Decode()
		if err != nil {
			skipped++
			continue
		}
		fn(c)
	}
	return skipped
}
