package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

func sampleRecords() []*Record {
	t0 := time.Unix(1500000000, 0).UTC()
	return []*Record{
		{
			Time:   t0,
			Medium: packet.MediumIEEE802154,
			RSSI:   -61.5,
			Raw:    stack.BuildCTPData(5, 3, 5, 1, 0, 100, []byte("r1")),
		},
		{
			Time:   t0.Add(3 * time.Second),
			Medium: packet.MediumIEEE802154,
			RSSI:   -72.25,
			Raw:    stack.BuildCTPBeacon(3, 1, 30, 2),
			Truth:  &packet.GroundTruth{Attack: "sinkhole", Instance: 7, Attacker: "0x0003", Victim: "0x0001"},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d, want %d", len(got), len(recs))
	}
	for i, g := range got {
		want := recs[i]
		if !g.Time.Equal(want.Time) || g.Medium != want.Medium || g.RSSI != want.RSSI {
			t.Errorf("record %d metadata mismatch: %+v", i, g)
		}
		if !bytes.Equal(g.Raw, want.Raw) {
			t.Errorf("record %d raw mismatch", i)
		}
	}
	if got[0].Truth != nil {
		t.Error("record 0 should have no truth")
	}
	tr := got[1].Truth
	if tr == nil || tr.Attack != "sinkhole" || tr.Instance != 7 || tr.Attacker != "0x0003" || tr.Victim != "0x0001" {
		t.Errorf("truth mismatch: %+v", tr)
	}
}

func TestRecordDecode(t *testing.T) {
	rec := sampleRecords()[0]
	c, err := rec.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if c.Kind != packet.KindCTPData || !c.Time.Equal(rec.Time) || c.RSSI != rec.RSSI {
		t.Errorf("capture mismatch: %+v", c)
	}
}

func TestReplay(t *testing.T) {
	recs := sampleRecords()
	recs = append(recs, &Record{Time: time.Now(), Medium: packet.MediumIEEE802154, Raw: []byte{0xba}})
	var kinds []packet.Kind
	skipped := Replay(recs, func(c *packet.Captured) { kinds = append(kinds, c.Kind) })
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(kinds) != 2 || kinds[0] != packet.KindCTPData || kinds[1] != packet.KindCTPBeacon {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("records = %d, want 0", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("XXXX\x01")))
	if _, err := r.Read(); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("KTRC\x09")))
	if _, err := r.Read(); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-4]))
	_, err := r.Read()
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestEOFAfterRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestMerge(t *testing.T) {
	t0 := time.Unix(1500000000, 0).UTC()
	at := func(sec int) *Record {
		return &Record{Time: t0.Add(time.Duration(sec) * time.Second), Medium: packet.MediumWiFi}
	}
	clean := []*Record{at(0), at(2), at(4)}
	attackRecs := []*Record{at(1), at(2), at(3)}
	merged := Merge(clean, attackRecs)
	if len(merged) != 6 {
		t.Fatalf("merged = %d", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time.Before(merged[i-1].Time) {
			t.Fatalf("merge not time-ordered at %d", i)
		}
	}
	// Tie at t=2 preserves argument order (clean first).
	if merged[2] != clean[1] || merged[3] != attackRecs[1] {
		t.Error("tie-break order wrong")
	}
	if got := Merge(); len(got) != 0 {
		t.Error("empty merge")
	}
	if got := Merge(clean); len(got) != 3 {
		t.Error("single-stream merge")
	}
}

func TestQuickMetadataRoundTrip(t *testing.T) {
	prop := func(nanos int64, rssi float64, raw []byte, attack string, inst uint8) bool {
		rec := &Record{
			Time:   time.Unix(0, nanos).UTC(),
			Medium: packet.MediumWiFi,
			RSSI:   rssi,
			Raw:    raw,
			Truth:  &packet.GroundTruth{Attack: attack, Instance: int(inst), Attacker: "a", Victim: "v"},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(rec) != nil || w.Flush() != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		sameRSSI := g.RSSI == rssi || (rssi != rssi && g.RSSI != g.RSSI) // NaN-safe
		return g.Time.Equal(rec.Time) && sameRSSI && bytes.Equal(g.Raw, raw) &&
			g.Truth.Attack == attack && g.Truth.Instance == int(inst)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
