package flow

import (
	"net/netip"
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/tcp"
)

// idCap builds a synthetic 802.15.4 capture for identity trackers.
func idCap(id packet.NodeID, rssi float64, at time.Time) *packet.Captured {
	return &packet.Captured{
		Time:        at,
		Medium:      packet.MediumIEEE802154,
		Kind:        packet.KindCTPData,
		Src:         id,
		Dst:         "sink",
		Transmitter: id,
		RSSI:        rssi,
	}
}

func TestVictimWindowMaskAndPrune(t *testing.T) {
	w := NewVictimWindow(MaskOf(packet.KindICMPEchoReply), 5*time.Second)

	// Non-matching kinds never enter the window.
	w.Observe(&packet.Captured{Kind: packet.KindICMPEchoRequest, Dst: "v", Time: t0})
	if w.Len("v", t0) != 0 {
		t.Fatal("masked-out kind entered the window")
	}

	mk := func(src packet.NodeID, at time.Time, rssi float64) *packet.Captured {
		return &packet.Captured{Kind: packet.KindICMPEchoReply, Src: src, Dst: "v", Time: at, RSSI: rssi}
	}
	w.Observe(mk("a", t0, -50))
	w.Observe(mk("b", t0.Add(3*time.Second), -55))
	// Read 7s after the first event: "a" has aged out of the 5s
	// window, "b" at age 4s survives (windowing is read-side, against
	// the reader's clock — storage is never time-pruned).
	w.Observe(mk("c", t0.Add(7*time.Second), -60))
	if got := w.Len("v", t0.Add(7*time.Second)); got != 2 {
		t.Errorf("Len = %d, want 2 (stale event counted in window)", got)
	}
	evs := w.Events("v", t0.Add(7*time.Second))
	if len(evs) != 2 || evs[0].Src != "b" || evs[1].Src != "c" {
		t.Errorf("Events = %+v, want b then c", evs)
	}
	if evs[0].RSSI != -55 || !evs[1].At.Equal(t0.Add(7*time.Second)) {
		t.Errorf("event metadata lost: %+v", evs)
	}
	// Windows are per destination.
	if w.Len("other", t0.Add(7*time.Second)) != 0 {
		t.Error("window leaked across destinations")
	}
	// Standalone trackers ignore Release.
	w.Release()
}

func TestTCPHandshakeCompletions(t *testing.T) {
	h := NewTCPHandshakes(10 * time.Second)
	cli := netip.MustParseAddr("10.0.0.1")
	srv := netip.MustParseAddr("10.0.0.2")
	pkt := func(raw []byte, at time.Time) *packet.Captured {
		c, err := stack.Decode(packet.MediumWired, raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		c.Time = at
		return c
	}

	// A pure ACK with no open handshake counts nothing.
	h.Observe(pkt(stack.BuildTCP(cli, srv, 10000, 443, tcp.FlagACK, 1, 1, 1, nil), t0))
	if got := h.Completions(pkt(stack.BuildTCP(cli, srv, 10000, 443, tcp.FlagACK, 1, 1, 1, nil), t0).Dst, t0); got != 0 {
		t.Errorf("completions without SYN = %d, want 0", got)
	}

	// SYN then handshake-completing pure ACK.
	syn := pkt(stack.BuildTCP(cli, srv, 10000, 443, tcp.FlagSYN, 1, 0, 2, nil), t0)
	h.Observe(syn)
	ack := pkt(stack.BuildTCP(cli, srv, 10000, 443, tcp.FlagACK, 2, 100, 3, nil), t0.Add(time.Second))
	h.Observe(ack)
	if got := h.Completions(ack.Dst, t0.Add(time.Second)); got != 1 {
		t.Errorf("completions = %d, want 1", got)
	}

	// An ACK carrying payload is data, not a handshake completion.
	h.Observe(pkt(stack.BuildTCP(cli, srv, 10001, 443, tcp.FlagSYN, 1, 0, 4, nil), t0.Add(2*time.Second)))
	h.Observe(pkt(stack.BuildTCP(cli, srv, 10001, 443, tcp.FlagACK, 2, 100, 5, []byte("data")), t0.Add(3*time.Second)))
	if got := h.Completions(ack.Dst, t0.Add(3*time.Second)); got != 1 {
		t.Errorf("payload ACK counted as completion: %d, want 1", got)
	}

	// Completions age out of the window.
	if got := h.Completions(ack.Dst, t0.Add(time.Minute)); got != 0 {
		t.Errorf("completions after window = %d, want 0", got)
	}
}

func TestIdentityStatsCluster(t *testing.T) {
	const (
		tol       = 5.0
		minFrames = 3
		warmup    = 10 * time.Second
	)
	s := NewIdentityStats(0.3, packet.MediumIEEE802154)

	// Pre-existing identity: present from the tracker's first packet.
	for i := 0; i < minFrames; i++ {
		s.Observe(idCap("old", -60, t0.Add(time.Duration(i)*time.Second)))
	}
	// Wrong-medium and anonymous frames never count.
	wifi := idCap("wifi", -60, t0)
	wifi.Medium = packet.MediumWiFi
	s.Observe(wifi)
	anon := idCap("", -60, t0)
	s.Observe(anon)

	// Three new identities appear after warmup, co-located around -60 dB,
	// plus one new identity far away and one without enough frames.
	late := t0.Add(warmup + time.Second)
	for i := 0; i < minFrames; i++ {
		at := late.Add(time.Duration(i) * time.Second)
		s.Observe(idCap("n1", -60, at))
		s.Observe(idCap("n2", -61, at))
		s.Observe(idCap("n3", -59, at))
		s.Observe(idCap("far", -90, at))
	}
	s.Observe(idCap("sparse", -60, late))

	got := s.Cluster("n1", tol, minFrames, warmup)
	want := []packet.NodeID{"n1", "n2", "n3"}
	if len(got) != len(want) {
		t.Fatalf("cluster = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cluster = %v, want %v", got, want)
		}
	}

	// A center that does not qualify yields no cluster at all.
	if c := s.Cluster("old", tol, minFrames, warmup); c != nil {
		t.Errorf("pre-warmup center clustered: %v", c)
	}
	if c := s.Cluster("sparse", tol, minFrames, warmup); c != nil {
		t.Errorf("under-minFrames center clustered: %v", c)
	}
	if c := s.Cluster("ghost", tol, minFrames, warmup); c != nil {
		t.Errorf("unknown center clustered: %v", c)
	}
}

func TestIdentityMotionJumps(t *testing.T) {
	m := NewIdentityMotion(MotionConfig{
		Medium:     packet.MediumIEEE802154,
		Threshold:  10,
		Window:     30 * time.Second,
		Alpha:      0.3,
		MinSamples: 2,
	})
	// Two samples of warmup, then the RSSI teleports: one jump.
	m.Observe(idCap("r", -60, t0))
	m.Observe(idCap("r", -60, t0.Add(time.Second)))
	jumpAt := t0.Add(2 * time.Second)
	m.Observe(idCap("r", -30, jumpAt))
	s := m.Snapshot("r")
	if s.Jumps != 1 || !s.LastJump.Equal(jumpAt) {
		t.Errorf("snapshot = %+v, want 1 jump at %v", s, jumpAt)
	}

	// A second, stable identity halves the jumpy fraction.
	for i := 0; i < 4; i++ {
		m.Observe(idCap("calm", -70, t0.Add(time.Duration(i)*time.Second)))
	}
	if got := m.JumpyFraction(); got != 0.5 {
		t.Errorf("JumpyFraction = %v, want 0.5", got)
	}

	// Evidence ages out of the window.
	m.Observe(idCap("r", -30, jumpAt.Add(time.Minute)))
	if s := m.Snapshot("r"); s.Jumps != 0 {
		t.Errorf("jump survived the window: %+v", s)
	}
	if s := m.Snapshot("nobody"); s.Jumps != 0 || s.Flips != 0 {
		t.Errorf("unknown identity has evidence: %+v", s)
	}
}

func TestIdentityMotionFlips(t *testing.T) {
	m := NewIdentityMotion(MotionConfig{
		Medium:     packet.MediumIEEE802154,
		Threshold:  10,
		Window:     30 * time.Second,
		Alpha:      0.3,
		MinSamples: 2,
	})
	// CTP data frames originated by the transmitter itself (Src ==
	// Transmitter) carry a trustworthy sequence counter.
	ctpCap := func(seq uint8, at time.Time) *packet.Captured {
		raw := stack.BuildCTPData(7, 2, 7, seq, 1, 10, []byte{0x01})
		c, err := stack.Decode(packet.MediumIEEE802154, raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		c.Time = at
		c.RSSI = -60
		return c
	}
	m.Observe(ctpCap(5, t0))
	m.Observe(ctpCap(6, t0.Add(time.Second))) // monotonic: no flip
	flipAt := t0.Add(2 * time.Second)
	m.Observe(ctpCap(4, flipAt)) // regression: two counters interleaved
	id := ctpCap(4, flipAt).Transmitter
	s := m.Snapshot(id)
	if s.Flips != 1 || !s.LastFlip.Equal(flipAt) {
		t.Errorf("snapshot = %+v, want 1 flip at %v", s, flipAt)
	}
	// A wraparound (255 -> 0) is not a regression (fresh identity so
	// the prior flip evidence cannot interfere).
	wrapCap := func(seq uint8, at time.Time) *packet.Captured {
		raw := stack.BuildCTPData(8, 2, 8, seq, 1, 10, []byte{0x01})
		c, err := stack.Decode(packet.MediumIEEE802154, raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		c.Time = at
		c.RSSI = -60
		return c
	}
	m.Observe(wrapCap(255, t0))
	m.Observe(wrapCap(0, t0.Add(time.Second)))
	if s := m.Snapshot(wrapCap(0, t0).Transmitter); s.Flips != 0 {
		t.Errorf("wraparound counted as flip: %+v", s)
	}
}

func TestTrackerDedupAndRelease(t *testing.T) {
	tbl := NewTable(Config{Features: []string{}})
	mask := MaskOf(packet.KindICMPEchoReply)

	w1 := tbl.VictimWindow(mask, 5*time.Second)
	w2 := tbl.VictimWindow(mask, 5*time.Second)
	if w1 != w2 {
		t.Error("same config yielded distinct victim windows")
	}
	if w3 := tbl.VictimWindow(mask, 10*time.Second); w3 == w1 {
		t.Error("distinct configs shared a victim window")
	} else {
		w3.Release()
	}

	// The table drives the shared tracker once per packet.
	c := cap1("atk", "v", t0)
	c.Kind = packet.KindICMPEchoReply
	tbl.Update(c)
	if got := w1.Len("v", t0); got != 1 {
		t.Errorf("table did not drive tracker: Len = %d, want 1", got)
	}

	// One release keeps the shared handle alive for the other holder.
	w2.Release()
	c2 := cap1("atk", "v", t0.Add(time.Second))
	c2.Kind = packet.KindICMPEchoReply
	tbl.Update(c2)
	if got := w1.Len("v", t0.Add(time.Second)); got != 2 {
		t.Errorf("tracker detached while still held: Len = %d, want 2", got)
	}

	// The last release detaches it: further packets are not observed,
	// and the next acquire builds a fresh tracker.
	w1.Release()
	c3 := cap1("atk", "v", t0.Add(2*time.Second))
	c3.Kind = packet.KindICMPEchoReply
	tbl.Update(c3)
	if got := w1.Len("v", t0.Add(2*time.Second)); got != 2 {
		t.Errorf("released tracker still observed packets: Len = %d", got)
	}
	if w4 := tbl.VictimWindow(mask, 5*time.Second); w4 == w1 {
		t.Error("released tracker was resurrected instead of rebuilt")
	} else {
		w4.Release()
	}

	// Motion trackers dedup by full config.
	cfg := MotionConfig{Medium: packet.MediumIEEE802154, Threshold: 10, Window: 30 * time.Second, Alpha: 0.3, MinSamples: 2}
	m1 := tbl.Motion(cfg)
	m2 := tbl.Motion(cfg)
	if m1 != m2 {
		t.Error("same config yielded distinct motion trackers")
	}
	m1.Release()
	m2.Release()
}
