package flow

import (
	"math"
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// featTable builds a table with the given feature set and a collector
// for its exported records.
func featTable(feats []string) (*Table, *[]Record) {
	tbl := NewTable(Config{Features: feats})
	recs := collectRecords(tbl)
	return tbl, recs
}

// featVal finds a feature value by name in an exported record.
func featVal(t *testing.T, r Record, name string) float64 {
	t.Helper()
	for _, v := range r.Features {
		if v.Name == name {
			return v.V
		}
	}
	t.Fatalf("record has no feature %q: %+v", name, r.Features)
	return 0
}

func hasFeat(r Record, name string) bool {
	for _, v := range r.Features {
		if v.Name == name {
			return true
		}
	}
	return false
}

// decodeCap decodes a built frame and stamps capture metadata.
func decodeCap(t *testing.T, medium packet.Medium, raw []byte, at time.Time, rssi float64) *packet.Captured {
	t.Helper()
	c, err := stack.Decode(medium, raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c.Time = at
	c.RSSI = rssi
	return c
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestRateFeature(t *testing.T) {
	tbl, recs := featTable([]string{"rate"})
	for _, d := range []time.Duration{0, time.Second, 2 * time.Second} {
		tbl.Update(cap1("A", "B", t0.Add(d)))
	}
	tbl.Update(cap1("lonely", "B", t0)) // single-packet flow: rate 0
	tbl.Flush()
	if len(*recs) != 2 {
		t.Fatalf("got %d records, want 2", len(*recs))
	}
	for _, r := range *recs {
		rate := featVal(t, r, "rate_pps")
		switch r.Key.Src {
		case "A":
			// 3 packets over 2 seconds: 2 inter-arrivals per 2s.
			if !approx(rate, 1.0) {
				t.Errorf("rate_pps = %v, want 1.0", rate)
			}
		case "lonely":
			if rate != 0 {
				t.Errorf("single-packet rate_pps = %v, want 0", rate)
			}
		}
	}
}

func TestIATFeature(t *testing.T) {
	tbl, recs := featTable([]string{"iat"})
	// Inter-arrivals: 1s, 2s.
	for _, d := range []time.Duration{0, time.Second, 3 * time.Second} {
		tbl.Update(cap1("A", "B", t0.Add(d)))
	}
	tbl.Flush()
	r := (*recs)[0]
	if got := featVal(t, r, "iat_mean"); !approx(got, 1.5) {
		t.Errorf("iat_mean = %v, want 1.5", got)
	}
	if got := featVal(t, r, "iat_stddev"); !approx(got, math.Sqrt(0.5)) {
		t.Errorf("iat_stddev = %v, want sqrt(0.5)", got)
	}
	if got := featVal(t, r, "iat_min"); !approx(got, 1) {
		t.Errorf("iat_min = %v, want 1", got)
	}
	if got := featVal(t, r, "iat_max"); !approx(got, 2) {
		t.Errorf("iat_max = %v, want 2", got)
	}
}

func TestIATSkipsSinglePacketFlow(t *testing.T) {
	tbl, recs := featTable([]string{"iat"})
	tbl.Update(cap1("A", "B", t0))
	tbl.Flush()
	if hasFeat((*recs)[0], "iat_mean") {
		t.Error("single-packet flow emitted iat values")
	}
}

func TestRSSIFeature(t *testing.T) {
	tbl, recs := featTable([]string{"rssi"})
	c := cap1("A", "B", t0)
	c.RSSI = -60
	tbl.Update(c)
	c2 := cap1("A", "B", t0.Add(time.Second))
	c2.RSSI = -70
	tbl.Update(c2)
	// A wired flow must emit nothing: RSSI carries no information there.
	w := cap1("W", "B", t0)
	w.Medium = packet.MediumWired
	tbl.Update(w)
	tbl.Flush()
	for _, r := range *recs {
		switch r.Key.Src {
		case "A":
			if got := featVal(t, r, "rssi_mean"); !approx(got, -65) {
				t.Errorf("rssi_mean = %v, want -65", got)
			}
			if got := featVal(t, r, "rssi_min"); !approx(got, -70) {
				t.Errorf("rssi_min = %v, want -70", got)
			}
			if got := featVal(t, r, "rssi_max"); !approx(got, -60) {
				t.Errorf("rssi_max = %v, want -60", got)
			}
		case "W":
			if hasFeat(r, "rssi_mean") {
				t.Error("wired flow emitted rssi values")
			}
		}
	}
}

func TestCTPRangeFeatures(t *testing.T) {
	tbl, recs := featTable([]string{"thl", "etx"})
	// One CTP data flow 3>2 whose THL and ETX drift over three frames.
	frames := []struct {
		thl uint8
		etx uint16
	}{{3, 10}, {5, 16}, {4, 13}}
	at := t0
	for i, fr := range frames {
		raw := stack.BuildCTPData(3, 2, 3, uint8(i), fr.thl, fr.etx, []byte{0x01})
		tbl.Update(decodeCap(t, packet.MediumIEEE802154, raw, at, -60))
		at = at.Add(time.Second)
	}
	tbl.Flush()
	if len(*recs) != 1 {
		t.Fatalf("got %d records, want 1", len(*recs))
	}
	r := (*recs)[0]
	if r.Key.Proto != ProtoCTP {
		t.Errorf("proto = %v, want ctp", r.Key.Proto)
	}
	checks := map[string]float64{
		"thl_last": 4, "thl_range": 2, "thl_delta": 1,
		"etx_last": 13, "etx_range": 6, "etx_delta": 3,
	}
	for name, want := range checks {
		if got := featVal(t, r, name); !approx(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestETXFromBeacons(t *testing.T) {
	tbl, recs := featTable([]string{"thl", "etx"})
	for i, etx := range []uint16{20, 35} {
		raw := stack.BuildCTPBeacon(4, 1, etx, uint8(i))
		tbl.Update(decodeCap(t, packet.MediumIEEE802154, raw, t0.Add(time.Duration(i)*time.Second), -60))
	}
	tbl.Flush()
	r := (*recs)[0]
	if got := featVal(t, r, "etx_delta"); !approx(got, 15) {
		t.Errorf("etx_delta = %v, want 15", got)
	}
	// Beacons carry no THL: the thl feature must stay silent.
	if hasFeat(r, "thl_last") {
		t.Error("beacon-only flow emitted thl values")
	}
}

func TestFeatureSetSelection(t *testing.T) {
	// Explicit empty (non-nil) feature list disables all features.
	tbl, recs := featTable([]string{})
	tbl.Update(cap1("A", "B", t0))
	tbl.Update(cap1("A", "B", t0.Add(time.Second)))
	tbl.Flush()
	if n := len((*recs)[0].Features); n != 0 {
		t.Errorf("empty feature set emitted %d values", n)
	}

	// Nil selects the defaults, which include the rate feature.
	tbl2 := NewTable(Config{})
	recs2 := collectRecords(tbl2)
	tbl2.Update(cap1("A", "B", t0))
	tbl2.Update(cap1("A", "B", t0.Add(time.Second)))
	tbl2.Flush()
	if !hasFeat((*recs2)[0], "rate_pps") {
		t.Error("default feature set missing rate_pps")
	}

	// Every default feature must actually be registered.
	reg := Features()
	have := make(map[string]bool, len(reg))
	for _, name := range reg {
		have[name] = true
	}
	for _, name := range DefaultFeatures() {
		if !have[name] {
			t.Errorf("default feature %q not registered", name)
		}
	}
}
