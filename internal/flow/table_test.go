package flow

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

var t0 = time.Unix(1500000000, 0).UTC()

// cap1 builds a minimal capture for table tests: an ICMP echo request
// keys purely on medium + endpoints.
func cap1(src, dst packet.NodeID, at time.Time) *packet.Captured {
	return &packet.Captured{
		Time:   at,
		Medium: packet.MediumWiFi,
		Kind:   packet.KindICMPEchoRequest,
		Src:    src,
		Dst:    dst,
		RSSI:   -60,
	}
}

// collectRecords registers an export hook appending into the returned
// slice (single-goroutine tests only).
func collectRecords(t *Table) *[]Record {
	var recs []Record
	t.OnExport(func(r Record) { recs = append(recs, r) })
	return &recs
}

func TestExpiryIdleVsActive(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		// gaps are the inter-packet gaps of one flow after its first
		// packet at t0.
		gaps       []time.Duration
		wantReason ExpiryReason
		// wantPackets is the packet count of the exported record.
		wantPackets uint64
	}{
		{
			name:        "idle timeout exports the stale flow on touch",
			cfg:         Config{IdleTimeout: 10 * time.Second, ActiveTimeout: time.Hour},
			gaps:        []time.Duration{time.Second, 11 * time.Second},
			wantReason:  ReasonIdle,
			wantPackets: 2,
		},
		{
			name: "active timeout slices a long-lived flow",
			cfg:  Config{IdleTimeout: time.Hour, ActiveTimeout: 10 * time.Second},
			gaps: []time.Duration{4 * time.Second, 4 * time.Second, 4 * time.Second},
			// The 4th packet arrives 12s after First: the flow is
			// exported with the 3 packets seen so far and restarts.
			wantReason:  ReasonActive,
			wantPackets: 3,
		},
		{
			name: "idle wins over active when both elapsed",
			cfg:  Config{IdleTimeout: 10 * time.Second, ActiveTimeout: 15 * time.Second},
			gaps: []time.Duration{20 * time.Second},
			// One gap past both bounds: on-touch expiry checks idle
			// first (the flow went quiet before it grew old).
			wantReason:  ReasonIdle,
			wantPackets: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := NewTable(tc.cfg)
			recs := collectRecords(tbl)
			at := t0
			tbl.Update(cap1("A", "B", at))
			for _, gap := range tc.gaps {
				at = at.Add(gap)
				tbl.Update(cap1("A", "B", at))
			}
			if len(*recs) != 1 {
				t.Fatalf("got %d records, want 1: %+v", len(*recs), *recs)
			}
			r := (*recs)[0]
			if r.Reason != tc.wantReason {
				t.Errorf("reason = %v, want %v", r.Reason, tc.wantReason)
			}
			if r.Packets != tc.wantPackets {
				t.Errorf("packets = %d, want %d", r.Packets, tc.wantPackets)
			}
			// The triggering packet restarted the flow.
			if tbl.Len() != 1 {
				t.Errorf("live flows = %d, want 1", tbl.Len())
			}
			exp, ev := tbl.Stats()
			if exp != 1 || ev != 0 {
				t.Errorf("stats = (%d expirations, %d evictions), want (1, 0)", exp, ev)
			}
		})
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	tbl := NewTable(Config{MaxFlows: 3, IdleTimeout: time.Hour, ActiveTimeout: time.Hour})
	recs := collectRecords(tbl)
	at := t0
	next := func(src packet.NodeID) {
		at = at.Add(time.Second)
		tbl.Update(cap1(src, "sink", at))
	}
	next("A")
	next("B")
	next("C")
	next("A") // refresh A: B becomes least recently used
	next("D") // at capacity: evicts B
	next("E") // evicts C
	next("F") // evicts A

	var got []packet.NodeID
	for _, r := range *recs {
		if r.Reason != ReasonEvicted {
			t.Errorf("reason = %v, want evicted", r.Reason)
		}
		got = append(got, r.Key.Src)
	}
	want := []packet.NodeID{"B", "C", "A"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("eviction order = %v, want %v", got, want)
	}
	if tbl.Len() != 3 {
		t.Errorf("live flows = %d, want 3", tbl.Len())
	}
	if _, ev := tbl.Stats(); ev != 3 {
		t.Errorf("evictions = %d, want 3", ev)
	}
}

func TestSweepExportsQuietFlows(t *testing.T) {
	tbl := NewTable(Config{IdleTimeout: 10 * time.Second, ActiveTimeout: time.Hour, SweepEvery: 4})
	recs := collectRecords(tbl)
	// Two flows that go quiet forever.
	tbl.Update(cap1("quiet1", "x", t0))
	tbl.Update(cap1("quiet2", "x", t0.Add(time.Second)))
	// Unrelated traffic advances capture time past the idle bound; the
	// amortized sweep must export the quiet flows even though their
	// keys are never touched again.
	at := t0.Add(30 * time.Second)
	for i := 0; i < 8; i++ {
		at = at.Add(time.Second)
		tbl.Update(cap1("chatty", "y", at))
	}
	if len(*recs) != 2 {
		t.Fatalf("got %d records, want 2 (sweep missed quiet flows): %+v", len(*recs), *recs)
	}
	for _, r := range *recs {
		if r.Reason != ReasonIdle {
			t.Errorf("reason = %v, want idle", r.Reason)
		}
	}
}

func TestFlushExportsEverything(t *testing.T) {
	tbl := NewTable(Config{})
	recs := collectRecords(tbl)
	tbl.Update(cap1("A", "B", t0))
	tbl.Update(cap1("C", "D", t0.Add(time.Second)))
	tbl.Flush()
	if len(*recs) != 2 {
		t.Fatalf("got %d records, want 2", len(*recs))
	}
	for _, r := range *recs {
		if r.Reason != ReasonShutdown {
			t.Errorf("reason = %v, want shutdown", r.Reason)
		}
	}
	if tbl.Len() != 0 {
		t.Errorf("live flows after flush = %d, want 0", tbl.Len())
	}
}

func TestMetricsHooks(t *testing.T) {
	reg := telemetry.NewRegistry()
	active := reg.Gauge("test_flow_active", "t")
	exps := reg.Counter("test_flow_exp", "t")
	evs := reg.Counter("test_flow_ev", "t")
	tbl := NewTable(Config{MaxFlows: 1, IdleTimeout: 10 * time.Second, ActiveTimeout: time.Hour})
	tbl.SetMetrics(Metrics{Active: active, Expirations: exps, Evictions: evs})

	tbl.Update(cap1("A", "B", t0))
	tbl.Update(cap1("C", "D", t0.Add(time.Second)))    // evicts A>B
	tbl.Update(cap1("C", "D", t0.Add(20*time.Second))) // idle-expires C>D
	if got := active.Value(); got != 1 {
		t.Errorf("active gauge = %v, want 1", got)
	}
	if got := evs.Value(); got != 1 {
		t.Errorf("evictions counter = %v, want 1", got)
	}
	if got := exps.Value(); got != 1 {
		t.Errorf("expirations counter = %v, want 1", got)
	}
}

func TestKeyOfAndString(t *testing.T) {
	c := cap1("A", "B", t0)
	k := KeyOf(c)
	if k.Proto != ProtoICMP || k.Src != "A" || k.Dst != "B" || k.Medium != packet.MediumWiFi {
		t.Errorf("KeyOf = %+v", k)
	}
	if k.SrcPort != 0 || k.DstPort != 0 {
		t.Errorf("ICMP key has ports: %+v", k)
	}
	if got, want := k.String(), "wifi/icmp/A>B"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	r := Record{Key: k}
	if r.CoalesceKey() != k.String() {
		t.Errorf("CoalesceKey %q != Key.String %q", r.CoalesceKey(), k.String())
	}
	// Distinct kinds of the same class share a flow; distinct classes
	// do not.
	c2 := cap1("A", "B", t0)
	c2.Kind = packet.KindICMPEchoReply
	if KeyOf(c2) != k {
		t.Error("echo request and reply should share a flow key")
	}
	c3 := cap1("A", "B", t0)
	c3.Kind = packet.KindUDP
	if KeyOf(c3) == k {
		t.Error("UDP and ICMP must not share a flow key")
	}
}

// TestChurnRace hammers one table from concurrent goroutines — packet
// updates on overlapping keys, tracker acquire/release churn, export
// consumers and metric reads — to let the race detector prove the
// locking discipline. Run with -race.
func TestChurnRace(t *testing.T) {
	tbl := NewTable(Config{MaxFlows: 32, IdleTimeout: 5 * time.Second, ActiveTimeout: 20 * time.Second, SweepEvery: 8})
	var exported sync.Map
	tbl.OnExport(func(r Record) { exported.Store(r.Key, r.Packets) })

	const (
		workers = 4
		packets = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			at := t0
			for i := 0; i < packets; i++ {
				at = at.Add(time.Duration(1+i%7) * 100 * time.Millisecond)
				src := packet.NodeID(fmt.Sprintf("n%d", (w*13+i)%48))
				c := cap1(src, "sink", at)
				c.Transmitter = src
				tbl.Update(c)
			}
		}()
	}
	// Tracker churn alongside the packet load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			vw := tbl.VictimWindow(MaskOf(packet.KindICMPEchoRequest), 5*time.Second)
			hs := tbl.Handshakes(5 * time.Second)
			ids := tbl.IdentityStats(0.3, packet.MediumWiFi)
			_ = vw.Len("sink", t0)
			hs.Release()
			ids.Release()
			vw.Release()
		}
	}()
	// Metric reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			tbl.Len()
			tbl.Stats()
		}
	}()
	wg.Wait()
	tbl.Flush()
	if tbl.Len() != 0 {
		t.Errorf("live flows after flush = %d, want 0", tbl.Len())
	}
}
