package flow

import (
	"math"
	"sort"
	"sync"

	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
)

// Value is one emitted feature value.
type Value struct {
	// Name is the exported feature-value name (e.g. "iat_mean_s").
	Name string
	// V is the value. Durations are emitted in seconds.
	V float64
}

// State is one per-flow feature state machine. Update is called once
// per packet, before the table advances the flow's Last/Packets/Bytes
// counters (see Flow); Emit appends the feature's final values when the
// flow is exported. Implementations must do O(1) work per packet and
// must not allocate on the steady-state update path.
type State interface {
	Update(f *Flow, c *packet.Captured)
	Emit(f *Flow, out []Value) []Value
}

// Factory builds a fresh feature state for a new flow.
type Factory func() State

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a feature under the given name. Registration happens at
// init time; re-registering a name replaces the factory.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
}

// Features returns the registered feature names, sorted.
func Features() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultFeatures is the feature set a zero Config selects.
func DefaultFeatures() []string {
	return []string{"rate", "iat", "rssi", "thl", "etx"}
}

// Export names are concatenated once here, not per Emit: flows export
// continuously under load, and per-export name building was a measurable
// allocation source (hotalloc).
var (
	iatNames  = makeWelfordNames("iat")
	rssiNames = makeWelfordNames("rssi")
	thlNames  = makeRangeNames("thl")
	etxNames  = makeRangeNames("etx")
)

func init() {
	Register("rate", func() State { return rateFeature{} })
	//lint:ignore hotalloc feature state is allocated once per new flow, amortized across the flow's packets
	Register("iat", func() State { return &welfordFeature{names: iatNames, sample: sampleIAT} })
	//lint:ignore hotalloc feature state is allocated once per new flow, amortized across the flow's packets
	Register("rssi", func() State { return &welfordFeature{names: rssiNames, sample: sampleRSSI} })
	//lint:ignore hotalloc feature state is allocated once per new flow, amortized across the flow's packets
	Register("thl", func() State { return &ctpRangeFeature{names: thlNames, sample: sampleTHL} })
	//lint:ignore hotalloc feature state is allocated once per new flow, amortized across the flow's packets
	Register("etx", func() State { return &ctpRangeFeature{names: etxNames, sample: sampleETX} })
}

// rateFeature emits the flow's mean packet rate. It carries no state:
// everything it needs lives in the flow's core counters, so Update is
// free and the rate is exact at export time.
type rateFeature struct{}

func (rateFeature) Update(*Flow, *packet.Captured) {}

func (rateFeature) Emit(f *Flow, out []Value) []Value {
	dur := f.Last.Sub(f.First).Seconds()
	rate := 0.0
	if dur > 0 && f.Packets > 1 {
		rate = float64(f.Packets-1) / dur
	}
	return append(out, Value{Name: "rate_pps", V: rate})
}

// welford is numerically stable streaming mean/variance with min/max.
type welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

func (w *welford) add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// welfordFeature streams one scalar sample per packet through a Welford
// accumulator and emits mean/stddev/min/max. The sample hook returns
// false to skip a packet (e.g. the first packet has no inter-arrival).
type welfordFeature struct {
	names  welfordNames
	sample func(f *Flow, c *packet.Captured) (float64, bool)
	w      welford
}

// welfordNames are a welford feature's precomputed export names.
type welfordNames struct {
	mean, stddev, min, max string
}

func makeWelfordNames(base string) welfordNames {
	return welfordNames{
		mean:   base + "_mean",
		stddev: base + "_stddev",
		min:    base + "_min",
		max:    base + "_max",
	}
}

func (ft *welfordFeature) Update(f *Flow, c *packet.Captured) {
	if x, ok := ft.sample(f, c); ok {
		ft.w.add(x)
	}
}

func (ft *welfordFeature) Emit(f *Flow, out []Value) []Value {
	if ft.w.n == 0 {
		return out
	}
	return append(out,
		Value{Name: ft.names.mean, V: ft.w.mean},
		Value{Name: ft.names.stddev, V: ft.w.stddev()},
		Value{Name: ft.names.min, V: ft.w.min},
		Value{Name: ft.names.max, V: ft.w.max},
	)
}

// sampleIAT yields the inter-arrival time in seconds. During Update the
// flow's Last still holds the previous packet's timestamp, so the first
// packet (Packets == 0) is skipped.
func sampleIAT(f *Flow, c *packet.Captured) (float64, bool) {
	if f.Packets == 0 {
		return 0, false
	}
	return c.Time.Sub(f.Last).Seconds(), true
}

// sampleRSSI yields the observed signal strength (skipped on wired
// captures where RSSI carries no information).
func sampleRSSI(f *Flow, c *packet.Captured) (float64, bool) {
	if c.Medium == packet.MediumWired {
		return 0, false
	}
	return c.RSSI, true
}

// ctpRangeFeature tracks first/last/min/max of a CTP header field and
// emits the last value plus the range and total drift — the THL and ETX
// deltas that betray routing manipulation.
type ctpRangeFeature struct {
	names    rangeNames
	sample   func(c *packet.Captured) (float64, bool)
	seen     bool
	first    float64
	last     float64
	min, max float64
}

func (ft *ctpRangeFeature) Update(f *Flow, c *packet.Captured) {
	x, ok := ft.sample(c)
	if !ok {
		return
	}
	if !ft.seen {
		ft.seen = true
		ft.first, ft.min, ft.max = x, x, x
	} else {
		if x < ft.min {
			ft.min = x
		}
		if x > ft.max {
			ft.max = x
		}
	}
	ft.last = x
}

func (ft *ctpRangeFeature) Emit(f *Flow, out []Value) []Value {
	if !ft.seen {
		return out
	}
	return append(out,
		Value{Name: ft.names.last, V: ft.last},
		Value{Name: ft.names.rng, V: ft.max - ft.min},
		Value{Name: ft.names.delta, V: ft.last - ft.first},
	)
}

// rangeNames are a range feature's precomputed export names.
type rangeNames struct {
	last, rng, delta string
}

func makeRangeNames(base string) rangeNames {
	return rangeNames{
		last:  base + "_last",
		rng:   base + "_range",
		delta: base + "_delta",
	}
}

// sampleTHL reads the CTP time-has-lived counter.
func sampleTHL(c *packet.Captured) (float64, bool) {
	if d, ok := c.Layer("ctp-data").(*ctp.Data); ok {
		return float64(d.THL), true
	}
	return 0, false
}

// sampleETX reads the CTP path-cost estimate from data or beacon
// frames.
func sampleETX(c *packet.Captured) (float64, bool) {
	if d, ok := c.Layer("ctp-data").(*ctp.Data); ok {
		return float64(d.ETX), true
	}
	if b, ok := c.Layer("ctp-beacon").(*ctp.Beacon); ok {
		return float64(b.ETX), true
	}
	return 0, false
}
