package flow

import (
	"net/netip"
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/tcp"
)

// TestSharedTrackersAcrossTables: tables given one registry
// (Config.Trackers) serve the same tracker instances and all drive
// them — the sharded-node contract, where a victim's evidence must
// accumulate globally even though its packets hash to different
// shards by source.
func TestSharedTrackersAcrossTables(t *testing.T) {
	reg := NewTrackers()
	tblA := NewTable(Config{Features: []string{}, Trackers: reg})
	tblB := NewTable(Config{Features: []string{}, Trackers: reg})
	mask := MaskOf(packet.KindICMPEchoReply)

	wA := tblA.VictimWindow(mask, 5*time.Second)
	wB := tblB.VictimWindow(mask, 5*time.Second)
	if wA != wB {
		t.Fatal("tables sharing a registry yielded distinct victim windows")
	}

	// Spoofed-source flood split across two tables: the shared window
	// must see every event.
	for i := 0; i < 10; i++ {
		src := packet.NodeID(rune('a' + i))
		c := cap1(src, "v", t0.Add(time.Duration(i)*time.Millisecond))
		c.Kind = packet.KindICMPEchoReply
		if i%2 == 0 {
			tblA.Update(c)
		} else {
			tblB.Update(c)
		}
	}
	if got := wA.Len("v", t0.Add(time.Second)); got != 10 {
		t.Errorf("shared window Len = %d, want 10 (evidence split across tables)", got)
	}
	// But 5-tuple flow state stays table-local: each table holds only
	// the flows it updated.
	if a, b := tblA.Len(), tblB.Len(); a != 5 || b != 5 {
		t.Errorf("table flow counts = %d, %d, want 5, 5 (flows must stay local)", a, b)
	}

	// The gate is one critical section on the shared window: the first
	// caller passes and arms the cooldown for every table's handle.
	now := t0.Add(20 * time.Millisecond)
	if !wA.Gate("mod", "v", 10, 10*time.Second, now) {
		t.Error("first Gate call at threshold did not pass")
	}
	if wB.Gate("mod", "v", 10, 10*time.Second, now.Add(time.Millisecond)) {
		t.Error("second Gate call within cooldown passed — cross-table dedup broken")
	}
	// Distinct owners gate independently over the same evidence.
	if !wB.Gate("other", "v", 10, 10*time.Second, now.Add(time.Millisecond)) {
		t.Error("distinct owner was suppressed by another owner's cooldown")
	}

	// Cross-table reference counting: one release keeps the shared
	// instance alive, the last one detaches it.
	wA.Release()
	if w := tblB.VictimWindow(mask, 5*time.Second); w != wB {
		t.Error("release of one handle detached a still-referenced tracker")
	} else {
		w.Release()
	}
	wB.Release()
	if w := tblA.VictimWindow(mask, 5*time.Second); w == wB {
		t.Error("fully released tracker was resurrected instead of recreated")
	} else {
		w.Release()
	}
}

// TestPrivateTrackersByDefault: tables built without Config.Trackers
// keep independent registries (the pre-sharding contract).
func TestPrivateTrackersByDefault(t *testing.T) {
	tblA := NewTable(Config{Features: []string{}})
	tblB := NewTable(Config{Features: []string{}})
	mask := MaskOf(packet.KindICMPEchoReply)
	wA := tblA.VictimWindow(mask, 5*time.Second)
	wB := tblB.VictimWindow(mask, 5*time.Second)
	if wA == wB {
		t.Error("independent tables shared a victim window")
	}
	wA.Release()
	wB.Release()
}

// TestVictimWindowShardSkew: shard workers read the shared window at
// their own packet's capture time, so a shard that has raced a whole
// episode ahead must neither see a laggard's events in its window nor
// destroy them — the laggard's threshold probe still has to fire.
func TestVictimWindowShardSkew(t *testing.T) {
	w := NewVictimWindow(MaskOf(packet.KindTCPSYN), 5*time.Second)
	mk := func(src packet.NodeID, at time.Time) *packet.Captured {
		return &packet.Captured{Kind: packet.KindTCPSYN, Src: src, Dst: "v", Time: at}
	}
	// The fast shard inserts an event from the next episode, 20s ahead.
	ahead := t0.Add(20 * time.Second)
	w.Observe(mk("fast", ahead))
	// The laggard then delivers this episode's burst — out of global
	// timestamp order.
	for i := 0; i < 10; i++ {
		w.Observe(mk(packet.NodeID(rune('a'+i)), t0.Add(time.Duration(i)*100*time.Millisecond)))
	}
	lagNow := t0.Add(time.Second)
	if got := w.Len("v", lagNow); got != 10 {
		t.Errorf("laggard window = %d, want 10 (ahead-shard insert destroyed or polluted it)", got)
	}
	if got := w.Len("v", ahead); got != 1 {
		t.Errorf("ahead window = %d, want 1 (stale episode leaked forward)", got)
	}
	if !w.Gate("mod", "v", 10, 10*time.Second, lagNow) {
		t.Error("laggard threshold probe failed after cross-shard skew")
	}
	evs := w.Events("v", lagNow)
	if len(evs) != 10 || evs[0].Src != "a" || evs[9].Src != "j" {
		t.Errorf("laggard Events = %d entries (%v...), want the in-window 10 in time order", len(evs), evs[0].Src)
	}
}

// TestHandshakeShardSkew: completion counts are likewise read-side
// windowed against sorted storage.
func TestHandshakeShardSkew(t *testing.T) {
	hs := NewTCPHandshakes(5 * time.Second)
	srv := netip.MustParseAddr("10.0.0.99")
	hshake := func(cli netip.Addr, at time.Time) {
		syn, err := stack.Decode(packet.MediumWired, stack.BuildTCP(cli, srv, 10000, 443, tcp.FlagSYN, 1, 0, 1, nil))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		syn.Time = at
		hs.Observe(syn)
		ack, err := stack.Decode(packet.MediumWired, stack.BuildTCP(cli, srv, 10000, 443, tcp.FlagACK, 2, 100, 2, nil))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		ack.Time = at.Add(50 * time.Millisecond)
		hs.Observe(ack)
	}
	// A fast shard completes a handshake 20s ahead, then a laggard
	// completes two in this episode — out of global timestamp order.
	hshake(netip.MustParseAddr("10.0.0.1"), t0.Add(20*time.Second))
	hshake(netip.MustParseAddr("10.0.0.2"), t0)
	hshake(netip.MustParseAddr("10.0.0.3"), t0)
	dst := packet.NodeID(srv.String())
	if got := hs.Completions(dst, t0.Add(time.Second)); got != 2 {
		t.Errorf("laggard completions = %d, want 2", got)
	}
	if got := hs.Completions(dst, t0.Add(21*time.Second)); got != 1 {
		t.Errorf("ahead completions = %d, want 1", got)
	}
}
