package flow

import (
	"sync"
	"sync/atomic"
	"time"

	"kalis/internal/packet"
)

// Trackers is the endpoint-tracker registry: victim windows, TCP
// handshake ledgers, identity fingerprints and motion tracks,
// deduplicated by configuration and reference-counted. Every Table
// points at one — private by default, or shared across tables via
// Config.Trackers.
//
// Sharing exists for the sharded ingestion pipeline: packets shard by
// *source* hash, but these trackers key their evidence by victim,
// responder or transmitter identity — under a spoofed-source flood the
// attack traffic scatters across every shard while the victim's window
// must still accumulate globally, or no shard ever crosses the alert
// threshold. A sharded node therefore gives all per-shard flow tables
// one registry: endpoint-keyed evidence is global, 5-tuple flow state
// stays shard-local. Every tracker locks internally, so concurrent
// Observe calls from several shard workers are safe.
type Trackers struct {
	mu         sync.Mutex
	victims    map[victimKey]*VictimWindow
	handshakes map[time.Duration]*TCPHandshakes
	identities map[identityKey]*IdentityStats
	motions    map[MotionConfig]*IdentityMotion

	// observe is the copy-on-write Tracker list: Table.Update loads the
	// snapshot with one atomic read per packet; acquire and release swap
	// it under mu.
	observe atomic.Value // []Tracker
}

// NewTrackers creates an empty registry, shareable across flow tables
// via Config.Trackers.
func NewTrackers() *Trackers {
	return &Trackers{
		victims:    make(map[victimKey]*VictimWindow),
		handshakes: make(map[time.Duration]*TCPHandshakes),
		identities: make(map[identityKey]*IdentityStats),
		motions:    make(map[MotionConfig]*IdentityMotion),
	}
}

// snapshot returns the current observe list (nil when empty).
func (r *Trackers) snapshot() []Tracker {
	s, _ := r.observe.Load().([]Tracker)
	return s
}

// addLocked appends a tracker copy-on-write. Callers must hold r.mu.
func (r *Trackers) addLocked(tr Tracker) {
	cur := r.snapshot()
	next := make([]Tracker, len(cur), len(cur)+1)
	copy(next, cur)
	r.observe.Store(append(next, tr))
}

// dropLocked removes a tracker copy-on-write. Callers must hold r.mu.
func (r *Trackers) dropLocked(tr Tracker) {
	cur := r.snapshot()
	next := make([]Tracker, 0, len(cur))
	for _, x := range cur {
		if x != tr {
			next = append(next, x)
		}
	}
	r.observe.Store(next)
}

// VictimWindow acquires the registry's shared victim window for the
// given kind mask and window, creating it on first use. Release the
// handle when done (module Deactivate).
func (r *Trackers) VictimWindow(mask KindMask, window time.Duration) *VictimWindow {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := victimKey{mask: mask, window: window}
	w := r.victims[k]
	if w == nil {
		w = NewVictimWindow(mask, window)
		w.reg, w.vkey = r, k
		r.victims[k] = w
		r.addLocked(w)
	}
	w.refs++
	return w
}

// Handshakes acquires the registry's shared handshake tracker for the
// given completion window.
func (r *Trackers) Handshakes(window time.Duration) *TCPHandshakes {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.handshakes[window]
	if h == nil {
		h = NewTCPHandshakes(window)
		h.reg = r
		r.handshakes[window] = h
		r.addLocked(h)
	}
	h.refs++
	return h
}

// IdentityStats acquires the registry's shared identity tracker for the
// given EWMA smoothing factor and medium.
func (r *Trackers) IdentityStats(alpha float64, medium packet.Medium) *IdentityStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := identityKey{alpha: alpha, medium: medium}
	s := r.identities[k]
	if s == nil {
		s = NewIdentityStats(alpha, medium)
		s.reg, s.ikey = r, k
		r.identities[k] = s
		r.addLocked(s)
	}
	s.refs++
	return s
}

// Motion acquires the registry's shared motion tracker for the given
// configuration (the static and mobile replication modules share one
// tracker when configured alike, so the state updates once per packet).
func (r *Trackers) Motion(cfg MotionConfig) *IdentityMotion {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.motions[cfg]
	if m == nil {
		m = NewIdentityMotion(cfg)
		m.reg = r
		r.motions[cfg] = m
		r.addLocked(m)
	}
	m.refs++
	return m
}
