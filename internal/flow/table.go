package flow

import (
	"sync"
	"time"

	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// Config tunes a flow table. Zero fields select the defaults.
type Config struct {
	// IdleTimeout expires a flow that saw no packet for this long
	// (capture time). Default 60s.
	IdleTimeout time.Duration
	// ActiveTimeout slices long-lived flows: a flow older than this is
	// exported and restarted on its next packet. Default 5m.
	ActiveTimeout time.Duration
	// MaxFlows bounds the table; at capacity the least recently touched
	// flow is evicted (and exported). Default 4096.
	MaxFlows int
	// SweepEvery is the packet interval between idle sweeps of the LRU
	// tail (on-touch expiry catches re-keyed flows; the sweep catches
	// flows that simply went quiet). Default 256.
	SweepEvery int
	// Features names the per-flow features to run (see Register). Nil
	// selects DefaultFeatures; an explicit empty, non-nil slice runs
	// none. Unknown names are ignored.
	Features []string
	// Trackers is the endpoint-tracker registry the table serves and
	// observes. Nil creates a private one; sharded nodes pass one shared
	// registry to every per-shard table so endpoint-keyed evidence
	// (victim windows, handshake ledgers, identity fingerprints) stays
	// global under source-hash sharding (see Trackers).
	Trackers *Trackers
}

func (cfg Config) withDefaults() Config {
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.ActiveTimeout <= 0 {
		cfg.ActiveTimeout = 5 * time.Minute
	}
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = 4096
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = 256
	}
	if cfg.Features == nil {
		cfg.Features = DefaultFeatures()
	}
	return cfg
}

// Metrics are the table's optional telemetry hooks; zero-value fields
// are skipped (all telemetry types are nil-safe).
type Metrics struct {
	// Active tracks the number of flows currently in the table.
	Active *telemetry.Gauge
	// Expirations counts flows exported by idle/active timeout.
	Expirations *telemetry.Counter
	// Evictions counts flows exported by the capacity bound.
	Evictions *telemetry.Counter
}

// ExportFunc consumes exported flow records.
type ExportFunc func(Record)

// Tracker is an endpoint-level aggregate updated once per packet by the
// table (see endpoint.go). Observe runs after the flow-level update,
// outside the table lock.
type Tracker interface {
	Observe(c *packet.Captured)
}

// Table is the flow table: a bounded map of live flows with an
// intrusive LRU list for eviction order, idle/active expiry on the
// capture clock, and per-flow feature state machines.
type Table struct {
	cfg      Config
	featFns  []Factory
	featured bool

	mu      sync.Mutex
	flows   map[Key]*Flow
	lruHead *Flow // most recently touched
	lruTail *Flow // least recently touched
	toSweep int
	// lastActive is the flow count last pushed to the Active gauge, so
	// the steady state (count unchanged) skips the per-packet store.
	lastActive int
	lastSeen   time.Time
	met        Metrics

	// exports is copy-on-write: Update snapshots the slice header under
	// mu and iterates after unlock.
	exports []ExportFunc

	// trk is the endpoint-tracker registry (private or shared across
	// tables, see Config.Trackers). It locks independently of t.mu and
	// the two are never nested.
	trk *Trackers

	expirations, evictions uint64
}

// NewTable creates a flow table.
func NewTable(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		cfg:     cfg,
		flows:   make(map[Key]*Flow),
		toSweep: cfg.SweepEvery,
		trk:     cfg.Trackers,
	}
	if t.trk == nil {
		t.trk = NewTrackers()
	}
	regMu.RLock()
	for _, name := range cfg.Features {
		if f, ok := registry[name]; ok {
			t.featFns = append(t.featFns, f)
		}
	}
	regMu.RUnlock()
	t.featured = len(t.featFns) > 0
	return t
}

// SetMetrics installs telemetry hooks. Call it before traffic flows.
func (t *Table) SetMetrics(met Metrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.met = met
}

// OnExport registers a consumer for exported flow records. Callbacks
// run outside the table lock, on the goroutine that triggered the
// export (Update or Flush).
func (t *Table) OnExport(fn ExportFunc) {
	t.mu.Lock()
	defer t.mu.Unlock()
	exports := make([]ExportFunc, len(t.exports), len(t.exports)+1)
	copy(exports, t.exports)
	t.exports = append(exports, fn)
}

// Len returns the number of live flows.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flows)
}

// Stats returns lifetime expiration and eviction counts.
func (t *Table) Stats() (expirations, evictions uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.expirations, t.evictions
}

// Update folds one capture into the table: expiry on touch, flow
// creation (with LRU eviction at capacity), one feature-state update
// per configured feature, an amortized idle sweep, and finally one
// Observe per registered endpoint tracker. The per-packet cost is O(1)
// in the table size and independent of any window length.
func (t *Table) Update(c *packet.Captured) {
	t.mu.Lock()
	if c.Time.After(t.lastSeen) {
		t.lastSeen = c.Time
	}
	k := KeyOf(c)
	var exported []Record
	f := t.flows[k]
	if f != nil {
		// Expiry on touch: a stale entry is exported and the flow
		// restarts fresh from this packet.
		if c.Time.Sub(f.Last) > t.cfg.IdleTimeout {
			//lint:ignore hotalloc exports append only on idle expiry, amortized across the flow's packets
			exported = append(exported, t.removeLocked(f, ReasonIdle))
			f = nil
		} else if c.Time.Sub(f.First) > t.cfg.ActiveTimeout {
			//lint:ignore hotalloc exports append only on active-timeout expiry, amortized across the flow's packets
			exported = append(exported, t.removeLocked(f, ReasonActive))
			f = nil
		}
	}
	if f == nil {
		if len(t.flows) >= t.cfg.MaxFlows && t.lruTail != nil {
			//lint:ignore hotalloc exports append only on LRU eviction at the MaxFlows ceiling
			exported = append(exported, t.removeLocked(t.lruTail, ReasonEvicted))
		}
		//lint:ignore hotalloc one allocation per new flow, amortized across the flow's packets
		f = &Flow{Key: k, First: c.Time, Last: c.Time}
		if t.featured {
			f.feats = make([]State, len(t.featFns))
			for i, fn := range t.featFns {
				f.feats[i] = fn()
			}
		}
		t.flows[k] = f
		t.pushFrontLocked(f)
	} else if t.lruHead != f {
		t.unlinkLocked(f)
		t.pushFrontLocked(f)
	}
	for _, fs := range f.feats {
		fs.Update(f, c)
	}
	f.Last = c.Time
	f.Packets++
	f.Bytes += uint64(len(c.Payload))

	t.toSweep--
	if t.toSweep <= 0 {
		t.toSweep = t.cfg.SweepEvery
		exported = t.sweepLocked(c.Time, exported)
	}
	if n := len(t.flows); n != t.lastActive {
		t.lastActive = n
		t.met.Active.Set(int64(n))
	}
	exports := t.exports
	t.mu.Unlock()

	for _, tr := range t.trk.snapshot() {
		tr.Observe(c)
	}
	if len(exported) > 0 {
		for _, fn := range exports {
			for _, r := range exported {
				fn(r)
			}
		}
	}
}

// sweepLocked expires idle flows from the LRU tail. Because the list is
// in touch order, the walk stops at the first non-idle flow; combined
// with the SweepEvery amortization the cost stays O(1) per packet.
func (t *Table) sweepLocked(now time.Time, exported []Record) []Record {
	for t.lruTail != nil && now.Sub(t.lruTail.Last) > t.cfg.IdleTimeout {
		exported = append(exported, t.removeLocked(t.lruTail, ReasonIdle))
	}
	return exported
}

// Flush exports every live flow with ReasonShutdown (at the last seen
// capture time) and empties the table.
func (t *Table) Flush() {
	t.mu.Lock()
	var exported []Record
	for t.lruTail != nil {
		exported = append(exported, t.removeLocked(t.lruTail, ReasonShutdown))
	}
	t.lastActive = 0
	t.met.Active.Set(0)
	exports := t.exports
	t.mu.Unlock()
	for _, fn := range exports {
		for _, r := range exported {
			fn(r)
		}
	}
}

// removeLocked unlinks a flow, updates the counters and builds its
// export record. Callers must hold t.mu.
func (t *Table) removeLocked(f *Flow, reason ExpiryReason) Record {
	delete(t.flows, f.Key)
	t.unlinkLocked(f)
	switch reason {
	case ReasonEvicted:
		t.evictions++
		t.met.Evictions.Inc()
	case ReasonIdle, ReasonActive:
		t.expirations++
		t.met.Expirations.Inc()
	}
	r := Record{
		Key:     f.Key,
		First:   f.First,
		Last:    f.Last,
		Packets: f.Packets,
		Bytes:   f.Bytes,
		Reason:  reason,
	}
	if len(f.feats) > 0 {
		out := make([]Value, 0, 4*len(f.feats))
		for _, fs := range f.feats {
			out = fs.Emit(f, out)
		}
		r.Features = out
	}
	return r
}

func (t *Table) pushFrontLocked(f *Flow) {
	f.prev = nil
	f.next = t.lruHead
	if t.lruHead != nil {
		t.lruHead.prev = f
	}
	t.lruHead = f
	if t.lruTail == nil {
		t.lruTail = f
	}
}

func (t *Table) unlinkLocked(f *Flow) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		t.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		t.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}
