package flow

import (
	"fmt"
	"testing"
	"time"

	"kalis/internal/packet"
)

// BenchmarkFlowTable measures the steady-state per-packet cost of a
// flow-table update (key lookup, feature updates, LRU maintenance)
// across table populations. The cost must stay flat as the table grows
// — the update path is O(1) in the number of live flows.
func BenchmarkFlowTable(b *testing.B) {
	for _, size := range []int{16, 1024, 8192} {
		b.Run(fmt.Sprintf("flows=%d", size), func(b *testing.B) {
			tbl := NewTable(Config{
				MaxFlows:      size * 2,
				IdleTimeout:   24 * time.Hour,
				ActiveTimeout: 24 * time.Hour,
			})
			caps := make([]*packet.Captured, size)
			for i := range caps {
				caps[i] = &packet.Captured{
					Time:   t0,
					Medium: packet.MediumIEEE802154,
					Kind:   packet.KindCTPData,
					Src:    packet.NodeID(fmt.Sprintf("n%d", i)),
					Dst:    "sink",
					RSSI:   -60,
				}
			}
			// Populate: every key exists before the timer starts.
			for _, c := range caps {
				tbl.Update(c)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := caps[i%size]
				c.Time = c.Time.Add(time.Millisecond)
				tbl.Update(c)
			}
		})
	}
}
