package flow

import (
	"math"
	"sort"
	"sync"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/tcp"
	"kalis/internal/proto/zigbee"
)

// This file holds the endpoint-level aggregate trackers: flow state
// keyed by victim, initiator or transmitter identity rather than by
// 5-tuple, serving the detection modules their traffic statistics in
// O(1) per packet. Trackers are acquired from a Table's registry
// (deduplicated by configuration and reference-counted, so e.g. the
// ICMP-flood and Smurf modules share one victim window updated once per
// packet; see Trackers for cross-shard sharing), or created standalone
// for direct-construction unit tests. All pruning runs on capture
// timestamps (simclock discipline).

// KindMask is a bitmask over packet.Kind values (the kind space is
// small and stable; see packet.Kind).
type KindMask uint64

// MaskOf builds a mask matching the given kinds.
func MaskOf(kinds ...packet.Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// Has reports whether the mask matches the kind.
func (m KindMask) Has(k packet.Kind) bool { return m&(1<<uint(k)) != 0 }

// Event is one observation in a victim window.
type Event struct {
	At   time.Time
	RSSI float64
	Src  packet.NodeID
}

// victimKey deduplicates victim windows by configuration.
type victimKey struct {
	mask   KindMask
	window time.Duration
}

// VictimWindow keeps, per destination, the sliding window of matching
// packets — the rate evidence behind the flood detectors. Storage is
// time-sorted and cap-bounded; windowing is applied read-side against
// the reader's own capture clock (see Observe), so per-packet cost is
// amortized O(1) on insert and O(log n) per threshold probe.
type VictimWindow struct {
	mask   KindMask
	window time.Duration

	mu       sync.Mutex
	byDst    map[packet.NodeID][]Event
	suppress map[gateID]time.Time

	reg  *Trackers
	vkey victimKey
	refs int
}

// gateID keys an armed alert cooldown: the policy owner (module name)
// and the victim it alerted for.
type gateID struct {
	owner  string
	victim packet.NodeID
}

// NewVictimWindow creates a standalone victim window (not attached to a
// table); the owner calls Observe itself.
func NewVictimWindow(mask KindMask, window time.Duration) *VictimWindow {
	return &VictimWindow{
		mask:     mask,
		window:   window,
		byDst:    make(map[packet.NodeID][]Event),
		suppress: make(map[gateID]time.Time),
	}
}

// VictimWindow acquires the table's shared victim window for the given
// kind mask and window, creating it on first use. Release the handle
// when done (module Deactivate). Tables sharing a registry
// (Config.Trackers) return the same window.
func (t *Table) VictimWindow(mask KindMask, window time.Duration) *VictimWindow {
	return t.trk.VictimWindow(mask, window)
}

// Release returns the handle; the last release detaches the tracker
// from its registry (standalone windows ignore Release).
func (w *VictimWindow) Release() {
	if w.reg == nil {
		return
	}
	r := w.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	w.refs--
	if w.refs <= 0 {
		delete(r.victims, w.vkey)
		r.dropLocked(w)
	}
}

// Observe implements Tracker.
func (w *VictimWindow) Observe(c *packet.Captured) {
	if !w.mask.Has(c.Kind) {
		return
	}
	w.mu.Lock()
	evs := w.byDst[c.Dst]
	// Concurrent shard workers deliver captures out of timestamp order,
	// and a shard that races ahead in an accelerated replay can be a
	// full episode past a laggard. Storage is therefore time-sorted and
	// cap-bounded, never time-pruned: pruning on insert against any
	// "current" time would destroy a slower shard's still-live window.
	// Readers count within their own [now-window, now] instead. The
	// backward scan is O(1) for in-order arrival and bounded by shard
	// lag otherwise.
	i := len(evs)
	for i > 0 && evs[i-1].At.After(c.Time) {
		i--
	}
	//lint:ignore hotalloc amortized growth of the map-stored per-victim slice, cap-bounded at maxVictimEvents
	evs = append(evs, Event{})
	copy(evs[i+1:], evs[i:])
	evs[i] = Event{At: c.Time, RSSI: c.RSSI, Src: c.Src}
	if len(evs) > maxVictimEvents {
		evs = evs[len(evs)-maxVictimEvents:]
	}
	w.byDst[c.Dst] = evs
	w.mu.Unlock()
}

// maxVictimEvents bounds retained events per destination (storage is
// not time-pruned; see Observe). 1024 comfortably exceeds any
// per-window flood threshold while capping memory per victim.
const maxVictimEvents = 1024

// windowSpan returns the half-open index range [lo, hi) of evs (sorted
// by At) falling inside [now-window, now] — events from shards that
// have raced ahead of the reader are excluded just as events the
// reader has outlived are.
func windowSpan(evs []Event, window time.Duration, now time.Time) (int, int) {
	oldest := now.Add(-window)
	lo := sort.Search(len(evs), func(i int) bool { return !evs[i].At.Before(oldest) })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].At.After(now) })
	return lo, hi
}

// Len returns how many events fall inside the window ending at now for
// a destination, without copying — the cheap threshold probe.
func (w *VictimWindow) Len(dst packet.NodeID, now time.Time) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	lo, hi := windowSpan(w.byDst[dst], w.window, now)
	return hi - lo
}

// Gate reports whether owner (a module name) may alert for victim at
// now: the window must hold at least min matching events and the
// owner's per-victim cooldown must have lapsed. Passing arms the
// cooldown — even if a downstream knowledge veto then withholds the
// alert, preserving one-alert-per-burst semantics. Threshold check and
// cooldown arming are one critical section on the shared window, so on
// a sharded node concurrent shard workers agree on a single alert per
// burst per module instead of one per shard.
func (w *VictimWindow) Gate(owner string, victim packet.NodeID, min int, cooldown time.Duration, now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	lo, hi := windowSpan(w.byDst[victim], w.window, now)
	if hi-lo < min {
		return false
	}
	k := gateID{owner: owner, victim: victim}
	if until, ok := w.suppress[k]; ok && now.Before(until) {
		return false
	}
	w.suppress[k] = now.Add(cooldown)
	return true
}

// ResetGate clears the owner's armed cooldowns (module reactivation).
func (w *VictimWindow) ResetGate(owner string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for k := range w.suppress {
		if k.owner == owner {
			delete(w.suppress, k)
		}
	}
}

// Events returns a copy of the destination's events inside the window
// ending at now (called on the cold, threshold-crossed branch only).
func (w *VictimWindow) Events(dst packet.NodeID, now time.Time) []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	lo, hi := windowSpan(w.byDst[dst], w.window, now)
	out := make([]Event, hi-lo)
	copy(out, w.byDst[dst][lo:hi])
	return out
}

// TCPHandshakes tracks open TCP handshakes per initiator→responder pair
// and handshake-completing pure ACKs per responder — the evidence that
// separates a legitimate connection burst from a spoofed SYN flood.
type TCPHandshakes struct {
	window time.Duration

	mu      sync.Mutex
	pending map[hsKey]bool
	comps   map[packet.NodeID][]time.Time

	reg  *Trackers
	refs int
}

// hsKey identifies a half-open handshake by its endpoint pair. A
// struct key keeps the per-SYN map update allocation-free; the string
// concatenation it replaces showed up directly in the per-packet
// profile (hotalloc).
type hsKey struct {
	src, dst packet.NodeID
}

// NewTCPHandshakes creates a standalone handshake tracker.
func NewTCPHandshakes(window time.Duration) *TCPHandshakes {
	return &TCPHandshakes{
		window:  window,
		pending: make(map[hsKey]bool),
		comps:   make(map[packet.NodeID][]time.Time),
	}
}

// Handshakes acquires the table's shared handshake tracker for the
// given completion window.
func (t *Table) Handshakes(window time.Duration) *TCPHandshakes {
	return t.trk.Handshakes(window)
}

// Release returns the handle (see VictimWindow.Release).
func (h *TCPHandshakes) Release() {
	if h.reg == nil {
		return
	}
	r := h.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	h.refs--
	if h.refs <= 0 {
		delete(r.handshakes, h.window)
		r.dropLocked(h)
	}
}

// Observe implements Tracker.
func (h *TCPHandshakes) Observe(c *packet.Captured) {
	switch c.Kind {
	case packet.KindTCPSYN:
		h.mu.Lock()
		h.pending[hsKey{src: c.Src, dst: c.Dst}] = true
		h.mu.Unlock()
	case packet.KindTCPACK:
		// A pure ACK from an initiator with an open handshake is the
		// handshake-completing third packet — legitimate bursts produce
		// these, spoofed floods cannot.
		seg, ok := c.Layer("tcp").(*tcp.Segment)
		if !ok || !seg.IsACK() || len(seg.Payload) != 0 {
			return
		}
		key := hsKey{src: c.Src, dst: c.Dst}
		h.mu.Lock()
		if h.pending[key] {
			delete(h.pending, key)
			// Time-ordered insert, as in VictimWindow.Observe: ACKs
			// from initiators on different shards can arrive out of
			// timestamp order and Completions prunes from the front.
			comps := h.comps[c.Dst]
			i := len(comps)
			for i > 0 && comps[i-1].After(c.Time) {
				i--
			}
			//lint:ignore hotalloc amortized growth of the map-stored per-responder slice, cap-bounded at maxVictimEvents
			comps = append(comps, time.Time{})
			copy(comps[i+1:], comps[i:])
			comps[i] = c.Time
			if len(comps) > maxVictimEvents {
				comps = comps[len(comps)-maxVictimEvents:]
			}
			h.comps[c.Dst] = comps
		}
		h.mu.Unlock()
	}
}

// Completions returns how many handshakes completed towards dst within
// the window ending at now. As with VictimWindow, storage is sorted
// and cap-bounded rather than pruned, so slower shards' reads stay
// correct while others race ahead.
func (h *TCPHandshakes) Completions(dst packet.NodeID, now time.Time) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	comps := h.comps[dst]
	oldest := now.Add(-h.window)
	lo := sort.Search(len(comps), func(i int) bool { return !comps[i].Before(oldest) })
	hi := sort.Search(len(comps), func(i int) bool { return comps[i].After(now) })
	return hi - lo
}

// identityKey deduplicates identity-stats trackers by configuration.
type identityKey struct {
	alpha  float64
	medium packet.Medium
}

// IdentityStats keeps per-transmitter smoothed RSSI fingerprints with
// first-seen times — the sybil module's evidence that a group of
// recently-appeared identities shares one physical position.
type IdentityStats struct {
	alpha  float64
	medium packet.Medium

	mu    sync.Mutex
	start time.Time
	ids   map[packet.NodeID]*identStat

	reg  *Trackers
	ikey identityKey
	refs int
}

// identStat is one identity's fingerprint state, held in a single map
// so the per-packet update costs one hash lookup.
type identStat struct {
	ewma      float64
	frames    int
	firstSeen time.Time
}

// NewIdentityStats creates a standalone identity tracker.
func NewIdentityStats(alpha float64, medium packet.Medium) *IdentityStats {
	return &IdentityStats{
		alpha:  alpha,
		medium: medium,
		ids:    make(map[packet.NodeID]*identStat),
	}
}

// IdentityStats acquires the table's shared identity tracker for the
// given EWMA smoothing factor and medium.
func (t *Table) IdentityStats(alpha float64, medium packet.Medium) *IdentityStats {
	return t.trk.IdentityStats(alpha, medium)
}

// Release returns the handle (see VictimWindow.Release).
func (s *IdentityStats) Release() {
	if s.reg == nil {
		return
	}
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	s.refs--
	if s.refs <= 0 {
		delete(r.identities, s.ikey)
		r.dropLocked(s)
	}
}

// Observe implements Tracker.
func (s *IdentityStats) Observe(c *packet.Captured) {
	if c.Medium != s.medium || c.Transmitter == "" {
		return
	}
	s.mu.Lock()
	if s.start.IsZero() {
		s.start = c.Time
	}
	st := s.ids[c.Transmitter]
	if st == nil {
		//lint:ignore hotalloc one allocation per newly observed identity, amortized across its frames
		s.ids[c.Transmitter] = &identStat{ewma: c.RSSI, frames: 1, firstSeen: c.Time}
	} else {
		st.ewma += s.alpha * (c.RSSI - st.ewma)
		st.frames++
	}
	s.mu.Unlock()
}

// Cluster collects the recently-appeared identities (first seen more
// than warmup after the tracker's first packet, with at least minFrames
// frames) whose fingerprints lie within tol dB of the given identity's
// fingerprint. It returns nil when the center identity itself does not
// qualify.
func (s *IdentityStats) Cluster(id packet.NodeID, tol float64, minFrames int, warmup time.Duration) []packet.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	center := s.ids[id]
	if center == nil || !s.isNewLocked(center, warmup) || center.frames < minFrames {
		return nil
	}
	var cluster []packet.NodeID
	for other, st := range s.ids {
		if !s.isNewLocked(st, warmup) || st.frames < minFrames {
			continue
		}
		if math.Abs(st.ewma-center.ewma) <= tol {
			//lint:ignore hotalloc the cluster materializes only when tolerance-close new identities exist — the Sybil-suspicion case, not the steady state
			cluster = append(cluster, other)
		}
	}
	sort.Slice(cluster, func(i, j int) bool { return cluster[i] < cluster[j] })
	return cluster
}

// isNewLocked reports whether the identity appeared after the warmup
// period (pre-existing identities are legitimate even if co-located).
func (s *IdentityStats) isNewLocked(st *identStat, warmup time.Duration) bool {
	return st.firstSeen.Sub(s.start) > warmup
}

// MotionConfig tunes an IdentityMotion tracker (and is its dedup key).
type MotionConfig struct {
	// Medium restricts observation to one capture medium.
	Medium packet.Medium
	// Threshold is the RSSI jump threshold in dB.
	Threshold float64
	// Window prunes jump/flip/wobble evidence.
	Window time.Duration
	// Alpha is the RSSI EWMA smoothing factor.
	Alpha float64
	// MinSamples is the per-identity sample count before deviations
	// count as evidence.
	MinSamples int
}

// motionTrack is per-identity motion state.
type motionTrack struct {
	ewma    float64
	samples int
	lastSeq uint8
	seqInit bool
	jumps   []time.Time // RSSI jump timestamps (window-pruned)
	flips   []time.Time // seq regression timestamps (window-pruned)
	wobbles []time.Time // sub-jump RSSI deviations (baseline health)
}

// IdentityMotion tracks per-transmitter RSSI jumps and sequence-counter
// conflicts — the replication modules' evidence that one identity is
// transmitted from two places (static networks) or originated by two
// devices at once (mobile networks).
type IdentityMotion struct {
	cfg MotionConfig

	mu     sync.Mutex
	tracks map[packet.NodeID]*motionTrack

	reg  *Trackers
	refs int
}

// MotionSnapshot is the race-safe read of one identity's current
// evidence.
type MotionSnapshot struct {
	// Jumps and Flips count the in-window RSSI jumps and sequence
	// regressions.
	Jumps, Flips int
	// LastJump and LastFlip timestamp the most recent evidence (zero
	// when none) — detectors alert only when the triggering packet
	// itself is fresh evidence.
	LastJump, LastFlip time.Time
}

// NewIdentityMotion creates a standalone motion tracker.
func NewIdentityMotion(cfg MotionConfig) *IdentityMotion {
	return &IdentityMotion{cfg: cfg, tracks: make(map[packet.NodeID]*motionTrack)}
}

// Motion acquires the table's shared motion tracker for the given
// configuration (the static and mobile replication modules share one
// tracker when configured alike, so the state updates once per packet).
func (t *Table) Motion(cfg MotionConfig) *IdentityMotion {
	return t.trk.Motion(cfg)
}

// Release returns the handle (see VictimWindow.Release).
func (m *IdentityMotion) Release() {
	if m.reg == nil {
		return
	}
	r := m.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	m.refs--
	if m.refs <= 0 {
		delete(r.motions, m.cfg)
		r.dropLocked(m)
	}
}

// Observe implements Tracker.
func (m *IdentityMotion) Observe(c *packet.Captured) {
	if c.Medium != m.cfg.Medium || c.Transmitter == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := c.Transmitter
	t := m.tracks[id]
	if t == nil {
		//lint:ignore hotalloc one allocation per newly tracked identity, amortized across its frames
		t = &motionTrack{ewma: c.RSSI, samples: 1}
		m.tracks[id] = t
		if seq, _, ok := seqInfo(c); ok {
			t.lastSeq = seq
			t.seqInit = true
		}
		return
	}
	t.samples++
	dev := math.Abs(c.RSSI - t.ewma)
	if t.samples > m.cfg.MinSamples && dev > m.cfg.Threshold {
		t.jumps = append(t.jumps, c.Time)
		// Re-anchor on the new position so alternation keeps counting.
		t.ewma = c.RSSI
	} else {
		if t.samples > m.cfg.MinSamples && dev > m.cfg.Threshold/2 {
			// Sub-jump deviation: not replica-grade, but evidence the
			// RSSI baseline is in motion.
			t.wobbles = append(t.wobbles, c.Time)
		}
		t.ewma += m.cfg.Alpha * (c.RSSI - t.ewma)
	}
	if seq, trusted, ok := seqInfo(c); ok && trusted {
		if t.seqInit {
			// A regression (non-monotonic, not a wraparound) means two
			// counters are interleaved under one identity.
			diff := int8(seq - t.lastSeq)
			if diff <= 0 && seq != t.lastSeq {
				t.flips = append(t.flips, c.Time)
			}
		}
		t.lastSeq = seq
		t.seqInit = true
	}
	if len(t.jumps) > 0 {
		t.jumps = pruneTimes(t.jumps, c.Time, m.cfg.Window)
	}
	if len(t.flips) > 0 {
		t.flips = pruneTimes(t.flips, c.Time, m.cfg.Window)
	}
	if len(t.wobbles) > 0 {
		t.wobbles = pruneTimes(t.wobbles, c.Time, m.cfg.Window)
	}
}

// Snapshot returns the identity's current evidence (zero value when the
// identity is unknown).
func (m *IdentityMotion) Snapshot(id packet.NodeID) MotionSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tracks[id]
	if t == nil {
		return MotionSnapshot{}
	}
	s := MotionSnapshot{Jumps: len(t.jumps), Flips: len(t.flips)}
	if s.Jumps > 0 {
		s.LastJump = t.jumps[s.Jumps-1]
	}
	if s.Flips > 0 {
		s.LastFlip = t.flips[s.Flips-1]
	}
	return s
}

// JumpyFraction reports the fraction of identities whose RSSI baseline
// is currently unstable (jumps or sub-jump wobbles) — the baseline-
// health veto of the static replication technique: when the whole
// network is in motion, RSSI stability means nothing.
func (m *IdentityMotion) JumpyFraction() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.tracks) == 0 {
		return 0
	}
	jumpy := 0
	for _, t := range m.tracks {
		if len(t.jumps) > 0 || len(t.wobbles) > 0 {
			jumpy++
		}
	}
	return float64(jumpy) / float64(len(m.tracks))
}

func pruneTimes(ts []time.Time, now time.Time, window time.Duration) []time.Time {
	cut := 0
	for cut < len(ts) && now.Sub(ts[cut]) > window {
		cut++
	}
	return ts[cut:]
}

// seqInfo extracts the most end-to-end sequence counter the capture
// carries — CTP data sequence numbers, then ZigBee NWK sequence
// numbers, then the per-hop 802.15.4 MAC sequence (all keyed by
// transmitter identity, so per-hop counters are still per-identity
// monotonic) — in a single pass over the layer stack. trusted reports
// whether the counter belongs to the transmitter identity itself:
// forwarded frames carry the *origin's* counter, which legitimately
// interleaves several counters under one relaying transmitter — those
// must not count as flips.
func seqInfo(c *packet.Captured) (seq uint8, trusted, ok bool) {
	if d, ok := c.Layer("ctp-data").(*ctp.Data); ok {
		return d.SeqNo, c.Src == c.Transmitter, true
	}
	if n, ok := c.Layer("zigbee").(*zigbee.Frame); ok {
		return n.Seq, stack.ShortID(n.Src) == c.Transmitter, true
	}
	if f, ok := c.Layer("ieee802154").(*ieee802154.Frame); ok {
		return f.Seq, true, true
	}
	return 0, false, false
}
