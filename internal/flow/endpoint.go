package flow

import (
	"math"
	"sort"
	"sync"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/tcp"
	"kalis/internal/proto/zigbee"
)

// This file holds the endpoint-level aggregate trackers: flow state
// keyed by victim, initiator or transmitter identity rather than by
// 5-tuple, serving the detection modules their traffic statistics in
// O(1) per packet. Trackers are acquired from a Table (deduplicated by
// configuration and reference-counted, so e.g. the ICMP-flood and Smurf
// modules share one victim window and the table updates it once per
// packet), or created standalone for direct-construction unit tests.
// All pruning runs on capture timestamps (simclock discipline).

// KindMask is a bitmask over packet.Kind values (the kind space is
// small and stable; see packet.Kind).
type KindMask uint64

// MaskOf builds a mask matching the given kinds.
func MaskOf(kinds ...packet.Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// Has reports whether the mask matches the kind.
func (m KindMask) Has(k packet.Kind) bool { return m&(1<<uint(k)) != 0 }

// Event is one observation in a victim window.
type Event struct {
	At   time.Time
	RSSI float64
	Src  packet.NodeID
}

// victimKey deduplicates victim windows by configuration.
type victimKey struct {
	mask   KindMask
	window time.Duration
}

// VictimWindow keeps, per destination, the sliding window of matching
// packets — the rate evidence behind the flood detectors. Pruning
// happens on insert, so the per-packet cost is amortized O(1) and
// independent of the window length.
type VictimWindow struct {
	mask   KindMask
	window time.Duration

	mu    sync.Mutex
	byDst map[packet.NodeID][]Event

	table *Table
	vkey  victimKey
	refs  int
}

// NewVictimWindow creates a standalone victim window (not attached to a
// table); the owner calls Observe itself.
func NewVictimWindow(mask KindMask, window time.Duration) *VictimWindow {
	return &VictimWindow{mask: mask, window: window, byDst: make(map[packet.NodeID][]Event)}
}

// VictimWindow acquires the table's shared victim window for the given
// kind mask and window, creating it on first use. Release the handle
// when done (module Deactivate).
func (t *Table) VictimWindow(mask KindMask, window time.Duration) *VictimWindow {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := victimKey{mask: mask, window: window}
	w := t.victims[k]
	if w == nil {
		w = NewVictimWindow(mask, window)
		w.table, w.vkey = t, k
		t.victims[k] = w
		t.addTrackerLocked(w)
	}
	w.refs++
	return w
}

// Release returns the handle; the last release detaches the tracker
// from its table (standalone windows ignore Release).
func (w *VictimWindow) Release() {
	if w.table == nil {
		return
	}
	t := w.table
	t.mu.Lock()
	defer t.mu.Unlock()
	w.refs--
	if w.refs <= 0 {
		delete(t.victims, w.vkey)
		t.dropTrackerLocked(w)
	}
}

// Observe implements Tracker.
func (w *VictimWindow) Observe(c *packet.Captured) {
	if !w.mask.Has(c.Kind) {
		return
	}
	w.mu.Lock()
	evs := append(w.byDst[c.Dst], Event{At: c.Time, RSSI: c.RSSI, Src: c.Src})
	cut := 0
	for cut < len(evs) && c.Time.Sub(evs[cut].At) > w.window {
		cut++
	}
	evs = evs[cut:]
	w.byDst[c.Dst] = evs
	w.mu.Unlock()
}

// Len returns the current window size for a destination without
// copying — the cheap threshold probe.
func (w *VictimWindow) Len(dst packet.NodeID) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.byDst[dst])
}

// Events returns a copy of the destination's current window (called on
// the cold, threshold-crossed branch only).
func (w *VictimWindow) Events(dst packet.NodeID) []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	evs := w.byDst[dst]
	out := make([]Event, len(evs))
	copy(out, evs)
	return out
}

// TCPHandshakes tracks open TCP handshakes per initiator→responder pair
// and handshake-completing pure ACKs per responder — the evidence that
// separates a legitimate connection burst from a spoofed SYN flood.
type TCPHandshakes struct {
	window time.Duration

	mu      sync.Mutex
	pending map[hsKey]bool
	comps   map[packet.NodeID][]time.Time

	table *Table
	refs  int
}

// hsKey identifies a half-open handshake by its endpoint pair. A
// struct key keeps the per-SYN map update allocation-free; the string
// concatenation it replaces showed up directly in the per-packet
// profile (hotalloc).
type hsKey struct {
	src, dst packet.NodeID
}

// NewTCPHandshakes creates a standalone handshake tracker.
func NewTCPHandshakes(window time.Duration) *TCPHandshakes {
	return &TCPHandshakes{
		window:  window,
		pending: make(map[hsKey]bool),
		comps:   make(map[packet.NodeID][]time.Time),
	}
}

// Handshakes acquires the table's shared handshake tracker for the
// given completion window.
func (t *Table) Handshakes(window time.Duration) *TCPHandshakes {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.handshakes[window]
	if h == nil {
		h = NewTCPHandshakes(window)
		h.table = t
		t.handshakes[window] = h
		t.addTrackerLocked(h)
	}
	h.refs++
	return h
}

// Release returns the handle (see VictimWindow.Release).
func (h *TCPHandshakes) Release() {
	if h.table == nil {
		return
	}
	t := h.table
	t.mu.Lock()
	defer t.mu.Unlock()
	h.refs--
	if h.refs <= 0 {
		delete(t.handshakes, h.window)
		t.dropTrackerLocked(h)
	}
}

// Observe implements Tracker.
func (h *TCPHandshakes) Observe(c *packet.Captured) {
	switch c.Kind {
	case packet.KindTCPSYN:
		h.mu.Lock()
		h.pending[hsKey{src: c.Src, dst: c.Dst}] = true
		h.mu.Unlock()
	case packet.KindTCPACK:
		// A pure ACK from an initiator with an open handshake is the
		// handshake-completing third packet — legitimate bursts produce
		// these, spoofed floods cannot.
		seg, ok := c.Layer("tcp").(*tcp.Segment)
		if !ok || !seg.IsACK() || len(seg.Payload) != 0 {
			return
		}
		key := hsKey{src: c.Src, dst: c.Dst}
		h.mu.Lock()
		if h.pending[key] {
			delete(h.pending, key)
			h.comps[c.Dst] = append(h.comps[c.Dst], c.Time)
		}
		h.mu.Unlock()
	}
}

// Completions returns how many handshakes completed towards dst within
// the window ending at now (pruning as it counts).
func (h *TCPHandshakes) Completions(dst packet.NodeID, now time.Time) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	comps := h.comps[dst]
	cut := 0
	for cut < len(comps) && now.Sub(comps[cut]) > h.window {
		cut++
	}
	comps = comps[cut:]
	h.comps[dst] = comps
	return len(comps)
}

// identityKey deduplicates identity-stats trackers by configuration.
type identityKey struct {
	alpha  float64
	medium packet.Medium
}

// IdentityStats keeps per-transmitter smoothed RSSI fingerprints with
// first-seen times — the sybil module's evidence that a group of
// recently-appeared identities shares one physical position.
type IdentityStats struct {
	alpha  float64
	medium packet.Medium

	mu    sync.Mutex
	start time.Time
	ids   map[packet.NodeID]*identStat

	table *Table
	ikey  identityKey
	refs  int
}

// identStat is one identity's fingerprint state, held in a single map
// so the per-packet update costs one hash lookup.
type identStat struct {
	ewma      float64
	frames    int
	firstSeen time.Time
}

// NewIdentityStats creates a standalone identity tracker.
func NewIdentityStats(alpha float64, medium packet.Medium) *IdentityStats {
	return &IdentityStats{
		alpha:  alpha,
		medium: medium,
		ids:    make(map[packet.NodeID]*identStat),
	}
}

// IdentityStats acquires the table's shared identity tracker for the
// given EWMA smoothing factor and medium.
func (t *Table) IdentityStats(alpha float64, medium packet.Medium) *IdentityStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := identityKey{alpha: alpha, medium: medium}
	s := t.identities[k]
	if s == nil {
		s = NewIdentityStats(alpha, medium)
		s.table, s.ikey = t, k
		t.identities[k] = s
		t.addTrackerLocked(s)
	}
	s.refs++
	return s
}

// Release returns the handle (see VictimWindow.Release).
func (s *IdentityStats) Release() {
	if s.table == nil {
		return
	}
	t := s.table
	t.mu.Lock()
	defer t.mu.Unlock()
	s.refs--
	if s.refs <= 0 {
		delete(t.identities, s.ikey)
		t.dropTrackerLocked(s)
	}
}

// Observe implements Tracker.
func (s *IdentityStats) Observe(c *packet.Captured) {
	if c.Medium != s.medium || c.Transmitter == "" {
		return
	}
	s.mu.Lock()
	if s.start.IsZero() {
		s.start = c.Time
	}
	st := s.ids[c.Transmitter]
	if st == nil {
		//lint:ignore hotalloc one allocation per newly observed identity, amortized across its frames
		s.ids[c.Transmitter] = &identStat{ewma: c.RSSI, frames: 1, firstSeen: c.Time}
	} else {
		st.ewma += s.alpha * (c.RSSI - st.ewma)
		st.frames++
	}
	s.mu.Unlock()
}

// Cluster collects the recently-appeared identities (first seen more
// than warmup after the tracker's first packet, with at least minFrames
// frames) whose fingerprints lie within tol dB of the given identity's
// fingerprint. It returns nil when the center identity itself does not
// qualify.
func (s *IdentityStats) Cluster(id packet.NodeID, tol float64, minFrames int, warmup time.Duration) []packet.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	center := s.ids[id]
	if center == nil || !s.isNewLocked(center, warmup) || center.frames < minFrames {
		return nil
	}
	var cluster []packet.NodeID
	for other, st := range s.ids {
		if !s.isNewLocked(st, warmup) || st.frames < minFrames {
			continue
		}
		if math.Abs(st.ewma-center.ewma) <= tol {
			//lint:ignore hotalloc the cluster materializes only when tolerance-close new identities exist — the Sybil-suspicion case, not the steady state
			cluster = append(cluster, other)
		}
	}
	sort.Slice(cluster, func(i, j int) bool { return cluster[i] < cluster[j] })
	return cluster
}

// isNewLocked reports whether the identity appeared after the warmup
// period (pre-existing identities are legitimate even if co-located).
func (s *IdentityStats) isNewLocked(st *identStat, warmup time.Duration) bool {
	return st.firstSeen.Sub(s.start) > warmup
}

// MotionConfig tunes an IdentityMotion tracker (and is its dedup key).
type MotionConfig struct {
	// Medium restricts observation to one capture medium.
	Medium packet.Medium
	// Threshold is the RSSI jump threshold in dB.
	Threshold float64
	// Window prunes jump/flip/wobble evidence.
	Window time.Duration
	// Alpha is the RSSI EWMA smoothing factor.
	Alpha float64
	// MinSamples is the per-identity sample count before deviations
	// count as evidence.
	MinSamples int
}

// motionTrack is per-identity motion state.
type motionTrack struct {
	ewma    float64
	samples int
	lastSeq uint8
	seqInit bool
	jumps   []time.Time // RSSI jump timestamps (window-pruned)
	flips   []time.Time // seq regression timestamps (window-pruned)
	wobbles []time.Time // sub-jump RSSI deviations (baseline health)
}

// IdentityMotion tracks per-transmitter RSSI jumps and sequence-counter
// conflicts — the replication modules' evidence that one identity is
// transmitted from two places (static networks) or originated by two
// devices at once (mobile networks).
type IdentityMotion struct {
	cfg MotionConfig

	mu     sync.Mutex
	tracks map[packet.NodeID]*motionTrack

	table *Table
	refs  int
}

// MotionSnapshot is the race-safe read of one identity's current
// evidence.
type MotionSnapshot struct {
	// Jumps and Flips count the in-window RSSI jumps and sequence
	// regressions.
	Jumps, Flips int
	// LastJump and LastFlip timestamp the most recent evidence (zero
	// when none) — detectors alert only when the triggering packet
	// itself is fresh evidence.
	LastJump, LastFlip time.Time
}

// NewIdentityMotion creates a standalone motion tracker.
func NewIdentityMotion(cfg MotionConfig) *IdentityMotion {
	return &IdentityMotion{cfg: cfg, tracks: make(map[packet.NodeID]*motionTrack)}
}

// Motion acquires the table's shared motion tracker for the given
// configuration (the static and mobile replication modules share one
// tracker when configured alike, so the state updates once per packet).
func (t *Table) Motion(cfg MotionConfig) *IdentityMotion {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.motions[cfg]
	if m == nil {
		m = NewIdentityMotion(cfg)
		m.table = t
		t.motions[cfg] = m
		t.addTrackerLocked(m)
	}
	m.refs++
	return m
}

// Release returns the handle (see VictimWindow.Release).
func (m *IdentityMotion) Release() {
	if m.table == nil {
		return
	}
	t := m.table
	t.mu.Lock()
	defer t.mu.Unlock()
	m.refs--
	if m.refs <= 0 {
		delete(t.motions, m.cfg)
		t.dropTrackerLocked(m)
	}
}

// Observe implements Tracker.
func (m *IdentityMotion) Observe(c *packet.Captured) {
	if c.Medium != m.cfg.Medium || c.Transmitter == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := c.Transmitter
	t := m.tracks[id]
	if t == nil {
		//lint:ignore hotalloc one allocation per newly tracked identity, amortized across its frames
		t = &motionTrack{ewma: c.RSSI, samples: 1}
		m.tracks[id] = t
		if seq, _, ok := seqInfo(c); ok {
			t.lastSeq = seq
			t.seqInit = true
		}
		return
	}
	t.samples++
	dev := math.Abs(c.RSSI - t.ewma)
	if t.samples > m.cfg.MinSamples && dev > m.cfg.Threshold {
		t.jumps = append(t.jumps, c.Time)
		// Re-anchor on the new position so alternation keeps counting.
		t.ewma = c.RSSI
	} else {
		if t.samples > m.cfg.MinSamples && dev > m.cfg.Threshold/2 {
			// Sub-jump deviation: not replica-grade, but evidence the
			// RSSI baseline is in motion.
			t.wobbles = append(t.wobbles, c.Time)
		}
		t.ewma += m.cfg.Alpha * (c.RSSI - t.ewma)
	}
	if seq, trusted, ok := seqInfo(c); ok && trusted {
		if t.seqInit {
			// A regression (non-monotonic, not a wraparound) means two
			// counters are interleaved under one identity.
			diff := int8(seq - t.lastSeq)
			if diff <= 0 && seq != t.lastSeq {
				t.flips = append(t.flips, c.Time)
			}
		}
		t.lastSeq = seq
		t.seqInit = true
	}
	if len(t.jumps) > 0 {
		t.jumps = pruneTimes(t.jumps, c.Time, m.cfg.Window)
	}
	if len(t.flips) > 0 {
		t.flips = pruneTimes(t.flips, c.Time, m.cfg.Window)
	}
	if len(t.wobbles) > 0 {
		t.wobbles = pruneTimes(t.wobbles, c.Time, m.cfg.Window)
	}
}

// Snapshot returns the identity's current evidence (zero value when the
// identity is unknown).
func (m *IdentityMotion) Snapshot(id packet.NodeID) MotionSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tracks[id]
	if t == nil {
		return MotionSnapshot{}
	}
	s := MotionSnapshot{Jumps: len(t.jumps), Flips: len(t.flips)}
	if s.Jumps > 0 {
		s.LastJump = t.jumps[s.Jumps-1]
	}
	if s.Flips > 0 {
		s.LastFlip = t.flips[s.Flips-1]
	}
	return s
}

// JumpyFraction reports the fraction of identities whose RSSI baseline
// is currently unstable (jumps or sub-jump wobbles) — the baseline-
// health veto of the static replication technique: when the whole
// network is in motion, RSSI stability means nothing.
func (m *IdentityMotion) JumpyFraction() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.tracks) == 0 {
		return 0
	}
	jumpy := 0
	for _, t := range m.tracks {
		if len(t.jumps) > 0 || len(t.wobbles) > 0 {
			jumpy++
		}
	}
	return float64(jumpy) / float64(len(m.tracks))
}

func pruneTimes(ts []time.Time, now time.Time, window time.Duration) []time.Time {
	cut := 0
	for cut < len(ts) && now.Sub(ts[cut]) > window {
		cut++
	}
	return ts[cut:]
}

// seqInfo extracts the most end-to-end sequence counter the capture
// carries — CTP data sequence numbers, then ZigBee NWK sequence
// numbers, then the per-hop 802.15.4 MAC sequence (all keyed by
// transmitter identity, so per-hop counters are still per-identity
// monotonic) — in a single pass over the layer stack. trusted reports
// whether the counter belongs to the transmitter identity itself:
// forwarded frames carry the *origin's* counter, which legitimately
// interleaves several counters under one relaying transmitter — those
// must not count as flips.
func seqInfo(c *packet.Captured) (seq uint8, trusted, ok bool) {
	if d, ok := c.Layer("ctp-data").(*ctp.Data); ok {
		return d.SeqNo, c.Src == c.Transmitter, true
	}
	if n, ok := c.Layer("zigbee").(*zigbee.Frame); ok {
		return n.Seq, stack.ShortID(n.Src) == c.Transmitter, true
	}
	if f, ok := c.Layer("ieee802154").(*ieee802154.Frame); ok {
		return f.Seq, true, true
	}
	return 0, false, false
}
