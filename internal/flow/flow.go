// Package flow is Kalis' flow-centric feature pipeline: a bounded flow
// table keyed by 5-tuple + medium whose per-flow features are small
// state machines updated once per packet (in the spirit of CN-TU's
// go-flows), plus endpoint-level aggregate trackers that serve the
// detection modules their traffic statistics in O(1) per packet.
//
// The table lives on the virtual capture clock: every timeout (idle,
// active) and every window prune takes its notion of "now" from packet
// timestamps, never from time.Now, so simulated scenarios exercise the
// full flow lifecycle deterministically (the simclock discipline).
//
// Expired, evicted and flushed flows are exported as Records through
// OnExport callbacks; the core wires these onto the "flow.records" bus
// topic with a CoalesceByKey overflow policy.
package flow

import (
	"strconv"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/tcp"
	"kalis/internal/proto/udp"
)

// Proto is the coarse transport/protocol class of a flow key. It folds
// the packet-kind taxonomy into the handful of classes that make two
// packets belong to "the same conversation".
type Proto uint8

// Flow protocol classes.
const (
	ProtoOther Proto = iota
	ProtoTCP
	ProtoUDP
	ProtoICMP
	ProtoCTP
	ProtoZigbee
	ProtoBLE
)

// String returns the protocol-class name.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	case ProtoCTP:
		return "ctp"
	case ProtoZigbee:
		return "zigbee"
	case ProtoBLE:
		return "ble"
	default:
		return "other"
	}
}

// Key identifies one unidirectional flow: medium + link endpoints +
// protocol class + transport ports (zero when the protocol has none).
// Key is comparable and is used directly as the table's map key.
type Key struct {
	Medium           packet.Medium
	Src, Dst         packet.NodeID
	Proto            Proto
	SrcPort, DstPort uint16
}

// KeyOf classifies a capture into its flow key.
func KeyOf(c *packet.Captured) Key {
	k := Key{Medium: c.Medium, Src: c.Src, Dst: c.Dst}
	switch c.Kind {
	case packet.KindTCPSYN, packet.KindTCPACK, packet.KindTCPOther:
		k.Proto = ProtoTCP
		if seg, ok := c.Layer("tcp").(*tcp.Segment); ok {
			k.SrcPort, k.DstPort = seg.SrcPort, seg.DstPort
		}
	case packet.KindUDP:
		k.Proto = ProtoUDP
		if d, ok := c.Layer("udp").(*udp.Datagram); ok {
			k.SrcPort, k.DstPort = d.SrcPort, d.DstPort
		}
	case packet.KindICMPEchoRequest, packet.KindICMPEchoReply, packet.KindICMPOther:
		k.Proto = ProtoICMP
	case packet.KindCTPData, packet.KindCTPBeacon:
		k.Proto = ProtoCTP
	case packet.KindZigbeeData, packet.KindZigbeeRouting:
		k.Proto = ProtoZigbee
	case packet.KindBLEAdvertising, packet.KindBLEData:
		k.Proto = ProtoBLE
	}
	return k
}

// String renders the key in a stable, human-readable form — used as the
// coalescing key of flow.records events and in flow-record dumps. It is
// called on the export path only (cold), never per packet.
func (k Key) String() string {
	s := k.Medium.String() + "/" + k.Proto.String() + "/" + string(k.Src)
	if k.SrcPort != 0 {
		s += ":" + strconv.FormatUint(uint64(k.SrcPort), 10)
	}
	s += ">" + string(k.Dst)
	if k.DstPort != 0 {
		s += ":" + strconv.FormatUint(uint64(k.DstPort), 10)
	}
	return s
}

// Flow is the live state of one flow in the table. Fields are owned by
// the table; features read them through the update contract below.
type Flow struct {
	// Key is the flow's identity.
	Key Key
	// First and Last are the capture timestamps of the first and most
	// recent packet. During a feature State.Update call, Last still
	// holds the PREVIOUS packet's timestamp (so inter-arrival features
	// can difference against it); the table advances it afterwards.
	First, Last time.Time
	// Packets and Bytes count the flow's traffic. Like Last, they are
	// pre-update values while features run (Packets == 0 on the flow's
	// first packet).
	Packets, Bytes uint64

	// feats holds one State per configured feature, index-aligned with
	// the table's feature names.
	feats []State

	// Intrusive LRU list links (head = most recently touched).
	prev, next *Flow
}

// ExpiryReason says why a flow left the table.
type ExpiryReason int

// Expiry reasons.
const (
	// ReasonIdle flows saw no packet for the idle timeout.
	ReasonIdle ExpiryReason = iota
	// ReasonActive flows exceeded the active timeout (long-lived flows
	// are exported in slices so records stay fresh).
	ReasonActive
	// ReasonEvicted flows were the least recently used when the table
	// hit its capacity bound.
	ReasonEvicted
	// ReasonShutdown flows were flushed when the node closed.
	ReasonShutdown
)

// String returns the reason name.
func (r ExpiryReason) String() string {
	switch r {
	case ReasonIdle:
		return "idle"
	case ReasonActive:
		return "active"
	case ReasonEvicted:
		return "evicted"
	case ReasonShutdown:
		return "shutdown"
	default:
		return "unknown"
	}
}

// Record is an exported (expired/terminated) flow: the immutable
// summary published on the flow.records topic.
type Record struct {
	// Key is the flow's identity.
	Key Key
	// First and Last bound the flow's lifetime in capture time.
	First, Last time.Time
	// Packets and Bytes are the final traffic counters.
	Packets, Bytes uint64
	// Reason says why the flow was exported.
	Reason ExpiryReason
	// Features are the final feature emissions, in the table's
	// configured feature order.
	Features []Value
}

// CoalesceKey is the per-flow coalescing key for the flow.records bus
// topic: under queue pressure, a newer record of the same flow replaces
// the queued one.
func (r Record) CoalesceKey() string { return r.Key.String() }
