package snortlike

import (
	"fmt"
	"strings"
)

// CustomRules are the scenario rules the evaluation adds, mirroring the
// paper's "custom rules along with the default community ruleset".
// Snort-style signatures can describe the flood *symptom* but have no
// way to tell an ICMP flood from a Smurf — both look like a burst of
// echo replies to one host — so both scenarios trip the same SID.
const CustomRules = `
# Custom IoT-scenario rules.
alert icmp any any -> any any (msg:"ICMP flood (echo reply burst)"; itype:0; threshold:type both, track by_dst, count 25, seconds 5; classtype:attempted-dos; sid:1000001; rev:1;)
alert icmp any any -> any any (msg:"ICMP echo sweep"; itype:8; threshold:type both, track by_src, count 30, seconds 5; classtype:attempted-recon; sid:1000002; rev:1;)
alert tcp any any -> any any (msg:"TCP SYN flood"; flags:S; threshold:type both, track by_dst, count 25, seconds 5; classtype:attempted-dos; sid:1000003; rev:1;)
alert icmp any any -> any any (msg:"Smurf amplification suspected"; itype:0; threshold:type both, track by_dst, count 25, seconds 5; classtype:attempted-dos; sid:1000004; rev:1;)
`

// SIDs of the custom scenario rules. Note that SIDICMPFlood and
// SIDSmurf key on the *same* symptom: signatures cannot tell a flood
// from a Smurf ("Snort ... is not able to distinguish between the
// Smurf and ICMP Flood attacks", §VI-B1), so both fire together and
// the classification is a coin toss.
const (
	SIDICMPFlood = 1000001
	SIDEchoSweep = 1000002
	SIDSYNFlood  = 1000003
	SIDSmurf     = 1000004
)

// CommunityRules returns a synthetic stand-in for the Snort community
// ruleset: n generated signature rules of the kinds that dominate the
// real list (payload content matches on service ports, recon probes,
// malware callbacks). They exercise the engine exactly like real
// community rules do — every IP packet is evaluated against each —
// and, like them, they rarely fire on IoT traffic. The default size
// (kept modest for test speed) can be raised to measure ruleset-size
// scaling.
func CommunityRules(n int) string {
	services := []struct {
		port  int
		proto string
	}{
		{80, "tcp"}, {443, "tcp"}, {21, "tcp"}, {22, "tcp"}, {23, "tcp"},
		{25, "tcp"}, {53, "udp"}, {110, "tcp"}, {143, "tcp"}, {161, "udp"},
		{445, "tcp"}, {1433, "tcp"}, {3306, "tcp"}, {3389, "tcp"}, {5060, "udp"},
		{6667, "tcp"}, {8080, "tcp"}, {8443, "tcp"}, {502, "tcp"}, {1883, "tcp"},
	}
	classes := []string{
		"trojan-activity", "attempted-admin", "web-application-attack",
		"attempted-recon", "policy-violation", "misc-attack",
	}
	var sb strings.Builder
	sb.WriteString("# Synthetic community ruleset (generated).\n")
	for i := 0; i < n; i++ {
		svc := services[i%len(services)]
		class := classes[i%len(classes)]
		content := fmt.Sprintf("SIG-%04d-%s", i, class[:4])
		// A large share of the real community ruleset matches payload
		// content on any port/protocol — these rules cost a content
		// scan on every packet, which is exactly the per-packet
		// overhead the paper attributes to rule-list IDSes on IoT.
		if i%5 < 2 {
			fmt.Fprintf(&sb,
				"alert ip any any -> any any (msg:\"COMMUNITY %s payload %d\"; content:\"%s\"; content:\"%s-STAGE2\"; classtype:%s; sid:%d; rev:1;)\n",
				class, i, content, content, class, 2000000+i)
			continue
		}
		fmt.Fprintf(&sb,
			"alert %s any any -> any %d (msg:\"COMMUNITY %s probe %d\"; content:\"%s\"; classtype:%s; sid:%d; rev:1;)\n",
			svc.proto, svc.port, class, i, content, class, 2000000+i)
	}
	return sb.String()
}

// DefaultRuleset parses the custom rules plus a community ruleset of
// the given size.
func DefaultRuleset(communitySize int) ([]*Rule, error) {
	rules, err := ParseRules(CustomRules)
	if err != nil {
		return nil, err
	}
	community, err := ParseRules(CommunityRules(communitySize))
	if err != nil {
		return nil, err
	}
	return append(rules, community...), nil
}
