package snortlike

import (
	"bytes"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/tcp"
	"kalis/internal/proto/udp"
)

// Alert is one rule firing.
type Alert struct {
	Time     time.Time
	SID      int
	Msg      string
	Class    string
	Src, Dst packet.NodeID
}

// Engine evaluates a ruleset against captured traffic. Every IP packet
// is checked against every rule — the linear scan whose cost on small
// IoT networks the paper calls out ("running through a large rule list
// ... heavy overhead", §VII).
type Engine struct {
	rules  []*Rule
	alerts []Alert
	// thresholds maps (sid, trackKey) → event times in window.
	thresholds map[int]map[packet.NodeID][]time.Time

	// Packets and Evaluations count work: packets inspected and rule
	// evaluations performed.
	Packets     uint64
	Evaluations uint64
	// Invisible counts frames skipped because their medium carries no
	// IP traffic Snort can parse (802.15.4, Bluetooth).
	Invisible uint64
}

// NewEngine creates an engine over the given rules.
func NewEngine(rules []*Rule) *Engine {
	return &Engine{
		rules:      rules,
		thresholds: make(map[int]map[packet.NodeID][]time.Time),
	}
}

// RuleCount returns the number of loaded rules.
func (e *Engine) RuleCount() int { return len(e.rules) }

// Alerts returns all alerts so far.
func (e *Engine) Alerts() []Alert {
	out := make([]Alert, len(e.alerts))
	copy(out, e.alerts)
	return out
}

// HandleCapture inspects one captured frame.
func (e *Engine) HandleCapture(c *packet.Captured) {
	if c.Medium != packet.MediumWiFi && c.Medium != packet.MediumWired {
		e.Invisible++
		return
	}
	if c.Layer("ipv4") == nil {
		return // management frames etc.
	}
	e.Packets++
	for _, r := range e.rules {
		e.Evaluations++
		if r.Action != ActionAlert {
			continue
		}
		if !e.match(r, c) {
			continue
		}
		if r.Threshold != nil && !e.thresholdPass(r, c) {
			continue
		}
		e.alerts = append(e.alerts, Alert{
			Time:  c.Time,
			SID:   r.SID,
			Msg:   r.Msg,
			Class: r.Class,
			Src:   c.Src,
			Dst:   c.Dst,
		})
	}
}

func (e *Engine) match(r *Rule, c *packet.Captured) bool {
	var srcPort, dstPort = -1, -1
	var payload []byte
	switch r.Proto {
	case ProtoICMP:
		m, ok := c.Layer("icmp").(*icmp.Message)
		if !ok {
			return false
		}
		if r.ITypeSet && int(m.Type) != r.IType {
			return false
		}
		if r.ICodeSet && int(m.Code) != r.ICode {
			return false
		}
		payload = m.Payload
	case ProtoTCP:
		seg, ok := c.Layer("tcp").(*tcp.Segment)
		if !ok {
			return false
		}
		if r.Flags != "" && tcp.FlagString(seg.Flags) != r.Flags {
			return false
		}
		srcPort, dstPort = int(seg.SrcPort), int(seg.DstPort)
		payload = seg.Payload
	case ProtoUDP:
		d, ok := c.Layer("udp").(*udp.Datagram)
		if !ok {
			return false
		}
		srcPort, dstPort = int(d.SrcPort), int(d.DstPort)
		payload = d.Payload
	case ProtoIP:
		payload = c.Payload
	}
	if r.SrcPort >= 0 && r.SrcPort != srcPort {
		return false
	}
	if r.DstPort >= 0 && r.DstPort != dstPort {
		return false
	}
	switch r.DsizeOp {
	case "<":
		if len(payload) >= r.Dsize {
			return false
		}
	case ">":
		if len(payload) <= r.Dsize {
			return false
		}
	case "=":
		if len(payload) != r.Dsize {
			return false
		}
	}
	for _, content := range r.Contents {
		if !bytes.Contains(payload, []byte(content)) {
			return false
		}
	}
	return true
}

// thresholdPass implements threshold:type both/threshold/limit
// semantics over the packet-timestamp clock.
func (e *Engine) thresholdPass(r *Rule, c *packet.Captured) bool {
	key := c.Dst
	if r.Threshold.Track == TrackBySrc {
		key = c.Src
	}
	byKey := e.thresholds[r.SID]
	if byKey == nil {
		byKey = make(map[packet.NodeID][]time.Time)
		e.thresholds[r.SID] = byKey
	}
	window := time.Duration(r.Threshold.Seconds) * time.Second
	evs := append(byKey[key], c.Time)
	cut := 0
	for cut < len(evs) && c.Time.Sub(evs[cut]) > window {
		cut++
	}
	evs = evs[cut:]
	byKey[key] = evs

	switch r.Threshold.Type {
	case "limit":
		// Alert on the first Count events per window.
		return len(evs) <= r.Threshold.Count
	case "threshold":
		// Alert on every Count-th event.
		return len(evs)%r.Threshold.Count == 0
	default: // "both": once per window after Count events
		if len(evs) == r.Threshold.Count {
			return true
		}
		return false
	}
}
