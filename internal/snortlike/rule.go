// Package snortlike implements the evaluation's general-purpose
// signature IDS baseline: a rule-driven network IDS speaking a faithful
// subset of the Snort rule language, loaded with a community-style
// ruleset plus custom rules for the evaluation scenarios (§VI-B: "we
// also compare Kalis with Snort, using custom rules along with the
// default community ruleset").
//
// Like the real tool in the paper's experiments, it understands only
// IP traffic: frames on IEEE 802.15.4 or Bluetooth mediums are
// invisible to it, which is why it scores zero on every ZigBee-based
// scenario.
package snortlike

import (
	"fmt"
	"strconv"
	"strings"
)

// Action is the rule action.
type Action int

// Rule actions (subset).
const (
	ActionAlert Action = iota + 1
	ActionLog
	ActionPass
)

// Proto is the rule protocol.
type Proto int

// Rule protocols.
const (
	ProtoIP Proto = iota + 1
	ProtoICMP
	ProtoTCP
	ProtoUDP
)

// TrackBy selects the threshold tracking key.
type TrackBy int

// Threshold tracking modes.
const (
	TrackBySrc TrackBy = iota + 1
	TrackByDst
)

// Threshold is the rule's rate-limiting/thresholding directive.
type Threshold struct {
	// Type is "threshold", "limit" or "both".
	Type    string
	Track   TrackBy
	Count   int
	Seconds int
}

// Rule is one parsed rule.
type Rule struct {
	Action   Action
	Proto    Proto
	SrcPort  int // -1 = any
	DstPort  int // -1 = any
	Msg      string
	SID      int
	Rev      int
	Class    string
	ITypeSet bool
	IType    int
	ICodeSet bool
	ICode    int
	// Flags is the required TCP flag set in Snort notation ("S",
	// "SA", ...); empty means no constraint.
	Flags string
	// Contents are payload substrings that must all be present.
	Contents []string
	// DsizeOp/Dsize constrain payload size: "", "<", ">", "=".
	DsizeOp string
	Dsize   int
	// Threshold is nil when the rule fires on every match.
	Threshold *Threshold
}

// ParseError reports a rule syntax error.
type ParseError struct {
	Rule string
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("snortlike: %s (in rule %q)", e.Msg, e.Rule)
}

// ParseRule parses one rule line.
func ParseRule(line string) (*Rule, error) {
	line = strings.TrimSpace(line)
	fail := func(msg string) (*Rule, error) { return nil, &ParseError{Rule: line, Msg: msg} }

	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return fail("missing option block")
	}
	header := strings.Fields(line[:open])
	if len(header) != 7 {
		return fail(fmt.Sprintf("header needs 7 fields, got %d", len(header)))
	}
	r := &Rule{SrcPort: -1, DstPort: -1, Rev: 1}
	switch header[0] {
	case "alert":
		r.Action = ActionAlert
	case "log":
		r.Action = ActionLog
	case "pass":
		r.Action = ActionPass
	default:
		return fail("unknown action " + header[0])
	}
	switch header[1] {
	case "ip":
		r.Proto = ProtoIP
	case "icmp":
		r.Proto = ProtoICMP
	case "tcp":
		r.Proto = ProtoTCP
	case "udp":
		r.Proto = ProtoUDP
	default:
		return fail("unknown protocol " + header[1])
	}
	if header[4] != "->" && header[4] != "<>" {
		return fail("bad direction " + header[4])
	}
	var err error
	if r.SrcPort, err = parsePort(header[3]); err != nil {
		return fail(err.Error())
	}
	if r.DstPort, err = parsePort(header[6]); err != nil {
		return fail(err.Error())
	}

	opts := strings.TrimSuffix(line[open+1:], ")")
	for _, opt := range splitOptions(opts) {
		key, val := opt, ""
		if i := strings.IndexByte(opt, ':'); i >= 0 {
			key, val = strings.TrimSpace(opt[:i]), strings.TrimSpace(opt[i+1:])
		}
		switch key {
		case "msg":
			r.Msg = unquote(val)
		case "sid":
			if r.SID, err = strconv.Atoi(val); err != nil {
				return fail("bad sid " + val)
			}
		case "rev":
			if r.Rev, err = strconv.Atoi(val); err != nil {
				return fail("bad rev " + val)
			}
		case "classtype":
			r.Class = val
		case "itype":
			if r.IType, err = strconv.Atoi(val); err != nil {
				return fail("bad itype " + val)
			}
			r.ITypeSet = true
		case "icode":
			if r.ICode, err = strconv.Atoi(val); err != nil {
				return fail("bad icode " + val)
			}
			r.ICodeSet = true
		case "flags":
			r.Flags = val
		case "content":
			r.Contents = append(r.Contents, unquote(val))
		case "dsize":
			op := "="
			rest := val
			if strings.HasPrefix(val, "<") || strings.HasPrefix(val, ">") {
				op, rest = val[:1], val[1:]
			}
			if r.Dsize, err = strconv.Atoi(strings.TrimSpace(rest)); err != nil {
				return fail("bad dsize " + val)
			}
			r.DsizeOp = op
		case "threshold":
			th, err := parseThreshold(val)
			if err != nil {
				return fail(err.Error())
			}
			r.Threshold = th
		case "":
			// empty option (trailing ';')
		default:
			// Unknown options are tolerated (as Snort does for
			// metadata-style options).
		}
	}
	if r.SID == 0 {
		return fail("missing sid")
	}
	return r, nil
}

func parsePort(s string) (int, error) {
	if s == "any" {
		return -1, nil
	}
	p, err := strconv.Atoi(s)
	if err != nil || p < 0 || p > 65535 {
		return 0, fmt.Errorf("bad port %q", s)
	}
	return p, nil
}

func parseThreshold(val string) (*Threshold, error) {
	th := &Threshold{}
	for _, part := range strings.Split(val, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad threshold part %q", part)
		}
		var err error
		switch fields[0] {
		case "type":
			th.Type = fields[1]
		case "track":
			switch fields[1] {
			case "by_src":
				th.Track = TrackBySrc
			case "by_dst":
				th.Track = TrackByDst
			default:
				return nil, fmt.Errorf("bad track %q", fields[1])
			}
		case "count":
			if th.Count, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("bad count %q", fields[1])
			}
		case "seconds":
			if th.Seconds, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("bad seconds %q", fields[1])
			}
		default:
			return nil, fmt.Errorf("unknown threshold key %q", fields[0])
		}
	}
	if th.Count <= 0 || th.Seconds <= 0 || th.Track == 0 {
		return nil, fmt.Errorf("incomplete threshold %q", val)
	}
	return th, nil
}

// splitOptions splits on ';' outside quotes.
func splitOptions(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ';':
			if !depth {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// ParseRules parses a whole ruleset, skipping blank lines and '#'
// comments. It fails on the first malformed rule.
func ParseRules(src string) ([]*Rule, error) {
	var rules []*Rule
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}
