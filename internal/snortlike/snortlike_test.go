package snortlike

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/tcp"
)

var t0 = time.Unix(1500000000, 0).UTC()

func TestParseRuleFull(t *testing.T) {
	r, err := ParseRule(`alert icmp any any -> any any (msg:"ICMP flood"; itype:0; threshold:type both, track by_dst, count 25, seconds 5; classtype:attempted-dos; sid:1000001; rev:2;)`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Action != ActionAlert || r.Proto != ProtoICMP || r.Msg != "ICMP flood" {
		t.Errorf("header: %+v", r)
	}
	if !r.ITypeSet || r.IType != 0 || r.SID != 1000001 || r.Rev != 2 || r.Class != "attempted-dos" {
		t.Errorf("options: %+v", r)
	}
	th := r.Threshold
	if th == nil || th.Type != "both" || th.Track != TrackByDst || th.Count != 25 || th.Seconds != 5 {
		t.Errorf("threshold: %+v", th)
	}
}

func TestParseRulePortsAndContent(t *testing.T) {
	r, err := ParseRule(`alert tcp any 1024 -> any 80 (msg:"probe"; content:"GET /admin"; content:"passwd"; dsize:>10; flags:S; sid:7;)`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.SrcPort != 1024 || r.DstPort != 80 {
		t.Errorf("ports: %+v", r)
	}
	if len(r.Contents) != 2 || r.Contents[1] != "passwd" {
		t.Errorf("contents: %v", r.Contents)
	}
	if r.DsizeOp != ">" || r.Dsize != 10 || r.Flags != "S" {
		t.Errorf("dsize/flags: %+v", r)
	}
}

func TestParseRuleErrors(t *testing.T) {
	cases := []string{
		`bogus icmp any any -> any any (sid:1;)`,
		`alert martian any any -> any any (sid:1;)`,
		`alert icmp any any -> any any`,
		`alert icmp any any >> any any (sid:1;)`,
		`alert icmp any any -> any any (msg:"no sid";)`,
		`alert icmp any notaport -> any any (sid:1;)`,
		`alert icmp any any -> any any (itype:x; sid:1;)`,
		`alert icmp any any -> any any (threshold:type both, track by_dst; sid:1;)`,
	}
	for _, src := range cases {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("accepted bad rule %q", src)
		}
	}
}

func TestParseRulesSkipsComments(t *testing.T) {
	rules, err := ParseRules("# comment\n\nalert icmp any any -> any any (sid:5;)\n")
	if err != nil || len(rules) != 1 {
		t.Fatalf("rules=%d err=%v", len(rules), err)
	}
}

func mustCapture(t *testing.T, raw []byte) *packet.Captured {
	t.Helper()
	c, err := stack.Decode(packet.MediumWiFi, raw)
	if err != nil {
		t.Fatal(err)
	}
	c.Time = t0
	return c
}

func TestEngineThresholdBoth(t *testing.T) {
	rules, err := ParseRules(`alert icmp any any -> any any (msg:"flood"; itype:0; threshold:type both, track by_dst, count 5, seconds 5; sid:42;)`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	for i := 0; i < 8; i++ {
		c := mustCapture(t, stack.BuildICMPEcho(src, dst, icmp.TypeEchoReply, 1, uint16(i), 64))
		c.Time = t0.Add(time.Duration(i) * 100 * time.Millisecond)
		e.HandleCapture(c)
	}
	alerts := e.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (once per window)", len(alerts))
	}
	if alerts[0].SID != 42 || alerts[0].Dst != "10.0.0.2" {
		t.Errorf("alert = %+v", alerts[0])
	}
}

func TestEngineFlagsMatch(t *testing.T) {
	rules, err := ParseRules(`alert tcp any any -> any 443 (msg:"syn"; flags:S; sid:43;)`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	e.HandleCapture(mustCapture(t, stack.BuildTCP(src, dst, 4000, 443, tcp.FlagSYN, 1, 0, 1, nil)))
	e.HandleCapture(mustCapture(t, stack.BuildTCP(src, dst, 4000, 443, tcp.FlagACK, 2, 1, 2, nil)))
	e.HandleCapture(mustCapture(t, stack.BuildTCP(src, dst, 4000, 80, tcp.FlagSYN, 3, 0, 3, nil))) // wrong port
	if got := len(e.Alerts()); got != 1 {
		t.Errorf("alerts = %d, want 1", got)
	}
}

func TestEngineContentMatch(t *testing.T) {
	rules, err := ParseRules(`alert udp any any -> any any (msg:"sig"; content:"EVIL"; sid:44;)`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	e.HandleCapture(mustCapture(t, stack.BuildUDP(src, dst, 1, 2, 1, []byte("xxEVILxx"))))
	e.HandleCapture(mustCapture(t, stack.BuildUDP(src, dst, 1, 2, 2, []byte("benign"))))
	if got := len(e.Alerts()); got != 1 {
		t.Errorf("alerts = %d, want 1", got)
	}
}

func TestEngineBlindTo802154(t *testing.T) {
	rules, err := DefaultRuleset(50)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	raw := stack.BuildCTPData(3, 2, 3, 1, 0, 20, []byte{0x01, 0x01})
	c, err := stack.Decode(packet.MediumIEEE802154, raw)
	if err != nil {
		t.Fatal(err)
	}
	c.Time = t0
	e.HandleCapture(c)
	if e.Invisible != 1 || e.Packets != 0 || len(e.Alerts()) != 0 {
		t.Errorf("802.15.4 frame not invisible: inv=%d pkts=%d", e.Invisible, e.Packets)
	}
}

func TestDefaultRulesetParsesAndCounts(t *testing.T) {
	rules, err := DefaultRuleset(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 204 { // 4 custom + 200 community
		t.Errorf("rules = %d, want 204", len(rules))
	}
	e := NewEngine(rules)
	if e.RuleCount() != 204 {
		t.Errorf("RuleCount = %d", e.RuleCount())
	}
}

func TestFloodAndSmurfRulesBothFire(t *testing.T) {
	// The signature baseline cannot distinguish flood from smurf: both
	// custom SIDs fire on the same reply burst.
	rules, err := DefaultRuleset(0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	for i := 0; i < 30; i++ {
		c := mustCapture(t, stack.BuildICMPEcho(src, dst, icmp.TypeEchoReply, 1, uint16(i), 64))
		c.Time = t0.Add(time.Duration(i) * 100 * time.Millisecond)
		e.HandleCapture(c)
	}
	sids := map[int]bool{}
	for _, a := range e.Alerts() {
		sids[a.SID] = true
	}
	if !sids[SIDICMPFlood] || !sids[SIDSmurf] {
		t.Errorf("sids fired: %v, want both %d and %d", sids, SIDICMPFlood, SIDSmurf)
	}
}

func TestEngineWorkAccounting(t *testing.T) {
	rules, err := DefaultRuleset(100)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	e.HandleCapture(mustCapture(t, stack.BuildUDP(src, dst, 1, 2, 1, nil)))
	if e.Packets != 1 || e.Evaluations != uint64(len(rules)) {
		t.Errorf("packets=%d evals=%d rules=%d", e.Packets, e.Evaluations, len(rules))
	}
}

func TestCommunityRulesAreValidSnortSubset(t *testing.T) {
	text := CommunityRules(500)
	if !strings.Contains(text, "content:") {
		t.Error("no content rules generated")
	}
	if _, err := ParseRules(text); err != nil {
		t.Fatalf("generated ruleset does not parse: %v", err)
	}
}
