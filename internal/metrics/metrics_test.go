package metrics

import (
	"testing"
	"time"

	"kalis/internal/attacks"
	"kalis/internal/packet"
)

var t0 = time.Unix(1500000000, 0).UTC()

func inst(id int, start time.Time, attackName string, attacker, victim packet.NodeID) attacks.Instance {
	return attacks.Instance{
		Attack: attackName, ID: id,
		Start: start, End: start.Add(5 * time.Second),
		Attacker: attacker, Victim: victim,
	}
}

func TestScoreAllDetectedCorrect(t *testing.T) {
	insts := []attacks.Instance{
		inst(1, t0, "icmp-flood", "atk", "v"),
		inst(2, t0.Add(time.Minute), "icmp-flood", "atk", "v"),
	}
	alerts := []Attribution{
		{Time: t0.Add(2 * time.Second), Attack: "icmp-flood", Victim: "v", Confidence: 0.9},
		{Time: t0.Add(61 * time.Second), Attack: "icmp-flood", Victim: "v", Confidence: 0.9},
	}
	s := ScoreAlerts(insts, alerts, 1)
	if s.Detected != 2 || s.Correct != 2 || s.FalsePositives != 0 {
		t.Errorf("score = %+v", s)
	}
	if s.DetectionRate() != 1 || s.Accuracy() != 1 {
		t.Errorf("rates: %f %f", s.DetectionRate(), s.Accuracy())
	}
}

func TestScoreMisclassification(t *testing.T) {
	insts := []attacks.Instance{inst(1, t0, "wormhole", "b1", "")}
	alerts := []Attribution{
		{Time: t0.Add(time.Second), Attack: "blackhole", Suspects: []packet.NodeID{"b1"}, Confidence: 0.85},
	}
	s := ScoreAlerts(insts, alerts, 1)
	if s.Detected != 1 || s.Correct != 0 {
		t.Errorf("score = %+v", s)
	}
}

func TestScoreConfidencePriority(t *testing.T) {
	// A wormhole alert (0.9) must beat a simultaneous blackhole alert
	// (0.85) deterministically, for any seed.
	insts := []attacks.Instance{inst(1, t0, "wormhole", "b1", "")}
	alerts := []Attribution{
		{Time: t0.Add(time.Second), Attack: "blackhole", Suspects: []packet.NodeID{"b1"}, Confidence: 0.85},
		{Time: t0.Add(2 * time.Second), Attack: "wormhole", Suspects: []packet.NodeID{"b1"}, Confidence: 0.9},
	}
	for seed := int64(0); seed < 20; seed++ {
		s := ScoreAlerts(insts, alerts, seed)
		if s.Correct != 1 {
			t.Fatalf("seed %d: confidence priority violated: %+v", seed, s)
		}
	}
}

func TestScoreAmbiguityIsACoinToss(t *testing.T) {
	// Two equal-confidence contradictory names: across seeds, roughly
	// half the classifications are correct.
	insts := []attacks.Instance{inst(1, t0, "icmp-flood", "atk", "v")}
	alerts := []Attribution{
		{Time: t0.Add(time.Second), Attack: "icmp-flood", Victim: "v", Confidence: 0.7},
		{Time: t0.Add(time.Second), Attack: "smurf", Victim: "v", Confidence: 0.7},
	}
	correct := 0
	for seed := int64(0); seed < 200; seed++ {
		correct += ScoreAlerts(insts, alerts, seed).Correct
	}
	if correct < 60 || correct > 140 {
		t.Errorf("correct = %d/200, want ~100", correct)
	}
}

func TestScoreFalsePositives(t *testing.T) {
	insts := []attacks.Instance{inst(1, t0, "sybil", "atk", "")}
	alerts := []Attribution{
		{Time: t0.Add(time.Second), Attack: "sybil", Suspects: []packet.NodeID{"atk"}, Confidence: 0.8},
		{Time: t0.Add(time.Hour), Attack: "sybil", Suspects: []packet.NodeID{"atk"}, Confidence: 0.8}, // way outside
		{Time: t0.Add(time.Second), Attack: "sinkhole", Suspects: []packet.NodeID{"other"}, Confidence: 0.8},
	}
	s := ScoreAlerts(insts, alerts, 1)
	if s.FalsePositives != 2 {
		t.Errorf("fp = %d, want 2", s.FalsePositives)
	}
}

func TestScoreTimeWindowGrace(t *testing.T) {
	insts := []attacks.Instance{inst(1, t0, "blackhole", "r", "")}
	late := Attribution{Time: t0.Add(5*time.Second + matchGrace), Attack: "blackhole", Suspects: []packet.NodeID{"r"}, Confidence: 0.8}
	if s := ScoreAlerts(insts, []Attribution{late}, 1); s.Detected != 1 {
		t.Error("alert at grace boundary not matched")
	}
	tooLate := Attribution{Time: t0.Add(6*time.Second + matchGrace), Attack: "blackhole", Suspects: []packet.NodeID{"r"}, Confidence: 0.8}
	if s := ScoreAlerts(insts, []Attribution{tooLate}, 1); s.Detected != 0 {
		t.Error("alert beyond grace matched")
	}
	early := Attribution{Time: t0.Add(-time.Second), Attack: "blackhole", Suspects: []packet.NodeID{"r"}, Confidence: 0.8}
	if s := ScoreAlerts(insts, []Attribution{early}, 1); s.Detected != 0 {
		t.Error("alert before episode matched")
	}
}

func TestEmptyScores(t *testing.T) {
	var s Score
	if s.DetectionRate() != 0 || s.Accuracy() != 0 {
		t.Error("zero-value score rates")
	}
	sum := Score{Instances: 2, Detected: 1, Correct: 1}.Add(Score{Instances: 2, Detected: 2, Correct: 1})
	if sum.Instances != 4 || sum.Detected != 3 || sum.Correct != 2 {
		t.Errorf("Add: %+v", sum)
	}
}

func TestCPUPercent(t *testing.T) {
	r := Resources{CPUTime: time.Second, VirtualDuration: 100 * time.Second}
	if got := r.CPUPercent(); got != 1 {
		t.Errorf("CPUPercent = %f", got)
	}
	if (Resources{}).CPUPercent() != 0 {
		t.Error("zero duration")
	}
}

func TestCPUMeter(t *testing.T) {
	var m CPUMeter
	m.Time(func() { time.Sleep(time.Millisecond) })
	if m.Busy() < time.Millisecond {
		t.Errorf("busy = %v", m.Busy())
	}
}

func TestScoreCountermeasure(t *testing.T) {
	cm := ScoreCountermeasure(
		[]packet.NodeID{"atk", "innocent", "victim"},
		map[packet.NodeID]bool{"atk": true},
		"victim",
	)
	if cm.CorrectRevocations != 1 || cm.Collateral != 2 || !cm.VictimRevoked {
		t.Errorf("cm = %+v", cm)
	}
}

func TestHeapLiveMonotonicSanity(t *testing.T) {
	if HeapLive() <= 0 {
		t.Error("heap should be positive")
	}
}
