// Package metrics implements the evaluation metrics of §VI-B:
// detection rate, classification accuracy, countermeasure
// effectiveness, and CPU/RAM resource measurement.
package metrics

import (
	"math/rand"
	"runtime"
	"sort"
	"time"

	"kalis/internal/attacks"
	"kalis/internal/packet"
)

// Attribution is one detection, reduced to what scoring needs. Both
// Kalis/traditional alerts and Snort-like alerts convert into it.
type Attribution struct {
	Time     time.Time
	Attack   string
	Victim   packet.NodeID
	Suspects []packet.NodeID
	// Confidence ranks contradictory classifications: when several
	// alerts with different attack names match one instance, the
	// highest-confidence name wins (a wormhole correlation refines a
	// plain blackhole alert); among equal confidences the operator
	// must guess.
	Confidence float64
}

// Score aggregates per-scenario results.
type Score struct {
	// Instances is the number of ground-truth adverse events.
	Instances int
	// Detected is how many instances at least one alert matched.
	Detected int
	// Correct is how many detected instances were classified as the
	// right attack.
	Correct int
	// FalsePositives is the number of alerts matching no instance.
	FalsePositives int
}

// DetectionRate is Detected/Instances — metric (i) of §VI-B.
func (s Score) DetectionRate() float64 {
	if s.Instances == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Instances)
}

// Accuracy is Correct/Detected — metric (ii) of §VI-B ("number of
// correctly classified attacks out of all the detected attacks").
func (s Score) Accuracy() float64 {
	if s.Detected == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Detected)
}

// Add accumulates another score (for cross-scenario averages the
// paper reports in Table II and Fig. 8).
func (s Score) Add(o Score) Score {
	return Score{
		Instances:      s.Instances + o.Instances,
		Detected:       s.Detected + o.Detected,
		Correct:        s.Correct + o.Correct,
		FalsePositives: s.FalsePositives + o.FalsePositives,
	}
}

// matchGrace extends each instance window when matching alerts, since
// threshold detectors legitimately fire shortly after a burst ends.
const matchGrace = 10 * time.Second

// matches reports whether the alert is attributable to the instance:
// temporally within the (grace-extended) episode and tied to it by
// victim, attacker, or attack name.
func matches(a Attribution, inst attacks.Instance) bool {
	if a.Time.Before(inst.Start) || a.Time.After(inst.End.Add(matchGrace)) {
		return false
	}
	if inst.Victim != "" && a.Victim == inst.Victim {
		return true
	}
	for _, s := range a.Suspects {
		if s == inst.Attacker {
			return true
		}
	}
	return a.Attack == inst.Attack
}

// ScoreAlerts scores a run: every instance is checked for matching
// alerts; an instance counts as correctly classified when the operator,
// picking among the distinct attack names of its matching alerts
// (uniformly at random, seeded — contradictory alerts force a guess,
// which is precisely the traditional-IDS ambiguity cost), picks the
// true name. Alerts matching no instance are false positives.
func ScoreAlerts(instances []attacks.Instance, alerts []Attribution, seed int64) Score {
	rng := rand.New(rand.NewSource(seed))
	score := Score{Instances: len(instances)}
	used := make([]bool, len(alerts))
	for _, inst := range instances {
		names := map[string]float64{} // attack name → best confidence
		for i, a := range alerts {
			if matches(a, inst) {
				if a.Confidence > names[a.Attack] || names[a.Attack] == 0 {
					names[a.Attack] = a.Confidence
				}
				used[i] = true
			}
		}
		if len(names) == 0 {
			continue
		}
		score.Detected++
		// Keep only the highest-confidence names; guess among ties.
		best := 0.0
		for _, c := range names {
			if c > best {
				best = c
			}
		}
		sorted := make([]string, 0, len(names))
		for n, c := range names {
			if c == best {
				sorted = append(sorted, n)
			}
		}
		sort.Strings(sorted)
		if sorted[rng.Intn(len(sorted))] == inst.Attack {
			score.Correct++
		}
	}
	for i := range alerts {
		if !used[i] {
			score.FalsePositives++
		}
	}
	return score
}

// Resources captures measured resource usage for one IDS run.
type Resources struct {
	// CPUTime is the wall-clock time spent inside the IDS's packet
	// processing path.
	CPUTime time.Duration
	// VirtualDuration is the simulated time the run covered.
	VirtualDuration time.Duration
	// HeapBytes is the live-heap growth attributable to the run.
	HeapBytes int64
	// Packets is the number of captures processed.
	Packets uint64
	// WorkUnits counts per-packet work (module invocations or rule
	// evaluations) — the platform-independent cost measure.
	WorkUnits uint64
}

// CPUPercent normalizes processing time against simulated time: the
// share of one (simulated-deployment) CPU the IDS would keep busy.
func (r Resources) CPUPercent() float64 {
	if r.VirtualDuration == 0 {
		return 0
	}
	return 100 * float64(r.CPUTime) / float64(r.VirtualDuration)
}

// CPUMeter accumulates processing time.
type CPUMeter struct {
	busy time.Duration
}

// Time runs fn and adds its duration to the meter.
func (m *CPUMeter) Time(fn func()) {
	start := time.Now()
	fn()
	m.busy += time.Since(start)
}

// Busy returns the accumulated processing time.
func (m *CPUMeter) Busy() time.Duration { return m.busy }

// HeapLive returns the current live heap after a full GC; the
// difference of two calls brackets a run's retained allocation.
func HeapLive() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// Countermeasure captures the effect of revocation-based response
// (metric (iii), §VI-B: "how positive a response action based on the
// detections is for the overall network").
type Countermeasure struct {
	// Revoked is every node the IDS's response revoked.
	Revoked []packet.NodeID
	// CorrectRevocations are revoked true attackers.
	CorrectRevocations int
	// Collateral are revoked innocent nodes.
	Collateral int
	// VictimRevoked reports the pathological outcome the paper
	// describes for the traditional IDS (revoking the victim
	// disconnects the network).
	VictimRevoked bool
}

// ScoreCountermeasure evaluates a set of revocations.
func ScoreCountermeasure(revoked []packet.NodeID, attackers map[packet.NodeID]bool, victim packet.NodeID) Countermeasure {
	cm := Countermeasure{Revoked: revoked}
	for _, id := range revoked {
		switch {
		case attackers[id]:
			cm.CorrectRevocations++
		default:
			cm.Collateral++
			if id == victim {
				cm.VictimRevoked = true
			}
		}
	}
	return cm
}
