package fault

import (
	"reflect"
	"testing"
	"time"

	"kalis/internal/core/collective"
	"kalis/internal/core/knowledge"
	"kalis/internal/netsim"
	"kalis/internal/packet"
)

// recordingEndpoint captures datagrams delivered to a hub endpoint.
type recording struct {
	data [][]byte
}

func endpointPair(t *testing.T) (collective.Transport, *recording) {
	t.Helper()
	hub := collective.NewHub()
	src := hub.Endpoint("src")
	dst := hub.Endpoint("dst")
	rec := &recording{}
	dst.SetHandler(func(from string, data []byte) {
		cp := make([]byte, len(data))
		copy(cp, data)
		rec.data = append(rec.data, cp)
	})
	return src, rec
}

func TestDropIsSeededAndDeterministic(t *testing.T) {
	pattern := func() ([]bool, map[string]uint64) {
		src, rec := endpointPair(t)
		inj := New(42)
		ft := inj.WrapTransport(src, LinkFaults{Drop: 0.3})
		var delivered []bool
		for i := 0; i < 50; i++ {
			before := len(rec.data)
			if err := ft.Send("dst", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			delivered = append(delivered, len(rec.data) > before)
		}
		return delivered, inj.Counts()
	}
	d1, c1 := pattern()
	d2, c2 := pattern()
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(c1, c2) {
		t.Fatal("same seed produced different drop patterns")
	}
	if c1[KindDrop] == 0 {
		t.Fatal("no drops injected at p=0.3 over 50 sends")
	}
	dropped := 0
	for _, ok := range d1 {
		if !ok {
			dropped++
		}
	}
	if uint64(dropped) != c1[KindDrop] {
		t.Fatalf("observed %d drops, counted %d", dropped, c1[KindDrop])
	}
}

func TestDuplicateAndCorrupt(t *testing.T) {
	src, rec := endpointPair(t)
	inj := New(7)
	ft := inj.WrapTransport(src, LinkFaults{Duplicate: 1.0})
	if err := ft.Send("dst", []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if len(rec.data) != 2 {
		t.Fatalf("duplicate p=1: delivered %d datagrams", len(rec.data))
	}

	ft.SetFaults(LinkFaults{Corrupt: 1.0})
	orig := []byte{0x01, 0x02, 0x03, 0x04}
	if err := ft.Send("dst", append([]byte(nil), orig...)); err != nil {
		t.Fatal(err)
	}
	got := rec.data[len(rec.data)-1]
	if reflect.DeepEqual(got, orig) {
		t.Fatal("corrupt p=1 delivered the original bytes")
	}
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes (want exactly 1)", diff)
	}
	c := inj.Counts()
	if c[KindDuplicate] != 1 || c[KindCorrupt] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	src, rec := endpointPair(t)
	inj := New(1)
	ft := inj.WrapTransport(src, LinkFaults{Reorder: 1.0})
	_ = ft.Send("dst", []byte{1}) // held
	ft.SetFaults(LinkFaults{})    // next send releases it
	_ = ft.Send("dst", []byte{2})
	if len(rec.data) != 2 || rec.data[0][0] != 2 || rec.data[1][0] != 1 {
		t.Fatalf("delivery order = %v (want [2] then [1])", rec.data)
	}
	if inj.Counts()[KindReorder] != 1 {
		t.Fatalf("counts = %v", inj.Counts())
	}
}

func TestPartitionBlocksBothDirectionsUntilHeal(t *testing.T) {
	hub := collective.NewHub()
	kb1 := knowledge.NewBase("K1")
	kb2 := knowledge.NewBase("K2")
	inj := New(9)
	ft1 := inj.WrapTransport(hub.Endpoint("addr1"), LinkFaults{})
	n1, err := collective.NewNode(kb1, ft1, "secret")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := collective.NewNode(kb2, hub.Endpoint("addr2"), "secret")
	if err != nil {
		t.Fatal(err)
	}
	n1.Beacon()
	n2.Beacon()
	if len(n1.Peers()) != 1 || len(n2.Peers()) != 1 {
		t.Fatal("discovery failed")
	}

	ft1.Partition("addr2")
	kb1.PutCollective("SuspectBlackhole", "0x0005", "7")
	n1.Gossip() // outbound: blocked
	if _, ok := kb2.Get("K1$SuspectBlackhole@0x0005"); ok {
		t.Fatal("update crossed an outbound partition")
	}
	kb2.PutCollective("EmergentSource", "0x0009", "3")
	n2.Gossip() // inbound: blocked on K1's wrapped side
	if _, ok := kb1.Get("K2$EmergentSource@0x0009"); ok {
		t.Fatal("update crossed an inbound partition")
	}
	if inj.Counts()[KindPartition] < 3 { // Partition() + 2 blocked datagrams
		t.Fatalf("counts = %v", inj.Counts())
	}

	ft1.Heal()
	kb1.PutCollective("SuspectBlackhole", "0x0006", "8")
	n1.Gossip()
	if _, ok := kb2.Get("K1$SuspectBlackhole@0x0006"); !ok {
		t.Fatal("update lost after heal")
	}
	// The digest ride-along also recovered everything that was lost
	// inside the partition window, in both directions.
	if _, ok := kb2.Get("K1$SuspectBlackhole@0x0005"); !ok {
		t.Fatal("partition-window update not recovered by anti-entropy")
	}
	n2.Gossip()
	if _, ok := kb1.Get("K2$EmergentSource@0x0009"); !ok {
		t.Fatal("inbound partition-window update not recovered")
	}
}

func TestDelayDefersOnVirtualClock(t *testing.T) {
	src, rec := endpointPair(t)
	sim := netsim.New(5)
	inj := New(5)
	inj.SetScheduler(sim)
	ft := inj.WrapTransport(src, LinkFaults{Delay: 1.0, MaxDelay: time.Second})
	if err := ft.Send("dst", []byte{9}); err != nil {
		t.Fatal(err)
	}
	if len(rec.data) != 0 {
		t.Fatal("delayed datagram delivered immediately")
	}
	sim.RunFor(time.Second)
	if len(rec.data) != 1 {
		t.Fatalf("delayed datagram not delivered after virtual second: %d", len(rec.data))
	}
	if inj.Counts()[KindDelay] != 1 {
		t.Fatalf("counts = %v", inj.Counts())
	}
}

func TestFrameLossIsDeterministic(t *testing.T) {
	run := func() (int, map[string]uint64) {
		sim := netsim.New(3)
		inj := New(3)
		tx := sim.AddNode(&netsim.Node{Name: "tx", Pos: netsim.Position{}, TxPower: 0})
		rxCount := 0
		rx := sim.AddNode(&netsim.Node{Name: "rx", Pos: netsim.Position{X: 1}, TxPower: 0})
		rx.OnReceive(func(m packet.Medium, raw []byte, from *netsim.Node, rssi float64) { rxCount++ })
		inj.FrameLoss(sim, 0.4)
		for i := 0; i < 100; i++ {
			sim.After(time.Duration(i)*time.Millisecond, func() {
				sim.Transmit(tx, packet.MediumIEEE802154, []byte{0x01}, nil)
			})
		}
		sim.RunFor(time.Second)
		return rxCount, inj.Counts()
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same seed diverged: %d vs %d, %v vs %v", r1, r2, c1, c2)
	}
	if c1[KindFrameLoss] == 0 || r1 == 0 {
		t.Fatalf("loss=%d received=%d — fault or radio misconfigured", c1[KindFrameLoss], r1)
	}
	if r1+int(c1[KindFrameLoss]) != 100 {
		t.Fatalf("received %d + lost %d != 100 transmitted", r1, c1[KindFrameLoss])
	}
}

func TestCrashAndReboot(t *testing.T) {
	sim := netsim.New(11)
	inj := New(11)
	inj.SetScheduler(sim)
	tx := sim.AddNode(&netsim.Node{Name: "tx", Pos: netsim.Position{}, TxPower: 0})
	received := 0
	rx := sim.AddNode(&netsim.Node{Name: "rx", Pos: netsim.Position{X: 1}, TxPower: 0})
	rx.OnReceive(func(packet.Medium, []byte, *netsim.Node, float64) { received++ })

	inj.CrashNode(sim, "tx", 100*time.Millisecond, 200*time.Millisecond)
	for i := 0; i < 40; i++ {
		i := i
		sim.After(time.Duration(i*10)*time.Millisecond, func() {
			sim.Transmit(tx, packet.MediumIEEE802154, []byte{byte(i)}, nil)
		})
	}
	sim.RunFor(time.Second)
	// 10 frames before the crash (t=0..90), 20 silenced (t=100..290),
	// 10 after reboot (t=300..390).
	if received != 20 {
		t.Fatalf("received %d frames (want 20: crash window silenced)", received)
	}
	if inj.Counts()[KindCrash] != 1 {
		t.Fatalf("counts = %v", inj.Counts())
	}

	sc := Scenario{Name: "noop", Steps: []Step{{After: 0, Name: "n", Do: func() {}}}}
	inj.Run(sc) // scheduled path smoke-covered; immediate path below
	New(0).Run(sc)
	sim.RunFor(time.Millisecond)
}
