package fault

import (
	"time"
)

// Step is one timed action in a fault scenario, applied at a virtual
// offset from the scenario start.
type Step struct {
	// After is the virtual delay from the scenario start.
	After time.Duration
	// Name labels the step in logs and results.
	Name string
	// Do applies the step (partition a transport, arm a module bomb,
	// heal a link, …).
	Do func()
}

// Scenario is a named, ordered fault sequence. Scenarios are plain
// data: the same scenario against the same seed replays identically.
type Scenario struct {
	Name  string
	Steps []Step
}

// Run schedules every step on the injector's virtual-time scheduler.
// Without a scheduler the steps run immediately in order — degenerate
// but still deterministic, for transport-only tests that have no
// simulator.
func (i *Injector) Run(sc Scenario) {
	for _, st := range sc.Steps {
		st := st
		if !i.after(st.After, st.Do) {
			st.Do()
		}
	}
}
