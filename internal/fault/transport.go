package fault

import (
	"sync"
	"time"

	"kalis/internal/core/collective"
)

// LinkFaults are the per-datagram fault probabilities a wrapped
// transport applies, each drawn from the injector's seeded RNG.
type LinkFaults struct {
	// Drop silently discards the datagram.
	Drop float64
	// Duplicate delivers the datagram twice.
	Duplicate float64
	// Reorder holds the datagram back and releases it after the next
	// one (a one-slot swap).
	Reorder float64
	// Corrupt flips one random byte before transmission.
	Corrupt float64
	// Delay defers delivery by a random slice of MaxDelay on the
	// virtual scheduler (inert without one).
	Delay    float64
	MaxDelay time.Duration
}

// Transport wraps a collective.Transport with seeded link faults and
// partition control. It injects on the send path and filters
// partitioned peers on the receive path, so one wrapped endpoint per
// node gives a scenario control over both directions.
type Transport struct {
	inner collective.Transport
	inj   *Injector

	mu          sync.Mutex
	faults      LinkFaults
	partitioned map[string]bool
	allBlocked  bool
	heldAddr    string // one-slot reorder buffer
	heldData    []byte
	handler     collective.Handler
}

var _ collective.Transport = (*Transport)(nil)

// WrapTransport wraps inner with the given fault probabilities, drawn
// from the injector's seed.
func (i *Injector) WrapTransport(inner collective.Transport, f LinkFaults) *Transport {
	return &Transport{inner: inner, inj: i, faults: f, partitioned: make(map[string]bool)}
}

// SetFaults replaces the fault probabilities mid-scenario.
func (t *Transport) SetFaults(f LinkFaults) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = f
}

// Partition blocks traffic with the given peer addresses — outbound
// sends vanish silently and inbound datagrams are discarded — until
// Heal. With no addresses, everything is blocked (a full partition,
// including broadcasts).
func (t *Transport) Partition(addrs ...string) {
	t.mu.Lock()
	if len(addrs) == 0 {
		t.allBlocked = true
	}
	for _, a := range addrs {
		t.partitioned[a] = true
	}
	t.mu.Unlock()
	t.inj.mu.Lock()
	t.inj.recordLocked(KindPartition)
	t.inj.mu.Unlock()
}

// Heal removes every partition and flushes a held reorder frame.
func (t *Transport) Heal() {
	t.mu.Lock()
	t.allBlocked = false
	t.partitioned = make(map[string]bool)
	addr, data := t.heldAddr, t.heldData
	t.heldAddr, t.heldData = "", nil
	t.mu.Unlock()
	if data != nil {
		_ = t.inner.Send(addr, data)
	}
}

// Addr implements collective.Transport.
func (t *Transport) Addr() string { return t.inner.Addr() }

// SetHandler implements collective.Transport, filtering inbound
// datagrams from partitioned peers.
func (t *Transport) SetHandler(h collective.Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
	t.inner.SetHandler(func(fromAddr string, data []byte) {
		t.mu.Lock()
		blocked := t.allBlocked || t.partitioned[fromAddr]
		t.mu.Unlock()
		if blocked {
			t.inj.mu.Lock()
			t.inj.recordLocked(KindPartition)
			t.inj.mu.Unlock()
			return
		}
		h(fromAddr, data)
	})
}

// Close implements collective.Transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Broadcast implements collective.Transport; only a full partition
// suppresses broadcasts (per-peer partitions are filtered on the
// receiving side, so wrap both endpoints for symmetric scenarios).
func (t *Transport) Broadcast(data []byte) error {
	t.mu.Lock()
	blocked := t.allBlocked
	t.mu.Unlock()
	if blocked {
		t.inj.mu.Lock()
		t.inj.recordLocked(KindPartition)
		t.inj.mu.Unlock()
		return nil
	}
	return t.inner.Broadcast(data)
}

// Send implements collective.Transport, applying partition, drop,
// corrupt, duplicate, reorder and delay faults in that order.
func (t *Transport) Send(addr string, data []byte) error {
	t.mu.Lock()
	blocked := t.allBlocked || t.partitioned[addr]
	f := t.faults
	t.mu.Unlock()

	t.inj.mu.Lock()
	if blocked {
		t.inj.recordLocked(KindPartition)
		t.inj.mu.Unlock()
		return nil // a partition is silent: the sender cannot tell
	}
	if t.inj.chanceLocked(f.Drop) {
		t.inj.recordLocked(KindDrop)
		t.inj.mu.Unlock()
		return nil
	}
	if t.inj.chanceLocked(f.Corrupt) && len(data) > 0 {
		cp := make([]byte, len(data))
		copy(cp, data)
		cp[t.inj.rng.Intn(len(cp))] ^= 1 << uint(t.inj.rng.Intn(8))
		data = cp
		t.inj.recordLocked(KindCorrupt)
	}
	dup := t.inj.chanceLocked(f.Duplicate)
	if dup {
		t.inj.recordLocked(KindDuplicate)
	}
	reorder := t.inj.chanceLocked(f.Reorder)
	delay := time.Duration(0)
	if t.inj.chanceLocked(f.Delay) && f.MaxDelay > 0 {
		delay = time.Duration(t.inj.rng.Int63n(int64(f.MaxDelay)))
	}
	t.inj.mu.Unlock()

	// Reorder: stash this datagram and release it after the next one.
	if reorder {
		t.mu.Lock()
		if t.heldData == nil {
			t.heldAddr = addr
			t.heldData = data
			t.mu.Unlock()
			t.inj.mu.Lock()
			t.inj.recordLocked(KindReorder)
			t.inj.mu.Unlock()
			return nil
		}
		t.mu.Unlock()
	}

	if delay > 0 && t.inj.after(delay, func() { _ = t.deliver(addr, data, dup) }) {
		t.inj.mu.Lock()
		t.inj.recordLocked(KindDelay)
		t.inj.mu.Unlock()
		return nil
	}
	return t.deliver(addr, data, dup)
}

// deliver sends the datagram (twice when duplicated) and then any held
// reorder frame.
func (t *Transport) deliver(addr string, data []byte, dup bool) error {
	err := t.inner.Send(addr, data)
	if dup {
		_ = t.inner.Send(addr, data)
	}
	t.mu.Lock()
	heldAddr, heldData := t.heldAddr, t.heldData
	t.heldAddr, t.heldData = "", nil
	t.mu.Unlock()
	if heldData != nil {
		_ = t.inner.Send(heldAddr, heldData)
	}
	return err
}
