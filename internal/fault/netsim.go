package fault

import (
	"time"

	"kalis/internal/netsim"
)

// FrameLoss installs seeded random frame loss on every simulated link:
// each (transmitter, receiver) frame is dropped with probability p,
// drawn from the injector's RNG — deterministic for a fixed seed and
// traffic pattern. Pass p = 0 to remove the hook.
func (i *Injector) FrameLoss(sim *netsim.Sim, p float64) {
	if p <= 0 {
		sim.SetLinkFault(nil)
		return
	}
	sim.SetLinkFault(func(from, to string) bool {
		i.mu.Lock()
		defer i.mu.Unlock()
		if !i.chanceLocked(p) {
			return false
		}
		i.recordLocked(KindFrameLoss)
		return true
	})
}

// PartitionLinks blocks every frame between the two named groups (in
// both directions) until the returned heal function is called — a
// network-level partition, distinct from the transport-level one.
func (i *Injector) PartitionLinks(sim *netsim.Sim, groupA, groupB []string) (heal func()) {
	inA := make(map[string]bool, len(groupA))
	for _, n := range groupA {
		inA[n] = true
	}
	inB := make(map[string]bool, len(groupB))
	for _, n := range groupB {
		inB[n] = true
	}
	active := true
	sim.SetLinkFault(func(from, to string) bool {
		if !active {
			return false
		}
		if (inA[from] && inB[to]) || (inB[from] && inA[to]) {
			i.mu.Lock()
			i.recordLocked(KindPartition)
			i.mu.Unlock()
			return true
		}
		return false
	})
	return func() { active = false }
}

// CrashNode schedules a node crash on the virtual clock: after the
// given delay the node is revoked (transmits and receives nothing),
// and — when downFor > 0 — restored that much later, reproducing a
// reboot.
func (i *Injector) CrashNode(sim *netsim.Sim, name string, after, downFor time.Duration) {
	node := sim.Node(name)
	if node == nil {
		return
	}
	sim.After(after, func() {
		node.Revoke()
		i.mu.Lock()
		i.recordLocked(KindCrash)
		i.mu.Unlock()
	})
	if downFor > 0 {
		sim.After(after+downFor, func() { node.Restore() })
	}
}

// CrashNodeDirty is CrashNode for a node with durable state: at crash
// time it additionally invokes dirty, which models the power cut
// hitting mid-write — typically persist.Tear on the node's journal
// plus abandoning the node without Close, so no shutdown flush ever
// runs. The restart (when downFor > 0) only restores the radio; the
// drill itself decides whether the rebooted IDS reopens its torn state
// dir (warm/truncated recovery) or a fresh one (cold).
func (i *Injector) CrashNodeDirty(sim *netsim.Sim, name string, after, downFor time.Duration, dirty func()) {
	node := sim.Node(name)
	if node == nil {
		return
	}
	sim.After(after, func() {
		node.Revoke()
		if dirty != nil {
			dirty()
		}
		i.mu.Lock()
		i.recordLocked(KindCrashDirty)
		i.mu.Unlock()
	})
	if downFor > 0 {
		sim.After(after+downFor, func() { node.Restore() })
	}
}
