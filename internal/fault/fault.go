// Package fault is Kalis' deterministic fault-injection harness: a
// seeded, scenario-driven injector that perturbs the collective
// transport (drop, duplicate, reorder, corrupt, delay, partition) and
// netsim links (frame loss, node crash/reboot). Everything runs on
// virtual time — randomness comes only from the injector's seeded RNG
// and delays only from a Scheduler (satisfied by *netsim.Sim) — so the
// same seed always replays the same fault sequence, which is what
// makes resilience evaluation reproducible (ICSSIM's premise applied
// to the Kalis testbed).
package fault

import (
	"math/rand"
	"sync"
	"time"

	"kalis/internal/telemetry"
)

// Fault kinds, as counted by Counts and kalis_fault_injected_total.
const (
	KindDrop       = "drop"
	KindDuplicate  = "duplicate"
	KindReorder    = "reorder"
	KindCorrupt    = "corrupt"
	KindDelay      = "delay"
	KindPartition  = "partition"
	KindFrameLoss  = "frameloss"
	KindCrash      = "crash"
	KindCrashDirty = "crashdirty"
)

var kinds = []string{
	KindDrop, KindDuplicate, KindReorder, KindCorrupt,
	KindDelay, KindPartition, KindFrameLoss, KindCrash, KindCrashDirty,
}

// Scheduler defers work on the virtual clock; *netsim.Sim satisfies
// it. The injector never touches the wall clock.
type Scheduler interface {
	After(d time.Duration, fn func())
}

// Metrics are the injector's optional telemetry hooks; the zero value
// is skipped (all telemetry types are nil-safe).
type Metrics struct {
	// Injected counts injected faults by kind
	// (kalis_fault_injected_total).
	Injected *telemetry.CounterVec
}

// Injector is the root of one fault-injection run: it owns the seeded
// RNG, the virtual-time scheduler, and the per-kind fault accounting
// shared by every wrapped transport and link.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	sched  Scheduler
	counts map[string]uint64
	met    map[string]*telemetry.Counter
}

// New creates an injector with the given RNG seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]uint64),
	}
}

// SetScheduler installs the virtual-time scheduler; Delay faults and
// scheduled scenario steps are inert without one.
func (i *Injector) SetScheduler(s Scheduler) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.sched = s
}

// SetMetrics installs telemetry hooks, pre-resolving the per-kind
// children off every hot path.
func (i *Injector) SetMetrics(m Metrics) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.met = make(map[string]*telemetry.Counter, len(kinds))
	for _, k := range kinds {
		i.met[k] = m.Injected.With(k)
	}
}

// Counts returns a copy of the per-kind injected-fault counters.
func (i *Injector) Counts() map[string]uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// record counts one injected fault. Callers must hold i.mu.
func (i *Injector) recordLocked(kind string) {
	i.counts[kind]++
	i.met[kind].Inc()
}

// chance draws one seeded Bernoulli trial. Callers must hold i.mu.
func (i *Injector) chanceLocked(p float64) bool {
	return p > 0 && i.rng.Float64() < p
}

// after defers fn on the scheduler; returns false when none is set.
func (i *Injector) after(d time.Duration, fn func()) bool {
	i.mu.Lock()
	sched := i.sched
	i.mu.Unlock()
	if sched == nil {
		return false
	}
	sched.After(d, fn)
	return true
}
