package fleet

import (
	"testing"

	"kalis/internal/telemetry"
)

func TestGossipFleetConverges(t *testing.T) {
	res, err := Run(Config{Nodes: 64, Producers: 4, Keys: 2, UpdatesPerKey: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("64-node fleet never converged: %d/%d after %d rounds",
			res.ConvergedNodes, res.Nodes, res.Rounds)
	}
	if res.Fleet.Converged != res.Nodes || len(res.Fleet.Laggards) != 0 {
		t.Fatalf("SIEM aggregation disagrees: %+v", res.Fleet)
	}
	if res.BytesSent == 0 || res.Digests == 0 || res.Deltas == 0 {
		t.Fatalf("no traffic recorded: %+v", res)
	}
	if len(res.Curve) != res.Rounds {
		t.Fatalf("curve has %d samples over %d rounds", len(res.Curve), res.Rounds)
	}
}

func TestGossipBeatsLegacyOnBytes(t *testing.T) {
	base := Config{Nodes: 96, Producers: 4, Keys: 2, UpdatesPerKey: 20, Seed: 3}
	gossip, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	legacyCfg := base
	legacyCfg.LegacyPush = true
	legacy, err := Run(legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !gossip.Converged || !legacy.Converged {
		t.Fatalf("convergence: gossip=%v legacy=%v", gossip.Converged, legacy.Converged)
	}
	// Even at 96 nodes the delta protocol must be clearly ahead of the
	// full-mesh per-update push; the win grows with fleet size (legacy
	// bytes scale with N², gossip with N·rounds) and the 10× acceptance
	// bar is checked at 1k nodes by the kalis-bench fleet experiment.
	if gossip.BytesSent*2 > legacy.BytesSent {
		t.Fatalf("gossip %d bytes vs legacy %d bytes: less than 2x win",
			gossip.BytesSent, legacy.BytesSent)
	}
}

func TestFleetRecoversFromPartition(t *testing.T) {
	res, err := Run(Config{
		Nodes: 48, Producers: 4, Keys: 2, UpdatesPerKey: 5,
		Seed: 5, PartitionRounds: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("fleet never healed: %d/%d after %d rounds", res.ConvergedNodes, res.Nodes, res.Rounds)
	}
	// While split, at least one node must have been missing state.
	duringSplit := res.Curve[7]
	if duringSplit.Converged == res.Nodes {
		t.Fatalf("partition had no effect: %+v", duringSplit)
	}
	if res.Rounds <= 8 {
		t.Fatalf("converged inside the partition window: %d rounds", res.Rounds)
	}
}

func TestFleetConvergesUnderLoss(t *testing.T) {
	res, err := Run(Config{
		Nodes: 48, Producers: 4, Keys: 2, UpdatesPerKey: 5,
		Seed: 7, LossProb: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("anti-entropy did not absorb 20%% loss: %d/%d after %d rounds",
			res.ConvergedNodes, res.Nodes, res.Rounds)
	}
}

func TestFleetTelemetryTotals(t *testing.T) {
	reg := telemetry.NewRegistry()
	res, err := Run(Config{Nodes: 32, Producers: 2, Keys: 2, UpdatesPerKey: 3, Seed: 9, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	sent, ok := snap["kalis_collective_bytes_sent_total"]
	if !ok {
		t.Fatal("kalis_collective_bytes_sent_total not registered")
	}
	if v, _ := sent.Value.(uint64); v != res.BytesSent {
		t.Fatalf("telemetry bytes %v != result bytes %d", sent.Value, res.BytesSent)
	}
	if v, _ := snap["kalis_collective_digests_sent_total"].Value.(uint64); v == 0 {
		t.Fatal("digest counter never incremented")
	}
}

func TestFleetRejectsTinyFleet(t *testing.T) {
	if _, err := Run(Config{Nodes: 1}); err == nil {
		t.Fatal("1-node fleet accepted")
	}
}
