// Package fleet drives the collective gossip layer at fleet scale:
// hundreds to tens of thousands of simulated Kalis nodes on an
// in-memory hub, exchanging anti-entropy digests over a sparse
// ring-plus-chords overlay while producer nodes churn collective
// knowggets. It measures convergence (rounds until every node holds
// every producer's final knowledge) and bytes on the wire, optionally
// under injected link loss and network partitions — the experiment
// behind the "Fleet scaling" tables in EXPERIMENTS.md.
package fleet

import (
	"fmt"
	mrand "math/rand"
	"strconv"

	"kalis/internal/core/collective"
	"kalis/internal/core/knowledge"
	"kalis/internal/fault"
	"kalis/internal/siem"
	"kalis/internal/telemetry"
)

// Config parameterizes one fleet run.
type Config struct {
	// Nodes is the fleet size.
	Nodes int
	// Producers is how many nodes publish collective knowggets
	// (default: Nodes/64, at least 4, at most 16).
	Producers int
	// Keys is how many distinct collective keys each producer owns
	// (default 4).
	Keys int
	// UpdatesPerKey is the churn factor: how many times each key is
	// rewritten over the run (default 30). Only each key's final value
	// must reach the fleet — the gap between updates published and
	// values that must arrive is exactly what delta gossip exploits and
	// snapshot push squanders.
	UpdatesPerKey int
	// ChurnRounds spreads the updates over this many gossip ticks
	// (default 3). Knowledge churns faster than gossip ticks — traffic
	// statistics update per second, gossip per beacon interval — so
	// several rewrites of a key coalesce into one dirty entry per tick,
	// while the legacy baseline pushes every single rewrite.
	ChurnRounds int
	// Degree is each node's overlay peer count, ring + random chords
	// (default 6). Ignored in legacy mode, which uses the full mesh the
	// pre-gossip protocol assumed.
	Degree int
	// Fanout caps peers contacted per gossip round (default 3).
	Fanout int
	// LegacyPush selects the pre-gossip snapshot-push baseline.
	LegacyPush bool
	// Seed feeds topology, fan-out and fault randomness.
	Seed int64
	// MaxRounds bounds the run (default: generous multiple of log2 N).
	MaxRounds int
	// LossProb drops each datagram with this probability on every link.
	LossProb float64
	// PartitionRounds splits the fleet in half for that many initial
	// rounds, then heals — the partition drill.
	PartitionRounds int
	// Registry, when set, receives the kalis_collective_* counters
	// (shared by every node in the fleet, so scraped values are fleet
	// totals — the hierarchical aggregation a SIEM would do).
	Registry *telemetry.Registry
}

// Sample is one point of the convergence curve.
type Sample struct {
	Round     int
	Converged int
	Bytes     uint64
}

// Result summarizes one fleet run.
type Result struct {
	Nodes, Producers, Keys, Updates int
	// Rounds is how many gossip rounds ran before full convergence (or
	// MaxRounds if the fleet never converged).
	Rounds    int
	Converged bool
	// ConvergedNodes counts nodes holding every final value at the end.
	ConvergedNodes int
	// BytesSent is total sealed bytes handed to transports fleet-wide.
	BytesSent uint64
	// Entries counts knowgget entries shipped in delta sections.
	Entries int
	// Digests and Deltas count protocol messages sent fleet-wide.
	Digests, Deltas int
	// Curve samples converged-node count and cumulative bytes per round.
	Curve []Sample
	// Fleet is the SIEM-side aggregation over final node digests.
	Fleet siem.FleetSummary
}

func (c *Config) fill() {
	if c.Producers == 0 {
		c.Producers = max(4, min(16, c.Nodes/64))
	}
	if c.Producers > c.Nodes {
		c.Producers = c.Nodes
	}
	if c.Keys == 0 {
		c.Keys = 4
	}
	if c.UpdatesPerKey == 0 {
		c.UpdatesPerKey = 30
	}
	if c.ChurnRounds == 0 {
		c.ChurnRounds = 3
	}
	if c.ChurnRounds > c.UpdatesPerKey {
		c.ChurnRounds = c.UpdatesPerKey
	}
	if c.Degree == 0 {
		c.Degree = 6
	}
	if c.Fanout == 0 {
		c.Fanout = 3
	}
	if c.MaxRounds == 0 {
		log2 := 0
		for n := c.Nodes; n > 1; n >>= 1 {
			log2++
		}
		c.MaxRounds = c.ChurnRounds + 10*log2 + 2*c.PartitionRounds + 20
	}
}

// Run executes one fleet simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("fleet: need at least 2 nodes, got %d", cfg.Nodes)
	}
	cfg.fill()
	rng := mrand.New(mrand.NewSource(cfg.Seed + 1))

	hub := collective.NewHub()
	kbs := make([]*knowledge.Base, cfg.Nodes)
	nodes := make([]*collective.Node, cfg.Nodes)
	var fts []*fault.Transport
	faulty := cfg.LossProb > 0 || cfg.PartitionRounds > 0
	var inj *fault.Injector
	if faulty {
		inj = fault.New(cfg.Seed + 2)
		fts = make([]*fault.Transport, cfg.Nodes)
	}
	var met collective.Metrics
	if cfg.Registry != nil {
		met = fleetMetrics(cfg.Registry)
	}
	for i := range nodes {
		kbs[i] = knowledge.NewBase(nodeID(i))
		var tr collective.Transport = hub.Endpoint(nodeAddr(i))
		if faulty {
			fts[i] = inj.WrapTransport(tr, fault.LinkFaults{Drop: cfg.LossProb})
			tr = fts[i]
		}
		n, err := collective.NewNode(kbs[i], tr, "fleet-secret")
		if err != nil {
			return nil, err
		}
		n.SetRetry(0, 0)
		n.SetMaxPeers(0)
		n.SetFanout(cfg.Fanout)
		n.SetGossipSeed(cfg.Seed + int64(i)*7919)
		n.SetLegacyPush(cfg.LegacyPush)
		if cfg.Registry != nil {
			n.SetMetrics(met)
		}
		nodes[i] = n
	}

	// Overlay. Gossip rides a sparse ring-plus-chords graph (epidemic
	// dissemination needs only connectivity plus a few shortcuts); the
	// legacy push baseline gets the full mesh its protocol was built
	// around — per-update push has no relay, so a sparse overlay would
	// never deliver beyond direct peers.
	topo := make([][]int, cfg.Nodes)
	addEdge := func(a, b int) {
		topo[a] = append(topo[a], b)
		topo[b] = append(topo[b], a)
		nodes[a].AddPeer(nodeID(b), nodeAddr(b))
		nodes[b].AddPeer(nodeID(a), nodeAddr(a))
	}
	if cfg.LegacyPush {
		for i := 0; i < cfg.Nodes; i++ {
			for j := i + 1; j < cfg.Nodes; j++ {
				addEdge(i, j)
			}
		}
	} else {
		seen := make(map[[2]int]bool)
		edge := func(a, b int) [2]int {
			if a > b {
				a, b = b, a
			}
			return [2]int{a, b}
		}
		for i := 0; i < cfg.Nodes; i++ {
			j := (i + 1) % cfg.Nodes
			if e := edge(i, j); !seen[e] {
				seen[e] = true
				addEdge(i, j)
			}
		}
		for i := 0; i < cfg.Nodes; i++ {
			for tries := 0; len(topo[i]) < cfg.Degree && tries < 100; tries++ {
				j := rng.Intn(cfg.Nodes)
				if j == i || seen[edge(i, j)] || len(topo[j]) >= cfg.Degree+2 {
					continue
				}
				seen[edge(i, j)] = true
				addEdge(i, j)
			}
		}
	}

	if cfg.PartitionRounds > 0 {
		partition(cfg, fts, topo)
	}

	// Workload + rounds. Each churn burst rewrites every producer key,
	// then one gossip round runs fleet-wide; after the churn ends,
	// rounds continue until convergence or the round budget runs out.
	res := &Result{Nodes: cfg.Nodes, Producers: cfg.Producers, Keys: cfg.Keys, Updates: cfg.UpdatesPerKey}
	final := make(map[string]string, cfg.Producers*cfg.Keys)
	written := 0 // updates issued so far, per key
	round := 0
	for round < cfg.MaxRounds {
		round++
		if round <= cfg.ChurnRounds {
			// This tick's burst: an equal share of the per-key update
			// budget (earlier bursts absorb the remainder).
			burst := cfg.UpdatesPerKey / cfg.ChurnRounds
			if round <= cfg.UpdatesPerKey%cfg.ChurnRounds {
				burst++
			}
			for u := 0; u < burst; u++ {
				written++
				v := strconv.Itoa(written)
				for p := 0; p < cfg.Producers; p++ {
					for k := 0; k < cfg.Keys; k++ {
						label := "FleetKey" + strconv.Itoa(k)
						kbs[p].PutCollective(label, "", v)
						final[nodeID(p)+"$"+label] = v
					}
				}
			}
		}
		if cfg.PartitionRounds > 0 && round == cfg.PartitionRounds+1 {
			heal(fts)
		}
		if !cfg.LegacyPush {
			// Legacy push already transmitted synchronously at Put time;
			// only the gossip protocol has per-round work to do.
			for _, n := range nodes {
				n.Gossip()
			}
		}
		conv := converged(kbs, final)
		res.Curve = append(res.Curve, Sample{Round: round, Converged: conv, Bytes: bytesSent(nodes)})
		if conv == cfg.Nodes && round >= cfg.ChurnRounds {
			break
		}
	}

	res.Rounds = round
	res.ConvergedNodes = converged(kbs, final)
	res.Converged = res.ConvergedNodes == cfg.Nodes
	res.BytesSent = bytesSent(nodes)
	for _, n := range nodes {
		sent, _, _ := n.Stats()
		res.Entries += sent
		dg, _, dl, _ := n.GossipStats()
		res.Digests += dg
		res.Deltas += dl
	}
	agg := siem.NewFleetAggregator()
	for i, kb := range kbs {
		agg.ReportDigest(nodeID(i), kb.Digest())
	}
	res.Fleet = agg.Summary()
	return res, nil
}

// partition blocks every overlay edge crossing the half/half cut, on
// both wrapped sides.
func partition(cfg Config, fts []*fault.Transport, topo [][]int) {
	half := cfg.Nodes / 2
	side := func(i int) bool { return i < half }
	for i, peers := range topo {
		for _, j := range peers {
			if side(i) != side(j) {
				fts[i].Partition(nodeAddr(j))
			}
		}
	}
}

func heal(fts []*fault.Transport) {
	for _, ft := range fts {
		ft.Heal()
	}
}

// converged counts nodes holding the final value of every producer key.
func converged(kbs []*knowledge.Base, final map[string]string) int {
	count := 0
	for _, kb := range kbs {
		ok := true
		for key, want := range final {
			if got, present := kb.Get(key); !present || got.Value != want {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

func bytesSent(nodes []*collective.Node) uint64 {
	var total uint64
	for _, n := range nodes {
		sent, _ := n.WireStats()
		total += sent
	}
	return total
}

func nodeID(i int) string   { return fmt.Sprintf("N%05d", i) }
func nodeAddr(i int) string { return fmt.Sprintf("fleet:%05d", i) }

// fleetMetrics registers the kalis_collective_* counter family shared
// by every node in the fleet, so a scrape reads fleet totals.
func fleetMetrics(reg *telemetry.Registry) collective.Metrics {
	return collective.Metrics{
		SyncSent:        reg.Counter("kalis_collective_sync_sent_total", "knowgget entries sent in delta sections, fleet-wide"),
		SyncReceived:    reg.Counter("kalis_collective_sync_received_total", "knowgget entries accepted from peers, fleet-wide"),
		SyncRejected:    reg.Counter("kalis_collective_sync_rejected_total", "knowgget entries refused (stale version, ownership), fleet-wide"),
		Peers:           reg.Gauge("kalis_collective_peers", "peer-table size (last reporting node)"),
		Evictions:       reg.Counter("kalis_collective_peer_evictions_total", "peers evicted fleet-wide"),
		SendRetries:     reg.Counter("kalis_collective_send_retries_total", "datagram retransmissions fleet-wide"),
		Malformed:       reg.Counter("kalis_collective_malformed_total", "undecryptable or unparseable datagrams fleet-wide"),
		DigestsSent:     reg.Counter("kalis_collective_digests_sent_total", "gossip digests sent fleet-wide"),
		DigestsReceived: reg.Counter("kalis_collective_digests_received_total", "gossip digests received fleet-wide"),
		DeltasSent:      reg.Counter("kalis_collective_deltas_sent_total", "delta messages sent fleet-wide"),
		DeltasReceived:  reg.Counter("kalis_collective_deltas_received_total", "delta messages received fleet-wide"),
		BytesSent:       reg.Counter("kalis_collective_bytes_sent_total", "sealed bytes sent fleet-wide"),
		BytesReceived:   reg.Counter("kalis_collective_bytes_received_total", "sealed bytes received fleet-wide"),
	}
}
