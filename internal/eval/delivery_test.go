package eval

import (
	"strings"
	"testing"
)

func TestDeliveryImpact(t *testing.T) {
	res, err := DeliveryImpact(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	baseWith, baseWithout := res.BaselineDelivery()
	finalWith, finalWithout := res.FinalDelivery()
	t.Logf("baseline %.2f/%.2f final %.2f/%.2f isolated after %v (%d alerts)",
		baseWith, baseWithout, finalWith, finalWithout, res.IsolatedAt, res.Alerts)

	if baseWith < 0.9 || baseWithout < 0.9 {
		t.Errorf("baseline delivery degraded: %.2f / %.2f", baseWith, baseWithout)
	}
	// The sinkhole must actually hurt: some attack-phase bucket drops
	// below half in both runs.
	dipped := false
	for _, v := range res.WithoutResponse[res.AttackStart:] {
		if v < 0.5 {
			dipped = true
		}
	}
	if !dipped {
		t.Error("sinkhole never degraded delivery")
	}
	// The paper's claim: the response restores the network; without it
	// the degradation persists.
	if finalWith < 0.9 {
		t.Errorf("defended network did not recover: %.2f", finalWith)
	}
	if finalWithout > 0.5 {
		t.Errorf("undefended network recovered by itself: %.2f", finalWithout)
	}
	if res.IsolatedAt == 0 || res.Alerts == 0 {
		t.Error("no isolation/alerts in the defended run")
	}

	var sb strings.Builder
	WriteDelivery(&sb, res)
	for _, want := range []string{"attack begins", "isolated after", "█"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
