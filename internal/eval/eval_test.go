package eval

import (
	"testing"
)

// runScenario is a test helper executing a scenario with few episodes.
func runScenario(t *testing.T, sc Scenario, f Factory, episodes int) Result {
	t.Helper()
	res, err := Execute(sc, f, 42, episodes)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return res
}

func TestKalisPerScenario(t *testing.T) {
	for _, sc := range AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := runScenario(t, sc, NewKalis("K1"), 8)
			t.Logf("%s: detected %d/%d correct %d fp %d alerts %d",
				sc.Name, res.Score.Detected, res.Score.Instances,
				res.Score.Correct, res.Score.FalsePositives, res.Alerts)
			if res.Score.DetectionRate() < 0.75 {
				t.Errorf("detection rate = %.2f, want >= 0.75", res.Score.DetectionRate())
			}
			if res.Score.Accuracy() < 0.99 {
				t.Errorf("accuracy = %.2f, want 1.0", res.Score.Accuracy())
			}
			if res.Score.FalsePositives > 2 {
				t.Errorf("false positives = %d", res.Score.FalsePositives)
			}
		})
	}
}
