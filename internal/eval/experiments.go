package eval

import (
	"fmt"
	"sort"
	"time"

	"kalis/internal/attack"
	"kalis/internal/attacks"
	"kalis/internal/core"
	"kalis/internal/core/collective"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/devices"
	"kalis/internal/metrics"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// Options configures experiment runs.
type Options struct {
	// Seed makes runs reproducible.
	Seed int64
	// Episodes overrides the per-scenario symptom-instance count
	// (0 = the scenario default of 50).
	Episodes int
	// SnortCommunityRules sizes the Snort-like community ruleset
	// (0 = default 3000).
	SnortCommunityRules int
}

// Table2Result reproduces Table II: average effectiveness and
// performance across the two §VI-B scenarios for each system.
type Table2Result struct {
	// PerScenario holds one Result per (scenario, system).
	PerScenario []Result
	// Rows aggregates per system, in {Traditional, Snort, Kalis}
	// order.
	Rows []Table2Row
}

// Table2Row is one aggregated column of Table II.
type Table2Row struct {
	System        string
	DetectionRate float64
	Accuracy      float64
	CPUPercent    float64
	RAMKB         float64
	// WorkPerPacket is the platform-independent cost measure: module
	// invocations (Kalis/traditional) or rule evaluations (Snort) per
	// processed packet.
	WorkPerPacket float64
	// Applicable counts the scenarios the system could monitor at all
	// (Snort cannot see 802.15.4; the paper reports it on the
	// scenarios it ran).
	Applicable int
}

// Table2 runs the §VI-B evaluation: the ICMP-flood-on-single-hop and
// replication-static-vs-mobile scenarios through the traditional IDS,
// the Snort-like IDS, and Kalis.
func Table2(opts Options) (*Table2Result, error) {
	scenarios := []Scenario{icmpFloodScenario(), replicationScenario()}
	out := &Table2Result{}
	type agg struct {
		score         metrics.Score
		cpu, ram      float64
		work, packets float64
		applicable    int
	}
	aggs := map[string]*agg{}
	order := []string{"Traditional IDS", "Snort", "Kalis"}
	for _, name := range order {
		aggs[name] = &agg{}
	}

	for si, sc := range scenarios {
		seed := opts.Seed + int64(si)
		results := make([]Result, 0, 3)
		tradRes, err := ExecuteTraditional(sc, seed, opts.Episodes)
		if err != nil {
			return nil, err
		}
		results = append(results, tradRes)
		snortRes, err := Execute(sc, NewSnort(opts.SnortCommunityRules), seed, opts.Episodes)
		if err != nil {
			return nil, err
		}
		results = append(results, snortRes)
		kalisRes, err := Execute(sc, NewKalis("K1"), seed, opts.Episodes)
		if err != nil {
			return nil, err
		}
		results = append(results, kalisRes)

		for _, res := range results {
			out.PerScenario = append(out.PerScenario, res)
			a := aggs[res.System]
			a.cpu += res.Resources.CPUPercent()
			a.ram += float64(res.Resources.HeapBytes) / 1024
			a.work += float64(res.Resources.WorkUnits)
			a.packets += float64(res.Resources.Packets)
			// Snort cannot monitor 802.15.4 scenarios at all: its
			// effectiveness is averaged over the scenarios it ran,
			// as the paper does.
			if res.System == "Snort" && sc.Medium != "wifi" {
				continue
			}
			a.applicable++
			a.score = a.score.Add(res.Score)
		}
	}
	for _, name := range order {
		a := aggs[name]
		row := Table2Row{
			System:        name,
			DetectionRate: a.score.DetectionRate(),
			Accuracy:      a.score.Accuracy(),
			CPUPercent:    a.cpu / float64(len(scenarios)),
			RAMKB:         a.ram / float64(len(scenarios)),
			Applicable:    a.applicable,
		}
		if a.packets > 0 {
			row.WorkPerPacket = a.work / a.packets
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fig8Row is one scenario group of Figure 8.
type Fig8Row struct {
	Scenario      string
	KalisDR       float64
	KalisAcc      float64
	TraditionalDR float64
	TradAcc       float64
}

// Fig8Result reproduces Figure 8: Kalis vs the traditional IDS across
// all attack scenarios.
type Fig8Result struct {
	Rows []Fig8Row
	// Averages across all scenarios (the paper's "averages" series).
	KalisAvgDR, KalisAvgAcc, TradAvgDR, TradAvgAcc float64
}

// Fig8 runs the breadth evaluation (§VI-E) over the eight attack
// scenarios.
func Fig8(opts Options) (*Fig8Result, error) {
	out := &Fig8Result{}
	var kalisAgg, tradAgg metrics.Score
	for si, sc := range Scenarios() {
		seed := opts.Seed + int64(si)*101
		kalisRes, err := Execute(sc, NewKalis("K1"), seed, opts.Episodes)
		if err != nil {
			return nil, err
		}
		tradRes, err := ExecuteTraditional(sc, seed, opts.Episodes)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig8Row{
			Scenario:      sc.Name,
			KalisDR:       kalisRes.Score.DetectionRate(),
			KalisAcc:      kalisRes.Score.Accuracy(),
			TraditionalDR: tradRes.Score.DetectionRate(),
			TradAcc:       tradRes.Score.Accuracy(),
		})
		kalisAgg = kalisAgg.Add(kalisRes.Score)
		tradAgg = tradAgg.Add(tradRes.Score)
	}
	out.KalisAvgDR = kalisAgg.DetectionRate()
	out.KalisAvgAcc = kalisAgg.Accuracy()
	out.TradAvgDR = tradAgg.DetectionRate()
	out.TradAvgAcc = tradAgg.Accuracy()
	return out, nil
}

// ReactivityResult reproduces §VI-C: Kalis starts with no detection
// modules active and no a-priori knowledge, and must still catch the
// selective-forwarding attacks "from the very beginning".
type ReactivityResult struct {
	// TopologyKnownAfter is when Multihop knowledge appeared, relative
	// to simulation start.
	TopologyKnownAfter time.Duration
	// ModuleActiveAfter is when the selective-forwarding module
	// activated.
	ModuleActiveAfter time.Duration
	// FirstAlertAfterEpisode is the latency from the first episode's
	// start to the first selective-forwarding alert.
	FirstAlertAfterEpisode time.Duration
	// DetectionRate across all episodes.
	DetectionRate float64
	// InitiallyActiveDetectionModules must be zero.
	InitiallyActiveDetectionModules int
}

// Reactivity runs the §VI-C experiment.
func Reactivity(opts Options) (*ReactivityResult, error) {
	sc := selectiveForwardingScenario()
	episodes := opts.Episodes
	if episodes <= 0 {
		episodes = 10
	}
	run := sc.Build(opts.Seed, episodes)

	node, err := core.New(core.Config{
		NodeID:          "K1",
		KnowledgeDriven: true,
		WindowSize:      2048,
		InstallAll:      true,
	})
	if err != nil {
		return nil, err
	}
	out := &ReactivityResult{}
	// No detection module may be active before any traffic is seen.
	for _, name := range node.ActiveModules() {
		if name != "TrafficStatsModule" && name != "TopologyDiscoveryModule" && name != "MobilityAwarenessModule" {
			out.InitiallyActiveDetectionModules++
		}
	}
	start := run.Sim.Now()
	var topoAt, activeAt time.Time
	node.OnKnowledge(func(kg knowledge.Knowgget) {
		if kg.Label == knowledge.LabelMultihop && kg.Value == "true" && topoAt.IsZero() {
			topoAt = run.Sim.Now()
		}
	})
	node.KB().Subscribe(knowledge.LabelMultihop, func(knowledge.Knowgget) {
		if activeAt.IsZero() {
			for _, name := range node.ActiveModules() {
				if name == "SelectiveForwardingModule" {
					activeAt = run.Sim.Now()
				}
			}
		}
	})
	run.Sniffer.Subscribe(node.HandleCapture)
	run.Sim.Run(run.End)

	ids := &kalisIDS{label: "Kalis", node: node}
	attrs := ids.Attributions()
	score := metrics.ScoreAlerts(run.Instances, attrs, opts.Seed)
	out.DetectionRate = score.DetectionRate()
	if !topoAt.IsZero() {
		out.TopologyKnownAfter = topoAt.Sub(start)
	}
	if !activeAt.IsZero() {
		out.ModuleActiveAfter = activeAt.Sub(start)
	}
	if first, ok := FirstDetection(attrs, attack.SelectiveForwarding); ok {
		out.FirstAlertAfterEpisode = first.Sub(run.Instances[0].Start)
	}
	ids.Close()
	return out, nil
}

// WormholeResult reproduces §VI-D: two Kalis nodes monitoring two
// network portions identify a wormhole only by sharing knowledge.
type WormholeResult struct {
	// WithCollective reports what each node concluded when knowledge
	// sharing was enabled.
	WithWormholeAlerts  int // wormhole alerts across both nodes
	WithBlackholeAlerts int
	WithDetectionRate   float64
	WithAccuracy        float64
	// WithoutCollective: same run, sharing disabled.
	WithoutWormholeAlerts  int
	WithoutBlackholeAlerts int
	WithoutDetectionRate   float64
	WithoutAccuracy        float64
}

// wormholeRun executes the two-portion wormhole scenario, optionally
// with collective knowledge.
func wormholeRun(seed int64, episodes int, collectiveOn bool) (insts []attacks.Instance, alerts []module.Alert, attrs []metrics.Attribution, err error) {
	sim := netsim.New(seed)

	buildPortion := func(baseAddr uint16, originX float64, prefix string, count int) []*devices.Mote {
		motes := make([]*devices.Mote, 0, count)
		for i := 0; i < count; i++ {
			addr := baseAddr + uint16(i)
			n := sim.AddNode(&netsim.Node{
				Name:   fmt.Sprintf("%s-%d", prefix, i),
				Addr16: addr,
				Pos:    netsim.Position{X: originX + float64(i)*22},
			})
			parent := addr - 1
			if i == 0 {
				parent = addr
			}
			m := devices.NewMote(n, parent, i == 0)
			if i > 0 {
				m.ETX = uint16(i * 10)
			}
			m.Start(sim.Now().Add(time.Second))
			motes = append(motes, m)
		}
		return motes
	}
	portionA := buildPortion(1, 0, "a", 4) // addrs 1..4
	buildPortion(6, 300, "b", 3)           // addrs 6..8 (portion B)
	b2 := sim.AddNode(&netsim.Node{Name: "b2", Addr16: 9, Pos: netsim.Position{X: 330, Y: 6}})

	snifA := sim.AddSniffer("kalisA", netsim.Position{X: 33, Y: 15}, packet.MediumIEEE802154)
	snifB := sim.AddSniffer("kalisB", netsim.Position{X: 322, Y: 15}, packet.MediumIEEE802154)

	newNode := func(id string) (*core.Kalis, error) {
		return core.New(core.Config{NodeID: id, KnowledgeDriven: true, WindowSize: 2048, InstallAll: true})
	}
	nodeA, err := newNode("KA")
	if err != nil {
		return nil, nil, nil, err
	}
	nodeB, err := newNode("KB")
	if err != nil {
		return nil, nil, nil, err
	}
	defer func() {
		_ = nodeA.Close()
		_ = nodeB.Close()
	}()

	if collectiveOn {
		hub := collective.NewHub()
		if err := nodeA.EnableCollective(hub.Endpoint("A"), "kalis-secret"); err != nil {
			return nil, nil, nil, err
		}
		if err := nodeB.EnableCollective(hub.Endpoint("B"), "kalis-secret"); err != nil {
			return nil, nil, nil, err
		}
		sim.Every(sim.Now().Add(2*time.Second), 10*time.Second, func() bool {
			nodeA.Collective().Beacon()
			nodeB.Collective().Beacon()
			return true
		})
	}
	snifA.Subscribe(nodeA.HandleCapture)
	snifB.Subscribe(nodeB.HandleCapture)

	sched := attacks.Schedule{
		Start:    sim.Now().Add(60 * time.Second),
		Count:    episodes,
		Every:    75 * time.Second,
		Duration: 30 * time.Second,
	}
	inj := &attacks.Wormhole{B1: portionA[2], B2: b2, B2Parent: 7}
	insts = inj.Inject(sim, sched)
	sim.Run(insts[len(insts)-1].End.Add(30 * time.Second))

	alerts = append(nodeA.Alerts(), nodeB.Alerts()...)
	for _, a := range alerts {
		attrs = append(attrs, metrics.Attribution{
			Time: a.Time, Attack: a.Attack, Victim: a.Victim,
			Suspects: a.Suspects, Confidence: a.Confidence,
		})
	}
	return insts, alerts, attrs, nil
}

// KnowledgeSharing runs the §VI-D experiment with and without
// collective knowledge.
func KnowledgeSharing(opts Options) (*WormholeResult, error) {
	episodes := opts.Episodes
	if episodes <= 0 {
		episodes = 10
	}
	out := &WormholeResult{}

	insts, alerts, attrs, err := wormholeRun(opts.Seed, episodes, true)
	if err != nil {
		return nil, err
	}
	score := metrics.ScoreAlerts(insts, attrs, opts.Seed)
	out.WithDetectionRate = score.DetectionRate()
	out.WithAccuracy = score.Accuracy()
	for _, a := range alerts {
		switch a.Attack {
		case attack.Wormhole:
			out.WithWormholeAlerts++
		case attack.Blackhole:
			out.WithBlackholeAlerts++
		}
	}

	insts, alerts, attrs, err = wormholeRun(opts.Seed, episodes, false)
	if err != nil {
		return nil, err
	}
	score = metrics.ScoreAlerts(insts, attrs, opts.Seed)
	out.WithoutDetectionRate = score.DetectionRate()
	out.WithoutAccuracy = score.Accuracy()
	for _, a := range alerts {
		switch a.Attack {
		case attack.Wormhole:
			out.WithoutWormholeAlerts++
		case attack.Blackhole:
			out.WithoutBlackholeAlerts++
		}
	}
	return out, nil
}

// ModuleOverheadRow is one module's cost within a scenario, scraped
// from the node's kalis_module_packet_seconds histogram after the
// replay: how often the module ran, its mean per-invocation latency,
// and its share of the total time spent inside detection modules.
type ModuleOverheadRow struct {
	Module      string
	Invocations uint64
	MeanMicros  float64
	Share       float64
}

// ModuleOverheadScenario is the per-module cost breakdown for one
// Fig. 8 scenario.
type ModuleOverheadScenario struct {
	Scenario string
	// Packets the node processed (kalis_packets_total).
	Packets uint64
	// TotalMicrosPerPacket is the summed module time divided by the
	// packet count: the aggregate detection overhead per packet.
	TotalMicrosPerPacket float64
	Rows                 []ModuleOverheadRow
}

// ModuleOverheadResult holds the per-scenario module overhead tables.
type ModuleOverheadResult struct {
	Scenarios []ModuleOverheadScenario
}

// ModuleOverhead replays every Fig. 8 scenario through a fresh Kalis
// node and reads the per-module latency histograms off the node's
// telemetry registry before closing it. Unlike Table II this measures
// where the time goes, not how much the whole system costs.
func ModuleOverhead(opts Options) (*ModuleOverheadResult, error) {
	out := &ModuleOverheadResult{}
	for si, sc := range Scenarios() {
		seed := opts.Seed + int64(si)*101
		episodes := opts.Episodes
		if episodes <= 0 {
			episodes = sc.Episodes
		}
		node, err := core.New(core.Config{
			NodeID:          "K1",
			KnowledgeDriven: true,
			WindowSize:      2048,
			InstallAll:      true,
		})
		if err != nil {
			return nil, err
		}
		run := sc.Build(seed, episodes)
		run.Sniffer.Subscribe(node.HandleCapture)
		run.Sim.Run(run.End)

		snap := node.Telemetry().Snapshot()
		if err := node.Close(); err != nil {
			return nil, err
		}

		scen := ModuleOverheadScenario{Scenario: sc.Name}
		if ms, ok := snap["kalis_packets_total"]; ok {
			if n, ok := ms.Value.(uint64); ok {
				scen.Packets = n
			}
		}
		var totalSeconds float64
		if ms, ok := snap["kalis_module_packet_seconds"]; ok {
			byModule, _ := ms.Value.(map[string]interface{})
			for name, v := range byModule {
				h, ok := v.(telemetry.HistogramSnapshot)
				if !ok || h.Count == 0 {
					continue
				}
				totalSeconds += h.SumSeconds
				scen.Rows = append(scen.Rows, ModuleOverheadRow{
					Module:      name,
					Invocations: h.Count,
					MeanMicros:  h.SumSeconds / float64(h.Count) * 1e6,
				})
			}
		}
		if totalSeconds > 0 {
			for i := range scen.Rows {
				r := &scen.Rows[i]
				r.Share = r.MeanMicros * float64(r.Invocations) / 1e6 / totalSeconds
			}
		}
		if scen.Packets > 0 {
			scen.TotalMicrosPerPacket = totalSeconds / float64(scen.Packets) * 1e6
		}
		sort.Slice(scen.Rows, func(i, j int) bool {
			if scen.Rows[i].Share != scen.Rows[j].Share {
				return scen.Rows[i].Share > scen.Rows[j].Share
			}
			return scen.Rows[i].Module < scen.Rows[j].Module
		})
		out.Scenarios = append(out.Scenarios, scen)
	}
	return out, nil
}

// CountermeasureResult reproduces the §VI-B1 response-action
// comparison: Kalis "correctly revokes only the attacking node, while
// the traditional IDS ... disconnect[s] the entire network".
type CountermeasureResult struct {
	Kalis       metrics.Countermeasure
	Traditional metrics.Countermeasure
}

// Countermeasure runs the ICMP-flood scenario with the simple
// revocation countermeasure wired to each system's alerts.
func Countermeasure(opts Options) (*CountermeasureResult, error) {
	episodes := opts.Episodes
	if episodes <= 0 {
		episodes = 5
	}
	runOne := func(factory Factory) (metrics.Countermeasure, error) {
		sc := icmpFloodScenario()
		run := sc.Build(opts.Seed, episodes)
		ids, err := factory(opts.Seed)
		if err != nil {
			return metrics.Countermeasure{}, err
		}
		defer ids.Close()
		var revoked []packet.NodeID
		seen := map[packet.NodeID]bool{}
		if sink, ok := ids.(AlertSink); ok {
			sink.OnAlert(func(a module.Alert) {
				for _, s := range a.Suspects {
					if seen[s] {
						continue
					}
					seen[s] = true
					if n := run.Nodes[s]; n != nil {
						n.Revoke()
						revoked = append(revoked, s)
					}
				}
			})
		}
		run.Sniffer.Subscribe(ids.HandleCapture)
		run.Sim.Run(run.End)
		return metrics.ScoreCountermeasure(revoked, run.Attackers, run.Victim), nil
	}

	kalisCM, err := runOne(NewKalis("K1"))
	if err != nil {
		return nil, err
	}
	tradCM, err := runOne(NewTraditional())
	if err != nil {
		return nil, err
	}
	return &CountermeasureResult{Kalis: kalisCM, Traditional: tradCM}, nil
}
