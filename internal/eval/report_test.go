package eval

import (
	"strings"
	"testing"
	"time"

	"kalis/internal/metrics"
)

func TestWriteTable2(t *testing.T) {
	res := &Table2Result{
		Rows: []Table2Row{
			{System: "Traditional IDS", DetectionRate: 0.83, Accuracy: 0.77, CPUPercent: 0.003, RAMKB: 1100, WorkPerPacket: 13.2, Applicable: 2},
			{System: "Snort", DetectionRate: 1, Accuracy: 0.42, CPUPercent: 0.014, RAMKB: 1200, WorkPerPacket: 563, Applicable: 1},
			{System: "Kalis", DetectionRate: 1, Accuracy: 1, CPUPercent: 0.003, RAMKB: 1100, WorkPerPacket: 9.1, Applicable: 2},
		},
		PerScenario: []Result{{
			System: "Kalis", Scenario: "icmp-flood/single-hop",
			Score:     metrics.Score{Instances: 50, Detected: 50, Correct: 50},
			Resources: metrics.Resources{CPUTime: 16 * time.Millisecond, HeapBytes: 1 << 20},
		}},
	}
	var sb strings.Builder
	WriteTable2(&sb, res)
	out := sb.String()
	for _, want := range []string{"Detection Rate", "Accuracy", "CPU usage", "RAM usage", "100%", "Paper reference"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

func TestWriteFig8(t *testing.T) {
	res := &Fig8Result{
		Rows: []Fig8Row{
			{Scenario: "icmp-flood/single-hop", KalisDR: 1, KalisAcc: 1, TraditionalDR: 1, TradAcc: 0.42},
		},
		KalisAvgDR: 1, KalisAvgAcc: 1, TradAvgDR: 0.94, TradAvgAcc: 0.83,
	}
	var sb strings.Builder
	WriteFig8(&sb, res)
	out := sb.String()
	for _, want := range []string{"icmp-flood/single-hop", "AVERAGES", "█", "100.0%", "42.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 8 output missing %q", want)
		}
	}
}

func TestWriteReactivityAndOthers(t *testing.T) {
	var sb strings.Builder
	WriteReactivity(&sb, &ReactivityResult{
		TopologyKnownAfter:     time.Second,
		ModuleActiveAfter:      time.Second,
		FirstAlertAfterEpisode: 13 * time.Second,
		DetectionRate:          1,
	})
	if !strings.Contains(sb.String(), "100%") || !strings.Contains(sb.String(), "13s") {
		t.Errorf("reactivity output:\n%s", sb.String())
	}

	sb.Reset()
	WriteKnowledgeSharing(&sb, &WormholeResult{
		WithWormholeAlerts: 11, WithBlackholeAlerts: 10,
		WithDetectionRate: 1, WithAccuracy: 1,
		WithoutBlackholeAlerts: 10,
	})
	if !strings.Contains(sb.String(), "wormhole alerts") {
		t.Errorf("knowledge sharing output:\n%s", sb.String())
	}

	sb.Reset()
	WriteCountermeasure(&sb, &CountermeasureResult{
		Kalis:       metrics.Countermeasure{CorrectRevocations: 1},
		Traditional: metrics.Countermeasure{Collateral: 4},
	})
	if !strings.Contains(sb.String(), "Kalis:") || !strings.Contains(sb.String(), "Traditional IDS:") {
		t.Errorf("countermeasure output:\n%s", sb.String())
	}
}

func TestScenarioByName(t *testing.T) {
	if _, ok := ScenarioByName("icmp-flood"); !ok {
		t.Error("lookup by attack name failed")
	}
	if _, ok := ScenarioByName("smurf/multi-hop"); !ok {
		t.Error("lookup by full name failed")
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Error("unknown scenario found")
	}
}

func TestSnortBlindOnWSNScenario(t *testing.T) {
	sc, _ := ScenarioByName("selective-forwarding")
	res, err := Execute(sc, NewSnort(100), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score.Detected != 0 || res.Alerts != 0 {
		t.Errorf("Snort detected on 802.15.4: %+v", res.Score)
	}
}

func TestFirstDetection(t *testing.T) {
	t1 := time.Unix(10, 0)
	t2 := time.Unix(5, 0)
	attrs := []metrics.Attribution{
		{Time: t1, Attack: "sybil"},
		{Time: t2, Attack: "sybil"},
		{Time: time.Unix(1, 0), Attack: "other"},
	}
	got, ok := FirstDetection(attrs, "sybil")
	if !ok || !got.Equal(t2) {
		t.Errorf("FirstDetection = %v ok=%v", got, ok)
	}
	if _, ok := FirstDetection(attrs, "none"); ok {
		t.Error("found nonexistent attack")
	}
}
