package eval

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable2 renders the Table II reproduction.
func WriteTable2(w io.Writer, res *Table2Result) {
	fmt.Fprintln(w, "Table II — average effectiveness and performance across the §VI-B scenarios")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	fmt.Fprintf(w, "%-18s %12s %10s %10s %12s %10s\n",
		"", "Trad. IDS", "Snort", "Kalis", "", "")
	rows := map[string]Table2Row{}
	for _, r := range res.Rows {
		rows[r.System] = r
	}
	trad, snort, kalis := rows["Traditional IDS"], rows["Snort"], rows["Kalis"]
	fmt.Fprintf(w, "%-18s %11.0f%% %9.0f%% %9.0f%%\n", "Detection Rate",
		100*trad.DetectionRate, 100*snort.DetectionRate, 100*kalis.DetectionRate)
	fmt.Fprintf(w, "%-18s %11.0f%% %9.0f%% %9.0f%%\n", "Accuracy",
		100*trad.Accuracy, 100*snort.Accuracy, 100*kalis.Accuracy)
	fmt.Fprintf(w, "%-18s %11.4f%% %9.4f%% %9.4f%%\n", "CPU usage",
		trad.CPUPercent, snort.CPUPercent, kalis.CPUPercent)
	fmt.Fprintf(w, "%-18s %12.0f %10.0f %10.0f\n", "RAM usage (KB)",
		trad.RAMKB, snort.RAMKB, kalis.RAMKB)
	fmt.Fprintf(w, "%-18s %12.1f %10.1f %10.1f\n", "Work/packet",
		trad.WorkPerPacket, snort.WorkPerPacket, kalis.WorkPerPacket)
	fmt.Fprintf(w, "\n(Snort effectiveness covers the %d scenario(s) it could monitor; it is blind\n"+
		" to 802.15.4 traffic. Paper reference: DR 48/89/91%%, Acc 75/76/100%%,\n"+
		" CPU 0.22/6.3/0.19%%, RAM 23961/101978/13979 KB.)\n", snort.Applicable)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Per-scenario detail:")
	for _, r := range res.PerScenario {
		fmt.Fprintf(w, "  %-28s %-16s DR=%5.1f%% acc=%5.1f%% fp=%d cpu=%-12v heap=%dKB\n",
			r.Scenario, r.System, 100*r.Score.DetectionRate(), 100*r.Score.Accuracy(),
			r.Score.FalsePositives, r.Resources.CPUTime, r.Resources.HeapBytes/1024)
	}
}

// WriteFig8 renders the Figure 8 reproduction as a table plus
// ASCII bars.
func WriteFig8(w io.Writer, res *Fig8Result) {
	fmt.Fprintln(w, "Figure 8 — effectiveness: Kalis vs traditional IDS across all scenarios")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	bar := func(v float64) string {
		n := int(v*20 + 0.5)
		return strings.Repeat("█", n) + strings.Repeat("·", 20-n)
	}
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-28s\n", r.Scenario)
		fmt.Fprintf(w, "  DR  Kalis %s %5.1f%%   Trad %s %5.1f%%\n",
			bar(r.KalisDR), 100*r.KalisDR, bar(r.TraditionalDR), 100*r.TraditionalDR)
		fmt.Fprintf(w, "  Acc Kalis %s %5.1f%%   Trad %s %5.1f%%\n",
			bar(r.KalisAcc), 100*r.KalisAcc, bar(r.TradAcc), 100*r.TradAcc)
	}
	fmt.Fprintln(w, strings.Repeat("-", 78))
	fmt.Fprintf(w, "%-28s\n", "AVERAGES")
	fmt.Fprintf(w, "  DR  Kalis %s %5.1f%%   Trad %s %5.1f%%\n",
		bar(res.KalisAvgDR), 100*res.KalisAvgDR, bar(res.TradAvgDR), 100*res.TradAvgDR)
	fmt.Fprintf(w, "  Acc Kalis %s %5.1f%%   Trad %s %5.1f%%\n",
		bar(res.KalisAvgAcc), 100*res.KalisAvgAcc, bar(res.TradAvgAcc), 100*res.TradAvgAcc)
}

// WriteReactivity renders the §VI-C reproduction.
func WriteReactivity(w io.Writer, res *ReactivityResult) {
	fmt.Fprintln(w, "Reactivity (§VI-C) — empty initial configuration, selective forwarding on CTP")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	fmt.Fprintf(w, "detection modules active at startup: %d\n", res.InitiallyActiveDetectionModules)
	fmt.Fprintf(w, "multi-hop topology discovered after: %v of traffic\n", res.TopologyKnownAfter)
	fmt.Fprintf(w, "selective-forwarding module active:  %v after start\n", res.ModuleActiveAfter)
	fmt.Fprintf(w, "first alert:                         %v after the first attack began\n", res.FirstAlertAfterEpisode)
	fmt.Fprintf(w, "detection rate from the beginning:   %.0f%%\n", 100*res.DetectionRate)
}

// WriteKnowledgeSharing renders the §VI-D reproduction.
func WriteKnowledgeSharing(w io.Writer, res *WormholeResult) {
	fmt.Fprintln(w, "Knowledge sharing (§VI-D) — colluding wormhole across two network portions")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	fmt.Fprintf(w, "%-34s %14s %14s\n", "", "with sharing", "without")
	fmt.Fprintf(w, "%-34s %14d %14d\n", "wormhole alerts (both Kalis nodes)",
		res.WithWormholeAlerts, res.WithoutWormholeAlerts)
	fmt.Fprintf(w, "%-34s %14d %14d\n", "blackhole alerts",
		res.WithBlackholeAlerts, res.WithoutBlackholeAlerts)
	fmt.Fprintf(w, "%-34s %13.0f%% %13.0f%%\n", "detection rate",
		100*res.WithDetectionRate, 100*res.WithoutDetectionRate)
	fmt.Fprintf(w, "%-34s %13.0f%% %13.0f%%\n", "classification accuracy",
		100*res.WithAccuracy, 100*res.WithoutAccuracy)
}

// WriteModuleOverhead renders the per-scenario module cost breakdown.
func WriteModuleOverhead(w io.Writer, res *ModuleOverheadResult) {
	fmt.Fprintln(w, "Module overhead — mean per-invocation latency from kalis_module_packet_seconds")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	for _, sc := range res.Scenarios {
		fmt.Fprintf(w, "%s (%d packets, %.2f µs of module time per packet)\n",
			sc.Scenario, sc.Packets, sc.TotalMicrosPerPacket)
		for _, r := range sc.Rows {
			fmt.Fprintf(w, "  %-28s %8d inv %9.3f µs/inv %5.1f%%\n",
				r.Module, r.Invocations, r.MeanMicros, 100*r.Share)
		}
	}
}

// WriteCountermeasure renders the §VI-B1 response-action comparison.
func WriteCountermeasure(w io.Writer, res *CountermeasureResult) {
	fmt.Fprintln(w, "Countermeasure effectiveness (§VI-B1) — revocation driven by alerts")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	fmt.Fprintf(w, "Kalis:           revoked %v — %d attacker(s), %d innocent(s), victim revoked: %v\n",
		res.Kalis.Revoked, res.Kalis.CorrectRevocations, res.Kalis.Collateral, res.Kalis.VictimRevoked)
	fmt.Fprintf(w, "Traditional IDS: revoked %v — %d attacker(s), %d innocent(s), victim revoked: %v\n",
		res.Traditional.Revoked, res.Traditional.CorrectRevocations, res.Traditional.Collateral,
		res.Traditional.VictimRevoked)
}
