package eval

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"kalis/internal/attack"
	"kalis/internal/attacks"
	"kalis/internal/devices"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// Run is one built scenario instance ready to execute.
type Run struct {
	Sim       *netsim.Sim
	Sniffer   *netsim.Sniffer
	Instances []attacks.Instance
	// End is when the simulation should stop.
	End time.Time
	// Attackers are the true malicious identities.
	Attackers map[packet.NodeID]bool
	// Victim is the primary victim identity, when meaningful.
	Victim packet.NodeID
	// Nodes maps on-air identities to simulation nodes (for the
	// revocation countermeasure).
	Nodes map[packet.NodeID]*netsim.Node
	// Mover is non-nil for scenarios with mobility phases.
	Mover *netsim.JitterMover
}

// Scenario is a reproducible attack scenario.
type Scenario struct {
	// Name is the scenario identifier used in reports.
	Name string
	// Attack is the canonical attack name injected.
	Attack string
	// Medium describes the traffic Kalis must monitor.
	Medium string
	// Episodes is the number of symptom instances (the paper uses 50).
	Episodes int
	// Build constructs the simulation for one run.
	Build func(seed int64, episodes int) *Run
}

// DefaultEpisodes is the per-scenario symptom-instance count (§VI-A:
// "we run the systems on 50 symptom instances").
const DefaultEpisodes = 50

// --- WiFi smart-home scenarios ---

// buildLAN assembles the heterogeneous smart-home WiFi segment shared
// by the IP-based scenarios: a cloud endpoint, an echo-responding
// victim host, and background devices (thermostat, bulb, camera) whose
// traffic trains the Traffic Statistics and Mobility Awareness
// baselines. Distances from the sniffer are staggered so every device
// has a distinguishable RSSI fingerprint.
type lan struct {
	sim      *netsim.Sim
	sniffer  *netsim.Sniffer
	cloudIP  netip.Addr
	victim   *netsim.Node
	attacker *netsim.Node
	nodes    map[packet.NodeID]*netsim.Node
}

func buildLAN(seed int64) *lan {
	sim := netsim.New(seed)
	sniffer := sim.AddSniffer("kalis", netsim.Position{}, packet.MediumWiFi)

	l := &lan{sim: sim, sniffer: sniffer, cloudIP: netip.MustParseAddr("34.1.2.3")}
	l.nodes = make(map[packet.NodeID]*netsim.Node)

	add := func(name, ip string, pos netsim.Position) *netsim.Node {
		n := sim.AddNode(&netsim.Node{Name: name, IP: netip.MustParseAddr(ip), Pos: pos})
		l.nodes[packet.NodeID(ip)] = n
		return n
	}

	cloud := add("cloud", "34.1.2.3", netsim.Position{X: 6})
	devices.NewCloudPeer(cloud)

	l.victim = add("victim", "192.168.1.10", netsim.Position{X: 10})
	devices.NewIPHost(l.victim)

	thermo := add("nest", "192.168.1.11", netsim.Position{Y: 14})
	th := devices.NewThermostat(thermo, l.cloudIP)
	th.Interval = 45 * time.Second
	th.Start(sim.Now().Add(2 * time.Second))

	bulbN := add("lifx", "192.168.1.12", netsim.Position{X: 18})
	bulb := devices.NewBulb(bulbN)
	bulb.Start(sim.Now().Add(3 * time.Second))

	camN := add("arlo", "192.168.1.13", netsim.Position{Y: 23})
	cam := devices.NewCamera(camN, l.cloudIP)
	cam.Start(sim.Now().Add(4 * time.Second))

	// The attacker platform doubles as a benign bulb, so its RSSI
	// fingerprint is learned from its own legitimate traffic.
	l.attacker = add("compromised", "192.168.1.66", netsim.Position{X: 30})
	atkBulb := devices.NewBulb(l.attacker)
	atkBulb.Interval = 8 * time.Second
	atkBulb.Start(sim.Now().Add(5 * time.Second))

	return l
}

func (l *lan) run(insts []attacks.Instance, attackers []packet.NodeID, victim packet.NodeID, end time.Time) *Run {
	set := make(map[packet.NodeID]bool, len(attackers))
	for _, a := range attackers {
		set[a] = true
	}
	return &Run{
		Sim:       l.sim,
		Sniffer:   l.sniffer,
		Instances: insts,
		End:       end,
		Attackers: set,
		Victim:    victim,
		Nodes:     l.nodes,
	}
}

func icmpFloodScenario() Scenario {
	return Scenario{
		Name:     "icmp-flood/single-hop",
		Attack:   attack.ICMPFlood,
		Medium:   "wifi",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			l := buildLAN(seed)
			sched := attacks.Schedule{
				Start:    l.sim.Now().Add(60 * time.Second),
				Count:    episodes,
				Every:    20 * time.Second,
				Duration: 3 * time.Second,
			}
			inj := &attacks.ICMPFlood{
				Attacker: l.attacker,
				Victim:   l.victim.IP,
				Spoofed: []netip.Addr{
					netip.MustParseAddr("192.168.1.11"),
					netip.MustParseAddr("192.168.1.12"),
					netip.MustParseAddr("192.168.1.13"),
				},
			}
			insts := inj.Inject(l.sim, sched)
			end := insts[len(insts)-1].End.Add(15 * time.Second)
			return l.run(insts, []packet.NodeID{"192.168.1.66"}, "192.168.1.10", end)
		},
	}
}

func smurfScenario() Scenario {
	return Scenario{
		Name:     "smurf/multi-hop",
		Attack:   attack.Smurf,
		Medium:   "wifi",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			l := buildLAN(seed)
			// A router relays Internet-side traffic onto the LAN,
			// making the segment observably multi-hop.
			router := l.sim.AddNode(&netsim.Node{
				Name: "router", IP: netip.MustParseAddr("192.168.1.1"),
				Pos: netsim.Position{X: 4, Y: 4},
			})
			l.nodes["192.168.1.1"] = router
			devices.NewCloudRelay(router, l.cloudIP)
			// Amplifier hosts at staggered distances (distinct RSSI
			// clusters).
			amps := []netip.Addr{
				netip.MustParseAddr("192.168.1.21"),
				netip.MustParseAddr("192.168.1.22"),
				netip.MustParseAddr("192.168.1.23"),
			}
			// Staggered distances (10/20/34 m ≈ −70/−79/−86 dBm) keep
			// the amplifiers' RSSI clusters separable under shadowing.
			positions := []netsim.Position{{Y: 10}, {X: 12, Y: 16}, {X: 30, Y: 16}}
			for i, ip := range amps {
				n := l.sim.AddNode(&netsim.Node{Name: "amp-" + ip.String(), IP: ip, Pos: positions[i]})
				devices.NewIPHost(n)
				l.nodes[packet.NodeID(ip.String())] = n
			}
			sched := attacks.Schedule{
				Start:    l.sim.Now().Add(60 * time.Second),
				Count:    episodes,
				Every:    20 * time.Second,
				Duration: 3 * time.Second,
			}
			inj := &attacks.Smurf{Router: router, Victim: l.victim.IP, Amplifiers: amps}
			insts := inj.Inject(l.sim, sched)
			end := insts[len(insts)-1].End.Add(15 * time.Second)
			return l.run(insts, []packet.NodeID{"192.168.1.1"}, "192.168.1.10", end)
		},
	}
}

func synFloodScenario() Scenario {
	return Scenario{
		Name:     "syn-flood/single-hop",
		Attack:   attack.SYNFlood,
		Medium:   "wifi",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			l := buildLAN(seed)
			sched := attacks.Schedule{
				Start:    l.sim.Now().Add(60 * time.Second),
				Count:    episodes,
				Every:    20 * time.Second,
				Duration: 3 * time.Second,
			}
			inj := &attacks.SYNFlood{
				Attacker: l.attacker,
				Victim:   netip.MustParseAddr("192.168.1.13"), // the camera
				Spoofed: []netip.Addr{
					netip.MustParseAddr("10.7.7.1"),
					netip.MustParseAddr("10.7.7.2"),
					netip.MustParseAddr("10.7.7.3"),
					netip.MustParseAddr("10.7.7.4"),
				},
			}
			insts := inj.Inject(l.sim, sched)
			end := insts[len(insts)-1].End.Add(15 * time.Second)
			return l.run(insts, []packet.NodeID{"192.168.1.66"}, "192.168.1.13", end)
		},
	}
}

// --- WSN scenarios ---

// buildWSN assembles the paper's 6-mote CTP network with the Kalis
// sniffer "near the middle portion of the WSN, able to overhear
// intermediate hops" (§VI-A).
func buildWSN(seed int64, count int) (*netsim.Sim, *netsim.Sniffer, []*devices.Mote, map[packet.NodeID]*netsim.Node) {
	sim := netsim.New(seed)
	sniffer := sim.AddSniffer("kalis", netsim.Position{X: float64(count-1) * 10, Y: 15}, packet.MediumIEEE802154)
	motes := devices.BuildWSNLine(sim, count, 20)
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}
	nodes := make(map[packet.NodeID]*netsim.Node, count)
	for _, m := range motes {
		nodes[identityOf(m)] = m.Node()
	}
	return sim, sniffer, motes, nodes
}

func identityOf(m *devices.Mote) packet.NodeID {
	return stack.ShortID(m.Addr())
}

func wsnRun(sim *netsim.Sim, sniffer *netsim.Sniffer, nodes map[packet.NodeID]*netsim.Node,
	insts []attacks.Instance, attackers []packet.NodeID) *Run {
	set := make(map[packet.NodeID]bool, len(attackers))
	for _, a := range attackers {
		set[a] = true
	}
	return &Run{
		Sim:       sim,
		Sniffer:   sniffer,
		Instances: insts,
		End:       insts[len(insts)-1].End.Add(30 * time.Second),
		Attackers: set,
		Nodes:     nodes,
	}
}

func selectiveForwardingScenario() Scenario {
	return Scenario{
		Name:     "selective-forwarding/wsn",
		Attack:   attack.SelectiveForwarding,
		Medium:   "802.15.4",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			sim, sniffer, motes, nodes := buildWSN(seed, 6)
			sched := attacks.Schedule{
				Start:    sim.Now().Add(60 * time.Second),
				Count:    episodes,
				Every:    75 * time.Second,
				Duration: 30 * time.Second,
			}
			inj := &attacks.SelectiveForwarding{
				Relay: motes[1],
				Rand:  rand.New(rand.NewSource(seed + 1)),
			}
			insts := inj.Inject(sim, sched)
			return wsnRun(sim, sniffer, nodes, insts, []packet.NodeID{identityOf(motes[1])})
		},
	}
}

func blackholeScenario() Scenario {
	return Scenario{
		Name:     "blackhole/wsn",
		Attack:   attack.Blackhole,
		Medium:   "802.15.4",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			sim, sniffer, motes, nodes := buildWSN(seed, 6)
			sched := attacks.Schedule{
				Start:    sim.Now().Add(60 * time.Second),
				Count:    episodes,
				Every:    75 * time.Second,
				Duration: 30 * time.Second,
			}
			inj := &attacks.Blackhole{Relay: motes[1]}
			insts := inj.Inject(sim, sched)
			return wsnRun(sim, sniffer, nodes, insts, []packet.NodeID{identityOf(motes[1])})
		},
	}
}

func replicationScenario() Scenario {
	return Scenario{
		Name:     "replication/static-mobile",
		Attack:   attack.Replication,
		Medium:   "802.15.4",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			sim, sniffer, motes, nodes := buildWSN(seed, 6)
			// Mobility substrate: every non-base mote jitters around
			// its home position during mobile phases.
			var movable []*netsim.Node
			for _, m := range motes[1:] {
				movable = append(movable, m.Node())
			}
			mover := netsim.NewJitterMover(sim, movable, 12)
			mover.Start(sim.Now().Add(5*time.Second), 2*time.Second)

			sched := attacks.Schedule{
				Start:    sim.Now().Add(90 * time.Second),
				Count:    episodes,
				Every:    60 * time.Second,
				Duration: 30 * time.Second,
			}
			clone := motes[3]
			inj := &attacks.Replication{
				Clone:    clone,
				Position: netsim.Position{X: clone.Node().Pos.X + 30, Y: 28},
			}
			insts := inj.Inject(sim, sched)
			// "The network randomly changes between a static and
			// mobile behavior" (§VI-B2): toggle before each episode,
			// leaving time for Mobility Awareness to settle.
			phaseRng := rand.New(rand.NewSource(seed + 2))
			for _, inst := range insts {
				mobile := phaseRng.Intn(2) == 1
				sim.At(inst.Start.Add(-25*time.Second), func() { mover.SetActive(mobile) })
			}
			r := wsnRun(sim, sniffer, nodes, insts, []packet.NodeID{identityOf(clone)})
			r.Mover = mover
			return r
		},
	}
}

func sybilScenario() Scenario {
	return Scenario{
		Name:     "sybil/wsn",
		Attack:   attack.Sybil,
		Medium:   "802.15.4",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			sim, sniffer, _, nodes := buildWSN(seed, 6)
			attacker := sim.AddNode(&netsim.Node{Name: "sybil-platform", Pos: netsim.Position{X: 70, Y: 30}})
			sched := attacks.Schedule{
				Start:    sim.Now().Add(60 * time.Second),
				Count:    episodes,
				Every:    30 * time.Second,
				Duration: 5 * time.Second,
			}
			inj := &attacks.Sybil{Attacker: attacker}
			insts := inj.Inject(sim, sched)
			r := wsnRun(sim, sniffer, nodes, insts, []packet.NodeID{packet.NodeID(attacker.Name)})
			// The sybil identities are fabrications of the platform;
			// count any of them as the attacker for scoring/revocation.
			for ei := 0; ei < episodes; ei++ {
				base := 0x0500 + uint16(ei*5)
				for i := uint16(0); i < 5; i++ {
					r.Attackers[stack.ShortID(base+i)] = true
					r.Nodes[stack.ShortID(base+i)] = attacker
				}
			}
			return r
		},
	}
}

func sinkholeScenario() Scenario {
	return Scenario{
		Name:     "sinkhole/wsn",
		Attack:   attack.Sinkhole,
		Medium:   "802.15.4",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			sim, sniffer, motes, nodes := buildWSN(seed, 6)
			sched := attacks.Schedule{
				Start:    sim.Now().Add(90 * time.Second),
				Count:    episodes,
				Every:    30 * time.Second,
				Duration: 5 * time.Second,
			}
			inj := &attacks.Sinkhole{Advertiser: motes[4].Node()}
			insts := inj.Inject(sim, sched)
			return wsnRun(sim, sniffer, nodes, insts, []packet.NodeID{identityOf(motes[4])})
		},
	}
}

func dataAlterationScenario() Scenario {
	return Scenario{
		Name:     "data-alteration/wsn",
		Attack:   attack.DataAlteration,
		Medium:   "802.15.4",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			sim, sniffer, motes, nodes := buildWSN(seed, 6)
			sched := attacks.Schedule{
				Start:    sim.Now().Add(60 * time.Second),
				Count:    episodes,
				Every:    30 * time.Second,
				Duration: 10 * time.Second,
			}
			inj := &attacks.DataAlteration{Relay: motes[2]}
			insts := inj.Inject(sim, sched)
			return wsnRun(sim, sniffer, nodes, insts, []packet.NodeID{identityOf(motes[2])})
		},
	}
}

func rplSinkholeScenario() Scenario {
	return Scenario{
		Name:     "sinkhole-rpl/6lowpan",
		Attack:   attack.Sinkhole,
		Medium:   "802.15.4",
		Episodes: DefaultEpisodes,
		Build: func(seed int64, episodes int) *Run {
			sim := netsim.New(seed)
			sniffer := sim.AddSniffer("kalis", netsim.Position{X: 40, Y: 15}, packet.MediumIEEE802154)
			// A 5-node RPL DODAG: root (rank 256) and a line of
			// routers at increasing rank.
			nodes := make(map[packet.NodeID]*netsim.Node, 5)
			for i := 0; i < 5; i++ {
				addr := uint16(i + 1)
				n := sim.AddNode(&netsim.Node{
					Name:   fmt.Sprintf("rpl-%d", i+1),
					Addr16: addr,
					Pos:    netsim.Position{X: float64(i) * 20},
				})
				parent := addr - 1
				if i == 0 {
					parent = addr
				}
				r := devices.NewRPLNode(n, parent, uint16(256*(i+1)), i == 0)
				r.Start(sim.Now().Add(time.Second))
				nodes[stack.ShortID(addr)] = n
			}
			sched := attacks.Schedule{
				Start:    sim.Now().Add(90 * time.Second),
				Count:    episodes,
				Every:    30 * time.Second,
				Duration: 5 * time.Second,
			}
			inj := &attacks.RPLSinkhole{Advertiser: sim.Node("rpl-4")}
			insts := inj.Inject(sim, sched)
			return wsnRun(sim, sniffer, nodes, insts, []packet.NodeID{stack.ShortID(4)})
		},
	}
}

// Scenarios returns the eight attack scenarios of the breadth
// evaluation (Fig. 8). Wormhole (§VI-D) is a two-node experiment and
// lives in the knowledge-sharing driver; data alteration is available
// via AllScenarios.
func Scenarios() []Scenario {
	return []Scenario{
		icmpFloodScenario(),
		smurfScenario(),
		synFloodScenario(),
		selectiveForwardingScenario(),
		blackholeScenario(),
		replicationScenario(),
		sybilScenario(),
		sinkholeScenario(),
	}
}

// AllScenarios additionally includes the data-alteration and
// RPL-sinkhole scenarios.
func AllScenarios() []Scenario {
	return append(Scenarios(), dataAlterationScenario(), rplSinkholeScenario())
}

// ScenarioByName finds a scenario by its Name prefix.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range AllScenarios() {
		if sc.Name == name || sc.Attack == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
