package eval

import "testing"

func TestFullTable2(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	res, err := Table2(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		t.Logf("%-16s DR=%.2f Acc=%.2f CPU=%.4f%% RAM=%.0fKB work/pkt=%.1f",
			r.System, r.DetectionRate, r.Accuracy, r.CPUPercent, r.RAMKB, r.WorkPerPacket)
	}
	for _, r := range res.PerScenario {
		t.Logf("  %-28s %-16s DR=%.2f acc=%.2f cpu=%v pkts=%d heap=%dKB",
			r.Scenario, r.System, r.Score.DetectionRate(), r.Score.Accuracy(),
			r.Resources.CPUTime, r.Resources.Packets, r.Resources.HeapBytes/1024)
	}
}
