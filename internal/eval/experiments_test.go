package eval

import (
	"testing"
)

// fastOpts keeps experiment tests quick; benches and cmd/kalis-bench
// run the full 50 episodes.
var fastOpts = Options{Seed: 7, Episodes: 8, SnortCommunityRules: 3000}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table2Row{}
	for _, r := range res.Rows {
		rows[r.System] = r
		t.Logf("%-16s DR=%.2f Acc=%.2f CPU=%.3f%% RAM=%.0fKB work/pkt=%.1f (applicable %d)",
			r.System, r.DetectionRate, r.Accuracy, r.CPUPercent, r.RAMKB, r.WorkPerPacket, r.Applicable)
	}
	kalis, trad, snort := rows["Kalis"], rows["Traditional IDS"], rows["Snort"]

	// The paper's Table II shape: Kalis achieves 100% accuracy and the
	// best detection rate; the traditional IDS has the worst of both;
	// Snort is accurate only where it can see, at much higher resource
	// cost.
	if kalis.Accuracy < 0.99 {
		t.Errorf("Kalis accuracy = %.2f, want 1.0", kalis.Accuracy)
	}
	if trad.Accuracy >= kalis.Accuracy {
		t.Errorf("traditional accuracy %.2f not below Kalis %.2f", trad.Accuracy, kalis.Accuracy)
	}
	if kalis.DetectionRate <= trad.DetectionRate {
		t.Errorf("Kalis DR %.2f not above traditional %.2f", kalis.DetectionRate, trad.DetectionRate)
	}
	if snort.Applicable != 1 {
		t.Errorf("Snort applicable scenarios = %d, want 1 (WiFi only)", snort.Applicable)
	}
	// Resource shape via the deterministic per-packet work measure:
	// Kalis < traditional ≪ Snort.
	if !(kalis.WorkPerPacket < trad.WorkPerPacket) {
		t.Errorf("work/packet: Kalis %.1f not below traditional %.1f", kalis.WorkPerPacket, trad.WorkPerPacket)
	}
	if !(trad.WorkPerPacket < snort.WorkPerPacket) {
		t.Errorf("work/packet: traditional %.1f not below Snort %.1f", trad.WorkPerPacket, snort.WorkPerPacket)
	}
	// Measured CPU: the rule-list scan must dominate.
	if snort.CPUPercent <= kalis.CPUPercent {
		t.Errorf("Snort CPU %.4f%% not above Kalis %.4f%%", snort.CPUPercent, kalis.CPUPercent)
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		t.Logf("%-28s Kalis DR=%.2f Acc=%.2f | Trad DR=%.2f Acc=%.2f",
			r.Scenario, r.KalisDR, r.KalisAcc, r.TraditionalDR, r.TradAcc)
		// "Kalis is always more effective than traditional IDS
		// approaches" (§VI-E): never worse on either metric.
		if r.KalisDR < r.TraditionalDR-1e-9 {
			t.Errorf("%s: Kalis DR %.2f below traditional %.2f", r.Scenario, r.KalisDR, r.TraditionalDR)
		}
		if r.KalisAcc < r.TradAcc-1e-9 {
			t.Errorf("%s: Kalis accuracy %.2f below traditional %.2f", r.Scenario, r.KalisAcc, r.TradAcc)
		}
		if r.KalisDR < 0.75 {
			t.Errorf("%s: Kalis DR %.2f too low", r.Scenario, r.KalisDR)
		}
		if r.KalisAcc < 0.99 {
			t.Errorf("%s: Kalis accuracy %.2f, want 1.0", r.Scenario, r.KalisAcc)
		}
	}
	if res.KalisAvgAcc < 0.99 {
		t.Errorf("Kalis average accuracy %.2f", res.KalisAvgAcc)
	}
	if res.TradAvgAcc > 0.95 {
		t.Errorf("traditional average accuracy %.2f suspiciously high", res.TradAvgAcc)
	}
	if res.KalisAvgDR <= res.TradAvgDR {
		t.Errorf("average DR: Kalis %.2f <= traditional %.2f", res.KalisAvgDR, res.TradAvgDR)
	}
}

func TestReactivity(t *testing.T) {
	res, err := Reactivity(Options{Seed: 7, Episodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("topology known after %v, module active after %v, first alert %v after episode start, DR %.2f",
		res.TopologyKnownAfter, res.ModuleActiveAfter, res.FirstAlertAfterEpisode, res.DetectionRate)
	if res.InitiallyActiveDetectionModules != 0 {
		t.Errorf("%d detection modules active at startup", res.InitiallyActiveDetectionModules)
	}
	if res.TopologyKnownAfter <= 0 || res.ModuleActiveAfter <= 0 {
		t.Error("topology/module activation never happened")
	}
	// "Kalis correctly identifies 100% of the selective forwarding
	// attacks from the very beginning" (§VI-C).
	if res.DetectionRate < 0.99 {
		t.Errorf("detection rate = %.2f, want 1.0", res.DetectionRate)
	}
	if res.FirstAlertAfterEpisode <= 0 || res.FirstAlertAfterEpisode > 35e9 {
		t.Errorf("first alert latency = %v", res.FirstAlertAfterEpisode)
	}
}

func TestKnowledgeSharing(t *testing.T) {
	res, err := KnowledgeSharing(Options{Seed: 7, Episodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with collective: %d wormhole, %d blackhole alerts, DR %.2f acc %.2f",
		res.WithWormholeAlerts, res.WithBlackholeAlerts, res.WithDetectionRate, res.WithAccuracy)
	t.Logf("without:         %d wormhole, %d blackhole alerts, DR %.2f acc %.2f",
		res.WithoutWormholeAlerts, res.WithoutBlackholeAlerts, res.WithoutDetectionRate, res.WithoutAccuracy)
	if res.WithWormholeAlerts == 0 {
		t.Error("no wormhole detected with collective knowledge")
	}
	if res.WithoutWormholeAlerts != 0 {
		t.Error("wormhole detected without collective knowledge")
	}
	if res.WithAccuracy <= res.WithoutAccuracy {
		t.Errorf("collective knowledge did not improve classification: %.2f vs %.2f",
			res.WithAccuracy, res.WithoutAccuracy)
	}
}

func TestCountermeasure(t *testing.T) {
	res, err := Countermeasure(Options{Seed: 7, Episodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Kalis: revoked %v (correct %d, collateral %d, victim %v)",
		res.Kalis.Revoked, res.Kalis.CorrectRevocations, res.Kalis.Collateral, res.Kalis.VictimRevoked)
	t.Logf("Trad:  revoked %v (correct %d, collateral %d, victim %v)",
		res.Traditional.Revoked, res.Traditional.CorrectRevocations, res.Traditional.Collateral, res.Traditional.VictimRevoked)
	// §VI-B1: Kalis revokes only the attacker; the traditional IDS
	// revokes innocents.
	if res.Kalis.CorrectRevocations != 1 || res.Kalis.Collateral != 0 {
		t.Errorf("Kalis countermeasure: %+v", res.Kalis)
	}
	if res.Traditional.Collateral == 0 {
		t.Errorf("traditional countermeasure had no collateral: %+v", res.Traditional)
	}
}
