package eval

import (
	"fmt"
	"math/rand"
	"time"

	"kalis/internal/core/detection"
	"kalis/internal/metrics"
	"kalis/internal/packet"
)

// Result is the outcome of one (scenario, system) run.
type Result struct {
	System    string
	Scenario  string
	Score     metrics.Score
	Resources metrics.Resources
	// Alerts is the total number of alerts the system raised.
	Alerts int
}

// Execute replays one scenario through one system and scores it.
func Execute(sc Scenario, factory Factory, seed int64, episodes int) (Result, error) {
	if episodes <= 0 {
		episodes = sc.Episodes
	}
	run := sc.Build(seed, episodes)

	heapBefore := metrics.HeapLive()
	ids, err := factory(seed)
	if err != nil {
		return Result{}, fmt.Errorf("eval: build %s: %w", sc.Name, err)
	}
	var meter metrics.CPUMeter
	run.Sniffer.Subscribe(func(c *packet.Captured) {
		meter.Time(func() { ids.HandleCapture(c) })
	})
	start := run.Sim.Now()
	run.Sim.Run(run.End)
	heapAfter := metrics.HeapLive()

	attrs := ids.Attributions()
	res := Result{
		System:   ids.Label(),
		Scenario: sc.Name,
		Score:    metrics.ScoreAlerts(run.Instances, attrs, seed),
		Alerts:   len(attrs),
		Resources: metrics.Resources{
			CPUTime:         meter.Busy(),
			VirtualDuration: run.End.Sub(start),
			HeapBytes:       maxInt64(heapAfter-heapBefore, 0),
			Packets:         uint64(run.Sniffer.Captures),
			WorkUnits:       ids.WorkUnits(),
		},
	}
	ids.Close()
	return res, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TraditionalFor returns the traditional-IDS factory appropriate for a
// scenario: for the replication scenario the baseline "randomly
// selects one of the two modules for each of our experiment runs"
// (§VI-B2), so a seeded coin flip excludes one variant; every other
// scenario runs the full static library.
func TraditionalFor(sc Scenario, seed int64) Factory {
	if sc.Attack != "replication" {
		return NewTraditional()
	}
	rng := rand.New(rand.NewSource(seed ^ 0x7261646d))
	if rng.Intn(2) == 0 {
		return NewTraditional(detection.ReplicationMobileName)
	}
	return NewTraditional(detection.ReplicationStaticName)
}

// ExecuteTraditional runs the traditional baseline on a scenario. For
// the replication scenario it runs both possible module selections and
// merges the scores — the deterministic expectation of the paper's
// per-run coin flip.
func ExecuteTraditional(sc Scenario, seed int64, episodes int) (Result, error) {
	if sc.Attack != "replication" {
		return Execute(sc, NewTraditional(), seed, episodes)
	}
	a, err := Execute(sc, NewTraditional(detection.ReplicationMobileName), seed, episodes)
	if err != nil {
		return Result{}, err
	}
	b, err := Execute(sc, NewTraditional(detection.ReplicationStaticName), seed+1, episodes)
	if err != nil {
		return Result{}, err
	}
	merged := a
	merged.Score = a.Score.Add(b.Score)
	merged.Alerts += b.Alerts
	merged.Resources.CPUTime = (a.Resources.CPUTime + b.Resources.CPUTime) / 2
	merged.Resources.HeapBytes = (a.Resources.HeapBytes + b.Resources.HeapBytes) / 2
	merged.Resources.Packets = (a.Resources.Packets + b.Resources.Packets) / 2
	merged.Resources.WorkUnits = (a.Resources.WorkUnits + b.Resources.WorkUnits) / 2
	return merged, nil
}

// FirstDetection returns the earliest alert time for the given attack
// name, if any.
func FirstDetection(attrs []metrics.Attribution, attackName string) (time.Time, bool) {
	var first time.Time
	found := false
	for _, a := range attrs {
		if a.Attack != attackName {
			continue
		}
		if !found || a.Time.Before(first) {
			first = a.Time
			found = true
		}
	}
	return first, found
}
