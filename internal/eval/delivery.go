package eval

import (
	"fmt"
	"io"
	"strings"
	"time"

	"kalis/internal/core"
	"kalis/internal/core/module"
	"kalis/internal/core/response"
	"kalis/internal/devices"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// DeliveryResult quantifies countermeasure effectiveness as network
// functionality — metric (iii) of §VI-B, "how positive a response
// action based on the detections of Kalis is for the overall network"
// — on a WSN with *adaptive* CTP routing, where a sinkhole's lying
// advertisements genuinely pull traffic into a blackhole.
type DeliveryResult struct {
	// BucketSeconds is the sampling bucket width.
	BucketSeconds int
	// WithResponse and WithoutResponse are per-bucket end-to-end
	// delivery ratios (delivered/originated) for the defended and
	// undefended runs.
	WithResponse    []float64
	WithoutResponse []float64
	// AttackStart is the bucket index where the sinkhole begins.
	AttackStart int
	// IsolatedAt is when the responder isolated the attacker (defended
	// run), relative to simulation start; zero if never.
	IsolatedAt time.Duration
	// Alerts raised in the defended run.
	Alerts int
}

// FinalDelivery returns the mean delivery ratio over the last three
// buckets of each run.
func (r *DeliveryResult) FinalDelivery() (with, without float64) {
	tail := func(s []float64) float64 {
		if len(s) < 3 {
			return 0
		}
		sum := 0.0
		for _, v := range s[len(s)-3:] {
			sum += v
		}
		return sum / 3
	}
	return tail(r.WithResponse), tail(r.WithoutResponse)
}

// BaselineDelivery returns the mean delivery ratio of the pre-attack
// buckets (skipping the first, while routes converge).
func (r *DeliveryResult) BaselineDelivery() (with, without float64) {
	head := func(s []float64) float64 {
		if r.AttackStart <= 1 {
			return 0
		}
		sum := 0.0
		for _, v := range s[1:r.AttackStart] {
			sum += v
		}
		return sum / float64(r.AttackStart-1)
	}
	return head(r.WithResponse), head(r.WithoutResponse)
}

// deliveryRun executes the adaptive-routing sinkhole once.
func deliveryRun(seed int64, defend bool) (series []float64, isolatedAt time.Duration, alerts int, err error) {
	const (
		bucket      = 30 * time.Second
		attackStart = 150 * time.Second
		total       = 9 * time.Minute
	)
	sim := netsim.New(seed)
	sniffer := sim.AddSniffer("kalis", netsim.Position{X: 50, Y: 15}, packet.MediumIEEE802154)
	motes := devices.BuildWSNLine(sim, 6, 20)
	for _, m := range motes {
		m.Adaptive = true
		m.Start(sim.Now().Add(time.Second))
	}
	base := motes[0]

	// The attacker: advertises root-grade cost and swallows everything
	// routed to it (it never forwards — it has no radio handler).
	attacker := sim.AddNode(&netsim.Node{Name: "sinkhole", Addr16: 9, Pos: netsim.Position{X: 60, Y: 8}})
	sim.Every(sim.Now().Add(attackStart), 10*time.Second, func() bool {
		attacker.Send(packet.MediumIEEE802154, stack.BuildCTPBeacon(9, 1, 1, 1))
		return true
	})

	start := sim.Now()
	if defend {
		node, cerr := core.New(core.Config{NodeID: "K1", KnowledgeDriven: true, WindowSize: 2048, InstallAll: true})
		if cerr != nil {
			return nil, 0, 0, cerr
		}
		defer node.Close()
		responder := response.NewResponder(response.DefaultPolicy(1))
		responder.Isolate = func(id packet.NodeID) error {
			if id == stack.ShortID(9) && isolatedAt == 0 {
				isolatedAt = sim.Now().Sub(start)
			}
			attacker.Revoke()
			return nil
		}
		node.OnAlert(func(a module.Alert) {
			alerts++
			responder.HandleAlert(a)
		})
		sniffer.Subscribe(node.HandleCapture)
	}

	// Sample end-to-end delivery per bucket.
	lastDelivered, lastOriginated := 0, 0
	sim.Every(start.Add(bucket), bucket, func() bool {
		originated := 0
		for _, m := range motes {
			originated += m.Originated
		}
		dDel := base.Delivered - lastDelivered
		dOrig := originated - lastOriginated
		lastDelivered, lastOriginated = base.Delivered, originated
		if dOrig > 0 {
			series = append(series, float64(dDel)/float64(dOrig))
		} else {
			series = append(series, 0)
		}
		return true
	})
	sim.Run(start.Add(total))
	return series, isolatedAt, alerts, nil
}

// DeliveryImpact runs the countermeasure-effectiveness experiment with
// and without the Kalis-driven response.
func DeliveryImpact(opts Options) (*DeliveryResult, error) {
	with, isolatedAt, alerts, err := deliveryRun(opts.Seed, true)
	if err != nil {
		return nil, err
	}
	without, _, _, err := deliveryRun(opts.Seed, false)
	if err != nil {
		return nil, err
	}
	return &DeliveryResult{
		BucketSeconds:   30,
		WithResponse:    with,
		WithoutResponse: without,
		AttackStart:     5, // attack begins in bucket 5 (150 s)
		IsolatedAt:      isolatedAt,
		Alerts:          alerts,
	}, nil
}

// WriteDelivery renders the delivery-impact experiment.
func WriteDelivery(w io.Writer, res *DeliveryResult) {
	fmt.Fprintln(w, "Countermeasure effectiveness as network functionality (metric iii, §VI-B)")
	fmt.Fprintln(w, "Adaptive-routing WSN; sinkhole attracts and swallows collection traffic.")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	bar := func(v float64) string {
		n := int(v*20 + 0.5)
		if n > 20 {
			n = 20
		}
		return strings.Repeat("█", n) + strings.Repeat("·", 20-n)
	}
	fmt.Fprintf(w, "%-8s %-28s %-28s\n", "t (s)", "with Kalis response", "without IDS")
	for i := range res.WithResponse {
		marker := ""
		if i == res.AttackStart {
			marker = "← attack begins"
		}
		var without float64
		if i < len(res.WithoutResponse) {
			without = res.WithoutResponse[i]
		}
		fmt.Fprintf(w, "%-8d %s %4.0f%%  %s %4.0f%%  %s\n",
			(i+1)*res.BucketSeconds, bar(res.WithResponse[i]), 100*res.WithResponse[i],
			bar(without), 100*without, marker)
	}
	withFinal, withoutFinal := res.FinalDelivery()
	fmt.Fprintf(w, "\nattacker isolated after %v (%d alerts); final delivery %0.f%% vs %0.f%% undefended\n",
		res.IsolatedAt, res.Alerts, 100*withFinal, 100*withoutFinal)
}
