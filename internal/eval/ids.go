// Package eval implements the paper's evaluation (§VI): scenario
// builders for every attack, the three systems under test (Kalis, the
// traditional-IDS baseline, and the Snort-like signature IDS), the
// runner that replays each scenario through each system, and the
// experiment drivers that regenerate Table II, Figure 8, and the
// reactivity, knowledge-sharing and countermeasure results.
package eval

import (
	"fmt"

	"kalis/internal/attack"
	"kalis/internal/core"
	"kalis/internal/core/module"
	"kalis/internal/metrics"
	"kalis/internal/packet"
	"kalis/internal/snortlike"
)

// IDS is a system under test.
type IDS interface {
	// Label names the system in reports.
	Label() string
	// HandleCapture feeds one overheard frame.
	HandleCapture(c *packet.Captured)
	// Attributions converts the system's alerts into scoreable form.
	Attributions() []metrics.Attribution
	// WorkUnits counts per-packet work performed (module invocations
	// or rule evaluations).
	WorkUnits() uint64
	// Close releases resources.
	Close()
}

// Factory builds a fresh IDS for one run.
type Factory func(seed int64) (IDS, error)

// --- Kalis and the traditional baseline ---

// kalisIDS adapts core.Kalis (in either mode) to the IDS interface.
type kalisIDS struct {
	label string
	node  *core.Kalis
}

var _ IDS = (*kalisIDS)(nil)

func (k *kalisIDS) Label() string                    { return k.label }
func (k *kalisIDS) HandleCapture(c *packet.Captured) { k.node.HandleCapture(c) }
func (k *kalisIDS) Close()                           { _ = k.node.Close() }

func (k *kalisIDS) WorkUnits() uint64 {
	_, invocations, _ := k.node.Manager().Stats()
	return invocations
}

func (k *kalisIDS) Attributions() []metrics.Attribution {
	alerts := k.node.Alerts()
	out := make([]metrics.Attribution, len(alerts))
	for i, a := range alerts {
		out[i] = metrics.Attribution{
			Time: a.Time, Attack: a.Attack, Victim: a.Victim,
			Suspects: a.Suspects, Confidence: a.Confidence,
		}
	}
	return out
}

// Node exposes the underlying Kalis node (for experiments that need
// the Knowledge Base or collective layer).
func (k *kalisIDS) Node() *core.Kalis { return k.node }

// NewKalis builds the knowledge-driven Kalis system with the full
// module library installed.
func NewKalis(nodeID string) Factory {
	return func(seed int64) (IDS, error) {
		node, err := core.New(core.Config{
			NodeID:          nodeID,
			KnowledgeDriven: true,
			WindowSize:      2048,
			InstallAll:      true,
		})
		if err != nil {
			return nil, err
		}
		return &kalisIDS{label: "Kalis", node: node}, nil
	}
}

// NewTraditional builds the traditional-IDS baseline: "our system
// without Knowledge Base, and with all the modules active at all
// times" (§VI-B). exclude removes modules from the static library —
// used for the replication experiment, where the baseline "randomly
// selects one of the two modules for each run" (§VI-B2): the caller
// excludes the variant the coin flip discarded.
func NewTraditional(exclude ...string) Factory {
	excluded := make(map[string]bool, len(exclude))
	for _, name := range exclude {
		excluded[name] = true
	}
	return func(seed int64) (IDS, error) {
		node, err := core.New(core.Config{
			NodeID:          "T1",
			KnowledgeDriven: false,
			WindowSize:      2048,
		})
		if err != nil {
			return nil, err
		}
		for _, name := range node.Registry().Names() {
			if excluded[name] {
				continue
			}
			if err := node.Install(name, nil); err != nil {
				return nil, fmt.Errorf("traditional: %w", err)
			}
		}
		return &kalisIDS{label: "Traditional IDS", node: node}, nil
	}
}

// --- Snort-like ---

// snortIDS adapts the snortlike engine.
type snortIDS struct {
	engine *snortlike.Engine
}

var _ IDS = (*snortIDS)(nil)

// NewSnort builds the Snort-like baseline with the custom scenario
// rules plus a community ruleset of the given size (0 selects the
// default of 3000 rules, the order of magnitude of the real community
// ruleset).
func NewSnort(communitySize int) Factory {
	if communitySize == 0 {
		communitySize = 3000
	}
	return func(seed int64) (IDS, error) {
		rules, err := snortlike.DefaultRuleset(communitySize)
		if err != nil {
			return nil, err
		}
		return &snortIDS{engine: snortlike.NewEngine(rules)}, nil
	}
}

func (s *snortIDS) Label() string                    { return "Snort" }
func (s *snortIDS) HandleCapture(c *packet.Captured) { s.engine.HandleCapture(c) }
func (s *snortIDS) WorkUnits() uint64                { return s.engine.Evaluations }
func (s *snortIDS) Close()                           {}

// sidAttack maps the scenario rules' SIDs to canonical attack names —
// Snort's classification is whatever the matching signature says.
var sidAttack = map[int]string{
	snortlike.SIDICMPFlood: attack.ICMPFlood,
	snortlike.SIDEchoSweep: attack.Smurf,
	snortlike.SIDSYNFlood:  attack.SYNFlood,
	snortlike.SIDSmurf:     attack.Smurf,
}

func (s *snortIDS) Attributions() []metrics.Attribution {
	alerts := s.engine.Alerts()
	out := make([]metrics.Attribution, len(alerts))
	for i, a := range alerts {
		name := sidAttack[a.SID]
		if name == "" {
			name = a.Class
		}
		out[i] = metrics.Attribution{
			Time:       a.Time,
			Attack:     name,
			Victim:     a.Dst,
			Suspects:   []packet.NodeID{a.Src},
			Confidence: 0.8,
		}
	}
	return out
}

// AlertSink lets experiments react to alerts as they happen (e.g. the
// countermeasure experiment's revocations). It is implemented by the
// Kalis-based systems.
type AlertSink interface {
	OnAlert(fn func(module.Alert))
}

// OnAlert implements AlertSink.
func (k *kalisIDS) OnAlert(fn func(module.Alert)) { k.node.OnAlert(fn) }
