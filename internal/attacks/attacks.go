// Package attacks implements the attack injectors of the evaluation
// methodology (§VI-A): scripted adversaries that enhance otherwise
// benign simulated traffic with labelled symptom instances. Every
// injector pre-schedules its episodes and returns the ground-truth
// Instance list the harness scores detections against.
package attacks

import (
	"time"

	"kalis/internal/packet"
)

// Instance is one ground-truth adverse event (a "symptom instance" in
// the paper's terminology; each scenario runs 50 of them).
type Instance struct {
	// Attack is the canonical attack name (internal/attack).
	Attack string
	// ID numbers the instance within its scenario, from 1.
	ID int
	// Start and End delimit the episode in virtual time.
	Start, End time.Time
	// Attacker is the true attacking entity (as Kalis would name it).
	Attacker packet.NodeID
	// Victim is the attacked entity, when meaningful.
	Victim packet.NodeID
}

// Schedule describes a periodic episode plan shared by all injectors.
type Schedule struct {
	// Start is when the first episode begins.
	Start time.Time
	// Count is the number of episodes (symptom instances).
	Count int
	// Every is the episode period (start-to-start).
	Every time.Duration
	// Duration is how long each episode lasts.
	Duration time.Duration
}

// Instances materializes the schedule into ground-truth instances.
func (s Schedule) Instances(attackName string, attacker, victim packet.NodeID) []Instance {
	out := make([]Instance, 0, s.Count)
	for i := 0; i < s.Count; i++ {
		st := s.Start.Add(time.Duration(i) * s.Every)
		out = append(out, Instance{
			Attack:   attackName,
			ID:       i + 1,
			Start:    st,
			End:      st.Add(s.Duration),
			Attacker: attacker,
			Victim:   victim,
		})
	}
	return out
}

// truth builds the per-frame ground-truth label for an instance.
func truth(inst Instance) *packet.GroundTruth {
	return &packet.GroundTruth{
		Attack:   inst.Attack,
		Instance: inst.ID,
		Attacker: inst.Attacker,
		Victim:   inst.Victim,
	}
}
