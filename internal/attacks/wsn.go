package attacks

import (
	"math/rand"
	"time"

	"kalis/internal/attack"
	"kalis/internal/devices"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/stack"
)

// episodeActive reports whether t falls inside any scheduled episode.
func episodeActive(insts []Instance, t time.Time) (Instance, bool) {
	for _, inst := range insts {
		if !t.Before(inst.Start) && !t.After(inst.End) {
			return inst, true
		}
	}
	return Instance{}, false
}

// SelectiveForwarding turns a relay mote malicious during episodes: it
// silently drops a fraction of the CTP data frames it should forward.
type SelectiveForwarding struct {
	// Relay is the compromised forwarding mote.
	Relay *devices.Mote
	// DropProb is the per-frame drop probability during episodes
	// (default 0.6).
	DropProb float64
	// Rand drives the drop decisions (seeded for determinism).
	Rand *rand.Rand
}

// Inject installs the drop behaviour and returns the ground truth.
func (a *SelectiveForwarding) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.DropProb == 0 {
		a.DropProb = 0.6
	}
	attacker := stack.ShortID(a.Relay.Addr())
	insts := sched.Instances(attack.SelectiveForwarding, attacker, "")
	a.Relay.DropForward = func(*ctp.Data) bool {
		if _, on := episodeActive(insts, sim.Now()); !on {
			return false
		}
		return a.Rand.Float64() < a.DropProb
	}
	return insts
}

// Blackhole turns a relay mote into a blackhole during episodes: every
// frame it should forward is dropped.
type Blackhole struct {
	Relay *devices.Mote
}

// Inject installs the drop behaviour and returns the ground truth.
func (a *Blackhole) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	attacker := stack.ShortID(a.Relay.Addr())
	insts := sched.Instances(attack.Blackhole, attacker, "")
	a.Relay.DropForward = func(*ctp.Data) bool {
		_, on := episodeActive(insts, sim.Now())
		return on
	}
	return insts
}

// Replication adds a replica of a legitimate mote: a malicious device
// at a different position that originates CTP data under the cloned
// identity with its own sequence counter (§VI-B2).
type Replication struct {
	// Clone is the legitimate mote whose identity is replicated.
	Clone *devices.Mote
	// Position places the replica's radio.
	Position netsim.Position
	// Interval is the replica's data period (default: the clone's).
	Interval time.Duration

	seq uint8
}

// Inject creates the replica node, schedules its transmissions during
// episodes, and returns the ground truth.
func (a *Replication) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.Interval == 0 {
		a.Interval = a.Clone.Interval
	}
	id := stack.ShortID(a.Clone.Addr())
	insts := sched.Instances(attack.Replication, id, id)
	replica := sim.AddNode(&netsim.Node{
		Name:   "replica-of-" + string(id),
		Addr16: a.Clone.Addr(),
		Pos:    a.Position,
	})
	a.seq = 100 // counter deliberately out of phase with the original
	sim.Every(sched.Start, a.Interval, func() bool {
		inst, on := episodeActive(insts, sim.Now())
		if !on {
			return true
		}
		a.seq++
		raw := stack.BuildCTPData(a.Clone.Addr(), a.Clone.Parent, a.Clone.Addr(), a.seq, 0, 10, []byte{0x01, a.seq})
		replica.SendTruth(packet.MediumIEEE802154, raw, truth(inst))
		return true
	})
	return insts
}

// Sybil makes an attacker platform fabricate several fresh identities
// per episode, all transmitted from the same physical radio.
type Sybil struct {
	// Attacker is the physical attacking node.
	Attacker *netsim.Node
	// Identities is the number of fabricated identities per episode
	// (default 5).
	Identities int
	// FramesPerIdentity per episode (default 4).
	FramesPerIdentity int
	// BaseAddr is the starting fabricated short address (default
	// 0x0500); episode i uses BaseAddr+i*Identities...
	BaseAddr uint16
}

// Inject schedules the fabricated traffic and returns the ground
// truth.
func (a *Sybil) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.Identities == 0 {
		a.Identities = 5
	}
	if a.FramesPerIdentity == 0 {
		a.FramesPerIdentity = 4
	}
	if a.BaseAddr == 0 {
		a.BaseAddr = 0x0500
	}
	insts := sched.Instances(attack.Sybil, packet.NodeID(a.Attacker.Name), "")
	for ei, inst := range insts {
		inst := inst
		base := a.BaseAddr + uint16(ei*a.Identities)
		sim.At(inst.Start, func() {
			n := 0
			for f := 0; f < a.FramesPerIdentity; f++ {
				for i := 0; i < a.Identities; i++ {
					fake := base + uint16(i)
					raw := stack.BuildCTPData(fake, 1, fake, uint8(f+1), 0, 20, []byte{0x01, uint8(f + 1)})
					off := time.Duration(n) * 200 * time.Millisecond
					sim.After(off, func() {
						a.Attacker.SendTruth(packet.MediumIEEE802154, raw, truth(inst))
					})
					n++
				}
			}
		})
	}
	return insts
}

// Sinkhole makes a compromised mote advertise an implausibly good
// route cost during episodes, pulling collection traffic towards
// itself.
type Sinkhole struct {
	// Advertiser is the compromised mote's node.
	Advertiser *netsim.Node
	// FakeETX is the advertised cost (default 1).
	FakeETX uint16
	// Beacons per episode (default 4).
	Beacons int
}

// Inject schedules the lying beacons and returns the ground truth.
func (a *Sinkhole) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.FakeETX == 0 {
		a.FakeETX = 1
	}
	if a.Beacons == 0 {
		a.Beacons = 4
	}
	attacker := stack.ShortID(a.Advertiser.Addr16)
	insts := sched.Instances(attack.Sinkhole, attacker, "")
	seq := uint8(0)
	for _, inst := range insts {
		inst := inst
		sim.At(inst.Start, func() {
			for i := 0; i < a.Beacons; i++ {
				seq++
				raw := stack.BuildCTPBeacon(a.Advertiser.Addr16, 1, a.FakeETX, seq)
				off := time.Duration(i) * 400 * time.Millisecond
				sim.After(off, func() {
					a.Advertiser.SendTruth(packet.MediumIEEE802154, raw, truth(inst))
				})
			}
		})
	}
	return insts
}

// RPLSinkhole makes a compromised 6LoWPAN node advertise an
// implausibly good RPL rank in DIO messages during episodes — the
// classic RPL sinkhole of Mayzaud et al.'s taxonomy [26].
type RPLSinkhole struct {
	// Advertiser is the compromised node.
	Advertiser *netsim.Node
	// FakeRank is the advertised rank (default 1; legitimate roots
	// advertise 256).
	FakeRank uint16
	// DIOs per episode (default 4).
	DIOs int

	seq uint8
}

// Inject schedules the lying DIOs and returns the ground truth.
func (a *RPLSinkhole) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.FakeRank == 0 {
		a.FakeRank = 1
	}
	if a.DIOs == 0 {
		a.DIOs = 4
	}
	attacker := stack.ShortID(a.Advertiser.Addr16)
	insts := sched.Instances(attack.Sinkhole, attacker, "")
	for _, inst := range insts {
		inst := inst
		sim.At(inst.Start, func() {
			for i := 0; i < a.DIOs; i++ {
				a.seq++
				raw := stack.BuildRPLDIO(a.Advertiser.Addr16, a.seq, a.FakeRank, 1)
				off := time.Duration(i) * 400 * time.Millisecond
				sim.After(off, func() {
					a.Advertiser.SendTruth(packet.MediumIEEE802154, raw, truth(inst))
				})
			}
		})
	}
	return insts
}

// DataAlteration makes a relay mote tamper with the payloads it
// forwards during episodes.
type DataAlteration struct {
	Relay *devices.Mote
}

// Inject installs the mutation behaviour and returns the ground truth.
func (a *DataAlteration) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	attacker := stack.ShortID(a.Relay.Addr())
	insts := sched.Instances(attack.DataAlteration, attacker, "")
	a.Relay.MutateForward = func(d *ctp.Data) []byte {
		if _, on := episodeActive(insts, sim.Now()); !on {
			return d.Payload
		}
		// Corrupt the application payload (flip the embedded counter).
		return []byte{0x01, d.SeqNo + 7}
	}
	a.Relay.ForwardTruth = func(d *ctp.Data) *packet.GroundTruth {
		if inst, on := episodeActive(insts, sim.Now()); on {
			return truth(inst)
		}
		return nil
	}
	return insts
}

// Wormhole sets up two colluding endpoints in different network
// portions: B1 swallows the traffic it should forward and tunnels it
// out-of-band to B2, which re-emits it in its own portion (§VI-D).
type Wormhole struct {
	// B1 is the swallowing endpoint (a relay mote).
	B1 *devices.Mote
	// B2 is the re-emitting endpoint's node, placed in the other
	// network portion.
	B2 *netsim.Node
	// B2Parent is the address B2 forwards the tunnelled frames to.
	B2Parent uint16
	// TunnelDelay is the out-of-band transfer latency (default 5 ms).
	TunnelDelay time.Duration
}

// Inject installs the collusion behaviour and returns the ground
// truth.
func (a *Wormhole) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.TunnelDelay == 0 {
		a.TunnelDelay = 5 * time.Millisecond
	}
	b1 := stack.ShortID(a.B1.Addr())
	insts := sched.Instances(attack.Wormhole, b1, "")
	a.B1.DropForward = func(d *ctp.Data) bool {
		inst, on := episodeActive(insts, sim.Now())
		if !on {
			return false
		}
		// Tunnel the frame out-of-band to B2, which re-emits it with
		// the hop count it would legitimately carry.
		fwd := stack.BuildCTPData(a.B2.Addr16, a.B2Parent, d.Origin, d.SeqNo, d.THL+1, 10, d.Payload)
		sim.After(a.TunnelDelay, func() {
			a.B2.SendTruth(packet.MediumIEEE802154, fwd, truth(inst))
		})
		return true
	}
	return insts
}
