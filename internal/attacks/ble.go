package attacks

import (
	"time"

	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ble"
	"kalis/internal/proto/stack"
)

// BLEFloodAttack is the canonical name used for BLE advertising floods.
// No signature module exists for this attack — it is the repository's
// stand-in for an *unknown* attack, detectable only by the
// anomaly-based module ("able to react to unknown attacks", §IV-B4).
const BLEFloodAttack = "ble-adv-flood"

// BLEFlood floods the Bluetooth advertising channel with bogus
// advertisements, starving legitimate devices (a Denial of Thing
// against BLE peripherals like the smart lock).
type BLEFlood struct {
	// Attacker is the flooding radio.
	Attacker *netsim.Node
	// Burst is the number of advertisements per episode (default 150).
	Burst int
	// Spacing between advertisements (default 30 ms).
	Spacing time.Duration
}

// Inject schedules the episodes and returns their ground truth.
func (a *BLEFlood) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.Burst == 0 {
		a.Burst = 150
	}
	if a.Spacing == 0 {
		a.Spacing = 30 * time.Millisecond
	}
	insts := sched.Instances(BLEFloodAttack, packet.NodeID(a.Attacker.Name), "")
	for _, inst := range insts {
		inst := inst
		sim.At(inst.Start, func() {
			for i := 0; i < a.Burst; i++ {
				adv := ble.Address{0xbb, byte(inst.ID), byte(i >> 8), byte(i), 0, 0}
				raw := stack.BuildBLEAdv(adv, []byte{0x02, 0x01, 0x06})
				off := time.Duration(i) * a.Spacing
				sim.After(off, func() {
					a.Attacker.SendTruth(packet.MediumBluetooth, raw, truth(inst))
				})
			}
		})
	}
	return insts
}
