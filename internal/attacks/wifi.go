package attacks

import (
	"net/netip"
	"time"

	"kalis/internal/attack"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/tcp"
)

// ICMPFlood injects ICMP Flood episodes: during each episode the
// attacker node transmits a burst of ICMP Echo Replies to the victim,
// "using several different identities as sender" (§III-A1). The
// attacker spoofs both the IP source and the matching link-layer
// address, so the only tell is physical (RSSI).
type ICMPFlood struct {
	// Attacker is the attacking node (its radio position determines
	// the flood frames' RSSI fingerprint).
	Attacker *netsim.Node
	// Victim is the flooded IP address.
	Victim netip.Addr
	// Spoofed are the sender identities cycled through.
	Spoofed []netip.Addr
	// Burst is the number of replies per episode (default 40).
	Burst int
	// Spacing is the gap between replies in a burst (default 75 ms).
	Spacing time.Duration
}

// Inject schedules the episodes and returns their ground truth.
func (a *ICMPFlood) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.Burst == 0 {
		a.Burst = 40
	}
	if a.Spacing == 0 {
		a.Spacing = 75 * time.Millisecond
	}
	insts := sched.Instances(attack.ICMPFlood, packet.NodeID(a.Attacker.IP.String()), stack.IPID(a.Victim))
	for _, inst := range insts {
		inst := inst
		sim.At(inst.Start, func() {
			for i := 0; i < a.Burst; i++ {
				src := a.Spoofed[i%len(a.Spoofed)]
				raw := stack.BuildICMPEchoPayload(src, a.Victim, icmp.TypeEchoReply,
					uint16(inst.ID), uint16(i), 64, stack.PingPayload())
				off := time.Duration(i) * a.Spacing
				sim.After(off, func() {
					a.Attacker.SendTruth(packet.MediumWiFi, raw, truth(inst))
				})
			}
		})
	}
	return insts
}

// Smurf injects Smurf episodes: spoofed ICMP Echo Requests — with the
// victim as source — arrive from the Internet through the local router
// and hit several amplifier hosts, whose replies converge on the
// victim (§III-A1). The echo replies themselves are produced by the
// amplifiers' own IPHost behaviour; the injector only transmits the
// spoofed requests via the router.
type Smurf struct {
	// Router is the local gateway that forwards the Internet-side
	// spoofed requests (its transmissions differ from the claimed
	// source, which is also the multi-hop evidence for topology
	// discovery).
	Router *netsim.Node
	// Victim is the spoofed source (and actual target).
	Victim netip.Addr
	// Amplifiers are the addresses of the local echo responders.
	Amplifiers []netip.Addr
	// RequestsPerAmp is the number of requests per amplifier per
	// episode (default 12).
	RequestsPerAmp int
	// Spacing is the gap between consecutive requests (default 60 ms).
	Spacing time.Duration
}

// Inject schedules the episodes and returns their ground truth.
func (a *Smurf) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.RequestsPerAmp == 0 {
		a.RequestsPerAmp = 12
	}
	if a.Spacing == 0 {
		a.Spacing = 60 * time.Millisecond
	}
	insts := sched.Instances(attack.Smurf, packet.NodeID(a.Router.IP.String()), stack.IPID(a.Victim))
	for _, inst := range insts {
		inst := inst
		sim.At(inst.Start, func() {
			n := 0
			for i := 0; i < a.RequestsPerAmp; i++ {
				for _, amp := range a.Amplifiers {
					ipPkt := stack.EncodeICMPEchoIP(a.Victim, amp, icmp.TypeEchoRequest,
						uint16(inst.ID), uint16(n), 63, stack.PingPayload())
					raw := stack.BuildIPFrame(a.Router.IP, amp, uint16(n), ipPkt)
					off := time.Duration(n) * a.Spacing
					sim.After(off, func() {
						a.Router.SendTruth(packet.MediumWiFi, raw, truth(inst))
					})
					n++
				}
			}
		})
	}
	return insts
}

// SYNFlood injects TCP SYN flood episodes against a victim service:
// bursts of connection-opening SYNs from spoofed sources that never
// complete a handshake.
type SYNFlood struct {
	Attacker *netsim.Node
	Victim   netip.Addr
	Spoofed  []netip.Addr
	// Burst is the number of SYNs per episode (default 40).
	Burst int
	// Spacing is the gap between SYNs (default 75 ms).
	Spacing time.Duration
}

// Inject schedules the episodes and returns their ground truth.
func (a *SYNFlood) Inject(sim *netsim.Sim, sched Schedule) []Instance {
	if a.Burst == 0 {
		a.Burst = 40
	}
	if a.Spacing == 0 {
		a.Spacing = 75 * time.Millisecond
	}
	insts := sched.Instances(attack.SYNFlood, packet.NodeID(a.Attacker.IP.String()), stack.IPID(a.Victim))
	for _, inst := range insts {
		inst := inst
		sim.At(inst.Start, func() {
			for i := 0; i < a.Burst; i++ {
				src := a.Spoofed[i%len(a.Spoofed)]
				raw := stack.BuildTCP(src, a.Victim, uint16(10000+i), 443, tcp.FlagSYN,
					uint32(inst.ID)<<16|uint32(i), 0, uint16(i), nil)
				off := time.Duration(i) * a.Spacing
				sim.After(off, func() {
					a.Attacker.SendTruth(packet.MediumWiFi, raw, truth(inst))
				})
			}
		})
	}
	return insts
}
