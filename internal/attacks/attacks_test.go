package attacks

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"kalis/internal/attack"
	"kalis/internal/devices"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
)

func collect(sim *netsim.Sim, pos netsim.Position, mediums ...packet.Medium) *[]*packet.Captured {
	sn := sim.AddSniffer("probe", pos, mediums...)
	caps := &[]*packet.Captured{}
	sn.Subscribe(func(c *packet.Captured) { *caps = append(*caps, c.Clone()) })
	return caps
}

func countTruth(caps []*packet.Captured, name string) int {
	n := 0
	for _, c := range caps {
		if c.Truth != nil && c.Truth.Attack == name {
			n++
		}
	}
	return n
}

func TestScheduleInstances(t *testing.T) {
	t0 := netsim.Epoch
	s := Schedule{Start: t0, Count: 3, Every: time.Minute, Duration: 10 * time.Second}
	insts := s.Instances("sybil", "atk", "v")
	if len(insts) != 3 {
		t.Fatalf("len = %d", len(insts))
	}
	if insts[0].ID != 1 || insts[2].ID != 3 {
		t.Error("IDs not 1-based sequential")
	}
	if !insts[1].Start.Equal(t0.Add(time.Minute)) || !insts[1].End.Equal(t0.Add(70*time.Second)) {
		t.Errorf("instance 2 window: %v..%v", insts[1].Start, insts[1].End)
	}
	if insts[0].Attacker != "atk" || insts[0].Victim != "v" || insts[0].Attack != "sybil" {
		t.Errorf("metadata: %+v", insts[0])
	}
}

func TestEpisodeActive(t *testing.T) {
	t0 := netsim.Epoch
	insts := Schedule{Start: t0, Count: 2, Every: time.Minute, Duration: 10 * time.Second}.Instances("x", "a", "")
	if _, on := episodeActive(insts, t0.Add(5*time.Second)); !on {
		t.Error("inside episode 1")
	}
	if inst, on := episodeActive(insts, t0.Add(65*time.Second)); !on || inst.ID != 2 {
		t.Error("inside episode 2")
	}
	if _, on := episodeActive(insts, t0.Add(30*time.Second)); on {
		t.Error("between episodes")
	}
}

func TestICMPFloodInjector(t *testing.T) {
	sim := netsim.New(1)
	atk := sim.AddNode(&netsim.Node{Name: "atk", IP: netip.MustParseAddr("10.0.0.9"), Pos: netsim.Position{X: 5}})
	caps := collect(sim, netsim.Position{})
	inj := &ICMPFlood{
		Attacker: atk,
		Victim:   netip.MustParseAddr("10.0.0.1"),
		Spoofed:  []netip.Addr{netip.MustParseAddr("10.0.0.2"), netip.MustParseAddr("10.0.0.3")},
		Burst:    10,
	}
	insts := inj.Inject(sim, Schedule{Start: sim.Now().Add(time.Second), Count: 2, Every: 30 * time.Second, Duration: 2 * time.Second})
	sim.RunFor(time.Minute)
	if len(insts) != 2 {
		t.Fatalf("instances = %d", len(insts))
	}
	if got := countTruth(*caps, attack.ICMPFlood); got != 20 {
		t.Errorf("labelled flood frames = %d, want 20", got)
	}
	// Spoofing: both claimed identities appear, never the attacker's.
	srcs := map[packet.NodeID]bool{}
	for _, c := range *caps {
		if c.Kind == packet.KindICMPEchoReply {
			srcs[c.Src] = true
		}
	}
	if !srcs["10.0.0.2"] || !srcs["10.0.0.3"] || srcs["10.0.0.9"] {
		t.Errorf("flood sources: %v", srcs)
	}
}

func TestSmurfInjectorTriggersAmplifiers(t *testing.T) {
	sim := netsim.New(1)
	router := sim.AddNode(&netsim.Node{Name: "r", IP: netip.MustParseAddr("192.168.1.1"), Pos: netsim.Position{X: 2}})
	ampIP := netip.MustParseAddr("192.168.1.21")
	amp := sim.AddNode(&netsim.Node{Name: "amp", IP: ampIP, Pos: netsim.Position{X: 8}})
	host := devices.NewIPHost(amp)
	caps := collect(sim, netsim.Position{})
	inj := &Smurf{Router: router, Victim: netip.MustParseAddr("192.168.1.10"),
		Amplifiers: []netip.Addr{ampIP}, RequestsPerAmp: 5}
	inj.Inject(sim, Schedule{Start: sim.Now().Add(time.Second), Count: 1, Every: time.Minute, Duration: 2 * time.Second})
	sim.RunFor(30 * time.Second)
	if host.Replies != 5 {
		t.Errorf("amplifier replies = %d, want 5", host.Replies)
	}
	// Replies converge on the victim.
	replies := 0
	for _, c := range *caps {
		if c.Kind == packet.KindICMPEchoReply && c.Dst == "192.168.1.10" {
			replies++
		}
	}
	if replies != 5 {
		t.Errorf("replies to victim = %d", replies)
	}
}

func TestSYNFloodInjector(t *testing.T) {
	sim := netsim.New(8)
	atk := sim.AddNode(&netsim.Node{Name: "atk", IP: netip.MustParseAddr("10.0.0.9"), Pos: netsim.Position{X: 5}})
	caps := collect(sim, netsim.Position{})
	inj := &SYNFlood{
		Attacker: atk,
		Victim:   netip.MustParseAddr("10.0.0.1"),
		Spoofed:  []netip.Addr{netip.MustParseAddr("1.2.3.4")},
		Burst:    12,
	}
	insts := inj.Inject(sim, Schedule{Start: sim.Now().Add(time.Second), Count: 2, Every: 20 * time.Second, Duration: 2 * time.Second})
	sim.RunFor(time.Minute)
	if len(insts) != 2 {
		t.Fatalf("instances = %d", len(insts))
	}
	syns := 0
	for _, c := range *caps {
		if c.Kind == packet.KindTCPSYN && c.Dst == "10.0.0.1" {
			syns++
			if c.Src != "1.2.3.4" {
				t.Errorf("SYN source = %s, want spoofed", c.Src)
			}
		}
	}
	if syns != 24 {
		t.Errorf("SYNs = %d, want 24", syns)
	}
	if got := countTruth(*caps, attack.SYNFlood); got != 24 {
		t.Errorf("labelled = %d", got)
	}
}

func TestSelectiveForwardingInjectorEpisodic(t *testing.T) {
	sim := netsim.New(2)
	motes := devices.BuildWSNLine(sim, 3, 20)
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}
	inj := &SelectiveForwarding{Relay: motes[1], DropProb: 1.0, Rand: rand.New(rand.NewSource(1))}
	insts := inj.Inject(sim, Schedule{Start: sim.Now().Add(30 * time.Second), Count: 1, Every: time.Minute, Duration: 15 * time.Second})
	caps := collect(sim, netsim.Position{X: 20, Y: 10}, packet.MediumIEEE802154)
	sim.RunFor(90 * time.Second)

	forwardedDuring, forwardedOutside := 0, 0
	for _, c := range *caps {
		d, ok := c.Layer("ctp-data").(*ctp.Data)
		if !ok || d.THL == 0 {
			continue
		}
		if _, on := episodeActive(insts, c.Time); on {
			forwardedDuring++
		} else {
			forwardedOutside++
		}
	}
	if forwardedDuring != 0 {
		t.Errorf("frames forwarded during total-drop episode: %d", forwardedDuring)
	}
	if forwardedOutside == 0 {
		t.Error("no forwarding outside episodes (relay broken)")
	}
}

func TestReplicationInjectorSeqConflict(t *testing.T) {
	sim := netsim.New(3)
	motes := devices.BuildWSNLine(sim, 3, 20)
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}
	caps := collect(sim, netsim.Position{X: 20, Y: 10}, packet.MediumIEEE802154)
	inj := &Replication{Clone: motes[2], Position: netsim.Position{X: 60, Y: 20}}
	inj.Inject(sim, Schedule{Start: sim.Now().Add(10 * time.Second), Count: 1, Every: time.Minute, Duration: 20 * time.Second})
	sim.RunFor(40 * time.Second)

	// The cloned identity originates with two distinct counters.
	var seqs []uint8
	for _, c := range *caps {
		d, ok := c.Layer("ctp-data").(*ctp.Data)
		if ok && d.Origin == motes[2].Addr() && d.THL == 0 {
			seqs = append(seqs, d.SeqNo)
		}
	}
	regressions := 0
	for i := 1; i < len(seqs); i++ {
		if int8(seqs[i]-seqs[i-1]) <= 0 {
			regressions++
		}
	}
	if regressions < 3 {
		t.Errorf("sequence regressions = %d, want >= 3", regressions)
	}
}

func TestSybilInjectorFreshIdentities(t *testing.T) {
	sim := netsim.New(4)
	atk := sim.AddNode(&netsim.Node{Name: "platform", Pos: netsim.Position{X: 10}})
	caps := collect(sim, netsim.Position{}, packet.MediumIEEE802154)
	inj := &Sybil{Attacker: atk, Identities: 4, FramesPerIdentity: 2}
	inj.Inject(sim, Schedule{Start: sim.Now().Add(time.Second), Count: 1, Every: time.Minute, Duration: 5 * time.Second})
	sim.RunFor(30 * time.Second)
	ids := map[packet.NodeID]bool{}
	for _, c := range *caps {
		ids[c.Transmitter] = true
	}
	if len(ids) != 4 {
		t.Errorf("fabricated identities = %d, want 4", len(ids))
	}
}

func TestSinkholeInjectorBeacons(t *testing.T) {
	sim := netsim.New(5)
	adv := sim.AddNode(&netsim.Node{Name: "sink", Addr16: 5, Pos: netsim.Position{X: 10}})
	caps := collect(sim, netsim.Position{}, packet.MediumIEEE802154)
	inj := &Sinkhole{Advertiser: adv, Beacons: 3}
	inj.Inject(sim, Schedule{Start: sim.Now().Add(time.Second), Count: 2, Every: 30 * time.Second, Duration: 3 * time.Second})
	sim.RunFor(90 * time.Second)
	lying := 0
	for _, c := range *caps {
		if b, ok := c.Layer("ctp-beacon").(*ctp.Beacon); ok && b.ETX == 1 {
			lying++
		}
	}
	if lying != 6 {
		t.Errorf("lying beacons = %d, want 6", lying)
	}
}

func TestDataAlterationInjectorCorrupts(t *testing.T) {
	sim := netsim.New(6)
	motes := devices.BuildWSNLine(sim, 3, 20)
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}
	caps := collect(sim, netsim.Position{X: 20, Y: 10}, packet.MediumIEEE802154)
	inj := &DataAlteration{Relay: motes[1]}
	insts := inj.Inject(sim, Schedule{Start: sim.Now().Add(10 * time.Second), Count: 1, Every: time.Minute, Duration: 15 * time.Second})
	sim.RunFor(40 * time.Second)
	corrupt, clean := 0, 0
	for _, c := range *caps {
		d, ok := c.Layer("ctp-data").(*ctp.Data)
		if !ok || d.THL == 0 || len(d.Payload) < 2 {
			continue
		}
		if d.Payload[1] != d.SeqNo {
			corrupt++
			// The forwarding delay may push a frame mutated at the very
			// end of an episode slightly past its boundary.
			_, onNow := episodeActive(insts, c.Time)
			_, onJustBefore := episodeActive(insts, c.Time.Add(-time.Second))
			if !onNow && !onJustBefore {
				t.Error("corruption outside episode")
			}
		} else {
			clean++
		}
	}
	if corrupt == 0 || clean == 0 {
		t.Errorf("corrupt=%d clean=%d, want both > 0", corrupt, clean)
	}
}

func TestWormholeInjectorTunnels(t *testing.T) {
	sim := netsim.New(7)
	motes := devices.BuildWSNLine(sim, 4, 20) // 1..4, relay 3 forwards 4's traffic
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}
	b2 := sim.AddNode(&netsim.Node{Name: "b2", Addr16: 9, Pos: netsim.Position{X: 40, Y: 30}})
	caps := collect(sim, netsim.Position{X: 30, Y: 10}, packet.MediumIEEE802154)
	inj := &Wormhole{B1: motes[2], B2: b2, B2Parent: 1}
	inj.Inject(sim, Schedule{Start: sim.Now().Add(10 * time.Second), Count: 1, Every: time.Minute, Duration: 20 * time.Second})
	sim.RunFor(40 * time.Second)
	tunneled := 0
	for _, c := range *caps {
		if c.Truth != nil && c.Truth.Attack == attack.Wormhole && c.Transmitter == "0x0009" {
			tunneled++
		}
	}
	if tunneled == 0 {
		t.Error("no tunneled frames re-emitted by B2")
	}
}
