package persist

import (
	"bytes"
	"testing"

	"kalis/internal/core/knowledge"
)

// TestKnowggetVersionRoundTrip pins the flags-bit-2 version encoding:
// versioned knowggets round-trip exactly and unversioned records keep
// the pre-version wire shape (no trailing uvarint).
func TestKnowggetVersionRoundTrip(t *testing.T) {
	in := []knowledge.Knowgget{
		{Creator: "K1", Label: "A", Value: "1"},
		{Creator: "K1", Label: "B", Value: "2", Collective: true, Version: 7},
		{Creator: "K2", Label: "C", Entity: "0x01", Value: "3", Collective: true, Version: 1 << 40},
	}
	raw := EncodeSnapshotBytes(&Snapshot{Knowggets: in})
	snap, err := DecodeSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(snap.Knowggets) != len(in) {
		t.Fatalf("got %d knowggets, want %d", len(snap.Knowggets), len(in))
	}
	for i, k := range snap.Knowggets {
		if k != in[i] {
			t.Errorf("knowgget %d = %+v, want %+v", i, k, in[i])
		}
	}

	// An unversioned record encodes byte-identically with and without
	// the version field in the struct zero state — i.e. old snapshots
	// (flags bit 2 never set) parse unchanged.
	oldWire := appendKnowgget(nil, knowledge.Knowgget{Creator: "K1", Label: "A", Value: "1"})
	k, rest, err := readKnowgget(oldWire)
	if err != nil || len(rest) != 0 || k.Version != 0 {
		t.Fatalf("legacy record decode: k=%+v rest=%d err=%v", k, len(rest), err)
	}
}
