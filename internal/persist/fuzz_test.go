package persist

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"kalis/internal/core/knowledge"
)

// fuzzSnapshot is a well-formed snapshot the mutator can truncate,
// bit-flip and splice.
func fuzzSnapshot() []byte {
	return EncodeSnapshotBytes(&Snapshot{
		Knowggets: []knowledge.Knowgget{
			{Creator: "K1", Label: "Multihop", Value: "true"},
			{Creator: "K2", Label: "SignalStrength", Entity: "Sensor@A", Value: "-67", Collective: true},
		},
		StaticLabels: []string{"Mobility"},
		WindowTrace:  []byte{'K', 'T', 'R', 'C', 1},
	})
}

// fuzzJournal encodes a well-formed journal with one put and one
// delete record.
func fuzzJournal(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	jw, err := newJournalWriter(JournalPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	if err := jw.append(knowledge.OpPut, "",
		knowledge.Knowgget{Creator: "K1", Label: "A", Value: "1"}); err != nil {
		f.Fatal(err)
	}
	if err := jw.append(knowledge.OpDelete, "K1$A", knowledge.Knowgget{}); err != nil {
		f.Fatal(err)
	}
	if err := jw.close(); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzSnapshotLoad drives the snapshot decoder with arbitrary bytes:
// it must never panic, and on any error the caller-visible contract
// holds — all-or-nothing, so a Restore driven by the result can never
// leave a partially-applied KB.
func FuzzSnapshotLoad(f *testing.F) {
	good := fuzzSnapshot()
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(append([]byte("garbage"), good...))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	flipped := append([]byte{}, good...)
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			if snap != nil {
				t.Fatalf("error %v returned a partial snapshot", err)
			}
			return
		}
		// A decoded snapshot must re-encode and decode to the same
		// state (the KB restore path depends on this fixed point).
		// Compare via the canonical encoding: decode may return nil vs
		// empty slices interchangeably for an empty section.
		enc := EncodeSnapshotBytes(snap)
		again, err := DecodeSnapshot(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot rejected: %v", err)
		}
		if !bytes.Equal(enc, EncodeSnapshotBytes(again)) {
			t.Fatalf("re-encode round trip diverged:\n%+v\n%+v", snap, again)
		}
		// And it must load into a KB without panicking.
		kb := knowledge.NewBase("K1")
		kb.Restore(snap.Knowggets, snap.StaticLabels)
	})
}

// FuzzJournalReplay drives journal replay with arbitrary bytes: never
// a panic, and every accepted prefix must re-verify — replaying the
// first goodBytes again yields exactly the same entries with no
// truncation, which is what the post-crash restart relies on.
func FuzzJournalReplay(f *testing.F) {
	good := fuzzJournal(f)
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(good[:journalHeaderLen])
	f.Add(append([]byte{}, good[:2]...))
	f.Add(append(good, 0x05, 0x00, 0x00))
	flipped := append([]byte{}, good...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, goodBytes, torn, err := replayJournal(bytes.NewReader(data))
		if err != nil {
			if len(entries) != 0 || goodBytes != 0 {
				t.Fatalf("header error kept entries: %d, %d bytes", len(entries), goodBytes)
			}
			return
		}
		if goodBytes < journalHeaderLen || goodBytes > int64(len(data)) {
			t.Fatalf("goodBytes %d outside [%d,%d]", goodBytes, journalHeaderLen, len(data))
		}
		// The verified prefix is stable: truncating there and
		// replaying again must reproduce the same entries cleanly.
		again, againBytes, againTorn, err := replayJournal(bytes.NewReader(data[:goodBytes]))
		if err != nil || againTorn || againBytes != goodBytes {
			t.Fatalf("verified prefix did not re-verify: %v torn=%v bytes=%d/%d",
				err, againTorn, againBytes, goodBytes)
		}
		if !reflect.DeepEqual(entries, again) {
			t.Fatalf("replay of verified prefix diverged")
		}
		_ = torn
		// Applying the entries to a KB must never panic, whatever the
		// decoded contents.
		kb := knowledge.NewBase("K1")
		state := make(map[string]knowledge.Knowgget)
		for _, e := range entries {
			switch e.Op {
			case knowledge.OpPut:
				state[e.Knowgget.Key()] = e.Knowgget
			case knowledge.OpDelete:
				delete(state, e.Key)
			default:
				t.Fatalf("replay accepted unknown op %d", e.Op)
			}
		}
		ks := make([]knowledge.Knowgget, 0, len(state))
		for _, k := range state {
			ks = append(ks, k)
		}
		kb.Restore(ks, nil)
	})
}
