package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"kalis/internal/core/knowledge"
)

// SnapshotMagic identifies a Kalis node snapshot.
var SnapshotMagic = [4]byte{'K', 'S', 'N', 'P'}

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

// Snapshot section identifiers.
const (
	sectionKB        = byte(1) // Knowledge Base entries + static labels
	sectionDataStore = byte(2) // Data Store window as an embedded trace stream
)

// maxSectionLen bounds a section payload; anything larger is treated
// as corruption rather than an allocation request.
const maxSectionLen = 1 << 28

// Errors returned by the snapshot loader. All of them mean "cold
// start": a snapshot either verifies completely or is not used at all.
var (
	ErrSnapshotMagic   = errors.New("persist: bad snapshot magic")
	ErrSnapshotVersion = errors.New("persist: unsupported snapshot version")
	ErrSnapshotCorrupt = errors.New("persist: corrupt snapshot")
)

// Snapshot is the decoded durable state of one Kalis node: the full
// Knowledge Base contents and the Data Store window (kept as the raw
// embedded trace stream; the datastore decodes it on restore).
type Snapshot struct {
	Knowggets    []knowledge.Knowgget
	StaticLabels []string
	// WindowTrace is the Data Store section payload: a complete Kalis
	// trace stream of the sliding-window records, oldest first.
	WindowTrace []byte
}

// EncodeSnapshot serializes the snapshot: magic, version, then one
// self-checking section per state domain. Each section is framed as
//
//	id byte | uvarint payload length | payload | crc32(payload) LE
//
// so a torn tail or a flipped bit is always caught on load; the
// per-section CRC32 follows internal/trace's framing conventions.
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	if _, err := w.Write(SnapshotMagic[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{SnapshotVersion}); err != nil {
		return err
	}
	if err := writeSection(w, sectionKB, encodeKB(s)); err != nil {
		return err
	}
	return writeSection(w, sectionDataStore, s.WindowTrace)
}

func writeSection(w io.Writer, id byte, payload []byte) error {
	var hdr []byte
	hdr = append(hdr, id)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(sum[:])
	return err
}

// encodeKB serializes the Knowledge Base section payload: knowgget
// count, then each knowgget as flags + creator/label/entity/value,
// then the static-label list.
func encodeKB(s *Snapshot) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(s.Knowggets)))
	for _, k := range s.Knowggets {
		buf = appendKnowgget(buf, k)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.StaticLabels)))
	for _, label := range s.StaticLabels {
		buf = appendString(buf, label)
	}
	return buf
}

func appendKnowgget(buf []byte, k knowledge.Knowgget) []byte {
	flags := byte(0)
	if k.Collective {
		flags |= 1
	}
	if k.Version != 0 {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = appendString(buf, k.Creator)
	buf = appendString(buf, k.Label)
	buf = appendString(buf, k.Entity)
	buf = appendString(buf, k.Value)
	if k.Version != 0 {
		buf = binary.AppendUvarint(buf, k.Version)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeSnapshot parses and fully verifies a snapshot stream. It
// either returns a complete, checksum-verified snapshot or an error —
// never a partial result: the caller's recovery ladder treats any
// error as a cold start.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	br := newByteReader(r)
	var header [5]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrSnapshotCorrupt, err)
	}
	if [4]byte(header[:4]) != SnapshotMagic {
		return nil, ErrSnapshotMagic
	}
	if header[4] != SnapshotVersion {
		return nil, fmt.Errorf("%w: %d", ErrSnapshotVersion, header[4])
	}
	snap := &Snapshot{}
	seen := make(map[byte]bool)
	for {
		id, err := br.ReadByte()
		if errors.Is(err, io.EOF) {
			return snap, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: section id: %v", ErrSnapshotCorrupt, err)
		}
		payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrSnapshotCorrupt, id)
		}
		seen[id] = true
		switch id {
		case sectionKB:
			if err := decodeKB(payload, snap); err != nil {
				return nil, err
			}
		case sectionDataStore:
			snap.WindowTrace = payload
		default:
			return nil, fmt.Errorf("%w: unknown section %d", ErrSnapshotCorrupt, id)
		}
	}
}

func readSection(br *byteReaderT) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: section length: %v", ErrSnapshotCorrupt, err)
	}
	if n > maxSectionLen {
		return nil, fmt.Errorf("%w: section length %d", ErrSnapshotCorrupt, n)
	}
	payload, err := readExact(br, n)
	if err != nil {
		return nil, fmt.Errorf("%w: section body: %v", ErrSnapshotCorrupt, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: section checksum: %v", ErrSnapshotCorrupt, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: section checksum mismatch", ErrSnapshotCorrupt)
	}
	return payload, nil
}

func decodeKB(payload []byte, snap *Snapshot) error {
	count, payload, err := readUvarint(payload)
	if err != nil {
		return err
	}
	if count > maxSectionLen {
		return fmt.Errorf("%w: knowgget count %d", ErrSnapshotCorrupt, count)
	}
	snap.Knowggets = make([]knowledge.Knowgget, 0, min(int(count), 4096))
	for i := uint64(0); i < count; i++ {
		var k knowledge.Knowgget
		if k, payload, err = readKnowgget(payload); err != nil {
			return err
		}
		snap.Knowggets = append(snap.Knowggets, k)
	}
	count, payload, err = readUvarint(payload)
	if err != nil {
		return err
	}
	if count > maxSectionLen {
		return fmt.Errorf("%w: static-label count %d", ErrSnapshotCorrupt, count)
	}
	for i := uint64(0); i < count; i++ {
		var label string
		if label, payload, err = readString(payload); err != nil {
			return err
		}
		snap.StaticLabels = append(snap.StaticLabels, label)
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in KB section", ErrSnapshotCorrupt, len(payload))
	}
	return nil
}

func readKnowgget(buf []byte) (knowledge.Knowgget, []byte, error) {
	var k knowledge.Knowgget
	if len(buf) < 1 {
		return k, nil, fmt.Errorf("%w: knowgget flags", ErrSnapshotCorrupt)
	}
	flags := buf[0]
	k.Collective = flags&1 != 0
	buf = buf[1:]
	var err error
	if k.Creator, buf, err = readString(buf); err != nil {
		return k, nil, err
	}
	if k.Label, buf, err = readString(buf); err != nil {
		return k, nil, err
	}
	if k.Entity, buf, err = readString(buf); err != nil {
		return k, nil, err
	}
	if k.Value, buf, err = readString(buf); err != nil {
		return k, nil, err
	}
	// Flag bit 2 (added with the gossip version vectors) marks a
	// trailing creator-local version; records written before it decode
	// unchanged with Version 0.
	if flags&2 != 0 {
		if k.Version, buf, err = readUvarint(buf); err != nil {
			return k, nil, err
		}
	}
	return k, buf, nil
}

// readExact reads exactly n bytes, growing in bounded chunks so a
// corrupt length claim cannot force a giant up-front allocation — the
// read fails at the true end of input long before the claimed size is
// reached.
func readExact(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min(int(n), chunk))
	for uint64(len(buf)) < n {
		step := n - uint64(len(buf))
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, off := binary.Uvarint(buf)
	if off <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", ErrSnapshotCorrupt)
	}
	return v, buf[off:], nil
}

func readString(buf []byte) (string, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(buf)) {
		return "", nil, fmt.Errorf("%w: truncated string", ErrSnapshotCorrupt)
	}
	return string(buf[:n]), buf[n:], nil
}

// byteReader adapts any reader to the io.ByteReader + io.Reader pair
// the decoder needs, buffering nothing beyond one byte of lookahead.
type byteReaderT struct {
	r   io.Reader
	one [1]byte
}

func newByteReader(r io.Reader) *byteReaderT {
	if br, ok := r.(*byteReaderT); ok {
		return br
	}
	return &byteReaderT{r: r}
}

func (b *byteReaderT) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReaderT) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// EncodeSnapshotBytes is EncodeSnapshot into memory, for tests and
// fuzzers that need a valid stream to mutate.
func EncodeSnapshotBytes(s *Snapshot) []byte {
	var buf bytes.Buffer
	// bytes.Buffer writes cannot fail.
	_ = EncodeSnapshot(&buf, s)
	return buf.Bytes()
}
