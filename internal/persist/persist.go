// Package persist is Kalis' crash-safe durable-state layer: a
// versioned binary snapshot of the Knowledge Base and the Data Store
// window, plus an append-only write-ahead journal of every accepted KB
// mutation. Together they give a production node what fault.CrashNode
// only pretended it had — a warm restart: a node rebooted from its
// state directory comes back with the knowledge it had collectively
// and locally learned, instead of re-learning the network from
// nothing while an attack is in progress (HADES-IoT applies the same
// persisted-whitelist requirement to host-based IoT detection).
//
// Crash-safety argument, in three invariants:
//
//  1. Snapshots are atomic: written to a temp file, fsynced, then
//     renamed over the previous snapshot (and the directory fsynced).
//     A crash mid-write leaves either the old snapshot or the new one,
//     never a loadable-but-corrupt hybrid; every section additionally
//     carries a CRC32 so bit rot is caught on load.
//  2. The journal is append-only with per-record checksums: a crash
//     mid-append loses at most the record being written. Replay stops
//     at the first torn or checksum-failing record and truncates the
//     file there.
//  3. Recovery validates everything before applying anything: the
//     snapshot and the journal's verified prefix are fully decoded
//     first, then installed into the KB/Data Store in one step — a
//     corrupt input can never leave a partially-applied KB.
//
// The recovery decision ladder (see DESIGN.md §9): intact snapshot and
// clean journal → warm; intact snapshot with a torn journal tail (or a
// journal-only state with a torn tail) → truncated, the verified
// prefix applies; missing or corrupt snapshot → cold, prior files are
// archived aside and the node starts from nothing.
package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kalis/internal/core/datastore"
	"kalis/internal/core/knowledge"
	"kalis/internal/telemetry"
	"kalis/internal/trace"
)

// Outcome classifies one recovery, as exported on
// kalis_persist_recoveries_total{outcome=...}.
type Outcome string

// Recovery outcomes, from best to worst.
const (
	// OutcomeWarm means the snapshot and journal verified completely.
	OutcomeWarm Outcome = "warm"
	// OutcomeTruncated means recovery succeeded from the verified
	// prefix: a torn or corrupt journal tail was truncated.
	OutcomeTruncated Outcome = "truncated"
	// OutcomeCold means no usable prior state: nothing on disk, or a
	// snapshot that failed verification (archived aside, never
	// partially applied).
	OutcomeCold Outcome = "cold"
)

// DefaultInterval is the default snapshot-compaction interval on the
// capture clock.
const DefaultInterval = 30 * time.Second

// Metrics are the persistence layer's optional telemetry hooks; all
// telemetry types are nil-safe, so the zero value disables them.
type Metrics struct {
	// Snapshots counts snapshots written (kalis_persist_snapshot_total).
	Snapshots *telemetry.Counter
	// JournalBytes tracks the current journal size in bytes
	// (kalis_persist_journal_bytes).
	JournalBytes *telemetry.Gauge
	// Recoveries counts recoveries by outcome
	// (kalis_persist_recoveries_total{outcome=warm|cold|truncated}).
	Recoveries *telemetry.CounterVec
}

// Config configures a Manager.
type Config struct {
	// Dir is the node's state directory; created if absent.
	Dir string
	// Interval is the snapshot-compaction interval on the capture
	// clock; 0 selects DefaultInterval.
	Interval time.Duration
	// Metrics are the telemetry hooks.
	Metrics Metrics
}

// SnapshotPath returns the snapshot file path inside a state dir.
func SnapshotPath(dir string) string { return filepath.Join(dir, "snapshot.ksnp") }

// JournalPath returns the journal file path inside a state dir.
func JournalPath(dir string) string { return filepath.Join(dir, "journal.kjnl") }

// Manager owns one node's durable state: it recovers it at Open,
// journals every accepted KB mutation, compacts the journal into a
// fresh snapshot on the capture clock, and flushes everything at Stop.
type Manager struct {
	dir      string
	interval time.Duration
	kb       *knowledge.Base
	store    *datastore.Store
	met      Metrics

	mu          sync.Mutex
	journal     *journalWriter
	lastCompact time.Time
	clockSet    bool
	closed      bool
	err         error // sticky first I/O failure

	outcome   Outcome
	recovered int // knowggets restored from the snapshot+journal
	replayed  int // journal entries applied on top of the snapshot
	window    int // window records restored
}

// Open recovers any prior state from cfg.Dir into kb and store,
// installs the KB write-ahead hook, and returns the manager. Open
// must run before modules are installed and before traffic flows:
// recovery bulk-loads the KB without firing subscribers.
//
// Open never fails on corrupt state — that is the point of the
// recovery ladder — only on environmental errors (unwritable
// directory, fsync failures).
func Open(cfg Config, kb *knowledge.Base, store *datastore.Store) (*Manager, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: state dir: %w", err)
	}
	m := &Manager{
		dir:      cfg.Dir,
		interval: cfg.Interval,
		kb:       kb,
		store:    store,
		met:      cfg.Metrics,
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	m.met.Recoveries.With(string(m.outcome)).Inc()
	m.met.JournalBytes.Set(m.journalBytesLocked())
	kb.SetJournal(m.record)
	return m, nil
}

// recover runs the decision ladder and leaves an append-ready journal.
func (m *Manager) recover() error {
	snap, snapErr := loadSnapshotFile(SnapshotPath(m.dir))
	entries, goodBytes, torn, jErr := loadJournalFile(JournalPath(m.dir))

	switch {
	case snapErr == nil && snap == nil && jErr == nil && entries == nil && !torn && goodBytes == 0:
		// Nothing on disk: a brand-new node.
		m.outcome = OutcomeCold
	case snapErr != nil:
		// A snapshot existed but failed verification. Journal deltas
		// without their base state must not be applied either: archive
		// both and start cold — never a partial load.
		m.outcome = OutcomeCold
		archiveCorrupt(SnapshotPath(m.dir))
		archiveCorrupt(JournalPath(m.dir))
	case jErr != nil:
		// Journal header unreadable: its deltas are lost wholesale.
		// With a verified snapshot the base state still applies
		// (truncated-warm); without one this is a cold start.
		archiveCorrupt(JournalPath(m.dir))
		if snap != nil {
			m.outcome = OutcomeTruncated
			if err := m.apply(snap, nil); err != nil {
				m.outcome = OutcomeCold
				archiveCorrupt(SnapshotPath(m.dir))
			}
		} else {
			m.outcome = OutcomeCold
		}
	default:
		// Base state (possibly absent) plus a verified journal prefix.
		if err := m.apply(snap, entries); err != nil {
			m.outcome = OutcomeCold
			archiveCorrupt(SnapshotPath(m.dir))
			archiveCorrupt(JournalPath(m.dir))
		} else if torn {
			m.outcome = OutcomeTruncated
			if err := os.Truncate(JournalPath(m.dir), goodBytes); err != nil {
				return fmt.Errorf("persist: truncate torn journal: %w", err)
			}
		} else if snap == nil && entries == nil && goodBytes <= journalHeaderLen {
			m.outcome = OutcomeCold
		} else {
			m.outcome = OutcomeWarm
		}
	}

	// Compact the recovered state into a fresh snapshot BEFORE the
	// journal is rotated: rotation truncates the journal, so the
	// snapshot must already hold the replayed deltas — a crash between
	// the two steps then loses nothing (same ordering argument as
	// compactLocked, in reverse direction).
	if m.outcome != OutcomeCold {
		if err := m.writeSnapshotLocked(); err != nil {
			return fmt.Errorf("persist: post-recovery snapshot: %w", err)
		}
	}
	jw, err := newJournalWriter(JournalPath(m.dir))
	if err != nil {
		return fmt.Errorf("persist: journal: %w", err)
	}
	m.journal = jw
	return nil
}

// loadSnapshotFile reads and fully verifies the snapshot. (nil, nil)
// means no snapshot exists; an error means one exists but is unusable.
func loadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeSnapshot(f)
}

// loadJournalFile replays the journal. All-nil/zero returns mean no
// journal exists; jErr non-nil means the header itself is bad.
func loadJournalFile(path string) (entries []JournalEntry, goodBytes int64, torn bool, jErr error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	return replayJournal(f)
}

// apply validates the full recovered state and installs it into the
// KB and the Data Store in one step. Any decode failure aborts before
// the KB is touched.
func (m *Manager) apply(snap *Snapshot, entries []JournalEntry) error {
	var recs []*trace.Record
	var statics []string
	state := make(map[string]knowledge.Knowgget)
	if snap != nil {
		if len(snap.WindowTrace) > 0 {
			var err error
			recs, err = trace.ReadAll(bytes.NewReader(snap.WindowTrace))
			if err != nil {
				return fmt.Errorf("persist: window trace: %w", err)
			}
		}
		for _, k := range snap.Knowggets {
			state[k.Key()] = k
		}
		statics = snap.StaticLabels
	}
	for _, e := range entries {
		switch e.Op {
		case knowledge.OpPut:
			state[e.Knowgget.Key()] = e.Knowgget
		case knowledge.OpDelete:
			delete(state, e.Key)
		}
	}
	// Everything decoded — apply.
	ks := make([]knowledge.Knowgget, 0, len(state))
	for _, k := range state {
		ks = append(ks, k)
	}
	m.kb.Restore(ks, statics)
	m.recovered = len(ks)
	m.replayed = len(entries)
	m.window, _ = m.store.Restore(recs)
	return nil
}

// archiveCorrupt moves a failed state file aside (path → path.corrupt)
// so post-mortems can inspect it; the node itself starts cold. A
// missing file or a failed rename simply leaves nothing to archive.
func archiveCorrupt(path string) {
	if _, err := os.Stat(path); err != nil {
		return
	}
	// Best-effort: recovery proceeds cold whether or not this worked.
	_ = os.Rename(path, path+".corrupt")
}

// record is the KB write-ahead hook: it appends one accepted mutation
// to the journal. Failures are sticky — the first I/O error disables
// journaling and is reported by Err and Stop.
func (m *Manager) record(op byte, key string, k knowledge.Knowgget) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.err != nil || m.journal == nil {
		return
	}
	if err := m.journal.append(op, key, k); err != nil {
		m.err = fmt.Errorf("persist: journal append: %w", err)
		return
	}
	// Flush each record to the kernel: KB mutations are change-gated
	// and orders of magnitude rarer than packets, so the write-ahead
	// guarantee ("lose at most the record being written") is worth the
	// syscall. Durability against power loss is interval-bounded by
	// the fsync at each compaction.
	if err := m.journal.flush(); err != nil {
		m.err = fmt.Errorf("persist: journal flush: %w", err)
		return
	}
	m.met.JournalBytes.Set(m.journal.bytes)
}

// Tick drives compaction from the capture clock: when now has advanced
// a full interval past the last compaction, the journal is flushed
// into a fresh snapshot. A clock that jumps backwards (trace replay
// restarting, bench loops) just re-bases the interval. The fast path
// is one lock and one time comparison per packet.
func (m *Manager) Tick(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.err != nil {
		return
	}
	if !m.clockSet || now.Before(m.lastCompact) {
		m.lastCompact = now
		m.clockSet = true
		return
	}
	if now.Sub(m.lastCompact) < m.interval {
		return
	}
	if err := m.compactLocked(); err != nil {
		m.err = err
		return
	}
	m.lastCompact = now
}

// Compact forces one snapshot compaction immediately.
func (m *Manager) Compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("persist: closed")
	}
	if m.err != nil {
		return m.err
	}
	if err := m.compactLocked(); err != nil {
		m.err = err
		return err
	}
	return nil
}

// compactLocked snapshots the current KB + window atomically, then
// rotates the journal. Ordering is the crash-safety argument: the
// snapshot is durable (fsync + rename + dir fsync) before the journal
// is reset, so a crash between the two replays journal records whose
// effects the snapshot already holds — puts are idempotent and deletes
// of absent keys are no-ops.
func (m *Manager) compactLocked() error {
	if err := m.writeSnapshotLocked(); err != nil {
		return err
	}
	if err := m.journal.close(); err != nil {
		return fmt.Errorf("persist: journal rotate: %w", err)
	}
	jw, err := newJournalWriter(JournalPath(m.dir))
	if err != nil {
		return fmt.Errorf("persist: journal rotate: %w", err)
	}
	m.journal = jw
	m.met.Snapshots.Inc()
	m.met.JournalBytes.Set(jw.bytes)
	return nil
}

// writeSnapshotLocked writes the snapshot via temp + fsync + rename.
func (m *Manager) writeSnapshotLocked() error {
	var window bytes.Buffer
	if _, err := m.store.SnapshotTo(&window); err != nil {
		return err
	}
	snap := &Snapshot{
		Knowggets:    m.kb.Snapshot(),
		StaticLabels: m.kb.StaticLabels(),
		WindowTrace:  window.Bytes(),
	}
	final := SnapshotPath(m.dir)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	if err := EncodeSnapshot(f, snap); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	if err := syncDir(m.dir); err != nil {
		return fmt.Errorf("persist: state dir fsync: %w", err)
	}
	return nil
}

// syncDir fsyncs the directory so the rename itself is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stop flushes everything: one final compaction (so a clean shutdown
// always restarts warm with an empty journal) and a synced, closed
// journal. The manager journals nothing afterwards.
func (m *Manager) Stop() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err
	}
	m.closed = true
	err := m.err
	if err == nil {
		err = m.compactLocked()
	}
	if m.journal != nil {
		if cerr := m.journal.close(); err == nil {
			err = cerr
		}
		m.journal = nil
	}
	return err
}

// Outcome reports how the last recovery classified (warm, truncated,
// cold).
func (m *Manager) Outcome() Outcome { return m.outcome }

// Recovered reports the recovery volume: knowggets restored into the
// KB, journal entries applied on top of the snapshot, and window
// records restored into the Data Store.
func (m *Manager) Recovered() (knowggets, journalEntries, windowRecords int) {
	return m.recovered, m.replayed, m.window
}

// Err returns the sticky first I/O failure, if any.
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// JournalBytes returns the current journal size in bytes.
func (m *Manager) JournalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journalBytesLocked()
}

func (m *Manager) journalBytesLocked() int64 {
	if m.journal == nil {
		return 0
	}
	return m.journal.bytes
}

// Tear simulates a power loss mid-journal-write for chaos drills: it
// flushes nothing and chops the given number of bytes off the journal
// file's tail, leaving a torn final record exactly as a crash during
// an append would. It is invoked by fault.CrashNodeDirty's dirty hook.
func Tear(dir string, dropBytes int64) error {
	path := JournalPath(dir)
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - dropBytes
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}
