package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kalis/internal/core/datastore"
	"kalis/internal/core/knowledge"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
	"kalis/internal/telemetry"
	"kalis/internal/trace"
)

// sampleCaptures decodes two real CTP frames so the Data Store window
// round-trips through the embedded trace encoding with genuine layers.
func sampleCaptures(t *testing.T) []*packet.Captured {
	t.Helper()
	t0 := time.Unix(1500000000, 0).UTC()
	recs := []*trace.Record{
		{Time: t0, Medium: packet.MediumIEEE802154, RSSI: -61.5,
			Raw: stack.BuildCTPData(5, 3, 5, 1, 0, 100, []byte("r1"))},
		{Time: t0.Add(3 * time.Second), Medium: packet.MediumIEEE802154, RSSI: -72.25,
			Raw: stack.BuildCTPBeacon(3, 1, 30, 2)},
	}
	var out []*packet.Captured
	for _, r := range recs {
		c, err := r.Decode()
		if err != nil {
			t.Fatalf("decode sample: %v", err)
		}
		out = append(out, c)
	}
	return out
}

func openManager(t *testing.T, dir string, met Metrics) (*Manager, *knowledge.Base, *datastore.Store) {
	t.Helper()
	kb := knowledge.NewBase("K1")
	store := datastore.New(64)
	m, err := Open(Config{Dir: dir, Interval: 10 * time.Second, Metrics: met}, kb, store)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m, kb, store
}

func kbMap(kb *knowledge.Base) map[string]string {
	out := make(map[string]string)
	for _, k := range kb.Snapshot() {
		out[k.Key()] = k.Value
	}
	return out
}

// TestWarmRestart is the core contract: a cleanly stopped node comes
// back warm with its full KB (separator-bearing keys included), static
// labels, and Data Store window.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	m, kb, store := openManager(t, dir, Metrics{})
	if m.Outcome() != OutcomeCold {
		t.Fatalf("fresh dir outcome = %s, want cold", m.Outcome())
	}
	kb.Put("Multihop", "true")
	kb.PutEntity("SignalStrength", "Sensor@A", "-67") // separator in entity
	kb.PutStatic("Mobility", "", "false")
	kb.AcceptRemote("K2", knowledge.Knowgget{Label: "Y", Value: "2", Creator: "K2", Collective: true})
	for _, c := range sampleCaptures(t) {
		if err := store.Append(c); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := m.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	m2, kb2, store2 := openManager(t, dir, Metrics{})
	if m2.Outcome() != OutcomeWarm {
		t.Fatalf("outcome = %s, want warm", m2.Outcome())
	}
	if got, want := kbMap(kb2), kbMap(kb); len(got) != len(want) {
		t.Fatalf("restored %d knowggets, want %d: %v", len(got), len(want), got)
	} else {
		for k, v := range want {
			if got[k] != v {
				t.Errorf("restored[%q] = %q, want %q", k, got[k], v)
			}
		}
	}
	if v, ok := kb2.EntityValue("SignalStrength", "Sensor@A"); !ok || v != "-67" {
		t.Errorf("escaped-entity knowgget lost: (%q,%v)", v, ok)
	}
	if !kb2.IsStatic("Mobility") {
		t.Error("static label lost across restart")
	}
	coll := kb2.QueryCollective()
	if len(coll) != 1 || !coll[0].Collective {
		t.Errorf("collective flag lost: %+v", coll)
	}
	if store2.Len() != 2 {
		t.Errorf("window = %d records, want 2", store2.Len())
	}
	recent := store2.Recent(0)
	if len(recent) == 2 && !recent[0].Time.Equal(time.Unix(1500000000, 0).UTC()) {
		t.Errorf("window order/time wrong: %v", recent[0].Time)
	}
	if err := m2.Stop(); err != nil {
		t.Fatalf("Stop2: %v", err)
	}
}

// TestJournalOnlyRecovery models a crash before any compaction: no
// snapshot, journal only. Deletes must replay too.
func TestJournalOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	m, kb, _ := openManager(t, dir, Metrics{})
	kb.Put("A", "1")
	kb.Put("B", "2")
	kb.Delete(knowledge.Knowgget{Creator: "K1", Label: "B"}.Key())
	// Crash: no Stop, no Compact. Appends were flushed per-record.
	_ = m

	m2, kb2, _ := openManager(t, dir, Metrics{})
	if m2.Outcome() != OutcomeWarm {
		t.Fatalf("outcome = %s, want warm", m2.Outcome())
	}
	if v, ok := kb2.Value("A"); !ok || v != "1" {
		t.Errorf("A = (%q,%v)", v, ok)
	}
	if _, ok := kb2.Value("B"); ok {
		t.Error("deleted knowgget resurrected by replay")
	}
	if _, n, _ := m2.Recovered(); n != 3 {
		t.Errorf("replayed = %d entries, want 3", n)
	}
	if err := m2.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestTornJournalTruncates: a torn final record recovers the verified
// prefix (outcome truncated), never an error or a partial entry.
func TestTornJournalTruncates(t *testing.T) {
	dir := t.TempDir()
	_, kb, _ := openManager(t, dir, Metrics{})
	kb.Put("A", "1")
	kb.Put("B", "2")
	if err := Tear(dir, 3); err != nil { // chop mid-record, as a power cut would
		t.Fatalf("Tear: %v", err)
	}

	rec := telemetry.NewRegistry()
	met := Metrics{Recoveries: rec.CounterVec("kalis_persist_recoveries_total", "outcome", "recoveries by outcome")}
	m2, kb2, _ := openManager(t, dir, met)
	if m2.Outcome() != OutcomeTruncated {
		t.Fatalf("outcome = %s, want truncated", m2.Outcome())
	}
	if v, ok := kb2.Value("A"); !ok || v != "1" {
		t.Errorf("verified prefix lost: A = (%q,%v)", v, ok)
	}
	if _, ok := kb2.Value("B"); ok {
		t.Error("torn record partially applied")
	}
	if got := met.Recoveries.With(string(OutcomeTruncated)).Value(); got != 1 {
		t.Errorf("recoveries{truncated} = %d, want 1", got)
	}
	// The truncated tail must not resurface on the next restart.
	if err := m2.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	m3, kb3, _ := openManager(t, dir, Metrics{})
	if m3.Outcome() != OutcomeWarm {
		t.Errorf("post-truncation restart = %s, want warm", m3.Outcome())
	}
	if _, ok := kb3.Value("B"); ok {
		t.Error("torn record resurrected")
	}
	if err := m3.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestCorruptSnapshotColdStart: a flipped bit anywhere in the snapshot
// degrades to a cold start with the corrupt file archived — never a
// partial load.
func TestCorruptSnapshotColdStart(t *testing.T) {
	dir := t.TempDir()
	m, kb, _ := openManager(t, dir, Metrics{})
	kb.Put("A", "1")
	if err := m.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	raw, err := os.ReadFile(SnapshotPath(dir))
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(SnapshotPath(dir), raw, 0o644); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}

	m2, kb2, _ := openManager(t, dir, Metrics{})
	if m2.Outcome() != OutcomeCold {
		t.Fatalf("outcome = %s, want cold", m2.Outcome())
	}
	if kb2.Len() != 0 {
		t.Errorf("cold start restored %d knowggets", kb2.Len())
	}
	if _, err := os.Stat(SnapshotPath(dir) + ".corrupt"); err != nil {
		t.Error("corrupt snapshot not archived for post-mortem")
	}
	if err := m2.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestBadJournalHeaderWithSnapshot: lost journal header, intact
// snapshot → the base state applies, outcome truncated.
func TestBadJournalHeaderWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	m, kb, _ := openManager(t, dir, Metrics{})
	kb.Put("A", "1")
	if err := m.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := os.WriteFile(JournalPath(dir), []byte("XXXX\x01garbage"), 0o644); err != nil {
		t.Fatalf("write journal: %v", err)
	}

	m2, kb2, _ := openManager(t, dir, Metrics{})
	if m2.Outcome() != OutcomeTruncated {
		t.Fatalf("outcome = %s, want truncated", m2.Outcome())
	}
	if v, ok := kb2.Value("A"); !ok || v != "1" {
		t.Errorf("snapshot base lost: A = (%q,%v)", v, ok)
	}
	if err := m2.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestTickCompaction drives compaction from a virtual capture clock
// and checks the snapshot/journal rotation plus telemetry.
func TestTickCompaction(t *testing.T) {
	dir := t.TempDir()
	rec := telemetry.NewRegistry()
	met := Metrics{
		Snapshots:    rec.Counter("kalis_persist_snapshot_total", "snapshots written"),
		JournalBytes: rec.Gauge("kalis_persist_journal_bytes", "journal size"),
	}
	m, kb, _ := openManager(t, dir, met)
	t0 := time.Unix(1500000000, 0).UTC()
	m.Tick(t0) // seeds the clock
	kb.Put("A", "1")
	if m.JournalBytes() <= journalHeaderLen {
		t.Error("journal did not grow on put")
	}
	m.Tick(t0.Add(5 * time.Second)) // under the 10s interval
	if met.Snapshots.Value() != 0 {
		t.Error("compacted before the interval elapsed")
	}
	m.Tick(t0.Add(11 * time.Second))
	if met.Snapshots.Value() != 1 {
		t.Errorf("snapshots = %d, want 1", met.Snapshots.Value())
	}
	if m.JournalBytes() != journalHeaderLen {
		t.Errorf("journal not rotated: %d bytes", m.JournalBytes())
	}
	if _, err := os.Stat(SnapshotPath(dir)); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}
	// A clock rewind (trace replay restart) re-bases, never compacts.
	m.Tick(t0)
	if met.Snapshots.Value() != 1 {
		t.Error("rewound clock triggered compaction")
	}
	if err := m.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if met.Snapshots.Value() != 2 {
		t.Errorf("Stop did not compact: %d", met.Snapshots.Value())
	}
}

// TestSnapshotDecodeRejects exercises the loader against structural
// corruption beyond bit flips.
func TestSnapshotDecodeRejects(t *testing.T) {
	good := EncodeSnapshotBytes(&Snapshot{
		Knowggets:    []knowledge.Knowgget{{Creator: "K1", Label: "A", Value: "1"}},
		StaticLabels: []string{"Mobility"},
	})
	if _, err := DecodeSnapshot(bytes.NewReader(good)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XSNP"), good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"truncated":   good[:len(good)-3],
		"duplicate section": append(append([]byte{}, good...),
			good[5:]...), // replays both sections a second time
	}
	for name, raw := range cases {
		if _, err := DecodeSnapshot(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

// TestStickyJournalError: once the journal fails, the manager reports
// the error and stops journaling instead of panicking.
func TestStickyJournalError(t *testing.T) {
	dir := t.TempDir()
	m, kb, _ := openManager(t, dir, Metrics{})
	m.mu.Lock()
	m.journal.f.Close() // sabotage the fd: subsequent flushes fail
	m.mu.Unlock()
	kb.Put("A", "1")
	kb.Put("B", "2") // second put hits the sticky-error fast path
	if m.Err() == nil {
		t.Fatal("journal failure not reported")
	}
	if err := m.Stop(); err == nil {
		t.Error("Stop swallowed the sticky error")
	}
}

// TestManagerDirError: an unusable state dir fails Open loudly rather
// than running without durability.
func TestManagerDirError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	kb := knowledge.NewBase("K1")
	if _, err := Open(Config{Dir: dir}, kb, datastore.New(8)); err == nil {
		t.Fatal("Open on a non-directory succeeded")
	}
}

// TestJournalReplayProperties pins replay edge cases directly.
func TestJournalReplayProperties(t *testing.T) {
	// Header only: clean empty journal.
	raw := append(append([]byte{}, JournalMagic[:]...), JournalVersion)
	entries, n, torn, err := replayJournal(bytes.NewReader(raw))
	if err != nil || torn || len(entries) != 0 || n != journalHeaderLen {
		t.Errorf("empty journal: %v %v %d %d", err, torn, len(entries), n)
	}
	// Short header: ErrJournalHeader.
	if _, _, _, err := replayJournal(bytes.NewReader(raw[:3])); !errors.Is(err, ErrJournalHeader) {
		t.Errorf("short header err = %v", err)
	}
	// Garbage after the header: torn at offset journalHeaderLen.
	bad := append(append([]byte{}, raw...), 0xff, 0xff, 0xff)
	entries, n, torn, err = replayJournal(bytes.NewReader(bad))
	if err != nil || !torn || len(entries) != 0 || n != journalHeaderLen {
		t.Errorf("garbage tail: %v %v %d %d", err, torn, len(entries), n)
	}
}
