package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"kalis/internal/core/knowledge"
)

// JournalMagic identifies a Kalis KB write-ahead journal.
var JournalMagic = [4]byte{'K', 'J', 'N', 'L'}

// JournalVersion is the current journal format version.
const JournalVersion = 1

// journalHeaderLen is magic + version.
const journalHeaderLen = 5

// maxJournalRecord bounds one journal record's payload; larger claims
// are treated as a torn tail, not an allocation request.
const maxJournalRecord = 1 << 20

// ErrJournalHeader means the journal file exists but its magic or
// version does not verify — unlike a torn tail, this is not
// recoverable by truncation and degrades the node to a cold start.
var ErrJournalHeader = errors.New("persist: bad journal header")

// JournalEntry is one replayed KB mutation.
type JournalEntry struct {
	// Op is knowledge.OpPut or knowledge.OpDelete.
	Op byte
	// Key is set for deletes (the encoded storage key).
	Key string
	// Knowgget is set for puts.
	Knowgget knowledge.Knowgget
}

// journalWriter appends framed, checksummed records to an open file.
// Records are buffered; Flush pushes them to the kernel and Sync makes
// them durable. Frame layout, following the trace/snapshot framing:
//
//	uvarint payload length | payload | crc32(payload) LE
//
// payload = op byte, then for OpPut flags+creator/label/entity/value,
// for OpDelete the storage key.
type journalWriter struct {
	f       *os.File
	w       *bufio.Writer
	bytes   int64 // total bytes written including header
	scratch []byte
}

// newJournalWriter creates (truncates) the journal file and writes its
// header. The header is flushed and synced immediately, so a crash
// right after rotation still leaves a well-formed, empty journal.
func newJournalWriter(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	jw := &journalWriter{f: f, w: bufio.NewWriter(f)}
	if _, err := jw.w.Write(JournalMagic[:]); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := jw.w.WriteByte(JournalVersion); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := jw.w.Flush(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, err
	}
	jw.bytes = journalHeaderLen
	return jw, nil
}

// append encodes and buffers one mutation record.
func (jw *journalWriter) append(op byte, key string, k knowledge.Knowgget) error {
	payload := jw.scratch[:0]
	payload = append(payload, op)
	switch op {
	case knowledge.OpPut:
		payload = appendKnowgget(payload, k)
	case knowledge.OpDelete:
		payload = appendString(payload, key)
	default:
		return fmt.Errorf("persist: journal: unknown op %d", op)
	}
	jw.scratch = payload // keep the grown buffer for the next append

	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(len(payload)))
	if _, err := jw.w.Write(frame[:n]); err != nil {
		return err
	}
	if _, err := jw.w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	if _, err := jw.w.Write(sum[:]); err != nil {
		return err
	}
	jw.bytes += int64(n + len(payload) + 4)
	return nil
}

// flush pushes buffered records to the kernel.
func (jw *journalWriter) flush() error { return jw.w.Flush() }

// sync flushes and makes the journal durable.
func (jw *journalWriter) sync() error {
	if err := jw.w.Flush(); err != nil {
		return err
	}
	return jw.f.Sync()
}

// close flushes, syncs and closes the journal file.
func (jw *journalWriter) close() error {
	err := jw.sync()
	if cerr := jw.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayJournal reads the journal byte stream and returns every intact
// entry plus the byte offset of the verified prefix. A torn or
// corrupt record ends the replay at the last good offset with
// truncated=true — the write-ahead contract: a crash mid-append loses
// at most the record being written, never an earlier one. A bad
// header returns ErrJournalHeader instead (cold start).
func replayJournal(r io.Reader) (entries []JournalEntry, goodBytes int64, truncated bool, err error) {
	br := bufio.NewReader(r)
	var header [journalHeaderLen]byte
	if _, herr := io.ReadFull(br, header[:]); herr != nil {
		return nil, 0, false, fmt.Errorf("%w: %v", ErrJournalHeader, herr)
	}
	if [4]byte(header[:4]) != JournalMagic || header[4] != JournalVersion {
		return nil, 0, false, ErrJournalHeader
	}
	goodBytes = journalHeaderLen
	for {
		entry, n, rerr := readJournalRecord(br)
		if errors.Is(rerr, io.EOF) {
			return entries, goodBytes, false, nil
		}
		if rerr != nil {
			// Torn tail or bit rot: keep the verified prefix.
			return entries, goodBytes, true, nil
		}
		entries = append(entries, entry)
		goodBytes += n
	}
}

// readJournalRecord reads one frame; io.EOF means a clean end exactly
// on a record boundary, any other error a torn/corrupt record.
func readJournalRecord(br *bufio.Reader) (JournalEntry, int64, error) {
	var entry JournalEntry
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return entry, 0, io.EOF
		}
		return entry, 0, err
	}
	if n == 0 || n > maxJournalRecord {
		return entry, 0, fmt.Errorf("persist: journal record length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return entry, 0, fmt.Errorf("persist: journal body: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return entry, 0, fmt.Errorf("persist: journal checksum: %w", err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc32.ChecksumIEEE(payload) {
		return entry, 0, errors.New("persist: journal checksum mismatch")
	}
	frameLen := int64(uvarintLen(n)) + int64(n) + 4

	entry.Op = payload[0]
	body := payload[1:]
	switch entry.Op {
	case knowledge.OpPut:
		k, rest, err := readKnowgget(body)
		if err != nil || len(rest) != 0 {
			return entry, 0, errors.New("persist: malformed put record")
		}
		entry.Knowgget = k
	case knowledge.OpDelete:
		key, rest, err := readString(body)
		if err != nil || len(rest) != 0 {
			return entry, 0, errors.New("persist: malformed delete record")
		}
		entry.Key = key
	default:
		return entry, 0, fmt.Errorf("persist: unknown journal op %d", entry.Op)
	}
	return entry, frameLen, nil
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
