package packet

import (
	"testing"
	"time"
)

func TestMediumString(t *testing.T) {
	cases := map[Medium]string{
		MediumIEEE802154: "ieee802.15.4",
		MediumWiFi:       "wifi",
		MediumBluetooth:  "bluetooth",
		MediumWired:      "wired",
		Medium(42):       "medium(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindTCPSYN.String() != "TCPSYN" {
		t.Errorf("KindTCPSYN = %q", KindTCPSYN.String())
	}
	if KindCTPData.String() != "CTPData" {
		t.Errorf("KindCTPData = %q", KindCTPData.String())
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

type fakeLayer struct{ name string }

func (f fakeLayer) LayerName() string { return f.name }

func TestLayerLookup(t *testing.T) {
	c := &Captured{Layers: []Layer{fakeLayer{"a"}, fakeLayer{"b"}}}
	if l := c.Layer("b"); l == nil || l.LayerName() != "b" {
		t.Error("Layer(b) failed")
	}
	if c.Layer("zzz") != nil {
		t.Error("Layer(zzz) should be nil")
	}
}

func TestClone(t *testing.T) {
	orig := &Captured{
		Time:    time.Unix(1, 0),
		Medium:  MediumWiFi,
		RSSI:    -60,
		Src:     "a",
		Dst:     "b",
		Layers:  []Layer{fakeLayer{"x"}},
		Payload: []byte{1, 2, 3},
		Truth:   &GroundTruth{Attack: "sybil", Instance: 2},
	}
	cp := orig.Clone()
	cp.Payload[0] = 99
	cp.Truth.Instance = 7
	cp.Layers[0] = fakeLayer{"y"}
	if orig.Payload[0] != 1 {
		t.Error("payload aliased")
	}
	if orig.Truth.Instance != 2 {
		t.Error("truth aliased")
	}
	if orig.Layers[0].LayerName() != "x" {
		t.Error("layer slice aliased")
	}
}

func TestCloneNilFields(t *testing.T) {
	cp := (&Captured{Src: "a"}).Clone()
	if cp.Payload != nil || cp.Truth != nil || cp.Src != "a" {
		t.Errorf("clone of sparse capture: %+v", cp)
	}
}
