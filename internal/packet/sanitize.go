package packet

import (
	"math"
	"strconv"
	"strings"
)

// This file holds the output sanitizers the taint lint rule requires
// between packet-derived data and any sink (alert details, knowledge
// values, collective sends, logs). Every field of a Captured is written
// by whatever radio happened to transmit: identities can carry terminal
// escapes, newlines (fake log lines), or be arbitrarily long; RSSI
// readings can be NaN or physically impossible. Sanitizing at the
// formatting boundary keeps every downstream consumer — operator
// terminals, the SIEM sink, peer Kalis nodes — safe from a hostile
// frame.

// cleanIDMax bounds a rendered identity; real node IDs in the
// supported media are far shorter.
const cleanIDMax = 64

// CleanID renders a packet-claimed identity safely: printable ASCII
// passes through, everything else (control bytes, escapes, high bytes)
// becomes '?', and the result is truncated to 64 bytes with a "..."
// marker. Clean identities are returned without copying.
func CleanID(id NodeID) string {
	s := string(id)
	clean := len(s) <= cleanIDMax
	if clean {
		for i := 0; i < len(s); i++ {
			if s[i] < 0x20 || s[i] > 0x7e {
				clean = false
				break
			}
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	n := len(s)
	truncated := n > cleanIDMax
	if truncated {
		n = cleanIDMax
	}
	b.Grow(n + 3)
	for i := 0; i < n; i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			b.WriteByte('?')
		} else {
			b.WriteByte(s[i])
		}
	}
	if truncated {
		b.WriteString("...")
	}
	return b.String()
}

// cleanPayloadMax is how many payload bytes CleanPayload previews.
const cleanPayloadMax = 16

const hexDigits = "0123456789abcdef"

// CleanPayload renders a bounded hex preview of attacker-controlled
// payload bytes: at most 16 bytes as hex, then the total length. The
// raw bytes never reach the sink.
func CleanPayload(p []byte) string {
	n := len(p)
	show := n
	if show > cleanPayloadMax {
		show = cleanPayloadMax
	}
	var b strings.Builder
	b.Grow(2*show + 16)
	for i := 0; i < show; i++ {
		b.WriteByte(hexDigits[p[i]>>4])
		b.WriteByte(hexDigits[p[i]&0x0f])
	}
	if show < n {
		b.WriteString("..")
	}
	b.WriteByte('(')
	b.WriteString(strconv.Itoa(n))
	b.WriteString("B)")
	return b.String()
}

// RSSI plausibility envelope in dBm: nothing a real radio reports falls
// outside it.
const (
	rssiFloor = -120.0
	rssiCeil  = 20.0
)

// ClampRSSI forces a claimed signal-strength reading into the plausible
// dBm envelope [-120, 20]; NaN collapses to the floor. Detection
// features averaging RSSI must clamp first or a single crafted frame
// (NaN, ±Inf, 1e300) poisons the whole window.
func ClampRSSI(v float64) float64 {
	if math.IsNaN(v) || v < rssiFloor {
		return rssiFloor
	}
	if v > rssiCeil {
		return rssiCeil
	}
	return v
}
