// Package packet defines the capture envelope shared by every protocol
// substrate and by the Kalis core: a captured frame with its medium,
// timestamp, observed signal strength, and decoded layer stack.
//
// Kalis is a passive, network-based IDS: everything it knows about the
// world arrives as a stream of Captured values produced either by the
// network simulator's promiscuous sniffer or by trace replay.
package packet

import (
	"fmt"
	"time"
)

// Medium identifies the physical communication medium a frame was
// captured on. Kalis adapts its parsing and its detection-module set to
// the mediums it actually observes.
type Medium int

// Supported capture mediums.
const (
	MediumIEEE802154 Medium = iota + 1 // IEEE 802.15.4 (ZigBee, 6LoWPAN, CTP)
	MediumWiFi                         // IEEE 802.11
	MediumBluetooth                    // Bluetooth Low Energy
	MediumWired                        // wired Ethernet/IP (router uplink)
)

// String returns the conventional name of the medium.
func (m Medium) String() string {
	switch m {
	case MediumIEEE802154:
		return "ieee802.15.4"
	case MediumWiFi:
		return "wifi"
	case MediumBluetooth:
		return "bluetooth"
	case MediumWired:
		return "wired"
	default:
		return fmt.Sprintf("medium(%d)", int(m))
	}
}

// Kind classifies the innermost decoded protocol layer of a captured
// frame. The Traffic Statistics sensing module keeps per-Kind
// frequencies ("TCP SYN", "ICMP request", "CTP data", ...), exactly as
// the paper's implementation does.
type Kind int

// Traffic kinds tracked by Kalis.
const (
	KindUnknown Kind = iota
	KindTCPSYN
	KindTCPACK
	KindTCPOther
	KindUDP
	KindICMPEchoRequest
	KindICMPEchoReply
	KindICMPOther
	KindZigbeeData
	KindZigbeeRouting
	KindCTPData
	KindCTPBeacon
	KindRPLControl
	KindSixLowPAN
	KindBLEAdvertising
	KindBLEData
	KindWiFiMgmt
	KindARP
)

var kindNames = map[Kind]string{
	KindUnknown:         "Unknown",
	KindTCPSYN:          "TCPSYN",
	KindTCPACK:          "TCPACK",
	KindTCPOther:        "TCPOther",
	KindUDP:             "UDP",
	KindICMPEchoRequest: "ICMPEchoRequest",
	KindICMPEchoReply:   "ICMPEchoReply",
	KindICMPOther:       "ICMPOther",
	KindZigbeeData:      "ZigbeeData",
	KindZigbeeRouting:   "ZigbeeRouting",
	KindCTPData:         "CTPData",
	KindCTPBeacon:       "CTPBeacon",
	KindRPLControl:      "RPLControl",
	KindSixLowPAN:       "SixLowPAN",
	KindBLEAdvertising:  "BLEAdvertising",
	KindBLEData:         "BLEData",
	KindWiFiMgmt:        "WiFiMgmt",
	KindARP:             "ARP",
}

// String returns the stable name of the kind, used as the multilevel
// suffix of TrafficFrequency knowggets (e.g. "TrafficFrequency.TCPSYN").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NodeID identifies a network entity (device, node, or address) as seen
// by Kalis. Link-layer short addresses, IP addresses and BLE MACs are
// all rendered into this one namespace so that knowggets can carry a
// uniform "entity" field.
type NodeID string

// Broadcast is the ID used for link-layer broadcast destinations.
const Broadcast NodeID = "ff:ff"

// Layer is one decoded protocol layer of a captured frame. Concrete
// implementations live in the internal/proto/... packages.
type Layer interface {
	// LayerName returns the protocol name of the layer (e.g. "ctp").
	LayerName() string
}

// Captured is a single frame as overheard by a Kalis capture interface:
// raw bytes plus capture metadata plus the decoded layer stack.
type Captured struct {
	// Time is the capture timestamp. Under simulation this is virtual
	// time; modules must take time from here, never from time.Now.
	Time time.Time
	// Medium is the physical medium the frame was overheard on.
	Medium Medium
	// RSSI is the received signal strength in dBm as observed by the
	// capture interface (0 when not applicable, e.g. wired).
	RSSI float64
	// Src and Dst are the link-layer source and destination.
	Src, Dst NodeID
	// Transmitter is the node that physically transmitted this frame
	// on this hop (differs from Src when the frame is being forwarded
	// in a multi-hop network). Empty when unknown.
	Transmitter NodeID
	// Kind classifies the innermost decoded layer.
	Kind Kind
	// Layers is the decoded protocol stack, outermost first.
	Layers []Layer
	// Payload is the raw innermost payload (opaque to Kalis when the
	// device encrypts, as most consumer IoT devices do).
	Payload []byte
	// Truth optionally labels the frame with attack ground truth; it is
	// set only by the evaluation harness and is invisible to detection
	// modules (they must not read it).
	Truth *GroundTruth
}

// Layer returns the first decoded layer with the given name, or nil.
func (c *Captured) Layer(name string) Layer {
	for _, l := range c.Layers {
		if l.LayerName() == name {
			return l
		}
	}
	return nil
}

// Clone returns a deep copy of the capture envelope. Layer values are
// shared (they are immutable after decode); slices of the envelope are
// copied so that consumers can retain packets safely.
func (c *Captured) Clone() *Captured {
	cp := *c
	cp.Layers = make([]Layer, len(c.Layers))
	copy(cp.Layers, c.Layers)
	if c.Payload != nil {
		cp.Payload = make([]byte, len(c.Payload))
		copy(cp.Payload, c.Payload)
	}
	if c.Truth != nil {
		t := *c.Truth
		cp.Truth = &t
	}
	return &cp
}

// GroundTruth labels a frame that is a symptom of an injected attack.
// The evaluation harness uses it to score detection rate and
// classification accuracy; detection modules never consult it.
type GroundTruth struct {
	// Attack is the canonical attack name (see internal/attacks).
	Attack string
	// Instance numbers the symptom instance this frame belongs to.
	Instance int
	// Attacker is the true attacking node.
	Attacker NodeID
	// Victim is the true victim node, when meaningful.
	Victim NodeID
}
