package packet

import (
	"math"
	"strings"
	"testing"
)

func TestCleanID(t *testing.T) {
	long := strings.Repeat("a", 100)
	cases := []struct {
		name string
		in   NodeID
		want string
	}{
		{"clean passthrough", "node-7", "node-7"},
		{"empty", "", ""},
		{"terminal escape", "ok\x1b[31mred", "ok?[31mred"},
		{"newline injection", "a\nfake log line", "a?fake log line"},
		{"high bytes", "n\xff\xfe", "n??"},
		{"truncated", NodeID(long), strings.Repeat("a", 64) + "..."},
	}
	for _, c := range cases {
		if got := CleanID(c.in); got != c.want {
			t.Errorf("%s: CleanID(%q) = %q, want %q", c.name, c.in, got, c.want)
		}
	}
}

// TestCleanIDNoAllocFastPath pins the hot-path contract: a clean
// identity is returned without copying.
func TestCleanIDNoAllocFastPath(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		_ = CleanID("node-7")
	})
	if allocs != 0 {
		t.Errorf("CleanID fast path allocates %.0f times per run, want 0", allocs)
	}
}

func TestCleanPayload(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", nil, "(0B)"},
		{"short", []byte{0xde, 0xad}, "dead(2B)"},
		{"exactly sixteen", make([]byte, 16), strings.Repeat("00", 16) + "(16B)"},
		{"truncated", make([]byte, 40), strings.Repeat("00", 16) + "..(40B)"},
	}
	for _, c := range cases {
		if got := CleanPayload(c.in); got != c.want {
			t.Errorf("%s: CleanPayload = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestClampRSSI(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		want float64
	}{
		{"in range", -70, -70},
		{"floor", -500, -120},
		{"ceil", 1e300, 20},
		{"nan", math.NaN(), -120},
		{"neg inf", math.Inf(-1), -120},
		{"pos inf", math.Inf(1), 20},
	}
	for _, c := range cases {
		if got := ClampRSSI(c.in); got != c.want {
			t.Errorf("%s: ClampRSSI(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}
