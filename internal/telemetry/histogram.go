package telemetry

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets spans 1µs..1s in a 1-2.5-5 progression — wide
// enough for per-module packet handling (sub-µs..ms) and end-to-end
// pipeline latencies under load.
var DefaultLatencyBuckets = []time.Duration{
	1 * time.Microsecond, 2500 * time.Nanosecond, 5 * time.Microsecond,
	10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Bounds are upper
// bucket edges (inclusive, Prometheus "le" semantics); an implicit
// +Inf bucket catches the overflow. Observe is lock-free and
// allocation-free: integer compares over a small bounds slice plus
// three atomic adds.
type Histogram struct {
	bounds  []int64 // nanoseconds, ascending
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	ns := make([]int64, len(bounds))
	for i, b := range bounds {
		ns[i] = int64(b)
	}
	return &Histogram{bounds: ns, buckets: make([]atomic.Uint64, len(ns)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	i := 0
	for i < len(h.bounds) && ns > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Bucket is one cumulative histogram bucket in a snapshot; LE is the
// upper bound in seconds.
type Bucket struct {
	LE    float64 `json:"le_seconds"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// exposition (buckets are cumulative, per Prometheus convention). Only
// the finite buckets are listed — +Inf cannot be encoded in JSON — and
// Count stands in for the +Inf cumulative count.
type HistogramSnapshot struct {
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets"`
}

// Snapshot copies the histogram state with cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Count:      h.count.Load(),
		SumSeconds: float64(h.sum.Load()) / 1e9,
		Buckets:    make([]Bucket, len(h.bounds)),
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		snap.Buckets[i] = Bucket{LE: float64(h.bounds[i]) / 1e9, Count: cum}
	}
	return snap
}
