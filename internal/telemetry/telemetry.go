// Package telemetry is Kalis' runtime observability subsystem: always-on
// counters, gauges and latency histograms cheap enough to live on the
// packet hot path, plus a registry that renders Prometheus text-format
// exposition and a JSON snapshot over an optional HTTP admin endpoint.
//
// It is distinct from internal/metrics, which scores *offline*
// experiments (detection rate, classification accuracy) after a replay
// finishes: telemetry reports what a node is doing *while* packets
// flow, the resource/latency measurement axis the paper evaluates in
// §VI-B (CPU and RAM overhead under load).
//
// Everything is standard library only. Hot-path operations (Counter.Add,
// Gauge.Set, Histogram.Observe, Vec.With on an existing child) are
// lock-free and allocation-free; see BenchmarkTelemetryHotPath. All
// metric methods are nil-receiver safe so uninstrumented components pay
// a single predictable branch.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterShards is the number of cache-line-padded shards per Counter;
// concurrent writers spread across shards instead of bouncing one cache
// line between cores. Must be a power of two.
const (
	counterShardBits = 3
	counterShards    = 1 << counterShardBits
)

// shard is one cache-line-sized slot of a sharded counter. The padding
// keeps adjacent shards on distinct cache lines (no false sharing).
type shard struct {
	n atomic.Uint64
	_ [56]byte
}

// shardIndex picks a shard from the address of a stack variable: each
// goroutine runs on its own stack, so concurrent writers land on
// different shards with high probability, at zero per-goroutine state.
func shardIndex() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return int((uint64(p) * 0x9E3779B97F4A7C15) >> (64 - counterShardBits))
}

// Counter is a monotonically increasing, lock-free sharded counter.
type Counter struct {
	shards [counterShards]shard
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].n.Add(n)
}

// Value sums the shards. It is a snapshot: concurrent Adds may or may
// not be included.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Gauge is an instantaneous integer value (occupancy, depth, active
// count).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterVec is a family of Counters partitioned by one label (topic,
// attack name, ...). Children are created on first use and live
// forever; With on an existing child is a lock-free map read.
type CounterVec struct {
	label    string
	mu       sync.Mutex
	children sync.Map // label value -> *Counter
}

// With returns the child counter for the given label value, creating it
// on first use. Callers on very hot paths may cache the returned
// *Counter to skip even the map read.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	if c, ok := v.children.Load(value); ok {
		return c.(*Counter)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children.Load(value); ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.children.Store(value, c)
	return c
}

// GaugeVec is a family of Gauges partitioned by one label (shard
// index, ...). Children are created on first use and live forever;
// With on an existing child is a lock-free map read. Hot-path callers
// pre-resolve children at wiring time and cache the *Gauge.
type GaugeVec struct {
	label    string
	mu       sync.Mutex
	children sync.Map // label value -> *Gauge
}

// With returns the child gauge for the given label value, creating it
// on first use.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	if g, ok := v.children.Load(value); ok {
		return g.(*Gauge)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children.Load(value); ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	v.children.Store(value, g)
	return g
}

// HistogramVec is a family of Histograms partitioned by one label.
type HistogramVec struct {
	label    string
	bounds   []time.Duration
	mu       sync.Mutex
	children sync.Map // label value -> *Histogram
}

// With returns the child histogram for the given label value, creating
// it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	if h, ok := v.children.Load(value); ok {
		return h.(*Histogram)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children.Load(value); ok {
		return h.(*Histogram)
	}
	h := newHistogram(v.bounds)
	v.children.Store(value, h)
	return h
}

// metric kinds, matching Prometheus TYPE strings.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// entry is one registered metric: its identity plus closures that
// render it for exposition. impl retains the typed metric so duplicate
// registration can hand back the existing instance.
type entry struct {
	name  string
	help  string
	kind  string
	label string // vec label name, "" for scalar metrics
	impl  interface{}
	snap  func() interface{}
}

// Registry holds one node's metrics and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// register adds an entry, or returns the existing impl if name is
// already taken by a metric of the same kind. A kind clash is a
// programming error and panics.
func (r *Registry) register(e *entry) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[e.name]; ok {
		if prev.kind != e.kind || prev.label != e.label {
			//lint:ignore nopanic metric kind clashes are wiring-time programming errors; registration happens before traffic flows
			panic(fmt.Sprintf("telemetry: %s re-registered as %s/%q (was %s/%q)",
				e.name, e.kind, e.label, prev.kind, prev.label))
		}
		return prev.impl
	}
	r.entries[e.name] = e
	return e.impl
}

// sorted returns the entries ordered by metric name.
func (r *Registry) sorted() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Counter registers (or returns the existing) named counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	return r.register(&entry{
		name: name, help: help, kind: kindCounter, impl: c,
		snap: func() interface{} { return c.Value() },
	}).(*Counter)
}

// CounterVec registers (or returns the existing) counter family
// partitioned by the given label name.
func (r *Registry) CounterVec(name, label, help string) *CounterVec {
	v := &CounterVec{label: label}
	return r.register(&entry{
		name: name, help: help, kind: kindCounter, label: label, impl: v,
		snap: func() interface{} {
			out := make(map[string]interface{})
			v.children.Range(func(k, c interface{}) bool {
				out[k.(string)] = c.(*Counter).Value()
				return true
			})
			return out
		},
	}).(*CounterVec)
}

// Gauge registers (or returns the existing) named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	return r.register(&entry{
		name: name, help: help, kind: kindGauge, impl: g,
		snap: func() interface{} { return g.Value() },
	}).(*Gauge)
}

// GaugeVec registers (or returns the existing) gauge family
// partitioned by the given label name.
func (r *Registry) GaugeVec(name, label, help string) *GaugeVec {
	v := &GaugeVec{label: label}
	return r.register(&entry{
		name: name, help: help, kind: kindGauge, label: label, impl: v,
		snap: func() interface{} {
			out := make(map[string]interface{})
			v.children.Range(func(k, g interface{}) bool {
				out[k.(string)] = g.(*Gauge).Value()
				return true
			})
			return out
		},
	}).(*GaugeVec)
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values a component already tracks (queue depth,
// runtime stats) that would be wasteful to mirror on every change.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&entry{
		name: name, help: help, kind: kindGauge, impl: fn,
		snap: func() interface{} { return fn() },
	})
}

// Histogram registers (or returns the existing) latency histogram with
// the given bucket upper bounds (nil selects DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []time.Duration) *Histogram {
	h := newHistogram(buckets)
	return r.register(&entry{
		name: name, help: help, kind: kindHistogram, impl: h,
		snap: func() interface{} { return h.Snapshot() },
	}).(*Histogram)
}

// HistogramVec registers (or returns the existing) histogram family
// partitioned by the given label name (nil buckets selects
// DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, label, help string, buckets []time.Duration) *HistogramVec {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	v := &HistogramVec{label: label, bounds: buckets}
	return r.register(&entry{
		name: name, help: help, kind: kindHistogram, label: label, impl: v,
		snap: func() interface{} {
			out := make(map[string]interface{})
			v.children.Range(func(k, h interface{}) bool {
				out[k.(string)] = h.(*Histogram).Snapshot()
				return true
			})
			return out
		},
	}).(*HistogramVec)
}
