package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTelemetryHotPath measures the cost of the always-on
// instrumentation on the packet path: each op must stay well under
// 50 ns and allocate nothing, so telemetry never needs a kill switch.
func BenchmarkTelemetryHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	v := r.CounterVec("v", "topic", "")
	hv := r.HistogramVec("hv", "module", "", nil)

	b.Run("Counter.Inc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("Counter.Inc-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("Gauge.Set", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("Histogram.Observe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	})
	b.Run("CounterVec.With.Inc", func(b *testing.B) {
		b.ReportAllocs()
		v.With("packet")
		for i := 0; i < b.N; i++ {
			v.With("packet").Inc()
		}
	})
	b.Run("HistogramVec.With.Observe", func(b *testing.B) {
		b.ReportAllocs()
		hv.With("mod")
		for i := 0; i < b.N; i++ {
			hv.With("mod").Observe(time.Microsecond)
		}
	})
}
