package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), metrics sorted by name and
// vec children sorted by label value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.sorted() {
		fmt.Fprintf(bw, "# HELP %s %s\n", e.name, strings.ReplaceAll(e.help, "\n", " "))
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		writePromEntry(bw, e)
	}
	return bw.Flush()
}

func writePromEntry(w io.Writer, e *entry) {
	switch impl := e.impl.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s %d\n", e.name, impl.Value())
	case *Gauge:
		fmt.Fprintf(w, "%s %d\n", e.name, impl.Value())
	case func() float64:
		fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(impl()))
	case *Histogram:
		writePromHistogram(w, e.name, "", impl.Snapshot())
	case *CounterVec:
		for _, kv := range sortedChildren(&impl.children) {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", e.name, e.label, kv.key, kv.val.(*Counter).Value())
		}
	case *GaugeVec:
		for _, kv := range sortedChildren(&impl.children) {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", e.name, e.label, kv.key, kv.val.(*Gauge).Value())
		}
	case *HistogramVec:
		for _, kv := range sortedChildren(&impl.children) {
			pair := fmt.Sprintf("%s=%q", e.label, kv.key)
			writePromHistogram(w, e.name, pair, kv.val.(*Histogram).Snapshot())
		}
	}
}

// writePromHistogram renders one histogram's cumulative buckets, sum
// and count. labelPair is an optional `name="value"` to include in
// every sample (the vec label), or "".
func writePromHistogram(w io.Writer, name, labelPair string, s HistogramSnapshot) {
	join := func(extra string) string {
		switch {
		case labelPair == "" && extra == "":
			return ""
		case labelPair == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labelPair + "}"
		default:
			return "{" + labelPair + "," + extra + "}"
		}
	}
	for _, b := range s.Buckets {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, join(`le="`+formatFloat(b.LE)+`"`), b.Count)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, join(`le="+Inf"`), s.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, join(""), formatFloat(s.SumSeconds))
	fmt.Fprintf(w, "%s_count%s %d\n", name, join(""), s.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type childKV struct {
	key string
	val interface{}
}

func sortedChildren(m interface {
	Range(func(k, v interface{}) bool)
}) []childKV {
	var out []childKV
	m.Range(func(k, v interface{}) bool {
		out = append(out, childKV{k.(string), v})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// MetricSnapshot is one metric in a JSON snapshot. Value holds a number
// for scalar metrics, a HistogramSnapshot for histograms, or a
// map[label value]→(number | HistogramSnapshot) for vecs.
type MetricSnapshot struct {
	Type  string      `json:"type"`
	Help  string      `json:"help,omitempty"`
	Label string      `json:"label,omitempty"`
	Value interface{} `json:"value"`
}

// Snapshot captures every registered metric's current value, keyed by
// metric name.
func (r *Registry) Snapshot() map[string]MetricSnapshot {
	out := make(map[string]MetricSnapshot)
	for _, e := range r.sorted() {
		out[e.name] = MetricSnapshot{Type: e.kind, Help: e.help, Label: e.label, Value: e.snap()}
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
