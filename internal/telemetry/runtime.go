package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache rate-limits runtime.ReadMemStats (which briefly stops
// the world) so a scrape of several memstats-derived gauges pays for
// one read, and rapid scrapes at most one per second.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > time.Second {
		runtime.ReadMemStats(&c.stat)
		c.at = now
	}
	return &c.stat
}

// RegisterRuntimeMetrics adds process-wide Go runtime gauges
// (goroutines, heap, GC) to the registry — the runtime counterpart of
// the paper's RAM-overhead measurements (§VI-B). Values are read lazily
// at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	cache := &memStatsCache{}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(cache.get().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(cache.get().HeapObjects) })
	r.GaugeFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated on the heap.",
		func() float64 { return float64(cache.get().TotalAlloc) })
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(cache.get().NumGC) })
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.",
		func() float64 { return float64(cache.get().PauseTotalNs) / 1e9 })
}
