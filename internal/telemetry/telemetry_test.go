package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("Value() = %d, want %d", got, workers*per)
	}
}

func TestCounterAdd(t *testing.T) {
	c := &Counter{}
	c.Add(5)
	c.Add(7)
	if got := c.Value(); got != 12 {
		t.Errorf("Value() = %d, want 12", got)
	}
}

func TestGauge(t *testing.T) {
	g := &Gauge{}
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Errorf("Value() = %d, want 7", got)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Millisecond)
	cv.With("x").Inc()
	gv.With("x").Set(2)
	hv.With("x").Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil metrics must read zero")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]time.Duration{time.Microsecond, time.Millisecond, time.Second})
	h.Observe(500 * time.Nanosecond)  // ≤ 1µs
	h.Observe(time.Microsecond)       // ≤ 1µs (le is inclusive)
	h.Observe(30 * time.Microsecond)  // ≤ 1ms
	h.Observe(100 * time.Millisecond) // ≤ 1s
	h.Observe(5 * time.Second)        // +Inf

	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	wantSum := 500*time.Nanosecond + time.Microsecond + 30*time.Microsecond +
		100*time.Millisecond + 5*time.Second
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum() = %v, want %v", got, wantSum)
	}
	snap := h.Snapshot()
	wantCum := []uint64{2, 3, 4} // cumulative, finite buckets only
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if snap.Buckets[i].Count != want {
			t.Errorf("bucket[%d] = %d, want %d", i, snap.Buckets[i].Count, want)
		}
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	v := &CounterVec{label: "topic"}
	a := v.With("packet")
	b := v.With("packet")
	if a != b {
		t.Error("With must return the same child for the same label value")
	}
	a.Inc()
	v.With("detection").Add(2)
	if a.Value() != 1 || v.With("detection").Value() != 2 {
		t.Error("children must track independently")
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("kalis_ingest_queue_depth", "shard", "Per-shard queue depth.")
	a := v.With("0")
	if b := v.With("0"); a != b {
		t.Error("With must return the same child for the same label value")
	}
	a.Set(7)
	v.With("1").Set(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE kalis_ingest_queue_depth gauge",
		`kalis_ingest_queue_depth{shard="0"} 7`,
		`kalis_ingest_queue_depth{shard="1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	snap := r.Snapshot()["kalis_ingest_queue_depth"]
	children, ok := snap.Value.(map[string]interface{})
	if !ok || children["0"].(int64) != 7 || children["1"].(int64) != 3 {
		t.Errorf("JSON snapshot = %#v, want per-shard values 7 and 3", snap.Value)
	}
}

func TestRegistryDuplicateRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("kalis_packets_total", "Packets.")
	b := r.Counter("kalis_packets_total", "Packets.")
	if a != b {
		t.Error("duplicate registration must return the existing metric")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash must panic")
		}
	}()
	r.Gauge("kalis_packets_total", "Clash.")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("kalis_packets_total", "Packets seen.").Add(42)
	r.Gauge("kalis_modules_active", "Active modules.").Set(3)
	r.GaugeFunc("kalis_queue_depth", "Queue depth.", func() float64 { return 1.5 })
	v := r.CounterVec("kalis_alerts_total", "attack", "Alerts per attack.")
	v.With("smurf").Add(2)
	v.With("icmp-flood").Inc()
	h := r.Histogram("kalis_handle_seconds", "Handling latency.",
		[]time.Duration{time.Microsecond, time.Millisecond})
	h.Observe(10 * time.Microsecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP kalis_packets_total Packets seen.",
		"# TYPE kalis_packets_total counter",
		"kalis_packets_total 42",
		"kalis_modules_active 3",
		"kalis_queue_depth 1.5",
		`kalis_alerts_total{attack="icmp-flood"} 1`,
		`kalis_alerts_total{attack="smurf"} 2`,
		"# TYPE kalis_handle_seconds histogram",
		`kalis_handle_seconds_bucket{le="1e-06"} 0`,
		`kalis_handle_seconds_bucket{le="0.001"} 1`,
		`kalis_handle_seconds_bucket{le="+Inf"} 1`,
		"kalis_handle_seconds_sum 1e-05",
		"kalis_handle_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Vec children must render sorted by label value.
	if strings.Index(out, `attack="icmp-flood"`) > strings.Index(out, `attack="smurf"`) {
		t.Error("vec children not sorted by label value")
	}
}

func TestHistogramVecPrometheus(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("kalis_module_packet_seconds", "module", "Per-module latency.", nil)
	hv.With("IcmpFloodDetection").Observe(3 * time.Microsecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`kalis_module_packet_seconds_bucket{module="IcmpFloodDetection",le="5e-06"} 1`,
		`kalis_module_packet_seconds_bucket{module="IcmpFloodDetection",le="+Inf"} 1`,
		`kalis_module_packet_seconds_count{module="IcmpFloodDetection"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("kalis_packets_total", "Packets.").Add(7)
	r.CounterVec("kalis_alerts_total", "attack", "Alerts.").With("smurf").Inc()
	r.Histogram("kalis_handle_seconds", "Latency.", nil).Observe(time.Millisecond)

	snap := r.Snapshot()
	if got := snap["kalis_packets_total"].Value.(uint64); got != 7 {
		t.Errorf("counter snapshot = %v, want 7", got)
	}
	alerts := snap["kalis_alerts_total"]
	if alerts.Label != "attack" {
		t.Errorf("label = %q, want attack", alerts.Label)
	}
	if got := alerts.Value.(map[string]interface{})["smurf"].(uint64); got != 1 {
		t.Errorf("vec snapshot = %v, want 1", got)
	}
	hs := snap["kalis_handle_seconds"].Value.(HistogramSnapshot)
	if hs.Count != 1 || hs.SumSeconds != 0.001 {
		t.Errorf("histogram snapshot = %+v", hs)
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(sb.String(), `"type": "histogram"`) {
		t.Errorf("JSON output missing histogram type:\n%s", sb.String())
	}
}

// TestHotPathAllocs enforces the always-on contract: the instrumented
// packet path must not allocate. (The benchmark measures latency; this
// test makes the 0 allocs/op claim a hard gate for `go test`.)
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	v := r.CounterVec("v", "topic", "")
	hv := r.HistogramVec("hv", "module", "", nil)
	v.With("packet") // create children outside the measured loop
	hv.With("mod")

	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Gauge.Set":         func() { g.Set(9) },
		"Histogram.Observe": func() { h.Observe(42 * time.Microsecond) },
		"CounterVec.With":   func() { v.With("packet").Inc() },
		"HistogramVec.With": func() { hv.With("mod").Observe(time.Microsecond) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}
