package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("kalis_packets_total", "Packets.").Add(99)
	srv := httptest.NewServer(NewAdminMux(r))
	defer srv.Close()

	if code, body := scrape(t, srv.URL+"/metrics"); code != 200 ||
		!strings.Contains(body, "kalis_packets_total 99") {
		t.Errorf("/metrics: code %d body:\n%s", code, body)
	}

	code, body := scrape(t, srv.URL+"/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: code %d", code)
	}
	var snap map[string]MetricSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v\n%s", err, body)
	}
	if snap["kalis_packets_total"].Type != "counter" {
		t.Errorf("snapshot = %+v", snap)
	}

	if code, body := scrape(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
	if code, body := scrape(t, srv.URL+"/debug/pprof/"); code != 200 ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d body:\n%s", code, body)
	}
	if code, _ := scrape(t, srv.URL+"/nope"); code != 404 {
		t.Errorf("/nope: code %d, want 404", code)
	}
}

func TestServeAdmin(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	srv, err := ServeAdmin("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, body := scrape(t, "http://"+srv.Addr()+"/metrics"); code != 200 ||
		!strings.Contains(body, "go_goroutines") {
		t.Errorf("scrape: code %d body:\n%s", code, body)
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Errorf("close: %v", err)
	}
}
