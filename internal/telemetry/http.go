package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the Prometheus text
// exposition of this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler returns an http.Handler serving the JSON snapshot of
// this registry.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// NewAdminMux builds the admin endpoint: Prometheus exposition on
// /metrics, JSON snapshot on /metrics.json, liveness on /healthz, and
// the net/http/pprof profiling handlers under /debug/pprof/.
func NewAdminMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.JSONHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "kalis telemetry admin endpoint\n\n"+
			"  /metrics       Prometheus text exposition\n"+
			"  /metrics.json  JSON snapshot\n"+
			"  /healthz       liveness probe\n"+
			"  /debug/pprof/  Go profiling\n")
	})
	return mux
}

// AdminServer is a running admin endpoint.
type AdminServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// ServeAdmin starts the admin endpoint on addr (e.g. "127.0.0.1:9090",
// or port :0 to pick a free port — read the chosen one back with Addr).
// It returns once the listener is bound; serving continues in a
// background goroutine until Close.
func ServeAdmin(addr string, r *Registry) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &AdminServer{
		ln:   ln,
		srv:  &http.Server{Handler: NewAdminMux(r)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *AdminServer) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint and waits for the serve goroutine to exit.
func (s *AdminServer) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
