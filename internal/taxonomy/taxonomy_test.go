package taxonomy

import (
	"strings"
	"testing"

	"kalis/internal/attack"
)

func TestByTargetMatchesPaperTable(t *testing.T) {
	m := ByTarget()
	cases := []struct {
		src, dst Entity
		want     PatternClass
	}{
		{EntityInternet, EntityInternetService, DenialOfService},
		{EntityInternet, EntityHub, RemoteDoT},
		{EntityInternet, EntitySub, PatternNone},
		{EntityHub, EntityHub, ControlDoT},
		{EntityHub, EntitySub, DenialOfThing},
		{EntityHub, EntityRouter, DenialOfRouting},
		{EntitySub, EntitySub, DenialOfThing},
		{EntitySub, EntityInternetService, PatternNone},
		{EntityRouter, EntityHub, ControlDoT},
		{EntityRouter, EntityRouter, DenialOfRouting},
	}
	for _, c := range cases {
		if got := m[c.src][c.dst]; got != c.want {
			t.Errorf("%s → %s = %q, want %q", c.src, c.dst, got, c.want)
		}
	}
}

func TestByFeatureKeyCells(t *testing.T) {
	m := ByFeature()
	// The cells the paper's text pins down explicitly.
	cases := []struct {
		f    Feature
		a    string
		want Relation
	}{
		{FeatureSinglehop, attack.Smurf, Impossible},               // §III-A1
		{FeatureSinglehop, attack.SelectiveForwarding, Impossible}, // §III
		{FeatureEncrypted, attack.DataAlteration, Impossible},      // §III-B2
		{FeatureStatic, attack.Replication, TechniqueDepends},      // §VI-B2
		{FeatureMobile, attack.Replication, TechniqueDepends},
		{FeatureMultihop, attack.Sinkhole, Possible},
	}
	for _, c := range cases {
		if got := m[c.f][c.a]; got != c.want {
			t.Errorf("%s × %s = %v, want %v", c.f, c.a, got, c.want)
		}
	}
}

func TestEveryAttackCovered(t *testing.T) {
	m := ByFeature()
	for _, a := range attack.All {
		found := false
		for _, row := range m {
			if _, ok := row[a]; ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("attack %s absent from the feature taxonomy", a)
		}
	}
}

func TestRelationSymbols(t *testing.T) {
	if Possible.Symbol() != "●" || Impossible.Symbol() != "✗" || TechniqueDepends.Symbol() != "◯" {
		t.Error("symbols")
	}
	if Relation(9).Symbol() != "?" {
		t.Error("unknown symbol")
	}
}

func TestWriters(t *testing.T) {
	var sb strings.Builder
	WriteTableI(&sb)
	out := sb.String()
	for _, want := range []string{"Denial of Service", "Remote Denial of Thing", "Denial of Routing"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	sb.Reset()
	WriteFigure3(&sb)
	out = sb.String()
	for _, want := range []string{"icmp-flood", "wormhole", "●", "✗", "◯"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 3 missing %q", want)
		}
	}
}

func TestEntityString(t *testing.T) {
	if EntityHub.String() != "Hub" || Entity(99).String() != "entity(99)" {
		t.Error("entity strings")
	}
}
