// Package taxonomy encodes the paper's two IoT threat taxonomies:
// the attack-pattern taxonomy by source/target (Table I) and the
// feature/attack relationship taxonomy (Fig. 3) that grounds the
// knowledge-driven model — which attacks are possible, impossible, or
// detection-technique-dependent under each network/device feature.
package taxonomy

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kalis/internal/attack"
)

// Entity is a row/column of the by-target taxonomy.
type Entity int

// Entities of the IoT ecosystem (§III-B1).
const (
	EntityInternet Entity = iota + 1
	EntityInternetService
	EntityHub
	EntitySub
	EntityRouter
)

// String returns the entity name.
func (e Entity) String() string {
	switch e {
	case EntityInternet:
		return "Internet"
	case EntityInternetService:
		return "Internet Service"
	case EntityHub:
		return "Hub"
	case EntitySub:
		return "Sub"
	case EntityRouter:
		return "Router"
	default:
		return fmt.Sprintf("entity(%d)", int(e))
	}
}

// PatternClass is the paper's nomenclature for attack patterns.
type PatternClass string

// Attack-pattern classes (Table I). "Denial of Thing" (DoT) is the
// paper's term for attacks aimed at disrupting the functionality of a
// thing.
const (
	DenialOfService PatternClass = "Denial of Service"
	RemoteDoT       PatternClass = "Remote Denial of Thing"
	ControlDoT      PatternClass = "Control Denial of Thing"
	DenialOfThing   PatternClass = "Denial of Thing"
	DenialOfRouting PatternClass = "Denial of Routing"
	PatternNone     PatternClass = "-"
)

// ByTarget returns the Table I matrix: ByTarget()[source][target].
// Absent pairs are impossible (e.g. a sub lacks the communication
// hardware to attack an Internet service directly).
func ByTarget() map[Entity]map[Entity]PatternClass {
	return map[Entity]map[Entity]PatternClass{
		EntityInternet: {
			EntityInternetService: DenialOfService,
			EntityHub:             RemoteDoT,
			EntitySub:             PatternNone,
			EntityRouter:          PatternNone,
		},
		EntityHub: {
			EntityInternetService: DenialOfService,
			EntityHub:             ControlDoT,
			EntitySub:             DenialOfThing,
			EntityRouter:          DenialOfRouting,
		},
		EntitySub: {
			EntityInternetService: PatternNone,
			EntityHub:             PatternNone,
			EntitySub:             DenialOfThing,
			EntityRouter:          PatternNone,
		},
		EntityRouter: {
			EntityInternetService: PatternNone,
			EntityHub:             ControlDoT,
			EntitySub:             PatternNone,
			EntityRouter:          DenialOfRouting,
		},
	}
}

// Feature is a network/device feature of the Fig. 3 taxonomy.
type Feature string

// Features considered by the knowledge-driven model.
const (
	FeatureMultihop    Feature = "multi-hop topology"
	FeatureSinglehop   Feature = "single-hop topology"
	FeatureMobile      Feature = "mobile network"
	FeatureStatic      Feature = "static network"
	FeatureConstrained Feature = "constrained devices (802.15.4)"
	FeatureIPNetwork   Feature = "IP network (WiFi/wired)"
	FeatureEncrypted   Feature = "cryptographic protection"
)

// Relation classifies a (feature, attack) pair.
type Relation int

// Relations of the Fig. 3 matrix: dots (possible), crosses
// (impossible) and circles (the detection technique depends on the
// feature).
const (
	Possible Relation = iota + 1
	Impossible
	TechniqueDepends
)

// Symbol returns the figure's marker for the relation.
func (r Relation) Symbol() string {
	switch r {
	case Possible:
		return "●"
	case Impossible:
		return "✗"
	case TechniqueDepends:
		return "◯"
	default:
		return "?"
	}
}

// Matrix is the feature × attack relationship table.
type Matrix map[Feature]map[string]Relation

// ByFeature returns the Fig. 3 relationships for the attacks Kalis
// implements. Every entry is load-bearing: the detection modules'
// Required predicates in internal/core/detection are its executable
// form.
func ByFeature() Matrix {
	return Matrix{
		FeatureSinglehop: {
			attack.ICMPFlood:           Possible,
			attack.Smurf:               Impossible, // §III-A1
			attack.SYNFlood:            Possible,
			attack.SelectiveForwarding: Impossible, // §III: needs relays
			attack.Blackhole:           Impossible,
			attack.Sinkhole:            Impossible,
			attack.Wormhole:            Impossible,
			attack.Replication:         Possible,
			attack.Sybil:               TechniqueDepends,
			attack.DataAlteration:      Possible,
			// Extension beyond Fig. 3: crashing the same detector on
			// many nodes works over any topology; detecting it needs
			// the collective layer, not a topology feature.
			attack.CoordinatedQuarantine: Possible,
		},
		FeatureMultihop: {
			attack.ICMPFlood:             TechniqueDepends, // single-source check
			attack.Smurf:                 Possible,
			attack.SYNFlood:              Possible,
			attack.SelectiveForwarding:   Possible,
			attack.Blackhole:             Possible,
			attack.Sinkhole:              Possible,
			attack.Wormhole:              Possible,
			attack.Replication:           Possible,
			attack.Sybil:                 TechniqueDepends,
			attack.DataAlteration:        Possible,
			attack.CoordinatedQuarantine: Possible,
		},
		FeatureStatic: {
			attack.Replication: TechniqueDepends, // RSSI-stability technique
			attack.Sybil:       Possible,
		},
		FeatureMobile: {
			attack.Replication: TechniqueDepends, // sequence/velocity technique
			attack.Sybil:       Possible,
		},
		FeatureConstrained: {
			attack.SelectiveForwarding: Possible,
			attack.Blackhole:           Possible,
			attack.Sinkhole:            Possible,
			attack.Wormhole:            Possible,
			attack.Replication:         Possible,
			attack.Sybil:               Possible,
			attack.DataAlteration:      Possible,
			attack.ICMPFlood:           Impossible, // no IP stack to flood
			attack.SYNFlood:            Impossible,
			attack.Smurf:               Impossible,
		},
		FeatureIPNetwork: {
			attack.ICMPFlood: Possible,
			attack.Smurf:     Possible,
			attack.SYNFlood:  Possible,
		},
		FeatureEncrypted: {
			attack.DataAlteration: Impossible, // prevention technique, §III-B2
		},
	}
}

// WriteTableI renders Table I.
func WriteTableI(w io.Writer) {
	targets := []Entity{EntityInternetService, EntityHub, EntitySub, EntityRouter}
	sources := []Entity{EntityInternet, EntityHub, EntitySub, EntityRouter}
	m := ByTarget()
	fmt.Fprintf(w, "%-18s", "SOURCE \\ TARGET")
	for _, t := range targets {
		fmt.Fprintf(w, "| %-22s", t)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 18+4*25))
	for _, s := range sources {
		fmt.Fprintf(w, "%-18s", s)
		for _, t := range targets {
			cell := m[s][t]
			if cell == "" {
				cell = PatternNone
			}
			fmt.Fprintf(w, "| %-22s", cell)
		}
		fmt.Fprintln(w)
	}
}

// WriteFigure3 renders the feature/attack matrix.
func WriteFigure3(w io.Writer) {
	m := ByFeature()
	features := make([]Feature, 0, len(m))
	for f := range m {
		features = append(features, f)
	}
	sort.Slice(features, func(i, j int) bool { return features[i] < features[j] })

	fmt.Fprintf(w, "%-24s", "ATTACK \\ FEATURE")
	for _, f := range features {
		fmt.Fprintf(w, "| %-30s", f)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 24+len(features)*33))
	for _, a := range attack.All {
		fmt.Fprintf(w, "%-24s", a)
		for _, f := range features {
			sym := " "
			if rel, ok := m[f][a]; ok {
				sym = rel.Symbol()
			}
			fmt.Fprintf(w, "| %-30s", sym)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "● possible   ✗ impossible   ◯ detection technique depends on the feature")
}
