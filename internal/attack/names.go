// Package attack defines the canonical attack names shared by the
// attack injectors (ground truth), the detection modules (alert
// classification), and the evaluation harness (scoring). Using one
// namespace keeps "classification accuracy" well-defined: an alert is
// correctly classified iff its name equals the ground-truth name.
package attack

// Canonical attack names, covering the paper's taxonomy by features
// (Fig. 3) and all evaluation scenarios (§VI).
const (
	ICMPFlood           = "icmp-flood"
	Smurf               = "smurf"
	SYNFlood            = "syn-flood"
	SelectiveForwarding = "selective-forwarding"
	Blackhole           = "blackhole"
	Replication         = "replication"
	Sybil               = "sybil"
	Sinkhole            = "sinkhole"
	Wormhole            = "wormhole"
	DataAlteration      = "data-alteration"
	// CoordinatedQuarantine is the fleet-level symptom of the same
	// detection module being crashed into quarantine on many nodes at
	// once — crafted traffic opening a detection hole fleet-wide.
	CoordinatedQuarantine = "coordinated-quarantine"
)

// All lists every canonical attack name.
var All = []string{
	ICMPFlood, Smurf, SYNFlood, SelectiveForwarding, Blackhole,
	Replication, Sybil, Sinkhole, Wormhole, DataAlteration,
	CoordinatedQuarantine,
}
