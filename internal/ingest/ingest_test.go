package ingest

import (
	"sync"
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// collectSink records delivered packets and batch sizes.
type collectSink struct {
	mu      sync.Mutex
	got     []*packet.Captured
	batches []int
	delay   time.Duration
}

func (s *collectSink) HandleBatch(batch []*packet.Captured) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.mu.Lock()
	s.got = append(s.got, batch...)
	s.batches = append(s.batches, len(batch))
	s.mu.Unlock()
}

func cap4(src packet.NodeID, seq int) *packet.Captured {
	return &packet.Captured{Src: src, Payload: []byte{byte(seq >> 8), byte(seq)}}
}

func seqOf(c *packet.Captured) int { return int(c.Payload[0])<<8 | int(c.Payload[1]) }

func TestRingFIFOAndWrap(t *testing.T) {
	r := newRing(4)
	out := make([]*packet.Captured, 8)
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < 4; i++ {
			if !r.push(cap4("a", lap*4+i)) {
				t.Fatalf("lap %d: push %d refused", lap, i)
			}
		}
		if r.push(cap4("a", 99)) {
			t.Fatal("push into full ring must refuse")
		}
		if d := r.depth(); d != 4 {
			t.Fatalf("depth = %d, want 4", d)
		}
		n := r.pop(out)
		if n != 4 {
			t.Fatalf("pop = %d, want 4", n)
		}
		for i := 0; i < 4; i++ {
			if seqOf(out[i]) != lap*4+i {
				t.Fatalf("lap %d: out[%d] = %d, want %d", lap, i, seqOf(out[i]), lap*4+i)
			}
		}
	}
}

func TestPipelineShardAffinityAndOrder(t *testing.T) {
	const shards = 4
	sinks := make([]Sink, shards)
	collect := make([]*collectSink, shards)
	for i := range sinks {
		collect[i] = &collectSink{}
		sinks[i] = collect[i]
	}
	p := New(Config{Shards: shards, Block: true}, sinks, Metrics{})
	sources := []packet.NodeID{"node-1", "node-2", "node-3", "node-4", "node-5", ""}
	const per = 500
	for seq := 0; seq < per; seq++ {
		for _, src := range sources {
			if !p.Enqueue(cap4(src, seq)) {
				t.Fatalf("lossless enqueue refused (src=%q seq=%d)", src, seq)
			}
		}
	}
	p.Stop()

	// Every source lands wholly on one shard, in enqueue order.
	shardBySrc := make(map[packet.NodeID]int)
	lastSeq := make(map[packet.NodeID]int)
	total := 0
	for si, cs := range collect {
		for _, c := range cs.got {
			total++
			if prev, ok := shardBySrc[c.Src]; ok && prev != si {
				t.Fatalf("source %q split across shards %d and %d", c.Src, prev, si)
			}
			shardBySrc[c.Src] = si
			if last, ok := lastSeq[c.Src]; ok && seqOf(c) != last+1 {
				t.Fatalf("source %q out of order: %d after %d", c.Src, seqOf(c), last)
			}
			lastSeq[c.Src] = seqOf(c)
		}
	}
	if want := per * len(sources); total != want {
		t.Fatalf("delivered %d packets, want %d", total, want)
	}
	st := p.Stats()
	if st.Enqueued != st.Accepted+st.Dropped || st.Dropped != 0 || st.Delivered != st.Accepted {
		t.Fatalf("accounting broken after Stop: %+v", st)
	}
}

func TestPipelineDropNewestAccounting(t *testing.T) {
	slow := &collectSink{delay: 200 * time.Microsecond}
	met := Metrics{
		Depth: []*telemetry.Gauge{{}},
		Drops: []*telemetry.Counter{{}},
	}
	p := New(Config{Shards: 1, RingSize: 64, BatchSize: 8}, []Sink{slow}, met)
	const n = 3000
	for i := 0; i < n; i++ {
		p.Enqueue(cap4("burst", i))
	}
	p.Stop()
	st := p.Stats()
	if st.Enqueued != n {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, n)
	}
	if st.Dropped == 0 {
		t.Fatal("a 64-slot ring with a slow sink must drop under a 3000-packet burst")
	}
	if st.Enqueued != st.Accepted+st.Dropped {
		t.Fatalf("enqueued %d != accepted %d + dropped %d", st.Enqueued, st.Accepted, st.Dropped)
	}
	if st.Delivered != st.Accepted {
		t.Fatalf("drain-on-Stop lost packets: delivered %d, accepted %d", st.Delivered, st.Accepted)
	}
	if got := met.Drops[0].Value(); got != st.Dropped {
		t.Fatalf("drop counter = %d, want %d", got, st.Dropped)
	}
	slow.mu.Lock()
	defer slow.mu.Unlock()
	if len(slow.got) != int(st.Delivered) {
		t.Fatalf("sink saw %d packets, stats say %d", len(slow.got), st.Delivered)
	}
}

func TestPipelineDrain(t *testing.T) {
	p := New(Config{Shards: 2, Block: true}, []Sink{&collectSink{}, &collectSink{}}, Metrics{})
	for i := 0; i < 1000; i++ {
		p.Enqueue(cap4(packet.NodeID(rune('a'+i%7)), i))
	}
	p.Drain()
	st := p.Stats()
	if st.Delivered != st.Accepted || st.Accepted != 1000 {
		t.Fatalf("after Drain: %+v", st)
	}
	p.Stop()
}

func TestEnqueueAfterStopRefused(t *testing.T) {
	cs := &collectSink{}
	p := New(Config{Shards: 1}, []Sink{cs}, Metrics{})
	p.Stop()
	if p.Enqueue(cap4("late", 1)) {
		t.Fatal("Enqueue after Stop must report false")
	}
	if st := p.Stats(); st.Enqueued != 0 {
		t.Fatalf("post-Stop enqueue must not count: %+v", st)
	}
}

func TestBatchSizeHistogramEncoding(t *testing.T) {
	cs := &collectSink{delay: 100 * time.Microsecond}
	reg := telemetry.NewRegistry()
	h := reg.Histogram("kalis_ingest_batch_size", "Batch sizes (1 packet == 1s).", BatchSizeBuckets)
	p := New(Config{Shards: 1, BatchSize: 16, Block: true}, []Sink{cs}, Metrics{BatchSize: h})
	const n = 400
	for i := 0; i < n; i++ {
		p.Enqueue(cap4("s", i))
	}
	p.Stop()
	// Under the 1 packet == 1 second encoding, the histogram sum in
	// seconds is the total packet count and count is the batch count.
	if got := int(h.Sum() / time.Second); got != n {
		t.Fatalf("sum(batch sizes) = %d packets, want %d", got, n)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if int(h.Count()) != len(cs.batches) {
		t.Fatalf("histogram count %d != batches delivered %d", h.Count(), len(cs.batches))
	}
	for _, b := range cs.batches {
		if b > 16 {
			t.Fatalf("batch of %d exceeds BatchSize 16", b)
		}
	}
}

// parkedSink blocks every HandleBatch until released.
type parkedSink struct {
	parked  chan struct{} // signaled once the sink is blocking
	release chan struct{}
}

func (s *parkedSink) HandleBatch(batch []*packet.Captured) {
	select {
	case s.parked <- struct{}{}:
	default:
	}
	<-s.release
}

// TestPipelineMaxSkewPacing: with a skew bound, Enqueue must not let a
// packet run more than MaxSkew of capture time ahead of a shard that
// still has queued work, and must proceed once that shard catches up.
func TestPipelineMaxSkewPacing(t *testing.T) {
	t0 := time.Unix(1_500_000_000, 0)
	slow := &parkedSink{parked: make(chan struct{}, 1), release: make(chan struct{})}
	fast := &collectSink{}
	// Probe which shard each source hashes to, then wire the parked
	// sink onto srcSlow's shard.
	probe := New(Config{Shards: 2}, []Sink{&collectSink{}, &collectSink{}}, Metrics{})
	srcSlow, srcFast := packet.NodeID("node-1"), packet.NodeID("node-2")
	for _, cand := range []packet.NodeID{"node-2", "node-3", "node-4"} {
		if probe.shardOf(&packet.Captured{Src: cand}) != probe.shardOf(&packet.Captured{Src: srcSlow}) {
			srcFast = cand
			break
		}
	}
	probe.Stop()
	sinks := []Sink{Sink(slow), Sink(fast)}
	if probe.shardOf(&packet.Captured{Src: srcSlow}) == probe.shards[1] {
		sinks[0], sinks[1] = sinks[1], sinks[0]
	}
	p := New(Config{Shards: 2, Block: true, MaxSkew: time.Second}, sinks, Metrics{})
	defer p.Stop()

	at := func(src packet.NodeID, d time.Duration) *packet.Captured {
		return &packet.Captured{Src: src, Time: t0.Add(d)}
	}
	// First packet parks the slow worker inside HandleBatch; the
	// second stays queued so the shard counts as busy at t0.
	p.Enqueue(at(srcSlow, 0))
	<-slow.parked
	p.Enqueue(at(srcSlow, 0))

	// 5s of capture time ahead of the parked shard: must pace.
	done := make(chan struct{})
	go func() {
		p.Enqueue(at(srcFast, 5*time.Second))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("enqueue ran 5s of capture time ahead of a busy shard (MaxSkew 1s)")
	case <-time.After(50 * time.Millisecond):
	}

	close(slow.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue still paced after the lagging shard drained")
	}
	p.Stop()
	st := p.Stats()
	if st.Delivered != st.Accepted || st.Accepted != 3 {
		t.Fatalf("accounting after paced run: %+v", st)
	}
}
