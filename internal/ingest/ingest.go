// Package ingest is the sharded, batched ingestion pipeline between
// packet capture and module dispatch: the throughput stage that lets a
// Kalis node scale to NumCPU instead of funneling every capture
// through one serial fan-out (ROADMAP "Sharded, batched ingestion
// pipeline").
//
// Packets are sharded by a hash of the source endpoint (falling back
// to the capture medium for frames without one), so every flow, every
// per-source detector state and every endpoint tracker stays local to
// one shard and per-source capture order is preserved end to end: one
// source always hashes to one shard, its packets enter that shard's
// ring in capture order, and a single worker drains the ring FIFO.
//
// Each shard owns a fixed-size lock-free ring buffer (ring.go) drained
// by one worker goroutine that hands *batches* to its Sink, amortizing
// the per-dispatch lock round-trip, snapshot read and supervision
// bookkeeping across the batch. Backpressure is drop-newest with a
// per-shard counter by default — a passive IDS never blocks capture,
// matching the event bus' packet-topic policy — or lossless (spin)
// when Config.Block is set, for offline replay and benchmarks where
// every packet must be observed.
package ingest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// Sink consumes drained batches. Each shard has its own Sink instance;
// the pipeline never calls the same Sink from two goroutines.
type Sink interface {
	HandleBatch(batch []*packet.Captured)
}

// Config tunes the pipeline.
type Config struct {
	// Shards is the number of shard rings/workers (minimum 1).
	Shards int
	// RingSize is the per-shard ring capacity in packets, rounded up
	// to a power of two; 0 selects DefaultRingSize.
	RingSize int
	// BatchSize caps how many packets one Sink call receives; 0
	// selects DefaultBatchSize.
	BatchSize int
	// Block selects lossless backpressure: Enqueue spins (yielding the
	// processor) until ring space frees instead of dropping. Default
	// is drop-newest with a per-shard drop counter.
	Block bool
	// MaxSkew bounds, in capture time, how far a packet being enqueued
	// may run ahead of the slowest shard that still has work queued.
	// Live capture never needs it (arrival time tracks capture time),
	// but an accelerated replay can hand one worker a whole trace
	// before another is scheduled, so traffic-derived knowledge — and
	// the module activations it drives — would lag entire attack
	// episodes behind the racing shard. Only honoured in Block mode
	// (pacing means waiting, and drop-newest capture must never wait);
	// 0 disables. The bound is approximate: a worker's progress mark
	// trails the batch it is currently dispatching.
	MaxSkew time.Duration
}

// Default ring and batch sizing: a 4096-packet ring absorbs multi-ms
// bursts at µs-scale processing cost, and 256-packet batches amortize
// dispatch overhead well past the point of diminishing returns while
// keeping worst-case batch latency bounded.
const (
	DefaultRingSize  = 4096
	DefaultBatchSize = 256
)

// Metrics are the pipeline's optional telemetry hooks, pre-resolved
// per shard at wiring time so the hot path never does a Vec lookup;
// zero-value fields are skipped (all telemetry types are nil-safe).
type Metrics struct {
	// Depth tracks each shard's current ring occupancy.
	Depth []*telemetry.Gauge
	// Drops counts packets dropped by each full shard ring.
	Drops []*telemetry.Counter
	// BatchSize observes the size of every batch handed to a Sink,
	// encoded as 1 packet == 1 second (sum_seconds == total packets).
	BatchSize *telemetry.Histogram
}

// BatchSizeBuckets are the bucket bounds for the batch-size histogram
// under the 1 packet == 1 second encoding.
var BatchSizeBuckets = []time.Duration{
	1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
	16 * time.Second, 32 * time.Second, 64 * time.Second, 128 * time.Second,
	256 * time.Second,
}

// shardState is one shard: its ring, its worker's wakeup channel, its
// sink and its pre-resolved telemetry children.
type shardState struct {
	ring   *ring
	notify chan struct{} // capacity 1: a wakeup token, never blocks
	sink   Sink

	depth *telemetry.Gauge
	drops *telemetry.Counter

	accepted  atomic.Uint64
	dropped   atomic.Uint64
	delivered atomic.Uint64

	// progress is the capture time (unix nanos) this shard has reached:
	// the last packet its worker dispatched, or the first packet queued
	// before the worker ever ran. 0 means no packet was ever routed
	// here. Read by Enqueue's skew pacing.
	progress atomic.Int64
}

// Stats is the pipeline's packet accounting. At any quiescent point
// (after Drain or Stop) Accepted == Delivered, and always
// Enqueued == Accepted + Dropped.
type Stats struct {
	// Enqueued counts Enqueue attempts.
	Enqueued uint64
	// Accepted counts packets that entered a shard ring.
	Accepted uint64
	// Dropped counts packets rejected by a full ring (drop-newest).
	Dropped uint64
	// Delivered counts packets handed to sinks in batches.
	Delivered uint64
}

// Pipeline is the sharded ingestion stage. Create with New, feed with
// Enqueue, shut down with Stop.
type Pipeline struct {
	shards  []*shardState
	block   bool
	batch   int
	maxSkew int64 // capture-time pacing bound in nanos; 0 = off
	met     Metrics

	// stopping gates Enqueue and inflight tracks producers mid-call,
	// mirroring the event bus' publish/Close accounting: Stop flips
	// stopping, waits out in-flight enqueues, then signals workers to
	// drain — so every accepted packet is delivered, and accounting
	// is exact.
	stopping atomic.Bool
	inflight sync.WaitGroup
	stop     chan struct{}
	workers  sync.WaitGroup
}

// New creates and starts a pipeline with one sink per shard
// (len(sinks) must equal the shard count).
func New(cfg Config, sinks []Sink, met Metrics) *Pipeline {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if len(sinks) != n {
		return nil
	}
	ringSize := cfg.RingSize
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	p := &Pipeline{
		shards: make([]*shardState, n),
		block:  cfg.Block,
		batch:  batch,
		met:    met,
		stop:   make(chan struct{}),
	}
	if cfg.Block && cfg.MaxSkew > 0 && n > 1 {
		p.maxSkew = int64(cfg.MaxSkew)
	}
	for i := range p.shards {
		s := &shardState{
			ring:   newRing(ringSize),
			notify: make(chan struct{}, 1),
			sink:   sinks[i],
		}
		if i < len(met.Depth) {
			s.depth = met.Depth[i]
		}
		if i < len(met.Drops) {
			s.drops = met.Drops[i]
		}
		p.shards[i] = s
	}
	p.workers.Add(n)
	for i := range p.shards {
		go p.run(p.shards[i])
	}
	return p
}

// Shards returns the shard count.
func (p *Pipeline) Shards() int { return len(p.shards) }

// shardOf routes a packet to its shard: FNV-1a over the source
// endpoint, falling back to the capture medium for sourceless frames.
// The source is the key precisely because it is what keeps per-source
// state (flows, endpoint trackers, detector windows) shard-local and
// per-source packet order intact.
func (p *Pipeline) shardOf(c *packet.Captured) *shardState {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	if len(c.Src) == 0 {
		h = (h ^ uint64(c.Medium)) * prime64
	} else {
		for i := 0; i < len(c.Src); i++ {
			h = (h ^ uint64(c.Src[i])) * prime64
		}
	}
	return p.shards[h%uint64(len(p.shards))]
}

// Enqueue routes one packet to its shard ring. It reports false when
// the packet was dropped (full ring, drop-newest policy) or the
// pipeline is stopping. It never blocks in drop-newest mode; in Block
// mode it spins until space frees, yielding the processor each lap.
func (p *Pipeline) Enqueue(c *packet.Captured) bool {
	p.inflight.Add(1)
	if p.stopping.Load() {
		p.inflight.Done()
		return false
	}
	if p.maxSkew > 0 && !c.Time.IsZero() {
		// Pace the feed: wait until every shard with queued work is
		// within MaxSkew of this packet's capture time. Workers never
		// wait on producers, so the laggard is always making progress
		// and the loop terminates.
		for c.Time.UnixNano()-p.minBusyProgress() > p.maxSkew {
			if p.stopping.Load() {
				p.inflight.Done()
				return false
			}
			runtime.Gosched()
		}
	}
	s := p.shardOf(c)
	if p.maxSkew > 0 {
		// Seed the progress mark for a shard whose worker has not run
		// yet: its oldest queued packet, i.e. the first ever enqueued.
		s.progress.CompareAndSwap(0, c.Time.UnixNano())
	}
	for !s.ring.push(c) {
		if !p.block {
			s.dropped.Add(1)
			s.drops.Inc()
			p.inflight.Done()
			return false
		}
		runtime.Gosched()
	}
	s.accepted.Add(1)
	s.depth.Set(int64(s.ring.depth()))
	// Hand the worker a wakeup token; a token already in flight means
	// the worker will drain this packet anyway, so the send never
	// blocks.
	select {
	case s.notify <- struct{}{}:
	default:
	}
	p.inflight.Done()
	return true
}

// run is one shard's worker loop: drain the ring, sleep on the wakeup
// token, drain once more on shutdown so no accepted packet is lost.
func (p *Pipeline) run(s *shardState) {
	defer p.workers.Done()
	batch := make([]*packet.Captured, p.batch)
	for {
		p.drainShard(s, batch)
		select {
		case <-s.notify:
		case <-p.stop:
			// Stop closed p.stop only after every in-flight Enqueue
			// returned, so one final drain empties the ring for good.
			p.drainShard(s, batch)
			return
		}
	}
}

// drainShard pops and dispatches every packet currently in the shard's
// ring, in FIFO batches. It is the per-packet worker path and is
// registered as a kalislint hotpath/hotalloc root: nothing here (or in
// the sinks it reaches) may allocate, format or block per packet.
func (p *Pipeline) drainShard(s *shardState, batch []*packet.Captured) int {
	total := 0
	for {
		n := s.ring.pop(batch)
		if n == 0 {
			if total > 0 {
				s.depth.Set(int64(s.ring.depth()))
			}
			return total
		}
		p.met.BatchSize.Observe(time.Duration(n) * time.Second)
		s.sink.HandleBatch(batch[:n])
		s.delivered.Add(uint64(n))
		if p.maxSkew > 0 {
			s.progress.Store(batch[n-1].Time.UnixNano())
		}
		total += n
	}
}

// minBusyProgress returns the smallest progress mark among shards that
// still have queued packets, or a far-future value when every ring is
// empty (an idle shard cannot be behind). A worker mid-batch with an
// emptied ring momentarily reads as idle — MaxSkew is a bound up to
// one batch of slack, which pacing callers must tolerate.
func (p *Pipeline) minBusyProgress() int64 {
	const farFuture = int64(^uint64(0) >> 1)
	min := farFuture
	for _, s := range p.shards {
		if s.ring.depth() == 0 {
			continue
		}
		if prog := s.progress.Load(); prog != 0 && prog < min {
			min = prog
		}
	}
	return min
}

// Depth returns the total number of packets currently queued across
// all shard rings — the pipeline's pressure signal (the supervisor's
// circuit breaker reads it in sharded mode).
func (p *Pipeline) Depth() int {
	total := 0
	for _, s := range p.shards {
		total += s.ring.depth()
	}
	return total
}

// Stats returns the pipeline's packet accounting.
func (p *Pipeline) Stats() Stats {
	var st Stats
	for _, s := range p.shards {
		a, d, del := s.accepted.Load(), s.dropped.Load(), s.delivered.Load()
		st.Accepted += a
		st.Dropped += d
		st.Delivered += del
	}
	st.Enqueued = st.Accepted + st.Dropped
	return st
}

// Drain blocks until every packet accepted so far has been delivered.
// It is meant for quiescent producers (benchmarks, replay, shutdown
// sequencing); with concurrent Enqueues it only bounds the backlog at
// the moment of the call.
func (p *Pipeline) Drain() {
	for {
		st := p.Stats()
		if st.Delivered >= st.Accepted && p.Depth() == 0 {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Stop shuts the pipeline down losslessly: new Enqueues are refused,
// in-flight ones complete, the workers drain every ring to empty and
// exit. After Stop returns, Stats().Delivered == Stats().Accepted.
func (p *Pipeline) Stop() {
	if p.stopping.Swap(true) {
		return
	}
	p.inflight.Wait()
	close(p.stop)
	p.workers.Wait()
}
