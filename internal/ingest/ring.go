package ingest

import (
	"sync/atomic"

	"kalis/internal/packet"
)

// ring is a bounded lock-free queue of captured packets (Vyukov's
// bounded MPMC design, specialized to a single consumer): every slot
// carries a sequence number that encodes whether it is free for the
// producer at a given position or published for the consumer, so
// enqueue and dequeue never share a mutex and never allocate.
//
// The ingestion pipeline routes every packet of a given source through
// one producer goroutine (the capture path) to one shard, so in steady
// state the ring runs single-producer/single-consumer; the CAS on the
// enqueue cursor only ever retries when multiple capture goroutines
// feed sources that hash to the same shard.
//
// Memory model: a producer publishes a slot with seq.Store(pos+1)
// (release) after writing the packet pointer; the consumer observes
// that store with seq.Load (acquire) before reading the pointer, and
// frees the slot for the next lap with seq.Store(pos+capacity). Go's
// sync/atomic guarantees these establish happens-before, which is also
// what keeps the ordering regression test clean under -race.
type ring struct {
	mask  uint64
	slots []slot
	_     [48]byte // keep the cursors off the slots' cache lines
	enq   atomic.Uint64
	_     [56]byte // producers and the consumer don't false-share cursors
	deq   atomic.Uint64
}

// slot is one ring cell: the published packet and its lap sequence.
type slot struct {
	seq atomic.Uint64
	c   *packet.Captured
}

// newRing creates a ring with the given capacity, rounded up to a
// power of two (minimum 2).
func newRing(capacity int) *ring {
	size := 2
	for size < capacity {
		size <<= 1
	}
	r := &ring{mask: uint64(size - 1), slots: make([]slot, size)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues one packet; it reports false when the ring is full.
// Safe for concurrent producers.
func (r *ring) push(c *packet.Captured) bool {
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.c = c
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case diff < 0:
			// The slot still holds last lap's packet: full.
			return false
		default:
			// Another producer claimed this position; reload.
			pos = r.enq.Load()
		}
	}
}

// pop dequeues up to len(out) packets in FIFO order and returns how
// many it wrote. Single consumer only.
func (r *ring) pop(out []*packet.Captured) int {
	pos := r.deq.Load()
	n := 0
	for n < len(out) {
		s := &r.slots[pos&r.mask]
		if int64(s.seq.Load())-int64(pos+1) < 0 {
			break // not yet published
		}
		out[n] = s.c
		s.c = nil
		s.seq.Store(pos + uint64(len(r.slots)))
		pos++
		n++
	}
	if n > 0 {
		r.deq.Store(pos)
	}
	return n
}

// depth approximates the number of packets currently queued.
func (r *ring) depth() int {
	d := int64(r.enq.Load()) - int64(r.deq.Load())
	if d < 0 {
		d = 0
	}
	return int(d)
}
