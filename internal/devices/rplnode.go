package devices

import (
	"time"

	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/sixlowpan"
	"kalis/internal/proto/stack"
)

// RPLNode models a 6LoWPAN/RPL node (RFC 6550): it broadcasts periodic
// DIO advertisements carrying its rank and originates mesh-forwarded
// application data towards the DODAG root. Non-root nodes also relay
// mesh data one hop towards their parent, like the CTP motes do for
// collection traffic.
type RPLNode struct {
	node *netsim.Node
	// Parent is the next hop towards the root.
	Parent uint16
	// Rank is the advertised RPL rank (root = 256).
	Rank uint16
	// Root reports whether this node is the DODAG root.
	Root bool
	// RootAddr is the DODAG root's address (data destination).
	RootAddr uint16
	// DIOInterval is the DIO broadcast period (default 20 s).
	DIOInterval time.Duration
	// DataInterval is the application data period (default 5 s).
	DataInterval time.Duration
	// Delivered counts data frames terminating at this root.
	Delivered int

	seq uint8
}

// NewRPLNode creates a node bound to the simulated radio.
func NewRPLNode(node *netsim.Node, parent, rank uint16, root bool) *RPLNode {
	n := &RPLNode{
		node:         node,
		Parent:       parent,
		Rank:         rank,
		Root:         root,
		RootAddr:     1,
		DIOInterval:  20 * time.Second,
		DataInterval: 5 * time.Second,
	}
	node.OnReceive(n.receive)
	return n
}

// Node returns the underlying simulated node.
func (n *RPLNode) Node() *netsim.Node { return n.node }

// Start schedules DIO broadcasts and data origination.
func (n *RPLNode) Start(start time.Time) {
	sim := n.node.Sim()
	sim.Every(start, n.DIOInterval, func() bool {
		n.seq++
		n.node.Send(packet.MediumIEEE802154, stack.BuildRPLDIO(n.node.Addr16, n.seq, n.Rank, 1))
		return true
	})
	if !n.Root {
		sim.Every(start.Add(n.DataInterval/2), n.DataInterval, func() bool {
			n.seq++
			raw := stack.BuildSixLowPANData(n.node.Addr16, n.Parent, n.node.Addr16, n.RootAddr, n.seq, 8, []byte{0x02, n.seq})
			n.node.Send(packet.MediumIEEE802154, raw)
			return true
		})
	}
}

func (n *RPLNode) receive(medium packet.Medium, raw []byte, _ *netsim.Node, _ float64) {
	if medium != packet.MediumIEEE802154 {
		return
	}
	mac, err := ieee802154.Decode(raw)
	if err != nil || mac.DstShort != n.node.Addr16 {
		return
	}
	lp, err := sixlowpan.Decode(mac.Payload)
	if err != nil || lp.Mesh == nil {
		return
	}
	if n.Root || lp.Mesh.Dst == n.node.Addr16 {
		n.Delivered++
		return
	}
	if lp.Mesh.HopsLeft == 0 {
		return
	}
	// Relay one hop towards the parent, decrementing HopsLeft.
	n.seq++
	fwd := stack.BuildSixLowPANData(n.node.Addr16, n.Parent, lp.Mesh.Origin, lp.Mesh.Dst, n.seq, lp.Mesh.HopsLeft-1, lp.Payload)
	n.node.Sim().After(15*time.Millisecond, func() {
		n.node.Send(packet.MediumIEEE802154, fwd)
	})
}
