// Package devices provides traffic-behaviour models for the
// heterogeneous IoT testbed of the paper's evaluation (§VI-A): a WSN of
// CTP motes plus commodity smart-home devices (thermostat, smart lock,
// light bulb, camera, dash button) and their cloud/hub counterparts.
//
// Each model emits protocol-correct frames through internal/proto/stack
// onto the simulated medium; what Kalis observes from these models has
// the same shape (rates, headers, routing fields, RSSI) a real
// deployment would exhibit.
package devices

import (
	"fmt"
	"time"

	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/stack"
)

// Mote is a TinyOS-style WSN mote running a CTP collection application:
// it originates a data message every interval towards the base station
// and forwards data received from its children to its parent,
// incrementing THL at each hop. The paper's WSN sends "a data message
// every 3 seconds towards a node acting as base station" (§VI-A).
type Mote struct {
	node *netsim.Node
	// Parent is the next-hop address towards the base station.
	Parent uint16
	// Base reports whether this mote is the base station (sink).
	Base bool
	// Interval is the data-origination period (default 3 s).
	Interval time.Duration
	// ETX is the route cost this mote advertises in beacons.
	ETX uint16
	// DropForward, when non-nil, decides whether a received data frame
	// is silently dropped instead of forwarded — the hook the
	// selective-forwarding and blackhole attack injectors use.
	DropForward func(*ctp.Data) bool
	// ForwardTruth, when non-nil, labels forwarded frames; used by
	// attack injectors so that the *absence* symptom can be scored.
	ForwardTruth func(*ctp.Data) *packet.GroundTruth
	// MutateForward, when non-nil, replaces the payload of a frame
	// before forwarding it — the hook the data-alteration injector
	// uses.
	MutateForward func(*ctp.Data) []byte
	// Adaptive enables CTP parent selection from overheard beacons:
	// the mote picks the neighbour minimizing advertised cost plus an
	// RSSI-derived link cost, and re-advertises its own cost. With
	// adaptive routing on, a sinkhole's lying advertisement really
	// attracts traffic.
	Adaptive bool

	// neighbour state for adaptive routing.
	advCost   map[uint16]uint16
	linkRSSI  map[uint16]float64
	lastHeard map[uint16]time.Time
	// Delivered counts data frames that reached this mote as final
	// destination (meaningful on the base station).
	Delivered int
	// Originated counts data frames this mote originated.
	Originated int
	// OnDeliver, when non-nil, is invoked for every data frame
	// delivered to this mote as base station.
	OnDeliver func(*ctp.Data)

	seq      uint8
	beaconSq uint8
}

// NewMote creates a mote bound to the given simulated node.
func NewMote(node *netsim.Node, parent uint16, base bool) *Mote {
	m := &Mote{node: node, Parent: parent, Base: base, Interval: 3 * time.Second, ETX: 10}
	if base {
		m.ETX = 0 // collection roots advertise zero route cost
	}
	node.OnReceive(m.receive)
	return m
}

// Node returns the underlying simulated node.
func (m *Mote) Node() *netsim.Node { return m.node }

// Addr returns the mote's 802.15.4 short address.
func (m *Mote) Addr() uint16 { return m.node.Addr16 }

// Start schedules the mote's periodic data origination and routing
// beacons beginning at start.
func (m *Mote) Start(start time.Time) {
	sim := m.node.Sim()
	if !m.Base {
		sim.Every(start, m.Interval, func() bool {
			m.seq++
			m.Originated++
			raw := stack.BuildCTPData(m.node.Addr16, m.Parent, m.node.Addr16, m.seq, 0, m.ETX, []byte{0x01, m.seq})
			m.node.Send(packet.MediumIEEE802154, raw)
			return true
		})
	}
	// Routing beacons every 10× the data interval, offset to avoid
	// phase-locking with data traffic.
	sim.Every(start.Add(m.Interval/2), 10*m.Interval, func() bool {
		m.beaconSq++
		m.node.Send(packet.MediumIEEE802154, stack.BuildCTPBeacon(m.node.Addr16, m.Parent, m.ETX, m.beaconSq))
		return true
	})
}

func (m *Mote) receive(medium packet.Medium, raw []byte, _ *netsim.Node, rssi float64) {
	if medium != packet.MediumIEEE802154 {
		return
	}
	mac, err := ieee802154.Decode(raw)
	if err != nil {
		return
	}
	if m.Adaptive && !m.Base {
		if msg, err := ctp.Decode(mac.Payload); err == nil {
			if b, ok := msg.(*ctp.Beacon); ok {
				m.observeBeacon(mac.SrcShort, b, rssi)
			}
		}
	}
	if mac.DstShort != m.node.Addr16 {
		return
	}
	msg, err := ctp.Decode(mac.Payload)
	if err != nil {
		return
	}
	data, ok := msg.(*ctp.Data)
	if !ok {
		return
	}
	if m.Base {
		m.Delivered++
		if m.OnDeliver != nil {
			m.OnDeliver(data)
		}
		return
	}
	if m.DropForward != nil && m.DropForward(data) {
		return
	}
	// Forward towards the parent after a small processing delay,
	// incrementing the time-has-lived hop counter.
	payload := data.Payload
	if m.MutateForward != nil {
		payload = m.MutateForward(data)
	}
	fwd := stack.BuildCTPData(m.node.Addr16, m.Parent, data.Origin, data.SeqNo, data.THL+1, m.ETX, payload)
	var truth *packet.GroundTruth
	if m.ForwardTruth != nil {
		truth = m.ForwardTruth(data)
	}
	m.node.Sim().After(20*time.Millisecond, func() {
		m.node.SendTruth(packet.MediumIEEE802154, fwd, truth)
	})
}

// observeBeacon updates adaptive-routing state from an overheard
// beacon and re-selects the parent minimizing advertised cost plus an
// RSSI-derived link cost.
func (m *Mote) observeBeacon(from uint16, b *ctp.Beacon, rssi float64) {
	if from == m.node.Addr16 {
		return
	}
	if m.advCost == nil {
		m.advCost = make(map[uint16]uint16)
		m.linkRSSI = make(map[uint16]float64)
		m.lastHeard = make(map[uint16]time.Time)
	}
	now := m.node.Sim().Now()
	m.advCost[from] = b.ETX
	m.linkRSSI[from] = rssi
	m.lastHeard[from] = now

	// Entries not refreshed for three beacon periods are stale (the
	// advertiser left, failed, or was revoked) and age out.
	staleAfter := 3 * 10 * m.Interval
	bestParent, bestCost := m.Parent, ^uint16(0)
	for nb, adv := range m.advCost {
		if now.Sub(m.lastHeard[nb]) > staleAfter {
			continue
		}
		cost := uint16(int(adv) + linkCost(m.linkRSSI[nb]))
		if cost < bestCost {
			bestParent, bestCost = nb, cost
		}
	}
	if bestCost != ^uint16(0) {
		m.Parent = bestParent
		m.ETX = bestCost
	}
}

// linkCost converts an RSSI to an ETX-style link cost (one good hop ≈
// 10): the expected transmission count rises sharply as the signal
// approaches the receiver sensitivity (−95 dBm).
func linkCost(rssi float64) int {
	margin := rssi + 95
	prr := margin / 10
	if prr > 1 {
		prr = 1
	}
	if prr < 0.05 {
		prr = 0.05
	}
	return int(10/prr + 0.5)
}

// BuildWSNLine creates a linear multi-hop WSN: base at x=0 and motes
// every spacing metres, each parented to the previous node. Returns
// the base station first.
func BuildWSNLine(sim *netsim.Sim, count int, spacing float64) []*Mote {
	motes := make([]*Mote, 0, count)
	for i := 0; i < count; i++ {
		addr := uint16(i + 1)
		n := sim.AddNode(&netsim.Node{
			Name:   moteName(i),
			Addr16: addr,
			Pos:    netsim.Position{X: float64(i) * spacing},
		})
		parent := addr - 1
		if i == 0 {
			parent = addr // base parents to itself
		}
		m := NewMote(n, parent, i == 0)
		if i > 0 {
			m.ETX = uint16(i * 10) // route cost grows with tree depth
		}
		motes = append(motes, m)
	}
	return motes
}

func moteName(i int) string {
	if i == 0 {
		return "base"
	}
	return fmt.Sprintf("mote-%02d", i)
}
