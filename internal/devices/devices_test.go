package devices

import (
	"net/netip"
	"testing"
	"time"

	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ble"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/stack"
)

func newSimWithSniffer(t *testing.T, mediums ...packet.Medium) (*netsim.Sim, *[]*packet.Captured) {
	t.Helper()
	sim := netsim.New(11)
	sn := sim.AddSniffer("ids", netsim.Position{X: 10, Y: 10}, mediums...)
	caps := &[]*packet.Captured{}
	sn.Subscribe(func(c *packet.Captured) { *caps = append(*caps, c.Clone()) })
	return sim, caps
}

func countKind(caps []*packet.Captured, k packet.Kind) int {
	n := 0
	for _, c := range caps {
		if c.Kind == k {
			n++
		}
	}
	return n
}

func TestWSNLineDeliversMultiHop(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumIEEE802154)
	motes := BuildWSNLine(sim, 4, 20) // base + 3 motes, 20 m apart
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}
	sim.RunFor(time.Minute)

	base := motes[0]
	if base.Delivered == 0 {
		t.Fatal("no data delivered to base")
	}
	// The farthest mote's packets must traverse intermediate hops and
	// appear on air with THL > 0.
	sawForwarded := false
	for _, c := range *caps {
		if d, ok := c.Layer("ctp-data").(*ctp.Data); ok && d.THL > 0 {
			sawForwarded = true
			if c.Transmitter == c.Src {
				t.Error("forwarded frame should have transmitter != origin")
			}
		}
	}
	if !sawForwarded {
		t.Error("no multi-hop forwarding observed")
	}
	if countKind(*caps, packet.KindCTPBeacon) == 0 {
		t.Error("no routing beacons observed")
	}
}

func TestMoteDropForwardHook(t *testing.T) {
	sim := netsim.New(3)
	motes := BuildWSNLine(sim, 3, 20)
	motes[1].DropForward = func(*ctp.Data) bool { return true } // blackhole at relay
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}
	sim.RunFor(30 * time.Second)
	// Only the relay's own packets should arrive; mote 2's are dropped.
	got := motes[0].Delivered
	if got == 0 {
		t.Fatal("relay's own traffic missing")
	}
	sim2 := netsim.New(3)
	motes2 := BuildWSNLine(sim2, 3, 20)
	for _, m := range motes2 {
		m.Start(sim2.Now().Add(time.Second))
	}
	sim2.RunFor(30 * time.Second)
	if motes2[0].Delivered <= got {
		t.Errorf("blackhole did not reduce delivery: with=%d without=%d", got, motes2[0].Delivered)
	}
}

func TestIPHostEchoResponder(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumWiFi)
	victim := sim.AddNode(&netsim.Node{Name: "victim", IP: netip.MustParseAddr("192.168.1.10"), Pos: netsim.Position{X: 5}})
	host := NewIPHost(victim)
	pinger := sim.AddNode(&netsim.Node{Name: "pinger", IP: netip.MustParseAddr("192.168.1.20"), Pos: netsim.Position{X: 15}})

	sim.After(time.Second, func() {
		raw := stack.BuildICMPEcho(pinger.IP, victim.IP, icmp.TypeEchoRequest, 1, 1, 64)
		pinger.Send(packet.MediumWiFi, raw)
	})
	sim.RunFor(5 * time.Second)

	if host.Replies != 1 {
		t.Errorf("Replies = %d, want 1", host.Replies)
	}
	if countKind(*caps, packet.KindICMPEchoRequest) != 1 || countKind(*caps, packet.KindICMPEchoReply) != 1 {
		t.Errorf("capture kinds: %d req, %d rep",
			countKind(*caps, packet.KindICMPEchoRequest), countKind(*caps, packet.KindICMPEchoReply))
	}
}

func TestThermostatSessionShape(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumWiFi)
	cloudIP := netip.MustParseAddr("34.1.2.3")
	router := sim.AddNode(&netsim.Node{Name: "router", IP: cloudIP, Pos: netsim.Position{X: 0}})
	NewCloudPeer(router)
	tn := sim.AddNode(&netsim.Node{Name: "nest", IP: netip.MustParseAddr("192.168.1.11"), Pos: netsim.Position{X: 8}})
	th := NewThermostat(tn, cloudIP)
	th.Interval = 30 * time.Second
	th.Start(sim.Now().Add(time.Second))
	sim.RunFor(2 * time.Minute)

	syn := countKind(*caps, packet.KindTCPSYN)
	ack := countKind(*caps, packet.KindTCPACK)
	if syn < 3 || syn > 5 {
		t.Errorf("SYN count = %d, want ~4", syn)
	}
	if ack <= syn {
		t.Errorf("expected more ACKs (%d) than SYNs (%d)", ack, syn)
	}
}

func TestBulbBroadcasts(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumWiFi)
	bn := sim.AddNode(&netsim.Node{Name: "lifx", IP: netip.MustParseAddr("192.168.1.12"), Pos: netsim.Position{X: 4}})
	b := NewBulb(bn)
	b.Start(sim.Now().Add(time.Second))
	sim.RunFor(35 * time.Second)
	if got := countKind(*caps, packet.KindUDP); got != 4 {
		t.Errorf("UDP broadcasts = %d, want 4", got)
	}
}

func TestCameraBursts(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumWiFi)
	cn := sim.AddNode(&netsim.Node{Name: "arlo", IP: netip.MustParseAddr("192.168.1.13"), Pos: netsim.Position{X: 4}})
	c := NewCamera(cn, netip.MustParseAddr("34.9.9.9"))
	c.Start(sim.Now().Add(time.Second))
	sim.RunFor(11 * time.Second)
	if syn := countKind(*caps, packet.KindTCPSYN); syn != 1 {
		t.Errorf("SYN = %d, want 1", syn)
	}
	// ~2 bursts of 4 data frames within 11 s (PSH|ACK classifies as TCPACK).
	if data := countKind(*caps, packet.KindTCPACK); data < 8 {
		t.Errorf("data frames = %d, want >= 8", data)
	}
}

func TestDashButtonPress(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumWiFi)
	dn := sim.AddNode(&netsim.Node{Name: "dash", IP: netip.MustParseAddr("192.168.1.14"), Pos: netsim.Position{X: 4}})
	d := NewDashButton(dn, netip.MustParseAddr("34.7.7.7"))
	sim.After(time.Second, d.Press)
	sim.RunFor(5 * time.Second)
	if got := countKind(*caps, packet.KindWiFiMgmt); got != 2 {
		t.Errorf("mgmt frames = %d, want 2 (probe+assoc)", got)
	}
	if got := countKind(*caps, packet.KindTCPSYN); got != 1 {
		t.Errorf("SYN = %d, want 1", got)
	}
}

func TestSmartLockAdvertising(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumBluetooth)
	ln := sim.AddNode(&netsim.Node{Name: "august", Pos: netsim.Position{X: 4}})
	l := NewSmartLock(ln, ble.Address{1, 2, 3, 4, 5, 6})
	l.Start(sim.Now().Add(time.Second))
	sim.After(5*time.Second, l.Operate)
	sim.RunFor(9 * time.Second)
	if adv := countKind(*caps, packet.KindBLEAdvertising); adv != 5 {
		t.Errorf("advertisements = %d, want 5", adv)
	}
	if dat := countKind(*caps, packet.KindBLEData); dat != 1 {
		t.Errorf("data PDUs = %d, want 1", dat)
	}
}

func TestAdaptiveRoutingSinkholeAttraction(t *testing.T) {
	// With adaptive routing, a node advertising an implausibly low
	// cost pulls neighbours' parents onto itself — the sinkhole
	// mechanism — and routing recovers after the attacker is revoked.
	sim := netsim.New(13)
	motes := BuildWSNLine(sim, 4, 20) // base(1) - 2 - 3 - 4
	for _, m := range motes {
		m.Adaptive = true
		m.Start(sim.Now().Add(time.Second))
	}
	sim.RunFor(2 * time.Minute) // let beacons settle
	legitimateParent := motes[2].Parent

	// An attacker platform near mote 3 advertises cost 1.
	attacker := sim.AddNode(&netsim.Node{Name: "sink", Addr16: 9, Pos: netsim.Position{X: 45, Y: 5}})
	sim.Every(sim.Now().Add(time.Second), 5*time.Second, func() bool {
		attacker.Send(packet.MediumIEEE802154, stack.BuildCTPBeacon(9, 1, 1, 1))
		return true
	})
	sim.RunFor(time.Minute)
	if motes[2].Parent != 9 {
		t.Fatalf("mote 3 parent = %d, want pulled to sinkhole 9 (was %d)", motes[2].Parent, legitimateParent)
	}

	// Revoke the attacker; its beacon entry ages out and routing
	// recovers onto a legitimate parent.
	attacker.Revoke()
	sim.RunFor(3 * time.Minute)
	if motes[2].Parent == 9 {
		t.Error("routing did not recover after revocation")
	}
}

func TestRPLNodesFormDODAG(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumIEEE802154)
	var root *RPLNode
	for i := 0; i < 4; i++ {
		addr := uint16(i + 1)
		n := sim.AddNode(&netsim.Node{
			Name:   "rpl-" + string(rune('1'+i)),
			Addr16: addr,
			Pos:    netsim.Position{X: float64(i) * 15},
		})
		parent := addr - 1
		if i == 0 {
			parent = addr
		}
		r := NewRPLNode(n, parent, uint16(256*(i+1)), i == 0)
		r.Start(sim.Now().Add(time.Second))
		if i == 0 {
			root = r
		}
	}
	sim.RunFor(time.Minute)

	if root.Delivered == 0 {
		t.Error("no data delivered to the DODAG root")
	}
	if countKind(*caps, packet.KindRPLControl) < 8 { // 4 nodes × ≥2 DIOs
		t.Errorf("DIO count = %d", countKind(*caps, packet.KindRPLControl))
	}
	// Mesh forwarding visible on air: frames whose mesh origin is not
	// the per-hop transmitter.
	forwarded := false
	for _, c := range *caps {
		if c.Kind == packet.KindSixLowPAN && c.Src != c.Transmitter {
			forwarded = true
		}
	}
	if !forwarded {
		t.Error("no mesh forwarding observed")
	}
}

func TestZigbeeHubSubs(t *testing.T) {
	sim, caps := newSimWithSniffer(t, packet.MediumIEEE802154)
	hn := sim.AddNode(&netsim.Node{Name: "hub", Addr16: 0x0100, Pos: netsim.Position{X: 0}})
	hub := NewZigbeeHub(hn)
	for i := 0; i < 2; i++ {
		sn := sim.AddNode(&netsim.Node{
			Name:   "bulb-" + string(rune('a'+i)),
			Addr16: uint16(0x0200 + i),
			Pos:    netsim.Position{X: float64(5 + i*3)},
		})
		hub.AddSub(NewZigbeeSub(sn))
	}
	hub.Start(sim.Now().Add(time.Second))
	sim.RunFor(30 * time.Second)

	if hub.Reports != 4 { // 2 polls × 2 subs
		t.Errorf("hub reports = %d, want 4", hub.Reports)
	}
	if got := countKind(*caps, packet.KindZigbeeData); got != 8 { // 4 commands + 4 reports
		t.Errorf("zigbee data frames = %d, want 8", got)
	}
}
