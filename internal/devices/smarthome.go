package devices

import (
	"net/netip"
	"time"

	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ble"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/ipv4"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/tcp"
	"kalis/internal/proto/wifi"
)

// IPHost gives a simulated node basic IP-host behaviour on WiFi: it
// answers ICMP echo requests addressed to it with echo replies. This is
// the amplification behaviour the Smurf attack abuses — neighbours of
// the victim "will thus respond with ICMP Echo Reply messages directed
// to the victim" (§III-A1).
type IPHost struct {
	node *netsim.Node
	// Replies counts echo replies sent.
	Replies int
}

// NewIPHost installs echo-responder behaviour on the node.
func NewIPHost(node *netsim.Node) *IPHost {
	h := &IPHost{node: node}
	node.OnReceive(h.receive)
	return h
}

// Node returns the underlying simulated node.
func (h *IPHost) Node() *netsim.Node { return h.node }

func (h *IPHost) receive(medium packet.Medium, raw []byte, _ *netsim.Node, _ float64) {
	if medium != packet.MediumWiFi {
		return
	}
	fr, err := wifi.Decode(raw)
	if err != nil || fr.Type != wifi.TypeData {
		return
	}
	ip, err := ipv4.Decode(fr.Payload)
	if err != nil || ip.Protocol != ipv4.ProtoICMP || ip.Dst != h.node.IP {
		return
	}
	m, err := icmp.Decode(ip.Payload)
	if err != nil || !m.IsEchoRequest() {
		return
	}
	h.Replies++
	// Echo replies mirror the request payload, as real stacks do.
	reply := stack.BuildICMPEchoPayload(h.node.IP, ip.Src, icmp.TypeEchoReply, m.ID, m.Seq, 64, m.Payload)
	h.node.Sim().After(5*time.Millisecond, func() {
		h.node.Send(packet.MediumWiFi, reply)
	})
}

// CloudPeer simulates the internet-side endpoint of device↔cloud TCP
// sessions: it completes handshakes (SYN→SYN/ACK) and acknowledges
// data. In the simulation it lives on the router/uplink node.
type CloudPeer struct {
	node *netsim.Node
	// Handshakes counts completed SYN→SYN/ACK exchanges.
	Handshakes int
}

// NewCloudPeer installs cloud-endpoint behaviour on the node.
func NewCloudPeer(node *netsim.Node) *CloudPeer {
	p := &CloudPeer{node: node}
	node.OnReceive(p.receive)
	return p
}

func (p *CloudPeer) receive(medium packet.Medium, raw []byte, _ *netsim.Node, _ float64) {
	if medium != packet.MediumWiFi {
		return
	}
	fr, err := wifi.Decode(raw)
	if err != nil || fr.Type != wifi.TypeData {
		return
	}
	ip, err := ipv4.Decode(fr.Payload)
	if err != nil || ip.Protocol != ipv4.ProtoTCP || ip.Dst != p.node.IP {
		return
	}
	seg, err := tcp.Decode(ip.Src, ip.Dst, ip.Payload)
	if err != nil {
		return
	}
	switch {
	case seg.IsSYN():
		p.Handshakes++
		resp := stack.BuildTCP(p.node.IP, ip.Src, seg.DstPort, seg.SrcPort,
			tcp.FlagSYN|tcp.FlagACK, 1000, seg.Seq+1, 1, nil)
		p.node.Sim().After(8*time.Millisecond, func() { p.node.Send(packet.MediumWiFi, resp) })
	case len(seg.Payload) > 0:
		resp := stack.BuildTCP(p.node.IP, ip.Src, seg.DstPort, seg.SrcPort,
			tcp.FlagACK, seg.Ack, seg.Seq+uint32(len(seg.Payload)), 2, nil)
		p.node.Sim().After(8*time.Millisecond, func() { p.node.Send(packet.MediumWiFi, resp) })
	}
}

// CloudRelay models a home router/AP relaying Internet-side traffic
// onto the local WiFi network: device→cloud TCP traffic is answered by
// frames *transmitted by the router* but *sourced from the cloud IP* —
// the forwarding pattern that makes the WiFi segment observably
// multi-hop to a passive monitor.
type CloudRelay struct {
	node  *netsim.Node
	cloud netip.Addr
	seq   uint16
	// Relayed counts responses forwarded onto the LAN.
	Relayed int
}

// NewCloudRelay installs relay behaviour on the router node, answering
// for the given cloud address.
func NewCloudRelay(node *netsim.Node, cloud netip.Addr) *CloudRelay {
	r := &CloudRelay{node: node, cloud: cloud}
	node.OnReceive(r.receive)
	return r
}

func (r *CloudRelay) receive(medium packet.Medium, raw []byte, _ *netsim.Node, _ float64) {
	if medium != packet.MediumWiFi {
		return
	}
	fr, err := wifi.Decode(raw)
	if err != nil || fr.Type != wifi.TypeData {
		return
	}
	ip, err := ipv4.Decode(fr.Payload)
	if err != nil || ip.Protocol != ipv4.ProtoTCP || ip.Dst != r.cloud {
		return
	}
	seg, err := tcp.Decode(ip.Src, ip.Dst, ip.Payload)
	if err != nil {
		return
	}
	var resp *tcp.Segment
	switch {
	case seg.IsSYN():
		resp = &tcp.Segment{SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: 5000, Ack: seg.Seq + 1, Flags: tcp.FlagSYN | tcp.FlagACK, Window: 65535}
	case len(seg.Payload) > 0:
		resp = &tcp.Segment{SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: seg.Ack, Ack: seg.Seq + uint32(len(seg.Payload)), Flags: tcp.FlagACK, Window: 65535}
	default:
		return
	}
	r.seq++
	r.Relayed++
	ipResp := &ipv4.Header{TTL: 63, Protocol: ipv4.ProtoTCP, Src: r.cloud, Dst: ip.Src,
		ID: r.seq, Payload: resp.Encode(r.cloud, ip.Src)}
	raw2 := stack.BuildIPFrame(r.node.IP, ip.Src, r.seq, ipResp.Encode())
	r.node.Sim().After(15*time.Millisecond, func() {
		r.node.Send(packet.MediumWiFi, raw2)
	})
}

// Thermostat is a Nest-style device: a periodic TLS-like TCP report to
// its cloud service (handshake, opaque payload, teardown).
type Thermostat struct {
	node  *netsim.Node
	cloud netip.Addr
	// Interval is the reporting period (default 60 s).
	Interval time.Duration
	seq      uint32
	ipid     uint16
}

// NewThermostat creates a thermostat reporting to the given cloud IP.
func NewThermostat(node *netsim.Node, cloud netip.Addr) *Thermostat {
	return &Thermostat{node: node, cloud: cloud, Interval: time.Minute}
}

// Start schedules the report cycle beginning at start.
func (d *Thermostat) Start(start time.Time) {
	sim := d.node.Sim()
	sim.Every(start, d.Interval, func() bool {
		d.report()
		return true
	})
}

func (d *Thermostat) report() {
	sim := d.node.Sim()
	src, dst := d.node.IP, d.cloud
	d.seq += 1000
	d.ipid++
	syn := stack.BuildTCP(src, dst, 42000, 443, tcp.FlagSYN, d.seq, 0, d.ipid, nil)
	d.node.Send(packet.MediumWiFi, syn)
	seq := d.seq
	sim.After(30*time.Millisecond, func() {
		d.ipid++
		ack := stack.BuildTCP(src, dst, 42000, 443, tcp.FlagACK, seq+1, 1001, d.ipid, nil)
		d.node.Send(packet.MediumWiFi, ack)
		d.ipid++
		payload := make([]byte, 48) // opaque TLS-like record
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		data := stack.BuildTCP(src, dst, 42000, 443, tcp.FlagACK|tcp.FlagPSH, seq+1, 1001, d.ipid, payload)
		d.node.Send(packet.MediumWiFi, data)
	})
	sim.After(120*time.Millisecond, func() {
		d.ipid++
		fin := stack.BuildTCP(src, dst, 42000, 443, tcp.FlagFIN|tcp.FlagACK, seq+49, 1002, d.ipid, nil)
		d.node.Send(packet.MediumWiFi, fin)
	})
}

// Bulb is a Lifx-style smart bulb: LAN UDP state broadcasts.
type Bulb struct {
	node *netsim.Node
	// Interval is the broadcast period (default 10 s).
	Interval time.Duration
	ipid     uint16
}

// NewBulb creates a bulb bound to the node.
func NewBulb(node *netsim.Node) *Bulb {
	return &Bulb{node: node, Interval: 10 * time.Second}
}

// Start schedules the broadcast cycle.
func (d *Bulb) Start(start time.Time) {
	bcast := netip.MustParseAddr("192.168.1.255")
	d.node.Sim().Every(start, d.Interval, func() bool {
		d.ipid++
		raw := stack.BuildUDP(d.node.IP, bcast, 56700, 56700, d.ipid, []byte{0x24, 0x00, 0x00, 0x14})
		d.node.Send(packet.MediumWiFi, raw)
		return true
	})
}

// Camera is an Arlo-style camera: bursts of TCP data upstream.
type Camera struct {
	node  *netsim.Node
	cloud netip.Addr
	// Interval is the burst period (default 5 s); Burst is frames per
	// burst (default 4).
	Interval time.Duration
	Burst    int
	seq      uint32
	ipid     uint16
}

// NewCamera creates a camera streaming to the given cloud IP.
func NewCamera(node *netsim.Node, cloud netip.Addr) *Camera {
	return &Camera{node: node, cloud: cloud, Interval: 5 * time.Second, Burst: 4}
}

// Start schedules the streaming cycle.
func (d *Camera) Start(start time.Time) {
	sim := d.node.Sim()
	// One handshake at start, then periodic data bursts.
	sim.At(start, func() {
		d.ipid++
		d.node.Send(packet.MediumWiFi,
			stack.BuildTCP(d.node.IP, d.cloud, 43000, 443, tcp.FlagSYN, 1, 0, d.ipid, nil))
	})
	sim.Every(start.Add(200*time.Millisecond), d.Interval, func() bool {
		for i := 0; i < d.Burst; i++ {
			d.seq += 512
			d.ipid++
			payload := make([]byte, 512)
			raw := stack.BuildTCP(d.node.IP, d.cloud, 43000, 443, tcp.FlagACK|tcp.FlagPSH, d.seq, 1, d.ipid, payload)
			off := time.Duration(i) * 10 * time.Millisecond
			sim.After(off, func() { d.node.Send(packet.MediumWiFi, raw) })
		}
		return true
	})
}

// DashButton is an Amazon-Dash-style device: mostly silent, then a
// wake-up burst (WiFi association + one TCP exchange) when pressed.
type DashButton struct {
	node  *netsim.Node
	cloud netip.Addr
	ipid  uint16
	wseq  uint16
}

// NewDashButton creates a dash button reporting to the given cloud IP.
func NewDashButton(node *netsim.Node, cloud netip.Addr) *DashButton {
	return &DashButton{node: node, cloud: cloud}
}

// Press simulates a button press at the current virtual time.
func (d *DashButton) Press() {
	sim := d.node.Sim()
	mac := wifi.MAC{0x02, 0x01, 0x02, 0x03, 0x04, 0x05}
	ap := wifi.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	d.wseq++
	d.node.Send(packet.MediumWiFi, stack.BuildWiFiMgmt(wifi.SubtypeProbeReq, mac, wifi.BroadcastMAC, d.wseq, nil))
	sim.After(20*time.Millisecond, func() {
		d.wseq++
		d.node.Send(packet.MediumWiFi, stack.BuildWiFiMgmt(wifi.SubtypeAssocReq, mac, ap, d.wseq, nil))
	})
	sim.After(80*time.Millisecond, func() {
		d.ipid++
		d.node.Send(packet.MediumWiFi,
			stack.BuildTCP(d.node.IP, d.cloud, 44000, 443, tcp.FlagSYN, 7, 0, d.ipid, nil))
	})
	sim.After(160*time.Millisecond, func() {
		d.ipid++
		d.node.Send(packet.MediumWiFi,
			stack.BuildTCP(d.node.IP, d.cloud, 44000, 443, tcp.FlagACK|tcp.FlagPSH, 8, 1, d.ipid, []byte("order")))
	})
}

// SmartLock is an August-style BLE lock: periodic advertising plus
// occasional encrypted data exchanges.
type SmartLock struct {
	node *netsim.Node
	addr ble.Address
	// AdvInterval is the advertising period (default 2 s).
	AdvInterval time.Duration
}

// NewSmartLock creates a lock with the given BLE address.
func NewSmartLock(node *netsim.Node, addr ble.Address) *SmartLock {
	return &SmartLock{node: node, addr: addr, AdvInterval: 2 * time.Second}
}

// Start schedules advertising.
func (d *SmartLock) Start(start time.Time) {
	d.node.Sim().Every(start, d.AdvInterval, func() bool {
		d.node.Send(packet.MediumBluetooth, stack.BuildBLEAdv(d.addr, []byte{0x02, 0x01, 0x06}))
		return true
	})
}

// Operate simulates a lock/unlock exchange (opaque encrypted ATT).
func (d *SmartLock) Operate() {
	payload := []byte{0x52, 0xaa, 0x10, 0x33, 0x9c}
	d.node.Send(packet.MediumBluetooth, stack.BuildBLEData(d.addr, payload))
}
