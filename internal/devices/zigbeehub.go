package devices

import (
	"time"

	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/stack"
	"kalis/internal/proto/zigbee"
)

// ZigbeeHub models the "hub-to-subs" communication pattern of §II-A: a
// powerful coordinator that polls its constrained subs over ZigBee and
// relays their state upstream. The hub periodically sends a command to
// each sub; subs answer with status reports.
type ZigbeeHub struct {
	node *netsim.Node
	subs []*ZigbeeSub
	// Interval is the polling period (default 15 s).
	Interval time.Duration
	seq      uint8
	// Reports counts status reports received from subs.
	Reports int
}

// NewZigbeeHub creates a hub bound to the node.
func NewZigbeeHub(node *netsim.Node) *ZigbeeHub {
	h := &ZigbeeHub{node: node, Interval: 15 * time.Second}
	node.OnReceive(h.receive)
	return h
}

// Node returns the underlying simulated node.
func (h *ZigbeeHub) Node() *netsim.Node { return h.node }

// AddSub registers a sub device coordinated by this hub.
func (h *ZigbeeHub) AddSub(s *ZigbeeSub) {
	s.hub = h.node.Addr16
	h.subs = append(h.subs, s)
}

// Start schedules the polling cycle.
func (h *ZigbeeHub) Start(start time.Time) {
	h.node.Sim().Every(start, h.Interval, func() bool {
		for i, s := range h.subs {
			h.seq++
			raw := stack.BuildZigbeeData(h.node.Addr16, s.node.Addr16, h.node.Addr16, s.node.Addr16, h.seq, []byte{0x10, byte(i)})
			seqCopy := h.seq
			h.node.Sim().After(time.Duration(i)*25*time.Millisecond, func() {
				_ = seqCopy
				h.node.Send(packet.MediumIEEE802154, raw)
			})
		}
		return true
	})
}

func (h *ZigbeeHub) receive(medium packet.Medium, raw []byte, _ *netsim.Node, _ float64) {
	if medium != packet.MediumIEEE802154 {
		return
	}
	mac, err := ieee802154.Decode(raw)
	if err != nil || mac.DstShort != h.node.Addr16 {
		return
	}
	if _, err := zigbee.Decode(mac.Payload); err == nil {
		h.Reports++
	}
}

// ZigbeeSub is a constrained sub device (e.g. a light bulb's radio
// module) that answers hub commands with status reports.
type ZigbeeSub struct {
	node *netsim.Node
	hub  uint16
	seq  uint8
	// Commands counts commands received from the hub.
	Commands int
}

// NewZigbeeSub creates a sub bound to the node.
func NewZigbeeSub(node *netsim.Node) *ZigbeeSub {
	s := &ZigbeeSub{node: node}
	node.OnReceive(s.receive)
	return s
}

// Node returns the underlying simulated node.
func (s *ZigbeeSub) Node() *netsim.Node { return s.node }

func (s *ZigbeeSub) receive(medium packet.Medium, raw []byte, _ *netsim.Node, _ float64) {
	if medium != packet.MediumIEEE802154 {
		return
	}
	mac, err := ieee802154.Decode(raw)
	if err != nil || mac.DstShort != s.node.Addr16 {
		return
	}
	nwk, err := zigbee.Decode(mac.Payload)
	if err != nil || nwk.IsRouting() {
		return
	}
	s.Commands++
	s.seq++
	resp := stack.BuildZigbeeData(s.node.Addr16, s.hub, s.node.Addr16, s.hub, s.seq, []byte{0x20, 0x01})
	s.node.Sim().After(12*time.Millisecond, func() {
		s.node.Send(packet.MediumIEEE802154, resp)
	})
}
