package netsim

import (
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// CaptureFunc consumes decoded captures from a sniffer.
type CaptureFunc func(*packet.Captured)

// Sniffer is a promiscuous monitoring port: the attachment point for a
// Kalis node (or for trace recording). It overhears every transmission
// in radio range on its configured mediums, decodes it through the
// protocol stack, and hands the resulting capture envelope to its
// subscribers in order.
type Sniffer struct {
	name    string
	pos     Position
	sim     *Sim
	mediums map[packet.Medium]bool
	subs    []CaptureFunc
	// DecodeErrors counts frames that failed protocol decoding.
	DecodeErrors int
	// Captures counts successfully decoded frames.
	Captures int
}

// Name returns the sniffer's name.
func (s *Sniffer) Name() string { return s.name }

// Position returns the sniffer's location.
func (s *Sniffer) Position() Position { return s.pos }

// Subscribe adds a capture consumer. Subscribers are invoked
// synchronously in subscription order for every decoded frame.
func (s *Sniffer) Subscribe(fn CaptureFunc) { s.subs = append(s.subs, fn) }

func (s *Sniffer) capture(medium packet.Medium, raw []byte, from *Node, rssi float64, truth *packet.GroundTruth) {
	c, err := stack.Decode(medium, raw)
	if err != nil {
		s.DecodeErrors++
		return
	}
	c.Time = s.sim.Now()
	c.RSSI = rssi
	c.Truth = truth
	s.Captures++
	for _, fn := range s.subs {
		fn(c)
	}
}
