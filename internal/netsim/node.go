package netsim

import (
	"net/netip"

	"kalis/internal/packet"
)

// ReceiveHandler processes a frame delivered to a node: the medium, the
// raw bytes, the physical transmitter, and the RSSI at this node.
type ReceiveHandler func(medium packet.Medium, raw []byte, from *Node, rssi float64)

// Node is a simulated network entity: an IoT device, a WSN mote, a hub,
// or an attacker platform.
type Node struct {
	// Name is the unique simulation-level name (not visible on air).
	Name string
	// Addr16 is the node's IEEE 802.15.4 short address, if any.
	Addr16 uint16
	// IP is the node's IPv4 address, if any.
	IP netip.Addr
	// Pos is the current position in metres.
	Pos Position
	// TxPower is the transmit power in dBm.
	TxPower float64

	sim     *Sim
	handler ReceiveHandler
	revoked bool
}

// OnReceive installs the node's receive handler. A node without a
// handler is transmit-only (it still exists for positioning/RSSI).
func (n *Node) OnReceive(h ReceiveHandler) { n.handler = h }

// Send transmits a raw frame on the given medium.
func (n *Node) Send(medium packet.Medium, raw []byte) {
	n.sim.Transmit(n, medium, raw, nil)
}

// SendTruth transmits a raw frame labelled with attack ground truth.
func (n *Node) SendTruth(medium packet.Medium, raw []byte, truth *packet.GroundTruth) {
	n.sim.Transmit(n, medium, raw, truth)
}

// Sim returns the simulation this node belongs to.
func (n *Node) Sim() *Sim { return n.sim }

// Revoke removes the node from the network: it no longer transmits or
// receives. This implements the paper's simple countermeasure of
// "temporary revocation from the network of any node identified as
// suspect by the IDS" (§VI-A).
func (n *Node) Revoke() { n.revoked = true }

// Restore undoes Revoke.
func (n *Node) Restore() { n.revoked = false }

// Revoked reports whether the node is currently revoked.
func (n *Node) Revoked() bool { return n.revoked }

// MoveTo updates the node's position (mobility).
func (n *Node) MoveTo(p Position) { n.Pos = p }
