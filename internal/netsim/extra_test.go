package netsim

import (
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

func TestSnifferAccessors(t *testing.T) {
	s := New(1)
	sn := s.AddSniffer("probe", Position{X: 3, Y: 4}, packet.MediumWiFi)
	if sn.Name() != "probe" {
		t.Errorf("Name = %q", sn.Name())
	}
	if sn.Position() != (Position{X: 3, Y: 4}) {
		t.Errorf("Position = %+v", sn.Position())
	}
}

func TestSimAccessors(t *testing.T) {
	s := New(7)
	if s.Rand() == nil {
		t.Error("Rand nil")
	}
	n := s.AddNode(&Node{Name: "a"})
	if s.Node("a") != n || s.Node("zzz") != nil {
		t.Error("Node lookup")
	}
	if got := s.Nodes(); len(got) != 1 || got[0] != n {
		t.Errorf("Nodes = %v", got)
	}
	if n.Sim() != s {
		t.Error("Node.Sim")
	}
}

func TestSetRadio(t *testing.T) {
	s := New(1)
	// A radio with zero range isolates everything.
	s.SetRadio(&LogDistance{PL0: 40, D0: 1, Exponent: 3, Sensitivity: 0})
	tx := s.AddNode(&Node{Name: "tx"})
	sn := s.AddSniffer("ids", Position{X: 1})
	count := 0
	sn.Subscribe(func(*packet.Captured) { count++ })
	s.After(time.Second, func() { tx.Send(packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 1, 1)) })
	s.RunFor(2 * time.Second)
	if count != 0 {
		t.Error("deaf radio heard something")
	}
}

func TestPositionDistance(t *testing.T) {
	if d := (Position{X: 3}).Distance(Position{Y: 4}); d != 5 {
		t.Errorf("Distance = %f", d)
	}
}

func TestJitterMoverReturnsHome(t *testing.T) {
	s := New(5)
	home := Position{X: 40, Y: 10}
	n := s.AddNode(&Node{Name: "m", Pos: home})
	mv := NewJitterMover(s, []*Node{n}, 10)
	mv.SetActive(true)
	mv.Start(s.Now().Add(time.Second), time.Second)
	s.RunFor(10 * time.Second)
	if n.Pos == home {
		t.Fatal("node never moved")
	}
	moved := n.Pos
	// Bounded by radius around home.
	if dx := n.Pos.X - home.X; dx > 10 || dx < -10 {
		t.Errorf("x displacement %f exceeds radius", dx)
	}
	mv.SetActive(false)
	if n.Pos != home {
		t.Errorf("node not returned home: %+v (was %+v)", n.Pos, moved)
	}
	if mv.Active() {
		t.Error("Active after disable")
	}
}

func TestJitterMoverSkipsRevoked(t *testing.T) {
	s := New(5)
	n := s.AddNode(&Node{Name: "m", Pos: Position{X: 1}})
	n.Revoke()
	mv := NewJitterMover(s, []*Node{n}, 10)
	mv.SetActive(true)
	mv.Start(s.Now().Add(time.Second), time.Second)
	s.RunFor(5 * time.Second)
	if n.Pos != (Position{X: 1}) {
		t.Error("revoked node moved")
	}
}
