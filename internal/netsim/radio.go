package netsim

import (
	"math"
	"math/rand"
)

// Position is a 2D location in metres.
type Position struct{ X, Y float64 }

// Distance returns the Euclidean distance to other.
func (p Position) Distance(other Position) float64 {
	dx, dy := p.X-other.X, p.Y-other.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// RadioModel computes whether a transmission is received and with what
// signal strength.
type RadioModel interface {
	// Receive returns the RSSI in dBm observed at rx for a
	// transmission from tx at txPower dBm, and whether the frame is
	// received at all.
	Receive(txPower float64, tx, rx Position, rng *rand.Rand) (rssi float64, ok bool)
}

// LogDistance is the standard log-distance path-loss model with
// optional Gaussian shadowing:
//
//	RSSI = txPower − PL0 − 10·n·log10(d/d0) + N(0, σ)
//
// A frame is received when RSSI ≥ Sensitivity.
type LogDistance struct {
	// PL0 is the path loss at reference distance D0, in dB.
	PL0 float64
	// D0 is the reference distance in metres.
	D0 float64
	// Exponent is the path-loss exponent n (2 free space, ~3 indoor).
	Exponent float64
	// SigmaDB is the shadowing standard deviation in dB (0 = none).
	SigmaDB float64
	// Sensitivity is the receiver sensitivity threshold in dBm.
	Sensitivity float64
}

var _ RadioModel = (*LogDistance)(nil)

// DefaultRadio returns an indoor-like log-distance model: −40 dB loss
// at 1 m, exponent 3, 1 dB shadowing, −95 dBm sensitivity. With the
// default 0 dBm transmit power this yields a radio range of ~67 m.
func DefaultRadio() *LogDistance {
	return &LogDistance{PL0: 40, D0: 1, Exponent: 3, SigmaDB: 1, Sensitivity: -95}
}

// Receive implements RadioModel.
func (m *LogDistance) Receive(txPower float64, tx, rx Position, rng *rand.Rand) (float64, bool) {
	d := tx.Distance(rx)
	if d < m.D0 {
		d = m.D0
	}
	rssi := txPower - m.PL0 - 10*m.Exponent*math.Log10(d/m.D0)
	if m.SigmaDB > 0 && rng != nil {
		rssi += rng.NormFloat64() * m.SigmaDB
	}
	if rssi < m.Sensitivity {
		return rssi, false
	}
	return rssi, true
}

// Range returns the deterministic (no-shadowing) maximum reception
// distance for the given transmit power.
func (m *LogDistance) Range(txPower float64) float64 {
	return m.D0 * math.Pow(10, (txPower-m.PL0-m.Sensitivity)/(10*m.Exponent))
}
