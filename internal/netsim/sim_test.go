package netsim

import (
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	// Same-time events fire in scheduling order.
	s.After(1*time.Second, func() { got = append(got, 10) })
	s.RunFor(10 * time.Second)
	want := []int{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunStopsAtEnd(t *testing.T) {
	s := New(1)
	fired := false
	s.After(5*time.Second, func() { fired = true })
	s.RunFor(2 * time.Second)
	if fired {
		t.Error("event beyond horizon fired")
	}
	s.RunFor(10 * time.Second)
	if !fired {
		t.Error("event not fired after extending horizon")
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(s.Now().Add(time.Second), time.Second, func() bool {
		count++
		return count < 5
	})
	s.RunFor(time.Minute)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	s.At(s.Now().Add(-time.Second), func() {})
}

func TestVirtualClockAdvances(t *testing.T) {
	s := New(1)
	var at time.Time
	s.After(42*time.Second, func() { at = s.Now() })
	s.RunFor(time.Minute)
	if want := Epoch.Add(42 * time.Second); !at.Equal(want) {
		t.Errorf("now = %v, want %v", at, want)
	}
}

func TestRadioRangeAndRSSI(t *testing.T) {
	m := DefaultRadio()
	m.SigmaDB = 0 // deterministic
	near, ok := m.Receive(0, Position{}, Position{X: 5}, nil)
	if !ok {
		t.Fatal("5 m reception failed")
	}
	far, ok := m.Receive(0, Position{}, Position{X: 50}, nil)
	if !ok {
		t.Fatal("50 m reception failed")
	}
	if near <= far {
		t.Errorf("RSSI should decay: near=%f far=%f", near, far)
	}
	if _, ok := m.Receive(0, Position{}, Position{X: 200}, nil); ok {
		t.Error("200 m should be out of range")
	}
	r := m.Range(0)
	if r < 60 || r > 75 {
		t.Errorf("Range(0) = %f, want ~67 m", r)
	}
}

func TestRadioSubMinimumDistance(t *testing.T) {
	m := DefaultRadio()
	m.SigmaDB = 0
	same, _ := m.Receive(0, Position{}, Position{}, nil)
	ref, _ := m.Receive(0, Position{}, Position{X: 1}, nil)
	if same != ref {
		t.Errorf("d<D0 should clamp to D0: %f vs %f", same, ref)
	}
}

func TestTransmitDeliversToSnifferAndNodes(t *testing.T) {
	s := New(7)
	tx := s.AddNode(&Node{Name: "tx", Addr16: 5, Pos: Position{X: 0}})
	rx := s.AddNode(&Node{Name: "rx", Addr16: 1, Pos: Position{X: 10}})
	var nodeGot int
	rx.OnReceive(func(m packet.Medium, raw []byte, from *Node, rssi float64) {
		nodeGot++
		if from != tx {
			t.Errorf("from = %v", from.Name)
		}
		if rssi >= 0 || rssi < -95 {
			t.Errorf("implausible rssi %f", rssi)
		}
	})
	sn := s.AddSniffer("ids", Position{X: 5}, packet.MediumIEEE802154)
	var caps []*packet.Captured
	sn.Subscribe(func(c *packet.Captured) { caps = append(caps, c) })

	raw := stack.BuildCTPData(5, 1, 5, 1, 0, 10, nil)
	s.After(time.Second, func() { tx.Send(packet.MediumIEEE802154, raw) })
	s.RunFor(2 * time.Second)

	if nodeGot != 1 {
		t.Errorf("node receptions = %d, want 1", nodeGot)
	}
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1", len(caps))
	}
	c := caps[0]
	if c.Kind != packet.KindCTPData || c.Transmitter != stack.ShortID(5) {
		t.Errorf("capture mismatch: %+v", c)
	}
	if !c.Time.Equal(Epoch.Add(time.Second)) {
		t.Errorf("capture time = %v", c.Time)
	}
}

func TestSnifferMediumFilter(t *testing.T) {
	s := New(7)
	tx := s.AddNode(&Node{Name: "tx", Pos: Position{}})
	sn := s.AddSniffer("ids", Position{X: 1}, packet.MediumWiFi) // WiFi only
	count := 0
	sn.Subscribe(func(*packet.Captured) { count++ })
	s.After(time.Second, func() {
		tx.Send(packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 0, 10, 1))
	})
	s.RunFor(2 * time.Second)
	if count != 0 {
		t.Errorf("802.15.4 frame leaked through WiFi-only sniffer")
	}
}

func TestSnifferCountsDecodeErrors(t *testing.T) {
	s := New(7)
	tx := s.AddNode(&Node{Name: "tx", Pos: Position{}})
	sn := s.AddSniffer("ids", Position{X: 1}, packet.MediumIEEE802154)
	s.After(time.Second, func() { tx.Send(packet.MediumIEEE802154, []byte{0xde, 0xad}) })
	s.RunFor(2 * time.Second)
	if sn.DecodeErrors != 1 || sn.Captures != 0 {
		t.Errorf("errors=%d captures=%d", sn.DecodeErrors, sn.Captures)
	}
}

func TestRevocationSilencesNode(t *testing.T) {
	s := New(7)
	tx := s.AddNode(&Node{Name: "tx", Pos: Position{}})
	sn := s.AddSniffer("ids", Position{X: 1}, packet.MediumIEEE802154)
	count := 0
	sn.Subscribe(func(*packet.Captured) { count++ })
	raw := stack.BuildCTPBeacon(1, 0, 10, 1)
	s.After(time.Second, func() { tx.Send(packet.MediumIEEE802154, raw) })
	s.After(2*time.Second, func() { tx.Revoke() })
	s.After(3*time.Second, func() { tx.Send(packet.MediumIEEE802154, raw) })
	s.After(4*time.Second, func() { tx.Restore() })
	s.After(5*time.Second, func() { tx.Send(packet.MediumIEEE802154, raw) })
	s.RunFor(10 * time.Second)
	if count != 2 {
		t.Errorf("captures = %d, want 2 (revoked frame suppressed)", count)
	}
	if tx.Revoked() {
		t.Error("Restore did not clear revocation")
	}
}

func TestRevokedNodeDoesNotReceive(t *testing.T) {
	s := New(7)
	tx := s.AddNode(&Node{Name: "tx", Pos: Position{}})
	rx := s.AddNode(&Node{Name: "rx", Pos: Position{X: 5}})
	got := 0
	rx.OnReceive(func(packet.Medium, []byte, *Node, float64) { got++ })
	rx.Revoke()
	s.After(time.Second, func() { tx.Send(packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 0, 1, 1)) })
	s.RunFor(2 * time.Second)
	if got != 0 {
		t.Errorf("revoked node received %d frames", got)
	}
}

func TestGroundTruthPropagates(t *testing.T) {
	s := New(7)
	tx := s.AddNode(&Node{Name: "atk", Pos: Position{}})
	sn := s.AddSniffer("ids", Position{X: 1}, packet.MediumIEEE802154)
	var got *packet.GroundTruth
	sn.Subscribe(func(c *packet.Captured) { got = c.Truth })
	truth := &packet.GroundTruth{Attack: "icmp-flood", Instance: 3, Attacker: "0x0005"}
	s.After(time.Second, func() {
		tx.SendTruth(packet.MediumIEEE802154, stack.BuildCTPBeacon(5, 0, 1, 1), truth)
	})
	s.RunFor(2 * time.Second)
	if got == nil || got.Attack != "icmp-flood" || got.Instance != 3 {
		t.Errorf("truth = %+v", got)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	s := New(1)
	s.AddNode(&Node{Name: "a"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate node")
		}
	}()
	s.AddNode(&Node{Name: "a"})
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		tx := s.AddNode(&Node{Name: "tx", Pos: Position{}})
		sn := s.AddSniffer("ids", Position{X: 20}, packet.MediumIEEE802154)
		var rssis []float64
		sn.Subscribe(func(c *packet.Captured) { rssis = append(rssis, c.RSSI) })
		s.Every(s.Now().Add(time.Second), time.Second, func() bool {
			tx.Send(packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 0, 1, 1))
			return true
		})
		s.RunFor(20 * time.Second)
		return rssis
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %f vs %f", i, a[i], b[i])
		}
	}
}

func TestRandomWaypointMobility(t *testing.T) {
	s := New(9)
	n := s.AddNode(&Node{Name: "m", Pos: Position{X: 50, Y: 50}})
	mv := NewRandomWaypoint(s, []*Node{n}, 5, 0, 0, 100, 100)
	mv.Start(s.Now().Add(time.Second), time.Second)
	// Inactive: no movement.
	s.RunFor(5 * time.Second)
	if n.Pos != (Position{X: 50, Y: 50}) {
		t.Error("node moved while mover inactive")
	}
	mv.SetActive(true)
	if !mv.Active() {
		t.Error("Active() = false")
	}
	s.RunFor(10 * time.Second)
	if n.Pos == (Position{X: 50, Y: 50}) {
		t.Error("node did not move while mover active")
	}
	if n.Pos.X < 0 || n.Pos.X > 100 || n.Pos.Y < 0 || n.Pos.Y > 100 {
		t.Errorf("node escaped bounding box: %+v", n.Pos)
	}
}
