// Package netsim is a discrete-event simulator for heterogeneous IoT
// networks: wireless nodes positioned on a plane, a log-distance
// path-loss radio model yielding per-capture RSSI, multi-hop
// behavioural forwarding, node mobility, and promiscuous sniffers that
// produce exactly the capture stream a real Kalis deployment would see.
//
// Determinism: the simulator runs on a virtual clock with a seeded RNG;
// the same seed always yields the same capture stream, which keeps the
// evaluation reproducible and fast (simulated hours run in
// milliseconds).
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"kalis/internal/packet"
)

// Epoch is the virtual-time origin of every simulation.
var Epoch = time.Unix(1500000000, 0).UTC() // 2017-07-14, the paper's era

// event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tiebreaker for deterministic ordering
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event network simulation.
type Sim struct {
	now      time.Time
	seq      uint64
	queue    eventHeap
	rng      *rand.Rand
	nodes    map[string]*Node
	order    []*Node // insertion order, for deterministic iteration
	sniffers []*Sniffer
	radio    RadioModel
	// linkFault, when set, may drop any (transmitter, receiver) frame
	// before the radio model sees it — the fault-injection hook for
	// lossy links and partitions (see internal/fault). Receivers
	// include sniffers, addressed by name.
	linkFault func(from, to string) bool
}

// New creates a simulation with the given RNG seed and the default
// radio model.
func New(seed int64) *Sim {
	return &Sim{
		now:   Epoch,
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[string]*Node),
		radio: DefaultRadio(),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Rand returns the simulation's seeded RNG.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetRadio replaces the radio model (before any traffic is generated).
func (s *Sim) SetRadio(r RadioModel) { s.radio = r }

// SetLinkFault installs (or, with nil, removes) a frame-level fault
// hook: it is consulted for every (transmitter, receiver) pair before
// radio propagation, and returning true drops that frame on that link
// only. Deterministic faults (seeded loss, scheduled partitions) keep
// the capture stream reproducible.
func (s *Sim) SetLinkFault(fn func(from, to string) bool) { s.linkFault = fn }

// At schedules fn at the given virtual time. Scheduling in the past is
// an error surfaced by panic, since it indicates a broken scenario.
func (s *Sim) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		//lint:ignore nopanic broken scenario construction is a programming error, not a runtime condition
		panic(fmt.Sprintf("netsim: scheduling %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after the given delay.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Every schedules fn at start and then every interval until the
// simulation ends. fn may return false to stop the series.
func (s *Sim) Every(start time.Time, interval time.Duration, fn func() bool) {
	var tick func()
	next := start
	tick = func() {
		if !fn() {
			return
		}
		next = next.Add(interval)
		s.At(next, tick)
	}
	s.At(start, tick)
}

// Run executes events until the virtual clock passes end or the queue
// drains.
func (s *Sim) Run(end time.Time) {
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.at.After(end) {
			return
		}
		heap.Pop(&s.queue)
		s.now = e.at
		e.fn()
	}
}

// RunFor executes events for the given virtual duration.
func (s *Sim) RunFor(d time.Duration) { s.Run(s.now.Add(d)) }

// AddNode registers a node. Names must be unique.
func (s *Sim) AddNode(n *Node) *Node {
	if _, dup := s.nodes[n.Name]; dup {
		//lint:ignore nopanic duplicate node names are a scenario-construction bug, caught at build time of the topology
		panic("netsim: duplicate node " + n.Name)
	}
	n.sim = s
	s.nodes[n.Name] = n
	s.order = append(s.order, n)
	return n
}

// Node returns the node with the given name, or nil.
func (s *Sim) Node(name string) *Node { return s.nodes[name] }

// Nodes returns all nodes in insertion order.
func (s *Sim) Nodes() []*Node {
	out := make([]*Node, len(s.order))
	copy(out, s.order)
	return out
}

// AddSniffer registers a promiscuous sniffer at the given position.
func (s *Sim) AddSniffer(name string, pos Position, mediums ...packet.Medium) *Sniffer {
	sn := &Sniffer{name: name, pos: pos, sim: s, mediums: make(map[packet.Medium]bool, len(mediums))}
	for _, m := range mediums {
		sn.mediums[m] = true
	}
	s.sniffers = append(s.sniffers, sn)
	return sn
}

// Transmit radiates a raw frame from the node on the medium. Every
// in-range node's receive handler and every in-range sniffer observes
// it with a position-dependent RSSI. truth optionally labels the frame
// with attack ground truth for the evaluation harness.
func (s *Sim) Transmit(from *Node, medium packet.Medium, raw []byte, truth *packet.GroundTruth) {
	if from.revoked {
		return
	}
	for _, n := range s.order {
		if n == from || n.revoked || n.handler == nil {
			continue
		}
		if s.linkFault != nil && s.linkFault(from.Name, n.Name) {
			continue
		}
		rssi, ok := s.radio.Receive(from.TxPower, from.Pos, n.Pos, s.rng)
		if !ok {
			continue
		}
		// Copy raw for each receiver so handlers can retain slices.
		cp := make([]byte, len(raw))
		copy(cp, raw)
		n.handler(medium, cp, from, rssi)
	}
	for _, sn := range s.sniffers {
		if len(sn.mediums) > 0 && !sn.mediums[medium] {
			continue
		}
		if s.linkFault != nil && s.linkFault(from.Name, sn.name) {
			continue
		}
		rssi, ok := s.radio.Receive(from.TxPower, from.Pos, sn.pos, s.rng)
		if !ok {
			continue
		}
		sn.capture(medium, raw, from, rssi, truth)
	}
}
