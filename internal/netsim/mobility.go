package netsim

import "time"

// RandomWaypoint moves a set of nodes with a random-waypoint-style
// pattern: every step interval each node jumps a random displacement
// bounded by maxStep within the given bounding box. It is the mobility
// substrate for the replication-attack experiment (§VI-B2), where the
// network "randomly changes between a static and mobile behavior".
type RandomWaypoint struct {
	sim                    *Sim
	nodes                  []*Node
	maxStep                float64
	minX, minY, maxX, maxY float64
	active                 bool
}

// NewRandomWaypoint creates a mover for the given nodes within the
// bounding box [minX,maxX]×[minY,maxY].
func NewRandomWaypoint(sim *Sim, nodes []*Node, maxStep, minX, minY, maxX, maxY float64) *RandomWaypoint {
	return &RandomWaypoint{
		sim: sim, nodes: nodes, maxStep: maxStep,
		minX: minX, minY: minY, maxX: maxX, maxY: maxY,
	}
}

// SetActive enables or disables movement. While inactive the network
// behaves statically.
func (m *RandomWaypoint) SetActive(v bool) { m.active = v }

// Active reports whether movement is enabled.
func (m *RandomWaypoint) Active() bool { return m.active }

// Start schedules movement steps every interval beginning at start.
func (m *RandomWaypoint) Start(start time.Time, interval time.Duration) {
	m.sim.Every(start, interval, func() bool {
		if !m.active {
			return true
		}
		for _, n := range m.nodes {
			if n.Revoked() {
				continue
			}
			nx := clamp(n.Pos.X+(m.sim.rng.Float64()*2-1)*m.maxStep, m.minX, m.maxX)
			ny := clamp(n.Pos.Y+(m.sim.rng.Float64()*2-1)*m.maxStep, m.minY, m.maxY)
			n.MoveTo(Position{X: nx, Y: ny})
		}
		return true
	})
}

// JitterMover moves each node randomly within a fixed radius of its
// home position, preserving link-level connectivity (parent/child
// distances stay bounded) while producing the RSSI variation that
// characterizes a mobile network. It is the mobility model of the
// replication experiment: topology-safe, observably mobile.
type JitterMover struct {
	sim    *Sim
	homes  map[*Node]Position
	radius float64
	active bool
}

// NewJitterMover creates a mover; each node's current position becomes
// its home.
func NewJitterMover(sim *Sim, nodes []*Node, radius float64) *JitterMover {
	homes := make(map[*Node]Position, len(nodes))
	for _, n := range nodes {
		homes[n] = n.Pos
	}
	return &JitterMover{sim: sim, homes: homes, radius: radius}
}

// SetActive enables or disables movement. Disabling returns every node
// to its home position (the network settles back to static).
func (m *JitterMover) SetActive(v bool) {
	m.active = v
	if !v {
		for n, home := range m.homes {
			n.MoveTo(home)
		}
	}
}

// Active reports whether movement is enabled.
func (m *JitterMover) Active() bool { return m.active }

// Start schedules movement steps every interval beginning at start.
func (m *JitterMover) Start(start time.Time, interval time.Duration) {
	m.sim.Every(start, interval, func() bool {
		if !m.active {
			return true
		}
		for n, home := range m.homes {
			if n.Revoked() {
				continue
			}
			n.MoveTo(Position{
				X: home.X + (m.sim.rng.Float64()*2-1)*m.radius,
				Y: home.Y + (m.sim.rng.Float64()*2-1)*m.radius,
			})
		}
		return true
	})
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
