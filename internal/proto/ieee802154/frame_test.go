package ieee802154

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripShortAddr(t *testing.T) {
	f := &Frame{
		Type:          FrameData,
		AckRequest:    true,
		PANIDCompress: true,
		Seq:           42,
		DstPAN:        0x1234,
		DstMode:       AddrShort,
		SrcMode:       AddrShort,
		DstShort:      0x0001,
		SrcShort:      0x0005,
		Payload:       []byte{0xde, 0xad, 0xbe, 0xef},
	}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Type != FrameData || got.Seq != 42 || got.DstShort != 1 || got.SrcShort != 5 {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.SrcPAN != 0x1234 {
		t.Errorf("PAN compression: SrcPAN = %#x, want 0x1234", got.SrcPAN)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("payload = %x, want %x", got.Payload, f.Payload)
	}
}

func TestRoundTripExtendedAddr(t *testing.T) {
	f := &Frame{
		Type:     FrameData,
		Seq:      7,
		DstPAN:   0xbeef,
		SrcPAN:   0xcafe,
		DstMode:  AddrExtended,
		SrcMode:  AddrExtended,
		DstExt:   0x0011223344556677,
		SrcExt:   0x8899aabbccddeeff,
		Payload:  []byte("hello"),
		Security: true,
	}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.DstExt != f.DstExt || got.SrcExt != f.SrcExt {
		t.Errorf("extended addrs: got %#x/%#x", got.DstExt, got.SrcExt)
	}
	if got.SrcPAN != 0xcafe || got.DstPAN != 0xbeef {
		t.Errorf("PANs: got %#x/%#x", got.SrcPAN, got.DstPAN)
	}
	if !got.Security {
		t.Error("security bit lost")
	}
}

func TestRoundTripAck(t *testing.T) {
	f := &Frame{Type: FrameAck, Seq: 99}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Type != FrameAck || got.Seq != 99 {
		t.Errorf("ack mismatch: %+v", got)
	}
	if got.DstMode != AddrNone || got.SrcMode != AddrNone {
		t.Errorf("ack should have no addresses: %+v", got)
	}
}

func TestDecodeCorruptFCS(t *testing.T) {
	f := &Frame{Type: FrameData, DstMode: AddrShort, SrcMode: AddrShort, DstShort: 1, SrcShort: 2, Payload: []byte{1, 2, 3}}
	raw := f.Encode()
	raw[len(raw)/2] ^= 0xff
	if _, err := Decode(raw); !errors.Is(err, ErrFCS) {
		t.Errorf("err = %v, want ErrFCS", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	for n := 0; n < 5; n++ {
		if _, err := Decode(make([]byte, n)); !errors.Is(err, ErrTruncated) {
			t.Errorf("len %d: err = %v, want ErrTruncated", n, err)
		}
	}
	// Frame claiming addresses but cut short (valid FCS over the stub).
	stub := []byte{0x41, 0x88, 0x01} // data frame, short dst+src per FCF bits
	stub[0] = 0x01
	stub[1] = 0x88 // dst short, src short
	fcs := CRC16(stub)
	raw := append(stub, byte(fcs), byte(fcs>>8))
	if _, err := Decode(raw); !errors.Is(err, ErrTruncated) {
		t.Errorf("short addressed frame: err = %v, want ErrTruncated", err)
	}
}

func TestFrameTypeString(t *testing.T) {
	cases := map[FrameType]string{
		FrameBeacon: "beacon", FrameData: "data", FrameAck: "ack",
		FrameCommand: "command", FrameType(9): "type(9)",
	}
	for ft, want := range cases {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// ITU-T CRC-16 (Kermit) of "123456789" is 0x2189.
	if got := CRC16([]byte("123456789")); got != 0x2189 {
		t.Errorf("CRC16 = %#04x, want 0x2189", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(seq uint8, dst, src uint16, compress bool, payload []byte) bool {
		f := &Frame{
			Type:          FrameData,
			PANIDCompress: compress,
			Seq:           seq,
			DstPAN:        0x7777,
			SrcPAN:        0x7777,
			DstMode:       AddrShort,
			SrcMode:       AddrShort,
			DstShort:      dst,
			SrcShort:      src,
			Payload:       payload,
		}
		got, err := Decode(f.Encode())
		if err != nil {
			return false
		}
		return got.Seq == seq && got.DstShort == dst && got.SrcShort == src &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCorruptionDetected(t *testing.T) {
	// Flipping any single byte of an encoded frame must be caught by
	// the FCS (or, for header bytes, yield a structural error) — it
	// must never silently round-trip to a different payload.
	f := &Frame{Type: FrameData, DstMode: AddrShort, SrcMode: AddrShort,
		DstShort: 0x0a0b, SrcShort: 0x0c0d, Payload: []byte("payload-bytes")}
	raw := f.Encode()
	for i := range raw {
		mut := make([]byte, len(raw))
		copy(mut, raw)
		mut[i] ^= 0x55
		got, err := Decode(mut)
		if err != nil {
			continue
		}
		if bytes.Equal(got.Payload, f.Payload) && got.SrcShort == f.SrcShort && got.DstShort == f.DstShort && got.Seq == f.Seq {
			t.Errorf("byte %d corruption went fully undetected", i)
		}
	}
}
