// Package ieee802154 implements encoding and decoding of IEEE 802.15.4
// MAC frames: the link layer beneath ZigBee, 6LoWPAN and TinyOS/CTP
// traffic that Kalis overhears on its 802.15.4 capture interface.
//
// The implementation covers the 2006 revision's data/ack/beacon/command
// frame types with short (16-bit) and extended (64-bit) addressing, PAN
// ID compression, and the ITU-T CRC-16 frame check sequence.
package ieee802154

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FrameType is the 802.15.4 frame type from the frame control field.
type FrameType uint8

// Frame types defined by IEEE 802.15.4-2006.
const (
	FrameBeacon  FrameType = 0
	FrameData    FrameType = 1
	FrameAck     FrameType = 2
	FrameCommand FrameType = 3
)

// String returns the frame type name.
func (t FrameType) String() string {
	switch t {
	case FrameBeacon:
		return "beacon"
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FrameCommand:
		return "command"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// AddrMode is the addressing mode for the source or destination field.
type AddrMode uint8

// Addressing modes defined by IEEE 802.15.4-2006.
const (
	AddrNone     AddrMode = 0 // address absent
	AddrShort    AddrMode = 2 // 16-bit short address
	AddrExtended AddrMode = 3 // 64-bit extended address
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("ieee802154: truncated frame")
	ErrFCS       = errors.New("ieee802154: frame check sequence mismatch")
	ErrAddrMode  = errors.New("ieee802154: reserved addressing mode")
)

// Frame is a decoded IEEE 802.15.4 MAC frame.
type Frame struct {
	Type           FrameType
	Security       bool
	FramePending   bool
	AckRequest     bool
	PANIDCompress  bool
	Seq            uint8
	DstPAN, SrcPAN uint16
	DstMode        AddrMode
	SrcMode        AddrMode
	DstShort       uint16
	SrcShort       uint16
	DstExt         uint64
	SrcExt         uint64
	Payload        []byte
}

// LayerName implements packet.Layer.
func (f *Frame) LayerName() string { return "ieee802154" }

// fcf packs the frame control field.
func (f *Frame) fcf() uint16 {
	v := uint16(f.Type) & 0x7
	if f.Security {
		v |= 1 << 3
	}
	if f.FramePending {
		v |= 1 << 4
	}
	if f.AckRequest {
		v |= 1 << 5
	}
	if f.PANIDCompress {
		v |= 1 << 6
	}
	v |= uint16(f.DstMode&0x3) << 10
	v |= uint16(f.SrcMode&0x3) << 14
	return v
}

// Encode serialises the frame including the trailing 2-byte FCS.
func (f *Frame) Encode() []byte {
	buf := make([]byte, 0, 32+len(f.Payload))
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], f.fcf())
	buf = append(buf, u16[:]...)
	buf = append(buf, f.Seq)
	if f.DstMode != AddrNone {
		binary.LittleEndian.PutUint16(u16[:], f.DstPAN)
		buf = append(buf, u16[:]...)
		buf = appendAddr(buf, f.DstMode, f.DstShort, f.DstExt)
	}
	if f.SrcMode != AddrNone {
		if !f.PANIDCompress {
			binary.LittleEndian.PutUint16(u16[:], f.SrcPAN)
			buf = append(buf, u16[:]...)
		}
		buf = appendAddr(buf, f.SrcMode, f.SrcShort, f.SrcExt)
	}
	buf = append(buf, f.Payload...)
	binary.LittleEndian.PutUint16(u16[:], CRC16(buf))
	buf = append(buf, u16[:]...)
	return buf
}

func appendAddr(buf []byte, mode AddrMode, short uint16, ext uint64) []byte {
	switch mode {
	case AddrShort:
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], short)
		return append(buf, u16[:]...)
	case AddrExtended:
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], ext)
		return append(buf, u64[:]...)
	default:
		return buf
	}
}

// Decode parses an IEEE 802.15.4 frame including FCS verification.
func Decode(b []byte) (*Frame, error) {
	if len(b) < 5 { // fcf + seq + fcs
		return nil, ErrTruncated
	}
	body, fcsWant := b[:len(b)-2], binary.LittleEndian.Uint16(b[len(b)-2:])
	if CRC16(body) != fcsWant {
		return nil, ErrFCS
	}
	fcf := binary.LittleEndian.Uint16(body[0:2])
	f := &Frame{
		Type:          FrameType(fcf & 0x7),
		Security:      fcf&(1<<3) != 0,
		FramePending:  fcf&(1<<4) != 0,
		AckRequest:    fcf&(1<<5) != 0,
		PANIDCompress: fcf&(1<<6) != 0,
		DstMode:       AddrMode((fcf >> 10) & 0x3),
		SrcMode:       AddrMode((fcf >> 14) & 0x3),
		Seq:           body[2],
	}
	if f.DstMode == 1 || f.SrcMode == 1 {
		return nil, ErrAddrMode
	}
	rest := body[3:]
	var err error
	if f.DstMode != AddrNone {
		if len(rest) < 2 {
			return nil, ErrTruncated
		}
		f.DstPAN = binary.LittleEndian.Uint16(rest)
		rest = rest[2:]
		rest, f.DstShort, f.DstExt, err = readAddr(rest, f.DstMode)
		if err != nil {
			return nil, err
		}
	}
	if f.SrcMode != AddrNone {
		if !f.PANIDCompress {
			if len(rest) < 2 {
				return nil, ErrTruncated
			}
			f.SrcPAN = binary.LittleEndian.Uint16(rest)
			rest = rest[2:]
		} else {
			f.SrcPAN = f.DstPAN
		}
		rest, f.SrcShort, f.SrcExt, err = readAddr(rest, f.SrcMode)
		if err != nil {
			return nil, err
		}
	}
	f.Payload = rest
	return f, nil
}

func readAddr(b []byte, mode AddrMode) (rest []byte, short uint16, ext uint64, err error) {
	switch mode {
	case AddrShort:
		if len(b) < 2 {
			return nil, 0, 0, ErrTruncated
		}
		return b[2:], binary.LittleEndian.Uint16(b), 0, nil
	case AddrExtended:
		if len(b) < 8 {
			return nil, 0, 0, ErrTruncated
		}
		return b[8:], 0, binary.LittleEndian.Uint64(b), nil
	default:
		return b, 0, 0, nil
	}
}

// CRC16 computes the ITU-T CRC-16 (polynomial 0x1021, LSB-first) used
// as the 802.15.4 frame check sequence.
func CRC16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ 0x8408
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}
