// Package stack assembles and disassembles complete frames for each
// capture medium. It is the parsing core of Kalis' Communication
// System: simulated devices use the Build* helpers to emit raw bytes
// onto the simulated medium, and the promiscuous sniffer uses Decode to
// turn overheard raw bytes back into a packet.Captured with a fully
// decoded layer stack and traffic-kind classification.
//
// Identity conventions: Captured.Src/Dst carry the highest-layer
// (end-to-end) addresses present in the frame, while
// Captured.Transmitter carries the per-hop link-layer source — the node
// that physically radiated this transmission, which is also the node
// the observed RSSI belongs to.
package stack

import (
	"fmt"
	"net/netip"

	"kalis/internal/packet"
	"kalis/internal/proto/ble"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/ipv4"
	"kalis/internal/proto/sixlowpan"
	"kalis/internal/proto/tcp"
	"kalis/internal/proto/udp"
	"kalis/internal/proto/wifi"
	"kalis/internal/proto/zigbee"
)

// ShortID renders an 802.15.4/ZigBee 16-bit short address as a NodeID
// in the canonical "0x%04x" form. It runs per decoded layer on the
// capture path, so the hex digits are assembled by hand instead of
// going through fmt's reflection machinery.
func ShortID(addr uint16) packet.NodeID {
	if addr == 0xffff {
		return packet.Broadcast
	}
	const digits = "0123456789abcdef"
	b := [6]byte{'0', 'x',
		digits[addr>>12&0xf], digits[addr>>8&0xf],
		digits[addr>>4&0xf], digits[addr&0xf]}
	return packet.NodeID(b[:])
}

// IPID renders an IP address as a NodeID.
func IPID(a netip.Addr) packet.NodeID { return packet.NodeID(a.String()) }

// macIdentity maps a WiFi transmitter MAC back into the IP namespace
// when it follows the locally-administered encoding used by macFromIP,
// so that per-hop transmitters and end-to-end IP sources share one
// identity space. A station transmitting its own traffic then has
// Transmitter == Src, while relayed/forwarded traffic (e.g. a router
// forwarding Internet-side frames) exposes Transmitter != Src — the
// multi-hop evidence the Topology Discovery module looks for.
func macIdentity(m wifi.MAC) packet.NodeID {
	if m[0] == 0x02 && m[1] == 0x00 {
		return packet.NodeID(netip.AddrFrom4([4]byte{m[2], m[3], m[4], m[5]}).String())
	}
	return packet.NodeID(m.String())
}

// Decode parses raw bytes captured on the given medium into the layer
// stack, filling Src, Dst, Transmitter and Kind of the returned
// Captured. Capture metadata (Time, RSSI) is left for the caller.
func Decode(medium packet.Medium, raw []byte) (*packet.Captured, error) {
	switch medium {
	case packet.MediumIEEE802154:
		return decode802154(raw)
	case packet.MediumWiFi, packet.MediumWired:
		return decodeWiFi(medium, raw)
	case packet.MediumBluetooth:
		return decodeBLE(raw)
	default:
		return nil, fmt.Errorf("stack: unsupported medium %v", medium)
	}
}

func decode802154(raw []byte) (*packet.Captured, error) {
	mac, err := ieee802154.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("802.15.4: %w", err)
	}
	c := &packet.Captured{
		Medium:      packet.MediumIEEE802154,
		Src:         ShortID(mac.SrcShort),
		Dst:         ShortID(mac.DstShort),
		Transmitter: ShortID(mac.SrcShort),
		Kind:        packet.KindUnknown,
		Layers:      []packet.Layer{mac},
	}
	if mac.Type != ieee802154.FrameData || len(mac.Payload) == 0 {
		c.Payload = mac.Payload
		return c, nil
	}
	// Link-layer security means the payload is ciphertext: opaque to a
	// passive monitor, but the frame itself (addresses, RSSI, the
	// security bit that Topology Discovery turns into the Encrypted
	// feature) is still valuable.
	if mac.Security {
		c.Payload = mac.Payload
		return c, nil
	}
	// CTP frames are identified by their AM dispatch byte.
	if ctp.IsCTP(mac.Payload) {
		msg, err := ctp.Decode(mac.Payload)
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case *ctp.Data:
			c.Layers = append(c.Layers, m)
			c.Kind = packet.KindCTPData
			c.Src = ShortID(m.Origin) // end-to-end origin
			c.Payload = m.Payload
		case *ctp.Beacon:
			c.Layers = append(c.Layers, m)
			c.Kind = packet.KindCTPBeacon
		}
		return c, nil
	}
	// 6LoWPAN next (dispatch-based), then ZigBee NWK as the fallback.
	if lp, err := sixlowpan.Decode(mac.Payload); err == nil {
		c.Layers = append(c.Layers, lp)
		c.Src, c.Dst = ShortID(lp.Src), ShortID(lp.Dst)
		if lp.Mesh != nil {
			c.Src, c.Dst = ShortID(lp.Mesh.Origin), ShortID(lp.Mesh.Dst)
		}
		if lp.RPL != nil {
			c.Layers = append(c.Layers, lp.RPL)
			c.Kind = packet.KindRPLControl
		} else {
			c.Kind = packet.KindSixLowPAN
			c.Payload = lp.Payload
		}
		return c, nil
	}
	nwk, err := zigbee.Decode(mac.Payload)
	if err != nil {
		return nil, err
	}
	c.Layers = append(c.Layers, nwk)
	c.Src, c.Dst = ShortID(nwk.Src), ShortID(nwk.Dst)
	if nwk.IsRouting() {
		c.Kind = packet.KindZigbeeRouting
	} else {
		c.Kind = packet.KindZigbeeData
	}
	c.Payload = nwk.Payload
	return c, nil
}

func decodeWiFi(medium packet.Medium, raw []byte) (*packet.Captured, error) {
	fr, err := wifi.Decode(raw)
	if err != nil {
		return nil, err
	}
	c := &packet.Captured{
		Medium:      medium,
		Src:         packet.NodeID(fr.Addr2.String()),
		Dst:         packet.NodeID(fr.Addr1.String()),
		Transmitter: macIdentity(fr.Addr2),
		Layers:      []packet.Layer{fr},
	}
	if fr.Type == wifi.TypeManagement {
		c.Kind = packet.KindWiFiMgmt
		c.Payload = fr.Payload
		return c, nil
	}
	if fr.Type != wifi.TypeData || len(fr.Payload) == 0 {
		c.Payload = fr.Payload
		return c, nil
	}
	ip, err := ipv4.Decode(fr.Payload)
	if err != nil {
		return nil, err
	}
	c.Layers = append(c.Layers, ip)
	c.Src, c.Dst = IPID(ip.Src), IPID(ip.Dst)
	switch ip.Protocol {
	case ipv4.ProtoICMP:
		m, err := icmp.Decode(ip.Payload)
		if err != nil {
			return nil, err
		}
		c.Layers = append(c.Layers, m)
		switch {
		case m.IsEchoRequest():
			c.Kind = packet.KindICMPEchoRequest
		case m.IsEchoReply():
			c.Kind = packet.KindICMPEchoReply
		default:
			c.Kind = packet.KindICMPOther
		}
		c.Payload = m.Payload
	case ipv4.ProtoTCP:
		seg, err := tcp.Decode(ip.Src, ip.Dst, ip.Payload)
		if err != nil {
			return nil, err
		}
		c.Layers = append(c.Layers, seg)
		switch {
		case seg.IsSYN():
			c.Kind = packet.KindTCPSYN
		case seg.IsACK() || seg.IsSYNACK():
			c.Kind = packet.KindTCPACK
		default:
			c.Kind = packet.KindTCPOther
		}
		c.Payload = seg.Payload
	case ipv4.ProtoUDP:
		d, err := udp.Decode(ip.Payload)
		if err != nil {
			return nil, err
		}
		c.Layers = append(c.Layers, d)
		c.Kind = packet.KindUDP
		c.Payload = d.Payload
	default:
		c.Payload = ip.Payload
	}
	return c, nil
}

func decodeBLE(raw []byte) (*packet.Captured, error) {
	pdu, err := ble.Decode(raw)
	if err != nil {
		return nil, err
	}
	c := &packet.Captured{
		Medium:      packet.MediumBluetooth,
		Src:         packet.NodeID(pdu.Adv.String()),
		Dst:         packet.Broadcast,
		Transmitter: packet.NodeID(pdu.Adv.String()),
		Layers:      []packet.Layer{pdu},
		Payload:     pdu.Payload,
	}
	if pdu.IsAdvertising() {
		c.Kind = packet.KindBLEAdvertising
	} else {
		c.Kind = packet.KindBLEData
	}
	return c, nil
}
