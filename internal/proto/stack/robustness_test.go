package stack

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"kalis/internal/packet"
)

// TestDecodeNeverPanics feeds random byte soup into every medium's
// decoder: a passive IDS parses attacker-controlled bytes and must
// fail gracefully, never crash.
func TestDecodeNeverPanics(t *testing.T) {
	mediums := []packet.Medium{
		packet.MediumIEEE802154, packet.MediumWiFi,
		packet.MediumBluetooth, packet.MediumWired,
	}
	prop := func(raw []byte, pick uint8) bool {
		m := mediums[int(pick)%len(mediums)]
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode(%v, %d bytes) panicked: %v", m, len(raw), r)
			}
		}()
		_, _ = Decode(m, raw)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeTruncationsNeverPanic truncates valid frames at every
// length: partial captures are routine on lossy radios.
func TestDecodeTruncationsNeverPanic(t *testing.T) {
	frames := map[packet.Medium][]byte{
		packet.MediumIEEE802154: BuildCTPData(5, 3, 5, 1, 2, 100, []byte("payload")),
		packet.MediumWiFi:       BuildUDP(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), 1, 2, 3, []byte("data")),
		packet.MediumBluetooth:  BuildBLEAdv([6]byte{1, 2, 3, 4, 5, 6}, []byte{0x02}),
	}
	for m, raw := range frames {
		for cut := 0; cut <= len(raw); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v truncated at %d panicked: %v", m, cut, r)
					}
				}()
				_, _ = Decode(m, raw[:cut])
			}()
		}
	}
}

// TestDecodeBitflipsNeverPanic flips random bits in valid frames.
func TestDecodeBitflipsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := BuildZigbeeData(2, 1, 9, 1, 5, []byte("cmdpayload"))
	for i := 0; i < 5000; i++ {
		mut := make([]byte, len(base))
		copy(mut, base)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bitflipped frame panicked: %v", r)
				}
			}()
			_, _ = Decode(packet.MediumIEEE802154, mut)
		}()
	}
}
