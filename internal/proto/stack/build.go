package stack

import (
	"net/netip"

	"kalis/internal/proto/ble"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/ipv4"
	"kalis/internal/proto/sixlowpan"
	"kalis/internal/proto/tcp"
	"kalis/internal/proto/udp"
	"kalis/internal/proto/wifi"
	"kalis/internal/proto/zigbee"
)

// The Build* helpers construct complete raw frames ready to transmit on
// a simulated medium. They are used by the device behaviour models and
// by the attack injectors; every frame they emit round-trips through
// Decode.

// mac154 builds the 802.15.4 data frame wrapper shared by all
// 802.15.4-based builders.
func mac154(src, dst uint16, seq uint8, payload []byte) []byte {
	f := &ieee802154.Frame{
		Type:          ieee802154.FrameData,
		PANIDCompress: true,
		Seq:           seq,
		DstPAN:        0x1234,
		DstMode:       ieee802154.AddrShort,
		SrcMode:       ieee802154.AddrShort,
		DstShort:      dst,
		SrcShort:      src,
		Payload:       payload,
	}
	return f.Encode()
}

// BuildCTPData builds an 802.15.4 frame carrying a CTP data message for
// one hop: src/dst are the per-hop MAC addresses, origin/seqNo identify
// the end-to-end packet, thl counts hops so far.
func BuildCTPData(src, dst, origin uint16, seqNo, thl uint8, etx uint16, payload []byte) []byte {
	d := &ctp.Data{THL: thl, ETX: etx, Origin: origin, SeqNo: seqNo, CollectID: 1, Payload: payload}
	return mac154(src, dst, seqNo, d.Encode())
}

// BuildCTPBeacon builds an 802.15.4 broadcast frame carrying a CTP
// routing beacon.
func BuildCTPBeacon(src, parent uint16, etx uint16, seq uint8) []byte {
	b := &ctp.Beacon{Parent: parent, ETX: etx}
	return mac154(src, 0xffff, seq, b.Encode())
}

// BuildZigbeeData builds an 802.15.4 frame carrying a ZigBee NWK data
// frame. macSrc is the per-hop transmitter; nwkSrc/nwkDst are the
// end-to-end NWK addresses.
func BuildZigbeeData(macSrc, macDst, nwkSrc, nwkDst uint16, seq uint8, payload []byte) []byte {
	n := &zigbee.Frame{
		Type:     zigbee.FrameData,
		Protocol: 2,
		Dst:      nwkDst,
		Src:      nwkSrc,
		Radius:   30,
		Seq:      seq,
		Payload:  payload,
	}
	return mac154(macSrc, macDst, seq, n.Encode())
}

// BuildZigbeeCommand builds an 802.15.4 frame carrying a ZigBee NWK
// routing command.
func BuildZigbeeCommand(macSrc, macDst, nwkSrc, nwkDst uint16, seq uint8, cmd zigbee.CommandID, payload []byte) []byte {
	n := &zigbee.Frame{
		Type:     zigbee.FrameCommand,
		Protocol: 2,
		Dst:      nwkDst,
		Src:      nwkSrc,
		Radius:   30,
		Seq:      seq,
		Command:  cmd,
		Payload:  payload,
	}
	return mac154(macSrc, macDst, seq, n.Encode())
}

// BuildRPLDIO builds an 802.15.4 broadcast carrying a 6LoWPAN-framed
// RPL DIO advertising the given rank.
func BuildRPLDIO(src uint16, seq uint8, rank uint16, dodagID uint16) []byte {
	p := &sixlowpan.Packet{
		NextHeader: 58,
		HopLimit:   64,
		Src:        src,
		Dst:        0xffff,
		RPL:        &sixlowpan.RPLMessage{Type: sixlowpan.RPLDIO, InstanceID: 1, Version: 1, Rank: rank, DODAGID: dodagID},
	}
	return mac154(src, 0xffff, seq, p.Encode())
}

// BuildSixLowPANData builds an 802.15.4 frame carrying 6LoWPAN
// application data, optionally with a mesh (forwarding) header.
func BuildSixLowPANData(macSrc, macDst, origin, finalDst uint16, seq uint8, hopsLeft uint8, payload []byte) []byte {
	p := &sixlowpan.Packet{
		NextHeader: 17,
		HopLimit:   64,
		Src:        origin,
		Dst:        finalDst,
		Payload:    payload,
	}
	if hopsLeft > 0 {
		p.Mesh = &sixlowpan.MeshHeader{HopsLeft: hopsLeft, Origin: origin, Dst: finalDst}
	}
	return mac154(macSrc, macDst, seq, p.Encode())
}

// macFromIP derives a stable locally-administered MAC from an IPv4
// address so WiFi frames and IP headers stay consistent.
func macFromIP(a netip.Addr) wifi.MAC {
	b := a.As4()
	return wifi.MAC{0x02, 0x00, b[0], b[1], b[2], b[3]}
}

// wifiData wraps an IP packet in an 802.11 data frame.
func wifiData(src, dst netip.Addr, seq uint16, ipPayload []byte) []byte {
	f := &wifi.Frame{
		Type:    wifi.TypeData,
		ToDS:    true,
		Addr1:   macFromIP(dst),
		Addr2:   macFromIP(src),
		Addr3:   wifi.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}, // BSSID
		Seq:     seq,
		Payload: ipPayload,
	}
	return f.Encode()
}

// BuildICMPEcho builds a WiFi frame carrying a payload-less ICMP echo
// message.
func BuildICMPEcho(src, dst netip.Addr, echoType uint8, id, seq uint16, ttl uint8) []byte {
	return BuildICMPEchoPayload(src, dst, echoType, id, seq, ttl, nil)
}

// BuildICMPEchoPayload builds a WiFi frame carrying an ICMP echo
// message with the given payload (real pings carry 56 bytes of
// pattern data; see PingPayload).
func BuildICMPEchoPayload(src, dst netip.Addr, echoType uint8, id, seq uint16, ttl uint8, payload []byte) []byte {
	ip := EncodeICMPEchoIP(src, dst, echoType, id, seq, ttl, payload)
	return wifiData(src, dst, seq, ip)
}

// PingPayload returns the standard 56-byte ping pattern payload.
func PingPayload() []byte {
	p := make([]byte, 56)
	for i := range p {
		p[i] = byte(0x20 + i%0x40)
	}
	return p
}

// EncodeICMPEchoIP returns the raw IPv4 packet (no link layer) for an
// ICMP echo message — useful for framing the same IP packet as
// transmitted by a different (forwarding) node.
func EncodeICMPEchoIP(src, dst netip.Addr, echoType uint8, id, seq uint16, ttl uint8, payload []byte) []byte {
	m := &icmp.Message{Type: echoType, ID: id, Seq: seq, Payload: payload}
	ip := &ipv4.Header{TTL: ttl, Protocol: ipv4.ProtoICMP, Src: src, Dst: dst, ID: seq, Payload: m.Encode()}
	return ip.Encode()
}

// BuildIPFrame wraps a raw IPv4 packet in an 802.11 data frame whose
// transmitter address belongs to the given forwarding node — the frame
// a sniffer sees when a router relays someone else's IP packet onto
// the local network.
func BuildIPFrame(transmitter, receiver netip.Addr, seq uint16, ipPacket []byte) []byte {
	f := &wifi.Frame{
		Type:    wifi.TypeData,
		FromDS:  true,
		Addr1:   macFromIP(receiver),
		Addr2:   macFromIP(transmitter),
		Addr3:   wifi.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		Seq:     seq,
		Payload: ipPacket,
	}
	return f.Encode()
}

// BuildTCP builds a WiFi frame carrying a TCP segment.
func BuildTCP(src, dst netip.Addr, srcPort, dstPort uint16, flags uint8, seq, ack uint32, ipID uint16, payload []byte) []byte {
	seg := &tcp.Segment{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack, Flags: flags, Window: 65535, Payload: payload}
	ip := &ipv4.Header{TTL: 64, Protocol: ipv4.ProtoTCP, Src: src, Dst: dst, ID: ipID, Payload: seg.Encode(src, dst)}
	return wifiData(src, dst, ipID, ip.Encode())
}

// BuildUDP builds a WiFi frame carrying a UDP datagram.
func BuildUDP(src, dst netip.Addr, srcPort, dstPort uint16, ipID uint16, payload []byte) []byte {
	d := &udp.Datagram{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	ip := &ipv4.Header{TTL: 64, Protocol: ipv4.ProtoUDP, Src: src, Dst: dst, ID: ipID, Payload: d.Encode()}
	return wifiData(src, dst, ipID, ip.Encode())
}

// BuildWiFiMgmt builds an 802.11 management frame (beacon, assoc, ...).
func BuildWiFiMgmt(subtype uint8, src, dst wifi.MAC, seq uint16, payload []byte) []byte {
	f := &wifi.Frame{Type: wifi.TypeManagement, Subtype: subtype, Addr1: dst, Addr2: src, Addr3: src, Seq: seq, Payload: payload}
	return f.Encode()
}

// BuildBLEAdv builds a BLE advertising PDU.
func BuildBLEAdv(adv ble.Address, payload []byte) []byte {
	p := &ble.PDU{Type: ble.PDUAdvInd, Adv: adv, Payload: payload}
	return p.Encode()
}

// BuildBLEData builds a (simplified) BLE data-channel PDU.
func BuildBLEData(adv ble.Address, payload []byte) []byte {
	p := &ble.PDU{Type: ble.PDUData, Adv: adv, Payload: payload}
	return p.Encode()
}
