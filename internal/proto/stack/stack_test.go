package stack

import (
	"net/netip"
	"testing"

	"kalis/internal/packet"
	"kalis/internal/proto/ble"
	"kalis/internal/proto/ctp"
	"kalis/internal/proto/ieee802154"
	"kalis/internal/proto/sixlowpan"
	"kalis/internal/proto/tcp"
	"kalis/internal/proto/wifi"
	"kalis/internal/proto/zigbee"
)

func mustDecode(t *testing.T, medium packet.Medium, raw []byte) *packet.Captured {
	t.Helper()
	c, err := Decode(medium, raw)
	if err != nil {
		t.Fatalf("Decode(%v): %v", medium, err)
	}
	return c
}

func TestCTPDataStack(t *testing.T) {
	raw := BuildCTPData(5, 3, 7, 42, 2, 120, []byte("reading"))
	c := mustDecode(t, packet.MediumIEEE802154, raw)
	if c.Kind != packet.KindCTPData {
		t.Errorf("Kind = %v, want CTPData", c.Kind)
	}
	if c.Src != ShortID(7) { // end-to-end origin
		t.Errorf("Src = %s, want origin 7", c.Src)
	}
	if c.Transmitter != ShortID(5) { // per-hop transmitter
		t.Errorf("Transmitter = %s, want 5", c.Transmitter)
	}
	d, ok := c.Layer("ctp-data").(*ctp.Data)
	if !ok {
		t.Fatal("missing ctp-data layer")
	}
	if d.THL != 2 || d.SeqNo != 42 {
		t.Errorf("ctp fields: %+v", d)
	}
}

func TestCTPBeaconStack(t *testing.T) {
	raw := BuildCTPBeacon(4, 1, 35, 9)
	c := mustDecode(t, packet.MediumIEEE802154, raw)
	if c.Kind != packet.KindCTPBeacon {
		t.Errorf("Kind = %v", c.Kind)
	}
	if c.Dst != packet.Broadcast {
		t.Errorf("Dst = %s, want broadcast", c.Dst)
	}
}

func TestZigbeeStack(t *testing.T) {
	raw := BuildZigbeeData(2, 1, 9, 1, 5, []byte("cmd"))
	c := mustDecode(t, packet.MediumIEEE802154, raw)
	if c.Kind != packet.KindZigbeeData {
		t.Errorf("Kind = %v", c.Kind)
	}
	if c.Src != ShortID(9) || c.Dst != ShortID(1) {
		t.Errorf("NWK identities: %s -> %s", c.Src, c.Dst)
	}
	if c.Transmitter != ShortID(2) {
		t.Errorf("Transmitter = %s", c.Transmitter)
	}

	rawCmd := BuildZigbeeCommand(2, 0xffff, 2, 0xfffc, 6, zigbee.CmdRouteRequest, nil)
	c2 := mustDecode(t, packet.MediumIEEE802154, rawCmd)
	if c2.Kind != packet.KindZigbeeRouting {
		t.Errorf("command Kind = %v", c2.Kind)
	}
}

func TestRPLStack(t *testing.T) {
	raw := BuildRPLDIO(3, 1, 512, 1)
	c := mustDecode(t, packet.MediumIEEE802154, raw)
	if c.Kind != packet.KindRPLControl {
		t.Errorf("Kind = %v", c.Kind)
	}
	m, ok := c.Layer("rpl").(*sixlowpan.RPLMessage)
	if !ok {
		t.Fatal("missing rpl layer")
	}
	if m.Rank != 512 {
		t.Errorf("rank = %d", m.Rank)
	}
}

func TestSixLowPANMeshStack(t *testing.T) {
	raw := BuildSixLowPANData(4, 2, 9, 1, 3, 5, []byte("x"))
	c := mustDecode(t, packet.MediumIEEE802154, raw)
	if c.Kind != packet.KindSixLowPAN {
		t.Errorf("Kind = %v", c.Kind)
	}
	if c.Src != ShortID(9) || c.Dst != ShortID(1) {
		t.Errorf("mesh identities: %s -> %s", c.Src, c.Dst)
	}
	lp, ok := c.Layer("sixlowpan").(*sixlowpan.Packet)
	if !ok || lp.Mesh == nil {
		t.Fatal("missing mesh header")
	}
}

func TestICMPStack(t *testing.T) {
	src, dst := netip.MustParseAddr("192.168.1.66"), netip.MustParseAddr("192.168.1.10")
	raw := BuildICMPEcho(src, dst, 0, 1, 7, 64)
	c := mustDecode(t, packet.MediumWiFi, raw)
	if c.Kind != packet.KindICMPEchoReply {
		t.Errorf("Kind = %v", c.Kind)
	}
	if c.Src != IPID(src) || c.Dst != IPID(dst) {
		t.Errorf("IP identities: %s -> %s", c.Src, c.Dst)
	}
	rawReq := BuildICMPEcho(src, dst, 8, 1, 8, 64)
	if c2 := mustDecode(t, packet.MediumWiFi, rawReq); c2.Kind != packet.KindICMPEchoRequest {
		t.Errorf("request Kind = %v", c2.Kind)
	}
}

func TestTCPStack(t *testing.T) {
	src, dst := netip.MustParseAddr("192.168.1.5"), netip.MustParseAddr("34.4.4.4")
	cases := []struct {
		flags uint8
		want  packet.Kind
	}{
		{tcp.FlagSYN, packet.KindTCPSYN},
		{tcp.FlagSYN | tcp.FlagACK, packet.KindTCPACK},
		{tcp.FlagACK, packet.KindTCPACK},
		{tcp.FlagFIN | tcp.FlagACK, packet.KindTCPOther},
	}
	for _, cse := range cases {
		raw := BuildTCP(src, dst, 4000, 443, cse.flags, 1, 0, 10, nil)
		c := mustDecode(t, packet.MediumWiFi, raw)
		if c.Kind != cse.want {
			t.Errorf("flags %s: Kind = %v, want %v", tcp.FlagString(cse.flags), c.Kind, cse.want)
		}
	}
}

func TestUDPStack(t *testing.T) {
	src, dst := netip.MustParseAddr("192.168.1.20"), netip.MustParseAddr("192.168.1.255")
	raw := BuildUDP(src, dst, 56700, 56700, 3, []byte("discover"))
	c := mustDecode(t, packet.MediumWiFi, raw)
	if c.Kind != packet.KindUDP {
		t.Errorf("Kind = %v", c.Kind)
	}
	if string(c.Payload) != "discover" {
		t.Errorf("payload = %q", c.Payload)
	}
}

func TestWiFiMgmtStack(t *testing.T) {
	raw := BuildWiFiMgmt(wifi.SubtypeBeacon, wifi.MAC{1, 1, 1, 1, 1, 1}, wifi.BroadcastMAC, 1, nil)
	c := mustDecode(t, packet.MediumWiFi, raw)
	if c.Kind != packet.KindWiFiMgmt {
		t.Errorf("Kind = %v", c.Kind)
	}
}

func TestBLEStack(t *testing.T) {
	adv := ble.Address{1, 2, 3, 4, 5, 6}
	c := mustDecode(t, packet.MediumBluetooth, BuildBLEAdv(adv, []byte("lock")))
	if c.Kind != packet.KindBLEAdvertising {
		t.Errorf("adv Kind = %v", c.Kind)
	}
	if c.Src != packet.NodeID(adv.String()) {
		t.Errorf("Src = %s", c.Src)
	}
	c2 := mustDecode(t, packet.MediumBluetooth, BuildBLEData(adv, []byte{1}))
	if c2.Kind != packet.KindBLEData {
		t.Errorf("data Kind = %v", c2.Kind)
	}
}

func TestSecuredFrameIsOpaqueNotError(t *testing.T) {
	f := &ieee802154.Frame{
		Type:          ieee802154.FrameData,
		Security:      true,
		PANIDCompress: true,
		DstPAN:        0x1234,
		DstMode:       ieee802154.AddrShort,
		SrcMode:       ieee802154.AddrShort,
		DstShort:      1,
		SrcShort:      2,
		Payload:       []byte{0xde, 0xad, 0xbe}, // ciphertext
	}
	c := mustDecode(t, packet.MediumIEEE802154, f.Encode())
	if c.Kind != packet.KindUnknown {
		t.Errorf("Kind = %v, want Unknown (opaque)", c.Kind)
	}
	mac, ok := c.Layer("ieee802154").(*ieee802154.Frame)
	if !ok || !mac.Security {
		t.Error("security bit lost")
	}
	if c.Src != ShortID(2) || c.Dst != ShortID(1) {
		t.Errorf("link identities lost: %s -> %s", c.Src, c.Dst)
	}
}

func TestShortID(t *testing.T) {
	if ShortID(0xffff) != packet.Broadcast {
		t.Error("0xffff should map to broadcast")
	}
	if ShortID(5) != "0x0005" {
		t.Errorf("ShortID(5) = %s", ShortID(5))
	}
}

func TestDecodeUnsupportedMedium(t *testing.T) {
	if _, err := Decode(packet.Medium(99), []byte{1, 2, 3}); err == nil {
		t.Error("expected error for unsupported medium")
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, m := range []packet.Medium{packet.MediumIEEE802154, packet.MediumWiFi, packet.MediumBluetooth} {
		if _, err := Decode(m, []byte{0x01}); err == nil {
			t.Errorf("%v: expected error for garbage", m)
		}
	}
}
