// Package tcp implements TCP segment encoding/decoding (flags,
// sequence numbers, checksum over the IPv4 pseudo-header). Kalis'
// Traffic Statistics module tracks TCP SYN and TCP ACK frequencies,
// and the SYN Flood detection module consumes them.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"kalis/internal/proto/ipv4"
)

// Flag bits in the TCP header.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("tcp: truncated segment")
	ErrChecksum  = errors.New("tcp: checksum mismatch")
)

// Segment is a decoded TCP segment.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Payload          []byte
}

// LayerName implements packet.Layer.
func (s *Segment) LayerName() string { return "tcp" }

// String renders a compact human-readable form.
func (s *Segment) String() string {
	return fmt.Sprintf("tcp %d->%d flags=%s len=%d", s.SrcPort, s.DstPort, FlagString(s.Flags), len(s.Payload))
}

// IsSYN reports whether the segment is a connection-opening SYN
// (SYN set, ACK clear).
func (s *Segment) IsSYN() bool { return s.Flags&FlagSYN != 0 && s.Flags&FlagACK == 0 }

// IsSYNACK reports whether the segment is a SYN+ACK.
func (s *Segment) IsSYNACK() bool { return s.Flags&FlagSYN != 0 && s.Flags&FlagACK != 0 }

// IsACK reports whether the segment has only ACK semantics (ACK set,
// SYN/FIN/RST clear).
func (s *Segment) IsACK() bool {
	return s.Flags&FlagACK != 0 && s.Flags&(FlagSYN|FlagFIN|FlagRST) == 0
}

// FlagString renders flag bits as "SAFRPU"-style shorthand.
func FlagString(f uint8) string {
	names := []struct {
		bit  uint8
		name byte
	}{
		{FlagSYN, 'S'}, {FlagACK, 'A'}, {FlagFIN, 'F'},
		{FlagRST, 'R'}, {FlagPSH, 'P'}, {FlagURG, 'U'},
	}
	out := make([]byte, 0, 6)
	for _, n := range names {
		if f&n.bit != 0 {
			out = append(out, n.name)
		}
	}
	if len(out) == 0 {
		return "."
	}
	return string(out)
}

// Encode serialises the segment, computing the checksum over the IPv4
// pseudo-header for the given source/destination addresses.
func (s *Segment) Encode(src, dst netip.Addr) []byte {
	buf := make([]byte, 20+len(s.Payload))
	binary.BigEndian.PutUint16(buf[0:2], s.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], s.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], s.Seq)
	binary.BigEndian.PutUint32(buf[8:12], s.Ack)
	buf[12] = 5 << 4 // data offset: 5 words
	buf[13] = s.Flags
	binary.BigEndian.PutUint16(buf[14:16], s.Window)
	copy(buf[20:], s.Payload)
	binary.BigEndian.PutUint16(buf[16:18], checksum(src, dst, buf))
	return buf
}

// Decode parses a TCP segment and verifies its checksum against the
// IPv4 pseudo-header.
func Decode(src, dst netip.Addr, b []byte) (*Segment, error) {
	if len(b) < 20 {
		return nil, ErrTruncated
	}
	if checksum(src, dst, b) != 0 {
		return nil, ErrChecksum
	}
	off := int(b[12]>>4) * 4
	if off < 20 || off > len(b) {
		return nil, ErrTruncated
	}
	s := &Segment{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
	}
	if len(b) > off {
		s.Payload = b[off:]
	}
	return s, nil
}

func checksum(src, dst netip.Addr, seg []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(seg)+1)
	a, b := src.As4(), dst.As4()
	copy(pseudo[0:4], a[:])
	copy(pseudo[4:8], b[:])
	pseudo[9] = ipv4.ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(seg)))
	pseudo = append(pseudo, seg...)
	return ipv4.Checksum(pseudo)
}
