package tcp

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcA = netip.MustParseAddr("192.168.1.5")
	dstA = netip.MustParseAddr("52.2.3.4")
)

func TestRoundTrip(t *testing.T) {
	s := &Segment{
		SrcPort: 44321, DstPort: 443,
		Seq: 1000, Ack: 2000,
		Flags:  FlagSYN | FlagACK,
		Window: 4096,
	}
	got, err := Decode(srcA, dstA, s.Encode(srcA, dstA))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.SrcPort != 44321 || got.DstPort != 443 || got.Seq != 1000 || got.Ack != 2000 {
		t.Errorf("segment mismatch: %+v", got)
	}
	if !got.IsSYNACK() {
		t.Error("IsSYNACK false")
	}
}

func TestFlagPredicates(t *testing.T) {
	cases := []struct {
		flags            uint8
		syn, synack, ack bool
	}{
		{FlagSYN, true, false, false},
		{FlagSYN | FlagACK, false, true, false},
		{FlagACK, false, false, true},
		{FlagACK | FlagPSH, false, false, true},
		{FlagACK | FlagFIN, false, false, false},
		{FlagRST, false, false, false},
	}
	for _, c := range cases {
		s := &Segment{Flags: c.flags}
		if s.IsSYN() != c.syn || s.IsSYNACK() != c.synack || s.IsACK() != c.ack {
			t.Errorf("flags %s: got (%v,%v,%v), want (%v,%v,%v)",
				FlagString(c.flags), s.IsSYN(), s.IsSYNACK(), s.IsACK(), c.syn, c.synack, c.ack)
		}
	}
}

func TestFlagString(t *testing.T) {
	if got := FlagString(FlagSYN | FlagACK); got != "SA" {
		t.Errorf("FlagString = %q, want SA", got)
	}
	if got := FlagString(0); got != "." {
		t.Errorf("FlagString(0) = %q, want .", got)
	}
}

func TestChecksumBinding(t *testing.T) {
	// A segment checksummed for one address pair must not verify for
	// another (the pseudo-header binds addresses).
	s := &Segment{SrcPort: 1, DstPort: 2, Flags: FlagSYN}
	raw := s.Encode(srcA, dstA)
	other := netip.MustParseAddr("10.9.9.9")
	if _, err := Decode(other, dstA, raw); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, err := Decode(srcA, dstA, make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(sp, dp uint16, seq, ack uint32, payload []byte) bool {
		s := &Segment{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: FlagACK, Window: 100, Payload: payload}
		got, err := Decode(srcA, dstA, s.Encode(srcA, dstA))
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
