// Package sixlowpan implements the 6LoWPAN dispatch framing (RFC 4944 /
// RFC 6282 IPHC) and the RPL control messages (RFC 6550 DIS/DIO/DAO)
// carried over it.
//
// The Topology Discovery sensing module treats the presence of RPL
// control traffic as direct evidence of a multi-hop routing topology,
// and the Sinkhole detection module inspects advertised DIO ranks.
package sixlowpan

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Dispatch values (RFC 4944 §5.1, RFC 6282).
const (
	dispatchIPHC   = 0x60 // 011xxxxx: LOWPAN_IPHC compressed IPv6
	dispatchFrag1  = 0xC0 // 11000xxx: first fragment
	dispatchFragN  = 0xE0 // 11100xxx: subsequent fragment
	dispatchMeshTo = 0x80 // 10xxxxxx: mesh addressing header
)

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("sixlowpan: truncated frame")
	ErrDispatch  = errors.New("sixlowpan: unknown dispatch")
)

// MeshHeader is the RFC 4944 mesh-addressing header: a layer-2.5
// forwarding header whose presence is an unambiguous multi-hop signal.
type MeshHeader struct {
	HopsLeft    uint8
	Origin, Dst uint16
}

// Packet is a decoded 6LoWPAN frame.
type Packet struct {
	// Mesh is the mesh addressing header, nil when absent.
	Mesh *MeshHeader
	// NextHeader is the compressed IPv6 next-header value (58 = ICMPv6,
	// which carries RPL control messages).
	NextHeader uint8
	// HopLimit is the compressed IPv6 hop limit.
	HopLimit uint8
	// Src and Dst are compressed 16-bit node identifiers.
	Src, Dst uint16
	// RPL is the decoded RPL control message, nil if the payload is not
	// RPL.
	RPL *RPLMessage
	// Payload is the raw transport payload.
	Payload []byte
}

// LayerName implements packet.Layer.
func (p *Packet) LayerName() string { return "sixlowpan" }

// Encode serialises the packet.
func (p *Packet) Encode() []byte {
	buf := make([]byte, 0, 16+len(p.Payload))
	if p.Mesh != nil {
		buf = append(buf, dispatchMeshTo|(p.Mesh.HopsLeft&0x0f))
		var u16 [2]byte
		binary.BigEndian.PutUint16(u16[:], p.Mesh.Origin)
		buf = append(buf, u16[:]...)
		binary.BigEndian.PutUint16(u16[:], p.Mesh.Dst)
		buf = append(buf, u16[:]...)
	}
	buf = append(buf, dispatchIPHC, p.NextHeader, p.HopLimit)
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], p.Src)
	buf = append(buf, u16[:]...)
	binary.BigEndian.PutUint16(u16[:], p.Dst)
	buf = append(buf, u16[:]...)
	if p.RPL != nil {
		buf = append(buf, p.RPL.encode()...)
	}
	return append(buf, p.Payload...)
}

// Decode parses a 6LoWPAN frame from an 802.15.4 payload.
func Decode(b []byte) (*Packet, error) {
	p := &Packet{}
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	if b[0]&0xC0 == dispatchMeshTo {
		if len(b) < 5 {
			return nil, ErrTruncated
		}
		p.Mesh = &MeshHeader{
			HopsLeft: b[0] & 0x0f,
			Origin:   binary.BigEndian.Uint16(b[1:3]),
			Dst:      binary.BigEndian.Uint16(b[3:5]),
		}
		b = b[5:]
	}
	if len(b) < 7 || b[0]&0xE0 != dispatchIPHC {
		if len(b) >= 1 && (b[0]&0xF8 == dispatchFrag1 || b[0]&0xF8 == dispatchFragN) {
			return nil, fmt.Errorf("sixlowpan: fragments unsupported: %w", ErrDispatch)
		}
		return nil, ErrDispatch
	}
	p.NextHeader = b[1]
	p.HopLimit = b[2]
	p.Src = binary.BigEndian.Uint16(b[3:5])
	p.Dst = binary.BigEndian.Uint16(b[5:7])
	rest := b[7:]
	if p.NextHeader == 58 && len(rest) > 0 { // ICMPv6: try RPL
		if m, err := decodeRPL(rest); err == nil {
			p.RPL = m
			return p, nil
		}
	}
	p.Payload = rest
	return p, nil
}

// RPLType is an RPL control message code (RFC 6550 §6).
type RPLType uint8

// RPL control message codes.
const (
	RPLDIS RPLType = 0x00 // DODAG Information Solicitation
	RPLDIO RPLType = 0x01 // DODAG Information Object
	RPLDAO RPLType = 0x02 // Destination Advertisement Object
)

// String returns the message name.
func (t RPLType) String() string {
	switch t {
	case RPLDIS:
		return "DIS"
	case RPLDIO:
		return "DIO"
	case RPLDAO:
		return "DAO"
	default:
		return fmt.Sprintf("RPL(0x%02x)", uint8(t))
	}
}

// RPLMessage is a decoded RPL control message.
type RPLMessage struct {
	Type RPLType
	// InstanceID identifies the RPL instance.
	InstanceID uint8
	// Version is the DODAG version number (DIO only).
	Version uint8
	// Rank is the advertised rank (DIO only). An attacker advertising
	// rank close to the root is the RPL sinkhole symptom.
	Rank uint16
	// DODAGID is a compressed 16-bit DODAG root identifier.
	DODAGID uint16
}

// LayerName implements packet.Layer.
func (m *RPLMessage) LayerName() string { return "rpl" }

const rplICMPType = 155 // RFC 6550: ICMPv6 type for RPL control

func (m *RPLMessage) encode() []byte {
	buf := make([]byte, 8)
	buf[0] = rplICMPType
	buf[1] = uint8(m.Type)
	buf[2] = m.InstanceID
	buf[3] = m.Version
	binary.BigEndian.PutUint16(buf[4:6], m.Rank)
	binary.BigEndian.PutUint16(buf[6:8], m.DODAGID)
	return buf
}

func decodeRPL(b []byte) (*RPLMessage, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	if b[0] != rplICMPType {
		return nil, fmt.Errorf("sixlowpan: not RPL (icmp type %d): %w", b[0], ErrDispatch)
	}
	return &RPLMessage{
		Type:       RPLType(b[1]),
		InstanceID: b[2],
		Version:    b[3],
		Rank:       binary.BigEndian.Uint16(b[4:6]),
		DODAGID:    binary.BigEndian.Uint16(b[6:8]),
	}, nil
}
