package sixlowpan

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripPlain(t *testing.T) {
	p := &Packet{NextHeader: 17, HopLimit: 64, Src: 5, Dst: 1, Payload: []byte("data")}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Src != 5 || got.Dst != 1 || got.HopLimit != 64 || got.NextHeader != 17 {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("payload mismatch")
	}
	if got.Mesh != nil || got.RPL != nil {
		t.Error("unexpected mesh/RPL")
	}
}

func TestRoundTripMesh(t *testing.T) {
	p := &Packet{
		Mesh:       &MeshHeader{HopsLeft: 5, Origin: 9, Dst: 1},
		NextHeader: 17,
		HopLimit:   60,
		Src:        9,
		Dst:        1,
		Payload:    []byte{1},
	}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Mesh == nil || got.Mesh.HopsLeft != 5 || got.Mesh.Origin != 9 || got.Mesh.Dst != 1 {
		t.Errorf("mesh mismatch: %+v", got.Mesh)
	}
}

func TestRoundTripRPL(t *testing.T) {
	for _, typ := range []RPLType{RPLDIS, RPLDIO, RPLDAO} {
		p := &Packet{
			NextHeader: 58,
			HopLimit:   255,
			Src:        3,
			Dst:        0xffff,
			RPL:        &RPLMessage{Type: typ, InstanceID: 1, Version: 2, Rank: 256, DODAGID: 1},
		}
		got, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("%v: Decode: %v", typ, err)
		}
		if got.RPL == nil || got.RPL.Type != typ || got.RPL.Rank != 256 {
			t.Errorf("%v: RPL mismatch: %+v", typ, got.RPL)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode([]byte{0x00, 1, 2, 3, 4, 5, 6}); !errors.Is(err, ErrDispatch) {
		t.Errorf("bad dispatch: %v", err)
	}
	if _, err := Decode([]byte{0xC3, 1, 2, 3, 4, 5, 6, 7}); !errors.Is(err, ErrDispatch) {
		t.Errorf("fragment: %v", err)
	}
	// Mesh header cut short.
	if _, err := Decode([]byte{0x85, 0x00}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short mesh: %v", err)
	}
}

func TestRPLTypeString(t *testing.T) {
	cases := map[RPLType]string{RPLDIS: "DIS", RPLDIO: "DIO", RPLDAO: "DAO", RPLType(9): "RPL(0x09)"}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(src, dst uint16, hop uint8, payload []byte) bool {
		p := &Packet{NextHeader: 17, HopLimit: hop, Src: src, Dst: dst, Payload: payload}
		got, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return got.Src == src && got.Dst == dst && got.HopLimit == hop &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
