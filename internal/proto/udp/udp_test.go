package udp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	d := &Datagram{SrcPort: 56700, DstPort: 56700, Payload: []byte("lifx")}
	got, err := Decode(d.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.SrcPort != 56700 || got.DstPort != 56700 || !bytes.Equal(got.Payload, d.Payload) {
		t.Errorf("mismatch: %+v", got)
	}
}

func TestEmptyPayload(t *testing.T) {
	d := &Datagram{SrcPort: 1, DstPort: 2}
	got, err := Decode(d.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Payload) != 0 {
		t.Errorf("payload = %v, want empty", got.Payload)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 7)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	// Length field larger than buffer.
	d := &Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("abcdef")}
	raw := d.Encode()
	if _, err := Decode(raw[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("bad length: %v", err)
	}
	// Length field below header size.
	bad := make([]byte, 8)
	bad[5] = 4
	if _, err := Decode(bad); !errors.Is(err, ErrTruncated) {
		t.Errorf("tiny length: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		d := &Datagram{SrcPort: sp, DstPort: dp, Payload: payload}
		got, err := Decode(d.Encode())
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
